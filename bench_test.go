package acclaim_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/experiments"
	"acclaim/internal/fact"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/hunold"
	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
	"acclaim/internal/traces"
)

// The benchmark lab uses the tiny grid so `go test -bench=.` stays
// tractable; cmd/experiments -space sim regenerates the figures at the
// paper-scale grid.
var (
	labOnce sync.Once
	lab     *experiments.Lab
	labErr  error
)

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		lab, labErr = experiments.NewLab(experiments.TinySpace(), "", 77)
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return lab
}

// BenchmarkFig03 regenerates Figure 3: Hunold vs FACT data efficiency.
// The reported metrics are the average slowdowns at 40% training data.
func BenchmarkFig03(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig3(l, []float64{0.1, 0.4})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Hunold, "hunold-slowdown")
	b.ReportMetric(last.FACT, "fact-slowdown")
}

// BenchmarkFig04 regenerates Figure 4: the non-P2 message-size share.
func BenchmarkFig04(b *testing.B) {
	var agg float64
	for i := 0; i < b.N; i++ {
		_, agg = experiments.Fig4(42)
	}
	b.ReportMetric(agg*100, "nonP2-%")
}

// BenchmarkFig05 regenerates Figure 5: FACT on P2 vs non-P2 test sets.
func BenchmarkFig05(b *testing.B) {
	l := benchLab(b)
	var series []experiments.Fig5Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig5(l, []float64{0.6})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		switch s.TestSet {
		case "All P2":
			b.ReportMetric(s.Curve[len(s.Curve)-1].Slowdown, "p2-slowdown")
		case "Non-P2 Message Size":
			b.ReportMetric(s.Curve[len(s.Curve)-1].Slowdown, "nonP2msg-slowdown")
		}
	}
}

// BenchmarkFig06 regenerates Figure 6: test-set vs training collection
// time under FACT, reporting the mean ratio.
func BenchmarkFig06(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ratio float64
	for _, r := range rows {
		ratio += r.Ratio
	}
	b.ReportMetric(ratio/float64(len(rows)), "test/train-ratio")
}

// BenchmarkFig07 regenerates Figure 7: the variance/slowdown co-trend.
func BenchmarkFig07(b *testing.B) {
	l := benchLab(b)
	var pts []experiments.Fig7Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig7(l, coll.Bcast)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Slowdown, "final-slowdown")
	b.ReportMetric(last.Variance, "final-variance")
}

// BenchmarkFig09 regenerates the Section V rule-file generation.
func BenchmarkFig09(b *testing.B) {
	l := benchLab(b)
	rulesTotal := 0
	for i := 0; i < b.N; i++ {
		file, err := experiments.Fig9(l)
		if err != nil {
			b.Fatal(err)
		}
		rulesTotal = 0
		for _, t := range file.Tables {
			rulesTotal += t.NumRules()
		}
	}
	b.ReportMetric(float64(rulesTotal), "rules")
}

// BenchmarkFig10 regenerates Figure 10: ACCLAiM vs FACT point-selection
// time-to-convergence.
func BenchmarkFig10(b *testing.B) {
	l := benchLab(b)
	var cum float64
	for i := 0; i < b.N; i++ {
		var err error
		_, cum, err = experiments.Fig10(l, 0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !math.IsNaN(cum) {
		b.ReportMetric(cum, "fact/acclaim-time")
	}
}

// BenchmarkFig11 regenerates Figure 11: P2/non-P2 training splits.
func BenchmarkFig11(b *testing.B) {
	l := benchLab(b)
	var series []experiments.Fig11Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig11(l, []float64{0.6})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.NonP2Every == 5 {
			b.ReportMetric(s.NonP2Curve[len(s.NonP2Curve)-1].Slowdown, "80-20-nonP2-slowdown")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: variance vs slowdown
// convergence.
func BenchmarkFig12(b *testing.B) {
	l := benchLab(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		var err error
		_, ratio, err = experiments.Fig12(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !math.IsNaN(ratio) {
		b.ReportMetric(ratio, "slowdownconv/varconv-time")
	}
}

// BenchmarkFig13 regenerates Figure 13: parallel collection speedups.
func BenchmarkFig13(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig13(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	byTopo := map[string]float64{}
	count := map[string]float64{}
	for _, r := range rows {
		byTopo[r.Topology] += r.Speedup
		count[r.Topology]++
	}
	b.ReportMetric(byTopo["Single Rack"]/count["Single Rack"], "single-rack-speedup")
	b.ReportMetric(byTopo["Max Parallel"]/count["Max Parallel"], "max-parallel-speedup")
}

// BenchmarkFig14 regenerates Figure 14 at a reduced production scale
// (32 nodes; the paper's 128-node run is cmd/experiments -nodes 128).
func BenchmarkFig14(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		var err error
		_, total, err = experiments.Fig14(32, 4, 99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(total/1e6, "train-machine-s")
}

// BenchmarkFig15 regenerates Figure 15's break-even table.
func BenchmarkFig15(b *testing.B) {
	var rows []experiments.Fig15Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig15(5*60e6, nil) // 5 minutes of training
	}
	for _, r := range rows {
		if r.AppSpeedup == 1.01 {
			b.ReportMetric(r.MinRuntimeHours, "Rmin(1.01)-hours")
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

func ablationBackend(b *testing.B) (*experiments.Lab, autotune.WaveBackend) {
	l := benchLab(b)
	return l, l.Backend()
}

// BenchmarkAblationSelection compares the three training-point
// selection strategies (jackknife / surrogate / random) by the machine
// time each needs to reach the 1.03 criterion on bcast.
func BenchmarkAblationSelection(b *testing.B) {
	l, backend := ablationBackend(b)
	eval := l.EvalFor(coll.Bcast, l.Space.Points())
	fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	conv := func(curve []autotune.CurvePoint) float64 {
		t := experiments.ConvergenceTime(curve)
		if math.IsNaN(t) {
			return curve[len(curve)-1].CollectionTime * 2 // penalty: never converged
		}
		return t
	}
	for i := 0; i < b.N; i++ {
		// Jackknife (ACCLAiM).
		at := core.New(core.Config{Space: l.Space, Forest: l.ForestConfig, Seed: 9,
			Epsilon: 1e-12, MaxIterations: 70}, backend)
		ares, err := at.Tune(coll.Bcast)
		if err != nil {
			b.Fatal(err)
		}
		aCurve, err := at.LearningCurve(ares, fracs, eval)
		if err != nil {
			b.Fatal(err)
		}
		// Surrogate (FACT).
		ft := fact.New(fact.Config{Space: l.Space, Forest: l.ForestConfig, Seed: 9,
			MaxPoints: 70, Criterion: 1.0, CheckEvery: 50}, backend)
		fres, err := ft.Tune(coll.Bcast)
		if err != nil {
			b.Fatal(err)
		}
		fCurve, err := ft.LearningCurve(fres, fracs, eval)
		if err != nil {
			b.Fatal(err)
		}
		// Random (Hunold).
		ht := hunold.New(hunold.Config{Space: l.Space, Forest: l.ForestConfig, Seed: 9}, backend)
		hCurve, err := ht.LearningCurve(coll.Bcast, fracs, func(s autotune.Selector) (float64, error) { return eval(s) })
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(conv(aCurve)/1e3, "jackknife-ms")
		b.ReportMetric(conv(fCurve)/1e3, "surrogate-ms")
		b.ReportMetric(conv(hCurve)/1e3, "random-ms")
	}
}

// BenchmarkAblationNonP2 sweeps the non-P2 mixing ratio.
func BenchmarkAblationNonP2(b *testing.B) {
	l, backend := ablationBackend(b)
	for i := 0; i < b.N; i++ {
		for _, every := range []int{-1, 2, 5} {
			tuner := core.New(core.Config{Space: l.Space, Forest: l.ForestConfig, Seed: 4,
				NonP2Every: every}, backend)
			res, err := tuner.Tune(coll.Bcast)
			if err != nil {
				b.Fatal(err)
			}
			sd, err := autotune.EvalSlowdown(l.DS, coll.Bcast, l.NonP2Msgs, res)
			if err != nil {
				b.Fatal(err)
			}
			switch every {
			case -1:
				b.ReportMetric(sd, "allP2-nonP2sd")
			case 2:
				b.ReportMetric(sd, "50-50-nonP2sd")
			case 5:
				b.ReportMetric(sd, "80-20-nonP2sd")
			}
		}
	}
}

// BenchmarkAblationConvergence sweeps the stall-detector window and
// threshold, reporting samples-at-convergence and final quality.
func BenchmarkAblationConvergence(b *testing.B) {
	l, backend := ablationBackend(b)
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			name    string
			window  int
			epsilon float64
		}{{"loose", 3, 0.10}, {"default", 5, 0.05}, {"strict", 7, 0.02}} {
			tuner := core.New(core.Config{Space: l.Space, Forest: l.ForestConfig, Seed: 6,
				Window: cfg.window, Epsilon: cfg.epsilon}, backend)
			res, err := tuner.Tune(coll.Reduce)
			if err != nil {
				b.Fatal(err)
			}
			sd, err := autotune.EvalSlowdown(l.DS, coll.Reduce, l.Space.Points(), res)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Order)), cfg.name+"-samples")
			b.ReportMetric(sd, cfg.name+"-slowdown")
		}
	}
}

// BenchmarkAblationScheduler compares greedy topology-aware waves
// against sequential collection on the max-parallel topology.
func BenchmarkAblationScheduler(b *testing.B) {
	alloc := cluster.TopologyMaxParallel()
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc,
		benchmark.Config{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	var specs []benchmark.Spec
	for _, n := range []int{8, 8, 4, 4, 2, 2, 16, 8} {
		specs = append(specs, benchmark.Spec{Coll: coll.Bcast, Alg: "binomial",
			Point: featspace.Point{Nodes: n, PPN: 2, MsgBytes: 32768}})
	}
	for i := 0; i < b.N; i++ {
		_, seq, err := runner.RunSequential(specs)
		if err != nil {
			b.Fatal(err)
		}
		_, par, _, err := runner.RunParallel(specs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(seq/par, "greedy-speedup")
	}
}

// BenchmarkAblationForest sweeps the forest size against final model
// quality on a fully collected training set.
func BenchmarkAblationForest(b *testing.B) {
	l := benchLab(b)
	ts := autotune.NewTrainingSet(coll.Bcast)
	for _, c := range autotune.Candidates(coll.Bcast, l.Space, 64) {
		mean, ok := l.DS.TimeOf(coll.Bcast, c.Alg, c.Point)
		if !ok {
			b.Fatal("missing entry")
		}
		ts.Add(c, mean, mean)
	}
	for i := 0; i < b.N; i++ {
		for _, trees := range []int{10, 30, 90} {
			m, err := autotune.TrainModel(forest.Config{NTrees: trees, Seed: 3}, ts)
			if err != nil {
				b.Fatal(err)
			}
			sd, err := autotune.EvalSlowdown(l.DS, coll.Bcast, l.Space.Points(), m)
			if err != nil {
				b.Fatal(err)
			}
			switch trees {
			case 10:
				b.ReportMetric(sd, "10-trees-slowdown")
			case 30:
				b.ReportMetric(sd, "30-trees-slowdown")
			case 90:
				b.ReportMetric(sd, "90-trees-slowdown")
			}
		}
	}
}

// --- Micro-benchmarks of the substrates themselves. ---

// BenchmarkSimBcast measures simulator throughput for a 128-rank
// binomial broadcast.
func BenchmarkSimBcast(b *testing.B) {
	mach := cluster.Machine{Nodes: 256, NodesPerRack: 16, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 32)
	model, err := netmodel.New(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.Exec(model, coll.Bcast, "binomial", 65536, coll.Options{Op: simmpi.OpSum}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRingAllgather measures the heaviest algorithm: a 128-rank
// ring allgather (n^2 messages).
func BenchmarkSimRingAllgather(b *testing.B) {
	mach := cluster.Machine{Nodes: 256, NodesPerRack: 16, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 32)
	model, err := netmodel.New(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.Exec(model, coll.Allgather, "ring", 4096, coll.Options{Op: simmpi.OpSum}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrain measures random-forest training on a
// typical-size active-learning training set.
func BenchmarkForestTrain(b *testing.B) {
	l := benchLab(b)
	ts := autotune.NewTrainingSet(coll.Bcast)
	for _, c := range autotune.Candidates(coll.Bcast, l.Space, 64) {
		mean, _ := l.DS.TimeOf(coll.Bcast, c.Alg, c.Point)
		ts.Add(c, mean, mean)
	}
	x, y := ts.Matrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Train(forest.Config{NTrees: 30, Seed: 3}, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJackknifeSweep measures the per-iteration variance sweep
// over a full candidate pool.
func BenchmarkJackknifeSweep(b *testing.B) {
	l := benchLab(b)
	ts := autotune.NewTrainingSet(coll.Bcast)
	cands := autotune.Candidates(coll.Bcast, l.Space, 64)
	for _, c := range cands {
		mean, _ := l.DS.TimeOf(coll.Bcast, c.Alg, c.Point)
		ts.Add(c, mean, mean)
	}
	m, err := autotune.TrainModel(forest.Config{NTrees: 30, Seed: 3}, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, c := range cands {
			sum += m.Variance(c)
		}
		_ = sum
	}
}

// BenchmarkJackknifeSweepBatch is the same sweep through the batched
// scorer the tuners now use — one VarianceBatch call fanned across the
// worker pool.
func BenchmarkJackknifeSweepBatch(b *testing.B) {
	l := benchLab(b)
	ts := autotune.NewTrainingSet(coll.Bcast)
	cands := autotune.Candidates(coll.Bcast, l.Space, 64)
	for _, c := range cands {
		mean, _ := l.DS.TimeOf(coll.Bcast, c.Alg, c.Point)
		ts.Add(c, mean, mean)
	}
	m, err := autotune.TrainModel(forest.Config{NTrees: 30, Seed: 3}, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, v := range m.VarianceBatch(cands) {
			sum += v
		}
		_ = sum
	}
}

// BenchmarkSelectBatch measures the batched rule-extraction sweep: one
// SelectBatch over the full grid vs per-point Select calls.
func BenchmarkSelectBatch(b *testing.B) {
	l := benchLab(b)
	ts := autotune.NewTrainingSet(coll.Bcast)
	for _, c := range autotune.Candidates(coll.Bcast, l.Space, 64) {
		mean, _ := l.DS.TimeOf(coll.Bcast, c.Alg, c.Point)
		ts.Add(c, mean, mean)
	}
	m, err := autotune.TrainModel(forest.Config{NTrees: 30, Seed: 3}, ts)
	if err != nil {
		b.Fatal(err)
	}
	pts := l.Space.Points()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SelectBatch(pts)
	}
}

// BenchmarkTraceSynthesis measures application trace generation.
func BenchmarkTraceSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := traces.Synthesize("LAMMPS", 64, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// newSeededRand is a tiny helper shared by the root tests.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
