// Command acclaim-bench is the OSU-microbenchmark-style tool (the paper
// collects its training data with the OSU suite): it times every
// algorithm of a collective across a message-size sweep on the
// simulated machine and prints an OSU-like table, marking the winner
// per size.
//
// Usage:
//
//	acclaim-bench -coll bcast [-nodes 16] [-ppn 4] [-min 8] [-max 1048576]
//	              [-iters 5] [-latency 1.0] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

func main() {
	var (
		collName = flag.String("coll", "bcast", "collective: allgather, allreduce, bcast, reduce")
		nodes    = flag.Int("nodes", 16, "node count")
		ppn      = flag.Int("ppn", 4, "processes per node")
		minMsg   = flag.Int("min", 8, "minimum message size (bytes)")
		maxMsg   = flag.Int("max", 1<<20, "maximum message size (bytes)")
		iters    = flag.Int("iters", 5, "timed iterations per point")
		latency  = flag.Float64("latency", 1.0, "job latency factor (>= 1; models allocation spread/congestion)")
		seed     = flag.Int64("seed", 7, "measurement noise seed")
	)
	flag.Parse()

	c, err := coll.ParseCollective(*collName)
	if err != nil {
		fatal(err)
	}
	if *latency < 1 {
		fatal(fmt.Errorf("latency factor must be >= 1"))
	}
	machine := cluster.Theta()
	alloc, err := cluster.Contiguous(machine, 0, *nodes)
	if err != nil {
		fatal(err)
	}
	env := netmodel.DefaultEnv()
	env.LatencyFactor = *latency
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), env, alloc,
		benchmark.Config{Iters: *iters, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	algs := coll.AlgorithmNames(c)
	fmt.Printf("# %v, %d nodes x %d ppn (%d ranks), latency factor %.2f\n",
		c, *nodes, *ppn, *nodes**ppn, *latency)
	fmt.Printf("%-10s", "bytes")
	for _, a := range algs {
		fmt.Printf(" %-22s", a)
	}
	fmt.Printf(" %s\n", "winner")

	for msg := *minMsg; msg <= *maxMsg; msg *= 2 {
		fmt.Printf("%-10d", msg)
		best, bestT := "", 0.0
		times := make([]float64, len(algs))
		for i, a := range algs {
			m, err := runner.Run(benchmark.Spec{Coll: c, Alg: a,
				Point: featspace.Point{Nodes: *nodes, PPN: *ppn, MsgBytes: msg}})
			if err != nil {
				fatal(err)
			}
			times[i] = m.MeanTime
			if best == "" || m.MeanTime < bestT {
				best, bestT = a, m.MeanTime
			}
		}
		for _, t := range times {
			fmt.Printf(" %-22.2f", t)
		}
		fmt.Printf(" %s\n", best)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acclaim-bench:", err)
	os.Exit(1)
}
