// Command acclaim-lint runs the project's invariant analyzers
// (internal/lint) over the tree: determinism in the tuning packages,
// zero-alloc hot-path annotations, lock discipline, obs metric naming,
// frozen-snapshot immutability, atomic-access discipline, and goroutine
// lifecycle ownership. It is stdlib-only — go/parser and go/types with
// the source importer — so CI needs nothing beyond the Go toolchain.
// Package load/type-check is parallelized across GOMAXPROCS.
//
// Usage:
//
//	go run ./cmd/acclaim-lint ./...
//	go run ./cmd/acclaim-lint -json ./... > lint.json
//	go run ./cmd/acclaim-lint -checks determinism,metricname ./internal/core
//	go run ./cmd/acclaim-lint -checks frozen,atomicdiscipline,goroutinelife ./...
//	go run ./cmd/acclaim-lint -v ./...
//
// Exit codes (shared with cmd/benchguard): 0 = clean, 1 = findings,
// 2 = tool error (bad flags, unparseable or untypecheckable source).
// Note `go run` collapses any nonzero child status to 1; build the
// binary to observe the 1-vs-2 distinction. Human-readable findings go
// to stderr; -json writes the diagnostics array (the CI artifact) to
// stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"acclaim/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "write the diagnostics array as JSON to stdout")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	verbose := flag.Bool("v", false, "report load time and per-analyzer timing to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: acclaim-lint [flags] [packages]\n\n"+
				"Runs the ACCLAiM project-invariant analyzers: %s.\n"+
				"Packages default to ./... relative to the module root.\n\n"+
				"Exit codes: 0 = clean, 1 = findings, 2 = tool error.\n\n",
			strings.Join(checkNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}

	analyzers := lint.DefaultAnalyzers()
	if *checks != "" {
		analyzers, err = selectChecks(analyzers, *checks)
		if err != nil {
			fatal(err)
		}
	}

	loadStart := time.Now()
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "acclaim-lint: loaded %d package(s) in %v (%d workers)\n",
			len(pkgs), time.Since(loadStart).Round(time.Millisecond), runtime.GOMAXPROCS(0))
	}
	diags, timings := lint.RunTimed(pkgs, analyzers, nil)
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "acclaim-lint: %-16s %v\n",
				tm.Check, time.Duration(tm.Ns).Round(10*time.Microsecond))
		}
	}

	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if *jsonOut {
		data, err := lint.MarshalDiagnostics(diags)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "acclaim-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acclaim-lint: %d package(s) clean\n", len(pkgs))
}

func checkNames() []string {
	var names []string
	for _, a := range lint.DefaultAnalyzers() {
		names = append(names, a.Name)
	}
	return names
}

func selectChecks(all []*lint.Analyzer, spec string) ([]*lint.Analyzer, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(checkNames(), ", "))
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the tool runs correctly from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// fatal reports a tool error on the shared benchguard/acclaim-lint
// convention: findings exit 1, tool breakage exits 2.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acclaim-lint:", err)
	os.Exit(2)
}
