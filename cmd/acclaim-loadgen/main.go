// Command acclaim-loadgen is the SLO load-generation harness for the
// serving path. It fires a mixed (collective, nodes, ppn, message-size)
// query stream at a rule server — in-process from a tuned rule file,
// or out-of-process against acclaim-serve -http's /v1/select endpoint —
// and writes an acclaim.load_report/v1 JSON document with
// coordinated-omission-corrected latency quantiles, throughput, and
// per-collective hit rates.
//
// Closed-loop capacity measurement against a rule file, with a
// benchguard-parseable summary line on stdout:
//
//	acclaim-loadgen -rules tuned.json -mode closed -workers 4 \
//	    -requests 2000000 -out load_report.json -bench LoadSmoke
//
// Open-loop saturation sweep over an HTTP target:
//
//	acclaim-serve -rules tuned.json -http :8080 &
//	acclaim-loadgen -url http://localhost:8080/v1/select \
//	    -sweep 200000,400000,800000 -requests 500000 -out sweep.json
//
// The -bench line (`Benchmark<name> 1 <dur> ns/op <qps> throughput_qps
// <p99> p99_ns`) pipes straight into cmd/benchguard, whose -floor and
// -ceiling flags turn the run into a CI SLO gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acclaim/internal/coll"
	"acclaim/internal/loadgen"
	"acclaim/internal/ruleserver"
)

func main() {
	var (
		rulesPath   = flag.String("rules", "", "tuned rule file for an in-process target")
		url         = flag.String("url", "", "out-of-process target: full /v1/select URL (mutually exclusive with -rules)")
		mode        = flag.String("mode", "closed", "driver: closed (capacity) or open (fixed offered rate, CO-corrected)")
		workers     = flag.Int("workers", 4, "concurrent workers")
		requests    = flag.Int("requests", 1000000, "total requests (per sweep step when -sweep is given)")
		rate        = flag.Float64("rate", 0, "open mode: total offered rate in queries/sec")
		sweep       = flag.String("sweep", "", "comma-separated offered rates; runs an open-loop saturation sweep")
		collectives = flag.String("collectives", "bcast,allreduce,allgather,alltoall", "comma-separated collectives to mix")
		nodes       = flag.String("nodes", "2,4,8,16,32", "comma-separated node counts to mix")
		ppn         = flag.String("ppn", "1,8,16", "comma-separated ppn values to mix")
		msgExp      = flag.Int("max-msg-exp", 20, "message sizes are log-uniform powers of two in [1, 2^exp]")
		seed        = flag.Int64("seed", 1, "RNG seed (worker i uses seed+i)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		bench       = flag.String("bench", "", "also print a benchguard-parseable Benchmark<name> line to stdout")
	)
	flag.Parse()

	if (*rulesPath == "") == (*url == "") {
		fatal(fmt.Errorf("exactly one of -rules or -url is required"))
	}
	var target loadgen.Target
	if *rulesPath != "" {
		srv := ruleserver.New()
		if err := srv.Load(*rulesPath); err != nil {
			fatal(err)
		}
		target = loadgen.ServerTarget{Server: srv}
	} else {
		target = loadgen.HTTPTarget{URL: *url}
	}

	m, err := loadgen.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	mix, err := parseMix(*collectives, *nodes, *ppn, *msgExp)
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		Target:   target,
		Mix:      mix,
		Mode:     m,
		Workers:  *workers,
		Requests: *requests,
		RateQPS:  *rate,
		Seed:     *seed,
	}

	var rep *loadgen.Report
	if *sweep != "" {
		rates, err := parseFloats(*sweep)
		if err != nil {
			fatal(fmt.Errorf("bad -sweep: %v", err))
		}
		rep, err = loadgen.Sweep(cfg, rates)
		if err != nil {
			fatal(err)
		}
	} else {
		rep, err = loadgen.Run(cfg)
		if err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
	if *bench != "" {
		if err := rep.WriteBench(os.Stdout, *bench); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"acclaim-loadgen: %s %s: %d requests, %d errors, %d misses, %.0f qps, p50 %.0fns p99 %.0fns p999 %.0fns\n",
		rep.Mode, rep.Target, rep.Requests, rep.Errors, rep.Misses,
		rep.ThroughputQPS, rep.Latency.P50Ns, rep.Latency.P99Ns, rep.Latency.P999Ns)
	for _, p := range rep.Sweep {
		fmt.Fprintf(os.Stderr, "acclaim-loadgen:   offered %9.0f qps -> achieved %9.0f qps, p99 %.0fns\n",
			p.OfferedQPS, p.AchievedQPS, p.P99Ns)
	}
}

func parseMix(collectives, nodes, ppn string, msgExp int) (loadgen.Mix, error) {
	m := loadgen.Mix{MsgExpMax: msgExp}
	for _, s := range strings.Split(collectives, ",") {
		c, err := coll.ParseCollective(strings.TrimSpace(s))
		if err != nil {
			return m, err
		}
		m.Collectives = append(m.Collectives, c)
	}
	var err error
	if m.Nodes, err = parseInts(nodes); err != nil {
		return m, fmt.Errorf("bad -nodes: %v", err)
	}
	if m.PPN, err = parseInts(ppn); err != nil {
		return m, fmt.Errorf("bad -ppn: %v", err)
	}
	return m, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acclaim-loadgen: %v\n", err)
	os.Exit(1)
}
