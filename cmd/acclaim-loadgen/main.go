// Command acclaim-loadgen is the SLO load-generation harness for the
// serving path. It fires a mixed (collective, nodes, ppn, message-size)
// query stream at a rule server — in-process from a tuned rule file,
// out-of-process against acclaim-serve -http's /v1/select endpoint, or
// over the batched binary wire protocol against acclaim-serve -tcp —
// and writes an acclaim.load_report/v1 JSON document with
// coordinated-omission-corrected latency quantiles, throughput, and
// per-collective hit rates.
//
// Closed-loop capacity measurement against a rule file, with a
// benchguard-parseable summary line on stdout:
//
//	acclaim-loadgen -rules tuned.json -mode closed -workers 4 \
//	    -requests 2000000 -out load_report.json -bench LoadSmoke
//
// Open-loop saturation sweep over an HTTP target:
//
//	acclaim-serve -rules tuned.json -http :8080 &
//	acclaim-loadgen -url http://localhost:8080/v1/select \
//	    -sweep 200000,400000,800000 -requests 500000 -out sweep.json
//
// Batched multi-tenant run over the binary wire protocol: -batch packs
// that many queries per frame, and -tenants N spreads the stream
// (uniformly or zipf-skewed) across registry shards t0/default/default
// through t<N-1>/default/default — the shard-key convention
// acclaim-serve's -tenant flag pairs with:
//
//	acclaim-serve -tcp :9090 -tenant t0/default/default=tuned.json &
//	acclaim-loadgen -tcp localhost:9090 -batch 64 -mode closed \
//	    -requests 2000000 -out load_tcp.json \
//	    -bench TCPLoadSmoke -bench-prefix tcp_
//
// The -bench line (`Benchmark<name> 1 <dur> ns/op <qps> throughput_qps
// <p99> p99_ns`) pipes straight into cmd/benchguard, whose -floor and
// -ceiling flags turn the run into a CI SLO gate; -bench-prefix renames
// the metric units (tcp_throughput_qps, tcp_p99_ns) so one pipeline can
// gate several targets without collisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acclaim/internal/coll"
	"acclaim/internal/loadgen"
	"acclaim/internal/ruleserver"
)

func main() {
	var (
		rulesPath   = flag.String("rules", "", "tuned rule file for an in-process target")
		url         = flag.String("url", "", "out-of-process target: full /v1/select URL (mutually exclusive with -rules/-tcp)")
		tcp         = flag.String("tcp", "", "out-of-process target: acclaim-serve -tcp address for the binary protocol (mutually exclusive with -rules/-url)")
		mode        = flag.String("mode", "closed", "driver: closed (capacity) or open (fixed offered rate, CO-corrected)")
		workers     = flag.Int("workers", 4, "concurrent workers")
		requests    = flag.Int("requests", 1000000, "total requests (per sweep step when -sweep is given)")
		rate        = flag.Float64("rate", 0, "open mode: total offered rate in queries/sec")
		batch       = flag.Int("batch", 0, "queries per transport round trip (>1 needs a batching target, i.e. -tcp)")
		tenants     = flag.Int("tenants", 0, "tenant shards to mix across; tenant i maps to key t<i>/default/default")
		tenantSkew  = flag.String("tenant-skew", "uniform", "tenant draw distribution: uniform or zipf")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf exponent for -tenant-skew zipf")
		sweep       = flag.String("sweep", "", "comma-separated offered rates; runs an open-loop saturation sweep")
		collectives = flag.String("collectives", "bcast,allreduce,allgather,alltoall", "comma-separated collectives to mix")
		nodes       = flag.String("nodes", "2,4,8,16,32", "comma-separated node counts to mix")
		ppn         = flag.String("ppn", "1,8,16", "comma-separated ppn values to mix")
		msgExp      = flag.Int("max-msg-exp", 20, "message sizes are log-uniform powers of two in [1, 2^exp]")
		seed        = flag.Int64("seed", 1, "RNG seed (worker i uses seed+i)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		bench       = flag.String("bench", "", "also print a benchguard-parseable Benchmark<name> line to stdout")
		benchPrefix = flag.String("bench-prefix", "", "prefix the -bench line's metric units (e.g. tcp_ emits tcp_throughput_qps)")
	)
	flag.Parse()

	nSources := 0
	for _, s := range []string{*rulesPath, *url, *tcp} {
		if s != "" {
			nSources++
		}
	}
	if nSources != 1 {
		fatal(fmt.Errorf("exactly one of -rules, -url, or -tcp is required"))
	}
	// tenantKeys is the loadgen<->server tenant convention: mix tenant
	// index i is registry shard t<i>/default/default, matching
	// `acclaim-serve -tcp -tenant t<i>/default/default=...`.
	tenantKeys := func() []ruleserver.TenantKey {
		n := *tenants
		if n < 1 {
			n = 1
		}
		keys := make([]ruleserver.TenantKey, n)
		for i := range keys {
			keys[i] = ruleserver.TenantKey{Cluster: fmt.Sprintf("t%d", i), JobClass: "default", MPIVer: "default"}
		}
		return keys
	}
	var target loadgen.Target
	switch {
	case *rulesPath != "" && *tenants > 1:
		// In-process multi-tenant: every shard serves the same tuned
		// file, so the skewed tenant draw exercises shard dispatch
		// without changing rule coverage.
		reg := ruleserver.NewRegistry()
		for _, k := range tenantKeys() {
			if err := reg.Load(k, *rulesPath); err != nil {
				fatal(err)
			}
		}
		rt, err := loadgen.NewRegistryTarget(reg, tenantKeys())
		if err != nil {
			fatal(err)
		}
		target = rt
	case *rulesPath != "":
		srv := ruleserver.New()
		if err := srv.Load(*rulesPath); err != nil {
			fatal(err)
		}
		target = loadgen.ServerTarget{Server: srv}
	case *tcp != "":
		tt, err := loadgen.NewTCPTarget(*tcp, tenantKeys(), 2**workers)
		if err != nil {
			fatal(err)
		}
		defer tt.Close()
		target = tt
	default:
		target = loadgen.HTTPTarget{URL: *url}
	}

	m, err := loadgen.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	mix, err := parseMix(*collectives, *nodes, *ppn, *msgExp)
	if err != nil {
		fatal(err)
	}
	mix.Tenants = *tenants
	mix.TenantSkew = *tenantSkew
	mix.ZipfS = *zipfS
	cfg := loadgen.Config{
		Target:   target,
		Mix:      mix,
		Mode:     m,
		Workers:  *workers,
		Requests: *requests,
		RateQPS:  *rate,
		Batch:    *batch,
		Seed:     *seed,
	}

	var rep *loadgen.Report
	if *sweep != "" {
		rates, err := parseFloats(*sweep)
		if err != nil {
			fatal(fmt.Errorf("bad -sweep: %v", err))
		}
		rep, err = loadgen.Sweep(cfg, rates)
		if err != nil {
			fatal(err)
		}
	} else {
		rep, err = loadgen.Run(cfg)
		if err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
	if *bench != "" {
		if err := rep.WriteBenchPrefixed(os.Stdout, *bench, *benchPrefix); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"acclaim-loadgen: %s %s: %d requests, %d errors, %d misses, %.0f qps, p50 %.0fns p99 %.0fns p999 %.0fns\n",
		rep.Mode, rep.Target, rep.Requests, rep.Errors, rep.Misses,
		rep.ThroughputQPS, rep.Latency.P50Ns, rep.Latency.P99Ns, rep.Latency.P999Ns)
	for _, p := range rep.Sweep {
		fmt.Fprintf(os.Stderr, "acclaim-loadgen:   offered %9.0f qps -> achieved %9.0f qps, p99 %.0fns\n",
			p.OfferedQPS, p.AchievedQPS, p.P99Ns)
	}
}

func parseMix(collectives, nodes, ppn string, msgExp int) (loadgen.Mix, error) {
	m := loadgen.Mix{MsgExpMax: msgExp}
	for _, s := range strings.Split(collectives, ",") {
		c, err := coll.ParseCollective(strings.TrimSpace(s))
		if err != nil {
			return m, err
		}
		m.Collectives = append(m.Collectives, c)
	}
	var err error
	if m.Nodes, err = parseInts(nodes); err != nil {
		return m, fmt.Errorf("bad -nodes: %v", err)
	}
	if m.PPN, err = parseInts(ppn); err != nil {
		return m, fmt.Errorf("bad -ppn: %v", err)
	}
	return m, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acclaim-loadgen: %v\n", err)
	os.Exit(1)
}
