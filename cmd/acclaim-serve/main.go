// Command acclaim-serve answers algorithm-selection queries from a
// tuned rule file through the lock-free serving engine
// (internal/ruleserver). It is the deployment half of the ACCLAiM
// pipeline: cmd/acclaim produces a selection file, acclaim-serve loads
// it and resolves (collective, nodes, ppn, message-size) queries to
// algorithm names at interconnect-friendly latency.
//
// One-shot queries:
//
//	acclaim-serve -rules tuned.json -query bcast:16:8:65536 -query allreduce:4:2:1024
//
// Streaming mode (one "<collective> <nodes> <ppn> <msg>" query per
// stdin line, one algorithm per stdout line):
//
//	printf 'bcast 16 8 65536\n' | acclaim-serve -rules tuned.json
//
// With -watch, the rule file's modification time is polled and the
// serving snapshot is hot-swapped whenever the file changes; in-flight
// lookups are never blocked. -stats prints serving counters to stderr
// on exit.
//
// With -http, a minimal JSON selection API is served instead of the
// stdin stream: GET or POST /v1/select resolves one query per request
// ({"collective","nodes","ppn","msg"} -> {"algorithm","ok"}), which is
// what cmd/acclaim-loadgen drives in its out-of-process mode. A miss
// is a 200 with ok=false (deployment-visible condition); malformed
// input is a 400.
//
// With -tcp, the compact binary selection protocol is served (usable
// alongside -http): length-prefixed frames, interned tenant and
// collective ids negotiated per connection, batched lookups — the
// transport cmd/acclaim-loadgen's -tcp mode drives at a multiple of
// the JSON API's throughput. Multi-tenant serving uses repeatable
// -tenant flags, each loading one rule file into a registry shard
// keyed cluster/jobclass/mpiver:
//
//	acclaim-serve -tcp :9090 \
//	    -tenant frontier/batch/mpich-4.2=frontier.json \
//	    -tenant summit/debug/ompi-5.0=summit.json
//
// Shards hot-reload independently under -watch: each tenant's file is
// polled and swapped on its own, never perturbing another tenant's
// served snapshot or counters.
//
// With -debug-addr, an HTTP observability endpoint is served for the
// life of the process (most useful with streaming or -http mode):
// /metrics answers Prometheus text by default and expvar-style JSON
// with ?format=json (the per-epoch hit/miss/latency counters, read
// through the lock-free snapshot pointer), /debug/vars is the standard
// expvar page with the registry published under "acclaim", and
// /debug/pprof/ exposes the usual profiles.
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/ruleserver"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

// tenantFlag is one parsed -tenant cluster/jobclass/mpiver=rulefile.
type tenantFlag struct {
	key  ruleserver.TenantKey
	path string
}

type tenantList []tenantFlag

func (t *tenantList) String() string {
	parts := make([]string, len(*t))
	for i, f := range *t {
		parts[i] = f.key.String() + "=" + f.path
	}
	return strings.Join(parts, ",")
}

func (t *tenantList) Set(s string) error {
	ks, path, ok := strings.Cut(s, "=")
	if !ok || path == "" {
		return fmt.Errorf("bad -tenant %q: want cluster/jobclass/mpiver=rulefile", s)
	}
	key, err := ruleserver.ParseTenantKey(ks)
	if err != nil {
		return err
	}
	*t = append(*t, tenantFlag{key: key, path: path})
	return nil
}

func main() {
	var (
		rulesPath = flag.String("rules", "", "tuned selection rule file (JSON; loads the default tenant)")
		queries   queryList
		tenants   tenantList
		stats     = flag.Bool("stats", false, "print serving counters to stderr on exit")
		watch     = flag.Duration("watch", 0, "poll rule files at this interval and hot-reload on change (server modes)")
		httpAddr  = flag.String("http", "", "serve the /v1/select JSON selection API on this address (replaces stdin streaming)")
		tcpAddr   = flag.String("tcp", "", "serve the compact binary selection protocol on this address (usable alongside -http)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (Prometheus text / expvar JSON), /debug/vars, and /debug/pprof on this address")
	)
	flag.Var(&queries, "query", "one-shot query collective:nodes:ppn:msgbytes (repeatable)")
	flag.Var(&tenants, "tenant", "load one registry shard as cluster/jobclass/mpiver=rulefile (repeatable; -tcp serving)")
	flag.Parse()

	if *rulesPath == "" && len(tenants) == 0 {
		fmt.Fprintln(os.Stderr, "acclaim-serve: -rules or at least one -tenant is required")
		flag.Usage()
		os.Exit(2)
	}

	// Every mode serves from one registry. -rules loads the default
	// tenant — the shard the one-shot, streaming, and HTTP modes answer
	// from — and each -tenant loads its own independently swappable
	// shard for the binary protocol.
	reg := ruleserver.NewRegistry()
	var srv *ruleserver.Server
	if *rulesPath != "" {
		srv = reg.Ensure(ruleserver.DefaultTenant)
		if err := srv.Load(*rulesPath); err != nil {
			fatal(err)
		}
	}
	for _, t := range tenants {
		if err := reg.Load(t.key, t.path); err != nil {
			fatal(fmt.Errorf("tenant %s: %v", t.key, err))
		}
	}
	if srv == nil {
		// No default tenant: point the single-tenant modes at the first
		// -tenant shard so -query and -stats still work.
		srv, _ = reg.Tenant(tenants[0].key)
	}

	ws := ruleserver.NewWireServer(reg)
	if *debugAddr != "" {
		//acclaim:goroutine-owner lives for the whole process by design; a failed listen exits via fatal
		go serveDebug(srv, reg, ws, *debugAddr)
	}

	// watchDone stops the rule-file pollers: closed when streaming
	// input ends (so the final stats read does not race a hot swap);
	// never closed in the server modes, where serving — and polling —
	// lasts until the process dies.
	watchDone := make(chan struct{})
	startWatchers := func() {
		if *watch <= 0 {
			return
		}
		if *rulesPath != "" {
			path := *rulesPath
			//acclaim:goroutine-owner rule-file poller; returns when watchDone closes
			go watchFile("default tenant", path, *watch, watchDone, func() error {
				if err := srv.Load(path); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "acclaim-serve: hot-swapped default tenant to v%d\n", srv.Stats().Version)
				return nil
			})
		}
		for _, t := range tenants {
			t := t
			//acclaim:goroutine-owner per-tenant rule-file poller; returns when watchDone closes
			go watchFile(t.key.String(), t.path, *watch, watchDone, func() error {
				if err := reg.Load(t.key, t.path); err != nil {
					return err
				}
				shard, _ := reg.Tenant(t.key)
				fmt.Fprintf(os.Stderr, "acclaim-serve: hot-swapped tenant %s to v%d\n", t.key, shard.Stats().Version)
				return nil
			})
		}
	}

	if len(queries) > 0 {
		for _, q := range queries {
			parts := strings.Split(q, ":")
			if len(parts) != 4 {
				fatal(fmt.Errorf("bad -query %q: want collective:nodes:ppn:msgbytes", q))
			}
			alg, err := answer(srv, parts[0], parts[1], parts[2], parts[3])
			if err != nil {
				fatal(err)
			}
			fmt.Println(alg)
		}
	} else if *tcpAddr != "" || *httpAddr != "" {
		startWatchers()
		if *tcpAddr != "" {
			ln, err := net.Listen("tcp", *tcpAddr)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "acclaim-serve: serving binary protocol on %s (%d tenants)\n",
				ln.Addr(), reg.Len())
			if *httpAddr == "" {
				fatal(ws.Serve(ln))
			}
			//acclaim:goroutine-owner binary-protocol acceptor; lives until the process dies alongside the HTTP server on main
			go func() { fatal(ws.Serve(ln)) }()
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/select", ruleserver.SelectHandler(srv))
		fmt.Fprintf(os.Stderr, "acclaim-serve: serving /v1/select on %s\n", *httpAddr)
		fatal(http.ListenAndServe(*httpAddr, mux))
	} else {
		startWatchers()
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			f := strings.Fields(line)
			if len(f) != 4 {
				fatal(fmt.Errorf("bad query %q: want <collective> <nodes> <ppn> <msgbytes>", line))
			}
			alg, err := answer(srv, f[0], f[1], f[2], f[3])
			if err != nil {
				fatal(err)
			}
			fmt.Println(alg)
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		close(watchDone)
	}

	if *stats {
		printStats(os.Stderr, srv.Stats())
	}
}

// printStats renders the end-of-run serving summary: headline
// counters, the lookup-latency quantiles recorded over every lookup
// (exact to within the HDR bucket resolution), and a per-collective
// hit-rate table.
func printStats(w io.Writer, st ruleserver.Stats) {
	fmt.Fprintf(w,
		"acclaim-serve: snapshot v%d, %d tables, %d rules, %d hits, %d misses, %d swaps\n",
		st.Version, st.Tables, st.Rules, st.Hits, st.Misses, st.Swaps)
	fmt.Fprintf(w, "acclaim-serve: lookup latency p50 %v, p99 %v, p999 %v\n", st.P50, st.P99, st.P999)
	for _, cs := range st.PerCollective {
		hitRate := 100.0
		if cs.Lookups > 0 {
			hitRate = 100 * float64(cs.Lookups-cs.Misses) / float64(cs.Lookups)
		}
		fmt.Fprintf(w, "acclaim-serve:   %-16s %9d lookups %9d misses  %5.1f%% hit\n",
			cs.Collective, cs.Lookups, cs.Misses, hitRate)
	}
}

// answer resolves one query against the current snapshot. Collectives
// the rule file does not cover are reported as misses rather than
// errors — that is a deployment-visible condition, not a usage bug.
func answer(srv *ruleserver.Server, cs, ns, ps, ms string) (string, error) {
	c, err := coll.ParseCollective(cs)
	if err != nil {
		return "", err
	}
	nodes, err := strconv.Atoi(ns)
	if err != nil {
		return "", fmt.Errorf("bad node count %q: %v", ns, err)
	}
	ppn, err := strconv.Atoi(ps)
	if err != nil {
		return "", fmt.Errorf("bad ppn %q: %v", ps, err)
	}
	msg, err := strconv.Atoi(ms)
	if err != nil {
		return "", fmt.Errorf("bad message size %q: %v", ms, err)
	}
	alg, ok := srv.Lookup(c, nodes, ppn, msg)
	if !ok {
		return "", fmt.Errorf("no rule for collective %v (file does not cover it)", c)
	}
	return alg, nil
}

// serveDebug runs the observability endpoint: the default shard's
// counters, the multi-tenant registry aggregates and per-tenant
// labeled series, and the wire transport counters on a fresh metrics
// registry (all epoch-scoped, read lock-free through the snapshot
// pointers), plus expvar and pprof. It never returns; a failed listen
// is fatal because the operator asked for the endpoint explicitly.
func serveDebug(srv *ruleserver.Server, rreg *ruleserver.Registry, ws *ruleserver.WireServer, addr string) {
	reg := obs.NewRegistry()
	srv.Register(reg)
	rreg.Register(reg)
	ws.Register(reg)
	reg.Publish("acclaim")

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fatal(http.ListenAndServe(addr, mux))
}

// watchFile polls one rule file's mtime and runs load when it
// changes, until done is closed. A file that momentarily fails to load
// (mid-rewrite, or invalid) keeps the previous snapshot serving; the
// error is logged. Each tenant's file gets its own poller, so one
// shard's reload never delays — or perturbs — another's. (This used to
// loop over time.Tick, which can never be stopped and leaked its
// ticker past the end of streaming input — the goroutinelife analyzer
// caught it.)
func watchFile(label, path string, every time.Duration, done <-chan struct{}, load func() error) {
	var last time.Time
	if fi, err := os.Stat(path); err == nil {
		last = fi.ModTime()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(last) {
			continue
		}
		last = fi.ModTime()
		if err := load(); err != nil {
			fmt.Fprintf(os.Stderr, "acclaim-serve: %s: reload failed, keeping current snapshot: %v\n",
				label, err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acclaim-serve: %v\n", err)
	os.Exit(1)
}
