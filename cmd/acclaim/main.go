// Command acclaim is the end-to-end prototype of the paper's Figure
// 1(b): a user "submits a job" with the collectives their application
// uses; ACCLAiM acquires an allocation on the (simulated) machine,
// trains a model per collective with topology-aware parallel data
// collection, writes the MPICH-style JSON selection file, and then runs
// the application — reporting the collective speedup over the library's
// default heuristic selections and the break-even runtime.
//
// Usage:
//
//	acclaim -nodes 32 -ppn 4 [-app LAMMPS | -collectives bcast,allreduce]
//	        [-out tuned.json] [-seed N] [-maxmsg bytes] [-run-report report.json]
//	        [-topology dragonfly|fat-tree|torus]
//	        [-scenario baseline|degraded-links|congestion-storm|hetero-nodes]
//
// The whole pipeline is instrumented through internal/obs: every
// tuning round emits fit/score/pick/collect spans, and the forest,
// scheduler, collection, and allocation layers report into one metrics
// registry. A per-phase summary table is printed when tuning ends;
// -run-report additionally dumps the span timeline, the per-collective
// convergence-variance series, and the final metric snapshot as JSON.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/exhaustive"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/heuristic"
	"acclaim/internal/netmodel"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
	"acclaim/internal/traces"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 32, "job node count")
		ppn       = flag.Int("ppn", 4, "processes per node")
		app       = flag.String("app", "", "application name (derives the collective list from its trace)")
		collList  = flag.String("collectives", "", "comma-separated collective list (overrides -app)")
		out       = flag.String("out", "tuned.json", "output selection file")
		seed      = flag.Int64("seed", 1, "job seed (allocation + environment)")
		maxMsg    = flag.Int("maxmsg", 1<<20, "maximum tuned message size in bytes")
		runReport = flag.String("run-report", "", "write the tuning run's span timeline, convergence series, and metric snapshot to this JSON file")
		eventLog  = flag.String("event-log", "", "stream spans and events as JSONL to this file while the run executes (bounded; see obs.EventLog)")
		topoName  = flag.String("topology", "dragonfly", "interconnect topology: dragonfly, fat-tree, or torus")
		scenario  = flag.String("scenario", "baseline", "environment scenario: baseline, degraded-links, congestion-storm, or hetero-nodes")
	)
	flag.Parse()

	colls, err := collectiveList(*app, *collList)
	if err != nil {
		fatal(err)
	}

	// --- Observability: one registry for every pipeline stage, one
	// trace for the tuning timeline, and — on request — a streaming
	// JSONL event log so the same spans leave the process live instead
	// of only landing in the end-of-run report.
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	var recorder obs.Recorder = trace
	var events *obs.EventLog
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<16)
		defer bw.Flush()
		events = obs.NewEventLog(bw, 0)
		events.Register(reg)
		recorder = obs.Tee(trace, events)
	}

	// --- Job submission: the scheduler hands us a best-effort
	// allocation; the job's dynamic environment is sampled from it.
	machine := cluster.Theta()
	rng := rand.New(rand.NewSource(*seed))
	alloc, err := cluster.BestEffortObs(machine, rng, *nodes, cluster.NewMetrics(reg))
	if err != nil {
		fatal(err)
	}
	topo, err := netmodel.TopologyByName(*topoName, machine)
	if err != nil {
		fatal(err)
	}
	scen, err := benchmark.ParseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	env := scen.Apply(netmodel.SampleEnv(rng, alloc))
	fmt.Printf("allocation: %d nodes across %d racks (%d pairs), %s topology, %v scenario, latency factor %.2f\n",
		alloc.Size(), alloc.RackSpan(), alloc.PairSpan(), topo.Name(), scen, env.LatencyFactor)

	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), env, alloc, benchmark.Config{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	runner.Topology = topo
	runner.Metrics = benchmark.NewMetrics(reg)

	// --- Training: ACCLAiM with parallel wave collection.
	tuner := core.New(core.Config{
		Space:     featspace.P2Grid(*nodes, *ppn, 8, *maxMsg),
		Forest:    forest.Config{NTrees: 60, Seed: *seed, Metrics: forest.NewMetrics(reg)},
		Seed:      *seed,
		Parallel:  true,
		BatchSize: 4,
		// Production selections feed a whole job: spend a little more
		// collection time for a stabler model than the default
		// stall criterion accepts.
		Window:   6,
		Epsilon:  0.03,
		Recorder: recorder,
		Registry: reg,
	}, autotune.LiveBackend{Runner: runner})

	wall := time.Now()
	results := make(map[coll.Collective]*core.Result, len(colls))
	var machineTime float64
	for _, c := range colls {
		res, err := tuner.Tune(c)
		if err != nil {
			fatal(err)
		}
		results[c] = res
		machineTime += res.Ledger.Collection
		fmt.Printf("trained %-10v %3d samples, %6.2f s machine time, converged=%v\n",
			c, len(res.Order), res.Ledger.Collection/1e6, res.Converged)
	}
	fmt.Printf("total training: %.2f s machine time (%.1f s wall on this host)\n",
		machineTime/1e6, time.Since(wall).Seconds())

	// --- Observability report: per-phase breakdown table now, full
	// JSON (spans + convergence series + metrics) on request.
	report := core.BuildRunReport("theta-sim", results, trace, reg)
	report.Topology = topo.Name()
	report.Scenario = scen.String()
	if err := report.WriteSummary(os.Stdout); err != nil {
		fatal(err)
	}
	if *runReport != "" {
		if err := report.WriteFile(*runReport); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote run report %s (%d spans, %d metrics)\n",
			*runReport, len(report.Spans), len(report.Metrics))
	}
	if events != nil {
		fmt.Printf("event log %s: %d lines, %d dropped\n", *eventLog, events.Events(), events.Dropped())
		if err := events.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "acclaim: event log write error: %v\n", err)
		}
	}

	// --- Job-cell verification: the tool knows the job's exact
	// (nodes, ppn), so it additionally benchmarks every algorithm at
	// the job's own configuration across the P2 message grid
	// (MPITune/OPTO-style, ~a minute of machine time) and prefers those
	// exact winners there. The ML model still covers every other
	// configuration (subcommunicators, later jobs on the allocation).
	space := tuner.Config().Space
	cellPts := make([]featspace.Point, 0, len(space.Msgs))
	for _, msg := range space.Msgs {
		cellPts = append(cellPts, featspace.Point{Nodes: *nodes, PPN: *ppn, MsgBytes: msg})
	}
	exact := make(map[coll.Collective]*exhaustive.Result, len(colls))
	for _, c := range colls {
		ex, err := exhaustive.Tune(autotune.LiveBackend{Runner: runner}, c, cellPts, nil)
		if err != nil {
			fatal(err)
		}
		exact[c] = ex
		machineTime += ex.Ledger.Collection
	}

	// --- Configuration file generation: model selections everywhere,
	// exact winners at the job cell.
	file := rules.NewFile("theta-sim")
	file.Comment = "generated by ACCLAiM (Go reproduction)"
	for c, res := range results {
		model := res.Model
		ex := exact[c]
		table := rules.BuildTable(c.String(), space, func(p featspace.Point) string {
			if p.Nodes == *nodes && p.PPN == *ppn {
				if alg, ok := ex.Best[featspace.Point{Nodes: p.Nodes, PPN: p.PPN, MsgBytes: p.MsgBytes}]; ok {
					return alg
				}
			}
			return model.Select(p)
		})
		if err := table.Validate(); err != nil {
			fatal(err)
		}
		file.Tables[c.String()] = table
	}
	if err := file.Validate(); err != nil {
		fatal(err)
	}
	if err := file.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tables, job cell verified exhaustively)\n", *out, len(file.Tables))

	// --- Application execution: replay the application's collective
	// calls under tuned vs default selections.
	appName := *app
	if appName == "" {
		appName = "LAMMPS"
	}
	tuned, def, err := replayApp(runner, file, appName, *nodes, *ppn, *seed, colls)
	if err != nil {
		fatal(err)
	}
	speedup := def / tuned
	fmt.Printf("application %s collective time: tuned %.2f s vs default %.2f s (%.3fx speedup)\n",
		appName, tuned/1e6, def/1e6, speedup)
	if speedup > 1 {
		breakEvenHours := machineTime * speedup / (speedup - 1) / 1e6 / 3600
		fmt.Printf("break-even application runtime: %.2f hours\n", breakEvenHours)
	} else {
		fmt.Println("no collective speedup on this job; default selections were already optimal")
	}
}

// collectiveList resolves the user's collective list (Section V: the
// only extra input ACCLAiM needs).
func collectiveList(app, list string) ([]coll.Collective, error) {
	if list != "" {
		var out []coll.Collective
		for _, name := range strings.Split(list, ",") {
			c, err := coll.ParseCollective(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}
	if app != "" {
		return traces.Collectives(app)
	}
	return coll.Collectives(), nil
}

// replayApp prices every collective call of the application's trace
// under the tuned rule file and under the default heuristics, returning
// total collective time for one pass over the trace (microseconds). The
// rule file is compiled once into the serving engine and every tuned
// selection goes through the same lock-free lookup a deployed MPI
// library would use; collectives the file does not cover fall back to
// the default heuristic inside RunSelected, exactly like an untuned
// library call.
func replayApp(runner *benchmark.Runner, file *rules.File, app string, nodes, ppn int, seed int64, colls []coll.Collective) (tuned, def float64, err error) {
	tr, err := traces.Synthesize(app, nodes, seed)
	if err != nil {
		return 0, 0, err
	}
	srv, err := ruleserver.NewFromFile(file)
	if err != nil {
		return 0, 0, err
	}
	use := make(map[coll.Collective]bool, len(colls))
	for _, c := range colls {
		use[c] = true
	}
	for _, call := range tr.Calls {
		if !use[call.Coll] {
			continue
		}
		p := featspace.Point{Nodes: nodes, PPN: ppn, MsgBytes: call.MsgBytes}

		defAlg := heuristic.Select(call.Coll, p)
		dm, err := runner.Run(benchmark.Spec{Coll: call.Coll, Alg: defAlg, Point: p})
		if err != nil {
			return 0, 0, err
		}
		def += dm.MeanTime * float64(call.Count)

		tm, _, err := runner.RunSelected(call.Coll, srv, p)
		if err != nil {
			return 0, 0, err
		}
		tuned += tm.MeanTime * float64(call.Count)
	}
	return tuned, def, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acclaim:", err)
	os.Exit(1)
}
