// Command benchguard parses `go test -bench` output, emits a JSON
// snapshot (the BENCH_ci.json CI artifact), and gates on regressions
// against a checked-in baseline.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/forest/ | \
//	    go run ./cmd/benchguard -baseline testdata/bench_baseline.json -out BENCH_ci.json
//
//	go test -bench=. ... | go run ./cmd/benchguard -update testdata/bench_baseline.json
//
// By default only allocs/op is gated: allocation counts are
// deterministic properties of the code, so they hold the line on the
// scratch-buffer/arena optimizations without the noise of shared CI
// runners. A baseline of exactly 0 allocs/op (or 0 B/op) is a hard
// gate: any allocation on a zero-alloc path fails regardless of
// tolerance. Pass -time to additionally gate ns/op (useful on quiet,
// dedicated hardware). The tolerance is relative (-tolerance 0.25
// fails anything >25% above baseline). Repeatable -floor name=value
// flags put a lower bound on custom metrics (e.g. -floor speedup=4
// fails any benchmark whose reported speedup drops below 4);
// repeatable -ceiling name=value flags put an upper bound (e.g.
// -ceiling p99_ns=2000000 fails any benchmark whose reported p99_ns
// exceeds 2ms — the SLO gate the load-smoke CI job uses). Floors and
// ceilings apply even without -baseline, so absolute SLO gates need no
// checked-in timing baseline.
//
// Exit codes (shared with cmd/acclaim-lint): 0 = clean, 1 = findings
// (benchmark regressions), 2 = tool error (bad flags, empty input,
// unreadable baseline). Note `go run` collapses any nonzero child
// status to 1; build the binary to observe the 1-vs-2 distinction.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_ci.json / baseline file format.
type Snapshot struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

// boundFlags collects repeatable name=value metric-bound arguments;
// the same type backs -floor (lower bounds) and -ceiling (upper
// bounds).
type boundFlags struct {
	flagName string
	vals     map[string]float64
}

func (f *boundFlags) String() string {
	parts := make([]string, 0, len(f.vals))
	for name, v := range f.vals {
		parts = append(parts, fmt.Sprintf("%s=%g", name, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f *boundFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("bad -%s %q: want name=value", f.flagName, s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad -%s %q: %v", f.flagName, s, err)
	}
	f.vals[name] = v
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	out := flag.String("out", "", "write the parsed snapshot JSON here")
	update := flag.String("update", "", "write the snapshot as a new baseline to this path and exit")
	tolerance := flag.Float64("tolerance", 0.25, "relative regression tolerance")
	gateTime := flag.Bool("time", false, "also gate ns/op (timing is noisy on shared runners)")
	floors := &boundFlags{flagName: "floor", vals: map[string]float64{}}
	flag.Var(floors, "floor", "metric lower bound as name=value, repeatable (e.g. -floor speedup=4)")
	ceilings := &boundFlags{flagName: "ceiling", vals: map[string]float64{}}
	flag.Var(ceilings, "ceiling", "metric upper bound as name=value, repeatable (e.g. -ceiling p99_ns=2000000)")
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(),
			"usage: go test -bench=. ... | benchguard [flags]\n\n"+
				"Parses `go test -bench` output from stdin, snapshots it as JSON, and\n"+
				"gates on regressions against a checked-in baseline.\n\n"+
				"Exit codes: 0 = clean, 1 = findings, 2 = tool error.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	// Write the snapshot before any gate or input check can exit
	// nonzero: BENCH_ci.json is a CI artifact that matters most on
	// failing runs, so every exit path below leaves it behind.
	if *out != "" {
		if err := writeJSON(*out, snap); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchguard: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *update != "" {
		if err := writeJSON(*update, snap); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchguard: baseline %s updated (%d benchmarks)\n", *update, len(snap.Benchmarks))
		return
	}
	if *baseline == "" && len(floors.vals) == 0 && len(ceilings.vals) == 0 {
		return
	}
	base := &Snapshot{Benchmarks: map[string]Result{}}
	if *baseline != "" {
		if base, err = readJSON(*baseline); err != nil {
			fatal(err)
		}
	}
	failures := compare(base, snap, *tolerance, *gateTime, floors.vals, ceilings.vals)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "REGRESSION:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	if *baseline != "" {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmarks within %.0f%% of baseline\n",
			len(snap.Benchmarks), *tolerance*100)
	} else {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmarks within metric bounds\n",
			len(snap.Benchmarks))
	}
}

// parse reads standard `go test -bench` output. Lines look like:
//
//	BenchmarkTrainSerial-8   1   1047264713 ns/op   56239360 B/op   1342612 allocs/op   1.5 speedup
func parse(f io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through for the CI log
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := normalize(fields[0])
		r := snap.Benchmarks[name] // merge reruns: last write wins per unit
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		snap.Benchmarks[name] = r
	}
	return snap, sc.Err()
}

// normalize strips the -GOMAXPROCS suffix so baselines transfer across
// machines with different core counts.
func normalize(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare returns a message per regression beyond the tolerance.
// Benchmarks absent from either side are skipped (adds and removals
// are changes to review, not regressions). Allocation metrics with a
// zero baseline are gated exactly: a zero-alloc path that starts
// allocating fails no matter the tolerance. Metric floors and ceilings
// apply to every current benchmark that reports the named metric,
// baseline or not.
func compare(base, cur *Snapshot, tol float64, gateTime bool, floors, ceilings map[string]float64) []string {
	var fails []string
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cur.Benchmarks[name]
		for metric, floor := range floors {
			if v, ok := c.Metrics[metric]; ok && v < floor {
				fails = append(fails, fmt.Sprintf("%s %s: %.3f below floor %.3f",
					name, metric, v, floor))
			}
		}
		for metric, ceil := range ceilings {
			if v, ok := c.Metrics[metric]; ok && v > ceil {
				fails = append(fails, fmt.Sprintf("%s %s: %.3f above ceiling %.3f",
					name, metric, v, ceil))
			}
		}
		b, ok := base.Benchmarks[name]
		if !ok {
			if len(base.Benchmarks) > 0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s not in baseline (new benchmark, skipping)\n", name)
			}
			continue
		}
		check := func(metric string, baseV, curV float64, zeroGated bool) {
			if baseV <= 0 {
				if zeroGated && curV > 0 {
					fails = append(fails, fmt.Sprintf("%s %s: 0 -> %.0f (zero-alloc path regressed)",
						name, metric, curV))
				}
				return
			}
			if curV > baseV*(1+tol) {
				fails = append(fails, fmt.Sprintf("%s %s: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					name, metric, baseV, curV, 100*(curV/baseV-1), tol*100))
			}
		}
		check("allocs/op", b.AllocsPerOp, c.AllocsPerOp, true)
		check("B/op", b.BytesPerOp, c.BytesPerOp, true)
		if gateTime {
			check("ns/op", b.NsPerOp, c.NsPerOp, false)
		}
	}
	return fails
}

func readJSON(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func writeJSON(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fatal reports a tool error on the shared benchguard/acclaim-lint
// convention: findings exit 1, tool breakage exits 2.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
