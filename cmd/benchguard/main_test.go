package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: acclaim/internal/forest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrainSerial-8      	       1	1047264713 ns/op	56239360 B/op	 1342612 allocs/op
BenchmarkTrainParallel-8    	       1	 400000000 ns/op	56239360 B/op	 1342612 allocs/op
BenchmarkTrainSpeedup       	       1	2167620197 ns/op	         8.000 procs	         2.500 speedup
PASS
ok  	acclaim/internal/forest	6.515s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	serial, ok := snap.Benchmarks["BenchmarkTrainSerial"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not normalized away")
	}
	if serial.NsPerOp != 1047264713 || serial.AllocsPerOp != 1342612 || serial.BytesPerOp != 56239360 {
		t.Errorf("bad serial result: %+v", serial)
	}
	speedup := snap.Benchmarks["BenchmarkTrainSpeedup"]
	if speedup.Metrics["speedup"] != 2.5 || speedup.Metrics["procs"] != 8 {
		t.Errorf("custom metrics not parsed: %+v", speedup.Metrics)
	}
}

func TestCompare(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkGone": {AllocsPerOp: 5},
	}}
	cur := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 500, AllocsPerOp: 1100}, // allocs within 25%, time 5x
		"BenchmarkB": {NsPerOp: 90, AllocsPerOp: 1500},  // allocs regressed 50%
		"BenchmarkNew": {AllocsPerOp: 9},
	}}
	fails := compare(base, cur, 0.25, false)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkB") {
		t.Errorf("alloc-only gate failures = %v, want just BenchmarkB", fails)
	}
	fails = compare(base, cur, 0.25, true)
	if len(fails) != 2 {
		t.Errorf("time-gated failures = %v, want BenchmarkA and BenchmarkB", fails)
	}
	if fails := compare(base, base, 0.25, true); len(fails) != 0 {
		t.Errorf("identical snapshots should pass, got %v", fails)
	}
}

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkTrain-16":    "BenchmarkTrain",
		"BenchmarkTrain":       "BenchmarkTrain",
		"BenchmarkNonP2-Every": "BenchmarkNonP2-Every",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
