package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: acclaim/internal/forest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrainSerial-8      	       1	1047264713 ns/op	56239360 B/op	 1342612 allocs/op
BenchmarkTrainParallel-8    	       1	 400000000 ns/op	56239360 B/op	 1342612 allocs/op
BenchmarkTrainSpeedup       	       1	2167620197 ns/op	         8.000 procs	         2.500 speedup
PASS
ok  	acclaim/internal/forest	6.515s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	serial, ok := snap.Benchmarks["BenchmarkTrainSerial"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not normalized away")
	}
	if serial.NsPerOp != 1047264713 || serial.AllocsPerOp != 1342612 || serial.BytesPerOp != 56239360 {
		t.Errorf("bad serial result: %+v", serial)
	}
	speedup := snap.Benchmarks["BenchmarkTrainSpeedup"]
	if speedup.Metrics["speedup"] != 2.5 || speedup.Metrics["procs"] != 8 {
		t.Errorf("custom metrics not parsed: %+v", speedup.Metrics)
	}
}

func TestCompare(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkGone": {AllocsPerOp: 5},
	}}
	cur := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 500, AllocsPerOp: 1100}, // allocs within 25%, time 5x
		"BenchmarkB":   {NsPerOp: 90, AllocsPerOp: 1500},  // allocs regressed 50%
		"BenchmarkNew": {AllocsPerOp: 9},
	}}
	fails := compare(base, cur, 0.25, false, nil, nil)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkB") {
		t.Errorf("alloc-only gate failures = %v, want just BenchmarkB", fails)
	}
	fails = compare(base, cur, 0.25, true, nil, nil)
	if len(fails) != 2 {
		t.Errorf("time-gated failures = %v, want BenchmarkA and BenchmarkB", fails)
	}
	if fails := compare(base, base, 0.25, true, nil, nil); len(fails) != 0 {
		t.Errorf("identical snapshots should pass, got %v", fails)
	}
}

// TestCompareZeroAllocGate proves a zero-alloc baseline is a hard gate:
// one allocation on a path the baseline records as alloc-free fails
// regardless of the relative tolerance.
func TestCompareZeroAllocGate(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkHotPath": {NsPerOp: 7}, // 0 allocs/op, 0 B/op (omitted in baseline JSON)
	}}
	still := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkHotPath": {NsPerOp: 9},
	}}
	if fails := compare(base, still, 0.25, false, nil, nil); len(fails) != 0 {
		t.Errorf("still-zero-alloc run should pass, got %v", fails)
	}
	leaky := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkHotPath": {NsPerOp: 9, AllocsPerOp: 1, BytesPerOp: 16},
	}}
	fails := compare(base, leaky, 0.25, false, nil, nil)
	if len(fails) != 2 || !strings.Contains(fails[0], "zero-alloc") {
		t.Errorf("allocating on a zero-alloc path should fail both units, got %v", fails)
	}
}

// TestCompareMetricFloor proves -floor gates custom metrics from below,
// including on benchmarks missing from the baseline.
func TestCompareMetricFloor(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkSpeedup": {NsPerOp: 100, Metrics: map[string]float64{"speedup": 5.5}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkSpeedup": {NsPerOp: 100, Metrics: map[string]float64{"speedup": 5.2}},
		"BenchmarkNew":     {NsPerOp: 100, Metrics: map[string]float64{"speedup": 1.5}},
		"BenchmarkOther":   {NsPerOp: 100, Metrics: map[string]float64{"procs": 8}},
	}}
	if fails := compare(base, cur, 0.25, false, nil, nil); len(fails) != 0 {
		t.Errorf("no floors set, expected no failures, got %v", fails)
	}
	fails := compare(base, cur, 0.25, false, map[string]float64{"speedup": 4}, nil)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkNew") {
		t.Errorf("floor 4 should fail only BenchmarkNew, got %v", fails)
	}
	fails = compare(base, cur, 0.25, false, map[string]float64{"speedup": 5.4}, nil)
	if len(fails) != 2 {
		t.Errorf("floor 5.4 should fail both speedup benchmarks, got %v", fails)
	}
}

// TestCompareMetricCeiling proves -ceiling gates custom metrics from
// above — the SLO direction (latency must stay under a bound) — and
// that an empty baseline still applies the bound without noise about
// missing benchmarks.
func TestCompareMetricCeiling(t *testing.T) {
	empty := &Snapshot{Benchmarks: map[string]Result{}}
	cur := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkLoadSmoke": {NsPerOp: 1e9, Metrics: map[string]float64{
			"throughput_qps": 800000, "p99_ns": 2500,
		}},
	}}
	if fails := compare(empty, cur, 0.25, false, nil, nil); len(fails) != 0 {
		t.Errorf("no bounds set, expected no failures, got %v", fails)
	}
	fails := compare(empty, cur, 0.25, false, nil, map[string]float64{"p99_ns": 2000})
	if len(fails) != 1 || !strings.Contains(fails[0], "above ceiling") {
		t.Errorf("ceiling 2000 should fail p99_ns=2500, got %v", fails)
	}
	if fails := compare(empty, cur, 0.25, false, nil, map[string]float64{"p99_ns": 3000}); len(fails) != 0 {
		t.Errorf("ceiling 3000 should pass, got %v", fails)
	}
	// Both directions at once: the load-smoke gate shape.
	fails = compare(empty, cur, 0.25, false,
		map[string]float64{"throughput_qps": 1e6}, map[string]float64{"p99_ns": 2000})
	if len(fails) != 2 {
		t.Errorf("floor+ceiling should both fail, got %v", fails)
	}
}

func TestBoundFlags(t *testing.T) {
	f := &boundFlags{flagName: "floor", vals: map[string]float64{}}
	if err := f.Set("speedup=4.5"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("procs=2"); err != nil {
		t.Fatal(err)
	}
	if f.vals["speedup"] != 4.5 || f.vals["procs"] != 2 {
		t.Errorf("parsed floors = %v", f.vals)
	}
	if got, want := f.String(), "procs=2,speedup=4.5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if err := f.Set("nofloat=x"); err == nil {
		t.Error("expected error for non-numeric floor")
	}
	if err := f.Set("novalue"); err == nil {
		t.Error("expected error for missing =")
	}
	c := &boundFlags{flagName: "ceiling", vals: map[string]float64{}}
	if err := c.Set("oops"); err == nil || !strings.Contains(err.Error(), "-ceiling") {
		t.Errorf("ceiling error should name its flag, got %v", err)
	}
}

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkTrain-16":    "BenchmarkTrain",
		"BenchmarkTrain":       "BenchmarkTrain",
		"BenchmarkNonP2-Every": "BenchmarkNonP2-Every",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
