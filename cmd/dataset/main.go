// Command dataset exhaustively benchmarks the simulated machine over a
// power-of-two grid — the "precollected dataset" of the paper's
// simulated experiments — and writes it to a gob file for cmd/experiments
// and library users to replay.
//
// Usage:
//
//	dataset -out sim.gob [-nodes 64] [-ppn 8] [-maxmsg 1048576]
//	        [-nonp2] [-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

func main() {
	var (
		out     = flag.String("out", "sim.gob", "output dataset path")
		nodes   = flag.Int("nodes", 64, "maximum node count")
		ppn     = flag.Int("ppn", 8, "maximum processes per node")
		maxMsg  = flag.Int("maxmsg", 1<<20, "maximum message size (bytes)")
		nonP2   = flag.Bool("nonp2", true, "also collect the non-P2 nodes/message test sets")
		seed    = flag.Int64("seed", 42, "seed")
		workers = flag.Int("workers", 0, "simulator workers (0 = NumCPU)")
	)
	flag.Parse()

	space := featspace.P2Grid(*nodes, *ppn, 8, *maxMsg)
	alloc := cluster.TopologyTwoPairs()
	if *nodes > alloc.Size() {
		machine := cluster.Machine{Nodes: 4 * *nodes, NodesPerRack: 16, CoresPerNode: 64}
		var err error
		alloc, err = cluster.Contiguous(machine, 0, *nodes)
		if err != nil {
			fatal(err)
		}
	}
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc,
		benchmark.Config{Seed: *seed})
	if err != nil {
		fatal(err)
	}

	pts := space.Points()
	if *nonP2 {
		rng := rand.New(rand.NewSource(*seed + 17))
		pts = append(pts, dataset.NonP2NodesPoints(rng, space)...)
		pts = append(pts, dataset.NonP2MsgPoints(rng, space)...)
	}

	start := time.Now()
	lastPct := -1
	ds, err := dataset.Collect(runner, pts, dataset.CollectOptions{
		Workers: *workers,
		Progress: func(done, total int) {
			pct := done * 100 / total
			if pct/5 != lastPct/5 {
				fmt.Fprintf(os.Stderr, "\rcollecting: %3d%% (%d/%d)", pct, done, total)
				lastPct = pct
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d entries in %v\n", *out, ds.Len(), time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dataset:", err)
	os.Exit(1)
}
