// Command experiments regenerates the data behind every figure in the
// ACCLAiM paper's evaluation (Figures 3–7 and 9–15) from the simulated
// testbed and prints the series as tables.
//
// Usage:
//
//	experiments [-fig N|all] [-space tiny|sim] [-cache path] [-seed N]
//	            [-nodes N] [-ppn N]
//
// -space sim uses the full paper-scale grid (64 nodes, 1 MiB messages);
// collecting its replay dataset takes a few minutes of CPU the first
// time, so -cache is recommended. -nodes/-ppn scale the Figure 14
// production run (paper: 128 nodes, 16 ppn).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"acclaim/internal/benchmark"
	"acclaim/internal/coll"
	"acclaim/internal/experiments"
	"acclaim/internal/featspace"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate (3,4,5,6,7,9,10,11,12,13,14,15 or 'all')")
		space = flag.String("space", "tiny", "testbed grid: 'tiny' or 'sim' (paper-scale)")
		cache = flag.String("cache", "", "dataset cache path (used with -space sim)")
		seed  = flag.Int64("seed", 42, "experiment seed")
		nodes = flag.Int("nodes", 32, "production node count for figure 14 (paper: 128)")
		ppn   = flag.Int("ppn", 4, "production max ppn for figure 14 (paper: 16)")

		matrix      = flag.Bool("matrix", false, "run the scenario matrix instead of paper figures")
		matrixColls = flag.String("matrix-collectives", "", "comma-separated collectives for -matrix (default: all)")
		matrixTopos = flag.String("matrix-topologies", "", "comma-separated topologies for -matrix (default: all)")
		matrixScens = flag.String("matrix-scenarios", "", "comma-separated scenarios for -matrix (default: all)")
		msg         = flag.Int("msg", 4096, "message size in bytes for -matrix")
	)
	flag.Parse()

	if *matrix {
		if err := runMatrix(*matrixColls, *matrixTopos, *matrixScens, *nodes, *ppn, *msg, *seed); err != nil {
			fatal(err)
		}
		return
	}

	want := map[int]bool{}
	if *fig == "all" {
		for _, n := range []int{3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15} {
			want[n] = true
		}
	} else {
		for _, part := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -fig value %q", part))
			}
			want[n] = true
		}
	}

	var grid featspace.Space
	switch *space {
	case "tiny":
		grid = experiments.TinySpace()
	case "sim":
		grid = experiments.SimSpace()
	default:
		fatal(fmt.Errorf("unknown -space %q", *space))
	}

	needsLab := false
	for _, n := range []int{3, 5, 6, 7, 9, 10, 11, 12, 13} {
		if want[n] {
			needsLab = true
		}
	}
	var lab *experiments.Lab
	if needsLab {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "building testbed (%d grid points)...\n", grid.Size())
		var err error
		lab, err = experiments.NewLab(grid, *cache, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "testbed ready: %d dataset entries in %v\n", lab.DS.Len(), time.Since(start).Round(time.Millisecond))
	}

	run := func(n int, f func() (string, error)) {
		if !want[n] {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fatal(fmt.Errorf("figure %d: %w", n, err))
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[figure %d done in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
	}

	run(3, func() (string, error) {
		rows, err := experiments.Fig3(lab, nil)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig3(rows), nil
	})
	run(4, func() (string, error) {
		rows, agg := experiments.Fig4(*seed)
		return experiments.ReportFig4(rows, agg), nil
	})
	run(5, func() (string, error) {
		series, err := experiments.Fig5(lab, nil)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig5(series), nil
	})
	run(6, func() (string, error) {
		rows, err := experiments.Fig6(lab)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig6(rows), nil
	})
	run(7, func() (string, error) {
		pts, err := experiments.Fig7(lab, coll.Bcast)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig7(pts), nil
	})
	run(9, func() (string, error) {
		file, err := experiments.Fig9(lab)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString("Figure 9 — generated MPICH-style selection file\n")
		if err := file.Write(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	})
	run(10, func() (string, error) {
		rows, cum, err := experiments.Fig10(lab, 0)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig10(rows, cum), nil
	})
	run(11, func() (string, error) {
		series, err := experiments.Fig11(lab, nil)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig11(series), nil
	})
	run(12, func() (string, error) {
		rows, ratio, err := experiments.Fig12(lab)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig12(rows, ratio), nil
	})
	run(13, func() (string, error) {
		rows, err := experiments.Fig13(lab)
		if err != nil {
			return "", err
		}
		return experiments.ReportFig13(rows), nil
	})

	var prodTotal float64
	run(14, func() (string, error) {
		rows, total, err := experiments.Fig14(*nodes, *ppn, *seed)
		if err != nil {
			return "", err
		}
		prodTotal = total
		return experiments.ReportFig14(rows, total), nil
	})
	run(15, func() (string, error) {
		if prodTotal == 0 {
			// Figure 15 needs a training time; derive one from a small
			// production run if figure 14 was not requested.
			_, total, err := experiments.Fig14(*nodes, *ppn, *seed)
			if err != nil {
				return "", err
			}
			prodTotal = total
		}
		rows := experiments.Fig15(prodTotal, nil)
		return experiments.ReportFig15(rows, prodTotal), nil
	})
}

// runMatrix parses the -matrix-* lists and prints the scenario matrix.
func runMatrix(collList, topoList, scenList string, nodes, ppn, msg int, seed int64) error {
	var colls []coll.Collective
	for _, name := range splitList(collList) {
		c, err := coll.ParseCollective(name)
		if err != nil {
			return err
		}
		colls = append(colls, c)
	}
	topos := splitList(topoList)
	var scens []benchmark.Scenario
	for _, name := range splitList(scenList) {
		s, err := benchmark.ParseScenario(name)
		if err != nil {
			return err
		}
		scens = append(scens, s)
	}
	start := time.Now()
	results, err := experiments.ScenarioMatrix(colls, topos, scens, nodes, ppn, msg, seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ReportScenarioMatrix(results))
	fmt.Fprintf(os.Stderr, "[scenario matrix: %d cells in %v]\n", len(results), time.Since(start).Round(time.Millisecond))
	return nil
}

// splitList splits a comma-separated flag, mapping "" to nil (= all).
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
