// Package acclaim is a from-scratch Go reproduction of "ACCLAiM:
// Advancing the Practicality of MPI Collective Communication Autotuning
// Using Machine Learning" (Wilkins et al., IEEE CLUSTER 2022).
//
// The library lives under internal/: a virtual-time MPI simulator and
// the ten MPICH collective algorithms (simmpi, coll), the network and
// cluster models (netmodel, cluster), the measurement and dataset layer
// (benchmark, dataset, sched), the learning stack (forest, stats,
// featspace, autotune), the three autotuners (core = ACCLAiM, fact,
// hunold) with the library-default heuristics they are compared against
// (heuristic), the MPICH-style selection-rule files ACCLAiM emits
// (rules), application trace synthesis (traces), and one driver per
// paper figure (experiments).
//
// The benchmarks in this file's package regenerate each figure's data;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package acclaim
