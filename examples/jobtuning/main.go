// Jobtuning: the full production pipeline of the paper's Figure 1(b),
// as a library user would script it — submit a job to a best-effort
// scheduler, train ACCLAiM for the application's collectives, compare
// tuned vs default selections on the application's own communication
// mix, and decide whether tuning paid off (the Figure 15 break-even
// analysis).
//
// Run with: go run ./examples/jobtuning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/heuristic"
	"acclaim/internal/netmodel"
	"acclaim/internal/traces"
)

const (
	jobNodes = 16
	jobPPN   = 4
	app      = "Quicksilver"
	seed     = 3
)

func main() {
	// The scheduler hands us nodes wherever it finds them; the job's
	// network environment follows from how scattered they are.
	machine := cluster.Theta()
	rng := rand.New(rand.NewSource(seed))
	alloc, err := cluster.BestEffort(machine, rng, jobNodes)
	if err != nil {
		log.Fatal(err)
	}
	env := netmodel.SampleEnv(rng, alloc)
	fmt.Printf("job: %d nodes on %d racks, effective latency factor %.2f\n",
		alloc.Size(), alloc.RackSpan(), env.LatencyFactor)

	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), env, alloc, benchmark.Config{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// The only user input ACCLAiM needs: which collectives the app uses.
	colls, err := traces.Collectives(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s uses: %v\n", app, colls)

	tuner := core.New(core.Config{
		Space:     featspace.P2Grid(jobNodes, jobPPN, 8, 1<<20),
		Forest:    forest.Config{NTrees: 30, Seed: seed},
		Seed:      seed,
		Parallel:  true,
		BatchSize: 4,
	}, autotune.LiveBackend{Runner: runner})

	results := make(map[coll.Collective]*core.Result)
	var trainTime float64
	for _, c := range colls {
		res, err := tuner.Tune(c)
		if err != nil {
			log.Fatal(err)
		}
		results[c] = res
		trainTime += res.Ledger.Collection
	}
	fmt.Printf("training consumed %.2f s of machine time (no test set — Section IV-C)\n", trainTime/1e6)

	file, err := tuner.BuildRulesFile(results, "jobtuning")
	if err != nil {
		log.Fatal(err)
	}

	// Replay the application's collective mix under both selectors.
	tr, err := traces.Synthesize(app, jobNodes, seed)
	if err != nil {
		log.Fatal(err)
	}
	var tuned, def float64
	for _, call := range tr.Calls {
		tab, ok := file.Tables[call.Coll.String()]
		if !ok {
			continue
		}
		p := featspace.Point{Nodes: jobNodes, PPN: jobPPN, MsgBytes: call.MsgBytes}
		tunedAlg, err := tab.Select(jobNodes, jobPPN, call.MsgBytes)
		if err != nil {
			log.Fatal(err)
		}
		defAlg := heuristic.Select(call.Coll, p)
		mt, err := runner.Run(benchmark.Spec{Coll: call.Coll, Alg: tunedAlg, Point: p})
		if err != nil {
			log.Fatal(err)
		}
		md, err := runner.Run(benchmark.Spec{Coll: call.Coll, Alg: defAlg, Point: p})
		if err != nil {
			log.Fatal(err)
		}
		tuned += mt.MeanTime * float64(call.Count)
		def += md.MeanTime * float64(call.Count)
	}
	speedup := def / tuned
	fmt.Printf("one pass over the app's collectives: tuned %.2f s, default %.2f s (%.3fx)\n",
		tuned/1e6, def/1e6, speedup)

	// Break-even: the job saves (1 - 1/speedup) of its collective time;
	// it must run long enough for that to repay the training cost.
	if speedup <= 1 {
		fmt.Println("defaults were already optimal for this job; training cost is sunk")
		return
	}
	perPassSaving := def - tuned
	passes := trainTime / perPassSaving
	fmt.Printf("break-even after %.0f passes of the communication mix (R_min = T*s/(s-1) = %.2f h of collective time)\n",
		passes, trainTime*speedup/(speedup-1)/1e6/3600)
}
