// Quickstart: tune one collective with ACCLAiM on a small simulated
// cluster and query the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
)

func main() {
	// 1. A job: 16 contiguous nodes of a Theta-like machine, calm network.
	alloc, err := cluster.Contiguous(cluster.Theta(), 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc,
		benchmark.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. An ACCLAiM tuner over the job's feature space (up to 16 nodes,
	// 4 ppn, 1 MiB messages), collecting benchmark waves in parallel.
	tuner := core.New(core.Config{
		Space:     featspace.P2Grid(16, 4, 8, 1<<20),
		Forest:    forest.Config{NTrees: 30, Seed: 1},
		Seed:      1,
		Parallel:  true,
		BatchSize: 4,
	}, autotune.LiveBackend{Runner: runner})

	// 3. Train a model for MPI_Bcast.
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d benchmarks (%.2f s of machine time), converged=%v\n",
		len(res.Order), res.Ledger.Collection/1e6, res.Converged)

	// 4. Ask the model for selections — including a non-P2 message size.
	for _, p := range []featspace.Point{
		{Nodes: 16, PPN: 4, MsgBytes: 64},
		{Nodes: 16, PPN: 4, MsgBytes: 24576},
		{Nodes: 16, PPN: 4, MsgBytes: 1 << 20},
	} {
		fmt.Printf("bcast at %v -> %s\n", p, res.Model.Select(p))
	}

	// 5. Lower the model into an MPICH-style JSON selection file.
	file, err := tuner.BuildRulesFile(map[coll.Collective]*core.Result{coll.Bcast: res}, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated selection file:")
	if err := file.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 6. Compile the file into the serving engine — the lock-free,
	// zero-allocation lookup path a deployed MPI library would hit at
	// every collective call (also available standalone as
	// cmd/acclaim-serve).
	srv, err := ruleserver.NewFromFile(file)
	if err != nil {
		log.Fatal(err)
	}
	alg, ok := srv.Lookup(coll.Bcast, 16, 4, 100000)
	if !ok {
		log.Fatal("no rule for bcast")
	}
	fmt.Printf("\nserved selection for 100000-byte bcast: %s\n", alg)
	st := srv.Stats()
	fmt.Printf("serving snapshot v%d: %d tables, %d rules\n", st.Version, st.Tables, st.Rules)
	_ = rules.Unbounded
}
