// Topology study: how much parallel benchmark collection buys on
// different allocation shapes — the Figure 13 experiment as a library
// user would run it. A fixed list of microbenchmarks is scheduled with
// the topology-aware greedy scheduler (Section IV-D) onto the four
// canonical 64-node layouts and replayed sequentially vs in waves.
//
// Run with: go run ./examples/topology_study
package main

import (
	"fmt"
	"log"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
	"acclaim/internal/sched"
)

func main() {
	// A benchmark mix like an ACCLAiM training round: various node
	// demands, highest priority first.
	var specs []benchmark.Spec
	for _, nodes := range []int{16, 8, 8, 4, 4, 4, 2, 2, 32, 16, 8, 2} {
		specs = append(specs, benchmark.Spec{
			Coll: coll.Allreduce, Alg: "recursive_doubling",
			Point: featspace.Point{Nodes: nodes, PPN: 2, MsgBytes: 65536},
		})
	}

	topologies := []struct {
		name  string
		alloc cluster.Allocation
	}{
		{"Single Rack (64 nodes, 1 rack)", cluster.TopologySingleRack()},
		{"Rack Pair (2 racks x 32)", cluster.TopologyRackPair()},
		{"Two Pairs (4 racks x 16)", cluster.TopologyTwoPairs()},
		{"Max Parallel (64 separate pairs)", cluster.TopologyMaxParallel()},
	}

	fmt.Printf("%-34s %-12s %-12s %-9s %-s\n", "topology", "sequential", "parallel", "speedup", "waves")
	for _, tc := range topologies {
		runner, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), tc.alloc,
			benchmark.Config{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		_, seq, err := runner.RunSequential(specs)
		if err != nil {
			log.Fatal(err)
		}
		_, par, waves, err := runner.RunParallel(specs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %-12.2f %-12.2f %-9.2f %v\n",
			tc.name, seq/1e3, par/1e3, seq/par, waves)
	}
	fmt.Println("\ntimes in milliseconds of machine time; waves list benchmarks per wave")

	// Show the scheduler's placements for one wave on the two-pairs
	// layout, and that they satisfy the congestion constraints.
	alloc := cluster.TopologyTwoPairs()
	reqs := make([]sched.Request, len(specs))
	for i, s := range specs {
		reqs[i] = sched.Request{ID: i, Nodes: s.Point.Nodes, Priority: float64(len(specs) - i)}
	}
	wave, rest := sched.PlanWave(alloc, reqs)
	fmt.Printf("\nfirst wave on Two Pairs: %d benchmarks placed, %d deferred\n", len(wave), len(rest))
	for _, p := range wave {
		nodes := p.PhysicalNodes(alloc)
		fmt.Printf("  request %d (%d nodes) -> physical nodes %v..%v\n",
			p.ID, p.Nodes, nodes[0], nodes[len(nodes)-1])
	}
	if err := sched.CheckWave(alloc, wave); err != nil {
		log.Fatalf("wave violates congestion constraints: %v", err)
	}
	fmt.Println("wave passes the rack/pair congestion checks")
}
