// Tracestudy: profile application communication traces the way the
// paper does for Figure 4 — how common are non-power-of-two message
// sizes, which collectives dominate each application, and what that
// means for an autotuner that only trains on powers of two.
//
// Run with: go run ./examples/tracestudy
package main

import (
	"fmt"
	"log"
	"sort"

	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/traces"
)

func main() {
	const seed = 42

	fmt.Println("Non-power-of-two message sizes per application (Figure 4):")
	rows := traces.ProfileAll(seed)
	for _, r := range rows {
		if !r.Available {
			fmt.Printf("  %-13s %5d nodes   (trace unavailable)\n", r.App, r.Nodes)
			continue
		}
		fmt.Printf("  %-13s %5d nodes   %5.1f%% non-P2\n", r.App, r.Nodes, r.NonP2Share*100)
	}
	fmt.Printf("aggregate: %.1f%% (paper: 15.7%%)\n\n", traces.AggregateNonP2(rows)*100)

	// Per-application collective mix — the "collective list" a user
	// would submit with an ACCLAiM job.
	for _, app := range traces.Apps() {
		tr, err := traces.Synthesize(app, 64, seed)
		if err != nil {
			log.Fatal(err)
		}
		shares := tr.CollectiveShare()
		type kv struct {
			c coll.Collective
			s float64
		}
		var mix []kv
		for c, s := range shares {
			mix = append(mix, kv{c, s})
		}
		sort.Slice(mix, func(i, j int) bool { return mix[i].s > mix[j].s })
		fmt.Printf("%s (%d collective calls):", app, tr.TotalCalls())
		for _, m := range mix {
			fmt.Printf("  %v %.0f%%", m.c, m.s*100)
		}
		fmt.Println()

		// Where the non-P2 bytes live: bucket call counts by size class.
		var smallNP, largeNP int
		for _, call := range tr.Calls {
			if featspace.IsP2(call.MsgBytes) {
				continue
			}
			if call.MsgBytes < 65536 {
				smallNP += call.Count
			} else {
				largeNP += call.Count
			}
		}
		fmt.Printf("  non-P2 calls: %d below 64 KiB, %d above — both regimes need coverage\n",
			smallNP, largeNP)
	}

	fmt.Println("\nconclusion: ~1 in 6 collective calls is non-P2; an autotuner that")
	fmt.Println("never trains on non-P2 sizes (Figure 5) cannot price them — which is")
	fmt.Println("why ACCLAiM spends every 5th training point there (Section IV-B).")
}
