module acclaim

go 1.22
