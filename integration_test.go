package acclaim_test

import (
	"math"
	"path/filepath"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/heuristic"
	"acclaim/internal/netmodel"
	"acclaim/internal/rules"
	"acclaim/internal/traces"
)

// TestEndToEndPipeline walks the full Figure 1(b) production flow as a
// single test: job allocation -> ACCLAiM training with parallel
// collection -> JSON rule file -> selection replay against ground
// truth, compared with the library-default heuristics.
func TestEndToEndPipeline(t *testing.T) {
	const (
		jobNodes = 16
		jobPPN   = 2
		seed     = 3
	)
	machine := cluster.Theta()
	rng := newSeededRand(seed)
	alloc, err := cluster.BestEffort(machine, rng, jobNodes)
	if err != nil {
		t.Fatal(err)
	}
	env := netmodel.SampleEnv(rng, alloc)
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), env, alloc, benchmark.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	space := featspace.P2Grid(jobNodes, jobPPN, 8, 1<<20)
	tuner := core.New(core.Config{
		Space:     space,
		Forest:    forest.Config{NTrees: 30, Seed: seed},
		Seed:      seed,
		Parallel:  true,
		BatchSize: 4,
	}, autotune.LiveBackend{Runner: runner})

	colls := []coll.Collective{coll.Bcast, coll.Allreduce}
	results := make(map[coll.Collective]*core.Result)
	for _, c := range colls {
		res, err := tuner.Tune(c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%v did not converge", c)
		}
		if res.Ledger.Testing != 0 {
			t.Errorf("%v charged test-set time", c)
		}
		results[c] = res
	}

	// Rule file round trip through disk.
	file, err := tuner.BuildRulesFile(results, "integration")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := file.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := rules.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Ground-truth comparison over the job's own cell, every grid
	// message size plus non-P2 sizes: the tuned selections should beat
	// the default heuristics in aggregate on this job.
	msgs := append([]int{}, space.Msgs...)
	msgs = append(msgs, 24, 3000, 50000, 700000)
	var tunedSum, defSum, n float64
	for _, c := range colls {
		tab := loaded.Tables[c.String()]
		for _, msg := range msgs {
			p := featspace.Point{Nodes: jobNodes, PPN: jobPPN, MsgBytes: msg}
			best := math.Inf(1)
			times := map[string]float64{}
			for _, alg := range coll.AlgorithmNames(c) {
				m, err := runner.Run(benchmark.Spec{Coll: c, Alg: alg, Point: p})
				if err != nil {
					t.Fatal(err)
				}
				times[alg] = m.MeanTime
				best = math.Min(best, m.MeanTime)
			}
			tunedAlg, err := tab.Select(p.Nodes, p.PPN, p.MsgBytes)
			if err != nil {
				t.Fatal(err)
			}
			tunedSum += times[tunedAlg] / best
			defSum += times[heuristic.Select(c, p)] / best
			n++
		}
	}
	tunedSD, defSD := tunedSum/n, defSum/n
	if tunedSD > defSD+0.01 {
		t.Errorf("tuned slowdown %.4f worse than default %.4f on the job cell", tunedSD, defSD)
	}
	if tunedSD > 1.15 {
		t.Errorf("tuned slowdown %.4f too far from optimal", tunedSD)
	}
}

// TestTraceDrivenCollectiveList checks the profiler-based user input
// path: a trace recommends the collectives worth tuning.
func TestTraceDrivenCollectiveList(t *testing.T) {
	tr, err := traces.Synthesize("AMG", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := traces.RecommendedCollectives(tr, 0.10)
	if len(rec) == 0 {
		t.Fatal("profiler recommended nothing")
	}
	want, err := traces.Collectives("AMG")
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[coll.Collective]bool{}
	for _, c := range want {
		wantSet[c] = true
	}
	for _, c := range rec {
		if !wantSet[c] {
			t.Errorf("recommended %v, which AMG does not use", c)
		}
	}
}
