// Package autotune is the shared scaffolding under every collective
// autotuner in this repository (ACCLAiM in internal/core and the two
// prior-work baselines in internal/fact and internal/hunold): benchmark
// backends, candidate enumeration, training-sample bookkeeping, model
// wrappers over the random forest, and the average-slowdown evaluation
// harness of Section II-C2.
package autotune

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"acclaim/internal/benchmark"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
)

// Backend supplies microbenchmark measurements. Implementations include
// the live simulator (LiveBackend) and dataset replay (dataset.Replay).
type Backend interface {
	// Measure runs (or replays) one microbenchmark.
	Measure(spec benchmark.Spec) (benchmark.Measurement, error)
	// MaxNodes is the largest node count a benchmark may request.
	MaxNodes() int
}

// WaveBackend additionally collects batches of benchmarks as
// topology-scheduled parallel waves, returning the total machine time
// (sum of per-wave maxima) alongside the measurements.
type WaveBackend interface {
	Backend
	MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error)
}

// LiveBackend adapts a benchmark.Runner to the Backend interfaces.
type LiveBackend struct {
	Runner *benchmark.Runner
}

// Measure runs one benchmark on the live simulator.
func (b LiveBackend) Measure(spec benchmark.Spec) (benchmark.Measurement, error) {
	return b.Runner.Run(spec)
}

// MaxNodes returns the runner allocation's size.
func (b LiveBackend) MaxNodes() int { return b.Runner.MaxNodes() }

// MeasureWave schedules the specs topology-aware and runs them in
// parallel waves.
func (b LiveBackend) MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error) {
	ms, total, _, err := b.Runner.RunParallel(specs)
	return ms, total, err
}

// Candidate is a potential training point: a feature point plus the
// algorithm to force.
type Candidate struct {
	Point  featspace.Point
	Alg    string
	AlgIdx int
}

// Spec converts the candidate to a benchmark spec for a collective.
func (c Candidate) Spec(cl coll.Collective) benchmark.Spec {
	return benchmark.Spec{Coll: cl, Alg: c.Alg, Point: c.Point}
}

// Candidates enumerates every (point, algorithm) pair of a collective
// over the grid, skipping points that are invalid or exceed maxNodes.
// The order is deterministic: points in grid order, algorithms in
// registry order.
func Candidates(cl coll.Collective, space featspace.Space, maxNodes int) []Candidate {
	algs := coll.AlgorithmNames(cl)
	out := make([]Candidate, 0, space.Size()*len(algs))
	for _, p := range space.Points() {
		if !p.Valid() || p.Nodes > maxNodes {
			continue
		}
		for ai, a := range algs {
			out = append(out, Candidate{Point: p, Alg: a, AlgIdx: ai})
		}
	}
	return out
}

// Sample is one collected training observation.
type Sample struct {
	Candidate Candidate
	Mean      float64 // measured mean collective time (us)
	Wall      float64 // machine time its collection cost (us)
}

// TrainingSet accumulates samples for one collective and renders the
// design matrix. Targets are log(time): collective times span five
// orders of magnitude across the feature space, and trees fit the log
// scale far better.
type TrainingSet struct {
	Coll    coll.Collective
	Samples []Sample
	have    map[benchmark.Spec]bool
}

// NewTrainingSet returns an empty training set for a collective.
func NewTrainingSet(cl coll.Collective) *TrainingSet {
	return &TrainingSet{Coll: cl, have: make(map[benchmark.Spec]bool)}
}

// Add appends a sample.
func (ts *TrainingSet) Add(c Candidate, mean, wall float64) {
	ts.Samples = append(ts.Samples, Sample{Candidate: c, Mean: mean, Wall: wall})
	ts.have[c.Spec(ts.Coll)] = true
}

// AddSample appends a pre-built sample.
func (ts *TrainingSet) AddSample(s Sample) {
	ts.Samples = append(ts.Samples, s)
	ts.have[s.Candidate.Spec(ts.Coll)] = true
}

// Has reports whether the candidate was already collected.
func (ts *TrainingSet) Has(c Candidate) bool { return ts.have[c.Spec(ts.Coll)] }

// Len returns the number of samples.
func (ts *TrainingSet) Len() int { return len(ts.Samples) }

// Matrix renders features and log-time targets for the unified
// (algorithm-as-feature) model. Rows are subslices of one flat backing
// array, sized exactly up front so appends never reallocate.
func (ts *TrainingSet) Matrix() (x [][]float64, y []float64) {
	x = make([][]float64, len(ts.Samples))
	y = make([]float64, len(ts.Samples))
	flat := make([]float64, 0, len(ts.Samples)*featspace.NumFeatures)
	for i, s := range ts.Samples {
		start := len(flat)
		flat = featspace.AppendFeatures(flat, s.Candidate.Point, s.Candidate.AlgIdx)
		x[i] = flat[start:len(flat):len(flat)]
		y[i] = math.Log(s.Mean)
	}
	return x, y
}

// FillMatrix renders the unified design into a flat featspace.Matrix
// (rows reuse m's backing buffer across rounds) and returns the
// log-time targets — the zero-copy input of forest.TrainMatrix, which
// bins columns straight off the flat buffer. Row i matches Matrix()'s
// row i exactly.
func (ts *TrainingSet) FillMatrix(m *featspace.Matrix) (y []float64) {
	m.Reset(featspace.NumFeatures)
	y = make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		m.AppendPoint(s.Candidate.Point, s.Candidate.AlgIdx)
		y[i] = math.Log(s.Mean)
	}
	return y
}

// FillMatrixForAlg is FillMatrix restricted to one algorithm, without
// the algorithm feature (the per-algorithm model design). It returns
// nil targets and leaves m empty when the algorithm has no samples.
func (ts *TrainingSet) FillMatrixForAlg(m *featspace.Matrix, alg string) (y []float64) {
	m.Reset(featspace.NumFeatures - 1)
	for _, s := range ts.Samples {
		if s.Candidate.Alg != alg {
			continue
		}
		m.AppendPoint(s.Candidate.Point)
		y = append(y, math.Log(s.Mean))
	}
	return y
}

// MatrixForAlg renders features and targets restricted to one algorithm
// (for per-algorithm model designs, without the algorithm feature).
func (ts *TrainingSet) MatrixForAlg(alg string) (x [][]float64, y []float64) {
	n := 0
	for _, s := range ts.Samples {
		if s.Candidate.Alg == alg {
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	x = make([][]float64, 0, n)
	y = make([]float64, 0, n)
	flat := make([]float64, 0, n*(featspace.NumFeatures-1))
	for _, s := range ts.Samples {
		if s.Candidate.Alg != alg {
			continue
		}
		start := len(flat)
		flat = featspace.AppendFeatures(flat, s.Candidate.Point)
		x = append(x, flat[start:len(flat):len(flat)])
		y = append(y, math.Log(s.Mean))
	}
	return x, y
}

// Model is a trained unified model for one collective: a single forest
// with the algorithm index as an input feature (ACCLAiM's design,
// Section V). Scoring goes through the forest's compiled SoA kernel;
// the pointer-walk Forest stays reachable via F as the reference path.
type Model struct {
	Coll coll.Collective
	F    *forest.Forest

	compileOnce sync.Once      // builds kern on first use
	kern        *forest.Kernel // immutable once built; see Kernel
}

// TrainModel fits the unified model on a training set and compiles its
// inference kernel (once per Train — tuners retrain every round, so the
// compile cost is paid exactly once per round).
func TrainModel(cfg forest.Config, ts *TrainingSet) (*Model, error) {
	var x featspace.Matrix
	y := ts.FillMatrix(&x)
	f, err := forest.TrainMatrix(cfg, &x, y)
	if err != nil {
		return nil, err
	}
	m := &Model{Coll: ts.Coll, F: f}
	m.Kernel()
	return m, nil
}

// Kernel returns the forest's compiled inference kernel, building it on
// first use. The kernel is immutable and safe for concurrent scoring.
func (m *Model) Kernel() *forest.Kernel {
	m.compileOnce.Do(func() { m.kern = m.F.Compile() })
	return m.kern
}

// PredictTime returns the predicted collective time in microseconds for
// an algorithm (by index) at a point.
func (m *Model) PredictTime(p featspace.Point, algIdx int) float64 {
	return math.Exp(m.Kernel().Predict(featspace.Features(p, algIdx)))
}

// Variance returns the jackknife variance of the model's (log-scale)
// prediction for a candidate — the uncertainty signal ACCLAiM selects
// training points by.
func (m *Model) Variance(c Candidate) float64 {
	return m.F.JackknifeVariance(featspace.Features(c.Point, c.AlgIdx))
}

// Arena holds a scoring call site's reusable buffers: the flat
// candidate feature matrix and the kernel output vector. Tuners keep
// one Arena across rounds (the builder-arena pattern forest training
// uses for its scratch), so steady-state sweeps re-encode and re-score
// the pool without allocating. Slices returned by the *Into methods
// alias the arena and are valid until its next use. An Arena must not
// be shared between goroutines.
type Arena struct {
	x   featspace.Matrix
	out []float64
}

// grow returns a length-n slice, reusing s's backing array when it is
// large enough.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// VarianceBatch returns the jackknife variance for every candidate via
// the compiled kernel — the batched form of the active-learning
// scoring sweep. out[i] equals Variance(cands[i]) bit for bit, for any
// worker count.
func (m *Model) VarianceBatch(cands []Candidate) []float64 {
	var a Arena
	return m.VarianceBatchInto(&a, cands)
}

// VarianceBatchInto is VarianceBatch with caller-owned buffers. The
// returned slice aliases the arena.
func (m *Model) VarianceBatchInto(a *Arena, cands []Candidate) []float64 {
	a.x.Reset(m.F.NumFeatures())
	for _, c := range cands {
		a.x.AppendPoint(c.Point, c.AlgIdx)
	}
	a.out = grow(a.out, len(cands))
	m.Kernel().ScoreFlat(a.x.Data(), nil, a.out)
	return a.out
}

// Select returns the algorithm with the lowest predicted time at p.
func (m *Model) Select(p featspace.Point) string {
	algs := coll.AlgorithmNames(m.Coll)
	best, bestT := algs[0], math.Inf(1)
	for ai, a := range algs {
		if t := m.PredictTime(p, ai); t < bestT {
			best, bestT = a, t
		}
	}
	return best
}

// SelectBatch returns Select for every point, with one batched forest
// sweep per algorithm instead of one tree walk per (point, algorithm).
// Ties resolve exactly as Select does: exp is strictly monotone, so
// comparing log-scale predictions picks the same first-lowest
// algorithm.
// The points are encoded into one flat matrix once; per algorithm only
// the trailing algorithm-index column is rewritten before the kernel
// sweep.
func (m *Model) SelectBatch(pts []featspace.Point) []string {
	algs := coll.AlgorithmNames(m.Coll)
	best := make([]string, len(pts))
	bestT := make([]float64, len(pts))
	for i := range bestT {
		best[i] = algs[0]
		bestT[i] = math.Inf(1)
	}
	nf := m.F.NumFeatures()
	var x featspace.Matrix
	x.Reset(nf)
	for _, p := range pts {
		x.AppendPoint(p, 0)
	}
	preds := make([]float64, len(pts))
	k := m.Kernel()
	for ai, a := range algs {
		x.SetCol(nf-1, float64(ai))
		k.PredictFlat(x.Data(), preds)
		for i, t := range preds {
			if t < bestT[i] {
				best[i], bestT[i] = a, t
			}
		}
	}
	return best
}

// PerAlgModel is the prior works' design: one forest per algorithm
// (Hunold et al., Section II-C1). Scoring goes through per-algorithm
// compiled kernels, built eagerly by TrainPerAlg.
type PerAlgModel struct {
	Coll    coll.Collective
	Forests map[string]*forest.Forest

	mu sync.Mutex
	// kerns caches each algorithm's compiled kernel, keyed like
	// Forests; guarded by mu (kernels themselves are immutable and
	// returned outside the lock).
	kerns map[string]*forest.Kernel
}

// TrainPerAlg fits one forest per algorithm that has samples and
// compiles each into its inference kernel. Algorithms with no samples
// are absent and never selected.
func TrainPerAlg(cfg forest.Config, ts *TrainingSet) (*PerAlgModel, error) {
	m := &PerAlgModel{Coll: ts.Coll, Forests: make(map[string]*forest.Forest)}
	var x featspace.Matrix
	for _, alg := range coll.AlgorithmNames(ts.Coll) {
		y := ts.FillMatrixForAlg(&x, alg)
		if len(y) == 0 {
			continue
		}
		f, err := forest.TrainMatrix(cfg, &x, y)
		if err != nil {
			return nil, fmt.Errorf("autotune: training %s/%s: %w", ts.Coll, alg, err)
		}
		m.Forests[alg] = f
		m.kernel(alg)
	}
	if len(m.Forests) == 0 {
		return nil, errors.New("autotune: no algorithm has training samples")
	}
	return m, nil
}

// kernel returns the compiled kernel for alg, compiling and caching it
// on first use. It returns nil for algorithms without a trained forest.
func (m *PerAlgModel) kernel(alg string) *forest.Kernel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k, ok := m.kerns[alg]; ok {
		return k
	}
	f, ok := m.Forests[alg]
	if !ok {
		return nil
	}
	if m.kerns == nil {
		m.kerns = make(map[string]*forest.Kernel, len(m.Forests))
	}
	k := f.Compile()
	m.kerns[alg] = k
	return k
}

// Select queries every per-algorithm model and picks the lowest
// predicted time, as the baseline autotuners do.
func (m *PerAlgModel) Select(p featspace.Point) string {
	feats := featspace.Features(p)
	best := ""
	bestT := math.Inf(1)
	for _, alg := range coll.AlgorithmNames(m.Coll) {
		k := m.kernel(alg)
		if k == nil {
			continue
		}
		if t := k.Predict(feats); t < bestT {
			best, bestT = alg, t
		}
	}
	return best
}

// SelectBatch returns Select for every point with one compiled-kernel
// sweep per algorithm over a single flat feature matrix. Results match
// Select exactly, including tie handling (algorithms are visited in
// registry order in both).
func (m *PerAlgModel) SelectBatch(pts []featspace.Point) []string {
	var x featspace.Matrix
	x.Reset(featspace.NumFeatures - 1) // per-alg models see no algorithm feature
	for _, p := range pts {
		x.AppendPoint(p)
	}
	best := make([]string, len(pts))
	bestT := make([]float64, len(pts))
	for i := range bestT {
		bestT[i] = math.Inf(1)
	}
	preds := make([]float64, len(pts))
	for _, alg := range coll.AlgorithmNames(m.Coll) {
		k := m.kernel(alg)
		if k == nil {
			continue
		}
		k.PredictFlat(x.Data(), preds)
		for i, t := range preds {
			if t < bestT[i] {
				best[i], bestT[i] = alg, t
			}
		}
	}
	return best
}

// Selector is anything that picks an algorithm for a feature point —
// trained models, rule tables, and static heuristics all qualify.
type Selector interface {
	Select(p featspace.Point) string
}

// SelectorFunc adapts a function to the Selector interface.
type SelectorFunc func(p featspace.Point) string

// Select implements Selector.
func (f SelectorFunc) Select(p featspace.Point) string { return f(p) }

// BatchSelector is a Selector that can answer many points in one call,
// typically by fanning forest walks across a worker pool. SelectBatch
// must return exactly what point-by-point Select calls would.
type BatchSelector interface {
	Selector
	SelectBatch(pts []featspace.Point) []string
}

// selections resolves the chosen algorithm for every point, using the
// batched path when the selector supports it.
func selections(sel Selector, pts []featspace.Point) []string {
	if bs, ok := sel.(BatchSelector); ok {
		return bs.SelectBatch(pts)
	}
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = sel.Select(p)
	}
	return out
}

// EvalSlowdown computes the paper's average-slowdown metric for a
// selector over the test points, with ground truth from the dataset:
// mean over points of time(selected)/time(best). Points with no dataset
// entry for the selected algorithm are an error — the selector chose
// something the ground truth cannot price.
func EvalSlowdown(ds *dataset.Dataset, cl coll.Collective, pts []featspace.Point, sel Selector) (float64, error) {
	if len(pts) == 0 {
		return 0, errors.New("autotune: no evaluation points")
	}
	// Restrict to benchmarked points first, so selectors are only ever
	// queried where ground truth exists (as the per-point loop did).
	var kept []featspace.Point
	var bests []float64
	for _, p := range pts {
		if _, best, ok := ds.Best(cl, p); ok {
			kept = append(kept, p)
			bests = append(bests, best)
		}
	}
	if len(kept) == 0 {
		return 0, errors.New("autotune: no evaluation points present in dataset")
	}
	algs := selections(sel, kept)
	var sum float64
	for i, p := range kept {
		got, ok := ds.TimeOf(cl, algs[i], p)
		if !ok {
			return 0, fmt.Errorf("autotune: dataset has no %v/%s at %v", cl, algs[i], p)
		}
		sum += got / bests[i]
	}
	return sum / float64(len(kept)), nil
}

// Ledger tracks the machine time an autotuner's training consumed, the
// quantity on the x-axis of Figures 10 and 12 and the one Figure 14
// reports for production runs.
type Ledger struct {
	Collection float64 // machine time spent collecting training data (us)
	Testing    float64 // machine time spent collecting test data (us)
}

// Total returns collection plus testing time.
func (l Ledger) Total() float64 { return l.Collection + l.Testing }

// TracePoint records one training iteration's state, feeding the
// time-series figures (7, 10, 12).
type TracePoint struct {
	Iter           int
	Samples        int
	CollectionTime float64 // cumulative machine time so far (us)
	CumVariance    float64 // cumulative jackknife variance (NaN if untracked)
	Slowdown       float64 // avg slowdown at this iteration (NaN if unevaluated)
}

// CurvePoint is one point of a data-efficiency learning curve
// (Figures 3 and 5): model quality as a function of training set size.
type CurvePoint struct {
	Fraction       float64 // of the candidate pool used for training
	Samples        int
	CollectionTime float64 // machine time those samples cost (us)
	Slowdown       float64
}

// LearningCurve trains a model on growing prefixes of a fixed selection
// order and evaluates each, producing the paper's
// slowdown-vs-training-data curves. fracs are fractions of len(order);
// prefixes of fewer than two samples are skipped.
func LearningCurve(cl coll.Collective, order []Sample, fracs []float64,
	train func(*TrainingSet) (Selector, error),
	eval func(Selector) (float64, error)) ([]CurvePoint, error) {

	var out []CurvePoint
	for _, frac := range fracs {
		k := int(math.Round(frac * float64(len(order))))
		if k < 2 {
			continue
		}
		if k > len(order) {
			k = len(order)
		}
		ts := NewTrainingSet(cl)
		var wall float64
		for _, s := range order[:k] {
			ts.AddSample(s)
			wall += s.Wall
		}
		sel, err := train(ts)
		if err != nil {
			return nil, err
		}
		sd, err := eval(sel)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{Fraction: frac, Samples: k, CollectionTime: wall, Slowdown: sd})
	}
	return out, nil
}
