// Package autotune is the shared scaffolding under every collective
// autotuner in this repository (ACCLAiM in internal/core and the two
// prior-work baselines in internal/fact and internal/hunold): benchmark
// backends, candidate enumeration, training-sample bookkeeping, model
// wrappers over the random forest, and the average-slowdown evaluation
// harness of Section II-C2.
package autotune

import (
	"errors"
	"fmt"
	"math"

	"acclaim/internal/benchmark"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
)

// Backend supplies microbenchmark measurements. Implementations include
// the live simulator (LiveBackend) and dataset replay (dataset.Replay).
type Backend interface {
	// Measure runs (or replays) one microbenchmark.
	Measure(spec benchmark.Spec) (benchmark.Measurement, error)
	// MaxNodes is the largest node count a benchmark may request.
	MaxNodes() int
}

// WaveBackend additionally collects batches of benchmarks as
// topology-scheduled parallel waves, returning the total machine time
// (sum of per-wave maxima) alongside the measurements.
type WaveBackend interface {
	Backend
	MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error)
}

// LiveBackend adapts a benchmark.Runner to the Backend interfaces.
type LiveBackend struct {
	Runner *benchmark.Runner
}

// Measure runs one benchmark on the live simulator.
func (b LiveBackend) Measure(spec benchmark.Spec) (benchmark.Measurement, error) {
	return b.Runner.Run(spec)
}

// MaxNodes returns the runner allocation's size.
func (b LiveBackend) MaxNodes() int { return b.Runner.MaxNodes() }

// MeasureWave schedules the specs topology-aware and runs them in
// parallel waves.
func (b LiveBackend) MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error) {
	ms, total, _, err := b.Runner.RunParallel(specs)
	return ms, total, err
}

// Candidate is a potential training point: a feature point plus the
// algorithm to force.
type Candidate struct {
	Point  featspace.Point
	Alg    string
	AlgIdx int
}

// Spec converts the candidate to a benchmark spec for a collective.
func (c Candidate) Spec(cl coll.Collective) benchmark.Spec {
	return benchmark.Spec{Coll: cl, Alg: c.Alg, Point: c.Point}
}

// Candidates enumerates every (point, algorithm) pair of a collective
// over the grid, skipping points that are invalid or exceed maxNodes.
// The order is deterministic: points in grid order, algorithms in
// registry order.
func Candidates(cl coll.Collective, space featspace.Space, maxNodes int) []Candidate {
	algs := coll.AlgorithmNames(cl)
	out := make([]Candidate, 0, space.Size()*len(algs))
	for _, p := range space.Points() {
		if !p.Valid() || p.Nodes > maxNodes {
			continue
		}
		for ai, a := range algs {
			out = append(out, Candidate{Point: p, Alg: a, AlgIdx: ai})
		}
	}
	return out
}

// Sample is one collected training observation.
type Sample struct {
	Candidate Candidate
	Mean      float64 // measured mean collective time (us)
	Wall      float64 // machine time its collection cost (us)
}

// TrainingSet accumulates samples for one collective and renders the
// design matrix. Targets are log(time): collective times span five
// orders of magnitude across the feature space, and trees fit the log
// scale far better.
type TrainingSet struct {
	Coll    coll.Collective
	Samples []Sample
	have    map[benchmark.Spec]bool
}

// NewTrainingSet returns an empty training set for a collective.
func NewTrainingSet(cl coll.Collective) *TrainingSet {
	return &TrainingSet{Coll: cl, have: make(map[benchmark.Spec]bool)}
}

// Add appends a sample.
func (ts *TrainingSet) Add(c Candidate, mean, wall float64) {
	ts.Samples = append(ts.Samples, Sample{Candidate: c, Mean: mean, Wall: wall})
	ts.have[c.Spec(ts.Coll)] = true
}

// AddSample appends a pre-built sample.
func (ts *TrainingSet) AddSample(s Sample) {
	ts.Samples = append(ts.Samples, s)
	ts.have[s.Candidate.Spec(ts.Coll)] = true
}

// Has reports whether the candidate was already collected.
func (ts *TrainingSet) Has(c Candidate) bool { return ts.have[c.Spec(ts.Coll)] }

// Len returns the number of samples.
func (ts *TrainingSet) Len() int { return len(ts.Samples) }

// Matrix renders features and log-time targets for the unified
// (algorithm-as-feature) model.
func (ts *TrainingSet) Matrix() (x [][]float64, y []float64) {
	x = make([][]float64, len(ts.Samples))
	y = make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		x[i] = featspace.Features(s.Candidate.Point, s.Candidate.AlgIdx)
		y[i] = math.Log(s.Mean)
	}
	return x, y
}

// MatrixForAlg renders features and targets restricted to one algorithm
// (for per-algorithm model designs, without the algorithm feature).
func (ts *TrainingSet) MatrixForAlg(alg string) (x [][]float64, y []float64) {
	for _, s := range ts.Samples {
		if s.Candidate.Alg != alg {
			continue
		}
		x = append(x, featspace.Features(s.Candidate.Point))
		y = append(y, math.Log(s.Mean))
	}
	return x, y
}

// Model is a trained unified model for one collective: a single forest
// with the algorithm index as an input feature (ACCLAiM's design,
// Section V).
type Model struct {
	Coll coll.Collective
	F    *forest.Forest
}

// TrainModel fits the unified model on a training set.
func TrainModel(cfg forest.Config, ts *TrainingSet) (*Model, error) {
	x, y := ts.Matrix()
	f, err := forest.Train(cfg, x, y)
	if err != nil {
		return nil, err
	}
	return &Model{Coll: ts.Coll, F: f}, nil
}

// PredictTime returns the predicted collective time in microseconds for
// an algorithm (by index) at a point.
func (m *Model) PredictTime(p featspace.Point, algIdx int) float64 {
	return math.Exp(m.F.Predict(featspace.Features(p, algIdx)))
}

// Variance returns the jackknife variance of the model's (log-scale)
// prediction for a candidate — the uncertainty signal ACCLAiM selects
// training points by.
func (m *Model) Variance(c Candidate) float64 {
	return m.F.JackknifeVariance(featspace.Features(c.Point, c.AlgIdx))
}

// VarianceBatch returns the jackknife variance for every candidate,
// fanned across the forest's worker pool — the batched form of the
// active-learning scoring sweep. out[i] equals Variance(cands[i])
// exactly, for any worker count.
func (m *Model) VarianceBatch(cands []Candidate) []float64 {
	xs := make([][]float64, len(cands))
	for i, c := range cands {
		xs[i] = featspace.Features(c.Point, c.AlgIdx)
	}
	return m.F.JackknifeVarianceBatch(xs)
}

// Select returns the algorithm with the lowest predicted time at p.
func (m *Model) Select(p featspace.Point) string {
	algs := coll.AlgorithmNames(m.Coll)
	best, bestT := algs[0], math.Inf(1)
	for ai, a := range algs {
		if t := m.PredictTime(p, ai); t < bestT {
			best, bestT = a, t
		}
	}
	return best
}

// SelectBatch returns Select for every point, with one batched forest
// sweep per algorithm instead of one tree walk per (point, algorithm).
// Ties resolve exactly as Select does: exp is strictly monotone, so
// comparing log-scale predictions picks the same first-lowest
// algorithm.
func (m *Model) SelectBatch(pts []featspace.Point) []string {
	algs := coll.AlgorithmNames(m.Coll)
	best := make([]string, len(pts))
	bestT := make([]float64, len(pts))
	for i := range bestT {
		best[i] = algs[0]
		bestT[i] = math.Inf(1)
	}
	xs := make([][]float64, len(pts))
	for ai, a := range algs {
		for i, p := range pts {
			xs[i] = featspace.Features(p, ai)
		}
		preds := m.F.PredictBatch(xs)
		for i, t := range preds {
			if t < bestT[i] {
				best[i], bestT[i] = a, t
			}
		}
	}
	return best
}

// PerAlgModel is the prior works' design: one forest per algorithm
// (Hunold et al., Section II-C1).
type PerAlgModel struct {
	Coll    coll.Collective
	Forests map[string]*forest.Forest
}

// TrainPerAlg fits one forest per algorithm that has samples. Algorithms
// with no samples are absent and never selected.
func TrainPerAlg(cfg forest.Config, ts *TrainingSet) (*PerAlgModel, error) {
	m := &PerAlgModel{Coll: ts.Coll, Forests: make(map[string]*forest.Forest)}
	for _, alg := range coll.AlgorithmNames(ts.Coll) {
		x, y := ts.MatrixForAlg(alg)
		if len(x) == 0 {
			continue
		}
		f, err := forest.Train(cfg, x, y)
		if err != nil {
			return nil, fmt.Errorf("autotune: training %s/%s: %w", ts.Coll, alg, err)
		}
		m.Forests[alg] = f
	}
	if len(m.Forests) == 0 {
		return nil, errors.New("autotune: no algorithm has training samples")
	}
	return m, nil
}

// Select queries every per-algorithm model and picks the lowest
// predicted time, as the baseline autotuners do.
func (m *PerAlgModel) Select(p featspace.Point) string {
	feats := featspace.Features(p)
	best := ""
	bestT := math.Inf(1)
	for _, alg := range coll.AlgorithmNames(m.Coll) {
		f, ok := m.Forests[alg]
		if !ok {
			continue
		}
		if t := f.Predict(feats); t < bestT {
			best, bestT = alg, t
		}
	}
	return best
}

// SelectBatch returns Select for every point with one batched forest
// sweep per algorithm. Results match Select exactly, including tie
// handling (algorithms are visited in registry order in both).
func (m *PerAlgModel) SelectBatch(pts []featspace.Point) []string {
	feats := make([][]float64, len(pts))
	for i, p := range pts {
		feats[i] = featspace.Features(p)
	}
	best := make([]string, len(pts))
	bestT := make([]float64, len(pts))
	for i := range bestT {
		bestT[i] = math.Inf(1)
	}
	for _, alg := range coll.AlgorithmNames(m.Coll) {
		f, ok := m.Forests[alg]
		if !ok {
			continue
		}
		preds := f.PredictBatch(feats)
		for i, t := range preds {
			if t < bestT[i] {
				best[i], bestT[i] = alg, t
			}
		}
	}
	return best
}

// Selector is anything that picks an algorithm for a feature point —
// trained models, rule tables, and static heuristics all qualify.
type Selector interface {
	Select(p featspace.Point) string
}

// SelectorFunc adapts a function to the Selector interface.
type SelectorFunc func(p featspace.Point) string

// Select implements Selector.
func (f SelectorFunc) Select(p featspace.Point) string { return f(p) }

// BatchSelector is a Selector that can answer many points in one call,
// typically by fanning forest walks across a worker pool. SelectBatch
// must return exactly what point-by-point Select calls would.
type BatchSelector interface {
	Selector
	SelectBatch(pts []featspace.Point) []string
}

// selections resolves the chosen algorithm for every point, using the
// batched path when the selector supports it.
func selections(sel Selector, pts []featspace.Point) []string {
	if bs, ok := sel.(BatchSelector); ok {
		return bs.SelectBatch(pts)
	}
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = sel.Select(p)
	}
	return out
}

// EvalSlowdown computes the paper's average-slowdown metric for a
// selector over the test points, with ground truth from the dataset:
// mean over points of time(selected)/time(best). Points with no dataset
// entry for the selected algorithm are an error — the selector chose
// something the ground truth cannot price.
func EvalSlowdown(ds *dataset.Dataset, cl coll.Collective, pts []featspace.Point, sel Selector) (float64, error) {
	if len(pts) == 0 {
		return 0, errors.New("autotune: no evaluation points")
	}
	// Restrict to benchmarked points first, so selectors are only ever
	// queried where ground truth exists (as the per-point loop did).
	var kept []featspace.Point
	var bests []float64
	for _, p := range pts {
		if _, best, ok := ds.Best(cl, p); ok {
			kept = append(kept, p)
			bests = append(bests, best)
		}
	}
	if len(kept) == 0 {
		return 0, errors.New("autotune: no evaluation points present in dataset")
	}
	algs := selections(sel, kept)
	var sum float64
	for i, p := range kept {
		got, ok := ds.TimeOf(cl, algs[i], p)
		if !ok {
			return 0, fmt.Errorf("autotune: dataset has no %v/%s at %v", cl, algs[i], p)
		}
		sum += got / bests[i]
	}
	return sum / float64(len(kept)), nil
}

// Ledger tracks the machine time an autotuner's training consumed, the
// quantity on the x-axis of Figures 10 and 12 and the one Figure 14
// reports for production runs.
type Ledger struct {
	Collection float64 // machine time spent collecting training data (us)
	Testing    float64 // machine time spent collecting test data (us)
}

// Total returns collection plus testing time.
func (l Ledger) Total() float64 { return l.Collection + l.Testing }

// TracePoint records one training iteration's state, feeding the
// time-series figures (7, 10, 12).
type TracePoint struct {
	Iter           int
	Samples        int
	CollectionTime float64 // cumulative machine time so far (us)
	CumVariance    float64 // cumulative jackknife variance (NaN if untracked)
	Slowdown       float64 // avg slowdown at this iteration (NaN if unevaluated)
}

// CurvePoint is one point of a data-efficiency learning curve
// (Figures 3 and 5): model quality as a function of training set size.
type CurvePoint struct {
	Fraction       float64 // of the candidate pool used for training
	Samples        int
	CollectionTime float64 // machine time those samples cost (us)
	Slowdown       float64
}

// LearningCurve trains a model on growing prefixes of a fixed selection
// order and evaluates each, producing the paper's
// slowdown-vs-training-data curves. fracs are fractions of len(order);
// prefixes of fewer than two samples are skipped.
func LearningCurve(cl coll.Collective, order []Sample, fracs []float64,
	train func(*TrainingSet) (Selector, error),
	eval func(Selector) (float64, error)) ([]CurvePoint, error) {

	var out []CurvePoint
	for _, frac := range fracs {
		k := int(math.Round(frac * float64(len(order))))
		if k < 2 {
			continue
		}
		if k > len(order) {
			k = len(order)
		}
		ts := NewTrainingSet(cl)
		var wall float64
		for _, s := range order[:k] {
			ts.AddSample(s)
			wall += s.Wall
		}
		sel, err := train(ts)
		if err != nil {
			return nil, err
		}
		sd, err := eval(sel)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{Fraction: frac, Samples: k, CollectionTime: wall, Slowdown: sd})
	}
	return out, nil
}
