package autotune

import (
	"math"
	"testing"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
)

func tinySpace() featspace.Space {
	return featspace.Space{Nodes: []int{2, 4}, PPNs: []int{1, 2}, Msgs: []int{8, 256, 8192}}
}

func liveBackend(t testing.TB) LiveBackend {
	t.Helper()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return LiveBackend{Runner: r}
}

func tinyDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	b := liveBackend(t)
	d, err := dataset.Collect(b.Runner, tinySpace().Points(), dataset.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCandidates(t *testing.T) {
	cs := Candidates(coll.Bcast, tinySpace(), 64)
	want := tinySpace().Size() * coll.NumAlgorithms(coll.Bcast)
	if len(cs) != want {
		t.Fatalf("candidates = %d, want %d", len(cs), want)
	}
	// maxNodes filters.
	cs2 := Candidates(coll.Bcast, tinySpace(), 2)
	if len(cs2) != want/2 {
		t.Errorf("filtered candidates = %d, want %d", len(cs2), want/2)
	}
	// AlgIdx matches registry order.
	for _, c := range cs {
		idx, ok := coll.AlgIndex(coll.Bcast, c.Alg)
		if !ok || idx != c.AlgIdx {
			t.Fatalf("bad AlgIdx for %v", c)
		}
	}
}

func TestLiveBackendMeasure(t *testing.T) {
	b := liveBackend(t)
	m, err := b.Measure(benchmark.Spec{Coll: coll.Bcast, Alg: "binomial",
		Point: featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanTime <= 0 {
		t.Error("non-positive measurement")
	}
	if b.MaxNodes() != 64 {
		t.Errorf("MaxNodes = %d", b.MaxNodes())
	}
	ms, wall, err := b.MeasureWave([]benchmark.Spec{
		{Coll: coll.Bcast, Alg: "binomial", Point: featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 64}},
		{Coll: coll.Bcast, Alg: "binomial", Point: featspace.Point{Nodes: 4, PPN: 1, MsgBytes: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || wall <= 0 {
		t.Errorf("wave: %d measurements, wall=%v", len(ms), wall)
	}
}

func TestTrainingSetMatrix(t *testing.T) {
	ts := NewTrainingSet(coll.Bcast)
	c := Candidate{Point: featspace.Point{Nodes: 4, PPN: 2, MsgBytes: 64}, Alg: "binomial", AlgIdx: 0}
	ts.Add(c, 100, 700)
	if !ts.Has(c) || ts.Len() != 1 {
		t.Fatal("Add/Has broken")
	}
	x, y := ts.Matrix()
	if len(x) != 1 || len(x[0]) != featspace.NumFeatures {
		t.Fatalf("matrix shape %dx%d", len(x), len(x[0]))
	}
	if math.Abs(y[0]-math.Log(100)) > 1e-12 {
		t.Errorf("target = %v, want log(100)", y[0])
	}
	xa, _ := ts.MatrixForAlg("binomial")
	if len(xa) != 1 || len(xa[0]) != featspace.NumFeatures-1 {
		t.Errorf("per-alg matrix shape wrong")
	}
	if xa, _ := ts.MatrixForAlg("ring"); len(xa) != 0 {
		t.Error("per-alg matrix leaked other algorithms")
	}
}

// TestFillMatrixMatchesMatrix: the flat training-set renderings feed
// forest.TrainMatrix the same rows (and targets) the row-of-slices
// renderings produce, for both model designs.
func TestFillMatrixMatchesMatrix(t *testing.T) {
	ts := NewTrainingSet(coll.Bcast)
	for i, alg := range []string{"binomial", "ring", "binomial", "scatter_allgather"} {
		ts.Add(Candidate{
			Point:  featspace.Point{Nodes: 2 << i, PPN: 2, MsgBytes: 64 << i},
			Alg:    alg,
			AlgIdx: i % 3,
		}, float64(100+i*7), 700)
	}

	var m featspace.Matrix
	y := ts.FillMatrix(&m)
	x, wantY := ts.Matrix()
	if m.Rows() != len(x) || m.Cols() != featspace.NumFeatures {
		t.Fatalf("FillMatrix shape %dx%d, want %dx%d", m.Rows(), m.Cols(), len(x), featspace.NumFeatures)
	}
	for i := range x {
		for j, v := range x[i] {
			if m.Row(i)[j] != v {
				t.Fatalf("FillMatrix row %d col %d = %v, want %v", i, j, m.Row(i)[j], v)
			}
		}
		if y[i] != wantY[i] {
			t.Fatalf("FillMatrix target %d = %v, want %v", i, y[i], wantY[i])
		}
	}

	for _, alg := range []string{"binomial", "ring", "missing"} {
		ya := ts.FillMatrixForAlg(&m, alg)
		xa, wantYa := ts.MatrixForAlg(alg)
		if m.Rows() != len(xa) || len(ya) != len(wantYa) {
			t.Fatalf("%s: FillMatrixForAlg %d rows / %d targets, want %d / %d",
				alg, m.Rows(), len(ya), len(xa), len(wantYa))
		}
		for i := range xa {
			for j, v := range xa[i] {
				if m.Row(i)[j] != v {
					t.Fatalf("%s: per-alg row %d col %d = %v, want %v", alg, i, j, m.Row(i)[j], v)
				}
			}
			if ya[i] != wantYa[i] {
				t.Fatalf("%s: per-alg target %d differs", alg, i)
			}
		}
	}
}

// trainOn collects every candidate into a training set from the dataset.
func trainOn(t *testing.T, ds *dataset.Dataset, cl coll.Collective) *TrainingSet {
	t.Helper()
	ts := NewTrainingSet(cl)
	for _, c := range Candidates(cl, tinySpace(), 64) {
		mean, ok := ds.TimeOf(cl, c.Alg, c.Point)
		if !ok {
			t.Fatalf("dataset missing %v", c)
		}
		ts.Add(c, mean, mean*7)
	}
	return ts
}

func TestUnifiedModelLearnsSelections(t *testing.T) {
	ds := tinyDataset(t)
	ts := trainOn(t, ds, coll.Bcast)
	m, err := TrainModel(forest.Config{Seed: 1, NTrees: 40}, ts)
	if err != nil {
		t.Fatal(err)
	}
	// With the full feature space as training data, the model's
	// selections must be near-optimal on the training points.
	sd, err := EvalSlowdown(ds, coll.Bcast, tinySpace().Points(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sd > 1.10 {
		t.Errorf("fully trained unified model slowdown = %v", sd)
	}
	// Variance is non-negative and finite everywhere.
	for _, c := range Candidates(coll.Bcast, tinySpace(), 64)[:6] {
		v := m.Variance(c)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("bad variance %v for %v", v, c)
		}
	}
}

func TestPerAlgModelLearnsSelections(t *testing.T) {
	ds := tinyDataset(t)
	ts := trainOn(t, ds, coll.Reduce)
	m, err := TrainPerAlg(forest.Config{Seed: 2, NTrees: 40}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Forests) != coll.NumAlgorithms(coll.Reduce) {
		t.Errorf("forests = %d", len(m.Forests))
	}
	sd, err := EvalSlowdown(ds, coll.Reduce, tinySpace().Points(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sd > 1.10 {
		t.Errorf("fully trained per-alg model slowdown = %v", sd)
	}
}

func TestTrainPerAlgPartialAlgorithms(t *testing.T) {
	ts := NewTrainingSet(coll.Bcast)
	c := Candidate{Point: featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 8}, Alg: "binomial", AlgIdx: 0}
	ts.Add(c, 10, 70)
	ts.Add(Candidate{Point: featspace.Point{Nodes: 4, PPN: 1, MsgBytes: 8}, Alg: "binomial", AlgIdx: 0}, 20, 140)
	m, err := TrainPerAlg(forest.Config{Seed: 3}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Forests) != 1 {
		t.Errorf("forests = %d, want 1", len(m.Forests))
	}
	// Selection falls back to the only trained algorithm.
	if got := m.Select(featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 8}); got != "binomial" {
		t.Errorf("Select = %s", got)
	}
	if _, err := TrainPerAlg(forest.Config{}, NewTrainingSet(coll.Bcast)); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestEvalSlowdownOptimalIsOne(t *testing.T) {
	ds := tinyDataset(t)
	oracle := SelectorFunc(func(p featspace.Point) string {
		alg, _, _ := ds.Best(coll.Allreduce, p)
		return alg
	})
	sd, err := EvalSlowdown(ds, coll.Allreduce, tinySpace().Points(), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if sd != 1 {
		t.Errorf("oracle slowdown = %v, want exactly 1", sd)
	}
}

func TestEvalSlowdownWorstCase(t *testing.T) {
	ds := tinyDataset(t)
	worst := SelectorFunc(func(p featspace.Point) string {
		bestAlg, _, _ := ds.Best(coll.Bcast, p)
		// Pick any algorithm that is not the best.
		for _, a := range coll.AlgorithmNames(coll.Bcast) {
			if a != bestAlg {
				return a
			}
		}
		return bestAlg
	})
	sd, err := EvalSlowdown(ds, coll.Bcast, tinySpace().Points(), worst)
	if err != nil {
		t.Fatal(err)
	}
	if sd <= 1 {
		t.Errorf("anti-oracle slowdown = %v, want > 1", sd)
	}
}

func TestEvalSlowdownErrors(t *testing.T) {
	ds := tinyDataset(t)
	sel := SelectorFunc(func(featspace.Point) string { return "binomial" })
	if _, err := EvalSlowdown(ds, coll.Bcast, nil, sel); err == nil {
		t.Error("no points should error")
	}
	missing := []featspace.Point{{Nodes: 999, PPN: 1, MsgBytes: 8}}
	if _, err := EvalSlowdown(ds, coll.Bcast, missing, sel); err == nil {
		t.Error("all points missing should error")
	}
	badSel := SelectorFunc(func(featspace.Point) string { return "no_such_alg" })
	if _, err := EvalSlowdown(ds, coll.Bcast, tinySpace().Points(), badSel); err == nil {
		t.Error("unpriceable selection should error")
	}
}

func TestLedger(t *testing.T) {
	l := Ledger{Collection: 10, Testing: 60}
	if l.Total() != 70 {
		t.Errorf("Total = %v", l.Total())
	}
}

func TestLearningCurve(t *testing.T) {
	ds := tinyDataset(t)
	ts := trainOn(t, ds, coll.Bcast)
	order := ts.Samples
	fracs := []float64{0.1, 0.5, 1.0}
	curve, err := LearningCurve(coll.Bcast, order, fracs,
		func(ts *TrainingSet) (Selector, error) {
			return TrainModel(forest.Config{Seed: 4, NTrees: 20}, ts)
		},
		func(s Selector) (float64, error) {
			return EvalSlowdown(ds, coll.Bcast, tinySpace().Points(), s)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve points = %d", len(curve))
	}
	for i, cp := range curve {
		if cp.Slowdown < 1 {
			t.Errorf("point %d slowdown = %v < 1", i, cp.Slowdown)
		}
		if i > 0 && cp.Samples <= curve[i-1].Samples {
			t.Errorf("samples not increasing: %v", curve)
		}
		if cp.CollectionTime <= 0 {
			t.Errorf("point %d has no collection time", i)
		}
	}
	// Tiny fractions that round below 2 samples are skipped.
	c2, err := LearningCurve(coll.Bcast, order[:4], []float64{0.01}, nil, nil)
	if err != nil || len(c2) != 0 {
		t.Errorf("sub-minimal fraction not skipped: %v, %v", c2, err)
	}
}

// TestBatchEquivalence: the batched model APIs must agree exactly with
// their per-point counterparts — this is what lets the selection loops
// in core, fact, and hunold fan out without changing results.
func TestBatchEquivalence(t *testing.T) {
	ds := tinyDataset(t)
	ts := trainOn(t, ds, coll.Bcast)
	cands := Candidates(coll.Bcast, tinySpace(), 64)
	pts := tinySpace().Points()

	for _, workers := range []int{1, 4} {
		m, err := TrainModel(forest.Config{Seed: 5, NTrees: 25, Workers: workers}, ts)
		if err != nil {
			t.Fatal(err)
		}
		vs := m.VarianceBatch(cands)
		if len(vs) != len(cands) {
			t.Fatalf("VarianceBatch length %d, want %d", len(vs), len(cands))
		}
		for i, c := range cands {
			if vs[i] != m.Variance(c) {
				t.Fatalf("workers=%d VarianceBatch[%d] = %v, Variance = %v", workers, i, vs[i], m.Variance(c))
			}
		}
		sels := m.SelectBatch(pts)
		for i, p := range pts {
			if sels[i] != m.Select(p) {
				t.Fatalf("workers=%d SelectBatch[%d] = %q, Select = %q", workers, i, sels[i], m.Select(p))
			}
		}

		pam, err := TrainPerAlg(forest.Config{Seed: 6, NTrees: 25, Workers: workers}, ts)
		if err != nil {
			t.Fatal(err)
		}
		psels := pam.SelectBatch(pts)
		for i, p := range pts {
			if psels[i] != pam.Select(p) {
				t.Fatalf("workers=%d PerAlg SelectBatch[%d] = %q, Select = %q", workers, i, psels[i], pam.Select(p))
			}
		}
	}
}

// TestEvalSlowdownBatchPath: EvalSlowdown must return the same value
// whether the selector exposes the batched interface or not.
func TestEvalSlowdownBatchPath(t *testing.T) {
	ds := tinyDataset(t)
	ts := trainOn(t, ds, coll.Bcast)
	m, err := TrainModel(forest.Config{Seed: 7, NTrees: 25}, ts)
	if err != nil {
		t.Fatal(err)
	}
	pts := tinySpace().Points()
	// m is a BatchSelector; wrapping its Select in a SelectorFunc hides
	// the batch interface and forces the per-point path.
	batched, err := EvalSlowdown(ds, coll.Bcast, pts, m)
	if err != nil {
		t.Fatal(err)
	}
	pointwise, err := EvalSlowdown(ds, coll.Bcast, pts, SelectorFunc(m.Select))
	if err != nil {
		t.Fatal(err)
	}
	if batched != pointwise {
		t.Errorf("batched EvalSlowdown = %v, pointwise = %v", batched, pointwise)
	}
}

// TestEvalSlowdownSkipsUnbenchmarked: the selector must only be asked
// about points the dataset can price, even on the batched path.
func TestEvalSlowdownSkipsUnbenchmarked(t *testing.T) {
	ds := tinyDataset(t)
	pts := append([]featspace.Point{{Nodes: 999, PPN: 1, MsgBytes: 8}}, tinySpace().Points()...)
	sel := SelectorFunc(func(p featspace.Point) string {
		if p.Nodes == 999 {
			t.Fatal("selector queried at an unbenchmarked point")
		}
		alg, _, _ := ds.Best(coll.Bcast, p)
		return alg
	})
	sd, err := EvalSlowdown(ds, coll.Bcast, pts, sel)
	if err != nil {
		t.Fatal(err)
	}
	if sd != 1 {
		t.Errorf("oracle slowdown = %v, want 1", sd)
	}
}
