// Package benchmark is the OSU-microbenchmark-style measurement layer
// (the paper uses the Ohio State University suite, Section V). A Runner
// owns a job's node allocation and dynamic environment and executes
// collective microbenchmarks on subsets of the allocation — one at a
// time (the safe sequential strategy of prior work, Section III-D) or as
// topology-scheduled parallel waves (ACCLAiM's strategy, Section IV-D).
//
// All times are virtual microseconds from the simulator; the "wall
// time" a measurement charges is the simulated machine time the
// benchmark occupied, which is what the paper's training-time x-axes
// sum.
package benchmark

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/heuristic"
	"acclaim/internal/netmodel"
	"acclaim/internal/obs"
	"acclaim/internal/sched"
	"acclaim/internal/simmpi"
)

// Metrics are the collection layer's registry handles: how much
// simulated machine time benchmarks consumed vs how much host time the
// simulator burned producing it, plus the measurement-noise draw count
// (every warmup and timed iteration redraws the noise factor). Build
// with NewMetrics; attach to Runner.Metrics (nil disables recording).
type Metrics struct {
	Runs       *obs.Counter // benchmark.runs_total: microbenchmarks executed
	NoiseDraws *obs.Counter // benchmark.noise_draws_total: per-iteration noise redraws
	SimUs      *obs.Gauge   // benchmark.sim_us: accumulated simulated machine time
	HostNs     *obs.Gauge   // benchmark.host_ns: accumulated host time inside the simulator
	WaveRuns   *obs.Counter // benchmark.wave_runs_total: benchmarks executed inside parallel waves

	// Sched receives the wave-planning metrics of RunParallel.
	Sched *sched.Metrics
}

// NewMetrics registers the collection metric set on reg (nil reg gives
// all-nil, no-op handles).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Runs:       reg.Counter("benchmark.runs_total"),
		NoiseDraws: reg.Counter("benchmark.noise_draws_total"),
		SimUs:      reg.Gauge("benchmark.sim_us"),
		HostNs:     reg.Gauge("benchmark.host_ns"),
		WaveRuns:   reg.Counter("benchmark.wave_runs_total"),
		Sched:      sched.NewMetrics(reg),
	}
}

// Spec names one microbenchmark: a collective, an algorithm, and a
// feature point.
type Spec struct {
	Coll  coll.Collective
	Alg   string
	Point featspace.Point
}

// String renders the spec compactly.
func (s Spec) String() string {
	return fmt.Sprintf("%v/%s@%v", s.Coll, s.Alg, s.Point)
}

// Measurement is the outcome of one microbenchmark.
type Measurement struct {
	Spec     Spec
	MeanTime float64 // mean per-iteration collective time (us), with noise
	WallTime float64 // total machine time the benchmark occupied (us)
}

// Config tunes the measurement protocol.
type Config struct {
	Warmup int // untimed iterations (default 2)
	Iters  int // timed iterations (default 5)
	Seed   int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.Iters == 0 {
		c.Iters = 5
	}
	return c
}

// Runner executes microbenchmarks for one job. All methods are safe for
// concurrent use; measurement noise is derived per-spec so results do
// not depend on execution order.
type Runner struct {
	Params netmodel.Params
	Env    netmodel.Env
	Alloc  cluster.Allocation
	Config Config

	// Topology, when non-nil, prices every benchmark on that
	// interconnect instead of the allocation machine's default
	// Dragonfly — the scenario matrix sets it per cell.
	Topology netmodel.Topology

	// RackShareFactor inflates runs that illegally share a rack; used
	// only when a wave violates the scheduler's constraints (ablations).
	RackShareFactor float64

	// Metrics, when non-nil, receives collection observability. All
	// handles are concurrency-safe, so wave goroutines report directly.
	Metrics *Metrics
}

// NewRunner builds a runner for a job's allocation and environment.
func NewRunner(params netmodel.Params, env netmodel.Env, alloc cluster.Allocation, cfg Config) (*Runner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Runner{
		Params:          params,
		Env:             env,
		Alloc:           alloc,
		Config:          cfg,
		RackShareFactor: 1.6,
	}, nil
}

// MaxNodes returns the largest benchmark this runner can host.
func (r *Runner) MaxNodes() int { return r.Alloc.Size() }

// subAllocation builds the allocation for a benchmark on the given
// allocation-node indices (or the first spec.Point.Nodes nodes when idx
// is nil).
func (r *Runner) subAllocation(spec Spec, idx []int) (cluster.Allocation, error) {
	need := spec.Point.Nodes
	if need > r.Alloc.Size() {
		return cluster.Allocation{}, fmt.Errorf("benchmark: %v needs %d nodes, allocation has %d",
			spec, need, r.Alloc.Size())
	}
	if idx == nil {
		idx = make([]int, need)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) != need {
		return cluster.Allocation{}, fmt.Errorf("benchmark: %v needs %d nodes, placement has %d",
			spec, need, len(idx))
	}
	nodes := make([]int, need)
	for i, j := range idx {
		if j < 0 || j >= r.Alloc.Size() {
			return cluster.Allocation{}, fmt.Errorf("benchmark: placement index %d out of range", j)
		}
		nodes[i] = r.Alloc.Nodes[j]
	}
	return cluster.Allocation{Machine: r.Alloc.Machine, Nodes: nodes}, nil
}

// baseTime runs the simulator once for the spec and returns the
// noise-free collective time.
func (r *Runner) baseTime(spec Spec, idx []int) (float64, error) {
	if m := r.Metrics; m != nil {
		t0 := time.Now()
		defer func() { m.HostNs.Add(float64(time.Since(t0))) }()
	}
	sub, err := r.subAllocation(spec, idx)
	if err != nil {
		return 0, err
	}
	model, err := netmodel.NewWithTopology(r.Params, r.Env, sub, spec.Point.PPN, r.Topology)
	if err != nil {
		return 0, err
	}
	res, err := coll.Exec(model, spec.Coll, spec.Alg, spec.Point.MsgBytes, coll.Options{Op: simmpi.OpSum})
	if err != nil {
		return 0, err
	}
	return res.MaxClock, nil
}

// specSeed derives a deterministic per-spec noise seed so measurements
// are reproducible regardless of the order benchmarks execute in.
func (r *Runner) specSeed(spec Spec) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d|%d|%d",
		spec.Coll, spec.Alg, spec.Point.Nodes, spec.Point.PPN, spec.Point.MsgBytes, r.Config.Seed)
	return int64(h.Sum64())
}

// measure converts a base time into a Measurement by applying
// per-iteration noise analytically (the simulator is deterministic, so
// repeated executions would be identical; real repetitions differ by
// measurement noise).
func (r *Runner) measure(spec Spec, base float64) Measurement {
	rng := rand.New(rand.NewSource(r.specSeed(spec)))
	noise := func() float64 {
		f := 1 + rng.NormFloat64()*r.Env.NoiseSigma
		if f < 0.5 {
			f = 0.5
		}
		return f
	}
	var sum, wall float64
	for i := 0; i < r.Config.Warmup; i++ {
		wall += base * noise()
	}
	for i := 0; i < r.Config.Iters; i++ {
		t := base * noise()
		sum += t
		wall += t
	}
	if m := r.Metrics; m != nil {
		m.Runs.Inc()
		m.NoiseDraws.Add(uint64(r.Config.Warmup + r.Config.Iters))
		m.SimUs.Add(wall)
	}
	return Measurement{Spec: spec, MeanTime: sum / float64(r.Config.Iters), WallTime: wall}
}

// Run executes one microbenchmark on the first Point.Nodes nodes of the
// allocation (the sequential strategy).
func (r *Runner) Run(spec Spec) (Measurement, error) {
	base, err := r.baseTime(spec, nil)
	if err != nil {
		return Measurement{}, err
	}
	return r.measure(spec, base), nil
}

// RunSelected prices one collective call the way a tuned MPI library
// would: the algorithm comes from the selection source (a
// ruleserver.Server over the tuned rule file) when it has a rule for
// the call, and from the library's built-in size-cutoff heuristic when
// it does not (an untuned collective, or no source at all — exactly
// MPICH's behaviour when no tuning file is loaded). It returns the
// measurement and the algorithm that was used.
func (r *Runner) RunSelected(c coll.Collective, src coll.AlgSource, p featspace.Point) (Measurement, string, error) {
	alg, ok := "", false
	if src != nil {
		alg, ok = src.Lookup(c, p.Nodes, p.PPN, p.MsgBytes)
	}
	if !ok {
		alg = heuristic.Select(c, p)
	}
	m, err := r.Run(Spec{Coll: c, Alg: alg, Point: p})
	return m, alg, err
}

// RunSequential executes the specs one after another, returning the
// measurements and the total machine time consumed (the sum of wall
// times — nodes not in use sit idle, exactly the inefficiency Section
// III-D describes).
func (r *Runner) RunSequential(specs []Spec) ([]Measurement, float64, error) {
	var total float64
	out := make([]Measurement, 0, len(specs))
	for _, s := range specs {
		m, err := r.Run(s)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, m)
		total += m.WallTime
	}
	return out, total, nil
}

// RunWave executes one scheduler wave in parallel. The wave's machine
// time is the maximum wall time across its placements. If the wave
// violates the congestion constraints (only possible when callers
// bypass sched.PlanWave), each offending run is inflated by
// RackShareFactor.
func (r *Runner) RunWave(wave []sched.Placement, specs map[int]Spec) ([]Measurement, float64, error) {
	if len(wave) == 0 {
		return nil, 0, errors.New("benchmark: empty wave")
	}
	shared := sched.CheckWave(r.Alloc, wave) != nil
	out := make([]Measurement, len(wave))
	errs := make([]error, len(wave))
	var wg sync.WaitGroup
	wg.Add(len(wave))
	for i, p := range wave {
		go func(i int, p sched.Placement) {
			defer wg.Done()
			spec, ok := specs[p.ID]
			if !ok {
				errs[i] = fmt.Errorf("benchmark: wave references unknown request %d", p.ID)
				return
			}
			base, err := r.baseTime(spec, p.NodeIdx)
			if err != nil {
				errs[i] = err
				return
			}
			if shared {
				base *= r.RackShareFactor
			}
			out[i] = r.measure(spec, base)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var waveTime float64
	for _, m := range out {
		if m.WallTime > waveTime {
			waveTime = m.WallTime
		}
	}
	if m := r.Metrics; m != nil {
		m.WaveRuns.Add(uint64(len(wave)))
	}
	return out, waveTime, nil
}

// RunParallel schedules all specs with the topology-aware greedy
// scheduler and executes wave by wave. Requests carry the given
// priorities (higher first); priorities must be pre-sorted by the
// caller if a specific order matters — RunParallel preserves input
// order as the greedy order. It returns all measurements, the total
// machine time (sum of wave maxima), and the per-wave parallelism.
func (r *Runner) RunParallel(specs []Spec) ([]Measurement, float64, []int, error) {
	reqs := make([]sched.Request, len(specs))
	byID := make(map[int]Spec, len(specs))
	for i, s := range specs {
		reqs[i] = sched.Request{ID: i, Nodes: s.Point.Nodes, Priority: float64(len(specs) - i)}
		byID[i] = s
	}
	var schedMet *sched.Metrics
	if r.Metrics != nil {
		schedMet = r.Metrics.Sched
	}
	waves, err := sched.PlanAllObs(r.Alloc, reqs, schedMet)
	if err != nil {
		return nil, 0, nil, err
	}
	var out []Measurement
	var total float64
	for _, wave := range waves {
		ms, waveTime, err := r.RunWave(wave, byID)
		if err != nil {
			return nil, 0, nil, err
		}
		out = append(out, ms...)
		total += waveTime
	}
	return out, total, sched.Parallelism(waves), nil
}
