package benchmark

import (
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
	"acclaim/internal/sched"
)

func testRunner(t testing.TB, alloc cluster.Allocation) *Runner {
	t.Helper()
	r, err := NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func spec(c coll.Collective, alg string, nodes, ppn, msg int) Spec {
	return Spec{Coll: c, Alg: alg, Point: featspace.Point{Nodes: nodes, PPN: ppn, MsgBytes: msg}}
}

func TestRunBasics(t *testing.T) {
	r := testRunner(t, cluster.TopologyTwoPairs())
	m, err := r.Run(spec(coll.Bcast, "binomial", 8, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanTime <= 0 {
		t.Errorf("MeanTime = %v", m.MeanTime)
	}
	// Wall time covers warmup + iters, so it must exceed iters * mean.
	if m.WallTime <= m.MeanTime*float64(r.Config.Iters)*0.9 {
		t.Errorf("WallTime %v inconsistent with MeanTime %v", m.WallTime, m.MeanTime)
	}
}

func TestRunDeterministic(t *testing.T) {
	r := testRunner(t, cluster.TopologyTwoPairs())
	s := spec(coll.Allreduce, "recursive_doubling", 4, 2, 1024)
	m1, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if m1.MeanTime != m2.MeanTime || m1.WallTime != m2.WallTime {
		t.Error("repeated measurement differs")
	}
}

func TestRunSeedChangesNoise(t *testing.T) {
	alloc := cluster.TopologyTwoPairs()
	r1, _ := NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, Config{Seed: 1})
	r2, _ := NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, Config{Seed: 2})
	s := spec(coll.Bcast, "binomial", 4, 1, 512)
	m1, err := r1.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r2.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if m1.MeanTime == m2.MeanTime {
		t.Error("different seeds produced identical noise")
	}
}

func TestRunErrors(t *testing.T) {
	r := testRunner(t, cluster.TopologyTwoPairs())
	if _, err := r.Run(spec(coll.Bcast, "binomial", 1000, 1, 8)); err == nil {
		t.Error("oversize benchmark should fail")
	}
	if _, err := r.Run(spec(coll.Bcast, "missing", 2, 1, 8)); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunSequentialSumsWallTime(t *testing.T) {
	r := testRunner(t, cluster.TopologyTwoPairs())
	specs := []Spec{
		spec(coll.Bcast, "binomial", 4, 1, 512),
		spec(coll.Reduce, "binomial", 8, 1, 512),
	}
	ms, total, err := r.RunSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	want := ms[0].WallTime + ms[1].WallTime
	if total != want {
		t.Errorf("total = %v, want %v", total, want)
	}
}

func TestRunParallelFasterThanSequential(t *testing.T) {
	// On the max-parallel topology, several small benchmarks run
	// simultaneously: machine time must drop below sequential.
	r := testRunner(t, cluster.TopologyMaxParallel())
	var specs []Spec
	for i := 0; i < 6; i++ {
		specs = append(specs, spec(coll.Bcast, "binomial", 8, 1, 65536))
	}
	_, seq, err := r.RunSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	ms, par, waves, err := r.RunParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(specs) {
		t.Fatalf("parallel measurements = %d", len(ms))
	}
	if par >= seq {
		t.Errorf("parallel %v not faster than sequential %v", par, seq)
	}
	if len(waves) == 0 || waves[0] < 2 {
		t.Errorf("expected multi-benchmark waves, got %v", waves)
	}
}

func TestRunParallelSingleRackMatchesSequentialShape(t *testing.T) {
	// One rack: every wave holds one benchmark; machine time ~= sequential.
	r := testRunner(t, cluster.TopologySingleRack())
	var specs []Spec
	for i := 0; i < 3; i++ {
		specs = append(specs, spec(coll.Bcast, "binomial", 4, 1, 4096))
	}
	_, seq, err := r.RunSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	_, par, waves, err := r.RunParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range waves {
		if w != 1 {
			t.Errorf("single-rack wave parallelism = %d, want 1", w)
		}
	}
	if par != seq {
		t.Errorf("single-rack parallel time %v != sequential %v", par, seq)
	}
}

func TestRunWaveCongestionInflation(t *testing.T) {
	// A hand-built wave that shares a rack must come out slower than
	// the same benchmarks run legally.
	r := testRunner(t, cluster.TopologySingleRack())
	s := spec(coll.Bcast, "binomial", 2, 1, 65536)
	legal, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	wave := []sched.Placement{
		{Request: sched.Request{ID: 0, Nodes: 2}, NodeIdx: []int{0, 1}},
		{Request: sched.Request{ID: 1, Nodes: 2}, NodeIdx: []int{2, 3}},
	}
	ms, _, err := r.RunWave(wave, map[int]Spec{0: s, 1: s})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.MeanTime <= legal.MeanTime {
			t.Errorf("congested run %v not slower than legal %v", m.MeanTime, legal.MeanTime)
		}
	}
}

func TestRunWaveErrors(t *testing.T) {
	r := testRunner(t, cluster.TopologySingleRack())
	if _, _, err := r.RunWave(nil, nil); err == nil {
		t.Error("empty wave should fail")
	}
	wave := []sched.Placement{{Request: sched.Request{ID: 9, Nodes: 2}, NodeIdx: []int{0, 1}}}
	if _, _, err := r.RunWave(wave, map[int]Spec{}); err == nil {
		t.Error("unknown request ID should fail")
	}
}

func TestNewRunnerValidation(t *testing.T) {
	alloc := cluster.TopologySingleRack()
	if _, err := NewRunner(netmodel.Params{}, netmodel.DefaultEnv(), alloc, Config{}); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := NewRunner(netmodel.DefaultParams(), netmodel.Env{}, alloc, Config{}); err == nil {
		t.Error("invalid env should fail")
	}
	if _, err := NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), cluster.Allocation{}, Config{}); err == nil {
		t.Error("invalid allocation should fail")
	}
	r, err := NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.Warmup != 2 || r.Config.Iters != 5 {
		t.Errorf("defaults not applied: %+v", r.Config)
	}
	if r.MaxNodes() != 64 {
		t.Errorf("MaxNodes = %d", r.MaxNodes())
	}
}

func TestSpecString(t *testing.T) {
	s := spec(coll.Bcast, "binomial", 2, 1, 8)
	if s.String() == "" {
		t.Error("empty String()")
	}
}
