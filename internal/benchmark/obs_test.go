package benchmark

import (
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/obs"
)

func TestRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := testRunner(t, cluster.TopologyTwoPairs())
	r.Metrics = NewMetrics(reg)

	m, err := r.Run(spec(coll.Bcast, "binomial", 2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	met := r.Metrics
	if got := met.Runs.Load(); got != 1 {
		t.Errorf("runs_total = %d, want 1", got)
	}
	// Warmup (2) + timed iterations (5) each redraw noise.
	if got := met.NoiseDraws.Load(); got != 7 {
		t.Errorf("noise_draws_total = %d, want 7", got)
	}
	if got := met.SimUs.Load(); got != m.WallTime {
		t.Errorf("sim_us = %v, want the run's wall time %v", got, m.WallTime)
	}
	if met.HostNs.Load() <= 0 {
		t.Error("host_ns not accumulated")
	}
}

func TestRunParallelMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := testRunner(t, cluster.TopologyTwoPairs())
	r.Metrics = NewMetrics(reg)

	specs := []Spec{
		spec(coll.Bcast, "binomial", 2, 2, 1024),
		spec(coll.Bcast, "binomial", 2, 2, 2048),
		spec(coll.Bcast, "binomial", 2, 2, 4096),
	}
	ms, total, _, err := r.RunParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(specs) {
		t.Fatalf("measurements = %d, want %d", len(ms), len(specs))
	}
	met := r.Metrics
	if got := met.Runs.Load(); got != uint64(len(specs)) {
		t.Errorf("runs_total = %d, want %d", got, len(specs))
	}
	if got := met.WaveRuns.Load(); got != uint64(len(specs)) {
		t.Errorf("wave_runs_total = %d, want %d", got, len(specs))
	}
	waves := met.Sched.Waves.Load()
	if waves == 0 {
		t.Error("sched waves_total not recorded through RunParallel")
	}
	// Accumulated simulated time counts every run; the returned total is
	// wave maxima, so it can only be smaller.
	if sim := met.SimUs.Load(); sim < total {
		t.Errorf("sim_us = %v < wave-max total %v", sim, total)
	}
}

// TestRunNilMetrics pins that an uninstrumented runner measures
// identically: metrics must be observational only.
func TestRunNilMetrics(t *testing.T) {
	plain := testRunner(t, cluster.TopologyTwoPairs())
	inst := testRunner(t, cluster.TopologyTwoPairs())
	inst.Metrics = NewMetrics(obs.NewRegistry())
	s := spec(coll.Bcast, "binomial", 2, 2, 4096)
	m1, err := plain.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := inst.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("instrumented run differs: %+v vs %+v", m1, m2)
	}
}
