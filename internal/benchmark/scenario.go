// Scenario matrix: the "scenario diversity" harness. A Scenario is a
// named perturbation of the job's dynamic environment (the
// non-programmatic variables of Section II-B), and the matrix runner
// measures every (collective × algorithm) cell of one feature point
// under every requested (topology × scenario) combination — the grid
// the Hunold performance-guidelines methodology assumes and the seed
// repo could not reach with one Dragonfly model and a calm environment.

package benchmark

import (
	"fmt"

	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

// Scenario names one dynamic-environment variant of the matrix.
type Scenario int

// The matrix's four environment variants.
const (
	Baseline        Scenario = iota // the base environment untouched
	DegradedLinks                   // link bandwidth cut to a quarter
	CongestionStorm                 // startup latency 8x, noisy measurements
	HeteroNodes                     // every 4th allocated node runs 3x slower
	numScenarios
)

// String implements fmt.Stringer with CLI-flag spellings.
func (s Scenario) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case DegradedLinks:
		return "degraded-links"
	case CongestionStorm:
		return "congestion-storm"
	case HeteroNodes:
		return "hetero-nodes"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ParseScenario converts a name produced by String back to a Scenario.
func ParseScenario(name string) (Scenario, error) {
	for s := Scenario(0); s < numScenarios; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("benchmark: unknown scenario %q (valid: %v)", name, Scenarios())
}

// Scenarios returns all scenarios in stable order.
func Scenarios() []Scenario {
	ss := make([]Scenario, numScenarios)
	for i := range ss {
		ss[i] = Scenario(i)
	}
	return ss
}

// Apply derives the scenario's environment from a base environment. The
// perturbations compose with whatever congestion the base already
// carries, so a sampled job environment can be stormed on top.
func (s Scenario) Apply(env netmodel.Env) netmodel.Env {
	switch s {
	case DegradedLinks:
		env.BandwidthFactor *= 4
	case CongestionStorm:
		env.LatencyFactor *= 8
		if env.NoiseSigma < 0.1 {
			env.NoiseSigma = 0.1
		}
	case HeteroNodes:
		env.HeteroEvery = 4
		env.HeteroFactor = 3
	}
	return env
}

// Cell identifies one point of the scenario matrix.
type Cell struct {
	Coll     coll.Collective
	Alg      string
	Topology string
	Scenario Scenario
	Point    featspace.Point
}

// String renders the cell compactly.
func (c Cell) String() string {
	return fmt.Sprintf("%v/%s@%v on %s under %v", c.Coll, c.Alg, c.Point, c.Topology, c.Scenario)
}

// CellResult is one measured matrix cell.
type CellResult struct {
	Cell     Cell
	MeanTime float64 // mean per-iteration collective time (us)
	WallTime float64 // machine time the measurement occupied (us)
}

// MatrixConfig scopes one scenario-matrix run.
type MatrixConfig struct {
	Params      netmodel.Params
	Env         netmodel.Env // base environment each scenario perturbs
	Alloc       cluster.Allocation
	Bench       Config
	Collectives []coll.Collective // nil: all registered collectives
	Topologies  []string          // nil: all of netmodel.TopologyNames()
	Scenarios   []Scenario        // nil: all scenarios
	Point       featspace.Point
}

// RunMatrix measures every (collective × algorithm × topology ×
// scenario) cell at the config's feature point, in stable cell order.
// Each (topology, scenario) pair gets its own Runner so the scenario's
// environment perturbation and the topology's path classification apply
// to every algorithm identically.
func RunMatrix(cfg MatrixConfig) ([]CellResult, error) {
	if err := cfg.Point.Validate(); err != nil {
		return nil, err
	}
	collectives := cfg.Collectives
	if collectives == nil {
		collectives = coll.Collectives()
	}
	topologies := cfg.Topologies
	if topologies == nil {
		topologies = netmodel.TopologyNames()
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = Scenarios()
	}
	var out []CellResult
	for _, topoName := range topologies {
		topo, err := netmodel.TopologyByName(topoName, cfg.Alloc.Machine)
		if err != nil {
			return nil, err
		}
		for _, sc := range scenarios {
			runner, err := NewRunner(cfg.Params, sc.Apply(cfg.Env), cfg.Alloc, cfg.Bench)
			if err != nil {
				return nil, fmt.Errorf("benchmark: %s/%v: %w", topo.Name(), sc, err)
			}
			runner.Topology = topo
			for _, c := range collectives {
				for _, alg := range coll.AlgorithmNames(c) {
					cell := Cell{Coll: c, Alg: alg, Topology: topo.Name(), Scenario: sc, Point: cfg.Point}
					m, err := runner.Run(Spec{Coll: c, Alg: alg, Point: cfg.Point})
					if err != nil {
						return nil, fmt.Errorf("benchmark: cell %v: %w", cell, err)
					}
					out = append(out, CellResult{Cell: cell, MeanTime: m.MeanTime, WallTime: m.WallTime})
				}
			}
		}
	}
	return out, nil
}
