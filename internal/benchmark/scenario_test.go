package benchmark

import (
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

func TestScenarioRoundTrip(t *testing.T) {
	for _, s := range Scenarios() {
		got, err := ParseScenario(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScenario("blizzard"); err == nil {
		t.Error("unknown scenario should fail")
	}
}

func TestScenarioApply(t *testing.T) {
	base := netmodel.DefaultEnv()
	if got := Baseline.Apply(base); got != base {
		t.Errorf("baseline perturbed the env: %+v", got)
	}
	if got := DegradedLinks.Apply(base); got.BandwidthFactor != base.BandwidthFactor*4 {
		t.Errorf("degraded-links bandwidth factor = %v", got.BandwidthFactor)
	}
	storm := CongestionStorm.Apply(base)
	if storm.LatencyFactor != base.LatencyFactor*8 || storm.NoiseSigma < 0.1 {
		t.Errorf("congestion-storm env = %+v", storm)
	}
	hetero := HeteroNodes.Apply(base)
	if hetero.HeteroEvery != 4 || hetero.HeteroFactor != 3 {
		t.Errorf("hetero-nodes env = %+v", hetero)
	}
	// Every derived environment must be constructible.
	for _, s := range Scenarios() {
		if err := s.Apply(base).Validate(); err != nil {
			t.Errorf("%v env invalid: %v", s, err)
		}
	}
}

func TestRunnerTopologyChangesTiming(t *testing.T) {
	alloc := cluster.TopologyTwoPairs()
	s := spec(coll.Bcast, "binomial", 8, 2, 8192)
	df := testRunner(t, alloc)
	torus := testRunner(t, alloc)
	topo, err := netmodel.TopologyByName("torus", alloc.Machine)
	if err != nil {
		t.Fatal(err)
	}
	torus.Topology = topo
	a, err := df.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := torus.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTime == b.MeanTime {
		t.Error("torus topology produced identical timing to dragonfly")
	}
}

func TestRunMatrix(t *testing.T) {
	alloc := cluster.TopologyTwoPairs()
	cfg := MatrixConfig{
		Params:      netmodel.DefaultParams(),
		Env:         netmodel.DefaultEnv(),
		Alloc:       alloc,
		Bench:       Config{Seed: 3},
		Collectives: []coll.Collective{coll.Alltoall, coll.Gather},
		Point:       featspace.Point{Nodes: 4, PPN: 2, MsgBytes: 1024},
	}
	results, err := RunMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	algs := coll.NumAlgorithms(coll.Alltoall) + coll.NumAlgorithms(coll.Gather)
	want := algs * len(netmodel.TopologyNames()) * len(Scenarios())
	if len(results) != want {
		t.Fatalf("matrix = %d cells, want %d", len(results), want)
	}
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		if r.MeanTime <= 0 || r.WallTime <= 0 {
			t.Fatalf("cell %v has non-positive times: %+v", r.Cell, r)
		}
		key := r.Cell.String()
		if seen[key] {
			t.Fatalf("duplicate cell %v", r.Cell)
		}
		seen[key] = true
	}
	// Perturbed scenarios must be slower than baseline for the same cell
	// on the same topology: every perturbation only adds cost.
	base := make(map[string]float64)
	for _, r := range results {
		if r.Cell.Scenario == Baseline {
			base[r.Cell.Topology+"/"+r.Cell.Alg+"/"+r.Cell.Coll.String()] = r.MeanTime
		}
	}
	for _, r := range results {
		if r.Cell.Scenario == Baseline {
			continue
		}
		b := base[r.Cell.Topology+"/"+r.Cell.Alg+"/"+r.Cell.Coll.String()]
		// Noise differs across scenarios, so compare with slack.
		if r.MeanTime < b*0.8 {
			t.Errorf("cell %v faster (%v) than baseline (%v)", r.Cell, r.MeanTime, b)
		}
	}
}

func TestRunMatrixInvalidPoint(t *testing.T) {
	cfg := MatrixConfig{
		Params: netmodel.DefaultParams(),
		Env:    netmodel.DefaultEnv(),
		Alloc:  cluster.TopologyTwoPairs(),
		Point:  featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 0},
	}
	if _, err := RunMatrix(cfg); err == nil {
		t.Error("invalid feature point should fail before any cell runs")
	}
}

func TestRunMatrixUnknownTopology(t *testing.T) {
	cfg := MatrixConfig{
		Params:     netmodel.DefaultParams(),
		Env:        netmodel.DefaultEnv(),
		Alloc:      cluster.TopologyTwoPairs(),
		Topologies: []string{"moebius"},
		Point:      featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 64},
	}
	if _, err := RunMatrix(cfg); err == nil {
		t.Error("unknown topology should fail")
	}
}
