// Package cluster models the physical structure of the target
// supercomputer: nodes grouped into racks, racks grouped into pairs, and
// pairs joined by a global layer — the simplified Aries Dragonfly
// topology of Figure 8 in the ACCLAiM paper. It also models job
// allocations, including the fragmented, spread-out allocations produced
// by a best-effort scheduler such as Theta's (Section II-B), which are
// the root cause of the >2x job-to-job latency variation the paper
// reports.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"acclaim/internal/obs"
)

// Machine describes a cluster's physical layout. Nodes are numbered
// sequentially within a rack and across racks (Figure 8).
type Machine struct {
	Nodes        int // total node count
	NodesPerRack int // nodes per rack (layer 1 domain)
	CoresPerNode int // hardware threads per node (64 on Theta)
}

// Theta returns a machine shaped like the paper's production target:
// 4,392 nodes, 64 cores each. The per-rack node count is chosen to match
// the simplified Figure 8 topology.
func Theta() Machine {
	return Machine{Nodes: 4392, NodesPerRack: 64, CoresPerNode: 64}
}

// Bebop returns a machine shaped like the cluster behind the paper's
// precollected dataset: 64 usable nodes with 36 cores (32 used).
func Bebop() Machine {
	return Machine{Nodes: 128, NodesPerRack: 16, CoresPerNode: 36}
}

// Validate checks the machine description for consistency.
func (m Machine) Validate() error {
	switch {
	case m.Nodes <= 0:
		return errors.New("cluster: machine has no nodes")
	case m.NodesPerRack <= 0:
		return errors.New("cluster: non-positive nodes per rack")
	case m.CoresPerNode <= 0:
		return errors.New("cluster: non-positive cores per node")
	}
	return nil
}

// Racks returns the number of racks (the last one may be partial).
func (m Machine) Racks() int {
	return (m.Nodes + m.NodesPerRack - 1) / m.NodesPerRack
}

// RackOf returns the rack index holding the given physical node.
func (m Machine) RackOf(node int) int { return node / m.NodesPerRack }

// PairOf returns the rack-pair index of a rack (layer 2 domain: every
// two racks share a second-layer link, per Figure 8).
func (m Machine) PairOf(rack int) int { return rack / 2 }

// PairOfNode returns the rack-pair index holding the given node.
func (m Machine) PairOfNode(node int) int { return m.PairOf(m.RackOf(node)) }

// Allocation is the set of physical nodes a job received, in scheduler
// order. Ranks are laid out block-wise: rank r runs on
// Nodes[r / ppn].
type Allocation struct {
	Machine Machine
	Nodes   []int // physical node IDs in allocation order
}

// Validate checks that the allocation references valid, distinct nodes.
func (a Allocation) Validate() error {
	if err := a.Machine.Validate(); err != nil {
		return err
	}
	if len(a.Nodes) == 0 {
		return errors.New("cluster: empty allocation")
	}
	seen := make(map[int]bool, len(a.Nodes))
	for _, n := range a.Nodes {
		if n < 0 || n >= a.Machine.Nodes {
			return fmt.Errorf("cluster: node %d outside machine (%d nodes)", n, a.Machine.Nodes)
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node %d in allocation", n)
		}
		seen[n] = true
	}
	return nil
}

// Size returns the number of allocated nodes.
func (a Allocation) Size() int { return len(a.Nodes) }

// NodeOfRank maps an MPI rank to its physical node under block placement
// with the given processes-per-node count.
func (a Allocation) NodeOfRank(rank, ppn int) int {
	return a.Nodes[rank/ppn]
}

// RackSpan returns how many distinct racks the allocation touches.
func (a Allocation) RackSpan() int {
	racks := make(map[int]bool)
	for _, n := range a.Nodes {
		racks[a.Machine.RackOf(n)] = true
	}
	return len(racks)
}

// PairSpan returns how many distinct rack pairs the allocation touches.
func (a Allocation) PairSpan() int {
	pairs := make(map[int]bool)
	for _, n := range a.Nodes {
		pairs[a.Machine.PairOfNode(n)] = true
	}
	return len(pairs)
}

// Spread quantifies how scattered the allocation is, as the mean over
// all node pairs of a per-pair distance score: 0 for same node pairings
// (not possible here), 1 for same rack, 2 for same rack pair, 3 for
// global. A perfectly compact allocation inside one rack scores 1; a
// fully scattered allocation approaches 3. Single-node allocations
// score 0.
func (a Allocation) Spread() float64 {
	n := len(a.Nodes)
	if n < 2 {
		return 0
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ri, rj := a.Machine.RackOf(a.Nodes[i]), a.Machine.RackOf(a.Nodes[j])
			switch {
			case ri == rj:
				sum += 1
			case a.Machine.PairOf(ri) == a.Machine.PairOf(rj):
				sum += 2
			default:
				sum += 3
			}
			count++
		}
	}
	return sum / float64(count)
}

// Contiguous allocates n nodes starting at physical node start. It
// returns an error if the range exceeds the machine.
func Contiguous(m Machine, start, n int) (Allocation, error) {
	if n <= 0 {
		return Allocation{}, errors.New("cluster: non-positive allocation size")
	}
	if start < 0 || start+n > m.Nodes {
		return Allocation{}, fmt.Errorf("cluster: range [%d,%d) exceeds machine of %d nodes", start, start+n, m.Nodes)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = start + i
	}
	return Allocation{Machine: m, Nodes: nodes}, nil
}

// Strided allocates n nodes starting at start with the given stride,
// used to construct the paper's Figure 13 "Max Parallel" topology
// (single nodes on racks from separate pairs).
func Strided(m Machine, start, n, stride int) (Allocation, error) {
	if n <= 0 || stride <= 0 {
		return Allocation{}, errors.New("cluster: non-positive size or stride")
	}
	last := start + (n-1)*stride
	if start < 0 || last >= m.Nodes {
		return Allocation{}, fmt.Errorf("cluster: strided range ends at %d, machine has %d nodes", last, m.Nodes)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = start + i*stride
	}
	return Allocation{Machine: m, Nodes: nodes}, nil
}

// Metrics are the allocator's registry handles: how many allocations
// were drawn and how fragmented they came back — rack and pair span
// are the topology properties behind the paper's >2x job-to-job
// latency variation. Build with NewMetrics; pass to BestEffortObs.
type Metrics struct {
	Allocations *obs.Counter   // cluster.allocations_total
	RackSpan    *obs.Histogram // cluster.alloc_rack_span: racks touched per allocation
	PairSpan    *obs.Histogram // cluster.alloc_pair_span: rack pairs touched per allocation
}

// NewMetrics registers the allocator metric set on reg (nil reg gives
// all-nil, no-op handles).
func NewMetrics(reg *obs.Registry) *Metrics {
	spanBuckets := []float64{1, 2, 4, 8, 16, 32, 64}
	return &Metrics{
		Allocations: reg.Counter("cluster.allocations_total"),
		RackSpan:    reg.Histogram("cluster.alloc_rack_span", spanBuckets...),
		PairSpan:    reg.Histogram("cluster.alloc_pair_span", spanBuckets...),
	}
}

// BestEffort mimics a best-effort scheduler: it draws n distinct nodes
// from the machine as a union of a few random contiguous fragments, so
// allocations range from nearly compact to widely scattered across
// pairs. The result is deterministic for a given rng state.
func BestEffort(m Machine, rng *rand.Rand, n int) (Allocation, error) {
	return BestEffortObs(m, rng, n, nil)
}

// BestEffortObs is BestEffort with observability: when met is non-nil
// the allocation's fragmentation shape is recorded.
func BestEffortObs(m Machine, rng *rand.Rand, n int, met *Metrics) (Allocation, error) {
	a, err := bestEffort(m, rng, n)
	if err == nil && met != nil {
		met.Allocations.Inc()
		met.RackSpan.Observe(float64(a.RackSpan()))
		met.PairSpan.Observe(float64(a.PairSpan()))
	}
	return a, err
}

func bestEffort(m Machine, rng *rand.Rand, n int) (Allocation, error) {
	if n <= 0 || n > m.Nodes {
		return Allocation{}, fmt.Errorf("cluster: cannot allocate %d of %d nodes", n, m.Nodes)
	}
	fragments := 1 + rng.Intn(4) // 1..4 fragments
	if fragments > n {
		fragments = n
	}
	taken := make(map[int]bool, n)
	var nodes []int
	remaining := n
	for f := 0; f < fragments && remaining > 0; f++ {
		size := remaining
		if f < fragments-1 {
			size = 1 + rng.Intn(remaining)
		}
		// Find a random start where at least `size` free nodes exist by
		// scanning forward with wraparound.
		start := rng.Intn(m.Nodes)
		placed := 0
		for off := 0; off < m.Nodes && placed < size; off++ {
			node := (start + off) % m.Nodes
			if !taken[node] {
				taken[node] = true
				nodes = append(nodes, node)
				placed++
			}
		}
		remaining -= placed
	}
	sort.Ints(nodes)
	a := Allocation{Machine: m, Nodes: nodes}
	if err := a.Validate(); err != nil {
		return Allocation{}, err
	}
	return a, nil
}

// Topology presets for the parallel-collection study (Figure 13). Each
// returns a 64-node allocation on a machine sized so the layout is
// exactly the paper's description.

// TopologySingleRack places all 64 nodes in one rack: no parallel
// benchmarking is possible without sharing layer 1.
func TopologySingleRack() Allocation {
	m := Machine{Nodes: 256, NodesPerRack: 64, CoresPerNode: 64}
	a, err := Contiguous(m, 0, 64)
	if err != nil {
		panic(err)
	}
	return a
}

// TopologyRackPair places 32 nodes on each of two racks within one pair.
func TopologyRackPair() Allocation {
	m := Machine{Nodes: 256, NodesPerRack: 32, CoresPerNode: 64}
	a, err := Contiguous(m, 0, 64)
	if err != nil {
		panic(err)
	}
	return a
}

// TopologyTwoPairs places 16 nodes on each of four racks in two pairs.
func TopologyTwoPairs() Allocation {
	m := Machine{Nodes: 256, NodesPerRack: 16, CoresPerNode: 64}
	a, err := Contiguous(m, 0, 64)
	if err != nil {
		panic(err)
	}
	return a
}

// TopologyMaxParallel places single nodes on racks from separate pairs
// (the paper's 1-0-1-0... layout): maximum parallelism potential.
func TopologyMaxParallel() Allocation {
	// One node per rack, every other rack, so consecutive allocation
	// nodes are in different rack pairs.
	m := Machine{Nodes: 512, NodesPerRack: 2, CoresPerNode: 64}
	a, err := Strided(m, 0, 64, 4) // stride of two racks = one pair
	if err != nil {
		panic(err)
	}
	return a
}
