package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMachineRackMath(t *testing.T) {
	m := Machine{Nodes: 100, NodesPerRack: 16, CoresPerNode: 64}
	if got := m.Racks(); got != 7 { // 6 full racks + 1 partial
		t.Errorf("Racks() = %d, want 7", got)
	}
	if got := m.RackOf(0); got != 0 {
		t.Errorf("RackOf(0) = %d", got)
	}
	if got := m.RackOf(16); got != 1 {
		t.Errorf("RackOf(16) = %d, want 1", got)
	}
	if got := m.PairOf(3); got != 1 {
		t.Errorf("PairOf(3) = %d, want 1", got)
	}
	if got := m.PairOfNode(48); got != 1 { // node 48 -> rack 3 -> pair 1
		t.Errorf("PairOfNode(48) = %d, want 1", got)
	}
}

func TestMachineValidate(t *testing.T) {
	if err := Theta().Validate(); err != nil {
		t.Errorf("Theta invalid: %v", err)
	}
	if err := Bebop().Validate(); err != nil {
		t.Errorf("Bebop invalid: %v", err)
	}
	bad := []Machine{
		{Nodes: 0, NodesPerRack: 1, CoresPerNode: 1},
		{Nodes: 1, NodesPerRack: 0, CoresPerNode: 1},
		{Nodes: 1, NodesPerRack: 1, CoresPerNode: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
}

func TestContiguous(t *testing.T) {
	m := Bebop()
	a, err := Contiguous(m, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 8 || a.Nodes[0] != 4 || a.Nodes[7] != 11 {
		t.Errorf("allocation = %v", a.Nodes)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, err := Contiguous(m, 120, 16); err == nil {
		t.Error("out-of-range allocation should fail")
	}
	if _, err := Contiguous(m, 0, 0); err == nil {
		t.Error("empty allocation should fail")
	}
}

func TestStrided(t *testing.T) {
	m := Machine{Nodes: 512, NodesPerRack: 2, CoresPerNode: 64}
	a, err := Strided(m, 0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[1] != 4 || a.Nodes[9] != 36 {
		t.Errorf("strided nodes = %v", a.Nodes)
	}
	if _, err := Strided(m, 0, 1000, 4); err == nil {
		t.Error("overlong stride should fail")
	}
}

func TestNodeOfRank(t *testing.T) {
	a, _ := Contiguous(Bebop(), 0, 4)
	// ppn=2: ranks 0,1 -> node 0; ranks 2,3 -> node 1; ...
	cases := []struct{ rank, ppn, node int }{
		{0, 2, 0}, {1, 2, 0}, {2, 2, 1}, {7, 2, 3}, {0, 1, 0}, {3, 1, 3},
	}
	for _, c := range cases {
		if got := a.NodeOfRank(c.rank, c.ppn); got != c.node {
			t.Errorf("NodeOfRank(%d, ppn=%d) = %d, want %d", c.rank, c.ppn, got, c.node)
		}
	}
}

func TestSpans(t *testing.T) {
	// 16-node racks: 32 contiguous nodes span 2 racks, 1 pair.
	m := Machine{Nodes: 256, NodesPerRack: 16, CoresPerNode: 64}
	a, _ := Contiguous(m, 0, 32)
	if a.RackSpan() != 2 {
		t.Errorf("RackSpan = %d, want 2", a.RackSpan())
	}
	if a.PairSpan() != 1 {
		t.Errorf("PairSpan = %d, want 1", a.PairSpan())
	}
	b, _ := Contiguous(m, 0, 64)
	if b.PairSpan() != 2 {
		t.Errorf("PairSpan(64) = %d, want 2", b.PairSpan())
	}
}

func TestSpreadOrdering(t *testing.T) {
	// Compact < pair-spanning < fully scattered.
	compact := TopologySingleRack()
	pair := TopologyRackPair()
	scattered := TopologyMaxParallel()
	sc, sp, ss := compact.Spread(), pair.Spread(), scattered.Spread()
	if !(sc < sp && sp < ss) {
		t.Errorf("Spread ordering violated: compact=%v pair=%v scattered=%v", sc, sp, ss)
	}
	if sc != 1 {
		t.Errorf("single-rack spread = %v, want 1", sc)
	}
	if ss != 3 {
		t.Errorf("max-parallel spread = %v, want 3 (all global)", ss)
	}
}

func TestSpreadSingleNode(t *testing.T) {
	a, _ := Contiguous(Bebop(), 0, 1)
	if a.Spread() != 0 {
		t.Errorf("single-node spread = %v, want 0", a.Spread())
	}
}

func TestBestEffortProperties(t *testing.T) {
	m := Theta()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%128 + 1
		rng := rand.New(rand.NewSource(seed))
		a, err := BestEffort(m, rng, n)
		if err != nil {
			return false
		}
		if a.Size() != n {
			return false
		}
		return a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBestEffortDeterministic(t *testing.T) {
	m := Theta()
	a1, _ := BestEffort(m, rand.New(rand.NewSource(42)), 32)
	a2, _ := BestEffort(m, rand.New(rand.NewSource(42)), 32)
	if len(a1.Nodes) != len(a2.Nodes) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a1.Nodes {
		if a1.Nodes[i] != a2.Nodes[i] {
			t.Fatal("same seed produced different allocations")
		}
	}
}

func TestBestEffortErrors(t *testing.T) {
	m := Bebop()
	rng := rand.New(rand.NewSource(1))
	if _, err := BestEffort(m, rng, 0); err == nil {
		t.Error("zero-size should fail")
	}
	if _, err := BestEffort(m, rng, m.Nodes+1); err == nil {
		t.Error("oversize should fail")
	}
}

func TestBestEffortSpreadVaries(t *testing.T) {
	// Over many draws, allocations should show meaningful spread
	// variation — the paper's >2x latency variation depends on it.
	m := Theta()
	rng := rand.New(rand.NewSource(7))
	lo, hi := 99.0, 0.0
	for i := 0; i < 40; i++ {
		a, err := BestEffort(m, rng, 64)
		if err != nil {
			t.Fatal(err)
		}
		s := a.Spread()
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi-lo < 0.2 {
		t.Errorf("best-effort allocations show too little spread variation: [%v, %v]", lo, hi)
	}
}

func TestTopologyPresets(t *testing.T) {
	for name, a := range map[string]Allocation{
		"SingleRack":  TopologySingleRack(),
		"RackPair":    TopologyRackPair(),
		"TwoPairs":    TopologyTwoPairs(),
		"MaxParallel": TopologyMaxParallel(),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if a.Size() != 64 {
			t.Errorf("%s has %d nodes, want 64", name, a.Size())
		}
	}
	if TopologySingleRack().RackSpan() != 1 {
		t.Error("SingleRack should span 1 rack")
	}
	if TopologyRackPair().RackSpan() != 2 || TopologyRackPair().PairSpan() != 1 {
		t.Error("RackPair should span 2 racks in 1 pair")
	}
	if TopologyTwoPairs().RackSpan() != 4 || TopologyTwoPairs().PairSpan() != 2 {
		t.Error("TwoPairs should span 4 racks in 2 pairs")
	}
	mp := TopologyMaxParallel()
	if mp.RackSpan() != 64 || mp.PairSpan() != 64 {
		t.Errorf("MaxParallel spans %d racks / %d pairs, want 64/64", mp.RackSpan(), mp.PairSpan())
	}
}

func TestAllocationValidateRejects(t *testing.T) {
	m := Bebop()
	bad := Allocation{Machine: m, Nodes: []int{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate nodes should fail validation")
	}
	bad2 := Allocation{Machine: m, Nodes: []int{-1}}
	if err := bad2.Validate(); err == nil {
		t.Error("negative node should fail validation")
	}
	bad3 := Allocation{Machine: m, Nodes: []int{m.Nodes}}
	if err := bad3.Validate(); err == nil {
		t.Error("out-of-range node should fail validation")
	}
	bad4 := Allocation{Machine: m}
	if err := bad4.Validate(); err == nil {
		t.Error("empty allocation should fail validation")
	}
}
