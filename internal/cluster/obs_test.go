package cluster

import (
	"math/rand"
	"testing"

	"acclaim/internal/obs"
)

func TestBestEffortObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	rng := rand.New(rand.NewSource(7))
	m := Theta()

	const draws = 5
	for i := 0; i < draws; i++ {
		a, err := BestEffortObs(m, rng, 16, met)
		if err != nil {
			t.Fatal(err)
		}
		if a.Size() != 16 {
			t.Fatalf("allocation size = %d, want 16", a.Size())
		}
	}
	if got := met.Allocations.Load(); got != draws {
		t.Errorf("allocations_total = %d, want %d", got, draws)
	}
	rs := met.RackSpan.Snapshot()
	if rs.Count != draws {
		t.Errorf("rack_span observations = %d, want %d", rs.Count, draws)
	}
	if rs.Sum < draws { // every allocation touches at least one rack
		t.Errorf("rack_span sum = %v, want >= %d", rs.Sum, draws)
	}
	if ps := met.PairSpan.Snapshot(); ps.Count != draws {
		t.Errorf("pair_span observations = %d, want %d", ps.Count, draws)
	}
}

// TestBestEffortObsFailedDraw pins that a failed allocation records
// nothing: the histograms describe allocations that exist.
func TestBestEffortObsFailedDraw(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	if _, err := BestEffortObs(Theta(), rand.New(rand.NewSource(1)), 1<<20, met); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
	if met.Allocations.Load() != 0 || met.RackSpan.Count() != 0 {
		t.Error("failed allocation was recorded")
	}
}
