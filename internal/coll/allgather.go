package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// uniformSegments partitions n*m output bytes into n blocks of m bytes.
func uniformSegments(n, m int) segset {
	s := segset{off: make([]int, n), len: make([]int, n)}
	for i := 0; i < n; i++ {
		s.off[i] = i * m
		s.len[i] = m
	}
	return s
}

// allgatherRecursiveDoubling gathers every rank's m-byte block to all
// ranks in log2(n) doubling exchanges. The payload doubles every round,
// so it has the fewest latency terms; non-P2 rank counts pay the
// pre/post fold with its extra full-size transfer, making this the
// strongly P2-favoring allgather.
func allgatherRecursiveDoubling(c *simmpi.Comm, block simmpi.Buf) simmpi.Buf {
	n := c.Size()
	out := newBufLike(block, n*block.N)
	out.CopyInto(c.Rank()*block.N, block)
	segs := uniformSegments(n, block.N)
	rdAllgather(c, out, segs, c.Rank(), n, func(r int) int { return r })
	return out
}

// allgatherRing gathers blocks with n-1 pipelined neighbour exchanges of
// one block each: bandwidth-optimal and topology-friendly, but its n-1
// serial latency terms dominate for small blocks.
func allgatherRing(c *simmpi.Comm, block simmpi.Buf) simmpi.Buf {
	n := c.Size()
	out := newBufLike(block, n*block.N)
	out.CopyInto(c.Rank()*block.N, block)
	segs := uniformSegments(n, block.N)
	ringAllgather(c, out, segs, c.Rank(), n, func(r int) int { return r })
	return out
}

// allgatherBrucks is the Bruck algorithm: ceil(log2(n)) exchanges that
// work for any rank count, at the cost of a final local rotation of the
// whole n*m buffer. The short-message algorithm of choice for non-P2
// rank counts in MPICH.
func allgatherBrucks(c *simmpi.Comm, block simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := block.N
	rank := c.Rank()
	// tmp holds blocks in rotated order: position j = block of rank+j.
	tmp := newBufLike(block, n*m)
	tmp.CopyInto(0, block)
	cur := 1
	for dist := 1; dist < n; dist *= 2 {
		sendCnt := dist
		if n-cur < sendCnt {
			sendCnt = n - cur
		}
		to := (rank - dist + n) % n
		from := (rank + dist) % n
		got := c.Sendrecv(to, tmp.Slice(0, sendCnt*m), from)
		tmp.CopyInto(cur*m, got)
		cur += got.N / m
	}
	// Rotate into rank order; real implementations pay a full local copy.
	c.Compute(c.Model().CopyCost(n * m))
	out := newBufLike(block, n*m)
	for j := 0; j < n; j++ {
		out.CopyInto(((rank+j)%n)*m, tmp.Slice(j*m, (j+1)*m))
	}
	return out
}

// newBufLike allocates an n-byte buffer in the same data-mode as ref.
func newBufLike(ref simmpi.Buf, n int) simmpi.Buf {
	return newBuf(n, ref.HasData())
}

// execAllgather runs one allgather algorithm (msgBytes is the per-rank
// block size, OSU convention) and verifies every rank's result.
func execAllgather(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		block := newBuf(msgBytes, opts.WithData)
		fillInput(c.Rank(), block)
		var out simmpi.Buf
		switch alg {
		case "recursive_doubling":
			out = allgatherRecursiveDoubling(c, block)
		case "ring":
			out = allgatherRing(c, block)
		case "brucks":
			out = allgatherBrucks(c, block)
		default:
			panic(fmt.Sprintf("coll: unknown allgather algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		want := make([]byte, n*msgBytes)
		for r := 0; r < n; r++ {
			for i := 0; i < msgBytes; i++ {
				want[r*msgBytes+i] = inputByte(r, i)
			}
		}
		for r := 0; r < n; r++ {
			if err := verifyEqual(outs[r], want, "allgather", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
