package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// allreduceRecursiveDoubling is the classic log-step allreduce: active
// ranks exchange their full vectors with partners at doubling distances
// and combine. log2(n) rounds of full-size messages — latency-friendly
// for small vectors, bandwidth-hungry for large ones. Non-P2 rank counts
// pay the pre/post fold.
func allreduceRecursiveDoubling(c *simmpi.Comm, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	acc := vec.Clone()
	st := foldFor(c.Rank(), n)
	if active := preFold(c, st, acc, op); active {
		for dist := 1; dist < st.pof2; dist *= 2 {
			partner := st.oldRank(st.newRank ^ dist)
			got := c.Sendrecv(partner, acc, partner)
			op.Combine(acc, got)
			c.Compute(c.Model().ReduceCost(acc.N))
		}
		if c.Rank() < 2*st.rem { // send the result back to the folded partner
			c.Send(c.Rank()-1, acc)
		}
	} else {
		full := c.Recv(c.Rank() + 1)
		acc.CopyInto(0, full)
	}
	return acc
}

// allreduceReduceScatterAllgather is Rabenseifner's allreduce:
// recursive-halving reduce-scatter followed by a recursive-doubling
// allgather of the reduced segments. Bandwidth-optimal (each rank moves
// ~2x the vector rather than log(n)x) at the price of 2 log2(n) latency
// terms and the non-P2 fold penalty.
func allreduceReduceScatterAllgather(c *simmpi.Comm, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	acc := vec.Clone()
	st := foldFor(c.Rank(), n)
	if active := preFold(c, st, acc, op); active {
		newRank := st.newRank
		lo, hi := recursiveHalvingReduceScatter(c, st, newRank, acc, op)
		// Recursive-doubling allgather: walk the halving back up. At
		// each distance the partner owns the adjacent range, so the
		// union is contiguous.
		for dist := 1; dist < st.pof2; dist *= 2 {
			partner := st.oldRank(newRank ^ dist)
			got := c.Sendrecv(partner, acc.Slice(lo, hi), partner)
			if newRank&dist == 0 {
				acc.CopyInto(hi, got) // partner's range sits just above
				hi += got.N
			} else {
				acc.CopyInto(lo-got.N, got) // partner's range sits just below
				lo -= got.N
			}
		}
		if lo != 0 || hi != acc.N {
			panic(fmt.Sprintf("coll: allgather ranges did not close: [%d,%d) of %d", lo, hi, acc.N))
		}
		if c.Rank() < 2*st.rem {
			c.Send(c.Rank()-1, acc)
		}
	} else {
		full := c.Recv(c.Rank() + 1)
		acc.CopyInto(0, full)
	}
	return acc
}

// execAllreduce runs one allreduce algorithm and verifies every rank's
// result.
func execAllreduce(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		vec := newBuf(msgBytes, opts.WithData)
		fillInput(c.Rank(), vec)
		var out simmpi.Buf
		switch alg {
		case "recursive_doubling":
			out = allreduceRecursiveDoubling(c, vec, opts.Op)
		case "reduce_scatter_allgather":
			out = allreduceReduceScatterAllgather(c, vec, opts.Op)
		default:
			panic(fmt.Sprintf("coll: unknown allreduce algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		want := expectedReduction(n, msgBytes, opts.Op)
		for r := 0; r < n; r++ {
			if err := verifyEqual(outs[r], want, "allreduce", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
