package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// alltoallBrucks is the Bruck store-and-forward alltoall: a local
// rotation, ceil(log2(n)) packed exchanges in which every block whose
// rotated index has the round's bit set moves dist ranks forward, and a
// final inverse rotation. Only log(n) latency terms, but each block is
// forwarded up to log(n) times and both rotations pay a full local
// copy — MPICH's short-message choice.
func alltoallBrucks(c *simmpi.Comm, send simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := send.N / n
	rank := c.Rank()
	segs := uniformSegments(n, m)
	// Rotation 1: tmp[j] = block destined for rank (rank+j)%n, so the
	// self block sits at index 0 and never moves.
	tmp := newBufLike(send, n*m)
	for j := 0; j < n; j++ {
		d := (rank + j) % n
		tmp.CopyInto(j*m, send.Slice(d*m, (d+1)*m))
	}
	c.Compute(c.Model().CopyCost(n * m))
	blocks := make([]int, 0, n)
	for dist := 1; dist < n; dist *= 2 {
		blocks = blocks[:0]
		for j := 1; j < n; j++ {
			if j&dist != 0 {
				blocks = append(blocks, j)
			}
		}
		payload := concatBlocks(tmp, segs, blocks)
		got := c.Sendrecv((rank+dist)%n, payload, (rank-dist+n)%n)
		scatterBlocks(tmp, segs, blocks, got)
	}
	// Rotation 2: after the rounds tmp[j] holds the block sent to this
	// rank by rank (rank-j+n)%n; invert into source order.
	out := newBufLike(send, n*m)
	for j := 0; j < n; j++ {
		s := (rank - j + n) % n
		out.CopyInto(s*m, tmp.Slice(j*m, (j+1)*m))
	}
	c.Compute(c.Model().CopyCost(n * m))
	return out
}

// alltoallPairwise exchanges one block per step in n-1 full-duplex
// steps: XOR partners on power-of-two rank counts, a send/recv ring
// otherwise (the MPICH long-message schedule). Every block moves
// exactly once, so it is bandwidth-optimal, at the cost of n-1 latency
// terms.
func alltoallPairwise(c *simmpi.Comm, send simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := send.N / n
	rank := c.Rank()
	out := newBufLike(send, n*m)
	out.CopyInto(rank*m, send.Slice(rank*m, (rank+1)*m))
	c.Compute(c.Model().CopyCost(m))
	p2 := n&(n-1) == 0
	for step := 1; step < n; step++ {
		var dst, src int
		if p2 {
			dst = rank ^ step
			src = dst
		} else {
			dst = (rank + step) % n
			src = (rank - step + n) % n
		}
		got := c.Sendrecv(dst, send.Slice(dst*m, (dst+1)*m), src)
		out.CopyInto(src*m, got)
	}
	return out
}

// alltoallScattered posts all n-1 sends eagerly before draining the
// n-1 receives (MPICH's scattered isend/irecv schedule): maximum
// overlap, so the completion time is dominated by the slowest single
// transfer plus the serialized injection overheads.
func alltoallScattered(c *simmpi.Comm, send simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := send.N / n
	rank := c.Rank()
	out := newBufLike(send, n*m)
	out.CopyInto(rank*m, send.Slice(rank*m, (rank+1)*m))
	c.Compute(c.Model().CopyCost(m))
	for i := 1; i < n; i++ {
		dst := (rank + i) % n
		c.Send(dst, send.Slice(dst*m, (dst+1)*m))
	}
	for i := 1; i < n; i++ {
		src := (rank + i) % n
		out.CopyInto(src*m, c.Recv(src))
	}
	return out
}

// execAlltoall runs one alltoall algorithm (msgBytes is the per-pair
// block size, OSU convention: every rank sends a distinct msgBytes
// block to every rank) and verifies every rank's result.
func execAlltoall(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		send := newBuf(n*msgBytes, opts.WithData)
		fillInput(c.Rank(), send)
		var out simmpi.Buf
		switch alg {
		case "brucks":
			out = alltoallBrucks(c, send)
		case "pairwise":
			out = alltoallPairwise(c, send)
		case "scattered":
			out = alltoallScattered(c, send)
		default:
			panic(fmt.Sprintf("coll: unknown alltoall algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		for r := 0; r < n; r++ {
			// Rank r receives block r of every source's pattern.
			want := make([]byte, n*msgBytes)
			for s := 0; s < n; s++ {
				for i := 0; i < msgBytes; i++ {
					want[s*msgBytes+i] = inputByte(s, r*msgBytes+i)
				}
			}
			if err := verifyEqual(outs[r], want, "alltoall", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
