package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// bcastBinomial broadcasts out (valid at the root) down a binomial tree.
// log2(n) rounds, each carrying the full message: few, large transfers,
// which makes it the latency-robust choice the paper's Section II-B
// example describes.
func bcastBinomial(c *simmpi.Comm, root int, out simmpi.Buf) {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root + n) % n
			b := c.Recv(src)
			out.CopyInto(0, b)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			c.Send(dst, out)
		}
		mask >>= 1
	}
}

// bcastScatterRDAllgather is MPICH's scatter_recursive_doubling_allgather:
// a binomial scatter of message chunks followed by a recursive-doubling
// allgather. Bandwidth-optimal for large messages, but it strongly
// favors power-of-two rank counts (the allgather fixup for the leftover
// ranks costs an extra full-message transfer).
func bcastScatterRDAllgather(c *simmpi.Comm, root int, out simmpi.Buf) {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	toAbs := func(r int) int { return (r + root) % n }
	segs := ceilSegments(out.N, n)
	binomialScatter(c, out, segs, rel, n, toAbs)
	rdAllgather(c, out, segs, rel, n, toAbs)
}

// bcastScatterRingAllgather is MPICH's scatter_ring_allgather: binomial
// scatter followed by a ring allgather. Bandwidth-optimal and indifferent
// to power-of-two rank counts, but its n-1 serial ring steps make it
// latency-sensitive.
func bcastScatterRingAllgather(c *simmpi.Comm, root int, out simmpi.Buf) {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	toAbs := func(r int) int { return (r + root) % n }
	segs := ceilSegments(out.N, n)
	binomialScatter(c, out, segs, rel, n, toAbs)
	ringAllgather(c, out, segs, rel, n, toAbs)
}

// execBcast runs one bcast algorithm over all ranks and verifies that
// every rank ends with the root's buffer.
func execBcast(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		out := newBuf(msgBytes, opts.WithData)
		if c.Rank() == opts.Root {
			fillInput(opts.Root, out)
		}
		switch alg {
		case "binomial":
			bcastBinomial(c, opts.Root, out)
		case "scatter_recursive_doubling_allgather":
			bcastScatterRDAllgather(c, opts.Root, out)
		case "scatter_ring_allgather":
			bcastScatterRingAllgather(c, opts.Root, out)
		default:
			panic(fmt.Sprintf("coll: unknown bcast algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		want := make([]byte, msgBytes)
		for i := range want {
			want[i] = inputByte(opts.Root, i)
		}
		for r := 0; r < n; r++ {
			if err := verifyEqual(outs[r], want, "bcast", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
