// Package coll implements the ten MPICH collective algorithms studied in
// the ACCLAiM paper, across the four most popular collectives on
// production systems (Chunduri et al.): MPI_Allgather, MPI_Allreduce,
// MPI_Bcast, and MPI_Reduce.
//
// Every algorithm is written once against the simmpi virtual-time
// runtime and therefore yields both a simulated execution time and real
// data movement that the package verifies against a reference result —
// the same implementation is used by the correctness tests (with data)
// and the benchmark sweeps (timing only).
package coll

import (
	"errors"
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// Collective identifies one MPI collective operation.
type Collective int

// The four collectives, in the paper's alphabetical presentation order.
const (
	Allgather Collective = iota
	Allreduce
	Bcast
	Reduce
	numCollectives
)

// String implements fmt.Stringer using MPI naming.
func (c Collective) String() string {
	switch c {
	case Allgather:
		return "allgather"
	case Allreduce:
		return "allreduce"
	case Bcast:
		return "bcast"
	case Reduce:
		return "reduce"
	default:
		return fmt.Sprintf("Collective(%d)", int(c))
	}
}

// ParseCollective converts a name produced by String back to a
// Collective.
func ParseCollective(s string) (Collective, error) {
	for c := Collective(0); c < numCollectives; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("coll: unknown collective %q", s)
}

// NumCollectives is the number of collectives; valid Collective values
// are 0..NumCollectives-1, so dense per-collective arrays can be
// indexed by the enum (the rule-serving hot path does).
const NumCollectives = int(numCollectives)

// Collectives returns all four collectives in stable order.
func Collectives() []Collective {
	return []Collective{Allgather, Allreduce, Bcast, Reduce}
}

// algorithmNames fixes the per-collective algorithm order; the position
// of a name is its "algorithm" feature value in the ML models.
var algorithmNames = map[Collective][]string{
	Allgather: {"recursive_doubling", "ring", "brucks"},
	Allreduce: {"recursive_doubling", "reduce_scatter_allgather"},
	Bcast:     {"binomial", "scatter_recursive_doubling_allgather", "scatter_ring_allgather"},
	Reduce:    {"binomial", "scatter_gather"},
}

// AlgorithmNames returns the algorithm names of a collective in stable
// order. The returned slice must not be modified.
func AlgorithmNames(c Collective) []string { return algorithmNames[c] }

// NumAlgorithms returns how many algorithms a collective has.
func NumAlgorithms(c Collective) int { return len(algorithmNames[c]) }

// TotalAlgorithms is the number of (collective, algorithm) pairs: the
// "total of 10 algorithms" the paper considers.
const TotalAlgorithms = 10

// AlgIndex returns the feature index of an algorithm name.
func AlgIndex(c Collective, name string) (int, bool) {
	for i, n := range algorithmNames[c] {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// inputByte is the deterministic test pattern: the i-th byte of rank r's
// contribution. 251 is prime so patterns differ across ranks and offsets.
func inputByte(rank, i int) byte { return byte((rank*131 + i*29 + 7) % 251) }

// fillInput writes rank r's contribution pattern into a data buffer.
func fillInput(rank int, b simmpi.Buf) {
	if b.Data == nil {
		return
	}
	for i := range b.Data {
		b.Data[i] = inputByte(rank, i)
	}
}

// Options configures one collective execution.
type Options struct {
	WithData bool      // move and verify real bytes (slower)
	Op       simmpi.Op // reduction operator for reduce/allreduce
	Root     int       // root rank for rooted collectives (bcast, reduce)
}

// Exec runs the named algorithm of a collective over the model's ranks
// with the given message size (OSU convention: the per-rank contribution
// for allgather, the full buffer otherwise) and returns the simulated
// result. With opts.WithData it also verifies the collective's
// postcondition and returns an error on any mismatch.
func Exec(model *netmodel.Model, c Collective, alg string, msgBytes int, opts Options) (simmpi.Result, error) {
	if msgBytes < 1 {
		return simmpi.Result{}, errors.New("coll: message size must be >= 1")
	}
	n := model.Ranks()
	if n < 2 {
		return simmpi.Result{}, errors.New("coll: need at least 2 ranks")
	}
	if opts.Root < 0 || opts.Root >= n {
		return simmpi.Result{}, fmt.Errorf("coll: root %d out of range", opts.Root)
	}
	if _, ok := AlgIndex(c, alg); !ok {
		return simmpi.Result{}, fmt.Errorf("coll: collective %v has no algorithm %q", c, alg)
	}
	switch c {
	case Bcast:
		return execBcast(model, alg, msgBytes, opts)
	case Reduce:
		return execReduce(model, alg, msgBytes, opts)
	case Allreduce:
		return execAllreduce(model, alg, msgBytes, opts)
	case Allgather:
		return execAllgather(model, alg, msgBytes, opts)
	default:
		return simmpi.Result{}, fmt.Errorf("coll: unknown collective %v", c)
	}
}

// AlgSource answers "which algorithm should this collective call use"
// at collective-call time. It is the seam between the execution layer
// and a tuned selection source: *ruleserver.Server implements it over a
// lock-free rule-file snapshot, and tests implement it with fixtures.
// A false return means the source has no rule for the query.
type AlgSource interface {
	Lookup(c Collective, nodes, ppn, msg int) (string, bool)
}

// ExecSelected runs a collective the way a tuned MPI library would: it
// consults the source at call time with the job's shape (the model's
// node count and ppn) and the message size, then executes the selected
// algorithm. It returns the chosen algorithm alongside the result. An
// error is returned if the source has no rule for the call — a
// complete, validated rule file cannot decline, so a miss means the
// caller wired an untuned collective.
func ExecSelected(model *netmodel.Model, c Collective, src AlgSource, msgBytes int, opts Options) (simmpi.Result, string, error) {
	if src == nil {
		return simmpi.Result{}, "", errors.New("coll: nil algorithm source")
	}
	alg, ok := src.Lookup(c, model.Alloc.Size(), model.PPN, msgBytes)
	if !ok {
		return simmpi.Result{}, "", fmt.Errorf("coll: no selection rule for %v at nodes=%d ppn=%d msg=%d",
			c, model.Alloc.Size(), model.PPN, msgBytes)
	}
	res, err := Exec(model, c, alg, msgBytes, opts)
	return res, alg, err
}

// newBuf allocates a buffer, with backing bytes only in data mode.
func newBuf(n int, withData bool) simmpi.Buf {
	if withData {
		return simmpi.BytesBuf(make([]byte, n))
	}
	return simmpi.MakeBuf(n)
}

// expectedReduction computes op over all ranks' input patterns.
func expectedReduction(n, bytes int, op simmpi.Op) []byte {
	acc := make([]byte, bytes)
	for i := range acc {
		acc[i] = inputByte(0, i)
	}
	tmp := simmpi.BytesBuf(acc)
	for r := 1; r < n; r++ {
		other := simmpi.BytesBuf(make([]byte, bytes))
		fillInput(r, other)
		op.Combine(tmp, other)
	}
	return acc
}

func verifyEqual(got simmpi.Buf, want []byte, what string, rank int) error {
	if got.Data == nil {
		return nil
	}
	if got.N != len(want) {
		return fmt.Errorf("coll: %s rank %d: got %d bytes, want %d", what, rank, got.N, len(want))
	}
	for i := range want {
		if got.Data[i] != want[i] {
			return fmt.Errorf("coll: %s rank %d: byte %d = %d, want %d", what, rank, i, got.Data[i], want[i])
		}
	}
	return nil
}
