// Package coll implements MPICH collective algorithms over the simmpi
// virtual-time runtime. The core set is the ten algorithms studied in
// the ACCLAiM paper across the four most popular collectives on
// production systems (Chunduri et al.): MPI_Allgather, MPI_Allreduce,
// MPI_Bcast, and MPI_Reduce. The scenario-diversity extension adds
// MPI_Alltoall, MPI_Reduce_scatter, MPI_Gather, and MPI_Scatter with
// their standard MPICH schedules, registered through the same seams so
// every autotuner picks them up without special cases.
//
// Every algorithm is written once against the simmpi virtual-time
// runtime and therefore yields both a simulated execution time and real
// data movement that the package verifies against a reference result —
// the same implementation is used by the correctness tests (with data)
// and the benchmark sweeps (timing only).
package coll

import (
	"errors"
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// Collective identifies one MPI collective operation.
type Collective int

// The paper's four collectives first, in its alphabetical presentation
// order, then the scenario-diversity additions. Only append here: the
// enum value is baked into dense per-collective arrays and saved
// datasets, so reordering would silently remap them.
const (
	Allgather Collective = iota
	Allreduce
	Bcast
	Reduce
	Alltoall
	ReduceScatter
	Gather
	Scatter
	numCollectives
)

// String implements fmt.Stringer using MPI naming.
func (c Collective) String() string {
	switch c {
	case Allgather:
		return "allgather"
	case Allreduce:
		return "allreduce"
	case Bcast:
		return "bcast"
	case Reduce:
		return "reduce"
	case Alltoall:
		return "alltoall"
	case ReduceScatter:
		return "reduce_scatter"
	case Gather:
		return "gather"
	case Scatter:
		return "scatter"
	default:
		return fmt.Sprintf("Collective(%d)", int(c))
	}
}

// ParseCollective converts a name produced by String back to a
// Collective.
func ParseCollective(s string) (Collective, error) {
	for c := Collective(0); c < numCollectives; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("coll: unknown collective %q", s)
}

// NumCollectives is the number of collectives; valid Collective values
// are 0..NumCollectives-1, so dense per-collective arrays can be
// indexed by the enum (the rule-serving hot path does).
const NumCollectives = int(numCollectives)

// Collectives returns all collectives in stable (enum) order.
func Collectives() []Collective {
	cs := make([]Collective, NumCollectives)
	for i := range cs {
		cs[i] = Collective(i)
	}
	return cs
}

// PaperCollectives returns the four collectives the ACCLAiM paper
// studies, in its presentation order. The figure reproductions in
// internal/experiments enumerate these; everything else (tuning,
// datasets, rule serving) covers Collectives().
func PaperCollectives() []Collective {
	return []Collective{Allgather, Allreduce, Bcast, Reduce}
}

// algorithmNames fixes the per-collective algorithm order; the position
// of a name is its "algorithm" feature value in the ML models.
var algorithmNames = map[Collective][]string{
	Allgather:     {"recursive_doubling", "ring", "brucks"},
	Allreduce:     {"recursive_doubling", "reduce_scatter_allgather"},
	Bcast:         {"binomial", "scatter_recursive_doubling_allgather", "scatter_ring_allgather"},
	Reduce:        {"binomial", "scatter_gather"},
	Alltoall:      {"brucks", "pairwise", "scattered"},
	ReduceScatter: {"recursive_halving", "pairwise_exchange"},
	Gather:        {"binomial", "linear"},
	Scatter:       {"binomial", "linear"},
}

// AlgorithmNames returns the algorithm names of a collective in stable
// order. The returned slice must not be modified.
func AlgorithmNames(c Collective) []string { return algorithmNames[c] }

// NumAlgorithms returns how many algorithms a collective has.
func NumAlgorithms(c Collective) int { return len(algorithmNames[c]) }

// TotalAlgorithms is the number of (collective, algorithm) pairs: the
// paper's "total of 10 algorithms" plus the nine schedules of the four
// scenario-diversity collectives.
const TotalAlgorithms = 19

// AlgIndex returns the feature index of an algorithm name.
func AlgIndex(c Collective, name string) (int, bool) {
	for i, n := range algorithmNames[c] {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Rooted reports whether the collective takes a root rank (bcast,
// reduce, gather, scatter). The table-driven property suite uses it to
// decide which collectives to sweep over roots.
func Rooted(c Collective) bool {
	switch c {
	case Bcast, Reduce, Gather, Scatter:
		return true
	default:
		return false
	}
}

// Reducing reports whether the collective applies a reduction operator
// (allreduce, reduce, reduce_scatter), i.e. whether Options.Op matters.
func Reducing(c Collective) bool {
	switch c {
	case Allreduce, Reduce, ReduceScatter:
		return true
	default:
		return false
	}
}

// inputByte is the deterministic test pattern: the i-th byte of rank r's
// contribution. 251 is prime so patterns differ across ranks and offsets.
func inputByte(rank, i int) byte { return byte((rank*131 + i*29 + 7) % 251) }

// fillInput writes rank r's contribution pattern into a data buffer.
func fillInput(rank int, b simmpi.Buf) {
	if b.Data == nil {
		return
	}
	for i := range b.Data {
		b.Data[i] = inputByte(rank, i)
	}
}

// Options configures one collective execution.
type Options struct {
	WithData bool      // move and verify real bytes (slower)
	Op       simmpi.Op // reduction operator for reduce/allreduce
	Root     int       // root rank for rooted collectives (bcast, reduce)
}

// Exec runs the named algorithm of a collective over the model's ranks
// with the given message size and returns the simulated result. msgBytes
// follows the OSU convention: the per-rank contribution for allgather,
// gather, and scatter, the per-destination block for alltoall, and the
// full vector for the reductions (reduce_scatter splits that vector into
// ceilSegments, so reduce_scatter ≡ reduce + scatterv). With
// opts.WithData it also verifies the collective's postcondition and
// returns an error on any mismatch.
func Exec(model *netmodel.Model, c Collective, alg string, msgBytes int, opts Options) (simmpi.Result, error) {
	if msgBytes < 1 {
		return simmpi.Result{}, errors.New("coll: message size must be >= 1")
	}
	n := model.Ranks()
	if n < 2 {
		return simmpi.Result{}, errors.New("coll: need at least 2 ranks")
	}
	if opts.Root < 0 || opts.Root >= n {
		return simmpi.Result{}, fmt.Errorf("coll: root %d out of range", opts.Root)
	}
	if _, ok := AlgIndex(c, alg); !ok {
		return simmpi.Result{}, fmt.Errorf("coll: collective %v has no algorithm %q", c, alg)
	}
	_, res, err := execOutputs(model, c, alg, msgBytes, opts)
	return res, err
}

// execOutputs dispatches to the per-collective harness, returning every
// rank's output buffer alongside the simulated result. The outputs are
// the seam the differential property and fuzz tests compare across
// independent schedules of the same collective; Exec discards them.
// For the single-receiver collectives (reduce, gather) only the root's
// output is meaningful.
func execOutputs(model *netmodel.Model, c Collective, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	switch c {
	case Bcast:
		return execBcast(model, alg, msgBytes, opts)
	case Reduce:
		return execReduce(model, alg, msgBytes, opts)
	case Allreduce:
		return execAllreduce(model, alg, msgBytes, opts)
	case Allgather:
		return execAllgather(model, alg, msgBytes, opts)
	case Alltoall:
		return execAlltoall(model, alg, msgBytes, opts)
	case ReduceScatter:
		return execReduceScatter(model, alg, msgBytes, opts)
	case Gather:
		return execGather(model, alg, msgBytes, opts)
	case Scatter:
		return execScatter(model, alg, msgBytes, opts)
	default:
		return nil, simmpi.Result{}, fmt.Errorf("coll: unknown collective %v", c)
	}
}

// AlgSource answers "which algorithm should this collective call use"
// at collective-call time. It is the seam between the execution layer
// and a tuned selection source: *ruleserver.Server implements it over a
// lock-free rule-file snapshot, and tests implement it with fixtures.
// A false return means the source has no rule for the query.
type AlgSource interface {
	Lookup(c Collective, nodes, ppn, msg int) (string, bool)
}

// ExecSelected runs a collective the way a tuned MPI library would: it
// consults the source at call time with the job's shape (the model's
// node count and ppn) and the message size, then executes the selected
// algorithm. It returns the chosen algorithm alongside the result. An
// error is returned if the source has no rule for the call — a
// complete, validated rule file cannot decline, so a miss means the
// caller wired an untuned collective.
func ExecSelected(model *netmodel.Model, c Collective, src AlgSource, msgBytes int, opts Options) (simmpi.Result, string, error) {
	if src == nil {
		return simmpi.Result{}, "", errors.New("coll: nil algorithm source")
	}
	alg, ok := src.Lookup(c, model.Alloc.Size(), model.PPN, msgBytes)
	if !ok {
		return simmpi.Result{}, "", fmt.Errorf("coll: no selection rule for %v at nodes=%d ppn=%d msg=%d",
			c, model.Alloc.Size(), model.PPN, msgBytes)
	}
	res, err := Exec(model, c, alg, msgBytes, opts)
	return res, alg, err
}

// newBuf allocates a buffer, with backing bytes only in data mode.
func newBuf(n int, withData bool) simmpi.Buf {
	if withData {
		return simmpi.BytesBuf(make([]byte, n))
	}
	return simmpi.MakeBuf(n)
}

// expectedReduction computes op over all ranks' input patterns.
func expectedReduction(n, bytes int, op simmpi.Op) []byte {
	acc := make([]byte, bytes)
	for i := range acc {
		acc[i] = inputByte(0, i)
	}
	tmp := simmpi.BytesBuf(acc)
	for r := 1; r < n; r++ {
		other := simmpi.BytesBuf(make([]byte, bytes))
		fillInput(r, other)
		op.Combine(tmp, other)
	}
	return acc
}

func verifyEqual(got simmpi.Buf, want []byte, what string, rank int) error {
	if got.Data == nil {
		return nil
	}
	if got.N != len(want) {
		return fmt.Errorf("coll: %s rank %d: got %d bytes, want %d", what, rank, got.N, len(want))
	}
	for i := range want {
		if got.Data[i] != want[i] {
			return fmt.Errorf("coll: %s rank %d: byte %d = %d, want %d", what, rank, i, got.Data[i], want[i])
		}
	}
	return nil
}
