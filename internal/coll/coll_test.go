package coll

import (
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// modelFor builds a model with the given node count and ppn on a
// 16-nodes-per-rack machine with a calm environment.
func modelFor(t testing.TB, nodes, ppn int) *netmodel.Model {
	t.Helper()
	mach := cluster.Machine{Nodes: 1024, NodesPerRack: 16, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := netmodel.New(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAllAlgorithmsCorrect is the core correctness matrix: every
// algorithm of every collective, across P2 and non-P2 rank counts and
// P2 and non-P2 message sizes, moving real data.
func TestAllAlgorithmsCorrect(t *testing.T) {
	rankCounts := []int{2, 3, 4, 5, 7, 8, 12, 16}
	msgSizes := []int{1, 7, 8, 100, 1024}
	for _, c := range Collectives() {
		for _, alg := range AlgorithmNames(c) {
			for _, n := range rankCounts {
				for _, msg := range msgSizes {
					model := modelFor(t, n, 1)
					_, err := Exec(model, c, alg, msg, Options{WithData: true, Op: simmpi.OpSum})
					if err != nil {
						t.Errorf("%v/%s n=%d msg=%d: %v", c, alg, n, msg, err)
					}
				}
			}
		}
	}
}

// TestMultiPPNCorrect exercises multi-rank-per-node layouts.
func TestMultiPPNCorrect(t *testing.T) {
	for _, c := range Collectives() {
		for _, alg := range AlgorithmNames(c) {
			model := modelFor(t, 3, 4) // 12 ranks, mixed intra-node/network paths
			if _, err := Exec(model, c, alg, 64, Options{WithData: true, Op: simmpi.OpMax}); err != nil {
				t.Errorf("%v/%s: %v", c, alg, err)
			}
		}
	}
}

// TestNonRootZero checks rooted collectives with a non-zero root.
func TestNonRootZero(t *testing.T) {
	for _, c := range []Collective{Bcast, Reduce, Gather, Scatter} {
		for _, alg := range AlgorithmNames(c) {
			for _, root := range []int{1, 5, 6} {
				model := modelFor(t, 7, 1)
				if _, err := Exec(model, c, alg, 96, Options{WithData: true, Op: simmpi.OpSum, Root: root}); err != nil {
					t.Errorf("%v/%s root=%d: %v", c, alg, root, err)
				}
			}
		}
	}
}

// TestAllOps checks reductions under every operator.
func TestAllOps(t *testing.T) {
	for _, op := range []simmpi.Op{simmpi.OpSum, simmpi.OpMax, simmpi.OpXor} {
		for _, c := range []Collective{Allreduce, Reduce, ReduceScatter} {
			for _, alg := range AlgorithmNames(c) {
				model := modelFor(t, 6, 1)
				if _, err := Exec(model, c, alg, 40, Options{WithData: true, Op: op}); err != nil {
					t.Errorf("%v/%s op=%v: %v", c, alg, op, err)
				}
			}
		}
	}
}

// TestTimingDeterministic: identical inputs must produce identical
// virtual times regardless of goroutine scheduling.
func TestTimingDeterministic(t *testing.T) {
	for _, c := range Collectives() {
		alg := AlgorithmNames(c)[0]
		model := modelFor(t, 8, 2)
		r1, err := Exec(model, c, alg, 4096, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			r2, err := Exec(model, c, alg, 4096, Options{Op: simmpi.OpSum})
			if err != nil {
				t.Fatal(err)
			}
			if r1.MaxClock != r2.MaxClock {
				t.Errorf("%v/%s: non-deterministic timing %v vs %v", c, alg, r1.MaxClock, r2.MaxClock)
			}
		}
	}
}

// TestTimingModeMatchesDataMode: the virtual clock must not depend on
// whether real bytes are moved.
func TestTimingModeMatchesDataMode(t *testing.T) {
	for _, c := range Collectives() {
		for _, alg := range AlgorithmNames(c) {
			model := modelFor(t, 6, 1)
			rt, err := Exec(model, c, alg, 1000, Options{Op: simmpi.OpSum})
			if err != nil {
				t.Fatal(err)
			}
			rd, err := Exec(model, c, alg, 1000, Options{WithData: true, Op: simmpi.OpSum})
			if err != nil {
				t.Fatal(err)
			}
			if rt.MaxClock != rd.MaxClock {
				t.Errorf("%v/%s: timing mode %v != data mode %v", c, alg, rt.MaxClock, rd.MaxClock)
			}
		}
	}
}

// TestBcastSmallMessageBinomialWins: for tiny messages, the binomial
// tree (log n latency terms) must beat scatter_ring_allgather (n-1
// latency terms) — the textbook small-message behaviour.
func TestBcastSmallMessageBinomialWins(t *testing.T) {
	model := modelFor(t, 16, 1)
	bin, err := Exec(model, Bcast, "binomial", 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Exec(model, Bcast, "scatter_ring_allgather", 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bin.MaxClock >= ring.MaxClock {
		t.Errorf("binomial %v not faster than scatter_ring %v for 8B", bin.MaxClock, ring.MaxClock)
	}
}

// TestBcastLargeMessageScatterWins: for large messages on a calm
// network, the bandwidth-optimal scatter-based algorithms must beat the
// binomial tree, which sends the full message log(n) times.
func TestBcastLargeMessageScatterWins(t *testing.T) {
	model := modelFor(t, 16, 1)
	const msg = 1 << 20
	bin, err := Exec(model, Bcast, "binomial", msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scatterRing, err := Exec(model, Bcast, "scatter_ring_allgather", msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if scatterRing.MaxClock >= bin.MaxClock {
		t.Errorf("scatter_ring %v not faster than binomial %v for 1MB", scatterRing.MaxClock, bin.MaxClock)
	}
}

// TestReduceLatencyCrossover reproduces the paper's Section II-B
// argument: for large vectors, scatter_gather wins on a calm network,
// but under sufficiently high effective latency the binomial tree's
// fewer, larger messages win even at large sizes.
func TestReduceLatencyCrossover(t *testing.T) {
	mach := cluster.Machine{Nodes: 1024, NodesPerRack: 16, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 32)
	const msg = 1 << 17
	timeFor := func(env netmodel.Env, alg string) float64 {
		model, err := netmodel.New(netmodel.DefaultParams(), env, alloc, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(model, Reduce, alg, msg, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxClock
	}
	calm := netmodel.Env{LatencyFactor: 1, BandwidthFactor: 1}
	congested := netmodel.Env{LatencyFactor: 40, BandwidthFactor: 1}
	if sg, bin := timeFor(calm, "scatter_gather"), timeFor(calm, "binomial"); sg >= bin {
		t.Errorf("calm network: scatter_gather %v should beat binomial %v at 128KB", sg, bin)
	}
	if sg, bin := timeFor(congested, "scatter_gather"), timeFor(congested, "binomial"); bin >= sg {
		t.Errorf("high latency: binomial %v should beat scatter_gather %v at 128KB", bin, sg)
	}
}

// TestAllgatherRDFavorsP2: recursive doubling must pay a visibly larger
// penalty than ring when moving from a P2 to an adjacent non-P2 rank
// count (the extra full-buffer fold transfers).
func TestAllgatherRDFavorsP2(t *testing.T) {
	const msg = 32768
	ratio := func(alg string) float64 {
		p2, err := Exec(modelFor(t, 16, 1), Allgather, alg, msg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		nonP2, err := Exec(modelFor(t, 17, 1), Allgather, alg, msg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return nonP2.MaxClock / p2.MaxClock
	}
	if rd, ring := ratio("recursive_doubling"), ratio("ring"); rd <= ring {
		t.Errorf("recursive doubling non-P2 penalty %vx not above ring's %vx", rd, ring)
	}
}

// TestNonP2MessageDeviation: non-P2 message sizes must deviate from the
// P2 interpolation (the Section III-B effect the autotuner must learn).
func TestNonP2MessageDeviation(t *testing.T) {
	model := modelFor(t, 8, 1)
	timeAt := func(msg int) float64 {
		res, err := Exec(model, Bcast, "binomial", msg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxClock
	}
	t64, t128 := timeAt(1<<16), timeAt(1<<17)
	t96 := timeAt(3 << 15) // 96KB, halfway
	interp := (t64 + t128) / 2
	if t96 <= interp*1.05 {
		t.Errorf("non-P2 96KB bcast %v not measurably above interpolation %v", t96, interp)
	}
}

func TestExecValidation(t *testing.T) {
	model := modelFor(t, 4, 1)
	if _, err := Exec(model, Bcast, "binomial", 0, Options{}); err == nil {
		t.Error("zero message size should fail")
	}
	if _, err := Exec(model, Bcast, "nope", 8, Options{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if _, err := Exec(model, Bcast, "binomial", 8, Options{Root: 99}); err == nil {
		t.Error("out-of-range root should fail")
	}
	if _, err := Exec(model, Allgather, "binomial", 8, Options{}); err == nil {
		t.Error("algorithm of wrong collective should fail")
	}
}

func TestRegistry(t *testing.T) {
	total := 0
	for _, c := range Collectives() {
		names := AlgorithmNames(c)
		if len(names) == 0 {
			t.Errorf("%v has no algorithms", c)
		}
		if NumAlgorithms(c) != len(names) {
			t.Errorf("%v NumAlgorithms mismatch", c)
		}
		total += len(names)
		for i, name := range names {
			idx, ok := AlgIndex(c, name)
			if !ok || idx != i {
				t.Errorf("AlgIndex(%v, %s) = %d, %v", c, name, idx, ok)
			}
		}
		if _, ok := AlgIndex(c, "missing"); ok {
			t.Errorf("AlgIndex(%v, missing) should be false", c)
		}
	}
	if total != TotalAlgorithms {
		t.Errorf("total algorithms = %d, want %d (the paper's 10 plus the 9 scenario-diversity schedules)", total, TotalAlgorithms)
	}
}

func TestParseCollective(t *testing.T) {
	for _, c := range Collectives() {
		got, err := ParseCollective(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCollective(%s) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseCollective("barrier"); err == nil {
		t.Error("unknown collective should fail to parse")
	}
}

func TestCeilSegments(t *testing.T) {
	s := ceilSegments(10, 4) // ss = 3: [0,3) [3,6) [6,9) [9,10)
	wantOff := []int{0, 3, 6, 9}
	wantLen := []int{3, 3, 3, 1}
	for i := range wantOff {
		if s.off[i] != wantOff[i] || s.len[i] != wantLen[i] {
			t.Errorf("seg %d = [%d,+%d), want [%d,+%d)", i, s.off[i], s.len[i], wantOff[i], wantLen[i])
		}
	}
	// Degenerate: more ranks than bytes -> empty tail segments.
	s2 := ceilSegments(2, 4)
	if s2.len[0] != 1 || s2.len[1] != 1 || s2.len[2] != 0 || s2.len[3] != 0 {
		t.Errorf("ceilSegments(2,4) lens = %v", s2.len)
	}
	// Total always covered exactly once.
	for _, tc := range []struct{ total, n int }{{1, 1}, {5, 3}, {100, 7}, {8, 8}, {3, 10}} {
		s := ceilSegments(tc.total, tc.n)
		sum := 0
		for i := 0; i < tc.n; i++ {
			if s.off[i] > tc.total {
				t.Errorf("offset beyond total for %+v", tc)
			}
			sum += s.len[i]
		}
		if sum != tc.total {
			t.Errorf("ceilSegments(%d,%d) covers %d bytes", tc.total, tc.n, sum)
		}
	}
}

func TestHeldBlocks(t *testing.T) {
	// pof2=4, rem=2: actives 0..3, extras 4 (of 0) and 5 (of 1).
	got := heldBlocks(2, 2, 4, 2)
	want := []int{2, 3}
	if len(got) != len(want) {
		t.Fatalf("heldBlocks = %v, want %v", got, want)
	}
	got = heldBlocks(0, 2, 4, 2)
	want = []int{0, 4, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("heldBlocks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heldBlocks = %v, want %v", got, want)
		}
	}
	// dist = pof2 covers everything.
	if got := heldBlocks(3, 4, 4, 2); len(got) != 6 {
		t.Errorf("full-distance heldBlocks = %v, want all 6", got)
	}
}

func TestFoldState(t *testing.T) {
	// n=6: pof2=4, rem=2. Ranks 0,2 fold into 1,3; ranks 4,5 stay.
	wantNew := []int{-1, 0, -1, 1, 2, 3}
	for r, want := range wantNew {
		st := foldFor(r, 6)
		if st.newRank != want {
			t.Errorf("foldFor(%d, 6).newRank = %d, want %d", r, st.newRank, want)
		}
	}
	st := foldFor(0, 6)
	for newR, wantOld := range []int{1, 3, 4, 5} {
		if got := st.oldRank(newR); got != wantOld {
			t.Errorf("oldRank(%d) = %d, want %d", newR, got, wantOld)
		}
	}
	// P2 world: identity mapping, nobody folds.
	for r := 0; r < 8; r++ {
		st := foldFor(r, 8)
		if st.newRank != r || st.rem != 0 {
			t.Errorf("foldFor(%d, 8) = %+v", r, st)
		}
	}
}

// TestMessageCountsScale sanity-checks algorithm message complexity:
// ring allgather sends exactly n*(n-1) messages; binomial bcast n-1.
func TestMessageCountsScale(t *testing.T) {
	model := modelFor(t, 8, 1)
	ring, err := Exec(model, Allgather, "ring", 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Sent != 8*7 {
		t.Errorf("ring allgather sent %d messages, want 56", ring.Sent)
	}
	bin, err := Exec(model, Bcast, "binomial", 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bin.Sent != 7 {
		t.Errorf("binomial bcast sent %d messages, want 7", bin.Sent)
	}
}

// modelWithLatency builds a model with a specific job latency factor.
func modelWithLatency(t testing.TB, nodes, ppn int, factor float64) *netmodel.Model {
	t.Helper()
	mach := cluster.Machine{Nodes: 1024, NodesPerRack: 16, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	env := netmodel.Env{LatencyFactor: factor, BandwidthFactor: 1, NoiseSigma: 0}
	m, err := netmodel.New(netmodel.DefaultParams(), env, alloc, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
