package coll

import (
	"bytes"
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/netmodel"
)

// FuzzCollDifferential* are the schedule-vs-schedule differential fuzz
// targets for the scenario-diversity collectives, mirroring
// FuzzTrainDifferential/FuzzCompiledDifferential in internal/forest:
// for an arbitrary (nodes, ppn, msgsize, root, op) shape, every
// registered schedule of the collective must produce byte-identical
// outputs at every meaningful rank — on all three network models, since
// a topology only reprices transfers and must never change bytes. Each
// execution also verifies the collective's postcondition internally
// (Options.WithData), so a target catches both divergence between
// schedules and outright wrong answers.
//
// Seeded corpora live under testdata/fuzz/<target>/; CI runs each
// target for 30s per push (the fuzz-smoke job).

// fuzzTopoModel builds a model over the named topology on the same
// machine shape as modelFor.
func fuzzTopoModel(t *testing.T, topoName string, nodes, ppn int) *netmodel.Model {
	t.Helper()
	mach := cluster.Machine{Nodes: 1024, NodesPerRack: 16, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := netmodel.TopologyByName(topoName, mach)
	if err != nil {
		t.Fatal(err)
	}
	m, err := netmodel.NewWithTopology(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, ppn, topo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fuzzCollDifferential is the shared body: clamp the raw fuzz inputs
// into a valid shape, then compare all schedules pairwise against the
// first on every topology.
func fuzzCollDifferential(f *testing.F, c Collective) {
	f.Add(uint8(2), uint8(1), uint16(1), uint8(0), uint8(0))
	f.Add(uint8(4), uint8(2), uint16(128), uint8(3), uint8(1))
	f.Add(uint8(7), uint8(1), uint16(1000), uint8(5), uint8(2)) // non-P2 ranks and size
	f.Add(uint8(12), uint8(3), uint16(513), uint8(255), uint8(1))
	f.Fuzz(func(t *testing.T, rawNodes, rawPPN uint8, rawMsg uint16, rawRoot, rawOp uint8) {
		nodes := 2 + int(rawNodes)%13 // 2..14 nodes
		ppn := 1 + int(rawPPN)%3      // 1..3 ranks per node
		msg := 1 + int(rawMsg)%4096   // 1..4096 bytes
		op := propOps[int(rawOp)%len(propOps)]
		opts := Options{WithData: true, Op: op}
		if Rooted(c) {
			opts.Root = int(rawRoot) % (nodes * ppn)
		}
		algs := AlgorithmNames(c)
		for _, topoName := range netmodel.TopologyNames() {
			model := fuzzTopoModel(t, topoName, nodes, ppn)
			ref, _, err := execOutputs(model, c, algs[0], msg, opts)
			if err != nil {
				t.Fatalf("%s: %v/%s nodes=%d ppn=%d msg=%d root=%d: %v",
					topoName, c, algs[0], nodes, ppn, msg, opts.Root, err)
			}
			for _, alg := range algs[1:] {
				outs, _, err := execOutputs(model, c, alg, msg, opts)
				if err != nil {
					t.Fatalf("%s: %v/%s nodes=%d ppn=%d msg=%d root=%d: %v",
						topoName, c, alg, nodes, ppn, msg, opts.Root, err)
				}
				for _, r := range outputRanks(c, opts.Root, nodes*ppn) {
					if !bytes.Equal(ref[r].Data, outs[r].Data) {
						t.Fatalf("%s: %v rank %d: %s and %s disagree (nodes=%d ppn=%d msg=%d root=%d)",
							topoName, c, r, algs[0], alg, nodes, ppn, msg, opts.Root)
					}
				}
			}
		}
	})
}

func FuzzCollDifferentialAlltoall(f *testing.F)      { fuzzCollDifferential(f, Alltoall) }
func FuzzCollDifferentialReduceScatter(f *testing.F) { fuzzCollDifferential(f, ReduceScatter) }
func FuzzCollDifferentialGather(f *testing.F)        { fuzzCollDifferential(f, Gather) }
func FuzzCollDifferentialScatter(f *testing.F)       { fuzzCollDifferential(f, Scatter) }
