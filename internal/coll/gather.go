package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// gatherBinomial collects every rank's block to the root up a binomial
// tree: each internal node accumulates its subtree's blocks (contiguous
// in root-relative order) and forwards them in one message, so the root
// sees only log(n) arrivals. Blocks travel up to log(n) hops, making
// the schedule latency-robust but not bandwidth-optimal. Returns the
// gathered buffer in absolute rank order (meaningful only at the root).
func gatherBinomial(c *simmpi.Comm, root int, block simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := block.N
	rel := (c.Rank() - root + n) % n
	// buf accumulates this rank's subtree in relative order: offset j*m
	// holds the block of relative rank rel+j.
	buf := newBufLike(block, n*m)
	buf.CopyInto(0, block)
	cur := m
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel&^mask + root) % n
			c.Send(parent, buf.Slice(0, cur))
			break
		}
		if srcRel := rel + mask; srcRel < n {
			b := c.Recv((srcRel + root) % n)
			buf.CopyInto(mask*m, b)
			cur = mask*m + b.N
		}
		mask <<= 1
	}
	if rel != 0 {
		return buf
	}
	if root == 0 {
		return buf // relative order is absolute order
	}
	// Rotate the relative-order buffer into absolute rank order.
	out := newBufLike(block, n*m)
	for j := 0; j < n; j++ {
		out.CopyInto(((root+j)%n)*m, buf.Slice(j*m, (j+1)*m))
	}
	c.Compute(c.Model().CopyCost(n * m))
	return out
}

// gatherLinear has every non-root rank send its block straight to the
// root: each block moves exactly once over the cheapest available path,
// but the root pays n-1 arrivals — the flat schedule production MPIs
// use for small communicators and large blocks.
func gatherLinear(c *simmpi.Comm, root int, block simmpi.Buf) simmpi.Buf {
	n := c.Size()
	m := block.N
	if c.Rank() != root {
		c.Send(root, block)
		return block
	}
	out := newBufLike(block, n*m)
	out.CopyInto(root*m, block)
	for i := 1; i < n; i++ {
		src := (root + i) % n
		out.CopyInto(src*m, c.Recv(src))
	}
	return out
}

// execGather runs one gather algorithm (msgBytes is the per-rank block
// size, OSU convention) and verifies the root's assembled buffer.
func execGather(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		block := newBuf(msgBytes, opts.WithData)
		fillInput(c.Rank(), block)
		var out simmpi.Buf
		switch alg {
		case "binomial":
			out = gatherBinomial(c, opts.Root, block)
		case "linear":
			out = gatherLinear(c, opts.Root, block)
		default:
			panic(fmt.Sprintf("coll: unknown gather algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		want := make([]byte, n*msgBytes)
		for r := 0; r < n; r++ {
			for i := 0; i < msgBytes; i++ {
				want[r*msgBytes+i] = inputByte(r, i)
			}
		}
		if err := verifyEqual(outs[opts.Root], want, "gather", opts.Root); err != nil {
			return outs, res, err
		}
	}
	return outs, res, nil
}
