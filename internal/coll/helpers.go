package coll

import (
	"fmt"

	"acclaim/internal/featspace"
	"acclaim/internal/simmpi"
)

// segset describes how an output buffer is partitioned into per-rank
// segments: segment i covers bytes [off[i], off[i]+len[i]).
type segset struct {
	off []int
	len []int
}

// ceilSegments splits total bytes into n segments of ceil(total/n) bytes
// each (the MPICH scatter_size), with the tail truncated and possibly
// empty — exactly the layout MPIR_Scatter_for_bcast produces. Non-P2
// totals or rank counts yield uneven, unaligned segments, which is where
// the non-P2 performance effects originate.
func ceilSegments(total, n int) segset {
	ss := (total + n - 1) / n
	s := segset{off: make([]int, n), len: make([]int, n)}
	for i := 0; i < n; i++ {
		lo := i * ss
		hi := lo + ss
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		s.off[i] = lo
		s.len[i] = hi - lo
	}
	return s
}

// binomialScatter distributes the segments of out from relative rank 0
// down a binomial tree, as in MPICH's MPIR_Scatter_for_bcast. On entry,
// relative rank 0 holds the full buffer; on return, relative rank rel
// holds its own segment (and has forwarded its subtree's segments).
// toAbs maps relative ranks to absolute ranks.
func binomialScatter(c *simmpi.Comm, out simmpi.Buf, segs segset, rel, n int, toAbs func(int) int) {
	total := out.N
	ss := (total + n - 1) / n
	currHi := 0
	if rel == 0 {
		currHi = total
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			if rel*ss < total { // otherwise there is nothing for this subtree
				b := c.Recv(toAbs(rel - mask))
				out.CopyInto(rel*ss, b)
				currHi = rel*ss + b.N
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			sendLo := (rel + mask) * ss
			if sendLo < currHi {
				c.Send(toAbs(rel+mask), out.Slice(sendLo, currHi))
				currHi = sendLo
			}
		}
		mask >>= 1
	}
}

// heldBlocks returns, in ascending order, the segment indices held by
// active rank a once recursive doubling has reached the given distance
// (dist = 1 before the first exchange). Actives are 0..pof2-1; active b
// additionally carries the folded-in segment of extra rank pof2+b when
// b < rem.
func heldBlocks(a, dist, pof2, rem int) []int {
	base := a &^ (dist - 1)
	blocks := make([]int, 0, 2*dist)
	for b := base; b < base+dist; b++ {
		blocks = append(blocks, b)
		if b < rem {
			blocks = append(blocks, pof2+b)
		}
	}
	return blocks
}

// rdAllgather gathers all segments of out to all ranks using recursive
// doubling. Rank rel initially holds segment rel. For non-power-of-two
// rank counts the top rem = n - pof2 ranks fold their segment into a
// partner before the exchange rounds and receive the full buffer
// afterwards — the extra full-size transfer is the classic reason
// recursive doubling favors power-of-two rank counts.
func rdAllgather(c *simmpi.Comm, out simmpi.Buf, segs segset, rel, n int, toAbs func(int) int) {
	if n == 1 {
		return
	}
	pof2 := featspace.PrevP2(n)
	rem := n - pof2
	if rel >= pof2 {
		partner := rel - pof2
		c.Send(toAbs(partner), out.Slice(segs.off[rel], segs.off[rel]+segs.len[rel]))
		full := c.Recv(toAbs(partner))
		out.CopyInto(0, full)
		return
	}
	if rel < rem {
		b := c.Recv(toAbs(rel + pof2))
		out.CopyInto(segs.off[rel+pof2], b)
	}
	for dist := 1; dist < pof2; dist *= 2 {
		partner := rel ^ dist
		payload := concatBlocks(out, segs, heldBlocks(rel, dist, pof2, rem))
		got := c.Sendrecv(toAbs(partner), payload, toAbs(partner))
		scatterBlocks(out, segs, heldBlocks(partner, dist, pof2, rem), got)
	}
	if rel < rem {
		c.Send(toAbs(rel+pof2), out)
	}
}

// concatBlocks builds the payload holding the listed segments of out,
// concatenated in list order.
func concatBlocks(out simmpi.Buf, segs segset, blocks []int) simmpi.Buf {
	total := 0
	for _, b := range blocks {
		total += segs.len[b]
	}
	if !out.HasData() {
		return simmpi.MakeBuf(total)
	}
	data := make([]byte, 0, total)
	for _, b := range blocks {
		data = append(data, out.Data[segs.off[b]:segs.off[b]+segs.len[b]]...)
	}
	return simmpi.BytesBuf(data)
}

// scatterBlocks splits a payload built by concatBlocks back into the
// listed segments of out. It panics if the payload length disagrees with
// the block list — that always indicates an algorithm bug.
func scatterBlocks(out simmpi.Buf, segs segset, blocks []int, payload simmpi.Buf) {
	pos := 0
	for _, b := range blocks {
		out.CopyInto(segs.off[b], payload.Slice(pos, pos+segs.len[b]))
		pos += segs.len[b]
	}
	if pos != payload.N {
		panic(fmt.Sprintf("coll: payload of %d bytes for blocks totalling %d", payload.N, pos))
	}
}

// ringAllgather gathers all segments of out to all ranks with the ring
// algorithm: n-1 fully pipelined neighbour exchanges. Rank rel initially
// holds segment rel.
func ringAllgather(c *simmpi.Comm, out simmpi.Buf, segs segset, rel, n int, toAbs func(int) int) {
	right := toAbs((rel + 1) % n)
	left := toAbs((rel + n - 1) % n)
	for s := 0; s < n-1; s++ {
		sendIdx := (rel - s + n*2) % n
		recvIdx := (rel - s - 1 + n*2) % n
		payload := out.Slice(segs.off[sendIdx], segs.off[sendIdx]+segs.len[sendIdx])
		got := c.Sendrecv(right, payload, left)
		out.CopyInto(segs.off[recvIdx], got)
	}
}

// foldState describes a rank's role in the non-P2 pre/post folding used
// by the reduction algorithms (MPICH's rem = n - pof2 scheme: the first
// 2*rem ranks pair up, even ranks go inactive).
type foldState struct {
	pof2    int
	rem     int
	newRank int // dense rank among actives, or -1 if folded away
}

// foldFor computes the fold role of absolute rank r in a world of n.
func foldFor(r, n int) foldState {
	pof2 := featspace.PrevP2(n)
	rem := n - pof2
	st := foldState{pof2: pof2, rem: rem}
	switch {
	case r < 2*rem && r%2 == 0:
		st.newRank = -1
	case r < 2*rem:
		st.newRank = r / 2
	default:
		st.newRank = r - rem
	}
	return st
}

// oldRank maps a dense active rank back to its absolute rank.
func (st foldState) oldRank(newRank int) int {
	if newRank < st.rem {
		return newRank*2 + 1
	}
	return newRank + st.rem
}
