package coll

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acclaim/internal/simmpi"
)

// TestRandomConfigurationsProperty fuzzes every algorithm over random
// rank counts, ppn values, message sizes, roots, and operators: the
// collective postcondition must hold and the virtual time must be
// positive and finite.
func TestRandomConfigurationsProperty(t *testing.T) {
	ops := []simmpi.Op{simmpi.OpSum, simmpi.OpMax, simmpi.OpXor}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Collectives()[rng.Intn(4)]
		algs := AlgorithmNames(c)
		alg := algs[rng.Intn(len(algs))]
		nodes := 2 + rng.Intn(15)
		ppn := 1 + rng.Intn(3)
		msg := 1 + rng.Intn(2000)
		opts := Options{
			WithData: true,
			Op:       ops[rng.Intn(len(ops))],
		}
		model := modelFor(t, nodes, ppn)
		if rng.Intn(2) == 0 && (c == Bcast || c == Reduce) {
			opts.Root = rng.Intn(nodes * ppn)
		}
		res, err := Exec(model, c, alg, msg, opts)
		if err != nil {
			t.Logf("seed %d: %v/%s nodes=%d ppn=%d msg=%d root=%d: %v",
				seed, c, alg, nodes, ppn, msg, opts.Root, err)
			return false
		}
		return res.MaxClock > 0 && res.Sent > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInLatencyProperty: for any algorithm and point,
// raising the job's latency factor must never make the collective
// faster.
func TestTimeMonotoneInLatencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Collectives()[rng.Intn(4)]
		algs := AlgorithmNames(c)
		alg := algs[rng.Intn(len(algs))]
		nodes := 2 + rng.Intn(10)
		msg := 8 << rng.Intn(12)

		timeAt := func(factor float64) float64 {
			model := modelWithLatency(t, nodes, 2, factor)
			res, err := Exec(model, c, alg, msg, Options{Op: simmpi.OpSum})
			if err != nil {
				t.Fatal(err)
			}
			return res.MaxClock
		}
		return timeAt(1.0) <= timeAt(1.5) && timeAt(1.5) <= timeAt(2.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInSizeProperty: larger messages never finish faster
// for the same algorithm on an all-power-of-two configuration (with
// non-P2 rank counts or sizes, internal chunking crosses non-P2
// penalty cliffs, so global monotonicity intentionally does not hold).
func TestTimeMonotoneInSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Collectives()[rng.Intn(4)]
		algs := AlgorithmNames(c)
		alg := algs[rng.Intn(len(algs))]
		nodes := 2 << rng.Intn(4) // P2 so chunk sizes stay P2 at every level
		model := modelFor(t, nodes, 2)
		msg := 8 << rng.Intn(10)
		t1, err := Exec(model, c, alg, msg, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		t2, err := Exec(model, c, alg, msg*4, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		return t1.MaxClock <= t2.MaxClock
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
