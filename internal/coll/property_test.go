package coll

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"acclaim/internal/simmpi"
)

// The property suite below is table-driven over the registry: every
// property draws its (collective, algorithm) cell from Collectives()
// and AlgorithmNames(), so a newly registered collective or schedule is
// covered automatically with zero new test code.

var propOps = []simmpi.Op{simmpi.OpSum, simmpi.OpMax, simmpi.OpXor}

// randomCell draws one (collective, algorithm) pair from the registry.
func randomCell(rng *rand.Rand) (Collective, string) {
	cs := Collectives()
	c := cs[rng.Intn(len(cs))]
	algs := AlgorithmNames(c)
	return c, algs[rng.Intn(len(algs))]
}

// outputRanks returns the ranks whose output buffer is meaningful: the
// root for the single-receiver collectives, everyone otherwise.
func outputRanks(c Collective, root, n int) []int {
	if c == Reduce || c == Gather {
		return []int{root}
	}
	all := make([]int, n)
	for r := range all {
		all[r] = r
	}
	return all
}

// TestRandomConfigurationsProperty fuzzes every registered algorithm
// over random rank counts, ppn values, message sizes, roots, and
// operators: the collective postcondition must hold and the virtual
// time must be positive and finite.
func TestRandomConfigurationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, alg := randomCell(rng)
		nodes := 2 + rng.Intn(15)
		ppn := 1 + rng.Intn(3)
		msg := 1 + rng.Intn(2000)
		opts := Options{
			WithData: true,
			Op:       propOps[rng.Intn(len(propOps))],
		}
		model := modelFor(t, nodes, ppn)
		if rng.Intn(2) == 0 && Rooted(c) {
			opts.Root = rng.Intn(nodes * ppn)
		}
		res, err := Exec(model, c, alg, msg, opts)
		if err != nil {
			t.Logf("seed %d: %v/%s nodes=%d ppn=%d msg=%d root=%d: %v",
				seed, c, alg, nodes, ppn, msg, opts.Root, err)
			return false
		}
		return res.MaxClock > 0 && res.Sent > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInLatencyProperty: for any algorithm and point,
// raising the job's latency factor must never make the collective
// faster.
func TestTimeMonotoneInLatencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, alg := randomCell(rng)
		nodes := 2 + rng.Intn(10)
		msg := 8 << rng.Intn(12)

		timeAt := func(factor float64) float64 {
			model := modelWithLatency(t, nodes, 2, factor)
			res, err := Exec(model, c, alg, msg, Options{Op: simmpi.OpSum})
			if err != nil {
				t.Fatal(err)
			}
			return res.MaxClock
		}
		return timeAt(1.0) <= timeAt(1.5) && timeAt(1.5) <= timeAt(2.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInSizeProperty: larger messages never finish faster
// for the same algorithm on an all-power-of-two configuration (with
// non-P2 rank counts or sizes, internal chunking crosses non-P2
// penalty cliffs, so global monotonicity intentionally does not hold).
func TestTimeMonotoneInSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, alg := randomCell(rng)
		nodes := 2 << rng.Intn(4) // P2 so chunk sizes stay P2 at every level
		model := modelFor(t, nodes, 2)
		msg := 8 << rng.Intn(10)
		t1, err := Exec(model, c, alg, msg, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		t2, err := Exec(model, c, alg, msg*4, Options{Op: simmpi.OpSum})
		if err != nil {
			t.Fatal(err)
		}
		return t1.MaxClock <= t2.MaxClock
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCrossScheduleIdenticalProperty is the differential property: all
// registered schedules of one collective must produce byte-identical
// outputs at every meaningful rank for the same inputs — independent
// algorithms agreeing is far stronger evidence than each one passing
// its own postcondition.
func TestCrossScheduleIdenticalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := Collectives()
		c := cs[rng.Intn(len(cs))]
		nodes := 2 + rng.Intn(11)
		ppn := 1 + rng.Intn(2)
		msg := 1 + rng.Intn(600)
		opts := Options{WithData: true, Op: propOps[rng.Intn(len(propOps))]}
		if Rooted(c) {
			opts.Root = rng.Intn(nodes * ppn)
		}
		model := modelFor(t, nodes, ppn)
		algs := AlgorithmNames(c)
		ref, _, err := execOutputs(model, c, algs[0], msg, opts)
		if err != nil {
			t.Logf("seed %d: %v/%s: %v", seed, c, algs[0], err)
			return false
		}
		for _, alg := range algs[1:] {
			outs, _, err := execOutputs(model, c, alg, msg, opts)
			if err != nil {
				t.Logf("seed %d: %v/%s: %v", seed, c, alg, err)
				return false
			}
			for _, r := range outputRanks(c, opts.Root, nodes*ppn) {
				if !bytes.Equal(ref[r].Data, outs[r].Data) {
					t.Logf("seed %d: %v rank %d: %s and %s disagree", seed, c, r, algs[0], alg)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRootInvarianceProperty: for the rooted collectives whose result
// does not depend on which rank is root (reduce, gather), moving the
// root must leave the root's output bytes unchanged; for the rooted
// collectives whose payload is the root's own data (bcast, scatter),
// the postcondition must hold at every sampled root.
func TestRootInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rooted []Collective
		for _, c := range Collectives() {
			if Rooted(c) {
				rooted = append(rooted, c)
			}
		}
		c := rooted[rng.Intn(len(rooted))]
		algs := AlgorithmNames(c)
		alg := algs[rng.Intn(len(algs))]
		nodes := 2 + rng.Intn(9)
		ppn := 1 + rng.Intn(2)
		msg := 1 + rng.Intn(400)
		op := propOps[rng.Intn(len(propOps))]
		model := modelFor(t, nodes, ppn)
		roots := []int{0, rng.Intn(nodes * ppn), rng.Intn(nodes * ppn)}
		var ref []byte
		for _, root := range roots {
			outs, _, err := execOutputs(model, c, alg, msg, Options{WithData: true, Op: op, Root: root})
			if err != nil {
				t.Logf("seed %d: %v/%s root=%d: %v", seed, c, alg, root, err)
				return false
			}
			if c != Reduce && c != Gather {
				continue // postcondition verified inside execOutputs
			}
			if ref == nil {
				ref = append([]byte(nil), outs[root].Data...)
			} else if !bytes.Equal(ref, outs[root].Data) {
				t.Logf("seed %d: %v/%s: result depends on root %d", seed, c, alg, root)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestReduceScatterIdentityProperty pins the self-consistency identity
// reduce_scatter ≡ reduce + scatterv: every reduce_scatter schedule's
// per-rank segment must equal the corresponding ceilSegments slice of
// an independently computed full reduction.
func TestReduceScatterIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		algs := AlgorithmNames(ReduceScatter)
		alg := algs[rng.Intn(len(algs))]
		nodes := 2 + rng.Intn(11)
		ppn := 1 + rng.Intn(2)
		msg := 1 + rng.Intn(800)
		op := propOps[rng.Intn(len(propOps))]
		model := modelFor(t, nodes, ppn)
		n := nodes * ppn
		rsOuts, _, err := execOutputs(model, ReduceScatter, alg, msg, Options{WithData: true, Op: op})
		if err != nil {
			t.Logf("seed %d: reduce_scatter/%s: %v", seed, alg, err)
			return false
		}
		redOuts, _, err := execOutputs(model, Reduce, "binomial", msg, Options{WithData: true, Op: op})
		if err != nil {
			t.Logf("seed %d: reduce/binomial: %v", seed, err)
			return false
		}
		segs := ceilSegments(msg, n)
		full := redOuts[0].Data
		for r := 0; r < n; r++ {
			want := full[segs.off[r] : segs.off[r]+segs.len[r]]
			if !bytes.Equal(rsOuts[r].Data, want) {
				t.Logf("seed %d: %s rank %d != reduce+scatterv segment", seed, alg, r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestOpAlgebraProperty pins the operator algebra every reduction
// schedule relies on: all supported operators must be commutative and
// associative bytewise, or combining order (which differs across
// schedules and rank counts) would change results.
func TestOpAlgebraProperty(t *testing.T) {
	f := func(a, b, c []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		a, b, c = a[:n], b[:n], c[:n]
		for _, op := range propOps {
			// Commutativity: a∘b == b∘a.
			ab := simmpi.BytesBuf(append([]byte(nil), a...))
			op.Combine(ab, simmpi.BytesBuf(b))
			ba := simmpi.BytesBuf(append([]byte(nil), b...))
			op.Combine(ba, simmpi.BytesBuf(a))
			if !bytes.Equal(ab.Data, ba.Data) {
				return false
			}
			// Associativity: (a∘b)∘c == a∘(b∘c).
			abc := simmpi.BytesBuf(append([]byte(nil), ab.Data...))
			op.Combine(abc, simmpi.BytesBuf(c))
			bc := simmpi.BytesBuf(append([]byte(nil), b...))
			op.Combine(bc, simmpi.BytesBuf(c))
			abc2 := simmpi.BytesBuf(append([]byte(nil), a...))
			op.Combine(abc2, bc)
			if !bytes.Equal(abc.Data, abc2.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
