package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// reduceBinomial reduces every rank's vec to the root along a binomial
// tree: each internal node combines its children's vectors and forwards
// one full-size message to its parent. Few, large messages — the
// latency-robust choice from the paper's MPI_Reduce example.
// It returns the reduced vector (meaningful only at the root).
func reduceBinomial(c *simmpi.Comm, root int, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	acc := vec.Clone()
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < n {
				src := (srcRel + root) % n
				b := c.Recv(src)
				op.Combine(acc, b)
				c.Compute(c.Model().ReduceCost(acc.N))
			}
		} else {
			dst := ((rel &^ mask) + root) % n
			c.Send(dst, acc)
			break
		}
		mask <<= 1
	}
	return acc
}

// recursiveHalvingReduceScatter is the shared core of the Rabenseifner
// reduce and allreduce algorithms: the pof2 active ranks repeatedly
// exchange buffer halves with a partner and combine, so that active
// newRank k ends up owning the fully reduced byte range it returns.
// acc must already contain the rank's (possibly pre-folded) vector.
func recursiveHalvingReduceScatter(c *simmpi.Comm, st foldState, newRank int, acc simmpi.Buf, op simmpi.Op) (lo, hi int) {
	lo, hi = 0, acc.N
	for dist := st.pof2 / 2; dist >= 1; dist /= 2 {
		partner := st.oldRank(newRank ^ dist)
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, sendLo, sendHi int
		if newRank&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		got := c.Sendrecv(partner, acc.Slice(sendLo, sendHi), partner)
		keep := acc.Slice(keepLo, keepHi)
		op.Combine(keep, got)
		c.Compute(c.Model().ReduceCost(keep.N))
		lo, hi = keepLo, keepHi
	}
	return lo, hi
}

// preFold performs the non-P2 preparation step: even ranks below 2*rem
// send their whole vector to the odd neighbour and drop out; the odd
// neighbour combines. Returns true if this rank stays active.
func preFold(c *simmpi.Comm, st foldState, acc simmpi.Buf, op simmpi.Op) bool {
	r := c.Rank()
	if st.newRank == -1 {
		c.Send(r+1, acc)
		return false
	}
	if r < 2*st.rem { // odd partner of a folded rank
		b := c.Recv(r - 1)
		op.Combine(acc, b)
		c.Compute(c.Model().ReduceCost(acc.N))
	}
	return true
}

// reduceScatterGather is MPICH's scatter_gather (Rabenseifner) reduce:
// recursive-halving reduce-scatter followed by a binomial gather of the
// scattered segments to the root. Bandwidth-optimal for large vectors;
// many small messages make it latency-sensitive, and non-P2 rank counts
// pay the fold-in/fold-out penalty. Returns the full result at the root.
func reduceScatterGather(c *simmpi.Comm, root int, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	acc := vec.Clone()
	st := foldFor(c.Rank(), n)
	holder := st.oldRank(0) // the active rank that ends with the full result
	if active := preFold(c, st, acc, op); active {
		newRank := st.newRank
		lo, hi := recursiveHalvingReduceScatter(c, st, newRank, acc, op)
		// Binomial gather of segments to newRank 0: at each mask level
		// the rank whose bit is set sends its consolidated range up; the
		// receiver's range is extended, since the source's range starts
		// exactly at the receiver's hi.
		mask := 1
		for mask < st.pof2 {
			if newRank&mask != 0 {
				c.Send(st.oldRank(newRank-mask), acc.Slice(lo, hi))
				break
			}
			if src := newRank + mask; src < st.pof2 {
				b := c.Recv(st.oldRank(src))
				acc.CopyInto(hi, b)
				hi += b.N
			}
			mask <<= 1
		}
		if newRank == 0 && c.Rank() != root {
			c.Send(root, acc)
		}
	}
	if c.Rank() == root && root != holder {
		full := c.Recv(holder)
		acc.CopyInto(0, full)
	}
	return acc
}

// execReduce runs one reduce algorithm and verifies the root's result.
func execReduce(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		vec := newBuf(msgBytes, opts.WithData)
		fillInput(c.Rank(), vec)
		var out simmpi.Buf
		switch alg {
		case "binomial":
			out = reduceBinomial(c, opts.Root, vec, opts.Op)
		case "scatter_gather":
			out = reduceScatterGather(c, opts.Root, vec, opts.Op)
		default:
			panic(fmt.Sprintf("coll: unknown reduce algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		want := expectedReduction(n, msgBytes, opts.Op)
		if err := verifyEqual(outs[opts.Root], want, "reduce", opts.Root); err != nil {
			return outs, res, err
		}
	}
	return outs, res, nil
}
