package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// rsBounds returns the byte boundaries of the ranges the pof2 active
// ranks own during recursive halving: active newRank k owns
// [bound[k], bound[k+1]), which covers its own ceilSegments segment plus
// (for k < rem) the adjacent segment of the even rank folded into it.
func rsBounds(st foldState, segs segset, total int) []int {
	bound := make([]int, st.pof2+1)
	for k := 0; k < st.pof2; k++ {
		if k < st.rem {
			bound[k] = segs.off[2*k]
		} else {
			bound[k] = segs.off[k+st.rem]
		}
	}
	bound[st.pof2] = total
	return bound
}

// reduceScatterRecursiveHalving is MPICH's recursive-halving
// reduce_scatter: non-P2 rank counts pre-fold as in the Rabenseifner
// reductions, then the pof2 active ranks repeatedly exchange and
// combine the half of their current range they do not own, splitting at
// segment boundaries, until each owns exactly its reduced range. Folded
// ranks receive their segment back from their odd partner at the end.
// log(n) latency terms and bandwidth-optimal data volume, but the fold
// costs an extra full-vector transfer on non-P2 rank counts.
func reduceScatterRecursiveHalving(c *simmpi.Comm, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	r := c.Rank()
	segs := ceilSegments(vec.N, n)
	st := foldFor(r, n)
	acc := vec.Clone()
	if !preFold(c, st, acc, op) {
		// Folded-away even rank: the odd partner computes our segment.
		return c.Recv(r + 1)
	}
	newRank := st.newRank
	bound := rsBounds(st, segs, vec.N)
	glo, ghi := 0, st.pof2
	lo, hi := bound[glo], bound[ghi]
	for ghi-glo > 1 {
		gmid := (glo + ghi) / 2
		bmid := bound[gmid]
		half := (ghi - glo) / 2
		if newRank < gmid {
			partner := st.oldRank(newRank + half)
			got := c.Sendrecv(partner, acc.Slice(bmid, hi), partner)
			keep := acc.Slice(lo, bmid)
			op.Combine(keep, got)
			c.Compute(c.Model().ReduceCost(keep.N))
			ghi, hi = gmid, bmid
		} else {
			partner := st.oldRank(newRank - half)
			got := c.Sendrecv(partner, acc.Slice(lo, bmid), partner)
			keep := acc.Slice(bmid, hi)
			op.Combine(keep, got)
			c.Compute(c.Model().ReduceCost(keep.N))
			glo, lo = gmid, bmid
		}
	}
	if newRank < st.rem {
		// Return the folded even partner's segment, keep our own.
		even := 2 * newRank
		c.Send(even, acc.Slice(segs.off[even], segs.off[even]+segs.len[even]))
	}
	return acc.Slice(segs.off[r], segs.off[r]+segs.len[r])
}

// reduceScatterPairwise is MPICH's pairwise-exchange reduce_scatter:
// n-1 full-duplex steps in which each rank sends the still-unreduced
// input segment its step partner owns and folds the segment it receives
// into its own accumulator. Works for any rank count with uniformly
// small messages; the n-1 latency terms make it the long-vector choice.
func reduceScatterPairwise(c *simmpi.Comm, vec simmpi.Buf, op simmpi.Op) simmpi.Buf {
	n := c.Size()
	r := c.Rank()
	segs := ceilSegments(vec.N, n)
	acc := vec.Slice(segs.off[r], segs.off[r]+segs.len[r]).Clone()
	for i := 1; i < n; i++ {
		dst := (r + i) % n
		src := (r - i + n) % n
		payload := vec.Slice(segs.off[dst], segs.off[dst]+segs.len[dst])
		got := c.Sendrecv(dst, payload, src)
		op.Combine(acc, got)
		c.Compute(c.Model().ReduceCost(acc.N))
	}
	return acc
}

// execReduceScatter runs one reduce_scatter algorithm (msgBytes is the
// full vector, split into ceilSegments across ranks — the same layout
// the scatter-based bcast/reduce schedules use, so
// reduce_scatter ≡ reduce + scatterv) and verifies every rank's
// segment.
func execReduceScatter(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		vec := newBuf(msgBytes, opts.WithData)
		fillInput(c.Rank(), vec)
		var out simmpi.Buf
		switch alg {
		case "recursive_halving":
			out = reduceScatterRecursiveHalving(c, vec, opts.Op)
		case "pairwise_exchange":
			out = reduceScatterPairwise(c, vec, opts.Op)
		default:
			panic(fmt.Sprintf("coll: unknown reduce_scatter algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		segs := ceilSegments(msgBytes, n)
		full := expectedReduction(n, msgBytes, opts.Op)
		for r := 0; r < n; r++ {
			want := full[segs.off[r] : segs.off[r]+segs.len[r]]
			if err := verifyEqual(outs[r], want, "reduce_scatter", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
