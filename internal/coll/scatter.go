package coll

import (
	"fmt"

	"acclaim/internal/netmodel"
	"acclaim/internal/simmpi"
)

// scatterBinomial distributes the root's per-rank blocks down a
// binomial tree (the reverse of gatherBinomial): the root packs the
// blocks in root-relative order and each subtree root forwards its
// subtree's share in one message, halving the payload per level. The
// root injects only log(n) messages, at the cost of blocks travelling
// multiple hops. Returns this rank's block.
func scatterBinomial(c *simmpi.Comm, root int, send simmpi.Buf, m int) simmpi.Buf {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	// buf holds blocks in relative order; only the root fills it, every
	// other rank receives its subtree's share into it.
	buf := newBufLike(send, n*m)
	if rel == 0 {
		for j := 0; j < n; j++ {
			d := (root + j) % n
			buf.CopyInto(j*m, send.Slice(d*m, (d+1)*m))
		}
		if root != 0 {
			c.Compute(c.Model().CopyCost(n * m)) // pack into relative order
		}
	}
	binomialScatter(c, buf, uniformSegments(n, m), rel, n, func(r int) int { return (r + root) % n })
	return buf.Slice(rel*m, (rel+1)*m)
}

// scatterLinear has the root send every rank its block directly: each
// block moves exactly once, but the root serializes n-1 injections —
// the flat schedule for small communicators and large blocks.
func scatterLinear(c *simmpi.Comm, root int, send simmpi.Buf, m int) simmpi.Buf {
	n := c.Size()
	if c.Rank() != root {
		return c.Recv(root)
	}
	for i := 1; i < n; i++ {
		d := (root + i) % n
		c.Send(d, send.Slice(d*m, (d+1)*m))
	}
	return send.Slice(root*m, (root+1)*m)
}

// execScatter runs one scatter algorithm (msgBytes is the per-rank
// block size, OSU convention: the root distributes n distinct blocks)
// and verifies every rank's received block.
func execScatter(model *netmodel.Model, alg string, msgBytes int, opts Options) ([]simmpi.Buf, simmpi.Result, error) {
	n := model.Ranks()
	outs := make([]simmpi.Buf, n)
	res, err := simmpi.Run(model, func(c *simmpi.Comm) {
		// Only the root has meaningful send data; other ranks still size
		// their buffers from it.
		send := newBuf(n*msgBytes, opts.WithData)
		if c.Rank() == opts.Root {
			fillInput(c.Rank(), send)
		}
		var out simmpi.Buf
		switch alg {
		case "binomial":
			out = scatterBinomial(c, opts.Root, send, msgBytes)
		case "linear":
			out = scatterLinear(c, opts.Root, send, msgBytes)
		default:
			panic(fmt.Sprintf("coll: unknown scatter algorithm %q", alg))
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		return nil, res, err
	}
	if opts.WithData {
		for r := 0; r < n; r++ {
			want := make([]byte, msgBytes)
			for i := range want {
				want[i] = inputByte(opts.Root, r*msgBytes+i)
			}
			if err := verifyEqual(outs[r], want, "scatter", r); err != nil {
				return outs, res, err
			}
		}
	}
	return outs, res, nil
}
