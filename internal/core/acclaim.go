// Package core implements ACCLAiM, the paper's contribution: a
// practical active-learning autotuner for MPI collective algorithm
// selection. Relative to FACT (the prior state of the art) it makes
// four changes, one per subsection of Section IV:
//
//   - Training point selection (IV-A): a single random-forest model per
//     collective (algorithm enumerated as a feature) picks its own next
//     training point by jackknife variance — no surrogate model.
//   - Non-power-of-two points (IV-B): every fifth selection swaps the
//     chosen power-of-two message size for a random non-P2 neighbour
//     (the 80-20 split of Figure 11), so the model learns non-P2 trends
//     at no extra collection cost.
//   - Model testing (IV-C): convergence is declared from the cumulative
//     jackknife variance across the feature space — four consecutive
//     iterations with a small delta — eliminating the test set and its
//     6–11x collection overhead.
//   - Data collection (IV-D): batches of high-variance points are
//     scheduled onto disjoint racks by the topology-aware greedy
//     scheduler and benchmarked in parallel waves.
//
// After convergence the trained models are lowered to an MPICH-style
// JSON rule file (Section V, Figure 9) that the library consults at
// collective-call time.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
	"acclaim/internal/stats"
)

// Config parameterises ACCLAiM.
type Config struct {
	Space  featspace.Space
	Forest forest.Config
	// NonP2Every makes every k-th selection non-P2 (default 5: the
	// paper's 80-20 split; 2 gives the 50-50 ablation). Negative
	// disables non-P2 mixing entirely (the all-P2 ablation).
	NonP2Every int

	// SeedPoints adds evenly spaced extra seeds on top of the
	// stratified seed design (usually 0). The loop always starts from a
	// space-covering design: one sample per (nodes, ppn, algorithm)
	// stratum at the smallest and largest message sizes, so the forest
	// never has to extrapolate into a stratum it has never seen —
	// random forests extrapolate by returning a neighbouring cell's
	// value, which silently mis-ranks algorithms at the grid corners.
	// Set SparseSeed to use SeedPoints alone (the ablation baseline).
	SeedPoints int
	SparseSeed bool

	// Convergence: training stops when the windowed mean of the
	// cumulative variance improves by less than Epsilon (relative) from
	// one Window to the next — the noise-robust form of the paper's
	// "Window consecutive iterations with a small variance delta"
	// criterion (retraining the forest adds mean-zero churn, so window
	// means are compared). Defaults: Window 5, Epsilon 0.05.
	// MinSamples additionally guards against stopping on an early
	// plateau (default: 10% of the candidate pool).
	Window        int
	Epsilon       float64
	MinSamples    int
	MaxIterations int // safety cap (default 400)

	BatchSize int  // candidates per collection wave (default 4)
	Parallel  bool // use wave collection when the backend supports it

	Seed int64

	// Evaluator, if set, scores the model each iteration (typically
	// average slowdown against a replay dataset) for the trace figures.
	Evaluator func(c coll.Collective, sel autotune.Selector) (float64, error)

	// Recorder receives span events for the tuning timeline: a root
	// span per tuned collective, one span per active-learning round,
	// and child spans for the round's fit / score / pick / collect
	// phases. Nil means obs.Nop, whose calls are free — the seam stays
	// in place at zero cost (AllocsPerRun-gated).
	Recorder obs.Recorder

	// Registry, when non-nil, receives tuner metrics: round/sample
	// counters, per-phase duration histograms, and a per-collective
	// convergence-variance gauge updated every round.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.NonP2Every == 0 {
		c.NonP2Every = 5
	}
	if c.SparseSeed && c.SeedPoints == 0 {
		c.SeedPoints = 4
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 400
	}
	if c.BatchSize == 0 {
		c.BatchSize = 4
	}
	if c.Recorder == nil {
		c.Recorder = obs.Nop
	}
	return c
}

// tunerMetrics are the tuner's pre-resolved registry handles; all nil
// (no-op) when no Registry is configured.
//
//acclaim:frozen
type tunerMetrics struct {
	rounds    *obs.Counter   // tuner.rounds_total: active-learning rounds
	samples   *obs.Counter   // tuner.samples_total: training samples collected
	collects  *obs.Counter   // tuner.collects_total: collection batches issued
	fitNs     *obs.Histogram // tuner.fit_ns: forest retrain time per round
	scoreNs   *obs.Histogram // tuner.score_ns: jackknife scoring sweep time per round
	pickNs    *obs.Histogram // tuner.pick_ns: batch-pick time per round
	collectNs *obs.Histogram // tuner.collect_ns: host time per collection batch
}

func newTunerMetrics(reg *obs.Registry) tunerMetrics {
	return tunerMetrics{
		rounds:    reg.Counter("tuner.rounds_total"),
		samples:   reg.Counter("tuner.samples_total"),
		collects:  reg.Counter("tuner.collects_total"),
		fitNs:     reg.Histogram("tuner.fit_ns"),
		scoreNs:   reg.Histogram("tuner.score_ns"),
		pickNs:    reg.Histogram("tuner.pick_ns"),
		collectNs: reg.Histogram("tuner.collect_ns"),
	}
}

// endRound is the per-round instrumentation hook: round attributes on
// the span, the per-collective convergence gauge, and the round
// counter. It runs inside the active-learning loop, so it must stay
// allocation-free — TestRoundInstrumentationZeroAlloc pins it with
// AllocsPerRun and acclaim-lint's zeroalloc analyzer rejects syntactic
// allocation sites at review time.
//
//acclaim:zeroalloc
func (m tunerMetrics) endRound(rec obs.Recorder, round obs.SpanID, iter, samples int, cum float64, cumVar *obs.Gauge) {
	rec.SetAttr(round, "round", float64(iter))
	rec.SetAttr(round, "samples", float64(samples))
	rec.SetAttr(round, "cum_variance", cum)
	cumVar.Set(cum)
	m.rounds.Inc()
}

// Tuner is an ACCLAiM autotuner over a benchmark backend.
type Tuner struct {
	cfg     Config
	backend autotune.Backend
	met     tunerMetrics
}

// New builds a tuner.
func New(cfg Config, backend autotune.Backend) *Tuner {
	cfg = cfg.withDefaults()
	return &Tuner{cfg: cfg, backend: backend, met: newTunerMetrics(cfg.Registry)}
}

// Config returns the tuner's effective (default-filled) configuration.
func (t *Tuner) Config() Config { return t.cfg }

// Result is a trained ACCLAiM autotuner for one collective.
type Result struct {
	Coll        coll.Collective
	Model       *autotune.Model
	Ledger      autotune.Ledger
	Trace       []autotune.TracePoint
	Order       []autotune.Sample // samples in collection order
	SeedSamples int               // leading entries of Order from the seed design
	Converged   bool
	Parallelism []int // benchmarks per collection wave
}

// Select implements autotune.Selector.
func (r *Result) Select(p featspace.Point) string { return r.Model.Select(p) }

// SelectBatch implements autotune.BatchSelector via the unified model's
// batched sweep.
func (r *Result) SelectBatch(pts []featspace.Point) []string { return r.Model.SelectBatch(pts) }

// NonP2Share returns the fraction of actively *selected* samples (the
// post-seed part of the collection order) with non-P2 message sizes —
// ~1/NonP2Every by construction, the paper's 80-20 split.
func (r *Result) NonP2Share() float64 {
	sel := r.Order
	if r.SeedSamples < len(sel) {
		sel = sel[r.SeedSamples:]
	}
	if len(sel) == 0 {
		return 0
	}
	n := 0
	for _, s := range sel {
		if !featspace.IsP2(s.Candidate.Point.MsgBytes) {
			n++
		}
	}
	return float64(n) / float64(len(sel))
}

// Tune runs the ACCLAiM training loop for one collective. When a
// Recorder/Registry is configured, every round emits a span tree
// (fit, score, pick, collect) plus round-level attributes (cumulative
// variance, sample count) — the raw material of the run report's
// per-phase breakdown and Fig. 9-style convergence curves.
func (t *Tuner) Tune(c coll.Collective) (*Result, error) {
	cands := autotune.Candidates(c, t.cfg.Space, t.backend.MaxNodes())
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no candidates for %v on this backend", c)
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed + int64(c)*31337))
	res := &Result{Coll: c}
	ts := autotune.NewTrainingSet(c)
	detector := &stats.StallDetector{Window: t.cfg.Window, MinImprove: t.cfg.Epsilon}

	rec := t.cfg.Recorder
	//acclaim:allow metricname root span is tune:<collective>; c.String() is a fixed lower-case enum name
	root := rec.StartSpan("tune:"+c.String(), obs.NoSpan)
	defer rec.EndSpan(root)
	//acclaim:allow metricname per-collective gauge tuner.<collective>.cum_variance; segments are fixed enum names
	cumVarGauge := t.cfg.Registry.Gauge("tuner." + c.String() + ".cum_variance")

	if err := t.collectSpanned(c, t.seedDesign(cands), ts, res, rec, root, "seed_collect"); err != nil {
		return nil, err
	}
	res.SeedSamples = len(res.Order)

	selCount := 0
	// One scoring arena for the whole run: the candidate matrix and
	// variance buffer are encoded into the same backing arrays every
	// round, so steady-state sweeps stop allocating after round one.
	var arena autotune.Arena
	for iter := 0; iter < t.cfg.MaxIterations; iter++ {
		round := rec.StartSpan("round", root)

		fit := rec.StartSpan("fit", round)
		t0 := obs.NowNs()
		model, err := autotune.TrainModel(t.cfg.Forest, ts)
		t.met.fitNs.Observe(float64(obs.NowNs() - t0))
		rec.EndSpan(fit)
		if err != nil {
			rec.EndSpan(round)
			return nil, err
		}
		res.Model = model

		// Jackknife variance for every candidate — one fused
		// compiled-kernel sweep across the forest's worker pool; their
		// sum is the cumulative variance used in place of a test-set
		// metric. The sum runs in index order, so it is bit-identical
		// at any worker count.
		score := rec.StartSpan("score", round)
		t0 = obs.NowNs()
		variances := model.VarianceBatchInto(&arena, cands)
		var cum float64
		for _, v := range variances {
			cum += v
		}
		t.met.scoreNs.Observe(float64(obs.NowNs() - t0))
		rec.EndSpan(score)

		tp := autotune.TracePoint{
			Iter:           iter,
			Samples:        ts.Len(),
			CollectionTime: res.Ledger.Collection,
			CumVariance:    cum,
			Slowdown:       math.NaN(),
		}
		if t.cfg.Evaluator != nil {
			sd, err := t.cfg.Evaluator(c, model)
			if err != nil {
				rec.EndSpan(round)
				return nil, err
			}
			tp.Slowdown = sd
		}
		res.Trace = append(res.Trace, tp)

		t.met.endRound(rec, round, iter, ts.Len(), cum, cumVarGauge)

		minSamples := t.cfg.MinSamples
		if minSamples == 0 {
			minSamples = len(cands) / 10
		}
		// The detector only observes once the sample floor is met, so
		// an early plateau cannot latch convergence.
		if ts.Len() >= minSamples && detector.Observe(cum) {
			res.Converged = true
			rec.EndSpan(round)
			break
		}

		// Pick the next batch: highest-variance uncollected candidates.
		pick := rec.StartSpan("pick", round)
		t0 = obs.NowNs()
		batch := t.pickBatch(cands, variances, ts)
		t.met.pickNs.Observe(float64(obs.NowNs() - t0))
		rec.EndSpan(pick)
		if len(batch) == 0 {
			rec.EndSpan(round)
			break // feature space exhausted
		}
		// Every NonP2Every-th selection trades its P2 message size for a
		// random non-P2 neighbour (Section IV-B).
		for i := range batch {
			selCount++
			if t.cfg.NonP2Every > 0 && selCount%t.cfg.NonP2Every == 0 {
				batch[i].Point.MsgBytes = featspace.NonP2Near(rng, batch[i].Point.MsgBytes)
			}
		}
		err = t.collectSpanned(c, batch, ts, res, rec, round, "collect")
		rec.EndSpan(round)
		if err != nil {
			return nil, err
		}
	}

	if res.Model == nil {
		model, err := autotune.TrainModel(t.cfg.Forest, ts)
		if err != nil {
			return nil, err
		}
		res.Model = model
	}
	return res, nil
}

// collectSpanned wraps collect in a span carrying the batch size and
// the simulated machine time the batch cost.
func (t *Tuner) collectSpanned(c coll.Collective, batch []autotune.Candidate, ts *autotune.TrainingSet,
	res *Result, rec obs.Recorder, parent obs.SpanID, name string) error {

	//acclaim:allow metricname span name is a caller-supplied literal ("seed_collect" or "collect")
	sp := rec.StartSpan(name, parent)
	before := res.Ledger.Collection
	t0 := obs.NowNs()
	err := t.collect(c, batch, ts, res)
	t.met.collectNs.Observe(float64(obs.NowNs() - t0))
	if err == nil {
		t.met.collects.Inc()
		t.met.samples.Add(uint64(len(batch)))
		rec.SetAttr(sp, "batch", float64(len(batch)))
		rec.SetAttr(sp, "sim_us", res.Ledger.Collection-before)
	}
	rec.EndSpan(sp)
	return err
}

// seedDesign builds the initial training batch. Default: the stratified
// space-covering design — for every (nodes, ppn, algorithm) stratum,
// the candidates at the smallest and largest grid message sizes — plus
// any extra evenly spaced SeedPoints. With SparseSeed, only the evenly
// spaced points are used.
func (t *Tuner) seedDesign(cands []autotune.Candidate) []autotune.Candidate {
	var seeds []autotune.Candidate
	if !t.cfg.SparseSeed {
		// The message axis is shared across strata (the grid is a cross
		// product), so the per-stratum extremes are exactly the
		// candidates at the global smallest and largest message sizes.
		// Seeding both extremes is deliberately front-loaded cost: the
		// paper's own Figure 10 notes a gap at the left of its graphs
		// where "the first training point was expensive to collect".
		minMsg, maxMsg := cands[0].Point.MsgBytes, cands[0].Point.MsgBytes
		for _, cand := range cands {
			if cand.Point.MsgBytes < minMsg {
				minMsg = cand.Point.MsgBytes
			}
			if cand.Point.MsgBytes > maxMsg {
				maxMsg = cand.Point.MsgBytes
			}
		}
		for _, cand := range cands {
			if m := cand.Point.MsgBytes; m == minMsg || m == maxMsg {
				seeds = append(seeds, cand)
			}
		}
	}
	nExtra := t.cfg.SeedPoints
	if nExtra > len(cands) {
		nExtra = len(cands)
	}
	for i := 0; i < nExtra; i++ {
		seeds = append(seeds, cands[i*(len(cands)-1)/max(nExtra-1, 1)])
	}
	if len(seeds) == 0 {
		seeds = append(seeds, cands[0])
	}
	return seeds
}

// pickBatch returns up to BatchSize uncollected candidates in descending
// variance order.
func (t *Tuner) pickBatch(cands []autotune.Candidate, variances []float64, ts *autotune.TrainingSet) []autotune.Candidate {
	type scored struct {
		idx int
		v   float64
	}
	var open []scored
	for i, cand := range cands {
		if !ts.Has(cand) {
			open = append(open, scored{i, variances[i]})
		}
	}
	sort.Slice(open, func(a, b int) bool {
		if open[a].v != open[b].v {
			return open[a].v > open[b].v
		}
		return open[a].idx < open[b].idx
	})
	k := t.cfg.BatchSize
	if !t.parallel() {
		k = 1
	}
	if k > len(open) {
		k = len(open)
	}
	batch := make([]autotune.Candidate, k)
	for i := 0; i < k; i++ {
		batch[i] = cands[open[i].idx]
	}
	return batch
}

func (t *Tuner) parallel() bool {
	if !t.cfg.Parallel {
		return false
	}
	_, ok := t.backend.(autotune.WaveBackend)
	return ok
}

// collect benchmarks a batch — as a topology-scheduled parallel wave
// when enabled — and charges the machine time to the ledger.
func (t *Tuner) collect(c coll.Collective, batch []autotune.Candidate, ts *autotune.TrainingSet, res *Result) error {
	if len(batch) == 0 {
		return nil
	}
	if wb, ok := t.backend.(autotune.WaveBackend); ok && t.cfg.Parallel {
		specs := make([]benchmark.Spec, len(batch))
		for i, cand := range batch {
			specs[i] = cand.Spec(c)
		}
		ms, wall, err := wb.MeasureWave(specs)
		if err != nil {
			return fmt.Errorf("core: wave collection: %w", err)
		}
		for _, m := range ms {
			cand := candidateFor(m.Spec)
			ts.Add(cand, m.MeanTime, m.WallTime)
			res.Order = append(res.Order, autotune.Sample{Candidate: cand, Mean: m.MeanTime, Wall: m.WallTime})
		}
		res.Ledger.Collection += wall
		res.Parallelism = append(res.Parallelism, len(batch))
		return nil
	}
	for _, cand := range batch {
		m, err := t.backend.Measure(cand.Spec(c))
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		ts.Add(cand, m.MeanTime, m.WallTime)
		res.Order = append(res.Order, autotune.Sample{Candidate: cand, Mean: m.MeanTime, Wall: m.WallTime})
		res.Ledger.Collection += m.WallTime
		res.Parallelism = append(res.Parallelism, 1)
	}
	return nil
}

// TuneAll trains every collective in the list (the user's "collective
// list" from Section V) and returns the results keyed by collective.
func (t *Tuner) TuneAll(colls []coll.Collective) (map[coll.Collective]*Result, error) {
	if colls == nil {
		colls = coll.Collectives()
	}
	out := make(map[coll.Collective]*Result, len(colls))
	for _, c := range colls {
		r, err := t.Tune(c)
		if err != nil {
			return nil, err
		}
		out[c] = r
	}
	return out, nil
}

// BuildRulesFile lowers trained models into the MPICH-style JSON
// selection file (Section V), one table per tuned collective, using the
// Figure 9 midpoint logic over the tuner's grid.
func (t *Tuner) BuildRulesFile(results map[coll.Collective]*Result, machine string) (*rules.File, error) {
	f := rules.NewFile(machine)
	f.Comment = "generated by ACCLAiM (Go reproduction)"
	for c, r := range results {
		sel := r.Model.Select
		table := rules.BuildTable(c.String(), t.cfg.Space, sel)
		if err := table.Validate(); err != nil {
			return nil, err
		}
		f.Tables[c.String()] = table
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Serve lowers trained results into a rule file and installs it in a
// ruleserver.Server, ready to answer collective-call-time selection
// queries lock-free. This is the full paper pipeline in one call:
// training output (Section IV) -> MPICH-style rule file (Section V) ->
// serving snapshot. The rule file is returned alongside the server so
// callers can also persist it; a later retuning round can hot-swap the
// same server via Server.Swap or Server.Load without interrupting
// in-flight lookups.
func (t *Tuner) Serve(results map[coll.Collective]*Result, machine string) (*ruleserver.Server, *rules.File, error) {
	f, err := t.BuildRulesFile(results, machine)
	if err != nil {
		return nil, nil, err
	}
	srv, err := ruleserver.NewFromFile(f)
	if err != nil {
		return nil, nil, err
	}
	return srv, f, nil
}

// LearningCurve trains unified models on prefixes of a completed run's
// selection order and evaluates each (the Figure 11 series).
func (t *Tuner) LearningCurve(res *Result, fracs []float64,
	eval func(autotune.Selector) (float64, error)) ([]autotune.CurvePoint, error) {

	return autotune.LearningCurve(res.Coll, res.Order, fracs,
		func(ts *autotune.TrainingSet) (autotune.Selector, error) {
			return autotune.TrainModel(t.cfg.Forest, ts)
		}, eval)
}

// candidateFor reconstructs a candidate (with algorithm index) from a
// measured spec.
func candidateFor(spec benchmark.Spec) autotune.Candidate {
	idx, _ := coll.AlgIndex(spec.Coll, spec.Alg)
	return autotune.Candidate{Point: spec.Point, Alg: spec.Alg, AlgIdx: idx}
}
