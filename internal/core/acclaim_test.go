package core

import (
	"math"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
)

func testSpace() featspace.Space {
	return featspace.Space{
		Nodes: []int{2, 4, 8, 16},
		PPNs:  []int{1, 2},
		Msgs:  []int{8, 128, 2048, 32768, 1 << 19},
	}
}

// testReplay collects a replay dataset over the P2 grid plus the non-P2
// message neighbourhood ACCLAiM may sample into.
func testReplay(t testing.TB) *dataset.Replay {
	t.Helper()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Collect(r, testSpace().Points(), dataset.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Replay{DS: ds, Alloc: cluster.TopologyTwoPairs()}
}

// liveBackend runs the simulator directly, so non-P2 mutations can be
// benchmarked without precollection.
func liveBackend(t testing.TB) autotune.LiveBackend {
	t.Helper()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	return autotune.LiveBackend{Runner: r}
}

func testConfig() Config {
	return Config{
		Space:  testSpace(),
		Forest: forest.Config{Seed: 1, NTrees: 30},
		Seed:   2,
	}
}

func TestTuneProducesWorkingModel(t *testing.T) {
	rp := testReplay(t)
	tuner := New(testConfig(), liveBackend(t))
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || len(res.Order) == 0 || len(res.Trace) == 0 {
		t.Fatal("incomplete result")
	}
	if res.Ledger.Collection <= 0 {
		t.Error("no collection time charged")
	}
	if res.Ledger.Testing != 0 {
		t.Error("ACCLAiM must not charge test-set time — that is its point")
	}
	sd, err := autotune.EvalSlowdown(rp.DS, coll.Bcast, testSpace().Points(), res)
	if err != nil {
		t.Fatal(err)
	}
	if sd > 1.15 {
		t.Errorf("final slowdown = %v", sd)
	}
}

func TestVarianceConvergence(t *testing.T) {
	tuner := New(testConfig(), liveBackend(t))
	res, err := tuner.Tune(coll.Reduce)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge within %d iterations", tuner.Config().MaxIterations)
	}
	// Cumulative variance must be tracked, and training must not stop
	// at the peak: with a space-covering seed the variance first rises
	// as active learning uncovers structure, then settles; convergence
	// must land below the peak.
	last := res.Trace[len(res.Trace)-1]
	peak := 0.0
	for _, tp := range res.Trace {
		if math.IsNaN(tp.CumVariance) {
			t.Fatal("trace lacks cumulative variance")
		}
		if tp.CumVariance > peak {
			peak = tp.CumVariance
		}
	}
	if last.CumVariance >= peak {
		t.Errorf("converged at the variance peak: last=%v peak=%v", last.CumVariance, peak)
	}
	// Convergence must have been declared by the variance window, which
	// requires Window+1 trailing samples with small deltas.
	if len(res.Trace) < tuner.Config().Window {
		t.Errorf("trace too short to have converged: %d", len(res.Trace))
	}
}

func TestNonP2ShareNearTwentyPercent(t *testing.T) {
	tuner := New(testConfig(), liveBackend(t))
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	share := res.NonP2Share()
	// Every 5th selection (after the 4 seed points) is non-P2: expect
	// roughly 20%, with slack for small sample counts.
	if share < 0.08 || share > 0.30 {
		t.Errorf("non-P2 share = %v, want ~0.2 (order length %d)", share, len(res.Order))
	}
	// And the non-P2 samples must be message-size mutations only.
	for _, s := range res.Order {
		if !featspace.IsP2(s.Candidate.Point.Nodes) {
			t.Errorf("node count mutated: %v", s.Candidate.Point)
		}
	}
}

func TestNoSurrogate一ModelOnly(t *testing.T) {
	// Structural check: the result's model is the unified single-forest
	// design (algorithm as a feature), not per-algorithm forests.
	tuner := New(testConfig(), liveBackend(t))
	res, err := tuner.Tune(coll.Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.F.NumFeatures() != featspace.NumFeatures {
		t.Errorf("model features = %d, want %d (algorithm enumerated as a feature)",
			res.Model.F.NumFeatures(), featspace.NumFeatures)
	}
}

func TestParallelCheaperThanSequential(t *testing.T) {
	seqCfg := testConfig()
	seqCfg.Parallel = false
	parCfg := testConfig()
	parCfg.Parallel = true
	parCfg.BatchSize = 4

	// Use a max-parallel topology so waves actually overlap.
	mkBackend := func() autotune.LiveBackend {
		r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
			cluster.TopologyMaxParallel(), benchmark.Config{Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		return autotune.LiveBackend{Runner: r}
	}
	seqRes, err := New(seqCfg, mkBackend()).Tune(coll.Reduce)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := New(parCfg, mkBackend()).Tune(coll.Reduce)
	if err != nil {
		t.Fatal(err)
	}
	// Per-sample machine time must be cheaper with parallel waves.
	seqRate := seqRes.Ledger.Collection / float64(len(seqRes.Order))
	parRate := parRes.Ledger.Collection / float64(len(parRes.Order))
	if parRate >= seqRate {
		t.Errorf("parallel per-sample cost %v not below sequential %v", parRate, seqRate)
	}
	// Waves really held multiple benchmarks.
	multi := false
	for _, w := range parRes.Parallelism {
		if w > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("no multi-benchmark waves on max-parallel topology")
	}
}

func TestDeterministic(t *testing.T) {
	r1, err := New(testConfig(), liveBackend(t)).Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(testConfig(), liveBackend(t)).Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Order) != len(r2.Order) {
		t.Fatalf("order lengths differ: %d vs %d", len(r1.Order), len(r2.Order))
	}
	for i := range r1.Order {
		if r1.Order[i].Candidate != r2.Order[i].Candidate {
			t.Fatal("non-deterministic selection order")
		}
	}
	if r1.Ledger != r2.Ledger {
		t.Error("non-deterministic ledger")
	}
}

func TestTuneAllAndRules(t *testing.T) {
	tuner := New(testConfig(), liveBackend(t))
	results, err := tuner.TuneAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != coll.NumCollectives {
		t.Fatalf("results = %d collectives, want %d", len(results), coll.NumCollectives)
	}
	file, err := tuner.BuildRulesFile(results, "sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Tables) != coll.NumCollectives {
		t.Fatalf("tables = %d, want %d", len(file.Tables), coll.NumCollectives)
	}
	// Every table answers every query, including non-P2 ones.
	for _, c := range coll.Collectives() {
		tab := file.Tables[c.String()]
		for _, p := range []featspace.Point{
			{Nodes: 2, PPN: 1, MsgBytes: 8},
			{Nodes: 13, PPN: 2, MsgBytes: 24576},
			{Nodes: 1000, PPN: 64, MsgBytes: 1 << 30},
		} {
			alg, err := tab.Select(p.Nodes, p.PPN, p.MsgBytes)
			if err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			if _, ok := coll.AlgIndex(c, alg); !ok {
				t.Fatalf("%v rule names unknown algorithm %q", c, alg)
			}
		}
	}
}

func TestEvaluatorTrace(t *testing.T) {
	rp := testReplay(t)
	cfg := testConfig()
	cfg.Evaluator = func(c coll.Collective, sel autotune.Selector) (float64, error) {
		return autotune.EvalSlowdown(rp.DS, c, testSpace().Points(), sel)
	}
	res, err := New(cfg, liveBackend(t)).Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Trace {
		if math.IsNaN(tp.Slowdown) {
			t.Fatal("evaluator did not populate slowdown")
		}
		if tp.Slowdown < 1 {
			t.Fatalf("slowdown %v < 1", tp.Slowdown)
		}
	}
}

func TestEmptySpaceFails(t *testing.T) {
	cfg := testConfig()
	cfg.Space = featspace.Space{}
	if _, err := New(cfg, liveBackend(t)).Tune(coll.Bcast); err == nil {
		t.Error("empty space should fail")
	}
}
