package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"sort"
	"text/tabwriter"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
)

// RunReportSchema versions the -run-report JSON shape; bump it on any
// incompatible change so downstream tooling can dispatch.
const RunReportSchema = "acclaim.run_report/v1"

// RunReport is the observability dump of one tuning run: per-collective
// convergence trajectories (the Fig. 9 / Fig. 10 series, regenerable
// without re-running the experiment), per-phase time breakdowns
// aggregated from the span timeline, the raw span timeline itself, and
// a final snapshot of every registry metric.
type RunReport struct {
	Schema      string             `json:"schema"`
	Machine     string             `json:"machine"`
	Topology    string             `json:"topology,omitempty"` // interconnect the run was priced on
	Scenario    string             `json:"scenario,omitempty"` // environment scenario of the run
	Collectives []CollectiveReport `json:"collectives"`
	Metrics     map[string]any     `json:"metrics,omitempty"`
	Spans       []obs.Span         `json:"spans,omitempty"`
}

// CollectiveReport summarises one collective's tuning run.
type CollectiveReport struct {
	Name         string               `json:"name"`
	Rounds       int                  `json:"rounds"`
	Samples      int                  `json:"samples"`
	SeedSamples  int                  `json:"seed_samples"`
	Converged    bool                 `json:"converged"`
	CollectionUs float64              `json:"collection_us"` // simulated machine time
	NonP2Share   float64              `json:"non_p2_share"`
	Phases       map[string]PhaseStat `json:"phases,omitempty"`
	Convergence  []ConvergencePoint   `json:"convergence"`
}

// PhaseStat aggregates the spans of one phase (fit, score, pick,
// collect, ...) under a collective's root span.
type PhaseStat struct {
	Count   int   `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// ConvergencePoint is one active-learning round of the convergence
// trajectory: the cumulative jackknife variance against samples and
// simulated collection time.
type ConvergencePoint struct {
	Round        int      `json:"round"`
	Samples      int      `json:"samples"`
	CumVariance  float64  `json:"cum_variance"`
	CollectionUs float64  `json:"collection_us"`
	Slowdown     *float64 `json:"slowdown,omitempty"` // only when an Evaluator ran
}

// BuildRunReport assembles the report from tuning results plus the
// optional trace and registry the run was instrumented with (either may
// be nil). Collectives are sorted by name for a stable layout.
func BuildRunReport(machine string, results map[coll.Collective]*Result, trace *obs.Trace, reg *obs.Registry) *RunReport {
	rep := &RunReport{
		Schema:  RunReportSchema,
		Machine: machine,
		Metrics: reg.Snapshot(),
	}
	var spans []obs.Span
	if trace != nil {
		spans = trace.Spans()
		rep.Spans = spans
	}

	names := make([]coll.Collective, 0, len(results))
	for c := range results {
		names = append(names, c)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].String() < names[j].String() })

	for _, c := range names {
		res := results[c]
		cr := CollectiveReport{
			Name:         c.String(),
			Rounds:       len(res.Trace),
			Samples:      len(res.Order),
			SeedSamples:  res.SeedSamples,
			Converged:    res.Converged,
			CollectionUs: res.Ledger.Collection,
			NonP2Share:   res.NonP2Share(),
			Phases:       phaseBreakdown(spans, "tune:"+c.String()),
		}
		for _, tp := range res.Trace {
			cp := ConvergencePoint{
				Round:        tp.Iter,
				Samples:      tp.Samples,
				CumVariance:  tp.CumVariance,
				CollectionUs: tp.CollectionTime,
			}
			if !math.IsNaN(tp.Slowdown) {
				sd := tp.Slowdown
				cp.Slowdown = &sd
			}
			cr.Convergence = append(cr.Convergence, cp)
		}
		rep.Collectives = append(rep.Collectives, cr)
	}
	return rep
}

// phaseBreakdown sums span durations by name across the subtree rooted
// at the span named root. The root itself is excluded; still-open
// spans (EndNs < 0) are skipped.
func phaseBreakdown(spans []obs.Span, root string) map[string]PhaseStat {
	var rootID obs.SpanID
	for _, s := range spans {
		if s.Name == root {
			rootID = s.ID
			break
		}
	}
	if rootID == obs.NoSpan {
		return nil
	}
	in := map[obs.SpanID]bool{rootID: true}
	out := make(map[string]PhaseStat)
	// Spans are appended in start order, so parents precede children
	// and one forward pass covers the subtree.
	for _, s := range spans {
		if !in[s.Parent] {
			continue
		}
		in[s.ID] = true
		if s.EndNs < 0 {
			continue
		}
		st := out[s.Name]
		st.Count++
		st.TotalNs += int64(s.Duration())
		out[s.Name] = st
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteJSON writes the report, indented, to w.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summaryPhases is the fixed column order of the human-readable table;
// phases outside this list (seed_collect, round) are folded into the
// "other" column.
var summaryPhases = []string{"fit", "score", "pick", "collect"}

// WriteSummary prints the end-of-tuning table: per collective, the
// round/sample counts, simulated collection time, and the host-time
// breakdown across tuning phases.
func (r *RunReport) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "collective\trounds\tsamples\tconverged\tsim-collect(s)")
	for _, p := range summaryPhases {
		fmt.Fprintf(tw, "\t%s(ms)", p)
	}
	fmt.Fprint(tw, "\tother(ms)\n")
	for _, cr := range r.Collectives {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%.2f", cr.Name, cr.Rounds, cr.Samples, cr.Converged, cr.CollectionUs/1e6)
		var accounted int64
		for _, p := range summaryPhases {
			st := cr.Phases[p]
			accounted += st.TotalNs
			fmt.Fprintf(tw, "\t%.1f", float64(st.TotalNs)/1e6)
		}
		var other int64
		for name, st := range cr.Phases {
			if name != "round" && !slices.Contains(summaryPhases, name) {
				other += st.TotalNs
			}
		}
		fmt.Fprintf(tw, "\t%.1f\n", float64(other)/1e6)
	}
	return tw.Flush()
}
