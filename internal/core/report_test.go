package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
	"acclaim/internal/obs"
)

// update regenerates testdata/run_report.golden.json:
//
//	go test ./internal/core/ -run RunReportGolden -update
var update = flag.Bool("update", false, "rewrite the run-report golden file")

// TestRoundInstrumentationZeroAlloc gates the observability seam the
// tuner's inner loop pays for: the full span + metric sequence of one
// round must be allocation-free both with everything disabled (Nop
// recorder, nil registry handles) and with live registry handles (the
// recorder is the only part that may ever allocate, and only when a
// real Trace is installed).
func TestRoundInstrumentationZeroAlloc(t *testing.T) {
	round := func(rec obs.Recorder, met tunerMetrics, cumVar *obs.Gauge) {
		r := rec.StartSpan("round", obs.NoSpan)
		fit := rec.StartSpan("fit", r)
		met.fitNs.Observe(1000)
		rec.EndSpan(fit)
		score := rec.StartSpan("score", r)
		met.scoreNs.Observe(2000)
		rec.EndSpan(score)
		met.endRound(rec, r, 1, 10, 0.5, cumVar)
		pick := rec.StartSpan("pick", r)
		met.pickNs.Observe(3000)
		rec.EndSpan(pick)
		collect := rec.StartSpan("collect", r)
		met.collectNs.Observe(4000)
		met.collects.Inc()
		met.samples.Add(4)
		rec.EndSpan(collect)
		rec.EndSpan(r)
	}

	disabled := newTunerMetrics(nil)
	if n := testing.AllocsPerRun(1000, func() { round(obs.Nop, disabled, nil) }); n != 0 {
		t.Errorf("disabled instrumentation allocates %v per round, want 0", n)
	}

	reg := obs.NewRegistry()
	live := newTunerMetrics(reg)
	gauge := reg.Gauge("tuner.bcast.cum_variance")
	if n := testing.AllocsPerRun(1000, func() { round(obs.Nop, live, gauge) }); n != 0 {
		t.Errorf("live metric handles allocate %v per round, want 0", n)
	}
}

// tickClock is a deterministic trace clock: 1000, 2000, 3000, ... so
// the golden timeline is byte-stable across hosts.
func tickClock() func() int64 {
	var n int64
	return func() int64 { n += 1000; return n }
}

func obsConfig(reg *obs.Registry, trace *obs.Trace) Config {
	cfg := testConfig()
	cfg.Recorder = trace
	cfg.Registry = reg
	// Pin the pool so forest.train_workers is host-independent.
	cfg.Forest.Workers = 1
	cfg.Forest.Metrics = forest.NewMetrics(reg)
	return cfg
}

func runReport(t *testing.T) *RunReport {
	t.Helper()
	reg := obs.NewRegistry()
	trace := obs.NewTraceWithClock(tickClock())
	tuner := New(obsConfig(reg, trace), liveBackend(t))
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	return BuildRunReport("test-sim", map[coll.Collective]*Result{coll.Bcast: res}, trace, reg)
}

func TestRunReportShape(t *testing.T) {
	rep := runReport(t)
	if rep.Schema != RunReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Collectives) != 1 || rep.Collectives[0].Name != "bcast" {
		t.Fatalf("collectives = %+v", rep.Collectives)
	}
	cr := rep.Collectives[0]
	if cr.Rounds == 0 || len(cr.Convergence) != cr.Rounds {
		t.Errorf("rounds=%d convergence=%d, want equal and nonzero", cr.Rounds, len(cr.Convergence))
	}
	for i, cp := range cr.Convergence {
		if cp.Round != i {
			t.Errorf("convergence[%d].Round = %d", i, cp.Round)
		}
		if cp.CumVariance < 0 {
			t.Errorf("convergence[%d].CumVariance = %v", i, cp.CumVariance)
		}
	}
	// Later rounds must never report fewer samples: the trajectory is
	// cumulative.
	for i := 1; i < len(cr.Convergence); i++ {
		if cr.Convergence[i].Samples < cr.Convergence[i-1].Samples {
			t.Errorf("samples shrank at round %d", i)
		}
	}
	for _, phase := range []string{"fit", "score", "collect", "seed_collect"} {
		if cr.Phases[phase].Count == 0 {
			t.Errorf("phase %q missing from breakdown: %+v", phase, cr.Phases)
		}
	}
	if cr.Phases["fit"].Count != cr.Rounds {
		t.Errorf("fit spans = %d, rounds = %d", cr.Phases["fit"].Count, cr.Rounds)
	}
	if len(rep.Spans) == 0 || rep.Spans[0].Name != "tune:bcast" {
		t.Fatalf("span timeline missing or misrooted")
	}
	for _, s := range rep.Spans {
		if s.EndNs < 0 {
			t.Errorf("span %q left open in finished report", s.Name)
		}
	}
	for _, name := range []string{"tuner.rounds_total", "tuner.samples_total",
		"tuner.bcast.cum_variance", "forest.trains_total", "tuner.fit_ns"} {
		if _, ok := rep.Metrics[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if got := rep.Metrics["tuner.rounds_total"]; got != uint64(cr.Rounds) {
		t.Errorf("tuner.rounds_total = %v, want %d", got, cr.Rounds)
	}

	var buf bytes.Buffer
	if err := rep.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	sum := buf.String()
	if !strings.Contains(sum, "bcast") || !strings.Contains(sum, "fit(ms)") {
		t.Errorf("summary table malformed:\n%s", sum)
	}
}

// checkReportGolden pins a run report's JSON byte-for-byte against
// testdata/<name>. The tuning runs are deterministic (seeded simulator,
// bit-identical forests, tick trace clock), except for host-clock
// metrics — every registry key ending in `_ns` (the naming convention
// reserves that suffix for host nanoseconds) is replaced with a
// placeholder before comparison.
func checkReportGolden(t *testing.T, rep *RunReport, name string) {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	metrics, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatal("report has no metrics object")
	}
	hostTimed := 0
	for k := range metrics {
		if strings.HasSuffix(k, "_ns") {
			metrics[k] = "HOST_TIME"
			hostTimed++
		}
	}
	if hostTimed == 0 {
		t.Error("no _ns metrics found — host-time normalisation is dead, check the naming convention")
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update to regenerate)\ngot %d bytes, want %d", name, len(got), len(want))
	}
}

func TestRunReportGolden(t *testing.T) {
	checkReportGolden(t, runReport(t), "run_report.golden.json")
}

// TestRunReportGoldenFatTree pins the report of a scenario-diversity
// cell: gather tuned on the fat-tree interconnect, with the topology
// and scenario fields populated the way cmd/acclaim's -run-report path
// populates them.
func TestRunReportGoldenFatTree(t *testing.T) {
	reg := obs.NewRegistry()
	trace := obs.NewTraceWithClock(tickClock())
	alloc := cluster.TopologyTwoPairs()
	topo, err := netmodel.TopologyByName("fat-tree", alloc.Machine)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		alloc, benchmark.Config{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	r.Topology = topo
	tuner := New(obsConfig(reg, trace), autotune.LiveBackend{Runner: r})
	res, err := tuner.Tune(coll.Gather)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildRunReport("test-sim", map[coll.Collective]*Result{coll.Gather: res}, trace, reg)
	rep.Topology = topo.Name()
	rep.Scenario = "baseline"
	checkReportGolden(t, rep, "run_report_fattree.golden.json")
}

// TestRunReportFile round-trips WriteFile output through json.Valid and
// the schema check a CI consumer would apply.
func TestRunReportFile(t *testing.T) {
	rep := runReport(t)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != RunReportSchema || len(back.Collectives) != 1 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if len(back.Spans) != len(rep.Spans) {
		t.Errorf("round-trip spans = %d, want %d", len(back.Spans), len(rep.Spans))
	}
}
