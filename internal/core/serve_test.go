package core

import (
	"path/filepath"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

// TestServeEndToEnd is the full-pipeline determinism test: a seeded
// ACCLAiM run over every collective, lowered to a rule file, compiled
// into the serving engine — and then every point of the tuner's feature
// space (plus off-grid and non-P2 probes) must resolve through the
// server to an algorithm the collective actually has, byte-identical to
// what the nested rule-file walk selects.
func TestServeEndToEnd(t *testing.T) {
	tuner := New(testConfig(), liveBackend(t))
	results, err := tuner.TuneAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, file, err := tuner.Serve(results, "sim")
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Tables; got != len(file.Tables) {
		t.Fatalf("server holds %d tables, file has %d", got, len(file.Tables))
	}

	// Every grid point, every off-grid neighbour, every collective.
	probes := testSpace().Points()
	for _, p := range testSpace().Points() {
		probes = append(probes,
			featspace.Point{Nodes: p.Nodes + 1, PPN: p.PPN, MsgBytes: p.MsgBytes + 3},
			featspace.Point{Nodes: p.Nodes, PPN: p.PPN + 1, MsgBytes: p.MsgBytes - 1},
		)
	}
	probes = append(probes, featspace.Point{Nodes: 4096, PPN: 128, MsgBytes: 1 << 30})
	for _, c := range coll.Collectives() {
		tab := file.Tables[c.String()]
		for _, p := range probes {
			alg, ok := srv.Lookup(c, p.Nodes, p.PPN, p.MsgBytes)
			if !ok {
				t.Fatalf("%v: server missed at %v", c, p)
			}
			if _, known := coll.AlgIndex(c, alg); !known {
				t.Fatalf("%v: server selected unknown algorithm %q at %v", c, alg, p)
			}
			want, err := tab.Select(p.Nodes, p.PPN, p.MsgBytes)
			if err != nil {
				t.Fatalf("%v: rule file incomplete at %v: %v", c, p, err)
			}
			if alg != want {
				t.Fatalf("%v at %v: server = %q, rule file = %q", c, p, alg, want)
			}
		}
	}

	// The emitted file survives a disk round trip into a fresh server
	// (the cmd/acclaim-serve path) and a hot reload on the live one.
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := file.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := srv.Load(path); err != nil {
		t.Fatalf("hot reload of emitted file: %v", err)
	}
	if st := srv.Stats(); st.Version != 2 || st.Swaps != 2 {
		t.Errorf("reload did not publish a new snapshot: %+v", st)
	}
	alg, ok := srv.Lookup(coll.Bcast, 8, 2, 4096)
	if !ok {
		t.Fatal("lookup missed after reload")
	}
	if _, known := coll.AlgIndex(coll.Bcast, alg); !known {
		t.Fatalf("unknown algorithm %q after reload", alg)
	}
}

// TestServeTopologyEndToEnd runs the seeded TuneAll→Serve pipeline for
// the scenario-diversity collectives on the non-default interconnects:
// tuning alltoall on a fat-tree and reduce_scatter on a 3D torus must
// produce a complete rule table whose served selections are always
// algorithms the collective actually registers. This is the acceptance
// gate that the new collectives and the new machine models compose
// through the unchanged AlgSource/ExecSelected seam.
func TestServeTopologyEndToEnd(t *testing.T) {
	cases := []struct {
		topo string
		c    coll.Collective
	}{
		{"fat-tree", coll.Alltoall},
		{"torus", coll.ReduceScatter},
	}
	for _, tc := range cases {
		t.Run(tc.topo, func(t *testing.T) {
			alloc := cluster.TopologyTwoPairs()
			topo, err := netmodel.TopologyByName(tc.topo, alloc.Machine)
			if err != nil {
				t.Fatal(err)
			}
			r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
				alloc, benchmark.Config{Seed: 33})
			if err != nil {
				t.Fatal(err)
			}
			r.Topology = topo
			tuner := New(testConfig(), autotune.LiveBackend{Runner: r})
			results, err := tuner.TuneAll([]coll.Collective{tc.c})
			if err != nil {
				t.Fatal(err)
			}
			srv, file, err := tuner.Serve(results, "sim-"+tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			tab := file.Tables[tc.c.String()]
			if tab == nil {
				t.Fatalf("no rule table emitted for %v", tc.c)
			}
			for _, p := range testSpace().Points() {
				alg, ok := srv.Lookup(tc.c, p.Nodes, p.PPN, p.MsgBytes)
				if !ok {
					t.Fatalf("%v on %s: server missed at %v", tc.c, tc.topo, p)
				}
				if _, known := coll.AlgIndex(tc.c, alg); !known {
					t.Fatalf("%v on %s: served unknown algorithm %q at %v", tc.c, tc.topo, alg, p)
				}
				want, err := tab.Select(p.Nodes, p.PPN, p.MsgBytes)
				if err != nil {
					t.Fatalf("%v on %s: rule file incomplete at %v: %v", tc.c, tc.topo, p, err)
				}
				if alg != want {
					t.Fatalf("%v on %s at %v: server = %q, rule file = %q", tc.c, tc.topo, p, alg, want)
				}
			}
		})
	}
}

// TestServeDeterministic pins the whole pipeline's determinism: two
// identically seeded runs must serve identical selections everywhere.
func TestServeDeterministic(t *testing.T) {
	build := func() *map[coll.Collective]map[featspace.Point]string {
		tuner := New(testConfig(), liveBackend(t))
		results, err := tuner.TuneAll(nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, _, err := tuner.Serve(results, "sim")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[coll.Collective]map[featspace.Point]string)
		for _, c := range coll.Collectives() {
			out[c] = make(map[featspace.Point]string)
			for _, p := range testSpace().Points() {
				alg, ok := srv.Lookup(c, p.Nodes, p.PPN, p.MsgBytes)
				if !ok {
					t.Fatalf("%v: miss at %v", c, p)
				}
				out[c][p] = alg
			}
		}
		return &out
	}
	a, b := build(), build()
	for c, pts := range *a {
		for p, alg := range pts {
			if other := (*b)[c][p]; other != alg {
				t.Fatalf("%v at %v: run 1 = %q, run 2 = %q", c, p, alg, other)
			}
		}
	}
}
