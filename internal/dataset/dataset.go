// Package dataset manages precollected benchmark data. The paper's
// simulated experiments (its Figure 1(a) methodology) replay an
// exhaustively benchmarked dataset instead of touching the machine;
// this package collects such datasets from the simulator, persists
// them, answers lookups, and exposes a Replay backend that serves
// autotuners "benchmark results" from the table while charging the
// recorded machine time — including topology-aware parallel replay for
// the Figure 13 study.
package dataset

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/sched"
)

// Key identifies one benchmarked configuration.
type Key struct {
	Coll  coll.Collective
	Alg   string
	Point featspace.Point
}

// Entry is the stored measurement for a key.
type Entry struct {
	MeanTime float64 // mean collective time (us)
	WallTime float64 // machine time one benchmark run occupied (us)
}

// Dataset is a table of benchmark results.
type Dataset struct {
	Entries map[Key]Entry
}

// New returns an empty dataset.
func New() *Dataset { return &Dataset{Entries: make(map[Key]Entry)} }

// Len returns the number of entries.
func (d *Dataset) Len() int { return len(d.Entries) }

// Lookup returns the entry for a key.
func (d *Dataset) Lookup(k Key) (Entry, bool) {
	e, ok := d.Entries[k]
	return e, ok
}

// Put stores an entry.
func (d *Dataset) Put(k Key, e Entry) { d.Entries[k] = e }

// Merge copies every entry of other into d, overwriting duplicates.
func (d *Dataset) Merge(other *Dataset) {
	for k, e := range other.Entries {
		d.Entries[k] = e
	}
}

// Points returns the distinct feature points present for a collective,
// in deterministic order.
func (d *Dataset) Points(c coll.Collective) []featspace.Point {
	seen := make(map[featspace.Point]bool)
	for k := range d.Entries {
		if k.Coll == c {
			seen[k.Point] = true
		}
	}
	pts := make([]featspace.Point, 0, len(seen))
	for p := range seen {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.PPN != b.PPN {
			return a.PPN < b.PPN
		}
		return a.MsgBytes < b.MsgBytes
	})
	return pts
}

// Best returns the fastest algorithm and its time for a collective at a
// point. ok is false if the point has no entries.
func (d *Dataset) Best(c coll.Collective, p featspace.Point) (alg string, mean float64, ok bool) {
	for _, a := range coll.AlgorithmNames(c) {
		if e, found := d.Lookup(Key{Coll: c, Alg: a, Point: p}); found {
			if !ok || e.MeanTime < mean {
				alg, mean, ok = a, e.MeanTime, true
			}
		}
	}
	return alg, mean, ok
}

// TimeOf returns the mean time of one algorithm at a point.
func (d *Dataset) TimeOf(c coll.Collective, alg string, p featspace.Point) (float64, bool) {
	e, ok := d.Lookup(Key{Coll: c, Alg: alg, Point: p})
	return e.MeanTime, ok
}

// CollectOptions configures exhaustive collection.
type CollectOptions struct {
	Collectives []coll.Collective     // default: all four
	Workers     int                   // parallel simulator workers (default: NumCPU)
	Progress    func(done, total int) // optional progress callback
}

// Collect benchmarks every (collective, algorithm, point) combination on
// the runner and returns the dataset. Points whose node demand exceeds
// the runner's allocation, or with fewer than two ranks, are skipped.
// Simulator executions run on Workers goroutines; results are
// deterministic because measurement noise is derived per-spec.
func Collect(r *benchmark.Runner, points []featspace.Point, opts CollectOptions) (*Dataset, error) {
	colls := opts.Collectives
	if colls == nil {
		colls = coll.Collectives()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var specs []benchmark.Spec
	for _, c := range colls {
		for _, alg := range coll.AlgorithmNames(c) {
			for _, p := range points {
				if !p.Valid() || p.Nodes > r.MaxNodes() {
					continue
				}
				specs = append(specs, benchmark.Spec{Coll: c, Alg: alg, Point: p})
			}
		}
	}
	d := New()
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	work := make(chan benchmark.Spec)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := range work {
				m, err := r.Run(s)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("dataset: %v: %w", s, err)
					}
					continue
				}
				mu.Lock()
				d.Put(Key{Coll: s.Coll, Alg: s.Alg, Point: s.Point},
					Entry{MeanTime: m.MeanTime, WallTime: m.WallTime})
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(specs))
				}
				mu.Unlock()
			}
		}(w)
	}
	for _, s := range specs {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Save writes the dataset to path with encoding/gob.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(d.Entries); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := New()
	if err := gob.NewDecoder(f).Decode(&d.Entries); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return d, nil
}

// ErrMissing is returned by Replay for configurations absent from the
// dataset.
var ErrMissing = errors.New("dataset: configuration not in dataset")

// Replay serves benchmark "runs" from a precollected dataset — the
// paper's simulated-experiment backend. The allocation is only used to
// schedule parallel replay waves (Figure 13); the measurements
// themselves come from the table.
type Replay struct {
	DS    *Dataset
	Alloc cluster.Allocation
}

// Measure looks up one configuration, charging its recorded wall time.
func (r *Replay) Measure(spec benchmark.Spec) (benchmark.Measurement, error) {
	e, ok := r.DS.Lookup(Key{Coll: spec.Coll, Alg: spec.Alg, Point: spec.Point})
	if !ok {
		return benchmark.Measurement{}, fmt.Errorf("%w: %v", ErrMissing, spec)
	}
	return benchmark.Measurement{Spec: spec, MeanTime: e.MeanTime, WallTime: e.WallTime}, nil
}

// MaxNodes returns the replay topology's node count.
func (r *Replay) MaxNodes() int { return r.Alloc.Size() }

// MeasureWave replays a batch of benchmarks as topology-scheduled
// parallel waves and returns the measurements plus the total machine
// time (the sum of per-wave maxima).
func (r *Replay) MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error) {
	reqs := make([]sched.Request, len(specs))
	for i, s := range specs {
		reqs[i] = sched.Request{ID: i, Nodes: s.Point.Nodes, Priority: float64(len(specs) - i)}
	}
	waves, err := sched.PlanAll(r.Alloc, reqs)
	if err != nil {
		return nil, 0, err
	}
	out := make([]benchmark.Measurement, 0, len(specs))
	var total float64
	for _, wave := range waves {
		var waveTime float64
		for _, p := range wave {
			m, err := r.Measure(specs[p.ID])
			if err != nil {
				return nil, 0, err
			}
			out = append(out, m)
			if m.WallTime > waveTime {
				waveTime = m.WallTime
			}
		}
		total += waveTime
	}
	return out, total, nil
}

// NonP2NodesPoints derives a test set from a P2 grid by replacing each
// node count with a nearby non-P2 value (Section III-B's "Non-P2 Nodes"
// dataset). The rng drives the perturbation; ppn and message sizes stay
// on the grid.
func NonP2NodesPoints(rng interface{ Intn(int) int }, space featspace.Space) []featspace.Point {
	return perturbPoints(space, func(p featspace.Point) featspace.Point {
		p.Nodes = nonP2Within(rng, p.Nodes)
		return p
	})
}

// NonP2MsgPoints derives a test set with non-P2 message sizes
// (Section III-B's "Non-P2 Message Size" dataset).
func NonP2MsgPoints(rng interface{ Intn(int) int }, space featspace.Space) []featspace.Point {
	return perturbPoints(space, func(p featspace.Point) featspace.Point {
		p.MsgBytes = nonP2Within(rng, p.MsgBytes)
		return p
	})
}

func perturbPoints(space featspace.Space, fn func(featspace.Point) featspace.Point) []featspace.Point {
	seen := make(map[featspace.Point]bool)
	var out []featspace.Point
	for _, p := range space.Points() {
		q := fn(p)
		if q.Valid() && !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

// nonP2Within picks a non-P2 value near v (between 3v/4 and 3v/2,
// exclusive of powers of two), matching featspace.NonP2Near but usable
// with the narrow rng interface.
func nonP2Within(rng interface{ Intn(int) int }, v int) int {
	if v < 4 {
		return 3
	}
	lo, hi := v-v/4, v+v/2
	for i := 0; i < 64; i++ {
		c := lo + rng.Intn(hi-lo+1)
		if !featspace.IsP2(c) {
			return c
		}
	}
	return v + v/4 + 1
}
