package dataset

import (
	"math/rand"
	"path/filepath"
	"testing"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

func tinySpace() featspace.Space {
	return featspace.Space{Nodes: []int{2, 4}, PPNs: []int{1, 2}, Msgs: []int{8, 64, 1024}}
}

func collectTiny(t testing.TB) *Dataset {
	t.Helper()
	alloc := cluster.TopologyTwoPairs()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, benchmark.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Collect(r, tinySpace().Points(), CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCollectCoversSpace(t *testing.T) {
	d := collectTiny(t)
	want := 0
	for _, c := range coll.Collectives() {
		want += coll.NumAlgorithms(c) * tinySpace().Size()
	}
	if d.Len() != want {
		t.Errorf("collected %d entries, want %d", d.Len(), want)
	}
	for _, c := range coll.Collectives() {
		pts := d.Points(c)
		if len(pts) != tinySpace().Size() {
			t.Errorf("%v has %d points, want %d", c, len(pts), tinySpace().Size())
		}
	}
}

func TestCollectSkipsOversize(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 0, 2)
	r, _ := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, benchmark.Config{})
	pts := []featspace.Point{
		{Nodes: 2, PPN: 1, MsgBytes: 8},
		{Nodes: 64, PPN: 1, MsgBytes: 8}, // exceeds the 2-node allocation
		{Nodes: 1, PPN: 1, MsgBytes: 8},  // single rank: invalid
	}
	d, err := Collect(r, pts, CollectOptions{Collectives: []coll.Collective{coll.Bcast}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != coll.NumAlgorithms(coll.Bcast) {
		t.Errorf("entries = %d, want %d (only the feasible point)", d.Len(), coll.NumAlgorithms(coll.Bcast))
	}
}

func TestCollectDeterministic(t *testing.T) {
	d1 := collectTiny(t)
	d2 := collectTiny(t)
	if d1.Len() != d2.Len() {
		t.Fatal("lengths differ")
	}
	for k, e1 := range d1.Entries {
		e2, ok := d2.Lookup(k)
		if !ok || e1 != e2 {
			t.Fatalf("entry %v differs: %v vs %v", k, e1, e2)
		}
	}
}

func TestBestAndTimeOf(t *testing.T) {
	d := collectTiny(t)
	p := featspace.Point{Nodes: 4, PPN: 2, MsgBytes: 1024}
	alg, best, ok := d.Best(coll.Bcast, p)
	if !ok {
		t.Fatal("Best found nothing")
	}
	for _, a := range coll.AlgorithmNames(coll.Bcast) {
		tm, ok := d.TimeOf(coll.Bcast, a, p)
		if !ok {
			t.Fatalf("missing %s", a)
		}
		if tm < best {
			t.Errorf("Best returned %s (%v) but %s is faster (%v)", alg, best, a, tm)
		}
	}
	if _, _, ok := d.Best(coll.Bcast, featspace.Point{Nodes: 999, PPN: 1, MsgBytes: 8}); ok {
		t.Error("Best on missing point should report !ok")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := collectTiny(t)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("loaded %d entries, want %d", d2.Len(), d.Len())
	}
	for k, e := range d.Entries {
		if e2, ok := d2.Lookup(k); !ok || e2 != e {
			t.Fatalf("entry %v lost in round trip", k)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	b := New()
	k1 := Key{Coll: coll.Bcast, Alg: "binomial", Point: featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 8}}
	k2 := Key{Coll: coll.Bcast, Alg: "binomial", Point: featspace.Point{Nodes: 4, PPN: 1, MsgBytes: 8}}
	a.Put(k1, Entry{MeanTime: 1})
	b.Put(k1, Entry{MeanTime: 2})
	b.Put(k2, Entry{MeanTime: 3})
	a.Merge(b)
	if e, _ := a.Lookup(k1); e.MeanTime != 2 {
		t.Error("Merge did not overwrite")
	}
	if a.Len() != 2 {
		t.Errorf("merged length = %d", a.Len())
	}
}

func TestReplayMeasure(t *testing.T) {
	d := collectTiny(t)
	rp := &Replay{DS: d, Alloc: cluster.TopologyTwoPairs()}
	spec := benchmark.Spec{Coll: coll.Reduce, Alg: "binomial",
		Point: featspace.Point{Nodes: 2, PPN: 1, MsgBytes: 64}}
	m, err := rp.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanTime <= 0 || m.WallTime <= 0 {
		t.Errorf("replayed measurement %+v", m)
	}
	if _, err := rp.Measure(benchmark.Spec{Coll: coll.Reduce, Alg: "binomial",
		Point: featspace.Point{Nodes: 999, PPN: 1, MsgBytes: 64}}); err == nil {
		t.Error("missing configuration should error")
	}
	if rp.MaxNodes() != 64 {
		t.Errorf("MaxNodes = %d", rp.MaxNodes())
	}
}

func TestReplayWaveFasterOnParallelTopology(t *testing.T) {
	d := collectTiny(t)
	specs := make([]benchmark.Spec, 6)
	for i := range specs {
		specs[i] = benchmark.Spec{Coll: coll.Bcast, Alg: "binomial",
			Point: featspace.Point{Nodes: 4, PPN: 1, MsgBytes: 1024}}
	}
	serialTopo := &Replay{DS: d, Alloc: cluster.TopologySingleRack()}
	parallelTopo := &Replay{DS: d, Alloc: cluster.TopologyMaxParallel()}
	_, tSerial, err := serialTopo.MeasureWave(specs)
	if err != nil {
		t.Fatal(err)
	}
	ms, tParallel, err := parallelTopo.MeasureWave(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(specs) {
		t.Fatalf("wave measurements = %d", len(ms))
	}
	if tParallel >= tSerial {
		t.Errorf("max-parallel replay %v not faster than single-rack %v", tParallel, tSerial)
	}
}

func TestNonP2PointGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	space := featspace.P2Grid(64, 4, 8, 4096)
	nodesSet := NonP2NodesPoints(rng, space)
	if len(nodesSet) == 0 {
		t.Fatal("empty non-P2 nodes set")
	}
	for _, p := range nodesSet {
		if featspace.IsP2(p.Nodes) {
			t.Errorf("point %v has P2 node count", p)
		}
		if !featspace.IsP2(p.MsgBytes) {
			t.Errorf("point %v should keep P2 message size", p)
		}
	}
	msgSet := NonP2MsgPoints(rng, space)
	if len(msgSet) == 0 {
		t.Fatal("empty non-P2 message set")
	}
	for _, p := range msgSet {
		if featspace.IsP2(p.MsgBytes) {
			t.Errorf("point %v has P2 message size", p)
		}
		if !featspace.IsP2(p.Nodes) {
			t.Errorf("point %v should keep P2 node count", p)
		}
	}
}

func TestCollectProgress(t *testing.T) {
	alloc := cluster.TopologyTwoPairs()
	r, _ := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, benchmark.Config{})
	var calls int
	var last int
	pts := []featspace.Point{{Nodes: 2, PPN: 1, MsgBytes: 8}, {Nodes: 2, PPN: 1, MsgBytes: 16}}
	_, err := Collect(r, pts, CollectOptions{
		Collectives: []coll.Collective{coll.Bcast},
		Workers:     1,
		Progress:    func(done, total int) { calls++; last = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := coll.NumAlgorithms(coll.Bcast) * 2
	if calls != wantTotal || last != wantTotal {
		t.Errorf("progress calls=%d last total=%d, want %d", calls, last, wantTotal)
	}
}
