// Package exhaustive implements the brute-force tuning strategy of
// production tools like Intel MPITune and OPTO (Chaarawi et al.), which
// the paper's Section I positions ML autotuners against: benchmark
// every algorithm at every scenario of interest and pick the winner.
// Selections are exact for the scenarios benchmarked, but the cost
// grows with the full scenario-algorithm cross product and nothing is
// learned about unseen scenarios — the paper's argument for ML.
package exhaustive

import (
	"fmt"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
)

// Result is a tuned scenario table for one collective.
type Result struct {
	Coll     coll.Collective
	Best     map[featspace.Point]string // winner per benchmarked scenario
	Ledger   autotune.Ledger
	Fallback func(featspace.Point) string // for scenarios never benchmarked
}

// Select returns the benchmarked winner, or the fallback (the library
// default, typically) for scenarios outside the tuned set.
func (r *Result) Select(p featspace.Point) string {
	if alg, ok := r.Best[p]; ok {
		return alg
	}
	if r.Fallback != nil {
		return r.Fallback(p)
	}
	return coll.AlgorithmNames(r.Coll)[0]
}

// Tune benchmarks every algorithm at every scenario and records the
// winners. The machine time charged is the full cross product — the
// cost that makes this strategy impractical at scale (Section I).
func Tune(backend autotune.Backend, c coll.Collective, scenarios []featspace.Point,
	fallback func(featspace.Point) string) (*Result, error) {

	res := &Result{Coll: c, Best: make(map[featspace.Point]string, len(scenarios)), Fallback: fallback}
	for _, p := range scenarios {
		if !p.Valid() || p.Nodes > backend.MaxNodes() {
			continue
		}
		bestAlg, bestT := "", 0.0
		for _, alg := range coll.AlgorithmNames(c) {
			m, err := backend.Measure(benchmark.Spec{Coll: c, Alg: alg, Point: p})
			if err != nil {
				return nil, fmt.Errorf("exhaustive: %w", err)
			}
			res.Ledger.Collection += m.WallTime
			if bestAlg == "" || m.MeanTime < bestT {
				bestAlg, bestT = alg, m.MeanTime
			}
		}
		if bestAlg != "" {
			res.Best[p] = bestAlg
		}
	}
	return res, nil
}
