package exhaustive

import (
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

func testSetup(t *testing.T) (*dataset.Replay, featspace.Space) {
	t.Helper()
	space := featspace.Space{Nodes: []int{2, 4, 8}, PPNs: []int{1, 2}, Msgs: []int{8, 1024, 65536}}
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Collect(r, space.Points(), dataset.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Replay{DS: ds, Alloc: cluster.TopologyTwoPairs()}, space
}

func TestTuneIsExactOnScenarios(t *testing.T) {
	rp, space := testSetup(t)
	res, err := Tune(rp, coll.Bcast, space.Points(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive selections must be optimal: slowdown exactly 1.
	sd, err := autotune.EvalSlowdown(rp.DS, coll.Bcast, space.Points(), res)
	if err != nil {
		t.Fatal(err)
	}
	if sd != 1 {
		t.Errorf("exhaustive slowdown = %v, want exactly 1", sd)
	}
}

func TestTuneChargesFullCrossProduct(t *testing.T) {
	rp, space := testSetup(t)
	res, err := Tune(rp, coll.Reduce, space.Points(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, p := range space.Points() {
		for _, alg := range coll.AlgorithmNames(coll.Reduce) {
			m, err := rp.Measure(benchmark.Spec{Coll: coll.Reduce, Alg: alg, Point: p})
			if err != nil {
				t.Fatal(err)
			}
			want += m.WallTime
		}
	}
	if res.Ledger.Collection != want {
		t.Errorf("collection = %v, want %v (the whole cross product)", res.Ledger.Collection, want)
	}
}

func TestFallbackForUnseenScenarios(t *testing.T) {
	rp, space := testSetup(t)
	res, err := Tune(rp, coll.Bcast, space.Points(), func(featspace.Point) string { return "binomial" })
	if err != nil {
		t.Fatal(err)
	}
	unseen := featspace.Point{Nodes: 4, PPN: 2, MsgBytes: 12345}
	if got := res.Select(unseen); got != "binomial" {
		t.Errorf("fallback selection = %q", got)
	}
	// Without a fallback, it degrades to the first registered algorithm.
	res.Fallback = nil
	if got := res.Select(unseen); got != coll.AlgorithmNames(coll.Bcast)[0] {
		t.Errorf("no-fallback selection = %q", got)
	}
}

func TestTuneSkipsInfeasible(t *testing.T) {
	rp, _ := testSetup(t)
	pts := []featspace.Point{
		{Nodes: 2, PPN: 1, MsgBytes: 8},
		{Nodes: 9999, PPN: 1, MsgBytes: 8}, // beyond the allocation
		{Nodes: 1, PPN: 1, MsgBytes: 8},    // single rank
	}
	res, err := Tune(rp, coll.Bcast, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) != 1 {
		t.Errorf("tuned %d scenarios, want 1", len(res.Best))
	}
}
