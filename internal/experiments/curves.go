package experiments

import (
	"fmt"
	"math"

	"acclaim/internal/autotune"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/fact"
	"acclaim/internal/featspace"
	"acclaim/internal/hunold"
	"acclaim/internal/stats"
)

// DefaultFractions is the training-data-fraction axis of the learning
// curve figures (3, 5, 11), as shares of the candidate pool.
var DefaultFractions = []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.60}

// hunoldTuner builds the Hunold baseline over the lab.
func (l *Lab) hunoldTuner() *hunold.Tuner {
	return hunold.New(hunold.Config{
		Space:  l.Space,
		Forest: l.ForestConfig,
		Seed:   l.Seed + 100,
	}, l.Backend())
}

// factTuner builds the FACT baseline. maxPoolFrac, when positive, caps
// training collection at that share of the candidate pool and disables
// convergence, producing a full selection order for learning curves.
func (l *Lab) factTuner(c coll.Collective, maxPoolFrac float64) *fact.Tuner {
	cfg := fact.Config{
		Space:  l.Space,
		Forest: l.ForestConfig,
		Seed:   l.Seed + 200,
	}
	if maxPoolFrac > 0 {
		pool := len(autotune.Candidates(c, l.Space, l.Backend().MaxNodes()))
		cfg.MaxPoints = int(maxPoolFrac * float64(pool))
		cfg.Criterion = 1.0 // unreachable: collect the full order
		cfg.CheckEvery = 50 // convergence checks are pointless here
	}
	return fact.New(cfg, l.Backend())
}

// acclaimTuner builds an ACCLAiM tuner. Sequential by default (batch
// collection is evaluated separately in Figure 13).
func (l *Lab) acclaimTuner(mutate func(*core.Config)) *core.Tuner {
	cfg := core.Config{
		Space:  l.Space,
		Forest: l.ForestConfig,
		Seed:   l.Seed + 300,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg, l.Backend())
}

// Fig3Row is one x-position of Figure 3: average slowdown of the two
// prior-work autotuners at a training-data fraction, aggregated over
// the four collectives.
type Fig3Row struct {
	Fraction float64
	Hunold   float64
	FACT     float64
}

// Fig3 reproduces Figure 3 (Hunold et al. vs FACT data efficiency).
// Expected shape: FACT stays below the 1.03 convergence criterion with
// far less training data than Hunold's random sampling needs.
func Fig3(l *Lab, fracs []float64) ([]Fig3Row, error) {
	if fracs == nil {
		fracs = DefaultFractions
	}
	maxFrac := fracs[len(fracs)-1]
	sums := make([]Fig3Row, len(fracs))
	for i := range sums {
		sums[i].Fraction = fracs[i]
	}
	for _, c := range coll.PaperCollectives() {
		eval := l.EvalFor(c, l.Space.Points())

		hCurve, err := l.hunoldTuner().LearningCurve(c, fracs, eval)
		if err != nil {
			return nil, fmt.Errorf("fig3 hunold %v: %w", c, err)
		}
		ft := l.factTuner(c, maxFrac)
		fres, err := ft.Tune(c)
		if err != nil {
			return nil, fmt.Errorf("fig3 fact %v: %w", c, err)
		}
		// FACT's order covers maxFrac of the pool; rescale pool
		// fractions to order fractions.
		orderFracs := make([]float64, len(fracs))
		for i, f := range fracs {
			orderFracs[i] = math.Min(f/maxFrac, 1)
		}
		fCurve, err := ft.LearningCurve(fres, orderFracs, eval)
		if err != nil {
			return nil, fmt.Errorf("fig3 fact curve %v: %w", c, err)
		}
		if len(hCurve) != len(fracs) || len(fCurve) != len(fracs) {
			return nil, fmt.Errorf("fig3 %v: curve lengths %d/%d, want %d", c, len(hCurve), len(fCurve), len(fracs))
		}
		for i := range fracs {
			sums[i].Hunold += hCurve[i].Slowdown
			sums[i].FACT += fCurve[i].Slowdown
		}
	}
	n := float64(len(coll.PaperCollectives()))
	for i := range sums {
		sums[i].Hunold /= n
		sums[i].FACT /= n
	}
	return sums, nil
}

// Fig5Series is one curve of Figure 5: FACT's bcast slowdown on a test
// set as a function of training data (always P2-only training).
type Fig5Series struct {
	TestSet string
	Curve   []autotune.CurvePoint
}

// Fig5 reproduces Figure 5 (FACT on P2 and non-P2 test sets,
// MPI_Bcast). Expected shape: "All P2" near-optimal with enough data;
// "Non-P2 Nodes" the correct shape at a higher level; "Non-P2 Message
// Size" substantially worse everywhere — the model cannot learn trends
// it never saw.
func Fig5(l *Lab, fracs []float64) ([]Fig5Series, error) {
	if fracs == nil {
		fracs = DefaultFractions
	}
	const c = coll.Bcast
	maxFrac := fracs[len(fracs)-1]
	ft := l.factTuner(c, maxFrac)
	res, err := ft.Tune(c)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	orderFracs := make([]float64, len(fracs))
	for i, f := range fracs {
		orderFracs[i] = math.Min(f/maxFrac, 1)
	}
	sets := []struct {
		name string
		pts  []featspace.Point
	}{
		{"All P2", l.Space.Points()},
		{"Non-P2 Nodes", l.NonP2Nodes},
		{"Non-P2 Message Size", l.NonP2Msgs},
	}
	var out []Fig5Series
	for _, set := range sets {
		curve, err := ft.LearningCurve(res, orderFracs, l.EvalFor(c, set.pts))
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", set.name, err)
		}
		// Report pool fractions on the x-axis.
		for i := range curve {
			curve[i].Fraction = fracs[i]
		}
		out = append(out, Fig5Series{TestSet: set.name, Curve: curve})
	}
	return out, nil
}

// Fig11Series is one training-data split of Figure 11: ACCLAiM's bcast
// slowdown on the P2 and non-P2-message test sets.
type Fig11Series struct {
	Split      string
	NonP2Every int
	P2Curve    []autotune.CurvePoint
	NonP2Curve []autotune.CurvePoint
}

// Fig11 reproduces Figure 11 (non-P2 training data incorporation).
// Expected shape: all-P2 training fails on the non-P2 test set; the
// 50-50 split fixes non-P2 at the cost of P2 accuracy; the 80-20 split
// (every 5th point) keeps both low — the "Goldilocks" balance.
func Fig11(l *Lab, fracs []float64) ([]Fig11Series, error) {
	if fracs == nil {
		fracs = DefaultFractions
	}
	const c = coll.Bcast
	pool := len(autotune.Candidates(c, l.Space, l.Backend().MaxNodes()))
	maxFrac := fracs[len(fracs)-1]
	target := int(maxFrac * float64(pool))

	splits := []struct {
		name  string
		every int
	}{
		{"All P2", -1},
		{"50-50", 2},
		{"80-20 (ACCLAiM)", 5},
	}
	var out []Fig11Series
	for _, sp := range splits {
		tuner := l.acclaimTuner(func(cfg *core.Config) {
			cfg.NonP2Every = sp.every
			cfg.Epsilon = 1e-12 // never converge: collect the whole order
			cfg.MaxIterations = target
		})
		res, err := tuner.Tune(c)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", sp.name, err)
		}
		p2Curve, err := tuner.LearningCurve(res, fracsToOrder(fracs, maxFrac), l.EvalFor(c, l.Space.Points()))
		if err != nil {
			return nil, err
		}
		npCurve, err := tuner.LearningCurve(res, fracsToOrder(fracs, maxFrac), l.EvalFor(c, l.NonP2Msgs))
		if err != nil {
			return nil, err
		}
		for i := range p2Curve {
			p2Curve[i].Fraction = fracs[i]
			npCurve[i].Fraction = fracs[i]
		}
		out = append(out, Fig11Series{Split: sp.name, NonP2Every: sp.every, P2Curve: p2Curve, NonP2Curve: npCurve})
	}
	return out, nil
}

func fracsToOrder(fracs []float64, maxFrac float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = math.Min(f/maxFrac, 1)
	}
	return out
}

// ConvergenceTime returns the collection time at which a slowdown curve
// first reaches the convergence criterion, or NaN if it never does.
func ConvergenceTime(curve []autotune.CurvePoint) float64 {
	for _, p := range curve {
		if p.Slowdown <= stats.ConvergenceCriterion {
			return p.CollectionTime
		}
	}
	return math.NaN()
}
