package experiments

import (
	"math"
	"strings"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/stats"
)

// tinyLab is shared across tests in this package; collection is fast on
// the tiny grid.
var tinyLabCache *Lab

func tinyLab(t testing.TB) *Lab {
	t.Helper()
	if tinyLabCache != nil {
		return tinyLabCache
	}
	l, err := NewLab(TinySpace(), "", 77)
	if err != nil {
		t.Fatal(err)
	}
	tinyLabCache = l
	return l
}

func TestNewLabCollectsEverything(t *testing.T) {
	l := tinyLab(t)
	// Grid + two non-P2 test sets, for all four collectives.
	if l.DS.Len() == 0 {
		t.Fatal("empty dataset")
	}
	for _, p := range l.NonP2Nodes {
		if _, _, ok := l.DS.Best(coll.Bcast, p); !ok {
			t.Fatalf("non-P2 nodes point %v missing from dataset", p)
		}
	}
	for _, p := range l.NonP2Msgs {
		if _, _, ok := l.DS.Best(coll.Bcast, p); !ok {
			t.Fatalf("non-P2 msg point %v missing from dataset", p)
		}
	}
}

func TestLabCache(t *testing.T) {
	path := t.TempDir() + "/lab.gob"
	l1, err := NewLab(TinySpace(), path, 5)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLab(TinySpace(), path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l1.DS.Len() != l2.DS.Len() {
		t.Error("cache round trip changed the dataset")
	}
}

func TestFig3Shape(t *testing.T) {
	l := tinyLab(t)
	rows, err := Fig3(l, []float64{0.1, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Hunold < 1 || r.FACT < 1 {
			t.Errorf("slowdowns below 1: %+v", r)
		}
	}
	// With most of the pool, both reach low slowdown; FACT should not be
	// dramatically worse than Hunold anywhere.
	last := rows[len(rows)-1]
	if last.FACT > 1.2 || last.Hunold > 1.2 {
		t.Errorf("high-data slowdowns too large: %+v", last)
	}
	if out := ReportFig3(rows); !strings.Contains(out, "Figure 3") {
		t.Error("report missing header")
	}
}

func TestFig4Shape(t *testing.T) {
	rows, agg := Fig4(42)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if agg < 0.10 || agg > 0.25 {
		t.Errorf("aggregate = %v, want ~0.157", agg)
	}
	if out := ReportFig4(rows, agg); !strings.Contains(out, "unavailable") {
		t.Error("report missing the ParaDis gap")
	}
}

func TestFig5Shape(t *testing.T) {
	l := tinyLab(t)
	series, err := Fig5(l, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byName := map[string][]float64{}
	for _, s := range series {
		for _, p := range s.Curve {
			byName[s.TestSet] = append(byName[s.TestSet], p.Slowdown)
		}
	}
	// The Section III-B failure: with plentiful data, the P2-trained
	// model must do worse on non-P2 message sizes than on P2 points.
	p2 := byName["All P2"]
	np := byName["Non-P2 Message Size"]
	if np[len(np)-1] <= p2[len(p2)-1] {
		t.Errorf("non-P2 msg slowdown %v not above P2 %v", np[len(np)-1], p2[len(p2)-1])
	}
	_ = ReportFig5(series)
}

func TestFig6Shape(t *testing.T) {
	l := tinyLab(t)
	rows, err := Fig6(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TestTime <= 0 {
			t.Errorf("%v: no test time", r.Coll)
		}
		if r.TrainTime <= 0 {
			t.Errorf("%v: no training time", r.Coll)
		}
	}
	_ = ReportFig6(rows)
}

func TestFig7Shape(t *testing.T) {
	l := tinyLab(t)
	pts, err := Fig7(l, coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("trace too short: %d", len(pts))
	}
	// Variance rises while active learning uncovers structure, then
	// settles: the run must end below its variance peak, and the model
	// quality at the end must be at least as good as at the peak —
	// variance and slowdown co-trend (the Figure 7 claim).
	last := pts[len(pts)-1]
	peakVar, sdAtPeak := 0.0, 0.0
	for _, p := range pts {
		if p.Variance > peakVar {
			peakVar, sdAtPeak = p.Variance, p.Slowdown
		}
	}
	if last.Variance >= peakVar {
		t.Errorf("run ended at the variance peak: %v >= %v", last.Variance, peakVar)
	}
	if last.Slowdown > sdAtPeak+0.05 {
		t.Errorf("slowdown at convergence (%v) worse than at the variance peak (%v)", last.Slowdown, sdAtPeak)
	}
	_ = ReportFig7(pts)
}

func TestFig9RulesFile(t *testing.T) {
	l := tinyLab(t)
	f, err := Fig9(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Tables) != 4 {
		t.Errorf("tables = %d", len(f.Tables))
	}
}

func TestFig10Shape(t *testing.T) {
	l := tinyLab(t)
	rows, cum, err := Fig10(l, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	converged := 0
	for _, r := range rows {
		if !math.IsNaN(r.ACCLAiMConv) {
			converged++
		}
	}
	if converged == 0 {
		t.Error("ACCLAiM converged for no collective")
	}
	_ = ReportFig10(rows, cum)
}

func TestFig11Structure(t *testing.T) {
	l := tinyLab(t)
	series, err := Fig11(l, []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.P2Curve) != 2 || len(s.NonP2Curve) != 2 {
			t.Fatalf("%s: curve lengths %d/%d", s.Split, len(s.P2Curve), len(s.NonP2Curve))
		}
		for i := range s.P2Curve {
			if s.P2Curve[i].Slowdown < 1 || s.NonP2Curve[i].Slowdown < 1 {
				t.Errorf("%s: slowdown below 1", s.Split)
			}
		}
	}
	_ = ReportFig11(series)
	// The Goldilocks shape itself (80-20 fixing non-P2 without hurting
	// P2) needs the full-scale grid's crossover density; it is asserted
	// against the SimSpace run in EXPERIMENTS.md and exercised by
	// BenchmarkFig11. Here we verify the underlying mechanism: a model
	// given non-P2 training coverage must fix the non-P2 test set.
	sdP2Only, sdWithNP := fig11Mechanism(t, l)
	if sdWithNP >= sdP2Only {
		t.Errorf("non-P2 coverage did not improve non-P2 slowdown: %v vs %v", sdWithNP, sdP2Only)
	}
}

// fig11Mechanism trains unified bcast models with and without full
// non-P2 message coverage and returns their non-P2 test slowdowns.
func fig11Mechanism(t *testing.T, l *Lab) (p2Only, withNonP2 float64) {
	t.Helper()
	train := func(pts []featspace.Point) float64 {
		ts := autotune.NewTrainingSet(coll.Bcast)
		for _, p := range pts {
			for ai, a := range coll.AlgorithmNames(coll.Bcast) {
				mean, ok := l.DS.TimeOf(coll.Bcast, a, p)
				if !ok {
					t.Fatalf("missing %v at %v", a, p)
				}
				ts.Add(autotune.Candidate{Point: p, Alg: a, AlgIdx: ai}, mean, mean)
			}
		}
		m, err := autotune.TrainModel(l.ForestConfig, ts)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := autotune.EvalSlowdown(l.DS, coll.Bcast, l.NonP2Msgs, m)
		if err != nil {
			t.Fatal(err)
		}
		return sd
	}
	p2Only = train(l.Space.Points())
	withNonP2 = train(append(append([]featspace.Point{}, l.Space.Points()...), l.NonP2Msgs...))
	return p2Only, withNonP2
}

func TestFig12Shape(t *testing.T) {
	l := tinyLab(t)
	rows, ratio, err := Fig12(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.VarConvTime) {
			t.Errorf("%v: variance criterion never fired", r.Coll)
			continue
		}
		// The model at variance convergence must be usable (the paper
		// accepts up to ~1.04).
		if r.SlowdownAtVarConv > 1.25 {
			t.Errorf("%v: slowdown at variance convergence = %v", r.Coll, r.SlowdownAtVarConv)
		}
	}
	_ = ReportFig12(rows, ratio)
}

func TestFig13Shape(t *testing.T) {
	l := tinyLab(t)
	rows, err := Fig13(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 4 collectives x 4 topologies", len(rows))
	}
	speedups := map[string]float64{}
	for _, r := range rows {
		if r.Speedup < 0.99 {
			t.Errorf("%v/%s speedup %v < 1", r.Coll, r.Topology, r.Speedup)
		}
		speedups[r.Topology] += r.Speedup
	}
	// More parallel topologies must help at least as much as the single
	// rack on aggregate.
	if speedups["Max Parallel"] <= speedups["Single Rack"] {
		t.Errorf("max parallel (%v) not faster than single rack (%v)",
			speedups["Max Parallel"], speedups["Single Rack"])
	}
	_ = ReportFig13(rows)
}

func TestFig14Small(t *testing.T) {
	// A scaled-down production run: 16 nodes, 2 ppn.
	rows, total, err := Fig14(16, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if total <= 0 {
		t.Error("no training time")
	}
	for _, r := range rows {
		if r.Samples == 0 || r.TrainTime <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	_ = ReportFig14(rows, total)
}

func TestFig15Math(t *testing.T) {
	rows := Fig15(3.6e9, nil) // one hour of training
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// 1.01 speedup: Rmin = T*1.01/0.01 = 101 hours for T = 1h.
	for _, r := range rows {
		if r.AppSpeedup == 1.01 {
			if math.Abs(r.MinRuntimeHours-101) > 0.5 {
				t.Errorf("Rmin(1.01) = %v, want ~101", r.MinRuntimeHours)
			}
		}
	}
	// Higher speedups need shorter runtimes.
	for i := 1; i < len(rows); i++ {
		if rows[i].MinRuntimeHours >= rows[i-1].MinRuntimeHours {
			t.Error("Rmin not decreasing in speedup")
		}
	}
	_ = ReportFig15(rows, 3.6e9)
}

func TestConvergenceTimeHelper(t *testing.T) {
	cp := ConvergenceTime([]autotune.CurvePoint{
		{CollectionTime: 10, Slowdown: 1.5},
		{CollectionTime: 20, Slowdown: stats.ConvergenceCriterion},
		{CollectionTime: 30, Slowdown: 1.01},
	})
	if cp != 20 {
		t.Errorf("ConvergenceTime = %v, want 20", cp)
	}
	if !math.IsNaN(ConvergenceTime(nil)) {
		t.Error("empty curve should give NaN")
	}
}
