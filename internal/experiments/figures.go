package experiments

import (
	"fmt"
	"math"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/core"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
	"acclaim/internal/rules"
	"acclaim/internal/stats"
	"acclaim/internal/traces"
)

// Fig4 reproduces Figure 4: the share of non-power-of-two message sizes
// per application and job scale, with the aggregate. Expected shape:
// ~15.7% aggregate, per-app shares stable across scales, ParaDis
// missing at 1024 nodes.
func Fig4(seed int64) ([]traces.ProfileRow, float64) {
	rows := traces.ProfileAll(seed)
	return rows, traces.AggregateNonP2(rows)
}

// Fig6Row compares test-set and training-set collection time for one
// collective under FACT.
type Fig6Row struct {
	Coll      coll.Collective
	TrainTime float64 // machine time for training data (us)
	TestTime  float64 // machine time for the 20% test set (us)
	Ratio     float64 // TestTime / TrainTime
}

// Fig6 reproduces Figure 6: the test set's collection time dwarfs the
// training data's (6–11x in the paper) because FACT needs ~1% of the
// space for training but 20% x all algorithms for testing.
func Fig6(l *Lab) ([]Fig6Row, error) {
	var out []Fig6Row
	for _, c := range coll.PaperCollectives() {
		res, err := l.factTuner(c, 0).Tune(c)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v: %w", c, err)
		}
		r := Fig6Row{Coll: c, TrainTime: res.Ledger.Collection, TestTime: res.Ledger.Testing}
		if r.TrainTime > 0 {
			r.Ratio = r.TestTime / r.TrainTime
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig7Point is one training iteration of Figure 7: cumulative variance
// and average slowdown against cumulative collection time.
type Fig7Point struct {
	Time     float64
	Variance float64
	Slowdown float64
}

// Fig7 reproduces Figure 7: cumulative jackknife variance tracks
// average slowdown over training time, justifying variance as a
// test-set-free convergence proxy.
func Fig7(l *Lab, c coll.Collective) ([]Fig7Point, error) {
	tuner := l.acclaimTuner(func(cfg *core.Config) {
		cfg.Evaluator = l.Eval(l.Space.Points())
	})
	res, err := tuner.Tune(c)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	out := make([]Fig7Point, len(res.Trace))
	for i, tp := range res.Trace {
		out[i] = Fig7Point{Time: tp.CollectionTime, Variance: tp.CumVariance, Slowdown: tp.Slowdown}
	}
	return out, nil
}

// Fig9 demonstrates the Section V configuration-file generation: it
// trains ACCLAiM on the paper's collectives and lowers the models into
// a validated MPICH-style JSON rule file.
func Fig9(l *Lab) (*rules.File, error) {
	tuner := l.acclaimTuner(nil)
	results, err := tuner.TuneAll(coll.PaperCollectives())
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	return tuner.BuildRulesFile(results, "simulated-testbed")
}

// Fig10Row compares time-to-convergence of ACCLAiM's jackknife point
// selection against FACT's surrogate-driven selection for one
// collective. Curves give avg slowdown vs collection time; ConvTime is
// the first time the 1.03 criterion is met (NaN if never).
type Fig10Row struct {
	Coll        coll.Collective
	ACCLAiM     []autotune.CurvePoint
	FACT        []autotune.CurvePoint
	ACCLAiMConv float64
	FACTConv    float64
	Speedup     float64 // FACTConv / ACCLAiMConv
}

// fineFractions gives a dense x-axis for time-to-convergence curves.
func fineFractions(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / float64(n)
	}
	return out
}

// Fig10 reproduces Figure 10: ACCLAiM's model-specific jackknife
// selections reach the convergence criterion in less collection time
// than FACT's surrogate selections (up to 2.3x in the paper, 2.25x
// cumulatively). Both tuners collect sequentially here; parallel
// collection is Figure 13's subject.
func Fig10(l *Lab, maxPoolFrac float64) ([]Fig10Row, float64, error) {
	if maxPoolFrac == 0 {
		maxPoolFrac = 0.5
	}
	fracs := fineFractions(25)
	var rows []Fig10Row
	var cumA, cumF float64
	for _, c := range coll.PaperCollectives() {
		eval := l.EvalFor(c, l.Space.Points())

		pool := len(autotune.Candidates(c, l.Space, l.Backend().MaxNodes()))
		target := int(maxPoolFrac * float64(pool))
		at := l.acclaimTuner(func(cfg *core.Config) {
			cfg.Epsilon = 1e-12
			cfg.MaxIterations = target
		})
		ares, err := at.Tune(c)
		if err != nil {
			return nil, 0, fmt.Errorf("fig10 acclaim %v: %w", c, err)
		}
		aCurve, err := at.LearningCurve(ares, fracs, eval)
		if err != nil {
			return nil, 0, err
		}

		ft := l.factTuner(c, maxPoolFrac)
		fres, err := ft.Tune(c)
		if err != nil {
			return nil, 0, fmt.Errorf("fig10 fact %v: %w", c, err)
		}
		fCurve, err := ft.LearningCurve(fres, fracs, eval)
		if err != nil {
			return nil, 0, err
		}

		row := Fig10Row{
			Coll:        c,
			ACCLAiM:     aCurve,
			FACT:        fCurve,
			ACCLAiMConv: ConvergenceTime(aCurve),
			FACTConv:    ConvergenceTime(fCurve),
		}
		if !math.IsNaN(row.ACCLAiMConv) && !math.IsNaN(row.FACTConv) && row.ACCLAiMConv > 0 {
			row.Speedup = row.FACTConv / row.ACCLAiMConv
			cumA += row.ACCLAiMConv
			cumF += row.FACTConv
		}
		rows = append(rows, row)
	}
	cum := math.NaN()
	if cumA > 0 {
		cum = cumF / cumA
	}
	return rows, cum, nil
}

// Fig12Row compares the two convergence criteria for one collective.
type Fig12Row struct {
	Coll              coll.Collective
	Trace             []autotune.TracePoint
	VarConvTime       float64 // when the cumulative-variance window fires
	SlowdownConvTime  float64 // when avg slowdown first reaches 1.03
	SlowdownAtVarConv float64 // model quality at the variance convergence
}

// Fig12 reproduces Figure 12: the cumulative-variance criterion stops
// training close to where the average-slowdown criterion would, while
// collecting no test data at all. The paper accepts variance
// convergences slightly past or before the slowdown point if the
// resulting models perform nearly equally (theirs lands at 1.04 on two
// collectives, 1.19x faster overall).
func Fig12(l *Lab) ([]Fig12Row, float64, error) {
	var rows []Fig12Row
	var sumVar, sumSlow float64
	for _, c := range coll.PaperCollectives() {
		tuner := l.acclaimTuner(func(cfg *core.Config) {
			cfg.Evaluator = l.Eval(l.Space.Points())
		})
		res, err := tuner.Tune(c)
		if err != nil {
			return nil, 0, fmt.Errorf("fig12 %v: %w", c, err)
		}
		row := Fig12Row{Coll: c, Trace: res.Trace,
			VarConvTime: math.NaN(), SlowdownConvTime: math.NaN()}
		if res.Converged {
			last := res.Trace[len(res.Trace)-1]
			row.VarConvTime = last.CollectionTime
			row.SlowdownAtVarConv = last.Slowdown
		}
		for _, tp := range res.Trace {
			if tp.Slowdown <= stats.ConvergenceCriterion {
				row.SlowdownConvTime = tp.CollectionTime
				break
			}
		}
		if !math.IsNaN(row.VarConvTime) && !math.IsNaN(row.SlowdownConvTime) {
			sumVar += row.VarConvTime
			sumSlow += row.SlowdownConvTime
		}
		rows = append(rows, row)
	}
	ratio := math.NaN()
	if sumVar > 0 {
		ratio = sumSlow / sumVar
	}
	return rows, ratio, nil
}

// Fig13Row is one (collective, topology) cell of Figure 13.
type Fig13Row struct {
	Coll           coll.Collective
	Topology       string
	SeqTime        float64
	ParTime        float64
	Speedup        float64
	MaxParallelism int
	AvgParallelism float64
}

// Topologies returns the four Figure 13 layouts by name.
func Topologies() map[string]cluster.Allocation {
	return map[string]cluster.Allocation{
		"Single Rack":  cluster.TopologySingleRack(),
		"Rack Pair":    cluster.TopologyRackPair(),
		"Two Pairs":    cluster.TopologyTwoPairs(),
		"Max Parallel": cluster.TopologyMaxParallel(),
	}
}

// TopologyOrder gives a stable presentation order.
func TopologyOrder() []string {
	return []string{"Single Rack", "Rack Pair", "Two Pairs", "Max Parallel"}
}

// Fig13 reproduces Figure 13: the training benchmarks ACCLAiM selects
// are replayed across four allocation topologies, sequentially and as
// topology-scheduled parallel waves. Expected shape: 1x on the single
// rack rising to ~1.4x with 1–4-way parallelism on scattered
// allocations.
func Fig13(l *Lab) ([]Fig13Row, error) {
	var out []Fig13Row
	for _, c := range coll.PaperCollectives() {
		// The benchmark sequence: ACCLAiM's selection order.
		res, err := l.acclaimTuner(nil).Tune(c)
		if err != nil {
			return nil, fmt.Errorf("fig13 %v: %w", c, err)
		}
		specs := make([]benchmark.Spec, len(res.Order))
		var seq float64
		for i, s := range res.Order {
			specs[i] = s.Candidate.Spec(c)
			seq += s.Wall
		}
		for _, name := range TopologyOrder() {
			alloc := Topologies()[name]
			rp := &dataset.Replay{DS: l.DS, Alloc: alloc}
			_, par, err := rp.MeasureWave(specs)
			if err != nil {
				return nil, fmt.Errorf("fig13 %v on %s: %w", c, name, err)
			}
			// Recover wave sizes for the parallelism histogram.
			waves, err := planWaves(alloc, specs)
			if err != nil {
				return nil, err
			}
			maxPar, avgPar := 0, 0.0
			for _, w := range waves {
				if w > maxPar {
					maxPar = w
				}
				avgPar += float64(w)
			}
			if len(waves) > 0 {
				avgPar /= float64(len(waves))
			}
			out = append(out, Fig13Row{
				Coll: c, Topology: name,
				SeqTime: seq, ParTime: par, Speedup: seq / par,
				MaxParallelism: maxPar, AvgParallelism: avgPar,
			})
		}
	}
	return out, nil
}

// Fig14Row is one collective's production training run.
type Fig14Row struct {
	Coll        coll.Collective
	TrainTime   float64 // virtual machine time (us)
	Samples     int
	Converged   bool
	MaxWaveSize int
}

// Fig14 reproduces Figure 14: ACCLAiM trained live on a
// leadership-class machine (Theta-sized, best-effort allocation,
// sampled per-job environment) at production scale. Expected shape:
// convergence within minutes of machine time, not hours. nodes and
// maxPPN scale the experiment (the paper uses 128 nodes, 16 ppn).
func Fig14(nodes, maxPPN int, seed int64) ([]Fig14Row, float64, error) {
	machine := cluster.Theta()
	rng := newRand(seed)
	alloc, err := cluster.BestEffort(machine, rng, nodes)
	if err != nil {
		return nil, 0, err
	}
	env := netmodel.SampleEnv(rng, alloc)
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), env, alloc, benchmark.Config{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	space := featspace.ProductionSpace(nodes, maxPPN)
	tuner := core.New(core.Config{
		Space:     space,
		Forest:    forestConfig(seed),
		Seed:      seed,
		Parallel:  true,
		BatchSize: 4,
	}, autotune.LiveBackend{Runner: runner})

	var rows []Fig14Row
	var total float64
	for _, c := range coll.PaperCollectives() {
		res, err := tuner.Tune(c)
		if err != nil {
			return nil, 0, fmt.Errorf("fig14 %v: %w", c, err)
		}
		maxWave := 0
		for _, w := range res.Parallelism {
			if w > maxWave {
				maxWave = w
			}
		}
		rows = append(rows, Fig14Row{
			Coll: c, TrainTime: res.Ledger.Collection,
			Samples: len(res.Order), Converged: res.Converged, MaxWaveSize: maxWave,
		})
		total += res.Ledger.Collection
	}
	return rows, total, nil
}

// Fig15Row is one speedup scenario of Figure 15.
type Fig15Row struct {
	AppSpeedup      float64 // application speedup from better selections
	MinRuntimeHours float64 // minimum app runtime to recoup training
}

// Fig15 reproduces Figure 15: the minimum application runtime R needed
// to recover a training cost T given a speedup s — the job saves
// R·(1−1/s), so break-even is R = T·s/(s−1). trainTimeUS is the
// measured total training time (from Fig14).
func Fig15(trainTimeUS float64, speedups []float64) []Fig15Row {
	if speedups == nil {
		speedups = []float64{1.005, 1.01, 1.02, 1.05, 1.10}
	}
	out := make([]Fig15Row, len(speedups))
	for i, s := range speedups {
		hours := math.Inf(1)
		if s > 1 {
			hours = trainTimeUS * s / (s - 1) / 1e6 / 3600
		}
		out[i] = Fig15Row{AppSpeedup: s, MinRuntimeHours: hours}
	}
	return out
}
