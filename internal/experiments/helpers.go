package experiments

import (
	"math/rand"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/forest"
	"acclaim/internal/sched"
)

// newRand returns a seeded RNG (a tiny alias that keeps figure code
// readable).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// forestConfig is the standard model configuration for live production
// runs.
func forestConfig(seed int64) forest.Config {
	return forest.Config{NTrees: 30, Seed: seed + 1}
}

// planWaves schedules the specs on the allocation and returns the
// benchmarks-per-wave histogram (the Figure 13(b) series).
func planWaves(alloc cluster.Allocation, specs []benchmark.Spec) ([]int, error) {
	reqs := make([]sched.Request, len(specs))
	for i, s := range specs {
		reqs[i] = sched.Request{ID: i, Nodes: s.Point.Nodes, Priority: float64(len(specs) - i)}
	}
	waves, err := sched.PlanAll(alloc, reqs)
	if err != nil {
		return nil, err
	}
	return sched.Parallelism(waves), nil
}
