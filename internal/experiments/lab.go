// Package experiments reproduces every figure of the ACCLAiM paper's
// evaluation. Each FigNN function regenerates the corresponding
// figure's data series from the simulated testbed; the returned result
// types render the same rows/series the paper plots. cmd/experiments
// and the repository-root benchmarks drive these functions.
//
// The quantitative targets are shapes, not absolute numbers (the
// substrate is a simulator, not Theta): who wins, by roughly what
// factor, and where crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for every figure.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
)

// Lab is the shared simulated testbed: the paper's Figure 1(a)
// methodology. It owns the replay dataset (exhaustive P2 grid plus the
// Section III-B non-P2 test sets) and a live runner for configurations
// outside the table.
type Lab struct {
	Space        featspace.Space
	DS           *dataset.Dataset
	NonP2Nodes   []featspace.Point // "Non-P2 Nodes" test set (Figure 5)
	NonP2Msgs    []featspace.Point // "Non-P2 Message Size" test set
	Alloc        cluster.Allocation
	Runner       *benchmark.Runner
	Seed         int64
	ForestConfig forest.Config
}

// SimSpace returns the default simulated-experiment grid, mirroring the
// paper's precollected dataset bounds (64 nodes, message sizes up to
// 1 MiB) with processes-per-node capped at 8 to keep simulator runs
// tractable (the paper's trends are insensitive to the cap; see
// DESIGN.md).
func SimSpace() featspace.Space { return featspace.P2Grid(64, 8, 8, 1<<20) }

// TinySpace returns a small grid for unit tests.
func TinySpace() featspace.Space {
	return featspace.Space{
		Nodes: []int{2, 4, 8, 16},
		PPNs:  []int{1, 2},
		Msgs:  []int{8, 128, 2048, 32768, 1 << 19},
	}
}

// NewLab builds a testbed over the grid: it collects (or loads from
// cachePath, when non-empty and present) the exhaustive replay dataset
// including both non-P2 test sets. Collection parallelises across CPU
// cores; the resulting dataset is deterministic for a given seed.
func NewLab(space featspace.Space, cachePath string, seed int64) (*Lab, error) {
	alloc := cluster.TopologyTwoPairs()
	runner, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc,
		benchmark.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	lab := &Lab{
		Space:        space,
		NonP2Nodes:   dataset.NonP2NodesPoints(rng, space),
		NonP2Msgs:    dataset.NonP2MsgPoints(rng, space),
		Alloc:        alloc,
		Runner:       runner,
		Seed:         seed,
		ForestConfig: forest.Config{NTrees: 30, Seed: seed + 1},
	}
	if cachePath != "" {
		if ds, err := dataset.Load(cachePath); err == nil {
			lab.DS = ds
			return lab, nil
		}
	}
	pts := append(append(space.Points(), lab.NonP2Nodes...), lab.NonP2Msgs...)
	ds, err := dataset.Collect(runner, pts, dataset.CollectOptions{})
	if err != nil {
		return nil, err
	}
	lab.DS = ds
	if cachePath != "" {
		if err := ds.Save(cachePath); err != nil {
			// The cache is an optimisation; losing it is not fatal.
			fmt.Fprintf(os.Stderr, "experiments: could not cache dataset: %v\n", err)
		}
	}
	return lab, nil
}

// Replay returns a replay backend over the lab's dataset with the given
// wave-scheduling topology (the lab allocation by default).
func (l *Lab) Replay(alloc cluster.Allocation) *dataset.Replay {
	if alloc.Machine.Nodes == 0 {
		alloc = l.Alloc
	}
	return &dataset.Replay{DS: l.DS, Alloc: alloc}
}

// Backend returns the default experiment backend: replay with live
// fallback for configurations outside the precollected table (ACCLAiM's
// randomly drawn non-P2 message sizes).
func (l *Lab) Backend() autotune.WaveBackend {
	return &hybridBackend{lab: l, replay: l.Replay(cluster.Allocation{})}
}

// Eval returns an average-slowdown evaluator over the given points.
func (l *Lab) Eval(pts []featspace.Point) func(coll.Collective, autotune.Selector) (float64, error) {
	return func(c coll.Collective, sel autotune.Selector) (float64, error) {
		return autotune.EvalSlowdown(l.DS, c, pts, sel)
	}
}

// EvalFor returns a single-collective evaluator closure.
func (l *Lab) EvalFor(c coll.Collective, pts []featspace.Point) func(autotune.Selector) (float64, error) {
	return func(sel autotune.Selector) (float64, error) {
		return autotune.EvalSlowdown(l.DS, c, pts, sel)
	}
}

// hybridBackend serves measurements from the dataset and falls back to
// the live simulator for missing configurations, caching the result so
// the experiment stays a "precollected data" replay afterwards.
type hybridBackend struct {
	lab    *Lab
	replay *dataset.Replay
	mu     sync.Mutex
}

func (h *hybridBackend) Measure(spec benchmark.Spec) (benchmark.Measurement, error) {
	if m, err := h.replay.Measure(spec); err == nil {
		return m, nil
	}
	m, err := h.lab.Runner.Run(spec)
	if err != nil {
		return benchmark.Measurement{}, err
	}
	h.mu.Lock()
	h.lab.DS.Put(dataset.Key{Coll: spec.Coll, Alg: spec.Alg, Point: spec.Point},
		dataset.Entry{MeanTime: m.MeanTime, WallTime: m.WallTime})
	h.mu.Unlock()
	return m, nil
}

func (h *hybridBackend) MaxNodes() int { return h.replay.MaxNodes() }

func (h *hybridBackend) MeasureWave(specs []benchmark.Spec) ([]benchmark.Measurement, float64, error) {
	// Fill any table misses first, then let the replay backend account
	// for the wave timing.
	for _, s := range specs {
		if _, err := h.Measure(s); err != nil {
			return nil, 0, err
		}
	}
	return h.replay.MeasureWave(specs)
}
