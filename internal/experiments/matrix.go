package experiments

import (
	"fmt"
	"sort"
	"strings"

	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/netmodel"
)

// ScenarioMatrix is the scenario-diversity extension experiment (not a
// paper figure): it measures every registered algorithm of the given
// collectives at one feature point across every (topology × scenario)
// combination, on a contiguous allocation so the grid is fully
// deterministic for a seed. Nil collective/topology/scenario lists mean
// "all registered".
func ScenarioMatrix(colls []coll.Collective, topos []string, scenarios []benchmark.Scenario,
	nodes, ppn, msg int, seed int64) ([]benchmark.CellResult, error) {
	mach := cluster.Theta()
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		return nil, err
	}
	return benchmark.RunMatrix(benchmark.MatrixConfig{
		Params:      netmodel.DefaultParams(),
		Env:         netmodel.DefaultEnv(),
		Alloc:       alloc,
		Bench:       benchmark.Config{Seed: seed},
		Collectives: colls,
		Topologies:  topos,
		Scenarios:   scenarios,
		Point:       featspace.Point{Nodes: nodes, PPN: ppn, MsgBytes: msg},
	})
}

// ReportScenarioMatrix renders the matrix as one table per topology:
// rows are (collective, algorithm) cells, columns are scenarios, values
// are mean collective times in microseconds with the per-row winner
// across algorithms of the same collective starred per scenario.
func ReportScenarioMatrix(results []benchmark.CellResult) string {
	if len(results) == 0 {
		return "scenario matrix: no cells"
	}
	var topos []string
	var scenarios []benchmark.Scenario
	type rowKey struct {
		c   coll.Collective
		alg string
	}
	var rows []rowKey
	seenT := map[string]bool{}
	seenS := map[benchmark.Scenario]bool{}
	seenR := map[rowKey]bool{}
	cell := map[string]map[benchmark.Scenario]map[rowKey]float64{}
	for _, r := range results {
		if !seenT[r.Cell.Topology] {
			seenT[r.Cell.Topology] = true
			topos = append(topos, r.Cell.Topology)
			cell[r.Cell.Topology] = map[benchmark.Scenario]map[rowKey]float64{}
		}
		if !seenS[r.Cell.Scenario] {
			seenS[r.Cell.Scenario] = true
			scenarios = append(scenarios, r.Cell.Scenario)
		}
		k := rowKey{r.Cell.Coll, r.Cell.Alg}
		if !seenR[k] {
			seenR[k] = true
			rows = append(rows, k)
		}
		if cell[r.Cell.Topology][r.Cell.Scenario] == nil {
			cell[r.Cell.Topology][r.Cell.Scenario] = map[rowKey]float64{}
		}
		cell[r.Cell.Topology][r.Cell.Scenario][k] = r.MeanTime
	}
	sort.Slice(scenarios, func(i, j int) bool { return scenarios[i] < scenarios[j] })
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c != rows[j].c {
			return rows[i].c < rows[j].c
		}
		return rows[i].alg < rows[j].alg
	})

	p := results[0].Cell.Point
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario matrix — mean collective time (us) at nodes=%d ppn=%d msg=%d\n",
		p.Nodes, p.PPN, p.MsgBytes)
	for _, topo := range topos {
		fmt.Fprintf(&b, "\n[%s]\n", topo)
		fmt.Fprintf(&b, "%-32s", "collective/algorithm")
		for _, s := range scenarios {
			fmt.Fprintf(&b, "%18s", s)
		}
		b.WriteByte('\n')
		// Winner per (collective, scenario): the algorithm a tuned
		// library should select in that cell.
		best := map[benchmark.Scenario]map[coll.Collective]rowKey{}
		for _, s := range scenarios {
			best[s] = map[coll.Collective]rowKey{}
			for _, k := range rows {
				t, ok := cell[topo][s][k]
				if !ok {
					continue
				}
				cur, ok := best[s][k.c]
				if !ok || t < cell[topo][s][cur] {
					best[s][k.c] = k
				}
			}
		}
		for _, k := range rows {
			fmt.Fprintf(&b, "%-32s", k.c.String()+"/"+k.alg)
			for _, s := range scenarios {
				t, ok := cell[topo][s][k]
				if !ok {
					fmt.Fprintf(&b, "%18s", "-")
					continue
				}
				mark := " "
				if best[s][k.c] == k {
					mark = "*"
				}
				fmt.Fprintf(&b, "%17.1f%s", t, mark)
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("\n(* = fastest algorithm of its collective in that scenario)\n")
	return b.String()
}
