package experiments

import (
	"fmt"
	"math"
	"strings"

	"acclaim/internal/traces"
)

// us2s converts simulator microseconds to seconds for display.
func us2s(us float64) float64 { return us / 1e6 }

func fmtTime(us float64) string {
	switch {
	case math.IsNaN(us):
		return "n/a"
	case us >= 60e6:
		return fmt.Sprintf("%.1f min", us/60e6)
	case us >= 1e6:
		return fmt.Sprintf("%.2f s", us2s(us))
	case us >= 1e3:
		return fmt.Sprintf("%.2f ms", us/1e3)
	default:
		return fmt.Sprintf("%.1f us", us)
	}
}

func fmtRatio(r float64) string {
	if math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", r)
}

// ReportFig3 renders the Figure 3 table.
func ReportFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — avg slowdown vs %% of training points (aggregate over 4 collectives)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s\n", "% of points", "Hunold", "FACT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f %-10.4f %-10.4f\n", r.Fraction*100, r.Hunold, r.FACT)
	}
	return b.String()
}

// ReportFig4 renders the Figure 4 table.
func ReportFig4(rows []traces.ProfileRow, aggregate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — %% of non-power-of-two message sizes per application\n")
	fmt.Fprintf(&b, "%-14s %-8s %-10s\n", "application", "nodes", "non-P2 %")
	for _, r := range rows {
		if !r.Available {
			fmt.Fprintf(&b, "%-14s %-8d %-10s\n", r.App, r.Nodes, "(unavailable)")
			continue
		}
		fmt.Fprintf(&b, "%-14s %-8d %-10.1f\n", r.App, r.Nodes, r.NonP2Share*100)
	}
	fmt.Fprintf(&b, "aggregate: %.1f%% (paper: 15.7%%)\n", aggregate*100)
	return b.String()
}

// ReportFig5 renders the Figure 5 series.
func ReportFig5(series []Fig5Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — FACT (P2-only training) avg slowdown by test set, MPI_Bcast\n")
	fmt.Fprintf(&b, "%-12s", "% of points")
	for _, s := range series {
		fmt.Fprintf(&b, " %-22s", s.TestSet)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Curve {
		fmt.Fprintf(&b, "%-12.0f", series[0].Curve[i].Fraction*100)
		for _, s := range series {
			fmt.Fprintf(&b, " %-22.4f", s.Curve[i].Slowdown)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ReportFig6 renders the Figure 6 table.
func ReportFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — test set vs training set collection time (FACT)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-10s\n", "collective", "train time", "test time", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-14s %-14s %-10s\n", r.Coll, fmtTime(r.TrainTime), fmtTime(r.TestTime), fmtRatio(r.Ratio))
	}
	return b.String()
}

// ReportFig7 renders the Figure 7 series.
func ReportFig7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — cumulative variance and avg slowdown vs training time\n")
	fmt.Fprintf(&b, "%-14s %-14s %-12s\n", "time", "variance", "slowdown")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %-14.6g %-12.4f\n", fmtTime(p.Time), p.Variance, p.Slowdown)
	}
	return b.String()
}

// ReportFig10 renders the Figure 10 comparison.
func ReportFig10(rows []Fig10Row, cumulative float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — time to convergence (avg slowdown <= 1.03), ACCLAiM vs FACT point selection\n")
	fmt.Fprintf(&b, "%-12s %-16s %-16s %-10s\n", "collective", "ACCLAiM", "FACT", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-16s %-16s %-10s\n", r.Coll,
			fmtTime(r.ACCLAiMConv), fmtTime(r.FACTConv), fmtRatio(r.Speedup))
	}
	fmt.Fprintf(&b, "cumulative speedup: %s (paper: 2.25x, best 2.3x)\n", fmtRatio(cumulative))
	return b.String()
}

// ReportFig11 renders the Figure 11 comparison.
func ReportFig11(series []Fig11Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — P2/non-P2 training splits, MPI_Bcast (final avg slowdown)\n")
	fmt.Fprintf(&b, "%-18s %-16s %-16s\n", "training split", "P2 test set", "non-P2 msg test")
	for _, s := range series {
		lastP2 := s.P2Curve[len(s.P2Curve)-1].Slowdown
		lastNP := s.NonP2Curve[len(s.NonP2Curve)-1].Slowdown
		fmt.Fprintf(&b, "%-18s %-16.4f %-16.4f\n", s.Split, lastP2, lastNP)
	}
	return b.String()
}

// ReportFig12 renders the Figure 12 comparison.
func ReportFig12(rows []Fig12Row, ratio float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — variance convergence vs slowdown convergence (ACCLAiM)\n")
	fmt.Fprintf(&b, "%-12s %-16s %-18s %-18s\n", "collective", "variance conv", "slowdown conv", "slowdown@var-conv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-16s %-18s %-18.4f\n", r.Coll,
			fmtTime(r.VarConvTime), fmtTime(r.SlowdownConvTime), r.SlowdownAtVarConv)
	}
	fmt.Fprintf(&b, "overall (slowdown-conv time / variance-conv time): %s (paper: 1.19x faster)\n", fmtRatio(ratio))
	return b.String()
}

// ReportFig13 renders the Figure 13 table.
func ReportFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — parallel data collection speedup by topology\n")
	fmt.Fprintf(&b, "%-12s %-14s %-10s %-10s %-10s\n", "collective", "topology", "speedup", "max par", "avg par")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-14s %-10.2f %-10d %-10.2f\n",
			r.Coll, r.Topology, r.Speedup, r.MaxParallelism, r.AvgParallelism)
	}
	return b.String()
}

// ReportFig14 renders the Figure 14 table.
func ReportFig14(rows []Fig14Row, total float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14 — ACCLAiM training time on the production machine\n")
	fmt.Fprintf(&b, "%-12s %-14s %-10s %-10s %-10s\n", "collective", "train time", "samples", "converged", "max wave")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-14s %-10d %-10v %-10d\n",
			r.Coll, fmtTime(r.TrainTime), r.Samples, r.Converged, r.MaxWaveSize)
	}
	fmt.Fprintf(&b, "total training time: %s (paper: minutes at 128 nodes)\n", fmtTime(total))
	return b.String()
}

// ReportFig15 renders the Figure 15 table.
func ReportFig15(rows []Fig15Row, trainTimeUS float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15 — minimum application runtime for net gain (training time %s)\n", fmtTime(trainTimeUS))
	fmt.Fprintf(&b, "%-14s %-18s\n", "app speedup", "min runtime (h)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14.3f %-18.2f\n", r.AppSpeedup, r.MinRuntimeHours)
	}
	return b.String()
}
