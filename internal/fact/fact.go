// Package fact implements the FACT autotuner (Wilkins et al., ExaMPI
// 2021) — the previous state of the art the paper improves on
// (Section II-C1). FACT uses active learning: a separate surrogate
// model (DeepHyper in the original; an independently configured random
// forest here — see DESIGN.md) picks the next training point by its own
// uncertainty, data is collected strictly sequentially and only at
// power-of-two feature values, and convergence is judged by average
// slowdown on a held-out test set covering 20% of the feature space,
// whose collection costs 6–11x the training data itself (Figure 6).
package fact

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acclaim/internal/autotune"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/stats"
)

// Config parameterises the FACT tuner.
type Config struct {
	Space        featspace.Space
	Forest       forest.Config // final per-algorithm models
	Surrogate    forest.Config // the surrogate (point-selection) model
	SeedPoints   int           // initial random samples (default 5)
	MaxPoints    int           // cap on training samples (default: pool size)
	TestFraction float64       // held-out share of feature points (default 0.20)
	Criterion    float64       // avg-slowdown convergence bound (default 1.03)
	CheckEvery   int           // convergence-check cadence in iterations (default 1)
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.SeedPoints == 0 {
		c.SeedPoints = 5
	}
	if c.TestFraction == 0 {
		c.TestFraction = 0.20
	}
	if c.Criterion == 0 {
		c.Criterion = stats.ConvergenceCriterion
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 1
	}
	if c.Surrogate.NTrees == 0 {
		c.Surrogate = c.Forest
		c.Surrogate.Seed = c.Forest.Seed + 7919 // an independent ensemble
	}
	return c
}

// Tuner is a FACT autotuner over a benchmark backend.
type Tuner struct {
	cfg     Config
	backend autotune.Backend
}

// New builds a tuner.
func New(cfg Config, backend autotune.Backend) *Tuner {
	return &Tuner{cfg: cfg.withDefaults(), backend: backend}
}

// Result is a trained FACT autotuner for one collective.
type Result struct {
	Coll      coll.Collective
	Model     *autotune.PerAlgModel
	Ledger    autotune.Ledger       // Collection = training data, Testing = test set
	Trace     []autotune.TracePoint // per-iteration slowdown on the held-out test set
	Order     []autotune.Sample     // training samples in selection order
	Converged bool
	TestSet   []featspace.Point // the held-out points
}

// Select implements autotune.Selector.
func (r *Result) Select(p featspace.Point) string { return r.Model.Select(p) }

// SelectBatch implements autotune.BatchSelector via the per-algorithm
// models' batched sweep.
func (r *Result) SelectBatch(pts []featspace.Point) []string { return r.Model.SelectBatch(pts) }

// splitPoints partitions the grid's points into train and test pools.
func (t *Tuner) splitPoints(c coll.Collective, rng *rand.Rand) (train, test []featspace.Point) {
	var pts []featspace.Point
	for _, p := range t.cfg.Space.Points() {
		if p.Valid() && p.Nodes <= t.backend.MaxNodes() {
			pts = append(pts, p)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	nTest := int(t.cfg.TestFraction * float64(len(pts)))
	if nTest < 1 {
		nTest = 1
	}
	test = append(test, pts[:nTest]...)
	train = append(train, pts[nTest:]...)
	return train, test
}

// collectTestSet benchmarks every algorithm at every test point — the
// expensive step the paper's Figure 6 indicts — and returns the results
// as a ground-truth table plus the machine time consumed.
func (t *Tuner) collectTestSet(c coll.Collective, test []featspace.Point) (*dataset.Dataset, float64, error) {
	ds := dataset.New()
	var wall float64
	for _, p := range test {
		for _, alg := range coll.AlgorithmNames(c) {
			m, err := t.backend.Measure(autotune.Candidate{Point: p, Alg: alg}.Spec(c))
			if err != nil {
				return nil, 0, fmt.Errorf("fact: test set: %w", err)
			}
			ds.Put(dataset.Key{Coll: c, Alg: alg, Point: p},
				dataset.Entry{MeanTime: m.MeanTime, WallTime: m.WallTime})
			wall += m.WallTime
		}
	}
	return ds, wall, nil
}

// Tune runs the full FACT procedure for one collective.
func (t *Tuner) Tune(c coll.Collective) (*Result, error) {
	rng := rand.New(rand.NewSource(t.cfg.Seed + int64(c)*104729))
	trainPts, testPts := t.splitPoints(c, rng)
	if len(trainPts) == 0 {
		return nil, fmt.Errorf("fact: no training points for %v", c)
	}

	testDS, testWall, err := t.collectTestSet(c, testPts)
	if err != nil {
		return nil, err
	}
	res := &Result{Coll: c, TestSet: testPts}
	res.Ledger.Testing = testWall

	// Candidate pool: every (train point, algorithm) pair.
	var pool []autotune.Candidate
	for _, p := range trainPts {
		for ai, a := range coll.AlgorithmNames(c) {
			pool = append(pool, autotune.Candidate{Point: p, Alg: a, AlgIdx: ai})
		}
	}
	maxPoints := t.cfg.MaxPoints
	if maxPoints <= 0 || maxPoints > len(pool) {
		maxPoints = len(pool)
	}

	ts := autotune.NewTrainingSet(c)
	collect := func(cand autotune.Candidate) error {
		m, err := t.backend.Measure(cand.Spec(c))
		if err != nil {
			return fmt.Errorf("fact: %w", err)
		}
		ts.Add(cand, m.MeanTime, m.WallTime)
		res.Ledger.Collection += m.WallTime
		res.Order = append(res.Order, autotune.Sample{Candidate: cand, Mean: m.MeanTime, Wall: m.WallTime})
		return nil
	}

	// Seed with random candidates.
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	nSeed := t.cfg.SeedPoints
	if nSeed > len(pool) {
		nSeed = len(pool)
	}
	for _, cand := range pool[:nSeed] {
		if err := collect(cand); err != nil {
			return nil, err
		}
	}

	// One scoring arena across every surrogate round: the open-pool
	// matrix and variance buffer reuse the same backing arrays.
	var arena autotune.Arena
	for iter := 0; ts.Len() < maxPoints; iter++ {
		// The surrogate — FACT's stand-in for DeepHyper — picks the next
		// point by its own jackknife uncertainty. Note the structural
		// inefficiency the paper calls out: this is a second model,
		// trained on the same data, whose uncertainty is not the
		// deployed model's.
		surrogate, err := autotune.TrainModel(t.cfg.Surrogate, ts)
		if err != nil {
			return nil, err
		}
		next, ok := argmaxVariance(surrogate, &arena, pool, ts)
		if !ok {
			break // pool exhausted
		}
		if err := collect(next); err != nil {
			return nil, err
		}
		if (iter+1)%t.cfg.CheckEvery != 0 {
			continue
		}

		// Train the deployed per-algorithm models and test convergence
		// on the held-out set.
		model, err := autotune.TrainPerAlg(t.cfg.Forest, ts)
		if err != nil {
			return nil, err
		}
		sd, err := autotune.EvalSlowdown(testDS, c, testPts, model)
		if err != nil {
			return nil, err
		}
		res.Model = model
		res.Trace = append(res.Trace, autotune.TracePoint{
			Iter:           iter,
			Samples:        ts.Len(),
			CollectionTime: res.Ledger.Collection,
			CumVariance:    math.NaN(),
			Slowdown:       sd,
		})
		if sd <= t.cfg.Criterion {
			res.Converged = true
			break
		}
	}
	if res.Model == nil {
		model, err := autotune.TrainPerAlg(t.cfg.Forest, ts)
		if err != nil {
			return nil, err
		}
		res.Model = model
	}
	return res, nil
}

// argmaxVariance returns the uncollected candidate with the highest
// surrogate variance, scoring the open pool in one fused
// compiled-kernel sweep through the caller's arena. Ties break toward
// the earlier pool position for determinism (the open list preserves
// pool order and the comparison is strict).
func argmaxVariance(m *autotune.Model, a *autotune.Arena, pool []autotune.Candidate, ts *autotune.TrainingSet) (autotune.Candidate, bool) {
	var open []autotune.Candidate
	for _, cand := range pool {
		if !ts.Has(cand) {
			open = append(open, cand)
		}
	}
	if len(open) == 0 {
		return autotune.Candidate{}, false
	}
	vs := m.VarianceBatchInto(a, open)
	bestI := 0
	for i, v := range vs {
		if v > vs[bestI] {
			bestI = i
		}
	}
	return open[bestI], true
}

// LearningCurve trains per-algorithm models on prefixes of a completed
// run's selection order and evaluates each — FACT's Figure 3/5 series.
func (t *Tuner) LearningCurve(res *Result, fracs []float64,
	eval func(autotune.Selector) (float64, error)) ([]autotune.CurvePoint, error) {

	sort.Float64s(fracs)
	return autotune.LearningCurve(res.Coll, res.Order, fracs,
		func(ts *autotune.TrainingSet) (autotune.Selector, error) {
			return autotune.TrainPerAlg(t.cfg.Forest, ts)
		}, eval)
}
