package fact

import (
	"math"
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
)

func testSpace() featspace.Space {
	return featspace.Space{
		Nodes: []int{2, 4, 8, 16},
		PPNs:  []int{1, 2},
		Msgs:  []int{8, 128, 2048, 32768, 1 << 19},
	}
}

func testReplay(t testing.TB) *dataset.Replay {
	t.Helper()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Collect(r, testSpace().Points(), dataset.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Replay{DS: ds, Alloc: cluster.TopologyTwoPairs()}
}

func testTuner(rp *dataset.Replay) *Tuner {
	return New(Config{
		Space:  testSpace(),
		Forest: forest.Config{Seed: 1, NTrees: 30},
		Seed:   3,
	}, rp)
}

func TestTuneConvergesAndCharges(t *testing.T) {
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("no model")
	}
	if res.Ledger.Testing <= 0 {
		t.Error("FACT must charge test-set collection time")
	}
	if res.Ledger.Collection <= 0 {
		t.Error("FACT must charge training collection time")
	}
	if len(res.Order) == 0 || len(res.Trace) == 0 {
		t.Error("missing order/trace")
	}
	// Every trace point carries a test-set slowdown; no cumulative
	// variance (that is ACCLAiM's innovation).
	for _, tp := range res.Trace {
		if math.IsNaN(tp.Slowdown) {
			t.Error("FACT trace lacks slowdown")
		}
		if !math.IsNaN(tp.CumVariance) {
			t.Error("FACT should not report cumulative variance")
		}
	}
	if res.Converged {
		last := res.Trace[len(res.Trace)-1]
		if last.Slowdown > tuner.cfg.Criterion {
			t.Errorf("converged at slowdown %v above criterion", last.Slowdown)
		}
	}
}

// TestTestSetAccounting verifies the Ledger.Testing charge is exactly
// the machine time of benchmarking every algorithm at every held-out
// point (the overhead Figure 6 indicts; the 6–11x ratio itself emerges
// at realistic grid scale and is reproduced in internal/experiments).
func TestTestSetAccounting(t *testing.T) {
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, p := range res.TestSet {
		for _, alg := range coll.AlgorithmNames(coll.Allreduce) {
			m, err := rp.Measure(autotune.Candidate{Point: p, Alg: alg}.Spec(coll.Allreduce))
			if err != nil {
				t.Fatal(err)
			}
			want += m.WallTime
		}
	}
	if math.Abs(res.Ledger.Testing-want) > 1e-6*want {
		t.Errorf("Testing = %v, want %v", res.Ledger.Testing, want)
	}
	// Per test-set benchmark, the cost per held-out point is the full
	// algorithm sweep — structurally more expensive than one training
	// sample per point.
	perTestPoint := res.Ledger.Testing / float64(len(res.TestSet))
	perTrainSample := res.Ledger.Collection / float64(len(res.Order))
	if perTestPoint <= perTrainSample {
		t.Errorf("test point cost %v not above training sample cost %v", perTestPoint, perTrainSample)
	}
}

func TestP2Only(t *testing.T) {
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Reduce)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Order {
		p := s.Candidate.Point
		if !featspace.IsP2(p.MsgBytes) || !featspace.IsP2(p.Nodes) {
			t.Fatalf("FACT collected non-P2 point %v", p)
		}
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	test := make(map[featspace.Point]bool)
	for _, p := range res.TestSet {
		test[p] = true
	}
	if len(test) == 0 {
		t.Fatal("empty test set")
	}
	for _, s := range res.Order {
		if test[s.Candidate.Point] {
			t.Fatalf("training sample %v leaked from test set", s.Candidate.Point)
		}
	}
	// ~20% of points held out.
	frac := float64(len(test)) / float64(testSpace().Size())
	if frac < 0.15 || frac > 0.3 {
		t.Errorf("test fraction = %v, want ~0.2", frac)
	}
}

func TestDeterministic(t *testing.T) {
	rp := testReplay(t)
	r1, err := testTuner(rp).Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := testTuner(rp).Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Order) != len(r2.Order) {
		t.Fatal("non-deterministic order length")
	}
	for i := range r1.Order {
		if r1.Order[i].Candidate != r2.Order[i].Candidate {
			t.Fatal("non-deterministic selection order")
		}
	}
}

func TestLearningCurve(t *testing.T) {
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(s autotune.Selector) (float64, error) {
		return autotune.EvalSlowdown(rp.DS, coll.Bcast, testSpace().Points(), s)
	}
	curve, err := tuner.LearningCurve(res, []float64{0.5, 1.0}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for _, cp := range curve {
		if cp.Slowdown < 1 {
			t.Errorf("slowdown %v < 1", cp.Slowdown)
		}
	}
}

func TestActiveBeatsEarlyRandom(t *testing.T) {
	// The core FACT claim: active-learning selections reach low slowdown
	// with a small fraction of the pool. With ~25% of candidates its
	// model should already be decent on the replay dataset.
	rp := testReplay(t)
	tuner := testTuner(rp)
	res, err := tuner.Tune(coll.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	poolSize := testSpace().Size() * coll.NumAlgorithms(coll.Bcast)
	if !res.Converged {
		t.Logf("note: not converged after %d of %d candidates", len(res.Order), poolSize)
	}
	sd, err := autotune.EvalSlowdown(rp.DS, coll.Bcast, testSpace().Points(), res)
	if err != nil {
		t.Fatal(err)
	}
	if sd > 1.15 {
		t.Errorf("final FACT slowdown = %v", sd)
	}
}
