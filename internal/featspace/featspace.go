// Package featspace describes the autotuner feature space.
//
// A feature point is the triple (number of nodes, processes per node,
// message size in bytes) that parameterises one collective benchmark, as
// defined in Section II-C of the ACCLAiM paper. The package provides
// power-of-two grids matching the paper's evaluation bounds, helpers to
// classify and perturb power-of-two ("P2") values, and the non-P2
// neighbourhood sampling rule from Section IV-B.
package featspace

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Point is a single feature-space point: a benchmark scenario.
type Point struct {
	Nodes    int // number of nodes participating in the collective
	PPN      int // processes per node
	MsgBytes int // message size in bytes (OSU convention per collective)
}

// Ranks returns the total number of MPI processes at the point.
func (p Point) Ranks() int { return p.Nodes * p.PPN }

// String renders the point as "nodes=N ppn=P msg=M".
func (p Point) String() string {
	return fmt.Sprintf("nodes=%d ppn=%d msg=%d", p.Nodes, p.PPN, p.MsgBytes)
}

// Valid reports whether all components are positive and there are at
// least two ranks (a collective over a single process is degenerate).
func (p Point) Valid() bool {
	return p.Nodes >= 1 && p.PPN >= 1 && p.MsgBytes >= 1 && p.Ranks() >= 2
}

// Validate is the error-returning form of Valid for boundary layers
// (CLI flags, matrix configs) that must say what is wrong rather than
// silently failing deep inside the simulator.
func (p Point) Validate() error {
	switch {
	case p.Nodes < 1 || p.PPN < 1 || p.MsgBytes < 1:
		return fmt.Errorf("featspace: point %v needs positive nodes, ppn, and message size", p)
	case p.Ranks() < 2:
		return fmt.Errorf("featspace: point %v is a single-rank collective", p)
	default:
		return nil
	}
}

// Space is a finite grid of feature values. The cross product of the
// three axes enumerates all candidate points.
type Space struct {
	Nodes []int // candidate node counts, ascending
	PPNs  []int // candidate processes-per-node values, ascending
	Msgs  []int // candidate message sizes in bytes, ascending
}

// Size returns the number of points in the grid.
func (s Space) Size() int { return len(s.Nodes) * len(s.PPNs) * len(s.Msgs) }

// Points enumerates the full cross product in deterministic order
// (nodes-major, then ppn, then message size).
func (s Space) Points() []Point {
	pts := make([]Point, 0, s.Size())
	for _, n := range s.Nodes {
		for _, p := range s.PPNs {
			for _, m := range s.Msgs {
				pts = append(pts, Point{Nodes: n, PPN: p, MsgBytes: m})
			}
		}
	}
	return pts
}

// Contains reports whether the point lies on the grid.
func (s Space) Contains(pt Point) bool {
	return containsInt(s.Nodes, pt.Nodes) && containsInt(s.PPNs, pt.PPN) && containsInt(s.Msgs, pt.MsgBytes)
}

func containsInt(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// P2Values returns the powers of two in [lo, hi], inclusive. lo and hi
// need not themselves be powers of two.
func P2Values(lo, hi int) []int {
	var vs []int
	for v := 1; v <= hi; v *= 2 {
		if v >= lo {
			vs = append(vs, v)
		}
		if v > hi/2 { // avoid overflow
			break
		}
	}
	return vs
}

// P2Grid builds the power-of-two grid used throughout the paper's
// simulated experiments: nodes in [2, maxNodes], ppn in [1, maxPPN],
// message sizes in [minMsg, maxMsg], all powers of two.
func P2Grid(maxNodes, maxPPN, minMsg, maxMsg int) Space {
	return Space{
		Nodes: P2Values(2, maxNodes),
		PPNs:  P2Values(1, maxPPN),
		Msgs:  P2Values(minMsg, maxMsg),
	}
}

// PaperGrid returns the grid matching the paper's precollected dataset:
// up to 64 nodes, up to 32 processes per node, message sizes 8 B–1 MiB.
func PaperGrid() Space { return P2Grid(64, 32, 8, 1<<20) }

// ProductionGrid returns the grid for the paper's Theta experiments:
// up to 128 nodes, 16 processes per node, message sizes up to 1 MiB.
func ProductionGrid() Space { return P2Grid(128, 16, 8, 1<<20) }

// ProductionSpace returns a production grid scaled to the given bounds
// (message sizes stay at 8 B–1 MiB).
func ProductionSpace(maxNodes, maxPPN int) Space { return P2Grid(maxNodes, maxPPN, 8, 1<<20) }

// IsP2 reports whether v is a positive power of two.
func IsP2(v int) bool { return v > 0 && v&(v-1) == 0 }

// PrevP2 returns the largest power of two <= v. It panics if v < 1.
func PrevP2(v int) int {
	if v < 1 {
		panic("featspace: PrevP2 of non-positive value")
	}
	return 1 << (bits.Len(uint(v)) - 1)
}

// NextP2 returns the smallest power of two >= v. It panics if v < 1.
func NextP2(v int) int {
	if v < 1 {
		panic("featspace: NextP2 of non-positive value")
	}
	if IsP2(v) {
		return v
	}
	return 1 << bits.Len(uint(v))
}

// P2Frac measures how far v sits above its floor power of two, as a
// fraction in [0, 1): 0 for exact powers of two, approaching 1 just
// below the next power of two. It is used as a derived model feature so
// regressors can distinguish P2 from non-P2 values.
func P2Frac(v int) float64 {
	if v < 1 {
		return 0
	}
	p := PrevP2(v)
	return float64(v-p) / float64(p)
}

// Log2 returns log2(v) as a float64 for feature encoding.
func Log2(v int) float64 { return math.Log2(float64(v)) }

// NonP2Near returns a random non-power-of-two value "near" the
// power-of-two value v, following the paper's Section IV-B rule: the
// result lies strictly between the midpoint to the previous power of two
// and the midpoint to the next power of two, and is never v itself.
// For v = 8 the result is drawn from [6, 12] \ {8}. For v <= 2 (where no
// non-P2 neighbour exists below 3) it perturbs upward only.
func NonP2Near(rng *rand.Rand, v int) int {
	if !IsP2(v) {
		return v
	}
	lo := v - v/4 // midpoint between v/2 and v
	hi := v + v/2 // midpoint between v and 2v
	if lo < 3 {
		lo = 3
	}
	if hi <= lo {
		hi = lo + 1
	}
	for i := 0; i < 64; i++ {
		c := lo + rng.Intn(hi-lo+1)
		if c != v && !IsP2(c) {
			return c
		}
	}
	// Degenerate interval (tiny v): fall back to v+1 if non-P2, else v+3.
	if !IsP2(v + 1) {
		return v + 1
	}
	return v + 3
}

// Features encodes a point (and optional algorithm index) into the model
// feature vector used by every autotuner in this repository:
//
//	[nodes, ppn, log2(msg), log2(ranks), p2frac(msg), p2frac(nodes), algIdx...]
//
// The derived features carry no extra information but give tree models
// cheaper splits: log2(ranks) captures the joint scale that algorithm
// crossovers track, and the two p2frac features give a handle on the
// P2/non-P2 distinction — a model trained only on P2 points sees them
// as constant zero and cannot exploit them, reproducing the failure
// mode in Figure 5 of the paper.
func Features(pt Point, algIdx ...int) []float64 {
	return AppendFeatures(make([]float64, 0, NumFeatures), pt, algIdx...)
}

// AppendFeatures appends the Features encoding of pt (and optional
// algorithm indices) to dst and returns the extended slice. It is the
// allocation-free form used on the scoring hot path: candidate pools
// are encoded into one reused flat buffer per round instead of one
// fresh slice per point.
func AppendFeatures(dst []float64, pt Point, algIdx ...int) []float64 {
	dst = append(dst,
		float64(pt.Nodes),
		float64(pt.PPN),
		Log2(pt.MsgBytes),
		Log2(pt.Ranks()),
		P2Frac(pt.MsgBytes),
		P2Frac(pt.Nodes),
	)
	for _, a := range algIdx {
		dst = append(dst, float64(a))
	}
	return dst
}

// NumFeatures is the length of the vector returned by Features with one
// algorithm index appended.
const NumFeatures = 7

// Matrix is a flat, row-major feature buffer — the batch counterpart
// of Features. A scoring round Resets the matrix, AppendPoints the
// candidate pool, and hands Data straight to the compiled forest
// kernel's flat entry points; the backing buffer survives Reset, so a
// steady-state sweep encodes its pool with zero allocations.
type Matrix struct {
	data []float64
	cols int
}

// Reset empties the matrix and fixes the row width, keeping the
// underlying buffer for reuse. It panics for a non-positive width.
func (m *Matrix) Reset(cols int) {
	if cols < 1 {
		panic("featspace: Matrix row width must be positive")
	}
	m.cols = cols
	m.data = m.data[:0]
}

// AppendPoint encodes one point (see Features) as the next row. It
// panics if the encoding width differs from the matrix's row width.
func (m *Matrix) AppendPoint(pt Point, algIdx ...int) {
	start := len(m.data)
	m.data = AppendFeatures(m.data, pt, algIdx...)
	if len(m.data)-start != m.cols {
		panic(fmt.Sprintf("featspace: encoded %d features into a %d-column matrix", len(m.data)-start, m.cols))
	}
}

// AppendRow appends one raw feature row. Its first use fixes the row
// width if no Reset has; afterwards it panics on a width mismatch,
// like AppendPoint. Training-set assembly uses it to lay measured
// points straight into the flat buffer forest.TrainMatrix consumes.
func (m *Matrix) AppendRow(vals ...float64) {
	if m.cols == 0 {
		m.Reset(len(vals))
	}
	if len(vals) != m.cols {
		panic(fmt.Sprintf("featspace: appended a %d-feature row to a %d-column matrix", len(vals), m.cols))
	}
	m.data = append(m.data, vals...)
}

// Col gathers column j into dst (len == Rows) — the column view the
// forest trainer's binning pass reads. It panics if j is out of range
// or dst has the wrong length.
func (m *Matrix) Col(j int, dst []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("featspace: Col(%d) on a %d-column matrix", j, m.cols))
	}
	if len(dst) != m.Rows() {
		panic(fmt.Sprintf("featspace: Col destination has %d slots for %d rows", len(dst), m.Rows()))
	}
	for i := range dst {
		dst[i] = m.data[i*m.cols+j]
	}
}

// Rows returns the number of encoded rows.
func (m *Matrix) Rows() int {
	if m.cols == 0 {
		return 0
	}
	return len(m.data) / m.cols
}

// Cols returns the row width fixed by the last Reset.
func (m *Matrix) Cols() int { return m.cols }

// Data returns the row-major backing slice, aliased until the next
// Reset or AppendPoint.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i, aliased into the backing slice.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// SetCol overwrites column j in every row. The unified-model selector
// uses it to re-target the trailing algorithm-index feature without
// re-encoding the pool for each algorithm.
func (m *Matrix) SetCol(j int, v float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("featspace: SetCol(%d) on a %d-column matrix", j, m.cols))
	}
	for i := j; i < len(m.data); i += m.cols {
		m.data[i] = v
	}
}
