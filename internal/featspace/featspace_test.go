package featspace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestP2Values(t *testing.T) {
	got := P2Values(2, 64)
	want := []int{2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("P2Values(2,64) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("P2Values(2,64) = %v, want %v", got, want)
		}
	}
}

func TestP2ValuesNonP2Bounds(t *testing.T) {
	got := P2Values(3, 60)
	want := []int{4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("P2Values(3,60) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("P2Values(3,60)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIsP2(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false, 4: true,
		6: false, 1024: true, 1023: false, 1 << 20: true,
	}
	for v, want := range cases {
		if got := IsP2(v); got != want {
			t.Errorf("IsP2(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestPrevNextP2(t *testing.T) {
	cases := []struct{ v, prev, next int }{
		{1, 1, 1}, {2, 2, 2}, {3, 2, 4}, {5, 4, 8}, {8, 8, 8},
		{9, 8, 16}, {1000, 512, 1024}, {1024, 1024, 1024},
	}
	for _, c := range cases {
		if got := PrevP2(c.v); got != c.prev {
			t.Errorf("PrevP2(%d) = %d, want %d", c.v, got, c.prev)
		}
		if got := NextP2(c.v); got != c.next {
			t.Errorf("NextP2(%d) = %d, want %d", c.v, got, c.next)
		}
	}
}

func TestP2Frac(t *testing.T) {
	if f := P2Frac(8); f != 0 {
		t.Errorf("P2Frac(8) = %v, want 0", f)
	}
	if f := P2Frac(12); f != 0.5 {
		t.Errorf("P2Frac(12) = %v, want 0.5", f)
	}
	if f := P2Frac(15); f != 7.0/8.0 {
		t.Errorf("P2Frac(15) = %v, want 7/8", f)
	}
}

// Property: PrevP2(v) <= v <= NextP2(v), both results are powers of two,
// and NextP2 <= 2*PrevP2.
func TestP2BoundsProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := int(raw)%100000 + 1
		p, n := PrevP2(v), NextP2(v)
		return p <= v && v <= n && IsP2(p) && IsP2(n) && n <= 2*p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonP2NearRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []int{8, 16, 64, 1024, 1 << 20} {
		for i := 0; i < 200; i++ {
			got := NonP2Near(rng, v)
			if IsP2(got) {
				t.Fatalf("NonP2Near(%d) returned power of two %d", v, got)
			}
			lo, hi := v-v/4, v+v/2
			if got < lo || got > hi {
				t.Fatalf("NonP2Near(%d) = %d outside [%d, %d]", v, got, lo, hi)
			}
		}
	}
}

func TestNonP2NearSmallValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, v := range []int{1, 2, 4} {
		got := NonP2Near(rng, v)
		if IsP2(got) {
			t.Errorf("NonP2Near(%d) = %d is a power of two", v, got)
		}
	}
}

func TestNonP2NearPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := NonP2Near(rng, 12); got != 12 {
		t.Errorf("NonP2Near(12) = %d, want 12 (already non-P2)", got)
	}
}

func TestSpaceEnumeration(t *testing.T) {
	s := Space{Nodes: []int{2, 4}, PPNs: []int{1, 2}, Msgs: []int{8, 16, 32}}
	pts := s.Points()
	if len(pts) != s.Size() || s.Size() != 12 {
		t.Fatalf("Points() returned %d points, Size() = %d, want 12", len(pts), s.Size())
	}
	// Deterministic order: first point is the all-minimum corner.
	if pts[0] != (Point{2, 1, 8}) {
		t.Errorf("first point = %v", pts[0])
	}
	if pts[len(pts)-1] != (Point{4, 2, 32}) {
		t.Errorf("last point = %v", pts[len(pts)-1])
	}
	for _, p := range pts {
		if !s.Contains(p) {
			t.Errorf("space does not contain own point %v", p)
		}
	}
	if s.Contains(Point{3, 1, 8}) {
		t.Error("Contains(3,1,8) = true, want false")
	}
}

func TestPaperGrid(t *testing.T) {
	g := PaperGrid()
	if g.Nodes[len(g.Nodes)-1] != 64 {
		t.Errorf("max nodes = %d, want 64", g.Nodes[len(g.Nodes)-1])
	}
	if g.PPNs[len(g.PPNs)-1] != 32 {
		t.Errorf("max ppn = %d, want 32", g.PPNs[len(g.PPNs)-1])
	}
	if g.Msgs[len(g.Msgs)-1] != 1<<20 {
		t.Errorf("max msg = %d, want 1 MiB", g.Msgs[len(g.Msgs)-1])
	}
	if g.Msgs[0] != 8 {
		t.Errorf("min msg = %d, want 8", g.Msgs[0])
	}
}

func TestPointValidAndRanks(t *testing.T) {
	if (Point{1, 1, 8}).Valid() {
		t.Error("single-rank point should be invalid")
	}
	if !(Point{1, 2, 8}).Valid() {
		t.Error("1 node x 2 ppn should be valid")
	}
	if (Point{2, 4, 8}).Ranks() != 8 {
		t.Error("Ranks() wrong")
	}
	if (Point{2, 4, 0}).Valid() {
		t.Error("zero message size should be invalid")
	}
}

func TestPointValidate(t *testing.T) {
	// Validate must agree with Valid and name the failure.
	for _, p := range []Point{{1, 1, 8}, {1, 2, 8}, {2, 4, 0}, {0, 4, 8}, {8, 2, 4096}} {
		err := p.Validate()
		if (err == nil) != p.Valid() {
			t.Errorf("Validate(%v) = %v, Valid = %v", p, err, p.Valid())
		}
	}
	if err := (Point{2, 4, 0}).Validate(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("zero-msg error should name the positive-components rule, got %v", err)
	}
	if err := (Point{1, 1, 8}).Validate(); err == nil || !strings.Contains(err.Error(), "single-rank") {
		t.Errorf("single-rank error should name the rank rule, got %v", err)
	}
}

func TestFeatures(t *testing.T) {
	f := Features(Point{Nodes: 12, PPN: 4, MsgBytes: 24}, 3)
	if len(f) != NumFeatures {
		t.Fatalf("len(Features) = %d, want %d", len(f), NumFeatures)
	}
	if f[0] != 12 || f[1] != 4 {
		t.Errorf("nodes/ppn features = %v/%v", f[0], f[1])
	}
	if f[3] != Log2(48) { // ranks = 12*4
		t.Errorf("log2(ranks) = %v, want log2(48)", f[3])
	}
	if f[4] != 0.5 { // 24 is halfway between 16 and 32
		t.Errorf("p2frac(msg) = %v, want 0.5", f[4])
	}
	if f[5] != 0.5 { // 12 is halfway between 8 and 16
		t.Errorf("p2frac(nodes) = %v, want 0.5", f[5])
	}
	if f[6] != 3 {
		t.Errorf("alg feature = %v, want 3", f[6])
	}
}

func TestFeaturesWithoutAlg(t *testing.T) {
	f := Features(Point{Nodes: 8, PPN: 2, MsgBytes: 64})
	if len(f) != NumFeatures-1 {
		t.Fatalf("len = %d, want %d", len(f), NumFeatures-1)
	}
	if f[4] != 0 || f[5] != 0 {
		t.Errorf("P2 point should have zero p2frac features: %v", f)
	}
}
