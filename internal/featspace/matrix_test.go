package featspace

import "testing"

func TestMatrixAppendPointAndRow(t *testing.T) {
	var m Matrix
	m.Reset(NumFeatures)
	pt := Point{Nodes: 8, PPN: 4, MsgBytes: 1024}
	m.AppendPoint(pt, 2)
	m.AppendRow(Features(pt, 3)...)
	if m.Rows() != 2 || m.Cols() != NumFeatures {
		t.Fatalf("matrix shape %dx%d, want 2x%d", m.Rows(), m.Cols(), NumFeatures)
	}
	want := Features(pt, 2)
	for j, v := range want {
		if m.Row(0)[j] != v {
			t.Errorf("row 0 col %d = %v, want %v", j, m.Row(0)[j], v)
		}
	}
	if m.Row(1)[NumFeatures-1] != 3 {
		t.Errorf("row 1 alg index = %v, want 3", m.Row(1)[NumFeatures-1])
	}
}

func TestMatrixAppendRowFixesWidth(t *testing.T) {
	var m Matrix
	m.AppendRow(1, 2, 3) // first append fixes cols=3
	if m.Cols() != 3 || m.Rows() != 1 {
		t.Fatalf("shape %dx%d after first AppendRow", m.Rows(), m.Cols())
	}
	defer func() {
		if recover() == nil {
			t.Error("width-mismatched AppendRow should panic")
		}
	}()
	m.AppendRow(1, 2)
}

func TestMatrixCol(t *testing.T) {
	var m Matrix
	m.AppendRow(1, 10)
	m.AppendRow(2, 20)
	m.AppendRow(3, 30)
	dst := make([]float64, 3)
	m.Col(1, dst)
	for i, want := range []float64{10, 20, 30} {
		if dst[i] != want {
			t.Errorf("Col(1)[%d] = %v, want %v", i, dst[i], want)
		}
	}
	for _, bad := range []func(){
		func() { m.Col(2, dst) },
		func() { m.Col(-1, dst) },
		func() { m.Col(0, dst[:2]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range Col should panic")
				}
			}()
			bad()
		}()
	}
}

func TestMatrixSetColAndReset(t *testing.T) {
	var m Matrix
	m.AppendRow(1, 5)
	m.AppendRow(2, 5)
	m.SetCol(1, 9)
	if m.Row(0)[1] != 9 || m.Row(1)[1] != 9 {
		t.Error("SetCol did not overwrite the column")
	}
	m.Reset(4)
	if m.Rows() != 0 || m.Cols() != 4 {
		t.Errorf("Reset left shape %dx%d", m.Rows(), m.Cols())
	}
}
