package forest

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// testingBenchTime times one call of fn in seconds.
func testingBenchTime(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// benchData builds the acceptance-criteria workload: 2000 samples,
// 4 features, a noisy nonlinear target.
func benchData(n int) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(99))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 16, rng.Float64() * 8, rng.Float64() * 20, rng.Float64()}
		y[i] = math.Log1p(x[i][0]*x[i][2]) + math.Sin(x[i][1]) + rng.NormFloat64()*0.05
	}
	return x, y
}

func benchTrain(b *testing.B, workers int) {
	x, y := benchData(2000)
	cfg := Config{NTrees: 100, Seed: 7, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainSerial is the baseline: 100 trees, 2k samples, one
// worker, on the default (compiled histogram) training path.
func BenchmarkTrainSerial(b *testing.B) { benchTrain(b, 1) }

// BenchmarkTrainParallel is the same workload on the full worker pool —
// the acceptance criterion is >= 2x over BenchmarkTrainSerial at 8
// cores.
func BenchmarkTrainParallel(b *testing.B) { benchTrain(b, 0) }

// BenchmarkTrainParallelSpeedup trains serial and parallel back to
// back and reports the observed pool speedup as a metric, so the ratio
// itself lands in benchmark output (machine-independent, unlike
// ns/op). Not CI-gated: on 2-core shared runners the honest ratio is
// ~1x.
func BenchmarkTrainParallelSpeedup(b *testing.B) {
	x, y := benchData(2000)
	serial := Config{NTrees: 100, Seed: 7, Workers: 1}
	parallel := Config{NTrees: 100, Seed: 7, Workers: 0}
	var speedup float64
	for i := 0; i < b.N; i++ {
		ts := testingBenchTime(func() {
			if _, err := Train(serial, x, y); err != nil {
				b.Fatal(err)
			}
		})
		tp := testingBenchTime(func() {
			if _, err := Train(parallel, x, y); err != nil {
				b.Fatal(err)
			}
		})
		speedup = ts / tp
	}
	b.ReportMetric(speedup, "parallel_speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
}

// BenchmarkTrainReference is the pre-histogram reference builder on
// the serial workload — the denominator-free half of the training
// speedup pair, kept so ns/op for both paths lands in the snapshot.
func BenchmarkTrainReference(b *testing.B) {
	x, y := benchData(2000)
	cfg := Config{NTrees: 100, Seed: 7, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainReference(cfg, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainCompiled is the compiled histogram trainer on the same
// serial workload. Its allocation count is a deterministic property of
// the arena/scratch discipline, so the baseline entry gates it.
func BenchmarkTrainCompiled(b *testing.B) {
	x, y := benchData(2000)
	cfg := Config{NTrees: 100, Seed: 7, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainSpeedup times the reference builder against the
// compiled histogram trainer on identical inputs (both serial, so the
// ratio measures the representation, not the pool) and reports it as
// the train_speedup metric; CI gates it with
// `benchguard -floor train_speedup=2.5`.
func BenchmarkTrainSpeedup(b *testing.B) {
	x, y := benchData(2000)
	cfg := Config{NTrees: 100, Seed: 7, Workers: 1}
	var speedup float64
	for i := 0; i < b.N; i++ {
		tRef := testingBenchTime(func() {
			for r := 0; r < 2; r++ {
				if _, err := trainReference(cfg, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		tCompiled := testingBenchTime(func() {
			for r := 0; r < 2; r++ {
				if _, err := Train(cfg, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup = tRef / tCompiled
	}
	b.ReportMetric(speedup, "train_speedup")
}

// BenchmarkTrainSplitScan is the steady-state training hot path in
// isolation: per-feature order building, the split scans of a root
// node, and one stable partition, on a warm trainer. Its baseline pins
// allocs/op at 0 — the hard benchguard gate behind the
// //acclaim:zeroalloc annotations in trainer.go.
func BenchmarkTrainSplitScan(b *testing.B) {
	x, y := benchData(2000)
	cfg := Config{NTrees: 1, Seed: 7, Workers: 1}.withDefaults(len(x[0]))
	bs := newBinset(len(x), len(x[0]), func(f int, dst []float64) {
		for i, row := range x {
			dst[i] = row[f]
		}
	})
	tr := &trainer{bs: bs, y: y, cfg: cfg}
	boot := make([]int, len(x))
	for i := range boot {
		boot[i] = i
	}
	tr.fitTree(7, boot) // warm every scratch buffer
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.buildOrders()
		feat, th, cut, ok := 0, 0.0, int32(0), false
		for f := 0; f < tr.bs.nf; f++ {
			if _, t2, c, o := tr.scanFeature(f, 0, tr.nb, 1e18); o {
				feat, th, cut, ok = f, t2, c, o
			}
		}
		if ok {
			tr.stablePartition(tr.idx, feat, cut)
			sink += th
		}
	}
	_ = sink
}

func benchScore(b *testing.B, batch bool) {
	x, y := benchData(2000)
	f, err := Train(Config{NTrees: 100, Seed: 7}, x, y)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	queries := make([][]float64, 1024)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 16, rng.Float64() * 8, rng.Float64() * 20, rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			_ = f.JackknifeVarianceBatch(queries)
		} else {
			for _, q := range queries {
				_ = f.JackknifeVariance(q)
			}
		}
	}
}

// BenchmarkJackknifePointwise scores 1024 candidates one call at a
// time — the pre-batching active-learning sweep.
func BenchmarkJackknifePointwise(b *testing.B) { benchScore(b, false) }

// BenchmarkJackknifeBatch scores the same 1024 candidates through
// JackknifeVarianceBatch.
func BenchmarkJackknifeBatch(b *testing.B) { benchScore(b, true) }

// BenchmarkPredictBatch measures the batched mean-prediction sweep.
func BenchmarkPredictBatch(b *testing.B) {
	x, y := benchData(2000)
	f, err := Train(Config{NTrees: 100, Seed: 7}, x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.PredictBatch(x)
	}
}

// kernelBench builds the paper-scale scoring workload of the ISSUE 5
// acceptance criteria: a 30-tree forest (default depth 14) over the
// 7-dim featspace-shaped encoding, 2048 flat queries, serial workers
// (the zero-alloc path; parallel fan-out is covered by correctness
// tests).
func kernelBench(b *testing.B) (*Forest, *Kernel, [][]float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	row := func() []float64 {
		return []float64{
			rng.Float64() * 64, rng.Float64() * 32, rng.Float64() * 20,
			rng.Float64() * 11, rng.Float64(), rng.Float64(), float64(rng.Intn(4)),
		}
	}
	x := make([][]float64, 2000)
	y := make([]float64, 2000)
	for i := range x {
		x[i] = row()
		y[i] = math.Log1p(x[i][0]*x[i][2]) + math.Sin(x[i][3]) + x[i][6] + rng.NormFloat64()*0.05
	}
	f, err := Train(Config{NTrees: 30, Seed: 7, Workers: 1}, x, y)
	if err != nil {
		b.Fatal(err)
	}
	const nq = 2048
	qs := make([][]float64, nq)
	flat := make([]float64, 0, nq*7)
	for i := range qs {
		qs[i] = row()
		flat = append(flat, qs[i]...)
	}
	return f, f.Compile(), qs, flat
}

// BenchmarkKernelScoreFlat is the fused compiled sweep (mean +
// jackknife variance in one pass). Steady state is zero-alloc — the
// baseline pins allocs/op at 0 as a hard benchguard gate.
func BenchmarkKernelScoreFlat(b *testing.B) {
	_, k, _, flat := kernelBench(b)
	mean := make([]float64, len(flat)/7)
	vari := make([]float64, len(flat)/7)
	runtime.GC()                  // quiesce training garbage so no cycle empties the pool mid-run
	k.ScoreFlat(flat, mean, vari) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScoreFlat(flat, mean, vari)
	}
}

// BenchmarkKernelPredictFlat is the compiled mean-prediction sweep,
// also gated at 0 allocs/op.
func BenchmarkKernelPredictFlat(b *testing.B) {
	_, k, _, flat := kernelBench(b)
	out := make([]float64, len(flat)/7)
	runtime.GC()             // quiesce training garbage so no cycle empties the pool mid-run
	k.PredictFlat(flat, out) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PredictFlat(flat, out)
	}
}

// BenchmarkKernelSpeedup times the reference JackknifeVarianceBatch
// against the fused kernel sweep on identical inputs (both serial, so
// the ratio measures the representation, not the pool) and reports the
// ratio as the kernel_speedup metric; CI gates it with
// `benchguard -floor kernel_speedup=3`.
func BenchmarkKernelSpeedup(b *testing.B) {
	f, k, qs, flat := kernelBench(b)
	vari := make([]float64, len(qs))
	k.ScoreFlat(flat, nil, vari) // warm the scratch pool
	var speedup float64
	for i := 0; i < b.N; i++ {
		tRef := testingBenchTime(func() {
			for r := 0; r < 8; r++ {
				_ = f.JackknifeVarianceBatch(qs)
			}
		})
		tKern := testingBenchTime(func() {
			for r := 0; r < 8; r++ {
				k.ScoreFlat(flat, nil, vari)
			}
		})
		speedup = tRef / tKern
	}
	b.ReportMetric(speedup, "kernel_speedup")
}
