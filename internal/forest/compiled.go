// Compiled forest inference: Forest.Compile lowers a trained forest
// into a structure-of-arrays Kernel whose batch entry points are the
// scoring hot path of every autotuner round (the jackknife sweep over
// the candidate pool, Section IV-A) and of the rule-extraction and
// evaluation sweeps.
//
// Layout. The per-tree []node arenas are concatenated into flat
// per-forest slices — feature[], thresh[], left[], right[], value[] —
// plus roots[] / depths[] offsets per tree, plus a packed steering
// word meta[] = right<<32 | feature for the batch walk. There is no
// per-node struct and no per-tree slice header: a batch descent step
// loads only one 8-byte steering word and one 8-byte threshold
// instead of copying a 40-byte node struct. Leaves are encoded as
// feature == -1 and lowered as self-loops (left == right == self,
// steering word self<<32, thresh == NaN so the descent compare never
// fires) — the batch walk needs no leaf special case; left children
// sit at parent+1 by the builder's arena order.
//
// Tiling. Batch calls walk tree x query tiles: queries are cut into
// blocks of blockQ rows, and within a block the kernel iterates trees
// in the outer loop — one tree's nodes stay cache-hot across the whole
// block instead of every query re-faulting all NTrees working sets.
// The fused score path computes the ensemble mean and the jackknife
// variance in one streaming pass over the tile: per-query running sums
// during the prediction pass, then a second pass over the (NTrees x
// blockQ) tile — never a trees x queries matrix.
//
// Determinism. For each query, per-tree predictions are accumulated in
// tree order (the tile loops keep t ascending for every fixed q), and
// the mean / jackknife arithmetic repeats the reference expressions of
// Forest.Predict and stats.JackknifeVariance operation for operation,
// so kernel results are bit-identical to the pointer-walk path at
// every Workers count — FuzzCompiledDifferential holds that line.
package forest

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// blockQ is the query-tile width. 64 queries x 30 trees is a 15 KiB
// prediction tile — comfortably L1/L2-resident next to one tree's
// nodes.
const blockQ = 64

// Kernel is a compiled, immutable inference representation of a
// trained Forest. All methods are safe for concurrent use: the node
// arrays are read-only after Compile and per-call scratch comes from
// an internal pool. Batch results are bit-identical to the Forest's
// pointer-walk methods for every Workers setting.
//
//acclaim:frozen
type Kernel struct {
	nTrees    int
	nFeatures int
	workers   int // Config.Workers of the source forest

	// Structure-of-arrays node storage. Leaves have feature == -1 and
	// their prediction in value; internal nodes hold global (already
	// tree-offset) child indices in left/right.
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
	roots   []int32 // per-tree root offset into the node arrays
	depths  []int32 // per-tree depth, bounds the level-synchronous batch walk

	// meta packs each node's batch-walk steering word:
	// right-child index << 32 | feature index (leaf: self << 32 | 0).
	// One load per descent step replaces separate feature/right loads.
	meta []int64

	pool sync.Pool // *kernelScratch, reused across batch calls
}

// kernelScratch is one worker's tile buffers. Instances are pooled on
// the Kernel, so steady-state batch scoring performs no allocations.
type kernelScratch struct {
	preds []float64 // nTrees x blockQ per-tree prediction tile, tree-major
	sums  []float64 // per-query running sum over trees
	xps   []float64 // per-query ensemble mean (the jackknife x_p)
	acc   []float64 // per-query jackknife accumulator
	idx   []int32   // per-query node cursor for the level-synchronous walk
}

// Compile lowers the trained forest into its SoA inference kernel.
// The kernel shares no state with the forest and inherits its Workers
// setting for batch fan-out.
func (f *Forest) Compile() *Kernel {
	total := 0
	for i := range f.trees {
		total += len(f.trees[i].nodes)
	}
	k := &Kernel{
		nTrees:    len(f.trees),
		nFeatures: f.nFeatures,
		workers:   f.cfg.Workers,
		feature:   make([]int32, total),
		thresh:    make([]float64, total),
		left:      make([]int32, total),
		right:     make([]int32, total),
		value:     make([]float64, total),
		meta:      make([]int64, total),
		roots:     make([]int32, len(f.trees)),
		depths:    make([]int32, len(f.trees)),
	}
	base := 0
	for ti := range f.trees {
		k.roots[ti] = int32(base)
		k.depths[ti] = int32(nodeDepth(f.trees[ti].nodes, 0))
		for ni, n := range f.trees[ti].nodes {
			j := base + ni
			k.value[j] = n.value
			if n.left == -1 {
				// Leaves self-loop with a NaN threshold: x <= NaN is
				// false for every x (including +-Inf and NaN), so the
				// batch walk's compare never fires, its steering word
				// sends the cursor back to itself, and no leaf test is
				// needed at all. The scalar walk still stops on
				// feature == -1.
				k.feature[j] = -1
				k.thresh[j] = math.NaN()
				k.left[j] = int32(j)
				k.right[j] = int32(j)
				k.meta[j] = int64(j) << 32 // feature slot 0: any in-range column
				continue
			}
			if n.left != ni+1 {
				// The batch walk derives the left child as i+1 instead of
				// loading it; the builder's arena order (parent, left
				// subtree, right subtree) guarantees the adjacency.
				panic("forest: tree arena violates left-child adjacency")
			}
			k.feature[j] = int32(n.feature)
			k.thresh[j] = n.thresh
			k.left[j] = int32(base + n.left)
			k.right[j] = int32(base + n.right)
			k.meta[j] = int64(base+n.right)<<32 | int64(uint32(n.feature))
		}
		base += len(f.trees[ti].nodes)
	}
	return k
}

// nodeDepth returns the edge depth of the subtree rooted at i: 0 for a
// leaf. Tree depth is bounded by Config.MaxDepth, so recursion is safe.
func nodeDepth(nodes []node, i int) int {
	n := nodes[i]
	if n.left == -1 {
		return 0
	}
	l := nodeDepth(nodes, n.left)
	r := nodeDepth(nodes, n.right)
	if r > l {
		l = r
	}
	return l + 1
}

// NumTrees returns the ensemble size.
func (k *Kernel) NumTrees() int { return k.nTrees }

// NumFeatures returns the feature dimensionality the source forest was
// trained on.
func (k *Kernel) NumFeatures() int { return k.nFeatures }

// NumNodes returns the total node count across all trees.
func (k *Kernel) NumNodes() int { return len(k.feature) }

// walk traverses one tree from node i for the query row x and returns
// its leaf prediction.
//
//acclaim:zeroalloc
func (k *Kernel) walk(i int, x []float64) float64 {
	feat, thresh := k.feature, k.thresh
	left, right := k.left, k.right
	for {
		f := feat[i]
		if f < 0 {
			return k.value[i]
		}
		if x[f] <= thresh[i] {
			i = int(left[i])
		} else {
			i = int(right[i])
		}
	}
}

// walkLevels advances every query of the tile through tree t
// level-synchronously: idx holds one node cursor per query, and each
// pass over the tile descends every cursor by one level, for the
// tree's compiled depth. Scalar traversal is bound by a dependent-load
// chain and a 50/50 descent branch; here the tile's loads within one
// level are all independent (blockQ load chains in flight) and the
// descent is a branchless conditional move over the packed steering
// word — the left child is the arena-adjacent i+1 (no left[] load),
// and a leaf's self-loop steering with NaN threshold parks finished
// queries in place with no leaf test at all. The <= compare keeps the
// reference path's NaN polarity (NaN descends right). Each cursor
// lands on exactly the leaf its scalar walk reaches.
//
//acclaim:zeroalloc
func (k *Kernel) walkLevels(t int, x []float64, q0, nq int, idx []int32) {
	meta, thresh := k.meta, k.thresh
	root := k.roots[t]
	idx = idx[:nq]
	for q := range idx {
		idx[q] = root
	}
	nf := k.nFeatures
	for d := int32(0); d < k.depths[t]; d++ {
		base := q0 * nf
		for q := range idx {
			i := int(idx[q])
			m := meta[i]
			nxt := int(m >> 32) // right child (leaf: self)
			if x[base+int(int32(m))] <= thresh[i] {
				nxt = i + 1 // left child by arena adjacency (never chosen for leaves: thresh is NaN)
			}
			idx[q] = int32(nxt)
			base += nf
		}
	}
}

// Predict returns the ensemble mean prediction for x, bit-identical to
// Forest.Predict. It panics if x has the wrong dimensionality.
//
//acclaim:zeroalloc
func (k *Kernel) Predict(x []float64) float64 {
	k.check(x)
	var s float64
	for t := 0; t < k.nTrees; t++ {
		s += k.walk(int(k.roots[t]), x)
	}
	return s / float64(k.nTrees)
}

// PredictFlat fills out[i] with the ensemble mean prediction for row i
// of the row-major flat matrix x (len(out) rows x NumFeatures
// columns). It is the zero-allocation batch entry point: callers own
// both buffers and the kernel's scratch is pooled.
func (k *Kernel) PredictFlat(x, out []float64) {
	k.checkFlat(x, len(out))
	k.dispatch(x, out, nil, len(out), false)
}

// ScoreFlat is the fused scoring kernel: one streaming pass fills
// mean[i] with the ensemble mean and vari[i] with the jackknife
// variance for row i of the row-major flat matrix x. mean may be nil
// when only variances are wanted (the active-learning sweep). Results
// are bit-identical to Forest.PredictBatch and
// Forest.JackknifeVarianceBatch.
func (k *Kernel) ScoreFlat(x, mean, vari []float64) {
	if mean != nil && len(mean) != len(vari) {
		panic(fmt.Sprintf("forest: fused score with %d mean slots but %d variance slots", len(mean), len(vari)))
	}
	k.checkFlat(x, len(vari))
	k.dispatch(x, mean, vari, len(vari), true)
}

// PredictBatch returns the ensemble mean prediction for every row of
// xs — the drop-in compiled form of Forest.PredictBatch, including its
// per-row dimensionality panic. The flat entry points avoid this
// wrapper's flatten copy.
func (k *Kernel) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	k.PredictFlat(k.flatten(xs), out)
	return out
}

// JackknifeVarianceBatch returns the jackknife variance at every row
// of xs — the drop-in compiled form of Forest.JackknifeVarianceBatch.
func (k *Kernel) JackknifeVarianceBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	k.ScoreFlat(k.flatten(xs), nil, out)
	return out
}

// flatten checks every row exactly as the reference path does and
// copies xs into one row-major buffer.
func (k *Kernel) flatten(xs [][]float64) []float64 {
	for _, x := range xs {
		k.check(x)
	}
	flat := make([]float64, 0, len(xs)*k.nFeatures)
	for _, x := range xs {
		flat = append(flat, x...)
	}
	return flat
}

// dispatch fans query blocks across the worker pool. Each block's
// outputs depend only on its own rows, so results are identical for
// every worker count. The serial path (Workers 1, or a single block)
// runs inline and allocation-free; the parallel path pays O(workers)
// goroutine startup per call.
func (k *Kernel) dispatch(x, mean, vari []float64, rows int, fused bool) {
	nb := (rows + blockQ - 1) / blockQ
	w := k.workersFor(nb)
	if w == 1 {
		s := k.getScratch()
		for b := 0; b < nb; b++ {
			k.runBlock(s, x, b, rows, mean, vari, fused)
		}
		k.pool.Put(s)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := k.getScratch()
			defer k.pool.Put(s)
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				k.runBlock(s, x, b, rows, mean, vari, fused)
			}
		}()
	}
	wg.Wait()
}

// runBlock scores one query tile.
func (k *Kernel) runBlock(s *kernelScratch, x []float64, b, rows int, mean, vari []float64, fused bool) {
	q0 := b * blockQ
	nq := rows - q0
	if nq > blockQ {
		nq = blockQ
	}
	if fused {
		k.scoreBlock(s, x, q0, nq, mean, vari)
	} else {
		k.predictBlock(s, x, q0, nq, mean)
	}
}

// predictBlock fills out[q0:q0+nq] with ensemble means for the tile.
// Per-query sums accumulate in tree order, so the result repeats
// Forest.Predict's float arithmetic exactly.
//
//acclaim:zeroalloc
func (k *Kernel) predictBlock(s *kernelScratch, x []float64, q0, nq int, out []float64) {
	nt := k.nTrees
	sums := s.sums[:nq]
	for q := range sums {
		sums[q] = 0
	}
	idx := s.idx[:nq]
	for t := 0; t < nt; t++ {
		k.walkLevels(t, x, q0, nq, idx)
		for q := 0; q < nq; q++ {
			sums[q] += k.value[idx[q]]
		}
	}
	for q := 0; q < nq; q++ {
		out[q0+q] = sums[q] / float64(nt)
	}
}

// scoreBlock is the fused mean + jackknife tile kernel. Pass one walks
// every tree over the block, filling the tree-major prediction tile
// and per-query sums; pass two streams the tile again to accumulate
// the jackknife deviations. Both passes keep t ascending per query, so
// every float operation matches stats.JackknifeVariance's reference
// loop bit for bit.
//
//acclaim:zeroalloc
func (k *Kernel) scoreBlock(s *kernelScratch, x []float64, q0, nq int, mean, vari []float64) {
	nt := k.nTrees
	sums := s.sums[:nq]
	for q := range sums {
		sums[q] = 0
	}
	preds := s.preds
	idx := s.idx[:nq]
	for t := 0; t < nt; t++ {
		k.walkLevels(t, x, q0, nq, idx)
		row := preds[t*blockQ : t*blockQ+nq]
		for q := 0; q < nq; q++ {
			v := k.value[idx[q]]
			row[q] = v
			sums[q] += v
		}
	}
	if nt < 2 {
		// Degenerate ensemble: a single prediction carries no spread
		// (stats.JackknifeVariance returns 0 for n < 2).
		for q := 0; q < nq; q++ {
			if mean != nil {
				mean[q0+q] = sums[q] / float64(nt)
			}
			vari[q0+q] = 0
		}
		return
	}
	xps := s.xps[:nq]
	acc := s.acc[:nq]
	n := float64(nt)
	nm1 := float64(nt - 1)
	for q := 0; q < nq; q++ {
		xps[q] = sums[q] / n
		acc[q] = 0
	}
	for t := 0; t < nt; t++ {
		row := preds[t*blockQ : t*blockQ+nq]
		for q := 0; q < nq; q++ {
			xi := (sums[q] - row[q]) / nm1
			d := xps[q] - xi
			acc[q] += d * d
		}
	}
	for q := 0; q < nq; q++ {
		if mean != nil {
			mean[q0+q] = xps[q]
		}
		vari[q0+q] = acc[q] / nm1
	}
}

// getScratch returns pooled tile buffers, allocating only on pool
// misses (first use per concurrent worker).
func (k *Kernel) getScratch() *kernelScratch {
	if s, ok := k.pool.Get().(*kernelScratch); ok {
		return s
	}
	return &kernelScratch{
		preds: make([]float64, k.nTrees*blockQ),
		sums:  make([]float64, blockQ),
		xps:   make([]float64, blockQ),
		acc:   make([]float64, blockQ),
		idx:   make([]int32, blockQ),
	}
}

// workersFor resolves the pool size for n blocks, mirroring
// Config.workers.
func (k *Kernel) workersFor(n int) int {
	w := k.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// check panics exactly like Forest.check for a wrong-width query row.
func (k *Kernel) check(x []float64) {
	if len(x) != k.nFeatures {
		panic(fmt.Sprintf(dimPanicFormat, len(x), k.nFeatures))
	}
}

// checkFlat validates a flat row-major batch against the expected row
// count.
func (k *Kernel) checkFlat(x []float64, rows int) {
	if len(x) != rows*k.nFeatures {
		panic(fmt.Sprintf("forest: flat batch has %d values, want %d rows x %d features", len(x), rows, k.nFeatures))
	}
}
