package forest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// trainedKernel fits a forest on a noisy nonlinear target and compiles
// it, returning both paths plus a query batch.
func trainedKernel(t testing.TB, cfg Config, nSamples, nQueries int) (*Forest, *Kernel, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := make([][]float64, nSamples)
	y := make([]float64, nSamples)
	for i := range x {
		x[i] = []float64{rng.Float64() * 16, rng.Float64() * 8, rng.Float64() * 20, rng.Float64()}
		y[i] = math.Log1p(x[i][0]*x[i][2]) + math.Sin(x[i][1]) + rng.NormFloat64()*0.05
	}
	f, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, nQueries)
	for i := range qs {
		qs[i] = []float64{rng.Float64() * 20, rng.Float64() * 10, rng.Float64() * 24, rng.Float64() * 2}
	}
	return f, f.Compile(), qs
}

// flatten concatenates equal-length rows into one row-major buffer.
func flatten(xs [][]float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	flat := make([]float64, 0, len(xs)*len(xs[0]))
	for _, x := range xs {
		flat = append(flat, x...)
	}
	return flat
}

// TestCompiledBitIdentical is the core contract: every compiled entry
// point reproduces the reference pointer-walk results bit for bit, at
// several Workers settings and batch sizes (crossing block boundaries
// both ways).
func TestCompiledBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 0} {
		for _, nq := range []int{1, 7, blockQ, blockQ + 1, 3*blockQ + 11} {
			t.Run(fmt.Sprintf("workers=%d/nq=%d", workers, nq), func(t *testing.T) {
				cfg := Config{NTrees: 12, MaxDepth: 8, Seed: 3, Workers: workers}
				f, k, qs := trainedKernel(t, cfg, 400, nq)

				wantP := f.PredictBatch(qs)
				wantV := f.JackknifeVarianceBatch(qs)
				gotP := k.PredictBatch(qs)
				gotV := k.JackknifeVarianceBatch(qs)
				for i := range qs {
					if gotP[i] != wantP[i] {
						t.Fatalf("PredictBatch[%d]: kernel %v != reference %v", i, gotP[i], wantP[i])
					}
					if gotV[i] != wantV[i] {
						t.Fatalf("JackknifeVarianceBatch[%d]: kernel %v != reference %v", i, gotV[i], wantV[i])
					}
					if got := k.Predict(qs[i]); got != f.Predict(qs[i]) {
						t.Fatalf("Predict[%d]: kernel %v != reference %v", i, got, f.Predict(qs[i]))
					}
				}

				// The fused flat path must agree with both wrappers at once.
				flat := flatten(qs)
				mean := make([]float64, nq)
				vari := make([]float64, nq)
				k.ScoreFlat(flat, mean, vari)
				for i := range qs {
					if mean[i] != wantP[i] || vari[i] != wantV[i] {
						t.Fatalf("ScoreFlat[%d]: (%v, %v) != reference (%v, %v)",
							i, mean[i], vari[i], wantP[i], wantV[i])
					}
				}
				out := make([]float64, nq)
				k.PredictFlat(flat, out)
				for i := range qs {
					if out[i] != wantP[i] {
						t.Fatalf("PredictFlat[%d]: %v != %v", i, out[i], wantP[i])
					}
				}
			})
		}
	}
}

// TestCompiledPureLeafTrees compiles a forest whose trees are all
// single leaves (constant target collapses every split).
func TestCompiledPureLeafTrees(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []float64{7, 7, 7}
	f, err := Train(Config{NTrees: 5, Seed: 1}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	k := f.Compile()
	if k.NumNodes() != 5 {
		t.Fatalf("pure-leaf forest compiled to %d nodes, want 5", k.NumNodes())
	}
	q := []float64{100, -3}
	if got, want := k.Predict(q), f.Predict(q); got != want {
		t.Fatalf("Predict on pure-leaf kernel: %v != %v", got, want)
	}
	if got, want := k.JackknifeVarianceBatch([][]float64{q}), f.JackknifeVarianceBatch([][]float64{q}); got[0] != want[0] {
		t.Fatalf("variance on pure-leaf kernel: %v != %v", got[0], want[0])
	}
}

// TestCompiledSingleTree covers the jackknife degenerate case NTrees=1
// (the reference returns variance 0 for ensembles smaller than 2).
func TestCompiledSingleTree(t *testing.T) {
	cfg := Config{NTrees: 1, MaxDepth: 6, Seed: 9, Workers: 1}
	f, k, qs := trainedKernel(t, cfg, 200, 50)
	wantP := f.PredictBatch(qs)
	wantV := f.JackknifeVarianceBatch(qs)
	mean := make([]float64, len(qs))
	vari := make([]float64, len(qs))
	k.ScoreFlat(flatten(qs), mean, vari)
	for i := range qs {
		if mean[i] != wantP[i] {
			t.Fatalf("single-tree mean[%d]: %v != %v", i, mean[i], wantP[i])
		}
		if vari[i] != 0 || wantV[i] != 0 {
			t.Fatalf("single-tree variance[%d]: kernel %v, reference %v, want 0", i, vari[i], wantV[i])
		}
	}
}

// TestCompiledEmptyBatch checks the zero-row cases on every entry
// point.
func TestCompiledEmptyBatch(t *testing.T) {
	_, k, _ := trainedKernel(t, Config{NTrees: 4, Seed: 2}, 100, 0)
	if got := k.PredictBatch(nil); len(got) != 0 {
		t.Fatalf("PredictBatch(nil) returned %d rows", len(got))
	}
	if got := k.JackknifeVarianceBatch([][]float64{}); len(got) != 0 {
		t.Fatalf("JackknifeVarianceBatch(empty) returned %d rows", len(got))
	}
	k.ScoreFlat(nil, nil, nil)
	k.PredictFlat(nil, nil)
}

// panicMessage runs fn and returns the recovered panic value's string.
func panicMessage(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		fn()
	}()
	if msg == "" {
		t.Fatal("expected a panic")
	}
	return msg
}

// TestCompiledRaggedRowPanic asserts the compiled path panics with the
// exact message the reference path uses for wrong-width rows.
func TestCompiledRaggedRowPanic(t *testing.T) {
	f, k, _ := trainedKernel(t, Config{NTrees: 3, Seed: 4}, 100, 0)
	short := []float64{1, 2}
	want := panicMessage(t, func() { f.Predict(short) })

	if got := panicMessage(t, func() { k.Predict(short) }); got != want {
		t.Fatalf("Predict panic:\n got %q\nwant %q", got, want)
	}
	if got := panicMessage(t, func() { k.PredictBatch([][]float64{{1, 2, 3, 4}, short}) }); got != want {
		t.Fatalf("PredictBatch panic:\n got %q\nwant %q", got, want)
	}
	if got := panicMessage(t, func() { k.JackknifeVarianceBatch([][]float64{short}) }); got != want {
		t.Fatalf("JackknifeVarianceBatch panic:\n got %q\nwant %q", got, want)
	}
	refBatch := panicMessage(t, func() { f.JackknifeVarianceBatch([][]float64{short}) })
	if refBatch != want {
		t.Fatalf("reference batch panic drifted: %q vs %q", refBatch, want)
	}

	// The flat entry points reject length mismatches too (panicMessage
	// fails the test if no panic arrives).
	panicMessage(t, func() { k.ScoreFlat(make([]float64, 5), nil, make([]float64, 2)) })
	panicMessage(t, func() { k.ScoreFlat(make([]float64, 8), make([]float64, 1), make([]float64, 2)) })
	panicMessage(t, func() { k.PredictFlat(make([]float64, 5), make([]float64, 2)) })
}

// TestCompiledConcurrentScoring hammers one shared kernel from many
// goroutines (run under -race in CI): the node arrays are read-only and
// scratch is pooled, so concurrent batch scoring must be safe and
// bit-identical.
func TestCompiledConcurrentScoring(t *testing.T) {
	cfg := Config{NTrees: 10, MaxDepth: 8, Seed: 6, Workers: 2}
	f, k, qs := trainedKernel(t, cfg, 300, 200)
	want := f.JackknifeVarianceBatch(qs)
	flat := flatten(qs)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vari := make([]float64, len(qs))
			for it := 0; it < 20; it++ {
				k.ScoreFlat(flat, nil, vari)
				for i := range vari {
					if vari[i] != want[i] {
						errs <- fmt.Errorf("concurrent ScoreFlat[%d]: %v != %v", i, vari[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKernelZeroAlloc is the runtime half of the //acclaim:zeroalloc
// annotations: steady-state serial scoring through the flat entry
// points performs zero allocations per op (testing.AllocsPerRun).
func TestKernelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates inside sync.Pool")
	}
	cfg := Config{NTrees: 8, MaxDepth: 8, Seed: 5, Workers: 1}
	_, k, qs := trainedKernel(t, cfg, 300, 3*blockQ+7)
	flat := flatten(qs)
	mean := make([]float64, len(qs))
	vari := make([]float64, len(qs))
	q := qs[0]

	// Quiesce training garbage, then warm the scratch pool once; the
	// steady state starts here (a GC mid-measurement would empty the
	// pool and charge the refill to the measured path).
	runtime.GC()
	k.ScoreFlat(flat, mean, vari)

	if n := testing.AllocsPerRun(100, func() { k.ScoreFlat(flat, mean, vari) }); n != 0 {
		t.Errorf("ScoreFlat allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.PredictFlat(flat, mean) }); n != 0 {
		t.Errorf("PredictFlat allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = k.Predict(q) }); n != 0 {
		t.Errorf("Predict allocates %v per op, want 0", n)
	}
}

// TestCompileLayout sanity-checks the SoA lowering: node counts match,
// every leaf is feature==-1, and child indices stay inside the tree's
// node range.
func TestCompileLayout(t *testing.T) {
	f, k, _ := trainedKernel(t, Config{NTrees: 6, MaxDepth: 6, Seed: 8}, 300, 0)
	total := 0
	for i := range f.trees {
		total += len(f.trees[i].nodes)
	}
	if k.NumNodes() != total {
		t.Fatalf("kernel has %d nodes, forest has %d", k.NumNodes(), total)
	}
	if k.NumTrees() != f.NumTrees() || k.NumFeatures() != f.NumFeatures() {
		t.Fatalf("kernel shape (%d trees, %d features) != forest (%d, %d)",
			k.NumTrees(), k.NumFeatures(), f.NumTrees(), f.NumFeatures())
	}
	for ti := 0; ti < k.NumTrees(); ti++ {
		lo := int(k.roots[ti])
		hi := k.NumNodes()
		if ti+1 < k.NumTrees() {
			hi = int(k.roots[ti+1])
		}
		for j := lo; j < hi; j++ {
			if m, want := k.meta[j], steeringWord(k, j); m != want {
				t.Fatalf("node %d steering word %#x, want %#x", j, m, want)
			}
			if k.feature[j] < 0 {
				if int(k.left[j]) != j || int(k.right[j]) != j || !math.IsNaN(k.thresh[j]) {
					t.Fatalf("leaf node %d is not a self-loop with NaN threshold", j)
				}
				continue
			}
			if int(k.left[j]) != j+1 {
				t.Fatalf("node %d left child %d breaks arena adjacency", j, k.left[j])
			}
			if int(k.left[j]) < lo || int(k.left[j]) >= hi || int(k.right[j]) < lo || int(k.right[j]) >= hi {
				t.Fatalf("node %d children escape tree %d's range [%d, %d)", j, ti, lo, hi)
			}
		}
	}
}

// steeringWord recomputes the packed batch-walk word for node j from
// the unpacked arrays: right<<32 | feature, with a leaf steering to
// itself through feature slot 0.
func steeringWord(k *Kernel, j int) int64 {
	if k.feature[j] < 0 {
		return int64(j) << 32
	}
	return int64(k.right[j])<<32 | int64(uint32(k.feature[j]))
}
