// Package forest is a from-scratch random-forest regressor — the model
// family ACCLAiM uses (the paper uses scikit-learn's
// RandomForestRegressor; Section V). It provides CART regression trees
// with variance-reduction splits, bootstrap bagging, optional feature
// subsampling, and the jackknife uncertainty estimate over the ensemble
// (Wager, Hastie & Efron), which is the signal ACCLAiM's active
// learning uses to pick training points.
//
// Training and batch scoring run on a bounded worker pool
// (Config.Workers). The per-tree RNG state is drawn from the master
// stream before any goroutine starts, so the trained forest is
// bit-identical for every worker count — see DESIGN.md, "Concurrency
// model".
package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"acclaim/internal/obs"
	"acclaim/internal/stats"
)

// Config holds the forest hyperparameters. Zero fields take defaults.
type Config struct {
	NTrees   int   // ensemble size (default 30)
	MaxDepth int   // maximum tree depth (default 14)
	MinLeaf  int   // minimum samples per leaf (default 1)
	MTry     int   // features considered per split (default: all)
	Seed     int64 // RNG seed for bootstrap and feature sampling

	// Workers bounds the goroutine pool used by Train and the Batch
	// scoring methods. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// serial path. The trained forest and all scores are independent of
	// this value.
	Workers int

	// Metrics, when non-nil, receives per-Train observability (tree
	// fit timing, pool occupancy). Nil costs nothing.
	Metrics *Metrics
}

// Metrics are the forest's registry handles. Build with NewMetrics and
// share one instance across every Config that should report into the
// same registry.
type Metrics struct {
	Trains    *obs.Counter   // forest.trains_total: Train calls
	Trees     *obs.Counter   // forest.trees_total: trees grown
	Workers   *obs.Gauge     // forest.train_workers: pool size of the last Train
	TreeFitNs *obs.Histogram // forest.tree_fit_ns: per-tree growth time
	TrainNs   *obs.Histogram // forest.train_ns: whole-Train wall time
	// PoolBusyNs accumulates summed per-tree growth time; divided by
	// train_ns x train_workers it yields worker-pool occupancy.
	PoolBusyNs *obs.Gauge // forest.pool_busy_ns
}

// NewMetrics registers the forest metric set on reg (nil reg gives
// all-nil, no-op handles).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Trains:     reg.Counter("forest.trains_total"),
		Trees:      reg.Counter("forest.trees_total"),
		Workers:    reg.Gauge("forest.train_workers"),
		TreeFitNs:  reg.Histogram("forest.tree_fit_ns"),
		TrainNs:    reg.Histogram("forest.train_ns"),
		PoolBusyNs: reg.Gauge("forest.pool_busy_ns"),
	}
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.NTrees == 0 {
		c.NTrees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 14
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 1
	}
	if c.MTry == 0 || c.MTry > nFeatures {
		c.MTry = nFeatures
	}
	return c
}

// workers resolves the effective pool size for n independent work items.
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// node is one tree node in a flat arena. Leaves have left == -1.
type node struct {
	feature int
	thresh  float64
	left    int
	right   int
	value   float64
}

// tree is a CART regression tree.
type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := t.nodes[i]
		if n.left == -1 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Forest is a trained random-forest regressor. It is immutable and safe
// for concurrent prediction.
type Forest struct {
	cfg       Config
	trees     []tree
	nFeatures int
}

// validateRows checks the row-of-slices training input shape and
// returns the feature count.
func validateRows(x [][]float64, y []float64) (nf int, err error) {
	if len(x) == 0 {
		return 0, errors.New("forest: no training samples")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("forest: %d samples but %d targets", len(x), len(y))
	}
	nf = len(x[0])
	if nf == 0 {
		return 0, errors.New("forest: samples have no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return 0, fmt.Errorf("forest: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	return nf, nil
}

// Train fits a forest on X (rows are samples) and y. All rows must have
// equal length and all values must be finite. Training is deterministic
// for a given Config.Seed: the bootstrap indices and per-tree builder
// seeds are drawn from the master RNG stream up front, in tree order,
// exactly as a serial loop would draw them, and only then are the trees
// grown on the worker pool — so every Workers setting yields a
// bit-identical forest.
//
// Tree growth runs on the compiled histogram trainer (see trainer.go),
// which is bit-identical to the reference builder kept in this file —
// FuzzTrainDifferential holds that line.
func Train(cfg Config, x [][]float64, y []float64) (*Forest, error) {
	nf, err := validateRows(x, y)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(nf)
	bs := newBinset(len(x), nf, func(f int, dst []float64) {
		for i, row := range x {
			dst[i] = row[f]
		}
	})
	return train(cfg, len(x), nf, y, func() fitter {
		return &trainer{bs: bs, y: y, cfg: cfg}
	}), nil
}

// trainReference is the pre-histogram training path: identical
// validation, pre-draw, and pool, with trees grown by the reference
// builder. It is the differential oracle FuzzTrainDifferential and the
// training benchmarks compare the compiled trainer against.
func trainReference(cfg Config, x [][]float64, y []float64) (*Forest, error) {
	nf, err := validateRows(x, y)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(nf)
	return train(cfg, len(x), nf, y, func() fitter {
		return &builder{x: x, y: y, cfg: cfg}
	}), nil
}

// fitter grows one tree at a time. Train instantiates one fitter per
// worker goroutine so scratch buffers are reused across the trees that
// worker grows; the returned arena is retained by the Forest.
type fitter interface {
	fitTree(seed int64, boot []int) []node
}

// train is the shared training loop behind Train, TrainFlat, and
// trainReference: cfg must already have defaults applied. It pre-draws
// every tree's random inputs serially from the master stream —
// O(NTrees·nSamples) cheap RNG calls, negligible next to tree growth —
// which is what makes parallel training reproduce the serial forest
// bit for bit at every Workers count.
func train(cfg Config, nSamples, nFeatures int, y []float64, newFitter func() fitter) *Forest {
	f := &Forest{cfg: cfg, trees: make([]tree, cfg.NTrees), nFeatures: nFeatures}

	rng := rand.New(rand.NewSource(cfg.Seed))
	boots := make([][]int, cfg.NTrees)
	seeds := make([]int64, cfg.NTrees)
	flat := make([]int, cfg.NTrees*nSamples) // one allocation for all bootstraps
	for ti := range boots {
		idx := flat[ti*nSamples : (ti+1)*nSamples]
		for i := range idx {
			idx[i] = rng.Intn(nSamples)
		}
		boots[ti] = idx
		seeds[ti] = rng.Int63()
	}

	// Observability: per-tree growth time feeds a histogram and a
	// busy-time accumulator whose ratio to wall time is the pool's
	// occupancy. All of it is skipped (including the clock reads) when
	// Metrics is nil, keeping the uninstrumented path identical.
	met := cfg.Metrics
	var t0 int64
	if met != nil {
		t0 = obs.NowNs()
	}
	grow := func(b fitter, ti int) {
		if met == nil {
			f.trees[ti] = tree{nodes: b.fitTree(seeds[ti], boots[ti])}
			return
		}
		s0 := obs.NowNs()
		f.trees[ti] = tree{nodes: b.fitTree(seeds[ti], boots[ti])}
		d := float64(obs.NowNs() - s0)
		met.TreeFitNs.Observe(d)
		met.PoolBusyNs.Add(d)
	}

	workers := cfg.workers(cfg.NTrees)
	if workers == 1 {
		b := newFitter()
		for ti := range f.trees {
			grow(b, ti)
		}
		trainDone(met, t0, cfg.NTrees, 1)
		return f
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One fitter per worker: its scratch buffers are reused
			// across every tree the worker grows.
			b := newFitter()
			for {
				ti := int(next.Add(1)) - 1
				if ti >= cfg.NTrees {
					return
				}
				grow(b, ti)
			}
		}()
	}
	wg.Wait()
	trainDone(met, t0, cfg.NTrees, workers)
	return f
}

// trainDone records the end-of-Train metrics. t0 is the obs.NowNs
// reading taken when training started.
func trainDone(met *Metrics, t0 int64, trees, workers int) {
	if met == nil {
		return
	}
	met.Trains.Inc()
	met.Trees.Add(uint64(trees))
	met.Workers.Set(float64(workers))
	met.TrainNs.Observe(float64(obs.NowNs() - t0))
}

// fv pairs one sample's feature value with its target for split scans.
type fv struct{ v, y float64 }

// builder grows trees. One builder serves one goroutine; its scratch
// buffers (perm, vals, part) persist across trees to keep per-split
// allocations off the hot path.
type builder struct {
	x     [][]float64
	y     []float64
	cfg   Config
	rng   *rand.Rand
	nodes []node
	hint  int // node count of the last tree grown, sizes the next arena

	perm []int // scratch: feature permutation (mirrors rand.Perm)
	vals []fv  // scratch: sorted (value, target) pairs per split scan
	part []int // scratch: right-side buffer for stable partition
}

// fitTree implements fitter; see build.
func (b *builder) fitTree(seed int64, boot []int) []node { return b.build(seed, boot) }

// build grows one tree from a fresh seed and bootstrap sample and
// returns its node arena. The arena is freshly allocated per tree (it
// is retained by the Forest); all other buffers are reused.
func (b *builder) build(seed int64, boot []int) []node {
	b.rng = rand.New(rand.NewSource(seed))
	b.nodes = make([]node, 0, b.hint)
	b.grow(boot, 0)
	nodes := b.nodes
	b.nodes = nil
	b.hint = len(nodes)
	return nodes
}

// grow builds the subtree over the samples in idx and returns its node
// index. idx is partitioned in place (order-preserving), so the caller
// must not rely on its order afterwards.
func (b *builder) grow(idx []int, depth int) int {
	mean, sse := meanSSE(b.y, idx)
	self := len(b.nodes)
	b.nodes = append(b.nodes, node{left: -1, right: -1, value: mean})
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || sse <= 1e-12 {
		return self
	}
	feat, thresh, ok := b.bestSplit(idx, sse)
	if !ok {
		return self
	}
	left, right := b.partition(idx, feat, thresh)
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return self
	}
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[self].feature = feat
	b.nodes[self].thresh = thresh
	b.nodes[self].left = l
	b.nodes[self].right = r
	return self
}

// partition splits idx into the samples at or below thresh on feat and
// those above, preserving relative order (a stable partition, so the
// split scan downstream sees the same sample order the append-based
// partition produced). It reuses b.part and returns two subslices of
// idx.
func (b *builder) partition(idx []int, feat int, thresh float64) (left, right []int) {
	if cap(b.part) < len(idx) {
		b.part = make([]int, 0, len(idx))
	}
	rbuf := b.part[:0]
	k := 0
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			idx[k] = i
			k++
		} else {
			rbuf = append(rbuf, i)
		}
	}
	b.part = rbuf
	copy(idx[k:], rbuf)
	return idx[:k], idx[k:]
}

// featurePerm fills b.perm with the permutation rand.Perm would produce
// from the same stream (same Intn call sequence, no allocation) and
// returns its first MTry entries.
func (b *builder) featurePerm(n int) []int {
	if cap(b.perm) < n {
		b.perm = make([]int, n)
	}
	return fillPerm(b.rng, b.perm[:n], b.cfg.MTry)
}

// fillPerm overwrites perm with the permutation rand.Perm(len(perm))
// would produce from the same stream (same Intn call sequence, no
// allocation) and returns its first mtry entries. Reference builder and
// compiled trainer share it so both consume the per-tree RNG stream
// identically — a precondition of their bit-identical splits.
func fillPerm(rng *rand.Rand, perm []int, mtry int) []int {
	perm[0] = 0 // scratch may be dirty; rand.Perm starts from a zeroed slice
	for i := 1; i < len(perm); i++ {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	return perm[:mtry]
}

// bestSplit scans MTry random features for the threshold minimizing the
// children's summed SSE. Returns ok=false if no split improves on the
// parent.
func (b *builder) bestSplit(idx []int, parentSSE float64) (feat int, thresh float64, ok bool) {
	nf := len(b.x[0])
	feats := b.featurePerm(nf)
	bestSSE := parentSSE - 1e-12
	if cap(b.vals) < len(idx) {
		b.vals = make([]fv, len(idx))
	}
	vals := b.vals[:len(idx)]
	for _, f := range feats {
		for j, i := range idx {
			vals[j] = fv{b.x[i][f], b.y[i]}
		}
		// The sort must be stable: equal feature values keep the node's
		// sample order, which fixes the float-summation order of the
		// prefix scans below. The compiled trainer reproduces exactly
		// that order with a stable counting sort over pre-binned
		// columns, making its SSE arithmetic — and therefore its chosen
		// splits — bit-identical to this reference path.
		sort.SliceStable(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		// Prefix sums let each candidate threshold be scored in O(1).
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, e := range vals {
			sumR += e.y
			sumSqR += e.y * e.y
		}
		nL := 0
		nR := len(vals)
		for j := 0; j < len(vals)-1; j++ {
			yv := vals[j].y
			sumL += yv
			sumSqL += yv * yv
			sumR -= yv
			sumSqR -= yv * yv
			nL++
			nR--
			if vals[j].v == vals[j+1].v {
				continue // cannot split between equal values
			}
			if nL < b.cfg.MinLeaf || nR < b.cfg.MinLeaf {
				continue
			}
			sse := (sumSqL - sumL*sumL/float64(nL)) + (sumSqR - sumR*sumR/float64(nR))
			if sse < bestSSE {
				bestSSE = sse
				feat = f
				thresh = (vals[j].v + vals[j+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// NumFeatures returns the feature dimensionality the forest was trained
// on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Predict returns the ensemble mean prediction for x. It panics if x has
// the wrong dimensionality.
func (f *Forest) Predict(x []float64) float64 {
	f.check(x)
	var s float64
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// TreePredictions returns every tree's prediction for x — the vector p
// of the paper's Section IV-A jackknife procedure.
func (f *Forest) TreePredictions(x []float64) []float64 {
	f.check(x)
	out := make([]float64, len(f.trees))
	f.treePredictInto(x, out)
	return out
}

// treePredictInto fills dst (len == NumTrees) with per-tree predictions.
func (f *Forest) treePredictInto(x []float64, dst []float64) {
	for i := range f.trees {
		dst[i] = f.trees[i].predict(x)
	}
}

// JackknifeVariance computes the jackknife variance of the ensemble's
// predictions at x: the model's uncertainty there (Section IV-A,
// following Wager et al.).
func (f *Forest) JackknifeVariance(x []float64) float64 {
	return stats.JackknifeVariance(f.TreePredictions(x))
}

// forEach runs fn(worker, i) for i in [0, n) across the worker pool.
// Each index is processed exactly once; fn must only write state owned
// by index i (or by its worker id).
func (f *Forest) forEach(n int, fn func(worker, i int)) {
	workers := f.cfg.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// PredictBatch returns the ensemble mean prediction for every row of
// xs, fanned across the worker pool. out[i] depends only on xs[i], so
// the result is identical for every Workers setting. It panics if any
// row has the wrong dimensionality.
func (f *Forest) PredictBatch(xs [][]float64) []float64 {
	for _, x := range xs {
		f.check(x)
	}
	out := make([]float64, len(xs))
	f.forEach(len(xs), func(_, i int) {
		var s float64
		for t := range f.trees {
			s += f.trees[t].predict(xs[i])
		}
		out[i] = s / float64(len(f.trees))
	})
	return out
}

// JackknifeVarianceBatch returns the jackknife variance at every row of
// xs, fanned across the worker pool — the batched form of the
// active-learning scoring sweep. Per-worker prediction buffers are
// reused, so the sweep allocates O(workers·NumTrees) instead of
// O(len(xs)·NumTrees).
func (f *Forest) JackknifeVarianceBatch(xs [][]float64) []float64 {
	for _, x := range xs {
		f.check(x)
	}
	out := make([]float64, len(xs))
	workers := f.cfg.workers(len(xs))
	bufs := make([][]float64, workers)
	for w := range bufs {
		bufs[w] = make([]float64, len(f.trees))
	}
	f.forEach(len(xs), func(w, i int) {
		preds := bufs[w]
		f.treePredictInto(xs[i], preds)
		out[i] = stats.JackknifeVariance(preds)
	})
	return out
}

// dimPanicFormat is the dimensionality-mismatch panic shared by the
// reference path and the compiled Kernel, so callers observe one
// message regardless of which path scored the row.
const dimPanicFormat = "forest: predicting with %d features, trained on %d"

func (f *Forest) check(x []float64) {
	if len(x) != f.nFeatures {
		panic(fmt.Sprintf(dimPanicFormat, len(x), f.nFeatures))
	}
}
