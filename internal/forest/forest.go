// Package forest is a from-scratch random-forest regressor — the model
// family ACCLAiM uses (the paper uses scikit-learn's
// RandomForestRegressor; Section V). It provides CART regression trees
// with variance-reduction splits, bootstrap bagging, optional feature
// subsampling, and the jackknife uncertainty estimate over the ensemble
// (Wager, Hastie & Efron), which is the signal ACCLAiM's active
// learning uses to pick training points.
package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"acclaim/internal/stats"
)

// Config holds the forest hyperparameters. Zero fields take defaults.
type Config struct {
	NTrees   int   // ensemble size (default 30)
	MaxDepth int   // maximum tree depth (default 14)
	MinLeaf  int   // minimum samples per leaf (default 1)
	MTry     int   // features considered per split (default: all)
	Seed     int64 // RNG seed for bootstrap and feature sampling
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.NTrees == 0 {
		c.NTrees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 14
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 1
	}
	if c.MTry == 0 || c.MTry > nFeatures {
		c.MTry = nFeatures
	}
	return c
}

// node is one tree node in a flat arena. Leaves have left == -1.
type node struct {
	feature int
	thresh  float64
	left    int
	right   int
	value   float64
}

// tree is a CART regression tree.
type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := t.nodes[i]
		if n.left == -1 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Forest is a trained random-forest regressor. It is immutable and safe
// for concurrent prediction.
type Forest struct {
	cfg       Config
	trees     []tree
	nFeatures int
}

// Train fits a forest on X (rows are samples) and y. All rows must have
// equal length. Training is deterministic for a given Config.Seed.
func Train(cfg Config, x [][]float64, y []float64) (*Forest, error) {
	if len(x) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("forest: %d samples but %d targets", len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("forest: samples have no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("forest: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	cfg = cfg.withDefaults(nf)
	f := &Forest{cfg: cfg, trees: make([]tree, cfg.NTrees), nFeatures: nf}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ti := range f.trees {
		// Bootstrap sample.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		b := &builder{
			x: x, y: y, cfg: cfg,
			rng: rand.New(rand.NewSource(rng.Int63())),
		}
		b.grow(idx, 0)
		f.trees[ti] = tree{nodes: b.nodes}
	}
	return f, nil
}

// builder grows one tree.
type builder struct {
	x     [][]float64
	y     []float64
	cfg   Config
	rng   *rand.Rand
	nodes []node
}

// grow builds the subtree over the samples in idx and returns its node
// index.
func (b *builder) grow(idx []int, depth int) int {
	mean, sse := meanSSE(b.y, idx)
	self := len(b.nodes)
	b.nodes = append(b.nodes, node{left: -1, right: -1, value: mean})
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || sse <= 1e-12 {
		return self
	}
	feat, thresh, ok := b.bestSplit(idx, sse)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return self
	}
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[self].feature = feat
	b.nodes[self].thresh = thresh
	b.nodes[self].left = l
	b.nodes[self].right = r
	return self
}

// bestSplit scans MTry random features for the threshold minimizing the
// children's summed SSE. Returns ok=false if no split improves on the
// parent.
func (b *builder) bestSplit(idx []int, parentSSE float64) (feat int, thresh float64, ok bool) {
	nf := len(b.x[0])
	feats := b.rng.Perm(nf)[:b.cfg.MTry]
	bestSSE := parentSSE - 1e-12
	type fv struct{ v, y float64 }
	vals := make([]fv, len(idx))
	for _, f := range feats {
		for j, i := range idx {
			vals[j] = fv{b.x[i][f], b.y[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		// Prefix sums let each candidate threshold be scored in O(1).
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, e := range vals {
			sumR += e.y
			sumSqR += e.y * e.y
		}
		nL := 0
		nR := len(vals)
		for j := 0; j < len(vals)-1; j++ {
			yv := vals[j].y
			sumL += yv
			sumSqL += yv * yv
			sumR -= yv
			sumSqR -= yv * yv
			nL++
			nR--
			if vals[j].v == vals[j+1].v {
				continue // cannot split between equal values
			}
			if nL < b.cfg.MinLeaf || nR < b.cfg.MinLeaf {
				continue
			}
			sse := (sumSqL - sumL*sumL/float64(nL)) + (sumSqR - sumR*sumR/float64(nR))
			if sse < bestSSE {
				bestSSE = sse
				feat = f
				thresh = (vals[j].v + vals[j+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// NumFeatures returns the feature dimensionality the forest was trained
// on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Predict returns the ensemble mean prediction for x. It panics if x has
// the wrong dimensionality.
func (f *Forest) Predict(x []float64) float64 {
	f.check(x)
	var s float64
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// TreePredictions returns every tree's prediction for x — the vector p
// of the paper's Section IV-A jackknife procedure.
func (f *Forest) TreePredictions(x []float64) []float64 {
	f.check(x)
	out := make([]float64, len(f.trees))
	for i := range f.trees {
		out[i] = f.trees[i].predict(x)
	}
	return out
}

// JackknifeVariance computes the jackknife variance of the ensemble's
// predictions at x: the model's uncertainty there (Section IV-A,
// following Wager et al.).
func (f *Forest) JackknifeVariance(x []float64) float64 {
	return stats.JackknifeVariance(f.TreePredictions(x))
}

func (f *Forest) check(x []float64) {
	if len(x) != f.nFeatures {
		panic(fmt.Sprintf("forest: predicting with %d features, trained on %d", len(x), f.nFeatures))
	}
}
