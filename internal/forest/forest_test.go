package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// grid2d builds a simple 2-feature dataset from a target function.
func grid2d(n int, fn func(a, b float64) float64) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := float64(i), float64(j)
			x = append(x, []float64{a, b})
			y = append(y, fn(a, b))
		}
	}
	return x, y
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(Config{}, nil, nil); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train(Config{}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Train(Config{}, [][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero features should fail")
	}
	if _, err := Train(Config{}, [][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestConstantTarget(t *testing.T) {
	x, y := grid2d(5, func(a, b float64) float64 { return 7 })
	f, err := Train(Config{Seed: 1}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{2, 2}); got != 7 {
		t.Errorf("constant prediction = %v, want 7", got)
	}
	if v := f.JackknifeVariance([]float64{2, 2}); v != 0 {
		t.Errorf("constant variance = %v, want 0", v)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	// A step in feature 0 is the easiest tree target.
	x, y := grid2d(8, func(a, b float64) float64 {
		if a < 4 {
			return 10
		}
		return 20
	})
	f, err := Train(Config{Seed: 2}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{1, 3}); math.Abs(got-10) > 0.5 {
		t.Errorf("left prediction = %v, want ~10", got)
	}
	if got := f.Predict([]float64{6, 3}); math.Abs(got-20) > 0.5 {
		t.Errorf("right prediction = %v, want ~20", got)
	}
}

func TestLearnsInteraction(t *testing.T) {
	x, y := grid2d(10, func(a, b float64) float64 {
		if (a < 5) == (b < 5) {
			return 1
		}
		return -1
	})
	f, err := Train(Config{Seed: 3, NTrees: 40}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{[]float64{2, 2}, 1}, {[]float64{7, 7}, 1}, {[]float64{2, 7}, -1}, {[]float64{7, 2}, -1},
	} {
		if got := f.Predict(tc.in); math.Abs(got-tc.want) > 0.4 {
			t.Errorf("Predict(%v) = %v, want ~%v", tc.in, got, tc.want)
		}
	}
}

func TestRegressionQuality(t *testing.T) {
	// Smooth target: forest should interpolate reasonably.
	x, y := grid2d(12, func(a, b float64) float64 { return 3*a + 2*b })
	f, err := Train(Config{Seed: 4, NTrees: 50}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var sse, tot float64
	for i := range x {
		d := f.Predict(x[i]) - y[i]
		sse += d * d
		tot += y[i] * y[i]
	}
	if sse/tot > 0.02 {
		t.Errorf("relative training error %v too high", sse/tot)
	}
}

func TestDeterministicTraining(t *testing.T) {
	x, y := grid2d(6, func(a, b float64) float64 { return a * b })
	f1, _ := Train(Config{Seed: 5}, x, y)
	f2, _ := Train(Config{Seed: 5}, x, y)
	for i := 0; i < 6; i++ {
		in := []float64{float64(i), float64(i) / 2}
		if f1.Predict(in) != f2.Predict(in) {
			t.Fatal("same seed produced different forests")
		}
	}
	f3, _ := Train(Config{Seed: 6}, x, y)
	diff := false
	for i := 0; i < 36; i++ {
		in := []float64{float64(i % 6), float64(i / 6)}
		if f1.Predict(in) != f3.Predict(in) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical forests (suspicious)")
	}
}

func TestVarianceHigherAwayFromData(t *testing.T) {
	// Train only on the left half of the domain; variance on the unseen
	// right half should exceed variance on the seen region on average.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 5 // seen region [0,5)
		b := rng.Float64() * 10
		x = append(x, []float64{a, b})
		y = append(y, math.Sin(a)+b*b/10+rng.NormFloat64()*0.05)
	}
	f, err := Train(Config{Seed: 8, NTrees: 50}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var seen, unseen float64
	for i := 0; i < 50; i++ {
		b := float64(i) / 5
		seen += f.JackknifeVariance([]float64{2.5, b})
		unseen += f.JackknifeVariance([]float64{9.5, b})
	}
	if unseen <= seen {
		t.Errorf("variance in unseen region (%v) not above seen region (%v)", unseen, seen)
	}
}

func TestTreePredictionsFeedJackknife(t *testing.T) {
	x, y := grid2d(6, func(a, b float64) float64 { return a + b })
	f, _ := Train(Config{Seed: 9, NTrees: 10}, x, y)
	p := f.TreePredictions([]float64{2, 2})
	if len(p) != 10 {
		t.Fatalf("TreePredictions length = %d", len(p))
	}
	var mean float64
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	if math.Abs(mean-f.Predict([]float64{2, 2})) > 1e-12 {
		t.Error("Predict is not the mean of TreePredictions")
	}
}

func TestMinLeafRespected(t *testing.T) {
	x, y := grid2d(6, func(a, b float64) float64 { return a })
	f, err := Train(Config{Seed: 10, MinLeaf: 36}, x, y) // leaf >= whole bootstrap
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf = n, every tree is a single leaf: zero variance.
	if v := f.JackknifeVariance([]float64{3, 3}); v > 1e-6 {
		// Bootstrap means differ slightly; variance must still be tiny
		// relative to the target range (0..5).
		if v > 0.5 {
			t.Errorf("stump forest variance = %v, too high", v)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	x, y := grid2d(3, func(a, b float64) float64 { return a })
	f, err := Train(Config{}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 30 {
		t.Errorf("default NTrees = %d, want 30", f.NumTrees())
	}
	if f.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d", f.NumFeatures())
	}
}

func TestPredictDimensionPanic(t *testing.T) {
	x, y := grid2d(3, func(a, b float64) float64 { return a })
	f, _ := Train(Config{}, x, y)
	defer func() {
		if recover() == nil {
			t.Error("wrong dimensionality should panic")
		}
	}()
	f.Predict([]float64{1})
}

// Property: predictions always lie within the range of training targets
// (tree means cannot extrapolate beyond observed y values).
func TestPredictionBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		x := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			y[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		fr, err := Train(Config{Seed: seed, NTrees: 10}, x, y)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			p := fr.Predict([]float64{rng.Float64() * 20, rng.Float64() * 20})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: jackknife variance is non-negative everywhere.
func TestVarianceNonNegativeProperty(t *testing.T) {
	x, y := grid2d(8, func(a, b float64) float64 { return a*b - a })
	fr, _ := Train(Config{Seed: 11}, x, y)
	f := func(a, b float64) bool {
		return fr.JackknifeVariance([]float64{math.Mod(math.Abs(a), 10), math.Mod(math.Abs(b), 10)}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMTrySubsampling(t *testing.T) {
	x, y := grid2d(8, func(a, b float64) float64 { return a + 2*b })
	f, err := Train(Config{Seed: 12, MTry: 1, NTrees: 40}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Even with MTry=1 the ensemble should still learn the trend.
	if f.Predict([]float64{7, 7}) <= f.Predict([]float64{0, 0}) {
		t.Error("MTry=1 forest failed to learn increasing trend")
	}
}

// refTrain is a frozen copy of the original serial training loop (one
// master RNG, trees grown strictly in order, builder RNG seeded from
// the master stream after each bootstrap). The parallel Train must
// reproduce it bit for bit at every worker count.
func refTrain(cfg Config, x [][]float64, y []float64) *Forest {
	cfg = cfg.withDefaults(len(x[0]))
	f := &Forest{cfg: cfg, trees: make([]tree, cfg.NTrees), nFeatures: len(x[0])}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ti := range f.trees {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		b := &builder{x: x, y: y, cfg: cfg}
		b.rng = rand.New(rand.NewSource(rng.Int63()))
		b.nodes = make([]node, 0)
		b.grow(idx, 0)
		f.trees[ti] = tree{nodes: b.nodes}
	}
	return f
}

// forestsIdentical compares two forests node by node.
func forestsIdentical(a, b *Forest) bool {
	if len(a.trees) != len(b.trees) {
		return false
	}
	for ti := range a.trees {
		ta, tb := a.trees[ti].nodes, b.trees[ti].nodes
		if len(ta) != len(tb) {
			return false
		}
		for ni := range ta {
			if ta[ni] != tb[ni] {
				return false
			}
		}
	}
	return true
}

// TestParallelTrainingBitIdentical is the determinism contract of the
// worker pool: for a fixed seed, Workers=1, Workers=N, and the frozen
// serial reference all produce the same forest, the same Predict
// values, and the same JackknifeVariance values.
func TestParallelTrainingBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = math.Sin(x[i][0]) + x[i][1]*x[i][2]/10 + rng.NormFloat64()*0.1
	}
	for _, cfg := range []Config{
		{Seed: 21, NTrees: 17},
		{Seed: 22, NTrees: 8, MTry: 2, MaxDepth: 6, MinLeaf: 3},
	} {
		ref := refTrain(cfg, x, y)
		for _, workers := range []int{1, 2, 3, 8, 33} {
			c := cfg
			c.Workers = workers
			f, err := Train(c, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if !forestsIdentical(ref, f) {
				t.Fatalf("Workers=%d forest differs from serial reference (cfg %+v)", workers, cfg)
			}
			for i := 0; i < 20; i++ {
				in := []float64{rng.Float64() * 12, rng.Float64() * 12, rng.Float64() * 12}
				if ref.Predict(in) != f.Predict(in) {
					t.Fatalf("Workers=%d Predict differs", workers)
				}
				if ref.JackknifeVariance(in) != f.JackknifeVariance(in) {
					t.Fatalf("Workers=%d JackknifeVariance differs", workers)
				}
			}
		}
	}
}

// TestBatchMatchesPointwise: the batched scorers must agree exactly
// with their per-point counterparts at every worker count.
func TestBatchMatchesPointwise(t *testing.T) {
	x, y := grid2d(10, func(a, b float64) float64 { return a*a - 3*b })
	rng := rand.New(rand.NewSource(31))
	queries := make([][]float64, 157)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 12, rng.Float64() * 12}
	}
	for _, workers := range []int{0, 1, 4, 9} {
		f, err := Train(Config{Seed: 30, NTrees: 20, Workers: workers}, x, y)
		if err != nil {
			t.Fatal(err)
		}
		preds := f.PredictBatch(queries)
		vars := f.JackknifeVarianceBatch(queries)
		if len(preds) != len(queries) || len(vars) != len(queries) {
			t.Fatalf("batch output lengths %d/%d, want %d", len(preds), len(vars), len(queries))
		}
		for i, q := range queries {
			if preds[i] != f.Predict(q) {
				t.Fatalf("Workers=%d PredictBatch[%d] = %v, Predict = %v", workers, i, preds[i], f.Predict(q))
			}
			if vars[i] != f.JackknifeVariance(q) {
				t.Fatalf("Workers=%d JackknifeVarianceBatch[%d] = %v, JackknifeVariance = %v", workers, i, vars[i], f.JackknifeVariance(q))
			}
		}
	}
}

// TestBatchEmptyAndPanic covers the degenerate batch inputs.
func TestBatchEmptyAndPanic(t *testing.T) {
	x, y := grid2d(4, func(a, b float64) float64 { return a })
	f, _ := Train(Config{Seed: 33}, x, y)
	if got := f.PredictBatch(nil); len(got) != 0 {
		t.Errorf("PredictBatch(nil) = %v, want empty", got)
	}
	if got := f.JackknifeVarianceBatch([][]float64{}); len(got) != 0 {
		t.Errorf("JackknifeVarianceBatch(empty) = %v, want empty", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-dimension batch row should panic")
		}
	}()
	f.PredictBatch([][]float64{{1, 2}, {1}})
}
