package forest

import (
	"math/rand"
	"testing"
)

// FuzzTrainDifferential proves the compiled histogram trainer is
// bit-identical to the reference builder: for arbitrary
// hyperparameters and data (derived deterministically from the fuzzed
// inputs, with a duplicate-heavy mode that floods nodes with tied
// feature values), trainReference and Train must produce node-for-node
// equal forests — and Train must produce that same forest at every
// worker count. This is the training-side mirror of
// FuzzCompiledDifferential, and the proof obligation behind swapping
// the trainer in as Train's default path.
//
// Seeded corpus below; CI runs this target for 30s per push (the
// fuzz-smoke job).
func FuzzTrainDifferential(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), uint8(1), uint8(40), false)
	f.Add(int64(9), uint8(6), uint8(3), uint8(2), uint8(90), true) // tie-heavy, MTry<nf
	f.Add(int64(-5), uint8(1), uint8(1), uint8(1), uint8(2), true) // single stump, 2 samples
	f.Add(int64(77), uint8(5), uint8(6), uint8(9), uint8(70), false)
	f.Fuzz(func(t *testing.T, seed int64, nTrees, depth, minLeaf, nSamples uint8, discrete bool) {
		nt := int(nTrees)%8 + 1
		md := int(depth)%6 + 1
		ml := int(minLeaf)%5 + 1
		ns := int(nSamples)%120 + 1
		nf := int(seed&3) + 2               // 2-5 features
		mtry := (int(seed>>2)%nf+nf)%nf + 1 // 1..nf, negative seeds included

		rng := rand.New(rand.NewSource(seed))
		x := make([][]float64, ns)
		y := make([]float64, ns)
		for i := range x {
			row := make([]float64, nf)
			for j := range row {
				if discrete {
					row[j] = float64(rng.Intn(4)) // heavy ties exercise stable order
				} else {
					row[j] = rng.NormFloat64() * 10
				}
			}
			x[i] = row
			y[i] = row[0] - row[1%nf]*0.5 + rng.NormFloat64()
		}

		cfg := Config{NTrees: nt, MaxDepth: md, MinLeaf: ml, MTry: mtry, Seed: seed, Workers: 1}
		want, err := trainReference(cfg, x, y)
		if err != nil {
			t.Fatalf("training the reference forest: %v", err)
		}
		for _, workers := range []int{1, 2, 5, 13} {
			c := cfg
			c.Workers = workers
			got, err := Train(c, x, y)
			if err != nil {
				t.Fatalf("training the compiled forest (workers=%d): %v", workers, err)
			}
			if !forestsIdentical(want, got) {
				t.Fatalf("compiled trainer differs from reference builder at Workers=%d (nt=%d md=%d ml=%d mtry=%d ns=%d nf=%d discrete=%v)",
					workers, nt, md, ml, mtry, ns, nf, discrete)
			}
		}
	})
}

// FuzzCompiledDifferential proves Forest.Compile is observationally
// identical to the reference pointer-walk path: for an arbitrary
// trained forest (hyperparameters and data derived deterministically
// from the fuzzed inputs) and an arbitrary query batch, the compiled
// Predict / PredictBatch / JackknifeVarianceBatch must reproduce the
// reference results bit for bit. Two Workers settings are compared per
// input — trained forests are bit-identical across worker counts, so
// the pair also pins kernel results to be worker-independent. Shapes
// deliberately sweep the degenerate corners: single trees, pure-leaf
// trees (constant targets), empty batches, and batches straddling the
// blockQ tile boundary.
//
// Seeded corpus below; CI runs this target for 30s per push (the
// fuzz-smoke job).
func FuzzCompiledDifferential(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), uint8(40), uint8(10), false)
	f.Add(int64(7), uint8(1), uint8(6), uint8(80), uint8(130), false) // NTrees=1, nq > blockQ
	f.Add(int64(42), uint8(8), uint8(1), uint8(30), uint8(65), true)  // stumps on constant target
	f.Add(int64(-3), uint8(3), uint8(5), uint8(50), uint8(0), false)  // empty batch
	f.Fuzz(func(t *testing.T, seed int64, nTrees, depth, nSamples, nQueries uint8, constant bool) {
		nt := int(nTrees)%8 + 1
		md := int(depth)%6 + 1
		ns := int(nSamples)%100 + 2
		nq := int(nQueries) % 160
		nf := int(seed&3) + 2 // 2-5 features

		rng := rand.New(rand.NewSource(seed))
		x := make([][]float64, ns)
		y := make([]float64, ns)
		for i := range x {
			row := make([]float64, nf)
			for j := range row {
				row[j] = rng.NormFloat64() * 10
			}
			x[i] = row
			if constant {
				y[i] = 3.25 // pure-leaf trees: every split collapses
			} else {
				y[i] = row[0]*row[1%nf] + rng.NormFloat64()
			}
		}
		qs := make([][]float64, nq)
		for i := range qs {
			row := make([]float64, nf)
			for j := range row {
				row[j] = rng.NormFloat64() * 12
			}
			qs[i] = row
		}

		cfg := Config{NTrees: nt, MaxDepth: md, Seed: seed, Workers: 1}
		ref, err := Train(cfg, x, y)
		if err != nil {
			t.Fatalf("training the reference forest: %v", err)
		}
		cfg.Workers = int(nQueries)%4 + 1
		alt, err := Train(cfg, x, y) // bit-identical forest, different pool size
		if err != nil {
			t.Fatalf("training the alternate forest: %v", err)
		}

		wantP := ref.PredictBatch(qs)
		wantV := ref.JackknifeVarianceBatch(qs)
		for _, k := range []*Kernel{ref.Compile(), alt.Compile()} {
			gotP := k.PredictBatch(qs)
			gotV := k.JackknifeVarianceBatch(qs)
			if len(gotP) != nq || len(gotV) != nq {
				t.Fatalf("kernel returned %d/%d rows, want %d", len(gotP), len(gotV), nq)
			}
			for i := range qs {
				if gotP[i] != wantP[i] {
					t.Fatalf("PredictBatch[%d]: kernel %v != reference %v (workers=%d)", i, gotP[i], wantP[i], cfg.Workers)
				}
				if gotV[i] != wantV[i] {
					t.Fatalf("JackknifeVarianceBatch[%d]: kernel %v != reference %v (workers=%d)", i, gotV[i], wantV[i], cfg.Workers)
				}
			}
			for i := 0; i < nq && i < 5; i++ {
				if got, want := k.Predict(qs[i]), ref.Predict(qs[i]); got != want {
					t.Fatalf("Predict[%d]: kernel %v != reference %v", i, got, want)
				}
			}
		}
	})
}
