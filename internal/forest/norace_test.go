//go:build !race

package forest

// raceEnabled reports whether the race detector is instrumenting this
// build; its bookkeeping allocates inside sync.Pool, so the zero-alloc
// gates only hold on uninstrumented builds.
const raceEnabled = false
