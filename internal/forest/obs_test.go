package forest

import (
	"testing"

	"acclaim/internal/obs"
)

func TestTrainMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		met := NewMetrics(reg)
		x, y := grid2d(6, func(a, b float64) float64 { return a + b })

		f, err := Train(Config{Seed: 9, NTrees: 12, Workers: workers, Metrics: met}, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := met.Trains.Load(); got != 1 {
			t.Errorf("workers=%d: trains_total = %d, want 1", workers, got)
		}
		if got := met.Trees.Load(); got != 12 {
			t.Errorf("workers=%d: trees_total = %d, want 12", workers, got)
		}
		if got := met.Workers.Load(); got != float64(workers) {
			t.Errorf("workers=%d: train_workers = %v", workers, got)
		}
		fit := met.TreeFitNs.Snapshot()
		if fit.Count != 12 {
			t.Errorf("workers=%d: tree_fit_ns observations = %d, want 12", workers, fit.Count)
		}
		if met.TrainNs.Count() != 1 {
			t.Errorf("workers=%d: train_ns observations = %d, want 1", workers, met.TrainNs.Count())
		}
		// Summed per-tree time can never exceed workers x wall time; with
		// one worker they describe the same serial interval.
		busy, wall := met.PoolBusyNs.Load(), met.TrainNs.Sum()
		if busy <= 0 || busy > wall*float64(workers)*1.5 {
			t.Errorf("workers=%d: pool_busy_ns = %v vs train_ns %v", workers, busy, wall)
		}
		if f == nil {
			t.Fatal("no forest")
		}

		// A second Train on the same metrics accumulates.
		if _, err := Train(Config{Seed: 10, NTrees: 12, Workers: workers, Metrics: met}, x, y); err != nil {
			t.Fatal(err)
		}
		if got := met.Trains.Load(); got != 2 {
			t.Errorf("workers=%d: trains_total after second Train = %d, want 2", workers, got)
		}
	}
}

// TestTrainMetricsPreservesDeterminism pins that instrumentation cannot
// perturb training: the forest must stay bit-identical with and without
// metrics, at any worker count.
func TestTrainMetricsPreservesDeterminism(t *testing.T) {
	x, y := grid2d(6, func(a, b float64) float64 { return a * b })
	plain, err := Train(Config{Seed: 11, NTrees: 10, Workers: 1}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Train(Config{Seed: 11, NTrees: 10, Workers: 4, Metrics: NewMetrics(obs.NewRegistry())}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{2.5, 3.5}
	if a, b := plain.Predict(probe), inst.Predict(probe); a != b {
		t.Errorf("instrumented forest predicts %v, plain %v", b, a)
	}
}
