// Compiled forest training: the histogram trainer lowers tree
// *building* onto flat pre-binned feature columns the same way
// compiled.go lowered inference onto flat node arrays. It is the
// training counterpart of the inference Kernel and the default path
// behind Train / TrainFlat / TrainMatrix; the pointer-chasing
// reference builder in forest.go stays as the differential oracle.
//
// Binning. Train computes per-feature bin edges once per call: the
// sorted distinct values of each column (a featspace.Matrix column in
// the flat entry points). Every sample value is replaced by its bin
// index — its rank among the column's distinct values — in one flat
// column-major int32 matrix. Because the bins are exact (one bin per
// distinct value, not a capped quantile sketch), nothing the reference
// split scan can distinguish is lost: candidate thresholds live only
// between adjacent distinct values, and the midpoint arithmetic reads
// the original values back out of the edge table.
//
// Split finding. The reference builder re-sorts the node's (value,
// target) pairs for every feature of every node — the dominant cost of
// tree growth. The trainer never sorts inside a node: it maintains,
// for each feature, the node's sample indices in sorted value order
// (ties in node order), built once per tree by a stable counting sort
// over the bins and kept sorted thereafter because the stable
// partition that splits a node splits each feature's order array too,
// and a stable filter of a sorted sequence stays sorted. A split scan
// is then one linear gather (targets + bins into SoA scratch) and one
// linear prefix-sum pass, with candidate boundaries wherever the bin
// index changes.
//
// Determinism. Bit-identity with the reference builder is structural,
// not approximate: the per-tree RNG is pre-drawn identically, feature
// permutations consume the stream through the shared fillPerm, and the
// prefix-sum scan repeats the reference bestSplit's float expressions
// operation for operation over the exact sample order the reference's
// stable sort produces (see the induction argument in DESIGN.md,
// "Training kernel"). FuzzTrainDifferential pins node-for-node
// equality at every Workers count.
//
// Arena. Nodes append into one reused per-trainer arena (same
// parent, left-subtree, right-subtree emission order as the builder,
// so the parent+1 left-child adjacency the inference Kernel asserts at
// Compile time is preserved), then one right-sized copy per tree is
// retained by the Forest. Steady-state growth — order building, split
// scans, partitions — allocates nothing; the zeroalloc annotations and
// BenchmarkTrainSplitScan's hard benchguard gate hold that line.
package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"acclaim/internal/featspace"
)

// binset is the pre-binned, read-only view of one training matrix,
// shared by every trainer goroutine of a Train call.
type binset struct {
	n, nf int

	// bins is column-major: bins[f*n+i] is sample i's rank among the
	// distinct values of feature f.
	bins []int32

	// edges[f] holds feature f's distinct values, ascending;
	// edges[f][bins[f*n+i]] == the original value.
	edges [][]float64

	maxBins int // max distinct values over all features, sizes trainer.cnt
}

// newBinset computes bin edges and binned columns for an n×nf matrix.
// col must gather column f into dst[:n]. Called once per Train; the
// result is immutable and safe to share across worker goroutines.
func newBinset(n, nf int, col func(f int, dst []float64)) *binset {
	bs := &binset{
		n:     n,
		nf:    nf,
		bins:  make([]int32, n*nf),
		edges: make([][]float64, nf),
	}
	vals := make([]float64, n)
	sorted := make([]float64, n)
	for f := 0; f < nf; f++ {
		col(f, vals)
		copy(sorted, vals)
		sort.Float64s(sorted)
		edges := make([]float64, 0, 16)
		for i, v := range sorted {
			if i == 0 || v != edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		bs.edges[f] = edges
		if len(edges) > bs.maxBins {
			bs.maxBins = len(edges)
		}
		out := bs.bins[f*n : (f+1)*n]
		for i, v := range vals {
			out[i] = int32(sort.SearchFloat64s(edges, v))
		}
	}
	return bs
}

// trainer grows trees on a binset. One trainer serves one goroutine;
// all scratch persists across the trees that goroutine grows, so
// steady-state growth performs no allocations beyond the retained
// per-tree node copy.
type trainer struct {
	bs  *binset
	y   []float64
	cfg Config
	rng *rand.Rand

	nodes []node // arena, reused across trees; Forest keeps a copy
	hint  int    // node count of the last tree grown, sizes the copy

	nb    int     // bootstrap size of the current tree
	idx   []int32 // current tree's sample indices, partitioned in place
	order []int32 // column-major per-feature sorted orders: order[f*nb+pos]
	part  []int32 // scratch: right side of the stable partitions
	cnt   []int32 // counting-sort workspace, all-zero between uses
	ybuf  []float64
	bbuf  []int32 // SoA split-scan gather: targets and bins in node-sorted order
	perm  []int   // scratch: feature permutation (mirrors rand.Perm)
}

// ensure sizes every scratch buffer for a bootstrap of nb samples.
func (t *trainer) ensure(nb int) {
	t.nb = nb
	if cap(t.idx) < nb {
		t.idx = make([]int32, nb)
		t.part = make([]int32, nb)
		t.ybuf = make([]float64, nb)
		t.bbuf = make([]int32, nb)
	}
	t.idx = t.idx[:nb]
	if need := nb * t.bs.nf; cap(t.order) < need {
		t.order = make([]int32, need)
	}
	if cap(t.cnt) < t.bs.maxBins {
		t.cnt = make([]int32, t.bs.maxBins) // zeroed by make; kept zero after use
	}
	if cap(t.perm) < t.bs.nf {
		t.perm = make([]int, t.bs.nf)
	}
}

// fitTree implements fitter: it grows one tree from a fresh seed and
// bootstrap sample, bit-identical to builder.build on the same inputs.
func (t *trainer) fitTree(seed int64, boot []int) []node {
	t.rng = rand.New(rand.NewSource(seed))
	t.ensure(len(boot))
	for i, s := range boot {
		t.idx[i] = int32(s)
	}
	t.buildOrders()
	if cap(t.nodes) < t.hint {
		t.nodes = make([]node, 0, t.hint)
	}
	t.nodes = t.nodes[:0]
	t.growRange(0, t.nb, 0)
	out := make([]node, len(t.nodes))
	copy(out, t.nodes)
	t.hint = len(t.nodes)
	return out
}

// buildOrders fills order with each feature's stable counting sort of
// the bootstrap: positions [0,nb) hold the sample indices sorted by
// feature value, ties in bootstrap order — exactly the sequence the
// reference builder's stable sort produces at the root. cnt is all
// zeros on entry and is re-zeroed before returning.
//
//acclaim:zeroalloc
func (t *trainer) buildOrders() {
	n, nb := t.bs.n, t.nb
	bins, cnt := t.bs.bins, t.cnt
	idx := t.idx[:nb]
	for f := 0; f < t.bs.nf; f++ {
		col := bins[f*n : (f+1)*n]
		nbins := len(t.bs.edges[f])
		for _, i := range idx {
			cnt[col[i]]++
		}
		var run int32
		for b := 0; b < nbins; b++ {
			c := cnt[b]
			cnt[b] = run
			run += c
		}
		out := t.order[f*nb : (f+1)*nb]
		for _, i := range idx {
			b := col[i]
			out[cnt[b]] = i
			cnt[b]++
		}
		for b := 0; b < nbins; b++ {
			cnt[b] = 0
		}
	}
}

// growRange builds the subtree over the samples in idx[lo:hi] and
// returns its node index. It mirrors builder.grow stopping rule for
// stopping rule; idx and every feature's order segment are partitioned
// in place, preserving relative order.
func (t *trainer) growRange(lo, hi, depth int) int {
	idx := t.idx[lo:hi]
	mean, sse := meanSSE32(t.y, idx)
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{left: -1, right: -1, value: mean})
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf || sse <= 1e-12 {
		return self
	}
	feat, thresh, cut, ok := t.bestSplit(lo, hi, sse)
	if !ok {
		return self
	}
	k := t.stablePartition(idx, feat, cut)
	if k < t.cfg.MinLeaf || len(idx)-k < t.cfg.MinLeaf {
		return self
	}
	for f := 0; f < t.bs.nf; f++ {
		t.stablePartition(t.order[f*t.nb+lo:f*t.nb+hi], feat, cut)
	}
	l := t.growRange(lo, lo+k, depth+1)
	r := t.growRange(lo+k, hi, depth+1)
	t.nodes[self].feature = feat
	t.nodes[self].thresh = thresh
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans MTry random features (same fillPerm stream as the
// reference) for the threshold minimizing the children's summed SSE.
// cut is the highest bin index the left child keeps — the integer form
// of the reference partition's `value <= thresh` predicate, which can
// include the right boundary bin when the midpoint rounds up to it.
func (t *trainer) bestSplit(lo, hi int, parentSSE float64) (feat int, thresh float64, cut int32, ok bool) {
	feats := fillPerm(t.rng, t.perm[:t.bs.nf], t.cfg.MTry)
	bestSSE := parentSSE - 1e-12
	for _, f := range feats {
		if sse, th, c, o := t.scanFeature(f, lo, hi, bestSSE); o {
			bestSSE, feat, thresh, cut, ok = sse, f, th, c, true
		}
	}
	return feat, thresh, cut, ok
}

// scanFeature runs the prefix-sum split scan over feature f's sorted
// order segment [lo,hi) and returns the best candidate strictly below
// limit. The float expressions repeat builder.bestSplit operation for
// operation over the same sample order, so the computed SSEs — and the
// comparisons deciding the returned split — are bit-identical to the
// reference scan.
//
//acclaim:zeroalloc
func (t *trainer) scanFeature(f, lo, hi int, limit float64) (bestSSE, thresh float64, cut int32, ok bool) {
	n, nb := t.bs.n, t.nb
	col := t.bs.bins[f*n : (f+1)*n]
	edges := t.bs.edges[f]
	m := hi - lo
	ys := t.ybuf[:m]
	bks := t.bbuf[:m]
	for j, i := range t.order[f*nb+lo : f*nb+hi] {
		ys[j] = t.y[i]
		bks[j] = col[i]
	}

	bestSSE = limit
	var sumL, sumSqL float64
	var sumR, sumSqR float64
	for _, yv := range ys {
		sumR += yv
		sumSqR += yv * yv
	}
	nL := 0
	nR := m
	minLeaf := t.cfg.MinLeaf
	for j := 0; j < m-1; j++ {
		yv := ys[j]
		sumL += yv
		sumSqL += yv * yv
		sumR -= yv
		sumSqR -= yv * yv
		nL++
		nR--
		if bks[j] == bks[j+1] {
			continue // cannot split between equal values
		}
		if nL < minLeaf || nR < minLeaf {
			continue
		}
		sse := (sumSqL - sumL*sumL/float64(nL)) + (sumSqR - sumR*sumR/float64(nR))
		if sse < bestSSE {
			bestSSE = sse
			thresh = (edges[bks[j]] + edges[bks[j+1]]) / 2
			// The reference partitions on `value <= thresh`: when the
			// midpoint of two adjacent floats rounds up to the right
			// value, that value crosses to the left side.
			cut = bks[j]
			if edges[bks[j+1]] <= thresh {
				cut = bks[j+1]
			}
			ok = true
		}
	}
	return bestSSE, thresh, cut, ok
}

// stablePartition reorders arr so samples with feature f's bin <= cut
// come first, preserving relative order on both sides — the binned
// form of builder.partition, sharing its scratch-buffer discipline —
// and returns the left-side count.
//
//acclaim:zeroalloc
func (t *trainer) stablePartition(arr []int32, f int, cut int32) int {
	col := t.bs.bins[f*t.bs.n : (f+1)*t.bs.n]
	buf := t.part
	k, r := 0, 0
	for _, i := range arr {
		if col[i] <= cut {
			arr[k] = i
			k++
		} else {
			buf[r] = i
			r++
		}
	}
	copy(arr[k:], buf[:r])
	return k
}

// meanSSE32 is meanSSE over an int32 index slice: the same accumulation
// order, so node means and stopping decisions match the reference.
func meanSSE32(y []float64, idx []int32) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// TrainFlat fits a forest on a flat row-major feature matrix (rows ×
// cols, as produced by featspace.Matrix.Data) and y, without
// materializing per-row slices. It trains the same forest Train does
// on the equivalent rows: bin edges are computed once per call from
// the matrix columns and shared across the worker pool.
func TrainFlat(cfg Config, x []float64, cols int, y []float64) (*Forest, error) {
	if cols < 1 {
		return nil, errors.New("forest: samples have no features")
	}
	if len(x)%cols != 0 {
		return nil, fmt.Errorf("forest: flat matrix of %d values is not a multiple of %d columns", len(x), cols)
	}
	rows := len(x) / cols
	if rows == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if rows != len(y) {
		return nil, fmt.Errorf("forest: %d samples but %d targets", rows, len(y))
	}
	cfg = cfg.withDefaults(cols)
	bs := newBinset(rows, cols, func(f int, dst []float64) {
		for i := range dst {
			dst[i] = x[i*cols+f]
		}
	})
	return train(cfg, rows, cols, y, func() fitter {
		return &trainer{bs: bs, y: y, cfg: cfg}
	}), nil
}

// TrainMatrix fits a forest directly on an encoded featspace.Matrix —
// the zero-copy training entry point for tuners that already assemble
// their candidate pools into one flat buffer.
func TrainMatrix(cfg Config, m *featspace.Matrix, y []float64) (*Forest, error) {
	return TrainFlat(cfg, m.Data(), m.Cols(), y)
}
