package forest

import (
	"math/rand"
	"sync"
	"testing"

	"acclaim/internal/featspace"
)

// trainerData builds a dataset with deliberately duplicate-heavy
// columns: feature values are drawn from small integer grids, so nodes
// are full of ties and the stable-order contract between the reference
// sort and the trainer's counting sort actually carries weight.
func trainerData(seed int64, n, nf int) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for j := range row {
			row[j] = float64(rng.Intn(6)) // 6 distinct values per feature
		}
		x[i] = row
		y[i] = row[0]*2 - row[nf-1] + rng.NormFloat64()*0.3
	}
	return x, y
}

// TestTrainerMatchesReference is the serial form of the differential
// contract: on tie-heavy data and across hyperparameter corners, the
// compiled trainer's forest equals the reference builder's node for
// node.
func TestTrainerMatchesReference(t *testing.T) {
	x, y := trainerData(101, 250, 4)
	for _, cfg := range []Config{
		{Seed: 1, NTrees: 9},
		{Seed: 2, NTrees: 5, MaxDepth: 3},
		{Seed: 3, NTrees: 7, MinLeaf: 7},
		{Seed: 4, NTrees: 6, MTry: 1},
		{Seed: 5, NTrees: 4, MTry: 2, MaxDepth: 5, MinLeaf: 2},
	} {
		cfg.Workers = 1
		want, err := trainReference(cfg, x, y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Train(cfg, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !forestsIdentical(want, got) {
			t.Errorf("cfg %+v: compiled trainer differs from reference builder", cfg)
		}
	}
}

// TestTrainerConstantTargets: constant-target columns make every
// node's SSE zero, so growth must stop at the root of every tree (the
// sse <= 1e-12 bail), matching the reference exactly.
func TestTrainerConstantTargets(t *testing.T) {
	x, _ := trainerData(7, 80, 3)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = -2.5
	}
	cfg := Config{Seed: 11, NTrees: 6, Workers: 1}
	want, _ := trainReference(cfg, x, y)
	got, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsIdentical(want, got) {
		t.Fatal("constant-target forests differ")
	}
	for _, tr := range got.trees {
		if len(tr.nodes) != 1 || tr.nodes[0].value != -2.5 {
			t.Fatalf("constant-target tree = %+v, want single leaf at -2.5", tr.nodes)
		}
	}
}

// TestTrainerSingleSample: a one-row training set means every
// bootstrap is that single sample — the len(idx) < 2*MinLeaf bail on
// a one-element node.
func TestTrainerSingleSample(t *testing.T) {
	x := [][]float64{{1.5, -3}}
	y := []float64{42}
	cfg := Config{Seed: 13, NTrees: 5, Workers: 1}
	want, _ := trainReference(cfg, x, y)
	got, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsIdentical(want, got) {
		t.Fatal("single-sample forests differ")
	}
	if p := got.Predict([]float64{0, 0}); p != 42 {
		t.Errorf("single-sample prediction = %v, want 42", p)
	}
}

// TestTrainerAllEqualFeature: a feature whose values are all equal has
// one bin and no candidate boundary — the "cannot split between equal
// values" branch. With MTry=1 some splits draw only that feature and
// must fall back to a leaf, exactly as the reference does.
func TestTrainerAllEqualFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{3.75, float64(rng.Intn(4))} // feature 0 is constant
		y[i] = x[i][1] + rng.NormFloat64()*0.1
	}
	cfg := Config{Seed: 19, NTrees: 8, MTry: 1, Workers: 1}
	want, _ := trainReference(cfg, x, y)
	got, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsIdentical(want, got) {
		t.Fatal("all-equal-feature forests differ")
	}
	for _, tr := range got.trees {
		for _, nd := range tr.nodes {
			if nd.left != -1 && nd.feature == 0 {
				t.Fatal("tree split on a constant feature")
			}
		}
	}
}

// TestTrainerWorkerCounts pins the Workers-independence contract on
// the compiled path itself (the fuzz target additionally compares
// against the reference).
func TestTrainerWorkerCounts(t *testing.T) {
	x, y := trainerData(23, 300, 5)
	cfg := Config{Seed: 29, NTrees: 12, MTry: 3}
	cfg.Workers = 1
	want, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7, 16} {
		c := cfg
		c.Workers = w
		got, err := Train(c, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !forestsIdentical(want, got) {
			t.Fatalf("Workers=%d forest differs from Workers=1", w)
		}
	}
}

// TestTrainSharedRace exercises the shared read-only binset from many
// trainer goroutines at once — concurrent Train calls on the same
// rows, each with a multi-worker pool. Run under -race in CI, it
// proves the trainer's sharing discipline: binset immutable, all
// scratch goroutine-local.
func TestTrainSharedRace(t *testing.T) {
	x, y := trainerData(31, 200, 4)
	var wg sync.WaitGroup
	forests := make([]*Forest, 6)
	for g := range forests {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := Train(Config{Seed: 37, NTrees: 10, Workers: 4}, x, y)
			if err != nil {
				t.Error(err)
				return
			}
			forests[g] = f
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(forests); g++ {
		if !forestsIdentical(forests[0], forests[g]) {
			t.Fatalf("concurrent Train call %d produced a different forest", g)
		}
	}
}

// TestTrainFlatMatchesTrain: the flat entry points train the same
// forest as the row-of-slices API on equivalent data.
func TestTrainFlatMatchesTrain(t *testing.T) {
	x, y := trainerData(41, 150, featspace.NumFeatures)
	cfg := Config{Seed: 43, NTrees: 8, Workers: 1}
	want, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}

	flat := make([]float64, 0, len(x)*featspace.NumFeatures)
	var m featspace.Matrix
	for _, row := range x {
		flat = append(flat, row...)
		m.AppendRow(row...)
	}
	got, err := TrainFlat(cfg, flat, featspace.NumFeatures, y)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsIdentical(want, got) {
		t.Fatal("TrainFlat forest differs from Train")
	}
	got2, err := TrainMatrix(cfg, &m, y)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsIdentical(want, got2) {
		t.Fatal("TrainMatrix forest differs from Train")
	}
}

func TestTrainFlatValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		x    []float64
		cols int
		y    []float64
	}{
		{"zero cols", []float64{1, 2}, 0, []float64{1}},
		{"ragged flat", []float64{1, 2, 3}, 2, []float64{1}},
		{"empty", nil, 2, nil},
		{"target mismatch", []float64{1, 2, 3, 4}, 2, []float64{1, 2, 3}},
	} {
		if _, err := TrainFlat(Config{}, tc.x, tc.cols, tc.y); err == nil {
			t.Errorf("%s: TrainFlat accepted invalid input", tc.name)
		}
	}
}

// TestBinsetRoundTrip: bins are value ranks, edges recover the value.
func TestBinsetRoundTrip(t *testing.T) {
	x, _ := trainerData(47, 90, 3)
	bs := newBinset(len(x), 3, func(f int, dst []float64) {
		for i, row := range x {
			dst[i] = row[f]
		}
	})
	for f := 0; f < 3; f++ {
		edges := bs.edges[f]
		for j := 1; j < len(edges); j++ {
			if edges[j] <= edges[j-1] {
				t.Fatalf("feature %d edges not strictly increasing: %v", f, edges)
			}
		}
		for i, row := range x {
			if got := edges[bs.bins[f*bs.n+i]]; got != row[f] {
				t.Fatalf("feature %d sample %d: edges[bin] = %v, value = %v", f, i, got, row[f])
			}
		}
	}
}

// TestTrainerSteadyStateZeroAlloc is the runtime gate behind the
// //acclaim:zeroalloc annotations in trainer.go: once scratch is
// warmed (ensure + one tree grown), order building, split scanning,
// and partitioning allocate nothing.
func TestTrainerSteadyStateZeroAlloc(t *testing.T) {
	x, y := trainerData(53, 220, 4)
	cfg := Config{Seed: 59, NTrees: 1, Workers: 1}.withDefaults(4)
	bs := newBinset(len(x), 4, func(f int, dst []float64) {
		for i, row := range x {
			dst[i] = row[f]
		}
	})
	tr := &trainer{bs: bs, y: y, cfg: cfg}
	boot := make([]int, len(x))
	for i := range boot {
		boot[i] = i
	}
	tr.fitTree(61, boot) // warm every scratch buffer

	if n := testing.AllocsPerRun(100, func() { tr.buildOrders() }); n != 0 {
		t.Errorf("buildOrders allocates %v times per run, want 0", n)
	}
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		_, th, _, _ := t2ScanAll(tr)
		sink += th
	}); n != 0 {
		t.Errorf("scanFeature allocates %v times per run, want 0", n)
	}
	_ = sink
	cut := int32(2)
	if n := testing.AllocsPerRun(100, func() {
		tr.stablePartition(tr.idx, 0, cut)
	}); n != 0 {
		t.Errorf("stablePartition allocates %v times per run, want 0", n)
	}
}

// t2ScanAll drives scanFeature over every feature of the warm trainer's
// root node (helper for the allocation gate; the return values keep
// the call from being optimized away).
func t2ScanAll(tr *trainer) (feat int, thresh float64, cut int32, ok bool) {
	for f := 0; f < tr.bs.nf; f++ {
		if _, th, c, o := tr.scanFeature(f, 0, tr.nb, 1e18); o {
			feat, thresh, cut, ok = f, th, c, o
		}
	}
	return feat, thresh, cut, ok
}
