// Package heuristic reimplements the static, size-cutoff algorithm
// selection heuristics that production MPI libraries ship (MPICH-style;
// Section II-B1). These are the default selections the autotuners are
// measured against: fixed thresholds chosen on some long-ago machine,
// blind to the job's actual environment — which is why optimized
// selections beat them by 35–40% (Hunold et al.).
package heuristic

import (
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
)

// Library default cutoff constants (bytes). Like the constants shipped
// in production MPI libraries, these were "tuned" for a machine that is
// not the one the job runs on — they switch to the bandwidth-optimal
// algorithms far earlier than this machine's real crossovers, and they
// never see the job's dynamic latency environment. That mismatch is the
// 35–40% the paper's autotuners recover.
const (
	bcastShortMsg     = 2048   // below: binomial
	bcastLargeMsg     = 524288 // above: scatter_ring_allgather regardless of P2
	bcastMinProcs     = 8      // small communicators always use binomial
	allreduceShortMsg = 512    // below: recursive_doubling
	reduceShortMsg    = 512    // below: binomial
	allgatherShortTot = 32768  // total bytes below: recursive doubling / Bruck
	allgatherLongTot  = 131072 // total bytes above: ring
	alltoallShortMsg  = 256    // below: Bruck store-and-forward
	alltoallMediumMsg = 32768  // below: scattered isend/irecv; above: pairwise
	rsLongMsg         = 524288 // reduce_scatter: below (on P2): recursive halving
	rootedLargeMsg    = 8192   // gather/scatter: above: flat linear schedule
)

// Select returns the MPICH-default algorithm for a collective at a
// feature point. It never fails: the heuristics are complete by
// construction, exactly like the rule files MPI libraries ship.
func Select(c coll.Collective, p featspace.Point) string {
	ranks := p.Ranks()
	switch c {
	case coll.Bcast:
		switch {
		case p.MsgBytes < bcastShortMsg || ranks < bcastMinProcs:
			return "binomial"
		case p.MsgBytes < bcastLargeMsg && featspace.IsP2(ranks):
			return "scatter_recursive_doubling_allgather"
		default:
			return "scatter_ring_allgather"
		}
	case coll.Allreduce:
		if p.MsgBytes <= allreduceShortMsg || !featspace.IsP2(ranks) {
			return "recursive_doubling"
		}
		return "reduce_scatter_allgather"
	case coll.Reduce:
		if p.MsgBytes <= reduceShortMsg || !featspace.IsP2(ranks) {
			return "binomial"
		}
		return "scatter_gather"
	case coll.Allgather:
		total := p.MsgBytes * ranks
		switch {
		case total < allgatherShortTot && featspace.IsP2(ranks):
			return "recursive_doubling"
		case total < allgatherLongTot:
			return "brucks"
		default:
			return "ring"
		}
	case coll.Alltoall:
		switch {
		case p.MsgBytes < alltoallShortMsg:
			return "brucks"
		case p.MsgBytes <= alltoallMediumMsg:
			return "scattered"
		default:
			return "pairwise"
		}
	case coll.ReduceScatter:
		if p.MsgBytes < rsLongMsg && featspace.IsP2(ranks) {
			return "recursive_halving"
		}
		return "pairwise_exchange"
	case coll.Gather, coll.Scatter:
		if p.MsgBytes >= rootedLargeMsg {
			return "linear"
		}
		return "binomial"
	default:
		return ""
	}
}

// Selector adapts Select for one collective to the autotune.Selector
// shape.
func Selector(c coll.Collective) func(featspace.Point) string {
	return func(p featspace.Point) string { return Select(c, p) }
}
