package heuristic

import (
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/featspace"
)

func TestSelectAlwaysValid(t *testing.T) {
	// Every selection must name a real algorithm of the collective.
	pts := featspace.Space{
		Nodes: []int{2, 3, 8, 17, 64, 128},
		PPNs:  []int{1, 2, 16},
		Msgs:  []int{8, 100, 2048, 12288, 65536, 524288, 1 << 20},
	}.Points()
	for _, c := range coll.Collectives() {
		for _, p := range pts {
			alg := Select(c, p)
			if _, ok := coll.AlgIndex(c, alg); !ok {
				t.Fatalf("Select(%v, %v) = %q: not an algorithm of %v", c, p, alg, c)
			}
		}
	}
}

func TestBcastCutoffs(t *testing.T) {
	small := featspace.Point{Nodes: 16, PPN: 1, MsgBytes: 256}
	if got := Select(coll.Bcast, small); got != "binomial" {
		t.Errorf("small bcast = %s", got)
	}
	mediumP2 := featspace.Point{Nodes: 16, PPN: 1, MsgBytes: 65536}
	if got := Select(coll.Bcast, mediumP2); got != "scatter_recursive_doubling_allgather" {
		t.Errorf("medium P2 bcast = %s", got)
	}
	mediumNonP2 := featspace.Point{Nodes: 17, PPN: 1, MsgBytes: 65536}
	if got := Select(coll.Bcast, mediumNonP2); got != "scatter_ring_allgather" {
		t.Errorf("medium non-P2 bcast = %s", got)
	}
	large := featspace.Point{Nodes: 16, PPN: 1, MsgBytes: 1 << 20}
	if got := Select(coll.Bcast, large); got != "scatter_ring_allgather" {
		t.Errorf("large bcast = %s", got)
	}
	tinyComm := featspace.Point{Nodes: 2, PPN: 2, MsgBytes: 1 << 20}
	if got := Select(coll.Bcast, tinyComm); got != "binomial" {
		t.Errorf("tiny-communicator bcast = %s", got)
	}
}

func TestReductionCutoffs(t *testing.T) {
	small := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 400}
	large := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 1 << 18}
	nonP2 := featspace.Point{Nodes: 9, PPN: 1, MsgBytes: 1 << 18}
	if got := Select(coll.Allreduce, small); got != "recursive_doubling" {
		t.Errorf("small allreduce = %s", got)
	}
	if got := Select(coll.Allreduce, large); got != "reduce_scatter_allgather" {
		t.Errorf("large allreduce = %s", got)
	}
	if got := Select(coll.Allreduce, nonP2); got != "recursive_doubling" {
		t.Errorf("non-P2 allreduce = %s", got)
	}
	if got := Select(coll.Reduce, small); got != "binomial" {
		t.Errorf("small reduce = %s", got)
	}
	if got := Select(coll.Reduce, large); got != "scatter_gather" {
		t.Errorf("large reduce = %s", got)
	}
}

func TestAllgatherCutoffs(t *testing.T) {
	shortP2 := featspace.Point{Nodes: 4, PPN: 2, MsgBytes: 64}
	if got := Select(coll.Allgather, shortP2); got != "recursive_doubling" {
		t.Errorf("short P2 allgather = %s", got)
	}
	shortNonP2 := featspace.Point{Nodes: 3, PPN: 1, MsgBytes: 64}
	if got := Select(coll.Allgather, shortNonP2); got != "brucks" {
		t.Errorf("short non-P2 allgather = %s", got)
	}
	long := featspace.Point{Nodes: 64, PPN: 16, MsgBytes: 65536}
	if got := Select(coll.Allgather, long); got != "ring" {
		t.Errorf("long allgather = %s", got)
	}
}

func TestSelectorAdapter(t *testing.T) {
	sel := Selector(coll.Bcast)
	p := featspace.Point{Nodes: 4, PPN: 1, MsgBytes: 8}
	if sel(p) != Select(coll.Bcast, p) {
		t.Error("Selector disagrees with Select")
	}
}

func TestAlltoallCutoffs(t *testing.T) {
	small := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 64}
	if got := Select(coll.Alltoall, small); got != "brucks" {
		t.Errorf("small alltoall = %s", got)
	}
	medium := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 4096}
	if got := Select(coll.Alltoall, medium); got != "scattered" {
		t.Errorf("medium alltoall = %s", got)
	}
	large := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 1 << 17}
	if got := Select(coll.Alltoall, large); got != "pairwise" {
		t.Errorf("large alltoall = %s", got)
	}
}

func TestReduceScatterCutoffs(t *testing.T) {
	shortP2 := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 4096}
	if got := Select(coll.ReduceScatter, shortP2); got != "recursive_halving" {
		t.Errorf("short P2 reduce_scatter = %s", got)
	}
	nonP2 := featspace.Point{Nodes: 9, PPN: 1, MsgBytes: 4096}
	if got := Select(coll.ReduceScatter, nonP2); got != "pairwise_exchange" {
		t.Errorf("non-P2 reduce_scatter = %s", got)
	}
	long := featspace.Point{Nodes: 8, PPN: 2, MsgBytes: 1 << 20}
	if got := Select(coll.ReduceScatter, long); got != "pairwise_exchange" {
		t.Errorf("long reduce_scatter = %s", got)
	}
}

func TestRootedCutoffs(t *testing.T) {
	for _, c := range []coll.Collective{coll.Gather, coll.Scatter} {
		small := featspace.Point{Nodes: 16, PPN: 1, MsgBytes: 512}
		if got := Select(c, small); got != "binomial" {
			t.Errorf("small %v = %s", c, got)
		}
		large := featspace.Point{Nodes: 16, PPN: 1, MsgBytes: 65536}
		if got := Select(c, large); got != "linear" {
			t.Errorf("large %v = %s", c, got)
		}
	}
}
