// Package hunold implements the first ML collective autotuner design
// (Hunold et al., CLUSTER 2020; the paper's Section II-C1 baseline):
// one random-forest model per (collective, algorithm), trained on a
// uniformly random sample of the feature space. Its weakness — random
// points carry little information, so large fractions of the space must
// be benchmarked — is exactly what Figure 3 shows and what FACT and
// ACCLAiM improve on.
package hunold

import (
	"fmt"
	"math/rand"

	"acclaim/internal/autotune"
	"acclaim/internal/coll"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
)

// Config parameterises the Hunold tuner.
type Config struct {
	Space  featspace.Space // the P2 candidate grid
	Forest forest.Config   // per-algorithm model hyperparameters
	Seed   int64
}

// Tuner is a Hunold-style random-sampling autotuner.
type Tuner struct {
	cfg     Config
	backend autotune.Backend
}

// New builds a tuner over a benchmark backend.
func New(cfg Config, backend autotune.Backend) *Tuner {
	return &Tuner{cfg: cfg, backend: backend}
}

// SelectionOrder returns the tuner's training point order for a
// collective: a seeded uniformly random permutation of all candidates.
func (t *Tuner) SelectionOrder(c coll.Collective) []autotune.Candidate {
	cands := autotune.Candidates(c, t.cfg.Space, t.backend.MaxNodes())
	rng := rand.New(rand.NewSource(t.cfg.Seed + int64(c)))
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands
}

// CollectOrder measures the first n candidates of the selection order
// (all of them if n <= 0), returning the samples in collection order.
func (t *Tuner) CollectOrder(c coll.Collective, n int) ([]autotune.Sample, error) {
	order := t.SelectionOrder(c)
	if n <= 0 || n > len(order) {
		n = len(order)
	}
	samples := make([]autotune.Sample, 0, n)
	for _, cand := range order[:n] {
		m, err := t.backend.Measure(cand.Spec(c))
		if err != nil {
			return nil, fmt.Errorf("hunold: %w", err)
		}
		samples = append(samples, autotune.Sample{Candidate: cand, Mean: m.MeanTime, Wall: m.WallTime})
	}
	return samples, nil
}

// Result is a trained Hunold autotuner for one collective.
type Result struct {
	Coll   coll.Collective
	Model  *autotune.PerAlgModel
	Ledger autotune.Ledger
	Order  []autotune.Sample // full collection order, for learning curves
}

// Select implements autotune.Selector.
func (r *Result) Select(p featspace.Point) string { return r.Model.Select(p) }

// SelectBatch implements autotune.BatchSelector via the per-algorithm
// models' compiled-kernel sweep over one flat feature matrix, so
// slowdown evaluation over large test grids fans across the worker
// pool without per-point encoding allocations.
func (r *Result) SelectBatch(pts []featspace.Point) []string { return r.Model.SelectBatch(pts) }

// Tune collects a fraction of the candidate pool at random and trains
// the per-algorithm models (the original design has no convergence
// loop; the fraction is the operator's choice).
func (t *Tuner) Tune(c coll.Collective, fraction float64) (*Result, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("hunold: fraction %v out of (0, 1]", fraction)
	}
	order := t.SelectionOrder(c)
	n := int(fraction * float64(len(order)))
	if n < 2 {
		n = 2
	}
	samples, err := t.CollectOrder(c, n)
	if err != nil {
		return nil, err
	}
	ts := autotune.NewTrainingSet(c)
	var wall float64
	for _, s := range samples {
		ts.AddSample(s)
		wall += s.Wall
	}
	model, err := autotune.TrainPerAlg(t.cfg.Forest, ts)
	if err != nil {
		return nil, err
	}
	return &Result{Coll: c, Model: model, Ledger: autotune.Ledger{Collection: wall}, Order: samples}, nil
}

// LearningCurve measures model quality across training-set fractions
// (the Figure 3 series for this tuner). eval scores a selector, usually
// autotune.EvalSlowdown against a replay dataset.
func (t *Tuner) LearningCurve(c coll.Collective, fracs []float64,
	eval func(autotune.Selector) (float64, error)) ([]autotune.CurvePoint, error) {

	order, err := t.CollectOrder(c, 0)
	if err != nil {
		return nil, err
	}
	return autotune.LearningCurve(c, order, fracs,
		func(ts *autotune.TrainingSet) (autotune.Selector, error) {
			return autotune.TrainPerAlg(t.cfg.Forest, ts)
		}, eval)
}
