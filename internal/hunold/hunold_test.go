package hunold

import (
	"testing"

	"acclaim/internal/autotune"
	"acclaim/internal/benchmark"
	"acclaim/internal/cluster"
	"acclaim/internal/coll"
	"acclaim/internal/dataset"
	"acclaim/internal/featspace"
	"acclaim/internal/forest"
	"acclaim/internal/netmodel"
)

func testSpace() featspace.Space {
	return featspace.Space{
		Nodes: []int{2, 4, 8, 16},
		PPNs:  []int{1, 2},
		Msgs:  []int{8, 128, 2048, 32768, 1 << 19},
	}
}

func testReplay(t testing.TB) *dataset.Replay {
	t.Helper()
	r, err := benchmark.NewRunner(netmodel.DefaultParams(), netmodel.DefaultEnv(),
		cluster.TopologyTwoPairs(), benchmark.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Collect(r, testSpace().Points(), dataset.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Replay{DS: ds, Alloc: cluster.TopologyTwoPairs()}
}

func TestSelectionOrderDeterministicPermutation(t *testing.T) {
	rp := testReplay(t)
	tuner := New(Config{Space: testSpace(), Forest: forest.Config{Seed: 1}, Seed: 5}, rp)
	o1 := tuner.SelectionOrder(coll.Bcast)
	o2 := tuner.SelectionOrder(coll.Bcast)
	if len(o1) != testSpace().Size()*coll.NumAlgorithms(coll.Bcast) {
		t.Fatalf("order length = %d", len(o1))
	}
	seen := make(map[benchmark.Spec]bool)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("selection order not deterministic")
		}
		s := o1[i].Spec(coll.Bcast)
		if seen[s] {
			t.Fatal("duplicate candidate in order")
		}
		seen[s] = true
	}
	// Different collectives get different shuffles.
	o3 := tuner.SelectionOrder(coll.Reduce)
	if len(o3) == 0 {
		t.Fatal("empty reduce order")
	}
}

func TestTuneFullFractionNearOptimal(t *testing.T) {
	rp := testReplay(t)
	tuner := New(Config{Space: testSpace(), Forest: forest.Config{Seed: 2, NTrees: 40}, Seed: 6}, rp)
	res, err := tuner.Tune(coll.Bcast, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Collection <= 0 {
		t.Error("no collection time charged")
	}
	sd, err := autotune.EvalSlowdown(rp.DS, coll.Bcast, testSpace().Points(), res)
	if err != nil {
		t.Fatal(err)
	}
	if sd > 1.10 {
		t.Errorf("fully trained Hunold slowdown = %v", sd)
	}
}

func TestTuneFractionValidation(t *testing.T) {
	rp := testReplay(t)
	tuner := New(Config{Space: testSpace(), Forest: forest.Config{Seed: 3}}, rp)
	if _, err := tuner.Tune(coll.Bcast, 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := tuner.Tune(coll.Bcast, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestLearningCurveImprovesWithData(t *testing.T) {
	rp := testReplay(t)
	tuner := New(Config{Space: testSpace(), Forest: forest.Config{Seed: 4, NTrees: 30}, Seed: 9}, rp)
	eval := func(s autotune.Selector) (float64, error) {
		return autotune.EvalSlowdown(rp.DS, coll.Allreduce, testSpace().Points(), s)
	}
	curve, err := tuner.LearningCurve(coll.Allreduce, []float64{0.05, 0.3, 1.0}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve = %v", curve)
	}
	first, last := curve[0], curve[len(curve)-1]
	if last.Slowdown > first.Slowdown+0.02 {
		t.Errorf("more data made the model worse: %v -> %v", first.Slowdown, last.Slowdown)
	}
	if last.Slowdown > 1.10 {
		t.Errorf("full-data slowdown = %v", last.Slowdown)
	}
}

func TestCollectOrderCaps(t *testing.T) {
	rp := testReplay(t)
	tuner := New(Config{Space: testSpace(), Forest: forest.Config{Seed: 5}, Seed: 10}, rp)
	ss, err := tuner.CollectOrder(coll.Reduce, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 7 {
		t.Errorf("collected %d, want 7", len(ss))
	}
	for _, s := range ss {
		if s.Mean <= 0 || s.Wall <= 0 {
			t.Errorf("bad sample %+v", s)
		}
	}
}
