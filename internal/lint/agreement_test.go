package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// zeroAllocManifest is the project's declared set of allocation-free
// hot paths: for each package, every function carrying an
// //acclaim:zeroalloc annotation. The static analyzer scans exactly
// the annotated set; the runtime testing.AllocsPerRun gates in each
// package's tests pin the same functions at execution time. This test
// keeps the three views — manifest, annotations, runtime gates — from
// drifting apart: adding or dropping an annotation without updating
// the manifest (and thinking about the runtime gate) is a test
// failure, not a silent coverage change.
var zeroAllocManifest = map[string][]string{
	"internal/obs": {
		"Counter.Add",
		"Counter.Inc",
		"Gauge.Add",
		"Gauge.Set",
		"HDRHistogram.Observe",
		"HDRHistogram.ObserveNs",
		"HDRRecorder.Record",
		"HDRRecorder.RecordSince",
		"Histogram.Observe",
		"NowNs",
		"hdrIndex",
		"nopRecorder.EndSpan",
		"nopRecorder.SetAttr",
		"nopRecorder.StartSpan",
	},
	"internal/ruleserver": {
		"Index.Lookup",
		"Index.LookupName",
		"Server.Lookup",
		"Server.LookupName",
		"getReqRecord",
		"getRespRecord",
		"putReqRecord",
		"putRespRecord",
		"tableIndex.lookup",
		"tableIndex.walk",
	},
	"internal/core": {
		"tunerMetrics.endRound",
	},
	"internal/forest": {
		"Kernel.Predict",
		"Kernel.predictBlock",
		"Kernel.scoreBlock",
		"Kernel.walk",
		"Kernel.walkLevels",
		"trainer.buildOrders",
		"trainer.scanFeature",
		"trainer.stablePartition",
	},
}

// annotatedFuncs parses one package directory (no type-checking
// needed) and returns the "Recv.Name" keys of every function whose
// doc comment carries //acclaim:zeroalloc.
func annotatedFuncs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == "zeroalloc" {
					annotated = true
				}
			}
			if !annotated {
				continue
			}
			key := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				rt := fd.Recv.List[0].Type
				if star, ok := rt.(*ast.StarExpr); ok {
					rt = star.X
				}
				if id, ok := rt.(*ast.Ident); ok {
					key = id.Name + "." + key
				}
			}
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// TestZeroAllocAnnotationAgreement asserts the manifest above matches
// the //acclaim:zeroalloc annotations actually present in each
// package, that no package outside the manifest carries annotations,
// and that every manifest package has a runtime AllocsPerRun gate in
// its tests.
func TestZeroAllocAnnotationAgreement(t *testing.T) {
	root := "../.."

	for pkg, want := range zeroAllocManifest {
		got := annotatedFuncs(t, filepath.Join(root, filepath.FromSlash(pkg)))
		sorted := append([]string(nil), want...)
		sort.Strings(sorted)
		if strings.Join(got, ",") != strings.Join(sorted, ",") {
			t.Errorf("%s: annotated functions = %v, manifest = %v", pkg, got, sorted)
		}
		if !packageTestsMention(t, filepath.Join(root, filepath.FromSlash(pkg)), "AllocsPerRun") {
			t.Errorf("%s: no testing.AllocsPerRun gate found in package tests; the zeroalloc annotations there are unverified at runtime", pkg)
		}
	}

	// No annotations outside the manifest: parse every package
	// directory in the module (skipping testdata fixtures) and require
	// that any directory with annotated functions appears above.
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		if _, ok := zeroAllocManifest[rel]; ok {
			continue
		}
		if got := annotatedFuncs(t, dir); len(got) > 0 {
			t.Errorf("package %s carries //acclaim:zeroalloc annotations %v but is not in the manifest", rel, got)
		}
	}
}

// packageTestsMention reports whether any _test.go file in dir
// contains the given substring.
func packageTestsMention(t *testing.T, dir, substr string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), substr) {
			return true
		}
	}
	return false
}
