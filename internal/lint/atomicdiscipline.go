package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDiscipline returns the atomicdiscipline analyzer: the full
// promotion of lockcheck's old half-atomic heuristic into a vet-style,
// project-aware check. Per package it flags:
//
//   - mixed access: a field touched through sync/atomic anywhere in the
//     package (atomic.LoadX(&s.f) and friends) must never be read or
//     written plainly elsewhere — half-atomic fields are how torn reads
//     pass review;
//   - smuggled copies: assigning, passing, returning, or ranging a
//     value whose type contains sync/atomic state (atomic.Uint64 /
//     atomic.Pointer fields, directly or through embedded structs and
//     arrays) copies that state non-atomically and silently forks it;
//     a direct copy of an atomic.* value gets a "use Load" message, a
//     by-value method receiver on an atomic-bearing type gets its own;
//   - post-publish mutation: a value obtained from an atomic.Pointer's
//     Load or Swap is visible to (or was visible to) lock-free readers;
//     writing through it afterwards is a data race even though the
//     pointer itself was handled atomically.
//
// Slices, maps, pointers, and channels do not propagate "contains
// atomics": copying the header or pointer shares, not forks, the
// underlying state (the HDRRecorder `shards := r.shards` idiom stays
// legal). The post-publish pass tracks one level of local aliasing
// within a function; cross-function flows are the frozen analyzer's
// job via its constructor closure.
func AtomicDiscipline() *Analyzer {
	return &Analyzer{
		Name: "atomicdiscipline",
		Doc:  "forbid mixed atomic/plain field access, by-value copies of atomic-bearing values, and mutation after atomic.Pointer publish",
		Run:  func(p *Package) []Diagnostic { return p.atomicDiscipline() },
	}
}

func (p *Package) atomicDiscipline() []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, p.halfAtomic()...)
	ds = append(ds, p.atomicCopies()...)
	ds = append(ds, p.postPublishWrites()...)
	return ds
}

// halfAtomic is the package-wide mixed atomic/plain access scan
// (formerly part of lockcheck).
func (p *Package) halfAtomic() []Diagnostic {
	var ds []Diagnostic

	// Pass 1: fields whose address reaches a sync/atomic call, and the
	// positions of those sanctioned accesses.
	atomicField := map[types.Object]bool{}
	atomicSite := map[token.Pos]bool{}
	forEachFunc(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.funcObj(call)
			if fn == nil || pkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					atomicField[s.Obj()] = true
					atomicSite[sel.Sel.Pos()] = true
				}
			}
			return true
		})
	})
	if len(atomicField) == 0 {
		return ds
	}

	// Pass 2: every other access to those fields.
	forEachFunc(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if atomicField[s.Obj()] && !atomicSite[sel.Sel.Pos()] {
				ds = append(ds, p.diag("atomicdiscipline", sel.Sel.Pos(),
					"field %s is accessed via sync/atomic elsewhere in this package; plain access here can tear", s.Obj().Name()))
			}
			return true
		})
	})
	return ds
}

// atomicCopies flags by-value copies of atomic-bearing values wherever
// a copy is born: assignments, call arguments, returns, range value
// variables, and by-value method receivers.
func (p *Package) atomicCopies() []Diagnostic {
	var ds []Diagnostic
	qual := types.RelativeTo(p.TPkg)

	flagCopy := func(e ast.Expr) {
		e = ast.Unparen(e)
		if !copyShaped(e, p) {
			return
		}
		t := p.Info.TypeOf(e)
		if t == nil {
			return
		}
		if isAtomicNamed(t) {
			ds = append(ds, p.diag("atomicdiscipline", e.Pos(),
				"copies atomic value of type %s; use its Load method", types.TypeString(t, qual)))
			return
		}
		if containsAtomic(t) {
			ds = append(ds, p.diag("atomicdiscipline", e.Pos(),
				"copies %s, which contains sync/atomic state; use a pointer", types.TypeString(t, qual)))
		}
	}

	forEachFunc(p, func(fd *ast.FuncDecl) {
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			rt := p.Info.TypeOf(fd.Recv.List[0].Type)
			if rt != nil {
				if _, isPtr := rt.(*types.Pointer); !isPtr && containsAtomic(rt) {
					ds = append(ds, p.diag("atomicdiscipline", fd.Recv.List[0].Pos(),
						"method %s has a by-value receiver of atomic-bearing type %s; use a pointer receiver",
						fd.Name.Name, types.TypeString(rt, qual)))
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					flagCopy(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					flagCopy(v)
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					flagCopy(arg)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					flagCopy(res)
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				vt := p.Info.TypeOf(n.Value)
				if vt == nil {
					return true
				}
				if isAtomicNamed(vt) || containsAtomic(vt) {
					ds = append(ds, p.diag("atomicdiscipline", n.Value.Pos(),
						"range copies elements of atomic-bearing type %s; range over indices and take addresses",
						types.TypeString(vt, qual)))
				}
			}
			return true
		})
	})
	return ds
}

// postPublishWrites flags writes through values obtained from an
// atomic.Pointer's Load or Swap: those values are (or were) visible to
// lock-free readers, so mutating them races no matter how atomically
// the pointer itself is handled.
func (p *Package) postPublishWrites() []Diagnostic {
	var ds []Diagnostic
	forEachFunc(p, func(fd *ast.FuncDecl) {
		// published[obj] = "Load" or "Swap" that produced it.
		published := map[types.Object]string{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, rhs := range asg.Rhs {
				id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.objOf(id)
				if obj == nil {
					continue
				}
				if via := p.atomicPointerSource(rhs); via != "" {
					published[obj] = via
					continue
				}
				// One level of local re-aliasing: w := v.
				if src, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if via, ok := published[p.objOf(src)]; ok {
						published[obj] = via
					}
				}
			}
			return true
		})
		if len(published) == 0 {
			return
		}
		flagWrite := func(lhs ast.Expr) {
			lhs = ast.Unparen(lhs)
			if _, rebind := lhs.(*ast.Ident); rebind {
				return
			}
			if obj, ok := rootIdentObj(lhs, p); ok {
				if via, pub := published[obj]; pub {
					ds = append(ds, p.diag("atomicdiscipline", lhs.Pos(),
						"writes through a value obtained from atomic.Pointer.%s; published snapshots are read-only", via))
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					flagWrite(lhs)
				}
			case *ast.IncDecStmt:
				flagWrite(n.X)
			}
			return true
		})
	})
	return ds
}

// atomicPointerSource reports whether e is a Load or Swap call on an
// atomic.Pointer receiver, returning the method name ("" if not).
func (p *Package) atomicPointerSource(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := p.funcObj(call)
	if fn == nil || (fn.Name() != "Load" && fn.Name() != "Swap") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if atomicPointerElem(recv) == nil {
		return ""
	}
	return fn.Name()
}

// rootIdentObj walks a selector/index/star chain to its base identifier
// and resolves it; ok is false when the chain has no identifier base or
// the expression is a bare identifier (a rebind, not a write-through).
func rootIdentObj(e ast.Expr, p *Package) (types.Object, bool) {
	sawChain := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			sawChain, e = true, x.X
		case *ast.IndexExpr:
			sawChain, e = true, x.X
		case *ast.StarExpr:
			sawChain, e = true, x.X
		case *ast.Ident:
			if !sawChain {
				return nil, false
			}
			obj := p.objOf(x)
			return obj, obj != nil
		default:
			return nil, false
		}
	}
}

// copyShaped reports whether e reads an existing addressable-ish value
// (so evaluating it as a value makes a copy): a variable identifier, a
// field selection, an element index, or a dereference. Calls, composite
// literals, and conversions construct fresh values and are not copies
// of shared state.
func copyShaped(e ast.Expr, p *Package) bool {
	switch e := e.(type) {
	case *ast.Ident:
		_, isVar := p.objOf(e).(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		s := p.Info.Selections[e]
		return s != nil && s.Kind() == types.FieldVal
	case *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// isAtomicNamed reports whether t itself is a sync/atomic named type.
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether t embeds sync/atomic state by value:
// an atomic.* type reached through struct fields, arrays, or named
// underlying types. Pointers, slices, maps, channels, and interfaces do
// not propagate — copying those shares rather than forks the state.
func containsAtomic(t types.Type) bool {
	return containsAtomicRec(t, map[types.Type]bool{})
}

func containsAtomicRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isAtomicNamed(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomicRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomicRec(u.Elem(), seen)
	}
	return false
}
