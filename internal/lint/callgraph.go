package lint

import (
	"go/ast"
	"go/types"
)

// callGraph is the shared lightweight call graph the interprocedural
// analyzers (frozen, goroutinelife) reason over: class-hierarchy
// analysis (CHA) over go/types, scoped to one package. Nodes are the
// package's declared functions and methods; edges are
//
//   - static calls (identifier or selector resolving directly to an
//     in-package declaration), and
//   - interface method calls, resolved CHA-style to every in-package
//     concrete method of the same name whose receiver type implements
//     the interface.
//
// Function literals are attributed to their enclosing declaration:
// a call made inside a closure is an edge from the declaring function.
// That is the right granularity for "which declared function's body can
// reach this write" questions; goroutinelife, which cares about the
// literal itself, walks the AST directly and only uses the graph to
// resolve `go f(...)` spawns of declared functions.
//
// The graph also records which declared functions are address-taken
// (referenced outside call position — stored in a variable, passed as a
// value, registered as a handler). An address-taken function can be
// called from anywhere, so closure computations must treat it as having
// an unknown external caller.
type callGraph struct {
	// decl maps each declared function object to its syntax.
	decl map[*types.Func]*ast.FuncDecl
	// callers[callee] is the set of in-package declared functions with
	// a (possibly CHA-approximated) call edge to callee.
	callers map[*types.Func]map[*types.Func]bool
	// addrTaken marks functions referenced outside call position.
	addrTaken map[*types.Func]bool
}

// graph builds (once, cached) the package's call graph.
func (p *Package) graph() *callGraph {
	if p.cg != nil {
		return p.cg
	}
	g := &callGraph{
		decl:      map[*types.Func]*ast.FuncDecl{},
		callers:   map[*types.Func]map[*types.Func]bool{},
		addrTaken: map[*types.Func]bool{},
	}
	forEachFunc(p, func(fd *ast.FuncDecl) {
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			g.decl[fn] = fd
		}
	})

	// Concrete methods declared in this package, by name, for CHA
	// resolution of interface calls.
	methodsByName := map[string][]*types.Func{}
	for fn := range g.decl {
		if recvNamed(fn) != nil {
			methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
		}
	}

	addEdge := func(caller, callee *types.Func) {
		if _, ok := g.decl[callee]; !ok {
			return
		}
		set := g.callers[callee]
		if set == nil {
			set = map[*types.Func]bool{}
			g.callers[callee] = set
		}
		set[caller] = true
	}

	forEachFunc(p, func(fd *ast.FuncDecl) {
		caller, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		// Identifiers used as call targets, so the address-taken pass
		// below can exclude them.
		calleeIdents := map[*ast.Ident]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
			fn := p.funcObj(call)
			if fn == nil {
				return true
			}
			if _, declared := g.decl[fn]; declared {
				addEdge(caller, fn)
				return true
			}
			// Interface method call: CHA over in-package concrete
			// methods of the same name whose receiver implements the
			// interface.
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
			if !ok {
				return true
			}
			for _, m := range methodsByName[fn.Name()] {
				recv := recvNamed(m)
				if recv == nil {
					continue
				}
				if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
					addEdge(caller, m)
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := p.Info.Uses[id].(*types.Func); ok {
				if _, declared := g.decl[fn]; declared {
					g.addrTaken[fn] = true
				}
			}
			return true
		})
	})
	p.cg = g
	return g
}

// privateClosure grows seed into the set of functions reachable only
// from seed: a declared function joins when it is unexported, not
// address-taken, has at least one in-package caller, and every caller
// is already in the set. Exported functions and address-taken functions
// never join (they can be called from outside the seed's control), so
// the result is a sound over-approximation of "code that runs only on
// behalf of the seed set" — the frozen analyzer's constructor closure.
func (g *callGraph) privateClosure(seed map[*types.Func]bool) map[*types.Func]bool {
	out := make(map[*types.Func]bool, len(seed))
	for fn := range seed {
		out[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.decl {
			if out[fn] || fn.Exported() || g.addrTaken[fn] {
				continue
			}
			callers := g.callers[fn]
			if len(callers) == 0 {
				continue
			}
			all := true
			for c := range callers {
				if !out[c] {
					all = false
					break
				}
			}
			if all {
				out[fn] = true
				changed = true
			}
		}
	}
	return out
}
