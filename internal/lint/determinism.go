package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultDeterminismTargets are the tuning/decision packages whose
// output must be bit-identical for a given seed: jackknife-driven point
// selection is only comparable across runs if training is reproducible
// (paper §IV), and the emitted rule file is the artifact golden tests
// diff. Matched as import-path suffixes. The obs package is the one
// sanctioned host-clock seam (obs.NowNs, the trace clock) and is
// deliberately not in this list.
var DefaultDeterminismTargets = []string{
	"internal/core",
	"internal/forest",
	"internal/fact",
	"internal/hunold",
	"internal/sched",
	"internal/featspace",
	"internal/rules",
}

// wall-clock reads: anything observing host time.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Seeded-constructor funcs of math/rand and math/rand/v2 are fine; every
// other package-level func draws from the shared, unseeded global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism returns the determinism analyzer scoped to packages whose
// import path ends with one of targets. It flags, inside those packages:
//
//   - calls to time.Now / time.Since / time.Until (host time must flow
//     through the obs clock seam, which lives outside the target set);
//   - calls to package-level math/rand and math/rand/v2 functions other
//     than seeded constructors (they draw from the global source), and
//     any use of crypto/rand;
//   - range loops over maps that append to a slice never passed to a
//     sort or slices call later in the same function — the shape that
//     turns map iteration order into output order.
func Determinism(targets []string) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, global RNG, and order-leaking map iteration in tuning packages",
		Run: func(p *Package) []Diagnostic {
			if !pathMatches(p.Path, targets) {
				return nil
			}
			var ds []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := p.funcObj(call)
					if fn == nil {
						return true
					}
					switch path := pkgPath(fn); path {
					case "time":
						if timeFuncs[fn.Name()] && recvNamed(fn) == nil {
							ds = append(ds, p.diag("determinism", call.Pos(),
								"call to time.%s in deterministic tuning package (read host time through the obs clock seam, e.g. obs.NowNs)", fn.Name()))
						}
					case "math/rand", "math/rand/v2":
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
							ds = append(ds, p.diag("determinism", call.Pos(),
								"call to global %s.%s draws from the unseeded shared source (use a seeded *rand.Rand)", path, fn.Name()))
						}
					case "crypto/rand":
						ds = append(ds, p.diag("determinism", call.Pos(),
							"crypto/rand is nondeterministic by design; tuning code must use a seeded *rand.Rand"))
					}
					return true
				})
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
						ds = append(ds, p.mapOrderLeaks(fd)...)
					}
				}
			}
			return ds
		},
	}
}

// mapOrderLeaks flags map-range loops in fd that append into a slice
// which no sort/slices call in the same function ever touches: without
// the sort, the slice's element order is the map's random iteration
// order. (The sorted form — collect keys, sort, iterate — is the
// sanctioned pattern, e.g. core's run-report assembly.)
func (p *Package) mapOrderLeaks(fd *ast.FuncDecl) []Diagnostic {
	// Objects appearing anywhere inside a sort.* / slices.* call.
	sorted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.funcObj(call)
		if fn == nil {
			return true
		}
		if path := pkgPath(fn); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	var ds []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(bn ast.Node) bool {
			asg, ok := bn.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				return true
			} else if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			lhs, ok := asg.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[lhs]
			if obj == nil {
				obj = p.Info.Defs[lhs]
			}
			if obj == nil || sorted[obj] {
				return true
			}
			ds = append(ds, p.diag("determinism", asg.Pos(),
				"map iteration appends to %s, which is never sorted in %s: element order becomes map iteration order", lhs.Name, fd.Name.Name))
			return true
		})
		return true
	})
	return ds
}

// pathMatches reports whether path ends with any of the suffixes (or
// equals one exactly).
func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
