package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Frozen returns the frozen analyzer. A named type is frozen when its
// declaration carries `//acclaim:frozen`, or when it is published
// through an atomic.Pointer[T] anywhere in the package (a hot-swapped
// snapshot: readers hold it lock-free, so any post-construction
// mutation is a data race by design, not by accident). For each frozen
// type T the analyzer computes T's constructor closure over the shared
// CHA call graph — the functions whose results include T or *T, plus
// the unexported, non-address-taken helpers reachable only from them —
// and then flags, everywhere outside that closure:
//
//   - writes to T's interior through a pointer: assignments, compound
//     assignments, and ++/-- whose left side reaches a field or element
//     of a *T, directly or through a tracked local alias;
//   - interior addresses (&t.f, &t.f[i]) or reference-typed interior
//     state (slice/map fields) escaping the function: returned, stored
//     into a non-local, sent on a channel, or placed in a composite
//     literal.
//
// What the analyzer deliberately does not prove: mutation through
// method calls on interior values (pc.lookups.Add(1) — sync/atomic
// interior mutability is the designed exception, and in-package methods
// that write their receiver are caught by the write rule itself),
// mutation by callees receiving an interior pointer as an argument
// (flagged at the passing site instead, except into sync/atomic), and
// writes through aliases that cross function boundaries. Value-typed
// copies of T may be written freely — mutating a copy cannot race.
func Frozen() *Analyzer {
	return &Analyzer{
		Name: "frozen",
		Doc:  "forbid post-construction interior writes and escaping interior aliases of //acclaim:frozen and atomic.Pointer-published types",
		Run:  func(p *Package) []Diagnostic { return p.frozenCheck() },
	}
}

// frozenInfo is one frozen type plus why it is frozen.
type frozenInfo struct {
	name *types.TypeName
	why  string // "annotated //acclaim:frozen" or "published through atomic.Pointer"
}

func (p *Package) frozenCheck() []Diagnostic {
	frozen := p.frozenTypes()
	if len(frozen) == 0 {
		return nil
	}
	g := p.graph()

	// Constructor closure per frozen type.
	closure := map[*types.TypeName]map[*types.Func]bool{}
	for tn := range frozen {
		seed := map[*types.Func]bool{}
		for fn := range g.decl {
			if fnConstructs(fn, tn) {
				seed[fn] = true
			}
		}
		closure[tn] = g.privateClosure(seed)
	}

	var ds []Diagnostic
	forEachFunc(p, func(fd *ast.FuncDecl) {
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		exempt := map[*types.TypeName]bool{}
		for tn := range frozen {
			if fn != nil && closure[tn][fn] {
				exempt[tn] = true
			}
		}
		ds = append(ds, p.frozenScanFunc(fd, frozen, exempt)...)
	})
	return ds
}

// frozenTypes collects the package's frozen types: annotated ones plus
// every in-package named type appearing as the type argument of an
// atomic.Pointer anywhere in the package's type syntax.
func (p *Package) frozenTypes() map[*types.TypeName]frozenInfo {
	out := map[*types.TypeName]frozenInfo{}
	for _, ts := range p.frozen {
		if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
			out[tn] = frozenInfo{name: tn, why: "annotated //acclaim:frozen"}
		}
	}
	for expr, tv := range p.Info.Types {
		if !tv.IsType() {
			continue
		}
		elem := atomicPointerElem(tv.Type)
		if elem == nil {
			continue
		}
		tn := elem.Obj()
		if tn.Pkg() != p.TPkg {
			continue
		}
		if _, ok := out[tn]; !ok {
			out[tn] = frozenInfo{name: tn, why: "published through atomic.Pointer"}
		}
		_ = expr
	}
	return out
}

// atomicPointerElem returns the named type argument T of a
// sync/atomic.Pointer[T] instantiation, or nil.
func atomicPointerElem(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pointer" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync/atomic" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	elem, _ := args.At(0).(*types.Named)
	return elem
}

// fnConstructs reports whether fn's results include tn's type (by value
// or pointer) — the definition of a constructor for the closure seed.
func fnConstructs(fn *types.Func, tn *types.TypeName) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == tn {
			return true
		}
	}
	return false
}

// frozenScanFunc scans one declared function (closures included) for
// frozen violations, skipping types the function is a constructor of.
func (p *Package) frozenScanFunc(fd *ast.FuncDecl, frozen map[*types.TypeName]frozenInfo, exempt map[*types.TypeName]bool) []Diagnostic {
	var ds []Diagnostic
	flag := func(at token.Pos, format string, args ...any) {
		ds = append(ds, p.diag("frozen", at, format, args...))
	}

	// aliases maps a local object to the frozen type whose interior it
	// references (from v := &t.f, v := t.sliceField, or chains thereof).
	aliases := map[types.Object]*types.TypeName{}

	// hit returns the frozen, non-exempt type whose interior expr
	// reaches: the chain of selectors/indexes/derefs from expr down to
	// a base that is a *T (or an alias local).
	var hit func(e ast.Expr) *types.TypeName
	hit = func(e ast.Expr) *types.TypeName {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.Ident:
			if tn := aliases[p.objOf(e)]; tn != nil && !exempt[tn] {
				return tn
			}
		case *ast.SelectorExpr:
			if tn := p.frozenPointerBase(e.X, frozen, exempt); tn != nil {
				return tn
			}
			return hit(e.X)
		case *ast.IndexExpr:
			return hit(e.X)
		case *ast.StarExpr:
			if tn := p.frozenPointerBase(e.X, frozen, exempt); tn != nil {
				return tn
			}
			return hit(e.X)
		}
		return nil
	}

	// interiorRef reports whether rhs yields a reference into a frozen
	// value's interior: &chain, or a slice/map-typed chain value.
	interiorRef := func(rhs ast.Expr) *types.TypeName {
		rhs = ast.Unparen(rhs)
		if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
			return hit(un.X)
		}
		switch rhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			if !isRefKind(p.Info.TypeOf(rhs)) {
				return nil
			}
			return hit(rhs)
		}
		return nil
	}

	parent := parentMap(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Alias introduction: local := interior reference.
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					if tn := interiorRef(rhs); tn != nil {
						if obj := p.objOf(id); obj != nil {
							aliases[obj] = tn
						}
					}
				}
			}
			// Interior writes.
			for _, lhs := range n.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // rebinding a variable, not an interior write
				}
				if tn := hit(lhs); tn != nil {
					ds = append(ds, p.frozenWriteDiag(lhs.Pos(), tn, frozen[tn]))
				}
			}
		case *ast.IncDecStmt:
			if _, ok := ast.Unparen(n.X).(*ast.Ident); !ok {
				if tn := hit(n.X); tn != nil {
					ds = append(ds, p.frozenWriteDiag(n.X.Pos(), tn, frozen[tn]))
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			tn := hit(n.X)
			if tn == nil {
				return true
			}
			if how := escapeContext(parent, n, p); how != "" {
				flag(n.Pos(), "&-alias of %s interior (%s) %s; frozen interior must not escape",
					tn.Name(), frozen[tn].why, how)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				res = ast.Unparen(res)
				switch res.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
					if !isRefKind(p.Info.TypeOf(res)) {
						continue
					}
					if _, isIdent := res.(*ast.Ident); isIdent {
						if tn := aliases[p.objOf(res.(*ast.Ident))]; tn != nil && !exempt[tn] {
							flag(res.Pos(), "returns reference into %s interior (%s); frozen interior must not escape",
								tn.Name(), frozen[tn].why)
						}
						continue
					}
					if tn := hit(res); tn != nil {
						flag(res.Pos(), "returns reference into %s interior (%s); frozen interior must not escape",
							tn.Name(), frozen[tn].why)
					}
				}
			}
		}
		return true
	})
	return ds
}

func (p *Package) frozenWriteDiag(at token.Pos, tn *types.TypeName, info frozenInfo) Diagnostic {
	return p.diag("frozen", at,
		"write to interior of frozen type %s (%s) outside its constructor closure", tn.Name(), info.why)
}

// frozenPointerBase reports the frozen type when e's type is *T for a
// frozen, non-exempt T — the pointer link that makes an interior access
// a shared-object access rather than a local-copy one.
func (p *Package) frozenPointerBase(e ast.Expr, frozen map[*types.TypeName]frozenInfo, exempt map[*types.TypeName]bool) *types.TypeName {
	t := p.Info.TypeOf(e)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if _, isFrozen := frozen[tn]; isFrozen && !exempt[tn] {
		return tn
	}
	return nil
}

// objOf resolves an identifier to its object (use or def).
func (p *Package) objOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isRefKind reports whether t is reference-shaped interior state:
// mutating through a copy mutates the original (slices and maps).
// Pointer-typed fields are deliberately excluded — the pointee is its
// own object with its own discipline, not this struct's storage.
func isRefKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// escapeContext classifies how an &-of-interior expression leaves the
// function, returning "" for the benign uses (bound to a local — which
// alias tracking then watches — or the receiver/argument of a
// sync/atomic call).
func escapeContext(parents map[ast.Node]ast.Node, n ast.Node, p *Package) string {
	par := parents[n]
	for {
		if pe, ok := par.(*ast.ParenExpr); ok {
			_ = pe
			par = parents[par]
			continue
		}
		break
	}
	switch par := par.(type) {
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return "is stored into a non-local"
			}
		}
		return "" // bound to locals; alias tracking takes over
	case *ast.ReturnStmt:
		return "is returned"
	case *ast.SendStmt:
		return "is sent on a channel"
	case *ast.CompositeLit:
		return "is placed in a composite literal"
	case *ast.KeyValueExpr:
		return "is placed in a composite literal"
	case *ast.CallExpr:
		if fn := p.funcObj(par); fn != nil && pkgPath(fn) == "sync/atomic" {
			return ""
		}
		// The address being the method receiver chain is not an
		// argument; only flag true argument positions.
		for _, arg := range par.Args {
			if ast.Unparen(arg) == n {
				return "is passed to a call"
			}
		}
		return ""
	case *ast.UnaryExpr, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
		return "" // immediate read/deref/method access
	}
	return ""
}
