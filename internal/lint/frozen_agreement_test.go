package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// frozenPublishManifest is the project's declared set of hot-swap
// publish points: for each package, the named types published through
// an atomic.Pointer[T]. Publishing through an atomic.Pointer is the
// strongest concurrency claim in the tree — readers touch the value
// with no lock at all — so every such type must both appear here and
// carry an //acclaim:frozen annotation at its declaration (the frozen
// analyzer auto-freezes published types anyway; the annotation makes
// the contract visible at the type, and this test makes adding a new
// snapshot type without declaring it a build break, not a silent
// opt-out).
var frozenPublishManifest = map[string][]string{
	"internal/ruleserver": {"snapshot", "shardTable"},
}

// publishSite is one atomic.Pointer[T] occurrence in non-test source.
type publishSite struct {
	pkg  string // module-relative package dir
	elem string // type argument as written ("snapshot", "pkg.T")
	file string
	line int
}

// TestFrozenPublishAgreement scans every non-test file in the module
// for atomic.Pointer[T] type expressions and asserts each is covered:
// the element type is listed in frozenPublishManifest and annotated
// //acclaim:frozen in its declaring package, or the site carries an
// explicit `//acclaim:allow frozen <reason>`. Stale manifest entries
// (no remaining publish site) fail too.
func TestFrozenPublishAgreement(t *testing.T) {
	root := "../.."
	var sites []publishSite
	frozenByPkg := map[string]map[string]bool{} // pkg dir -> annotated type names
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		relPkg, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		relPkg = filepath.ToSlash(relPkg)

		atomicName, imported := atomicImportName(f)

		// Allow ranges for `//acclaim:allow frozen` in this file
		// (free-standing: own line and the next).
		type span struct{ from, to int }
		var allows []span
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == "allow" &&
					strings.HasPrefix(strings.TrimSpace(m[2]), "frozen") {
					line := fset.Position(c.Pos()).Line
					allows = append(allows, span{line, line + 1})
				}
			}
		}
		allowed := func(line int) bool {
			for _, s := range allows {
				if line >= s.from && line <= s.to {
					return true
				}
			}
			return false
		}

		// Annotated frozen types in this file.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasFrozenDirective(gd, ts) {
					if frozenByPkg[relPkg] == nil {
						frozenByPkg[relPkg] = map[string]bool{}
					}
					frozenByPkg[relPkg][ts.Name.Name] = true
				}
			}
		}

		if !imported {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			sel, ok := ix.X.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Pointer" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != atomicName {
				return true
			}
			pos := fset.Position(ix.Pos())
			if allowed(pos.Line) {
				return true
			}
			sites = append(sites, publishSite{
				pkg:  relPkg,
				elem: typeExprString(ix.Index),
				file: filepath.ToSlash(path),
				line: pos.Line,
			})
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]map[string]bool{}
	for _, s := range sites {
		inManifest := false
		for _, name := range frozenPublishManifest[s.pkg] {
			if name == s.elem {
				inManifest = true
			}
		}
		if !inManifest {
			t.Errorf("%s:%d: atomic.Pointer[%s] publish site not in frozenPublishManifest and not //acclaim:allow frozen'd; declare the snapshot type",
				s.file, s.line, s.elem)
		}
		// Cross-package elements (pkg.T) are checked in their declaring
		// package only when that package is in the manifest; same-package
		// elements must be annotated where they are declared.
		if !strings.Contains(s.elem, ".") && !frozenByPkg[s.pkg][s.elem] {
			t.Errorf("%s:%d: published type %s lacks an //acclaim:frozen annotation at its declaration in %s",
				s.file, s.line, s.elem, s.pkg)
		}
		if seen[s.pkg] == nil {
			seen[s.pkg] = map[string]bool{}
		}
		seen[s.pkg][s.elem] = true
	}

	for pkg, names := range frozenPublishManifest {
		for _, name := range names {
			if !seen[pkg][name] {
				t.Errorf("frozenPublishManifest lists %s.%s but no atomic.Pointer[%s] site exists in %s; remove the stale entry",
					pkg, name, name, pkg)
			}
		}
	}
}

// atomicImportName returns the local name sync/atomic is imported
// under in f, and whether it is imported at all.
func atomicImportName(f *ast.File) (string, bool) {
	for _, spec := range f.Imports {
		if strings.Trim(spec.Path.Value, `"`) != "sync/atomic" {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name, true
		}
		return "atomic", true
	}
	return "", false
}

// hasFrozenDirective reports whether the type spec carries
// //acclaim:frozen in its (or its sole-spec GenDecl's) doc or line
// comment — the same coverage parseDirectives applies.
func hasFrozenDirective(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	var groups []*ast.CommentGroup
	if gd.Doc != nil && len(gd.Specs) == 1 {
		groups = append(groups, gd.Doc)
	}
	if ts.Doc != nil {
		groups = append(groups, ts.Doc)
	}
	if ts.Comment != nil {
		groups = append(groups, ts.Comment)
	}
	for _, g := range groups {
		for _, c := range g.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == "frozen" {
				return true
			}
		}
	}
	return false
}

// typeExprString renders a type-argument expression the way it was
// written, for Ident / pkg.Ident / *T shapes.
func typeExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	}
	return "?"
}
