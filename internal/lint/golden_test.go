package lint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtures are the golden packages under testdata/src, one per
// analyzer plus directive hygiene. Expectations live in the fixtures
// as `want` comments holding backquoted regexps:
//
//	expr // want `regexp` `another`
//	// want `regexp`        (a standalone want line covers the next line)
//
// Each regexp is matched against "[check] message" of a diagnostic on
// that line; every diagnostic must be wanted and every want matched.
var fixtures = []string{
	"determinism", "zeroalloc", "lockcheck", "metricname", "directive",
	"frozen", "atomicdiscipline", "goroutinelife",
}

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "internal/lint/testdata/src/" + f
	}
	pkgs, err := Load("../..", patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d fixture packages, want %d", len(pkgs), len(fixtures))
	}
	return pkgs
}

// fixtureAnalyzers is the default suite with the determinism target
// list pointed at the fixture package instead of the real tuning
// packages.
func fixtureAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism([]string{"src/determinism"}),
		ZeroAlloc(),
		LockCheck(),
		MetricName(),
		Frozen(),
		AtomicDiscipline(),
		GoroutineLife(),
	}
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("`([^`]+)`")

// parseWants scans a fixture source file for want comments and returns
// line -> regexps, keyed by the repo-relative path diagnostics use.
func parseWants(t *testing.T, relPath string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	f, err := os.Open(filepath.Join("../..", filepath.FromSlash(relPath)))
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()

	wants := map[wantKey][]*regexp.Regexp{}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		i := strings.Index(text, "// want ")
		if i < 0 {
			continue
		}
		target := line
		if strings.HasPrefix(strings.TrimSpace(text), "// want ") {
			target = line + 1 // standalone want line covers the next line
		}
		for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", relPath, line, m[1], err)
			}
			wants[wantKey{relPath, target}] = append(wants[wantKey{relPath, target}], re)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestFixtureGolden runs the full suite over the fixture corpus and
// checks the diagnostics against the in-source want comments, both
// directions: no unexpected finding, no unmatched expectation.
func TestFixtureGolden(t *testing.T) {
	pkgs := loadFixtures(t)
	got := Run(pkgs, fixtureAnalyzers())

	wants := map[wantKey][]*regexp.Regexp{}
	for _, fix := range fixtures {
		rel := "internal/lint/testdata/src/" + fix + "/" + fix + ".go"
		for k, v := range parseWants(t, rel) {
			wants[k] = append(wants[k], v...)
		}
	}

	matched := map[wantKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range got {
		k := wantKey{d.File, d.Line}
		text := "[" + d.Check + "] " + d.Message
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(text) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// TestFixtureJSON checks the -json output contract the CI artifact
// depends on: an array of objects with exactly the five documented
// keys, sorted by position, and `[]` (never null) when clean.
func TestFixtureJSON(t *testing.T) {
	pkgs := loadFixtures(t)
	got := Run(pkgs, fixtureAnalyzers())
	if len(got) == 0 {
		t.Fatal("fixture corpus produced no diagnostics")
	}

	out, err := MarshalDiagnostics(got)
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(raw) != len(got) {
		t.Fatalf("marshalled %d diagnostics, want %d", len(raw), len(got))
	}
	wantKeys := []string{"check", "col", "file", "line", "message"}
	for i, obj := range raw {
		if len(obj) != len(wantKeys) {
			t.Errorf("diagnostic %d has %d keys, want %d (%v)", i, len(obj), len(wantKeys), wantKeys)
		}
		for _, k := range wantKeys {
			if _, ok := obj[k]; !ok {
				t.Errorf("diagnostic %d missing key %q", i, k)
			}
		}
	}

	var round []Diagnostic
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if round[i] != got[i] {
			t.Errorf("diagnostic %d did not round-trip: %+v != %+v", i, round[i], got[i])
		}
	}

	empty, err := MarshalDiagnostics(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("MarshalDiagnostics(nil) = %q, want []", empty)
	}
}

// TestFixtureSuppression pins the directive machinery itself: the
// fixtures contain allow directives whose covered lines would
// otherwise be findings, so re-running with suppression disabled (by
// clearing the parsed allows) must strictly grow the finding count.
func TestFixtureSuppression(t *testing.T) {
	pkgs := loadFixtures(t)
	before := len(Run(pkgs, fixtureAnalyzers()))
	for _, p := range pkgs {
		p.allows = nil
	}
	after := len(Run(pkgs, fixtureAnalyzers()))
	if after <= before {
		t.Errorf("clearing //acclaim:allow directives kept findings at %d (was %d); suppression is not doing anything", after, before)
	}
}
