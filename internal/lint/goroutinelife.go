package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife returns the goroutinelife analyzer: every `go`
// statement must have a provable termination edge, so long-lived
// components (the serving loop, the upcoming reconcile controller)
// cannot quietly leak workers. A spawn is accepted when the spawned
// body — a function literal, or the declaration of an in-package
// static callee resolved through the shared call graph — contains at
// least one of:
//
//   - a channel receive (`<-done`, `<-ctx.Done()`, a receive case in a
//     select) or a range over a channel: the goroutine parks on
//     something the owner can close;
//   - a sync.WaitGroup Done call whose WaitGroup the spawning function
//     also Waits on: the classic bounded fan-out worker.
//
// Receives from time.Tick do not count — that channel never closes and
// the ticker can never be stopped, so `for range time.Tick(d)` is a
// leak, flagged with its own message. Spawns the analyzer cannot
// resolve (method values, function-typed variables, cross-package
// callees) and bodies with no edge must carry an
// `//acclaim:goroutine-owner <shutdown path>` annotation on (or
// immediately above) the go statement, or in the enclosing function's
// doc comment.
//
// What this does not prove: that the receive is reachable on every
// path, that the owner actually closes the channel, or that nested
// spawns inside the body terminate (each nested `go` is checked at its
// own site). It is a structural obligation — every goroutine names its
// parking mechanism — not a liveness proof.
func GoroutineLife() *Analyzer {
	return &Analyzer{
		Name: "goroutinelife",
		Doc:  "require a termination edge (channel receive, bounded WaitGroup, or //acclaim:goroutine-owner) for every go statement",
		Run:  func(p *Package) []Diagnostic { return p.goroutineLife() },
	}
}

func (p *Package) goroutineLife() []Diagnostic {
	var ds []Diagnostic
	g := p.graph()
	forEachFunc(p, func(fd *ast.FuncDecl) {
		waits := p.waitGroupObjs(fd.Body, "Wait")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			file, line, _ := p.pos(gs.Pos())
			for _, o := range p.owners {
				if o.covers(file, line) {
					return true
				}
			}

			var body *ast.BlockStmt
			spawned := ""
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
				spawned = "function literal"
			default:
				_ = fun
				if fn := p.funcObj(gs.Call); fn != nil {
					if decl, declared := g.decl[fn]; declared {
						body = decl.Body
						spawned = fn.Name()
					}
				}
			}
			if body == nil {
				ds = append(ds, p.diag("goroutinelife", gs.Pos(),
					"go statement spawns a callee the analyzer cannot resolve; annotate //acclaim:goroutine-owner <shutdown path>"))
				return true
			}
			edge, tick := p.terminationEdge(body, waits)
			if edge {
				return true
			}
			if tick {
				ds = append(ds, p.diag("goroutinelife", gs.Pos(),
					"goroutine %s receives only from time.Tick, which never stops and leaks its ticker; use time.NewTicker with a done-channel select", spawned))
				return true
			}
			ds = append(ds, p.diag("goroutinelife", gs.Pos(),
				"goroutine %s has no termination edge (no channel receive, no WaitGroup Done matched by a Wait here); annotate //acclaim:goroutine-owner <shutdown path>", spawned))
			return true
		})
	})
	return ds
}

// terminationEdge scans a spawned body for a termination edge. waits is
// the set of WaitGroup objects the spawning function calls Wait on.
// tick reports whether a time.Tick receive was seen (a leak, not an
// edge).
func (p *Package) terminationEdge(body *ast.BlockStmt, waits map[types.Object]bool) (edge, tick bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if edge {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if isTimeTickCall(p, n.X) {
				tick = true
				return true
			}
			edge = true
		case *ast.RangeStmt:
			t := p.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			if isTimeTickCall(p, n.X) {
				tick = true
				return true
			}
			edge = true
		case *ast.CallExpr:
			if obj := p.waitGroupRecvObj(n, "Done"); obj != nil && waits[obj] {
				edge = true
			}
		}
		return true
	})
	return edge, tick
}

// isTimeTickCall reports whether e is a call to time.Tick.
func isTimeTickCall(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.funcObj(call)
	return fn != nil && fn.Name() == "Tick" && pkgPath(fn) == "time"
}

// waitGroupObjs collects the objects (locals, params, or struct fields)
// on which body calls sync.WaitGroup method name.
func (p *Package) waitGroupObjs(body *ast.BlockStmt, name string) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := p.waitGroupRecvObj(call, name); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// waitGroupRecvObj returns the receiver object of a
// sync.WaitGroup.<name> call (wg.Done(), s.wg.Wait(), ...), nil
// otherwise.
func (p *Package) waitGroupRecvObj(call *ast.CallExpr, name string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn := p.funcObj(call)
	if fn == nil {
		return nil
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Name() != "WaitGroup" || recv.Obj().Pkg() == nil ||
		recv.Obj().Pkg().Path() != "sync" {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return p.objOf(x)
	case *ast.SelectorExpr:
		if s := p.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}
