// Package lint is acclaim-lint's analysis engine: a stdlib-only
// static-analysis driver (go/parser + go/types, no external modules)
// enforcing the project invariants the compiler cannot check and the
// runtime gates only catch when the right test happens to run:
//
//   - determinism: the tuning/decision packages must be bit-identical
//     across runs — no wall-clock reads, no global math/rand, no map
//     iteration feeding ordered output (see determinism.go).
//   - zeroalloc: functions annotated `//acclaim:zeroalloc` must contain
//     no syntactic allocation sites, mirroring the runtime
//     testing.AllocsPerRun gates (see zeroalloc.go).
//   - lockcheck: struct fields documented `guarded by <mu>` may only be
//     touched by functions that lock <mu>, and a field must not mix
//     sync/atomic and plain access (see lockcheck.go).
//   - metricname: obs metric/span names are literal, lower_snake dotted,
//     unique per package, and host-time histograms end in `_ns` — the
//     run-report golden normalisation keys on that suffix (see
//     metricname.go).
//   - frozen: types annotated `//acclaim:frozen` — and every type
//     published through atomic.Pointer[T] — must be deep-immutable
//     after construction: no interior writes reachable outside the
//     constructor closure, no interior addresses escaping (frozen.go,
//     over the shared CHA call graph in callgraph.go).
//   - atomicdiscipline: no mixed atomic/plain access to a field, no
//     by-value copies of atomic-bearing structs, no mutation of values
//     already published through an atomic.Pointer
//     (atomicdiscipline.go).
//   - goroutinelife: every `go` statement has a provable termination
//     edge — a channel receive / ctx.Done select, a WaitGroup
//     Done+Wait pairing, or an `//acclaim:goroutine-owner` annotation
//     naming the shutdown path (goroutinelife.go).
//
// Any finding can be suppressed in source with
//
//	//acclaim:allow <check> <reason>
//
// on (or immediately above) the offending line, or in a function's doc
// comment to cover its whole body. The reason is mandatory: a
// suppression without one is itself a diagnostic.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned in repo-relative coordinates.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// MarshalDiagnostics renders findings as the stable JSON array the CI
// job uploads as an artifact (empty slice marshals as [], not null).
func MarshalDiagnostics(ds []Diagnostic) ([]byte, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	out, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Package is one loaded, type-checked package plus its parsed
// directives.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Root  string // module root (diagnostics are reported relative to it)
	Fset  *token.FileSet
	Files []*ast.File
	TPkg  *types.Package
	Info  *types.Info

	allows    []allowDirective
	zeroAlloc []*ast.FuncDecl // functions annotated //acclaim:zeroalloc
	frozen    []*ast.TypeSpec // types annotated //acclaim:frozen
	owners    []lineDirective // //acclaim:goroutine-owner coverage ranges
	hygiene   []Diagnostic    // malformed-directive findings

	cg *callGraph // lazily built by graph()
}

// allowDirective is one parsed //acclaim:allow suppression: it covers
// diagnostics of Check in File on lines [FromLine, ToLine].
type allowDirective struct {
	Check    string
	File     string
	FromLine int
	ToLine   int
}

// lineDirective is a positional directive (such as
// //acclaim:goroutine-owner) covering File lines [FromLine, ToLine].
type lineDirective struct {
	File     string
	FromLine int
	ToLine   int
}

// covers reports whether the directive covers (file, line).
func (d lineDirective) covers(file string, line int) bool {
	return d.File == file && line >= d.FromLine && line <= d.ToLine
}

// CheckNames are the valid <check> arguments of //acclaim:allow.
var CheckNames = []string{
	"determinism", "zeroalloc", "lockcheck", "metricname",
	"frozen", "atomicdiscipline", "goroutinelife", "directive",
}

var directiveRe = regexp.MustCompile(`^//acclaim:(allow|zeroalloc|frozen|goroutine-owner)(?:\s+(.*))?$`)

// pos converts a token.Pos to repo-relative coordinates.
func (p *Package) pos(at token.Pos) (file string, line, col int) {
	position := p.Fset.Position(at)
	file = position.Filename
	if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file, position.Line, position.Column
}

// diag builds a Diagnostic at a position.
func (p *Package) diag(check string, at token.Pos, format string, args ...any) Diagnostic {
	file, line, col := p.pos(at)
	return Diagnostic{Check: check, File: file, Line: line, Col: col, Message: fmt.Sprintf(format, args...)}
}

// parseDirectives scans every comment in the package for acclaim
// directives: //acclaim:allow suppressions (function-doc ones cover the
// whole body; free-standing ones cover their own line and the next),
// //acclaim:zeroalloc annotations on function declarations,
// //acclaim:frozen annotations on type declarations, and
// //acclaim:goroutine-owner annotations naming the shutdown path of a
// go statement (free-standing ones cover their own line and the next;
// function-doc ones cover every go statement in the function).
func (p *Package) parseDirectives() {
	known := make(map[string]bool, len(CheckNames))
	for _, c := range CheckNames {
		known[c] = true
	}
	for _, f := range p.Files {
		// Function-scoped directives from doc comments.
		docComments := map[*ast.Comment]*ast.FuncDecl{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docComments[c] = fd
			}
		}
		// Type-scoped directives: a GenDecl doc comment covers its sole
		// spec; per-spec doc and line comments cover that spec.
		typeComments := map[*ast.Comment]*ast.TypeSpec{}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if gd.Doc != nil && len(gd.Specs) == 1 {
					for _, c := range gd.Doc.List {
						typeComments[c] = ts
					}
				}
				if ts.Doc != nil {
					for _, c := range ts.Doc.List {
						typeComments[c] = ts
					}
				}
				if ts.Comment != nil {
					for _, c := range ts.Comment.List {
						typeComments[c] = ts
					}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				kind, rest := m[1], strings.TrimSpace(m[2])
				fd := docComments[c]
				switch kind {
				case "zeroalloc":
					if fd == nil {
						p.hygiene = append(p.hygiene, p.diag("directive", c.Pos(),
							"//acclaim:zeroalloc must be in a function's doc comment"))
						continue
					}
					p.zeroAlloc = append(p.zeroAlloc, fd)
				case "frozen":
					ts := typeComments[c]
					if ts == nil {
						p.hygiene = append(p.hygiene, p.diag("directive", c.Pos(),
							"//acclaim:frozen must be in a type declaration's doc or line comment"))
						continue
					}
					p.frozen = append(p.frozen, ts)
				case "goroutine-owner":
					if rest == "" {
						p.hygiene = append(p.hygiene, p.diag("directive", c.Pos(),
							"//acclaim:goroutine-owner needs the shutdown path spelled out"))
						continue
					}
					file, line, _ := p.pos(c.Pos())
					ld := lineDirective{File: file, FromLine: line, ToLine: line + 1}
					if fd != nil {
						_, from, _ := p.pos(fd.Pos())
						_, to, _ := p.pos(fd.End())
						ld.FromLine, ld.ToLine = from, to
					}
					p.owners = append(p.owners, ld)
				case "allow":
					check, reason, _ := strings.Cut(rest, " ")
					if !known[check] {
						p.hygiene = append(p.hygiene, p.diag("directive", c.Pos(),
							"//acclaim:allow names unknown check %q (known: %s)", check, strings.Join(CheckNames, ", ")))
						continue
					}
					if strings.TrimSpace(reason) == "" {
						p.hygiene = append(p.hygiene, p.diag("directive", c.Pos(),
							"//acclaim:allow %s needs a reason", check))
						continue
					}
					file, line, _ := p.pos(c.Pos())
					ad := allowDirective{Check: check, File: file, FromLine: line, ToLine: line + 1}
					if fd != nil {
						_, from, _ := p.pos(fd.Pos())
						_, to, _ := p.pos(fd.End())
						ad.FromLine, ad.ToLine = from, to
					}
					p.allows = append(p.allows, ad)
				}
			}
		}
	}
}

// suppressed reports whether d is covered by an //acclaim:allow.
func (p *Package) suppressed(d Diagnostic) bool {
	for _, a := range p.allows {
		if a.Check == d.Check && a.File == d.File && d.Line >= a.FromLine && d.Line <= a.ToLine {
			return true
		}
	}
	return false
}

// ZeroAllocFuncs returns the annotated function declarations.
func (p *Package) ZeroAllocFuncs() []*ast.FuncDecl { return p.zeroAlloc }

// Timing is one analyzer's wall time across every package of a run, as
// reported by acclaim-lint -v.
type Timing struct {
	Check string
	Ns    int64
}

// Run applies every analyzer to every package, filters suppressions,
// appends directive-hygiene findings, and returns the findings sorted
// by file, line, column, and check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ds, _ := RunTimed(pkgs, analyzers, nil)
	return ds
}

// RunTimed is Run plus per-analyzer wall-time accounting. now is the
// clock (nanoseconds); nil means time.Now. The diagnostics are
// identical to Run's for any clock — timing never affects findings —
// and the timings come back in analyzer order, one entry per analyzer.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, now func() int64) ([]Diagnostic, []Timing) {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, p.hygiene...)
	}
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		t0 := now()
		for _, p := range pkgs {
			for _, d := range a.Run(p) {
				if !p.suppressed(d) {
					out = append(out, d)
				}
			}
		}
		timings = append(timings, Timing{Check: a.Name, Ns: now() - t0})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out, timings
}

// DefaultAnalyzers is the full project suite, as run by cmd/acclaim-lint.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(DefaultDeterminismTargets),
		ZeroAlloc(),
		LockCheck(),
		MetricName(),
		Frozen(),
		AtomicDiscipline(),
		GoroutineLife(),
	}
}

// --- shared type-query helpers ---

// funcObj resolves a call's callee to its *types.Func, nil for builtins,
// conversions, and indirect calls through function values.
func (p *Package) funcObj(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// pkgPath returns the import path of the package an object belongs to
// ("" for universe-scope objects like builtins).
func pkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// recvNamed returns the named type of a method's receiver (pointers
// stripped), or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
