package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the non-test Go packages under root that
// match the given patterns ("./pkg" for one directory, "./..." or
// "./pkg/..." for a subtree; testdata, vendor, and hidden directories
// are skipped during expansion). Type-checking uses the stdlib source
// importer — no compiler export data, no external modules — with cgo
// disabled so the pure-Go views of std packages are used.
//
// Test files are deliberately excluded: the invariants guard production
// code, and tests legitimately fake clocks, names, and locks.
func Load(root string, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}

	// The source importer resolves and type-checks dependencies from
	// source; with cgo off, std packages like net fall back to their
	// pure-Go variants, which is all these analyzers need. One shared
	// importer caches every dependency across the run.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		p, err := loadDir(root, modPath, dir, fset, imp)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// loadDir loads the single package in dir, or nil if dir holds no
// non-test Go files.
func loadDir(root, modPath, dir string, fset *token.FileSet, imp types.Importer) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	path := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}

	p := &Package{Path: path, Dir: dir, Root: root, Fset: fset, Files: files, TPkg: tpkg, Info: info}
	p.parseDirectives()
	return p, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module line", root)
}

// expand resolves patterns to package directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !rec {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
