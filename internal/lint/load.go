package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Load parses and type-checks the non-test Go packages under root that
// match the given patterns ("./pkg" for one directory, "./..." or
// "./pkg/..." for a subtree; testdata, vendor, and hidden directories
// are skipped during expansion). Type-checking uses the stdlib source
// importer — no compiler export data, no external modules — with cgo
// disabled so the pure-Go views of std packages are used.
//
// Test files are deliberately excluded: the invariants guard production
// code, and tests legitimately fake clocks, names, and locks.
//
// Load runs with GOMAXPROCS workers; see LoadParallel for the shape of
// the parallelism and its guarantees.
func Load(root string, patterns ...string) ([]*Package, error) {
	return LoadParallel(root, runtime.GOMAXPROCS(0), patterns...)
}

// LoadParallel is Load with an explicit worker count (minimum 1).
//
// Parsing is embarrassingly parallel over package directories (a
// token.FileSet is safe for concurrent use). Type-checking is
// parallelized over the module-internal dependency DAG: a package is
// checked once every module-internal dependency in the load set has
// been checked, and the resulting *types.Package is served to
// dependents from the loader's own table. The stdlib source importer,
// which is NOT safe for concurrent use, sits behind a mutex and only
// ever sees paths outside that table (std packages, and module paths
// not in the load set) — so external dependencies are checked exactly
// once, serially, while module packages check concurrently against the
// warm cache.
//
// The result is independent of the worker count: packages are returned
// sorted by import path, each was type-checked from the same parsed
// syntax either way, and the analyzers are per-package, so serial and
// parallel runs produce identical findings (pinned by a test).
func LoadParallel(root string, workers int, patterns ...string) ([]*Package, error) {
	if workers < 1 {
		workers = 1
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}

	// The source importer resolves and type-checks dependencies from
	// source; with cgo off, std packages like net fall back to their
	// pure-Go variants, which is all these analyzers need. One shared
	// importer caches every dependency across the run.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement types.ImporterFrom")
	}
	imp := &guardedImporter{src: src, local: map[string]*types.Package{}}

	// Phase 1: parse every requested directory concurrently.
	parsed, err := parseAll(root, modPath, dirs, fset, workers)
	if err != nil {
		return nil, err
	}

	// Phase 2: type-check across the module-internal dependency DAG.
	pkgs, err := checkAll(parsed, fset, imp, workers)
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// guardedImporter serializes the stdlib source importer behind a mutex
// and serves the loader's own checked module packages first, so the
// source importer never sees a path the scheduler owns.
type guardedImporter struct {
	mu    sync.Mutex
	src   types.ImporterFrom
	local map[string]*types.Package
}

func (g *guardedImporter) Import(path string) (*types.Package, error) {
	return g.ImportFrom(path, ".", 0)
}

func (g *guardedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.local[path]; ok {
		return p, nil
	}
	return g.src.ImportFrom(path, dir, mode)
}

// provide publishes a checked module package to dependents.
func (g *guardedImporter) provide(path string, p *types.Package) {
	g.mu.Lock()
	g.local[path] = p
	g.mu.Unlock()
}

// parsedPkg is one directory's syntax, parsed but not yet checked.
type parsedPkg struct {
	root, dir, path string
	files           []*ast.File
	deps            []string // module-internal imports within the load set
}

// parseAll parses dirs with the given parallelism, skipping directories
// with no non-test Go files, and records each package's module-internal
// dependencies on other members of the load set.
func parseAll(root, modPath string, dirs []string, fset *token.FileSet, workers int) ([]*parsedPkg, error) {
	out := make([]*parsedPkg, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = parseDir(root, modPath, dir, fset)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var parsed []*parsedPkg
	inSet := map[string]bool{}
	for _, p := range out {
		if p != nil {
			parsed = append(parsed, p)
			inSet[p.path] = true
		}
	}
	for _, p := range parsed {
		seen := map[string]bool{}
		for _, f := range p.files {
			for _, spec := range f.Imports {
				ipath := strings.Trim(spec.Path.Value, `"`)
				if ipath != p.path && inSet[ipath] && !seen[ipath] {
					seen[ipath] = true
					p.deps = append(p.deps, ipath)
				}
			}
		}
	}
	return parsed, nil
}

// parseDir parses the single package in dir, or nil if dir holds no
// non-test Go files.
func parseDir(root, modPath, dir string, fset *token.FileSet) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	path := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	return &parsedPkg{root: root, dir: dir, path: path, files: files}, nil
}

// checkAll type-checks the parsed packages with the given parallelism,
// scheduling each package after its in-set dependencies.
func checkAll(parsed []*parsedPkg, fset *token.FileSet, imp *guardedImporter, workers int) ([]*Package, error) {
	byPath := make(map[string]*parsedPkg, len(parsed))
	for _, p := range parsed {
		byPath[p.path] = p
	}
	indeg := make(map[string]int, len(parsed))
	dependents := map[string][]string{}
	for _, p := range parsed {
		indeg[p.path] = len(p.deps)
		for _, d := range p.deps {
			dependents[d] = append(dependents[d], p.path)
		}
	}

	ready := make(chan *parsedPkg, len(parsed))
	for _, p := range parsed {
		if indeg[p.path] == 0 {
			ready <- p
		}
	}

	var (
		mu        sync.Mutex
		remaining = len(parsed)
		firstErr  error
		pkgs      []*Package
	)
	done := func(p *parsedPkg, pkg *Package, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		for _, dep := range dependents[p.path] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- byPath[dep]
			}
		}
		remaining--
		if remaining == 0 {
			close(ready)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ready {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					done(p, nil, nil) // drain: keep unblocking dependents
					continue
				}
				pkg, err := checkPkg(p, fset, imp)
				if pkg != nil {
					imp.provide(p.path, pkg.TPkg)
				}
				done(p, pkg, err)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pkgs, nil
}

// checkPkg type-checks one parsed package.
func checkPkg(p *parsedPkg, fset *token.FileSet, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(p.path, fset, p.files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.path, err)
	}

	pkg := &Package{Path: p.path, Dir: p.dir, Root: p.root, Fset: fset, Files: p.files, TPkg: tpkg, Info: info}
	pkg.parseDirectives()
	return pkg, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module line", root)
}

// expand resolves patterns to package directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !rec {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
