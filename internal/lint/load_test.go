package lint

import (
	"reflect"
	"testing"
)

// TestLoadSerialParallelEquality pins the parallel loader's contract:
// the finding set is independent of the worker count. A scheduling bug
// (checking a package before its dependency, racing the source
// importer, dropping a package) would show up as a differing or
// missing diagnostic.
func TestLoadSerialParallelEquality(t *testing.T) {
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "internal/lint/testdata/src/" + f
	}

	serialPkgs, err := LoadParallel("../..", 1, patterns...)
	if err != nil {
		t.Fatalf("serial LoadParallel: %v", err)
	}
	parallelPkgs, err := LoadParallel("../..", 8, patterns...)
	if err != nil {
		t.Fatalf("parallel LoadParallel: %v", err)
	}
	if len(serialPkgs) != len(parallelPkgs) {
		t.Fatalf("serial loaded %d packages, parallel %d", len(serialPkgs), len(parallelPkgs))
	}
	for i := range serialPkgs {
		if serialPkgs[i].Path != parallelPkgs[i].Path {
			t.Errorf("package %d: serial %s, parallel %s", i, serialPkgs[i].Path, parallelPkgs[i].Path)
		}
	}

	serial := Run(serialPkgs, fixtureAnalyzers())
	parallel := Run(parallelPkgs, fixtureAnalyzers())
	if len(serial) == 0 {
		t.Fatal("fixture corpus produced no diagnostics; the comparison proves nothing")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel finding sets differ:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestRunTimedScriptedClock drives RunTimed with a scripted clock:
// every analyzer gets exactly one timing entry, in analyzer order, with
// the delta the script dictates — and the diagnostics are identical to
// Run's, proving timing never perturbs findings.
func TestRunTimedScriptedClock(t *testing.T) {
	pkgs := loadFixtures(t)
	analyzers := fixtureAnalyzers()

	tick := int64(0)
	clock := func() int64 {
		tick += 1000
		return tick
	}
	timed, timings := RunTimed(pkgs, analyzers, clock)

	if len(timings) != len(analyzers) {
		t.Fatalf("got %d timings, want %d", len(timings), len(analyzers))
	}
	for i, tm := range timings {
		if tm.Check != analyzers[i].Name {
			t.Errorf("timing %d is for %q, want %q", i, tm.Check, analyzers[i].Name)
		}
		// The clock advances by 1000 per read and each analyzer is
		// bracketed by exactly two reads.
		if tm.Ns != 1000 {
			t.Errorf("timing %d (%s): Ns = %d, want 1000", i, tm.Check, tm.Ns)
		}
	}

	plain := Run(pkgs, analyzers)
	if !reflect.DeepEqual(timed, plain) {
		t.Errorf("RunTimed diagnostics differ from Run's")
	}
}
