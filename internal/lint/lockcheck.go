package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// LockCheck returns the lockcheck analyzer. A struct field whose doc or
// line comment contains "guarded by <mu>" may only be read or written
// inside functions that lock <mu> (a call to <mu>.Lock or <mu>.RLock
// somewhere in the function — a lexical approximation of "on all
// paths": a function that locks conditionally should be split or carry
// an //acclaim:allow). Mixed atomic/plain field access, which this
// analyzer once flagged as a side heuristic, is now the
// atomicdiscipline analyzer's job.
//
// Scope is the declaring package — the guarded fields of this codebase
// are unexported, so every access site is visible to the analysis.
func LockCheck() *Analyzer {
	return &Analyzer{
		Name: "lockcheck",
		Doc:  "enforce 'guarded by <mu>' field comments",
		Run:  func(p *Package) []Diagnostic { return p.lockcheck() },
	}
}

func (p *Package) lockcheck() []Diagnostic {
	var ds []Diagnostic

	// Pass 1: guarded fields. guard[field] = mutex field object.
	guard := map[types.Object]types.Object{}
	guardName := map[types.Object]string{} // field -> "Struct.field guarded by mu" label parts
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Field name -> object, to resolve the named mutex.
			byName := map[string]types.Object{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					byName[name.Name] = p.Info.Defs[name]
				}
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu, ok := byName[m[1]]
				if !ok || mu == nil {
					ds = append(ds, p.diag("lockcheck", fld.Pos(),
						"'guarded by %s' names no field of %s", m[1], ts.Name.Name))
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guard[obj] = mu
						guardName[obj] = ts.Name.Name + "." + name.Name + " (guarded by " + m[1] + ")"
					}
				}
			}
			return true
		})
	}

	if len(guard) == 0 {
		return ds
	}

	// Pass 2: every field access in the package.
	forEachFunc(p, func(fd *ast.FuncDecl) {
		locked := p.lockedMutexes(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			obj := s.Obj()
			if mu, ok := guard[obj]; ok && !locked[mu] {
				ds = append(ds, p.diag("lockcheck", sel.Sel.Pos(),
					"%s accessed in %s, which never locks it", guardName[obj], fd.Name.Name))
			}
			return true
		})
	})
	return ds
}

// lockedMutexes returns the mutex field objects fd calls .Lock or
// .RLock on.
func (p *Package) lockedMutexes(fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := p.Info.Selections[inner]; s != nil && s.Kind() == types.FieldVal {
			out[s.Obj()] = true
		}
		return true
	})
	return out
}

// forEachFunc visits every function declaration with a body.
func forEachFunc(p *Package, visit func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
