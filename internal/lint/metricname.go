package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRe is the project naming scheme (obs package doc): dotted
// lower_snake segments. Span names additionally allow ':' separators
// ("tune:bcast").
var (
	metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)
	spanNameRe   = regexp.MustCompile(`^[a-z][a-z0-9_.:]*$`)
)

// registrationMethods are the obs.Registry entry points that bind a
// metric name.
var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"Func": true, "HistogramFunc": true,
	"HDR": true, "HDRFunc": true,
}

// MetricName returns the metricname analyzer. At every obs metric
// registration and span start in non-test code it checks that:
//
//   - the name is a compile-time string constant — dynamic names
//     (per-collective gauges) need an //acclaim:allow so a reviewer
//     sees that the runtime segments keep the scheme;
//   - the name matches ^[a-z][a-z0-9_.]*$ (spans may also use ':');
//   - a Registry.Histogram registered with the default bounds — host
//     nanoseconds, DefTimeBuckets — ends in _ns: the golden run-report
//     normalisation keys on exactly that suffix, so a host-time
//     histogram under any other name produces flaky goldens;
//   - no two registration sites in a package bind the same name (the
//     registry's get-or-create would silently share state).
func MetricName() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc:  "obs metric/span names: literal, lower_snake dotted, _ns for host-time histograms, unique",
		Run: func(p *Package) []Diagnostic {
			var ds []Diagnostic
			first := map[string]string{} // name -> first registration position
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					fn := p.funcObj(call)
					if fn == nil || !strings.HasSuffix(pkgPath(fn), "internal/obs") {
						return true
					}
					isReg := registrationMethods[fn.Name()] && func() bool {
						named := recvNamed(fn)
						return named != nil && named.Obj().Name() == "Registry"
					}()
					isSpan := fn.Name() == "StartSpan"
					if !isReg && !isSpan {
						return true
					}

					arg := call.Args[0]
					tv := p.Info.Types[arg]
					if tv.Value == nil || tv.Value.Kind() != constant.String {
						kind := "metric"
						if isSpan {
							kind = "span"
						}
						ds = append(ds, p.diag("metricname", arg.Pos(),
							"%s name is not a constant string; dynamic names need an //acclaim:allow with the runtime scheme spelled out", kind))
						return true
					}
					name := constant.StringVal(tv.Value)
					re := metricNameRe
					if isSpan {
						re = spanNameRe
					}
					if !re.MatchString(name) {
						ds = append(ds, p.diag("metricname", arg.Pos(),
							"name %q does not match %s", name, re))
					}
					if isSpan {
						return true
					}
					if fn.Name() == "Histogram" && len(call.Args) == 1 && !strings.HasSuffix(name, "_ns") {
						ds = append(ds, p.diag("metricname", arg.Pos(),
							"histogram %q uses the default host-nanosecond buckets but does not end in _ns (run-report normalisation keys on the suffix)", name))
					}
					file, line, _ := p.pos(arg.Pos())
					at := file + ":" + strconv.Itoa(line)
					if prev, dup := first[name]; dup {
						ds = append(ds, p.diag("metricname", arg.Pos(),
							"metric %q already registered at %s; registry get-or-create would silently share state", name, prev))
					} else {
						first[name] = at
					}
					return true
				})
			}
			return ds
		},
	}
}
