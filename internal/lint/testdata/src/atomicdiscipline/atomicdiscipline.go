// Package atomicdiscipline is the golden fixture for the
// atomicdiscipline analyzer: half-atomic fields, atomic-bearing
// copies, post-publish mutation, and suppression.
package atomicdiscipline

import "sync/atomic"

type gauge struct {
	hits int64
	cold int64
}

func (g *gauge) hit() {
	atomic.AddInt64(&g.hits, 1)
}

func (g *gauge) torn() int64 {
	return g.hits // want `field hits is accessed via sync/atomic elsewhere in this package; plain access here can tear`
}

// plain reads a field nothing touches atomically: clean.
func (g *gauge) plain() int64 {
	return g.cold
}

type stats struct {
	n atomic.Uint64
}

func fork(s *stats) stats {
	return *s // want `copies stats, which contains sync/atomic state; use a pointer`
}

func read(s *stats) uint64 {
	v := s.n // want `copies atomic value of type sync/atomic\.Uint64; use its Load method`
	return v.Load()
}

func (s stats) bad() uint64 { // want `method bad has a by-value receiver of atomic-bearing type stats; use a pointer receiver`
	return s.n.Load()
}

func total() uint64 {
	var arr [4]stats
	var t uint64
	for _, s := range arr { // want `range copies elements of atomic-bearing type stats; range over indices and take addresses`
		t += s.n.Load()
	}
	return t
}

// share hands out a pointer, not a copy: clean.
func share(s *stats) *stats {
	return s
}

type cfg struct {
	size int
}

var cur atomic.Pointer[cfg]

func swapIn(n *cfg) {
	old := cur.Swap(n)
	if old != nil {
		old.size = 0 // want `writes through a value obtained from atomic\.Pointer\.Swap; published snapshots are read-only` `\[frozen\] write to interior of frozen type cfg \(published through atomic.Pointer\)`
	}
}

// size only reads the published snapshot: clean.
func size() int {
	c := cur.Load()
	if c == nil {
		return 0
	}
	return c.size
}

// recycle reuses a swapped-out cfg once every reader has drained — a
// pattern only the test pool is allowed.
//
//acclaim:allow atomicdiscipline recycled after reader drain in tests
//acclaim:allow frozen recycled after reader drain in tests
func recycle(n *cfg) {
	old := cur.Swap(n)
	if old != nil {
		old.size = 0
	}
}
