// Package determinism is the golden fixture for the determinism
// analyzer: every `want` comment is a diagnostic the analyzer must
// produce on that line, and lines without one must stay silent.
package determinism

import (
	cryptorand "crypto/rand"
	mrand "math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

func clocks() (int64, time.Duration) {
	t0 := time.Now()          // want `call to time\.Now in deterministic tuning package`
	d := time.Since(t0)       // want `call to time\.Since`
	_ = time.Until(t0.Add(d)) // want `call to time\.Until`
	return t0.UnixNano(), d
}

// startupStamp's read never reaches tuned output, so a scoped allow
// with a reason keeps it silent.
//
//acclaim:allow determinism log timestamp, never feeds tuned output
func startupStamp() time.Time {
	return time.Now()
}

func draws(r *mrand.Rand, buf []byte) (int, uint64) {
	a := mrand.Intn(10)  // want `call to global math/rand\.Intn draws from the unseeded shared source`
	b := randv2.Uint64() // want `call to global math/rand/v2\.Uint64`
	a += r.Intn(10)      // seeded *rand.Rand: fine
	seeded := mrand.New(mrand.NewSource(42))
	_, _ = cryptorand.Read(buf) // want `crypto/rand is nondeterministic by design`
	return a + seeded.Intn(3), b
}

func leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration appends to out, which is never sorted in leak`
	}
	return out
}

func sortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func allowedLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		//acclaim:allow determinism feeds an unordered membership set downstream
		out = append(out, k)
	}
	return out
}
