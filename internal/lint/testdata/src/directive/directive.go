// Package directive is the golden fixture for directive hygiene:
// malformed acclaim directives are findings in their own right, under
// the pseudo-check "directive".
package directive

//acclaim:zeroalloc on a var is meaningless // want `//acclaim:zeroalloc must be in a function's doc comment`
var counter int

func touch() {
	counter++
}

//acclaim:allow speling some reason // want `//acclaim:allow names unknown check "speling"`
func unknownCheck() {
	touch()
}

func missingReason() {
	// want `//acclaim:allow determinism needs a reason`
	//acclaim:allow determinism
	touch()
}

//acclaim:allow lockcheck documented reason, so this one is hygienic
func wellFormed() {
	touch()
}
