// Package frozen is the golden fixture for the frozen analyzer:
// post-construction writes, interior aliases and escapes, constructor
// closures, atomic.Pointer auto-freezing, and suppression.
package frozen

import "sync/atomic"

// box is deep-immutable after construction.
//
//acclaim:frozen
type box struct {
	n     int
	items []int
}

// newBox is box's constructor; writes here and in its private helpers
// belong to the constructor closure.
func newBox(n int) *box {
	b := &box{n: n}
	fill(b)
	return b
}

// fill is unexported and called only from newBox, so it joins the
// closure: these writes are clean.
func fill(b *box) {
	b.items = append(b.items, b.n)
}

func (b *box) poke() {
	b.n = 42 // want `write to interior of frozen type box \(annotated //acclaim:frozen\) outside its constructor closure`
}

func (b *box) aliasWrite() {
	it := b.items
	it[0] = 9 // want `write to interior of frozen type box \(annotated //acclaim:frozen\) outside its constructor closure`
}

func (b *box) leakSlice() []int {
	return b.items // want `returns reference into box interior \(annotated //acclaim:frozen\); frozen interior must not escape`
}

func (b *box) leakAddr(sink chan *int) {
	sink <- &b.n // want `&-alias of box interior \(annotated //acclaim:frozen\) is sent on a channel; frozen interior must not escape`
}

func steal(p *int) { *p = 0 }

func (b *box) leakArg() {
	steal(&b.n) // want `&-alias of box interior \(annotated //acclaim:frozen\) is passed to a call; frozen interior must not escape`
}

// peek binds an interior alias to a local and only reads it: clean.
func (b *box) peek() int {
	it := b.items
	return it[0]
}

// copyMutate writes a value copy, not the shared object: clean.
func (b *box) copyMutate() int {
	c := *b
	c.n = 1
	return c.n
}

// reset runs in test teardown, after every reader is gone.
//
//acclaim:allow frozen test-only reset, no readers at teardown
func (b *box) reset() {
	b.n = 0
}

// snap carries no annotation: publishing it through the atomic.Pointer
// below is what freezes it.
type snap struct {
	total atomic.Uint64
	size  int
}

var cur atomic.Pointer[snap]

func publish(size int) {
	cur.Store(&snap{size: size})
}

func bump() {
	sn := cur.Load()
	sn.total.Add(1) // interior mutability via sync/atomic methods: clean
	sn.size++       // want `write to interior of frozen type snap \(published through atomic.Pointer\) outside its constructor closure` `\[atomicdiscipline\] writes through a value obtained from atomic\.Pointer\.Load`
}

// want `\[directive\] //acclaim:frozen must be in a type declaration's doc or line comment`
//acclaim:frozen

var sizes = []int{1, 2, 4}
