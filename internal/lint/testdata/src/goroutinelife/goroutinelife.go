// Package goroutinelife is the golden fixture for the goroutinelife
// analyzer: leaking spawns, time.Tick loops, bounded workers, owner
// annotations, and suppression.
package goroutinelife

import (
	"sync"
	"time"
)

func work() {}

func spin() {
	for {
		work()
	}
}

func leak() {
	go spin() // want `goroutine spin has no termination edge \(no channel receive, no WaitGroup Done matched by a Wait here\); annotate //acclaim:goroutine-owner <shutdown path>`
}

func leakLit() {
	go func() { // want `goroutine function literal has no termination edge`
		for {
			work()
		}
	}()
}

func tickLoop(every time.Duration) {
	for range time.Tick(every) {
		work()
	}
}

func leakTick(every time.Duration) {
	go tickLoop(every) // want `goroutine tickLoop receives only from time\.Tick, which never stops and leaks its ticker; use time\.NewTicker with a done-channel select`
}

func launch(f func()) {
	go f() // want `go statement spawns a callee the analyzer cannot resolve; annotate //acclaim:goroutine-owner <shutdown path>`
}

// workers is the classic bounded fan-out: every spawn calls Done on a
// WaitGroup this function Waits on. Clean.
func workers(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// drain parks its goroutine on a channel the caller closes: clean.
func drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// stopper parks on a done channel inside a select: clean.
func stopper(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// daemon spins for the whole process lifetime, and its doc comment
// names the owner, covering every spawn in the body.
//
//acclaim:goroutine-owner stopped only at process exit, by design
func daemon() {
	go spin()
}

func daemonInline() {
	//acclaim:goroutine-owner reaped by the test harness after each case
	go spin()
}

func suppressed() {
	//acclaim:allow goroutinelife fixture exercising suppression
	go spin()
}

// want `\[directive\] //acclaim:goroutine-owner needs the shutdown path spelled out`
//acclaim:goroutine-owner

var tick = time.Second
