// Package lockcheck is the golden fixture for the lockcheck analyzer:
// guarded-field comments, unlocked access, and a guard comment naming a
// non-existent mutex. (Half-atomic fields moved to the
// atomicdiscipline fixture when that analyzer took the check over.)
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	state int // want `'guarded by missing' names no field of counter` -- guarded by missing
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) peek() int {
	return c.n // want `counter\.n \(guarded by mu\) accessed in peek, which never locks it`
}

// snapshot runs before any goroutine exists, so the unlocked read is
// suppressed with a reason.
//
//acclaim:allow lockcheck construction-time read, no concurrent writers yet
func (c *counter) snapshot() int {
	return c.n
}

type table struct {
	mu   sync.RWMutex
	rows []string // guarded by mu
}

func (t *table) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

func (t *table) first() string {
	return t.rows[0] // want `table\.rows \(guarded by mu\) accessed in first, which never locks it`
}
