// Package lockcheck is the golden fixture for the lockcheck analyzer:
// guarded-field comments, unlocked access, half-atomic fields, and a
// guard comment naming a non-existent mutex.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	hits int64 // accessed via sync/atomic only

	state int // want `'guarded by missing' names no field of counter` -- guarded by missing
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) peek() int {
	return c.n // want `counter\.n \(guarded by mu\) accessed in peek, which never locks it`
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) torn() int64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere in this package; plain access here can tear`
}

// snapshot runs before any goroutine exists, so the unlocked read is
// suppressed with a reason.
//
//acclaim:allow lockcheck construction-time read, no concurrent writers yet
func (c *counter) snapshot() int {
	return c.n
}

type table struct {
	mu   sync.RWMutex
	rows []string // guarded by mu
}

func (t *table) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

func (t *table) first() string {
	return t.rows[0] // want `table\.rows \(guarded by mu\) accessed in first, which never locks it`
}
