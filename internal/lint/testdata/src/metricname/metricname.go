// Package metricname is the golden fixture for the metricname
// analyzer: literal lower_snake dotted names, the _ns suffix rule for
// default-bucket histograms, per-package uniqueness, and the
// constant-name requirement.
package metricname

import "acclaim/internal/obs"

func register(reg *obs.Registry, rec obs.Recorder, dyn string) {
	reg.Counter("fixture.lookups_total")
	reg.Counter("Fixture.Bad")                   // want `name "Fixture\.Bad" does not match`
	reg.Histogram("fixture.fit")                 // want `histogram "fixture\.fit" uses the default host-nanosecond buckets but does not end in _ns`
	reg.Histogram("fixture.fit_ns")              // default buckets with _ns: fine
	reg.Histogram("fixture.size_bytes", 1, 2, 4) // explicit bounds: fine
	reg.Gauge("fixture.lookups_total")           // want `metric "fixture\.lookups_total" already registered at`
	reg.Counter(dyn)                             // want `metric name is not a constant string`
	reg.HDR("fixture.Lat.NS")                    // want `name "fixture\.Lat\.NS" does not match`
	reg.HDRFunc("fixture.lat_ns", nil)
	reg.HDRFunc("fixture.lat_ns", nil) // want `metric "fixture\.lat_ns" already registered at`

	id := rec.StartSpan("tune:bcast", obs.NoSpan)
	rec.EndSpan(id)
	rec.EndSpan(rec.StartSpan("Tune Bcast", obs.NoSpan)) // want `name "Tune Bcast" does not match`
}

// perCollective builds one gauge per collective at setup time; the
// runtime segments keep the scheme, which the allow records.
//
//acclaim:allow metricname per-collective gauge: tuner.<coll>.cum_variance, segments are lower_snake
func perCollective(reg *obs.Registry, coll string) *obs.Gauge {
	return reg.Gauge("tuner." + coll + ".cum_variance")
}
