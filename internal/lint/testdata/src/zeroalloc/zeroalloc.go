// Package zeroalloc is the golden fixture for the zeroalloc analyzer:
// only functions annotated //acclaim:zeroalloc are scanned, and each
// `want` comment is a required diagnostic.
package zeroalloc

import "fmt"

type pair struct{ a, b int }

func sink(v any) { _ = v }

//acclaim:zeroalloc
func builtins(n int) []int {
	s := make([]int, n) // want `make allocates in zeroalloc function builtins`
	p := new(int)       // want `new allocates in zeroalloc function builtins`
	s = append(s, *p)   // want `append allocates in zeroalloc function builtins`
	v := pair{a: n}     // want `composite literal allocates in zeroalloc function builtins`
	fmt.Println(v)      // want `call to fmt\.Println allocates in zeroalloc function builtins`
	return s
}

//acclaim:zeroalloc
func concat(parts []string) string {
	var s, t string
	for _, p := range parts {
		s += p        // want `string \+= in a loop allocates`
		t = t + "sep" // want `string concatenation in a loop allocates`
	}
	return s + t // outside any loop: fine
}

//acclaim:zeroalloc
func closure(n int) func() int {
	return func() int { return n } // want `closure captures n and is heap-allocated`
}

//acclaim:zeroalloc
func boxing(x int, p *int, bs []byte) (any, string) {
	sink(x)         // want `argument boxes int into interface parameter`
	sink(p)         // pointer-shaped: boxes without allocating
	i := any(x)     // want `conversion boxes int into an interface`
	s := string(bs) // want `conversion between string and byte/rune slice allocates`
	return i, s
}

//acclaim:zeroalloc
func clean(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// allowedAppend's append always hits preallocated capacity in its one
// call site, so the site is suppressed with a reason.
//
//acclaim:allow zeroalloc amortised: caller preallocates full capacity
//acclaim:zeroalloc
func allowedAppend(dst []int, x int) []int {
	return append(dst, x)
}

func unannotated(n int) []int {
	return make([]int, n) // not annotated: analyzer must stay silent
}
