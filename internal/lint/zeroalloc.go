package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroAlloc returns the zeroalloc analyzer. Functions annotated
// `//acclaim:zeroalloc` in their doc comment — the hot paths whose
// runtime testing.AllocsPerRun gates pin at zero allocations — are
// rejected if they contain a *syntactic* allocation site:
//
//   - make / new / append calls and composite literals;
//   - any call into fmt (formatting always allocates);
//   - string concatenation inside a loop, and []byte/[]rune <-> string
//     conversions;
//   - function literals that capture variables (captured closures are
//     heap-allocated);
//   - arguments whose concrete, non-pointer-shaped type is boxed into
//     an interface parameter.
//
// The check is deliberately syntactic, not an escape analysis: it can
// be wrong in both directions on clever code, but on the annotated hot
// paths a flagged site is a review conversation worth having, and a
// genuinely safe one carries an //acclaim:allow with its reason.
func ZeroAlloc() *Analyzer {
	return &Analyzer{
		Name: "zeroalloc",
		Doc:  "forbid syntactic allocation sites in //acclaim:zeroalloc functions",
		Run: func(p *Package) []Diagnostic {
			var ds []Diagnostic
			for _, fd := range p.ZeroAllocFuncs() {
				if fd.Body != nil {
					ds = append(ds, p.allocSites(fd)...)
				}
			}
			return ds
		},
	}
}

// allocSites walks one annotated function body.
func (p *Package) allocSites(fd *ast.FuncDecl) []Diagnostic {
	var ds []Diagnostic
	flag := func(at token.Pos, format string, args ...any) {
		ds = append(ds, p.diag("zeroalloc", at, format, args...))
	}

	// Loop extents, for the string-concat-in-loop rule.
	var loops [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(at token.Pos) bool {
		for _, l := range loops {
			if at >= l[0] && at <= l[1] {
				return true
			}
		}
		return false
	}
	isString := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			flag(n.Pos(), "composite literal allocates in zeroalloc function %s", fd.Name.Name)

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(n.X) && inLoop(n.Pos()) {
				flag(n.Pos(), "string concatenation in a loop allocates in zeroalloc function %s", fd.Name.Name)
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(n.Lhs[0]) && inLoop(n.Pos()) {
				flag(n.Pos(), "string += in a loop allocates in zeroalloc function %s", fd.Name.Name)
			}

		case *ast.FuncLit:
			if caps := p.captures(n); len(caps) > 0 {
				flag(n.Pos(), "closure captures %s and is heap-allocated in zeroalloc function %s", caps[0], fd.Name.Name)
			}

		case *ast.CallExpr:
			p.checkZeroAllocCall(fd, n, flag)
		}
		return true
	})
	return ds
}

// checkZeroAllocCall flags allocating builtins, fmt calls, allocating
// conversions, and interface-boxing arguments of one call.
func (p *Package) checkZeroAllocCall(fd *ast.FuncDecl, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				flag(call.Pos(), "%s allocates in zeroalloc function %s", b.Name(), fd.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, p.Info.TypeOf(call.Args[0])
		if to != nil && from != nil {
			if types.IsInterface(to) && !types.IsInterface(from) && !pointerShaped(from) {
				flag(call.Pos(), "conversion boxes %s into an interface in zeroalloc function %s", from, fd.Name.Name)
			}
			if allocatingConversion(to, from) {
				flag(call.Pos(), "conversion between string and byte/rune slice allocates in zeroalloc function %s", fd.Name.Name)
			}
		}
		return
	}

	if fn := p.funcObj(call); fn != nil && pkgPath(fn) == "fmt" {
		flag(call.Pos(), "call to fmt.%s allocates in zeroalloc function %s", fn.Name(), fd.Name.Name)
		return
	}

	// Interface boxing at argument positions.
	sig, ok := typeOfFun(p, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		flag(arg.Pos(), "argument boxes %s into interface parameter in zeroalloc function %s", at, fd.Name.Name)
	}
}

// typeOfFun returns the signature of a (non-conversion, non-builtin)
// call expression.
func typeOfFun(p *Package, call *ast.CallExpr) (*types.Signature, bool) {
	t := p.Info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// pointerShaped reports whether values of t fit in a pointer word and
// box into an interface without a heap allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// allocatingConversion reports string <-> []byte / []rune conversions.
func allocatingConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isStringType(from) && isByteOrRuneSlice(to))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// captures returns the names of variables a function literal captures
// from an enclosing scope (package-level variables excluded: they are
// not closed over).
func (p *Package) captures(lit *ast.FuncLit) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == p.TPkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
