package loadgen_test

import (
	"math/rand"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/loadgen"
	"acclaim/internal/ruleserver"
)

// BenchmarkWireVsHTTPThroughput is the acceptance benchmark for the
// binary protocol: the same query stream driven through HTTPTarget
// (one JSON request-response per query over a keep-alive loopback
// connection) and through a batched TCPTarget (64 queries per frame
// over the wire protocol). Both sides run a fixed inner loop and the
// ratio of each side's best time across outer iterations is reported
// as wire_speedup — best-of interleaved A/B, same shape as
// BenchmarkRuleServerSpeedup. CI floors wire_speedup at 5.
func BenchmarkWireVsHTTPThroughput(b *testing.B) {
	srv, err := ruleserver.NewFromFile(loadgenFixtureFile())
	if err != nil {
		b.Fatal(err)
	}
	hts := httptest.NewServer(ruleserver.SelectHandler(srv))
	defer hts.Close()

	reg := ruleserver.NewRegistry()
	keys := wireTenants(1)
	if err := reg.Swap(keys[0], loadgenFixtureFile()); err != nil {
		b.Fatal(err)
	}
	ws := ruleserver.NewWireServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	//acclaim:goroutine-owner bench wire acceptor; Serve returns when ln is closed
	go ws.Serve(ln)

	httpTgt := loadgen.HTTPTarget{URL: hts.URL}
	tcpTgt, err := loadgen.NewTCPTarget(ln.Addr().String(), keys, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer tcpTgt.Close()

	// Fixed log-uniform workload, all on the covered bcast table so
	// both sides do identical rule-table work.
	const batch = 64
	const inner = 1024 // queries per side per outer iteration
	rng := rand.New(rand.NewSource(99))
	qs := make([]loadgen.Query, inner)
	for i := range qs {
		qs[i] = loadgen.Query{
			Coll:  coll.Bcast,
			Nodes: 2 << uint(rng.Intn(6)),
			PPN:   1 + rng.Intn(16),
			Msg:   1 << uint(rng.Intn(20)),
		}
	}
	res := make([]loadgen.Result, batch)

	// Warm both paths: HTTP keep-alive connections and the wire
	// connection's algorithm dictionary.
	if _, ok, err := httpTgt.Select(qs[0]); err != nil || !ok {
		b.Fatalf("http warmup: ok=%v err=%v", ok, err)
	}
	if err := tcpTgt.SelectBatch(qs[:batch], res); err != nil {
		b.Fatal(err)
	}

	bestHTTP := time.Duration(1<<63 - 1)
	bestWire := bestHTTP
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for j := 0; j < inner; j++ {
			if _, ok, err := httpTgt.Select(qs[j]); err != nil || !ok {
				b.Fatalf("http query %d: ok=%v err=%v", j, ok, err)
			}
		}
		if d := time.Since(t0); d < bestHTTP {
			bestHTTP = d
		}
		t0 = time.Now()
		for j := 0; j < inner; j += batch {
			if err := tcpTgt.SelectBatch(qs[j:j+batch], res); err != nil {
				b.Fatal(err)
			}
		}
		if d := time.Since(t0); d < bestWire {
			bestWire = d
		}
	}
	b.ReportMetric(float64(bestHTTP)/float64(bestWire), "wire_speedup")
	b.ReportMetric(float64(inner)/bestWire.Seconds(), "wire_qps")
	b.ReportMetric(float64(inner)/bestHTTP.Seconds(), "http_qps")
}
