package loadgen

import (
	"runtime"
	"time"

	"acclaim/internal/obs"
)

// Clock is the time source a load-generation worker runs against.
// Production workers use the host monotonic clock (RealClock); tests
// inject scripted clocks so both drivers produce byte-identical
// reports regardless of goroutine interleaving. Each worker gets its
// own Clock instance (Config.Clock is a per-worker factory), so
// implementations need not be safe for concurrent use.
type Clock interface {
	// Now returns nanoseconds since an arbitrary fixed epoch.
	Now() int64
	// WaitUntil blocks until Now() >= t. Scheduled times already in
	// the past return immediately — that is what lets the open-loop
	// driver fall behind its schedule instead of silently stretching
	// it (the coordinated-omission failure mode).
	WaitUntil(t int64)
}

// realClock reads the obs monotonic clock. WaitUntil sleeps only the
// bulk of gaps comfortably above the scheduler's wakeup jitter and
// yield-spins the rest: a late arrival is charged to the latency
// distribution by the coordinated-omission accounting, so sleep
// overshoot at high offered rates would otherwise read as phantom
// server latency. Burning a core to hold the schedule is the standard
// load-generator trade.
type realClock struct{}

func (realClock) Now() int64 { return obs.NowNs() }

func (realClock) WaitUntil(t int64) {
	for {
		d := t - obs.NowNs()
		if d <= 0 {
			return
		}
		if d > int64(2*time.Millisecond) {
			time.Sleep(time.Duration(d - int64(time.Millisecond)))
			continue
		}
		runtime.Gosched()
	}
}

// RealClock returns the host-monotonic Clock used outside tests.
func RealClock() Clock { return realClock{} }
