// Package loadgen is the SLO measurement harness for the serving path:
// it fires mixed (collective, nodes, ppn, message-size) selection
// queries at a rule server — in-process, or over the /v1/select HTTP
// API — and reports exact-within-bucket-resolution latency quantiles
// and throughput as an acclaim.load_report/v1 JSON document.
//
// Two drivers are provided. The closed-loop driver has each worker
// issue its next request the moment the previous one completes — it
// measures service capacity (max sustainable throughput). The
// open-loop driver schedules arrivals from a deterministic-seed
// Poisson process at a configured offered rate and measures each
// latency from the request's *scheduled* arrival time, not its
// dispatch time — the coordinated-omission correction: when the target
// stalls, queued requests charge their wait to the latency
// distribution instead of silently stretching the schedule. Sweep runs
// the open-loop driver across a ladder of offered rates to trace the
// saturation curve.
//
// Every worker owns its clock (injectable), its RNG (Seed + worker
// index), and its per-collective HDR histograms, so a run under
// scripted clocks is byte-identical regardless of goroutine
// interleaving — the property the determinism tests pin.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
)

// Mode selects the driver.
type Mode int

const (
	// Closed issues each worker's next request when the previous one
	// completes.
	Closed Mode = iota
	// Open fires requests on a Poisson schedule at Config.RateQPS,
	// measuring latency from scheduled arrival (coordinated-omission
	// corrected).
	Open
)

func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// ParseMode parses "closed" or "open".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "closed":
		return Closed, nil
	case "open":
		return Open, nil
	}
	return 0, fmt.Errorf("loadgen: unknown mode %q (want closed or open)", s)
}

// Tenant skew distributions for multi-tenant mixes.
const (
	SkewUniform = "uniform"
	SkewZipf    = "zipf"
)

// Mix is the query distribution: collective, node count, and ppn are
// drawn uniformly from the listed values; message size is log-uniform
// over powers of two in [1, 2^MsgExpMax] — the grid shape the tuner
// itself explores, so the harness exercises every rule-table level.
// When Tenants > 1 each query also draws a tenant index, uniformly or
// Zipf-skewed (real fleets concentrate load on a few hot clusters);
// single-tenant mixes draw nothing extra, so their RNG streams — and
// therefore scripted-clock reports — are byte-identical to before the
// tenant dimension existed.
type Mix struct {
	Collectives []coll.Collective
	Nodes       []int
	PPN         []int
	MsgExpMax   int

	Tenants    int     // tenant universe size; <= 1 means single-tenant
	TenantSkew string  // "uniform" (default) or "zipf"; only with Tenants > 1
	ZipfS      float64 // zipf exponent; <= 1 means the 1.2 default
}

func (m Mix) validate() error {
	if len(m.Collectives) == 0 || len(m.Nodes) == 0 || len(m.PPN) == 0 {
		return errors.New("loadgen: Mix needs at least one collective, node count, and ppn")
	}
	for _, c := range m.Collectives {
		if c < 0 || int(c) >= coll.NumCollectives {
			return fmt.Errorf("loadgen: Mix has invalid collective %d", int(c))
		}
	}
	if m.MsgExpMax < 0 || m.MsgExpMax > 30 {
		return fmt.Errorf("loadgen: Mix.MsgExpMax %d out of range [0,30]", m.MsgExpMax)
	}
	switch m.TenantSkew {
	case "", SkewUniform, SkewZipf:
	default:
		return fmt.Errorf("loadgen: Mix.TenantSkew %q (want uniform or zipf)", m.TenantSkew)
	}
	return nil
}

// tenantCount normalizes the tenant universe size.
func (m Mix) tenantCount() int {
	if m.Tenants > 1 {
		return m.Tenants
	}
	return 1
}

// tenantDrawer returns the per-worker tenant index generator, or nil
// for single-tenant mixes (which must not consume RNG draws, to keep
// existing scripted-clock reports byte-identical).
func (m Mix) tenantDrawer(rng *rand.Rand) func() int {
	if m.Tenants <= 1 {
		return nil
	}
	if m.TenantSkew == SkewZipf {
		s := m.ZipfS
		if s <= 1 {
			s = 1.2
		}
		z := rand.NewZipf(rng, s, 1, uint64(m.Tenants-1))
		return func() int { return int(z.Uint64()) }
	}
	n := m.Tenants
	return func() int { return rng.Intn(n) }
}

// query draws one query from the mix. drawTenant is nil for
// single-tenant mixes; when set it is consumed after the shape fields,
// so the shape stream matches the single-tenant draw order.
func (m Mix) query(rng *rand.Rand, drawTenant func() int) Query {
	q := Query{
		Coll:  m.Collectives[rng.Intn(len(m.Collectives))],
		Nodes: m.Nodes[rng.Intn(len(m.Nodes))],
		PPN:   m.PPN[rng.Intn(len(m.PPN))],
		Msg:   1 << uint(rng.Intn(m.MsgExpMax+1)),
	}
	if drawTenant != nil {
		q.Tenant = drawTenant()
	}
	return q
}

// Config parameterizes one Run.
type Config struct {
	Target   Target
	Mix      Mix
	Mode     Mode
	Workers  int     // concurrent workers; <= 0 means 1
	Requests int     // total requests across workers (required)
	RateQPS  float64 // open mode: total offered rate across workers
	Seed     int64   // RNG seed; worker i uses Seed + i
	Batch    int     // queries per transport round trip; <= 1 means one (Target.Select); > 1 needs a BatchTarget

	// Clock builds worker i's clock; nil means RealClock for every
	// worker. Tests inject scripted clocks here.
	Clock func(worker int) Clock

	// Registry, when non-nil, receives live loadgen.* metrics
	// (requests/errors/misses counters and the latency HDR recorder).
	Registry *obs.Registry
}

// workerResult is one worker's private accumulation — no sharing, no
// locks; merged in worker-index order after the WaitGroup, so the
// report is independent of scheduling.
type workerResult struct {
	hist       [coll.NumCollectives]obs.HDRHistogram
	requests   [coll.NumCollectives]uint64 // completed (non-error) requests
	misses     [coll.NumCollectives]uint64
	tenantReq  []uint64 // per-tenant completed requests (nil for single-tenant mixes)
	tenantMiss []uint64
	errors     uint64
	startNs    int64
	endNs      int64
}

// regMetrics is the optional live-registry wiring, shared by workers
// (the obs types are concurrency-safe); all fields nil-safe via guards
// in the worker loop.
//
//acclaim:frozen
type regMetrics struct {
	requests *obs.Counter
	errs     *obs.Counter
	misses   *obs.Counter
	lat      *obs.HDRRecorder
}

func newRegMetrics(reg *obs.Registry) regMetrics {
	if reg == nil {
		return regMetrics{}
	}
	reg.Describe("loadgen.requests_total", "selection queries issued by the load generator")
	reg.Describe("loadgen.errors_total", "queries that failed with a transport or server error")
	reg.Describe("loadgen.misses_total", "queries no rule covered (valid answers, tracked separately)")
	reg.Describe("loadgen.latency_ns", "per-query latency; open-loop runs measure from scheduled arrival")
	return regMetrics{
		requests: reg.Counter("loadgen.requests_total"),
		errs:     reg.Counter("loadgen.errors_total"),
		misses:   reg.Counter("loadgen.misses_total"),
		lat:      reg.HDR("loadgen.latency_ns"),
	}
}

// Run executes one load-generation run and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.Target == nil {
		return nil, errors.New("loadgen: Config.Target is required")
	}
	if cfg.Requests <= 0 {
		return nil, errors.New("loadgen: Config.Requests must be > 0")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Requests {
		cfg.Workers = cfg.Requests
	}
	if cfg.Mode == Open && cfg.RateQPS <= 0 {
		return nil, errors.New("loadgen: open-loop mode needs RateQPS > 0")
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	var batchTarget BatchTarget
	if cfg.Batch > 1 {
		bt, ok := cfg.Target.(BatchTarget)
		if !ok {
			return nil, fmt.Errorf("loadgen: Batch=%d but target %s cannot batch", cfg.Batch, cfg.Target.Name())
		}
		batchTarget = bt
	}
	newClock := cfg.Clock
	if newClock == nil {
		newClock = func(int) Clock { return RealClock() }
	}
	rm := newRegMetrics(cfg.Registry)

	results := make([]workerResult, cfg.Workers)
	base, extra := cfg.Requests/cfg.Workers, cfg.Requests%cfg.Workers
	rateW := cfg.RateQPS / float64(cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		n := base
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			if batchTarget != nil {
				runBatchWorker(&results[i], cfg, batchTarget, i, n, rateW, newClock(i), rm)
			} else {
				runWorker(&results[i], cfg, i, n, rateW, newClock(i), rm)
			}
		}(i, n)
	}
	wg.Wait()
	return buildReport(cfg, results), nil
}

// runWorker is one driver loop. In open mode the next arrival is
// scheduled before dispatch and latency is completion minus *schedule*
// — a stalled target accumulates queueing delay in the distribution
// rather than slowing the arrival process (coordinated-omission
// correction). WaitUntil on a past deadline returns immediately, so a
// saturated worker fires as fast as it can while the debt is charged
// to every queued request.
func runWorker(res *workerResult, cfg Config, id, n int, rateW float64, clk Clock, rm regMetrics) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	drawTenant := cfg.Mix.tenantDrawer(rng)
	res.initTenants(cfg.Mix)
	res.startNs = clk.Now()
	next := res.startNs
	for j := 0; j < n; j++ {
		q := cfg.Mix.query(rng, drawTenant)
		var sched int64
		if cfg.Mode == Open {
			next += int64(rng.ExpFloat64() / rateW * 1e9)
			clk.WaitUntil(next)
			sched = next
		} else {
			sched = clk.Now()
		}
		_, ok, err := cfg.Target.Select(q)
		done := clk.Now()
		if rm.requests != nil {
			rm.requests.Inc()
		}
		if err != nil {
			res.errors++
			if rm.errs != nil {
				rm.errs.Inc()
			}
			continue
		}
		res.observe(q, ok, done-sched, sched, rm)
	}
	res.endNs = clk.Now()
}

// runBatchWorker is the batched driver loop: it draws cfg.Batch
// queries, fires them as one SelectBatch round trip, and charges every
// query in the batch the batch's latency (each rode the same wire
// round trip). In open mode a batch is one coalesced arrival of k
// queries: the interarrival draw uses rate rateW/k so the offered
// query rate matches the unbatched driver's.
func runBatchWorker(res *workerResult, cfg Config, bt BatchTarget, id, n int, rateW float64, clk Clock, rm regMetrics) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	drawTenant := cfg.Mix.tenantDrawer(rng)
	res.initTenants(cfg.Mix)
	qs := make([]Query, cfg.Batch)
	rs := make([]Result, cfg.Batch)
	res.startNs = clk.Now()
	next := res.startNs
	for done := 0; done < n; {
		k := cfg.Batch
		if n-done < k {
			k = n - done
		}
		done += k
		for i := 0; i < k; i++ {
			qs[i] = cfg.Mix.query(rng, drawTenant)
		}
		var sched int64
		if cfg.Mode == Open {
			next += int64(rng.ExpFloat64() / (rateW / float64(k)) * 1e9)
			clk.WaitUntil(next)
			sched = next
		} else {
			sched = clk.Now()
		}
		err := bt.SelectBatch(qs[:k], rs[:k])
		end := clk.Now()
		if rm.requests != nil {
			rm.requests.Add(uint64(k))
		}
		if err != nil {
			res.errors += uint64(k)
			if rm.errs != nil {
				rm.errs.Add(uint64(k))
			}
			continue
		}
		lat := end - sched
		for i := 0; i < k; i++ {
			res.observe(qs[i], rs[i].OK, lat, sched, rm)
		}
	}
	res.endNs = clk.Now()
}

// initTenants sizes the per-tenant counters for multi-tenant mixes.
func (res *workerResult) initTenants(m Mix) {
	if m.Tenants > 1 {
		res.tenantReq = make([]uint64, m.Tenants)
		res.tenantMiss = make([]uint64, m.Tenants)
	}
}

// observe records one completed (non-error) query.
func (res *workerResult) observe(q Query, ok bool, lat, sched int64, rm regMetrics) {
	s := int(q.Coll)
	res.requests[s]++
	if res.tenantReq != nil {
		res.tenantReq[q.Tenant]++
	}
	if !ok {
		res.misses[s]++
		if res.tenantMiss != nil {
			res.tenantMiss[q.Tenant]++
		}
		if rm.misses != nil {
			rm.misses.Inc()
		}
	}
	res.hist[s].ObserveNs(lat)
	rm.lat.Record(sched, lat)
}

// buildReport merges worker results in index order.
func buildReport(cfg Config, results []workerResult) *Report {
	var perColl [coll.NumCollectives]obs.HDRSnapshot
	var reqs, miss [coll.NumCollectives]uint64
	var errs uint64
	minStart, maxEnd := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range results {
		r := &results[i]
		errs += r.errors
		if r.startNs < minStart {
			minStart = r.startNs
		}
		if r.endNs > maxEnd {
			maxEnd = r.endNs
		}
		for c := 0; c < coll.NumCollectives; c++ {
			reqs[c] += r.requests[c]
			miss[c] += r.misses[c]
			if r.requests[c] > 0 {
				perColl[c] = perColl[c].Merge(r.hist[c].Snapshot())
			}
		}
	}

	var overall obs.HDRSnapshot
	var completed, missed uint64
	rep := &Report{
		Schema:  ReportSchema,
		Mode:    cfg.Mode.String(),
		Target:  cfg.Target.Name(),
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Errors:  errs,
	}
	if cfg.Batch > 1 {
		rep.Batch = cfg.Batch
	}
	if cfg.Mix.Tenants > 1 {
		rep.Tenants = cfg.Mix.Tenants
		rep.TenantSkew = cfg.Mix.TenantSkew
		if rep.TenantSkew == "" {
			rep.TenantSkew = SkewUniform
		}
		tReq := make([]uint64, cfg.Mix.Tenants)
		tMiss := make([]uint64, cfg.Mix.Tenants)
		for i := range results {
			for t, v := range results[i].tenantReq {
				tReq[t] += v
			}
			for t, v := range results[i].tenantMiss {
				tMiss[t] += v
			}
		}
		for t := 0; t < cfg.Mix.Tenants; t++ {
			rep.PerTenant = append(rep.PerTenant, TenantReport{
				Tenant: t, Requests: tReq[t], Misses: tMiss[t],
			})
		}
	}
	for c := 0; c < coll.NumCollectives; c++ {
		if reqs[c] == 0 {
			continue
		}
		completed += reqs[c]
		missed += miss[c]
		overall = overall.Merge(perColl[c])
		rep.PerCollective = append(rep.PerCollective, CollReport{
			Collective: coll.Collective(c).String(),
			Requests:   reqs[c],
			Misses:     miss[c],
			P50Ns:      perColl[c].P50,
			P99Ns:      perColl[c].P99,
			P999Ns:     perColl[c].P999,
		})
	}
	rep.Requests = completed + errs
	rep.Misses = missed
	dur := maxEnd - minStart
	if dur <= 0 {
		dur = 1
	}
	rep.DurationNs = dur
	rep.ThroughputQPS = float64(completed) / (float64(dur) / 1e9)
	if cfg.Mode == Open {
		rep.OfferedQPS = cfg.RateQPS
	}
	rep.Latency = LatencySummary{
		P50Ns:  overall.P50,
		P90Ns:  overall.P90,
		P99Ns:  overall.P99,
		P999Ns: overall.P999,
		MaxNs:  overall.Max,
	}
	if overall.Count > 0 {
		rep.Latency.MeanNs = overall.Sum / float64(overall.Count)
	}
	return rep
}

// Sweep runs the open-loop driver once per offered rate (ascending
// order is conventional but not required) and returns the last run's
// report carrying the full saturation curve in its Sweep field — the
// table EXPERIMENTS.md reproduces.
func Sweep(cfg Config, rates []float64) (*Report, error) {
	if len(rates) == 0 {
		return nil, errors.New("loadgen: Sweep needs at least one rate")
	}
	cfg.Mode = Open
	var points []SweepPoint
	var last *Report
	for _, r := range rates {
		c := cfg
		c.RateQPS = r
		rep, err := Run(c)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			OfferedQPS:  r,
			AchievedQPS: rep.ThroughputQPS,
			P50Ns:       rep.Latency.P50Ns,
			P99Ns:       rep.Latency.P99Ns,
			P999Ns:      rep.Latency.P999Ns,
			Errors:      rep.Errors,
		})
		last = rep
	}
	last.Sweep = points
	return last, nil
}
