package loadgen_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/loadgen"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
)

// loadgenFixtureFile covers bcast (two message bands) and allreduce
// (one rule); every other collective misses.
func loadgenFixtureFile() *rules.File {
	f := rules.NewFile("loadgen-fixture")
	f.Tables[coll.Bcast.String()] = &rules.Table{
		Collective: coll.Bcast.String(),
		Buckets: []rules.NodeBucket{{MaxNodes: rules.Unbounded, PPNs: []rules.PPNBucket{
			{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
				{MaxMsg: 4096, Alg: "binomial"},
				{MaxMsg: rules.Unbounded, Alg: "scatter_ring_allgather"},
			}},
		}}},
	}
	f.Tables[coll.Allreduce.String()] = &rules.Table{
		Collective: coll.Allreduce.String(),
		Buckets: []rules.NodeBucket{{MaxNodes: rules.Unbounded, PPNs: []rules.PPNBucket{
			{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
				{MaxMsg: rules.Unbounded, Alg: "recursive_doubling"},
			}},
		}}},
	}
	return f
}

func fixtureServer(t *testing.T) *ruleserver.Server {
	t.Helper()
	srv, err := ruleserver.NewFromFile(loadgenFixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// scriptClock is a virtual-time clock: Now advances by a fixed step
// per read, WaitUntil jumps forward (never back). One instance per
// worker makes runs independent of goroutine interleaving.
type scriptClock struct{ t, step int64 }

func (c *scriptClock) Now() int64 { c.t += c.step; return c.t }
func (c *scriptClock) WaitUntil(ns int64) {
	if ns > c.t {
		c.t = ns
	}
}

func testMix() loadgen.Mix {
	return loadgen.Mix{
		// Gather has no table in the fixture, so roughly a third of
		// the queries are misses.
		Collectives: []coll.Collective{coll.Bcast, coll.Allreduce, coll.Gather},
		Nodes:       []int{2, 4, 16},
		PPN:         []int{1, 8},
		MsgExpMax:   16,
	}
}

// TestRunDeterministic pins the harness's core contract: with scripted
// per-worker clocks, two identical runs produce byte-identical reports
// in both modes, regardless of scheduling.
func TestRunDeterministic(t *testing.T) {
	srv := fixtureServer(t)
	for _, mode := range []loadgen.Mode{loadgen.Closed, loadgen.Open} {
		cfg := loadgen.Config{
			Target:   loadgen.ServerTarget{Server: srv},
			Mix:      testMix(),
			Mode:     mode,
			Workers:  3,
			Requests: 1000,
			RateQPS:  500000,
			Seed:     42,
			Clock:    func(i int) loadgen.Clock { return &scriptClock{t: int64(i) * 1000, step: 13} },
		}
		var out [2]bytes.Buffer
		for round := 0; round < 2; round++ {
			rep, err := loadgen.Run(cfg)
			if err != nil {
				t.Fatalf("%v run %d: %v", mode, round, err)
			}
			if err := rep.WriteJSON(&out[round]); err != nil {
				t.Fatal(err)
			}
			if rep.Requests != 1000 || rep.Errors != 0 {
				t.Fatalf("%v: requests %d errors %d, want 1000/0", mode, rep.Requests, rep.Errors)
			}
			if rep.Misses == 0 {
				t.Fatalf("%v: want misses from the uncovered gather slice", mode)
			}
			if len(rep.PerCollective) != 3 {
				t.Fatalf("%v: per_collective has %d entries, want 3", mode, len(rep.PerCollective))
			}
			for _, cr := range rep.PerCollective {
				if cr.Collective == coll.Gather.String() && cr.Misses != cr.Requests {
					t.Fatalf("%v: gather misses %d of %d, want all", mode, cr.Misses, cr.Requests)
				}
			}
			if rep.Latency.P50Ns <= 0 || rep.Latency.P99Ns < rep.Latency.P50Ns {
				t.Fatalf("%v: bad quantiles %+v", mode, rep.Latency)
			}
			if rep.Mode != mode.String() || rep.Schema != loadgen.ReportSchema || rep.Target != "inproc" {
				t.Fatalf("%v: bad header fields %q %q %q", mode, rep.Mode, rep.Schema, rep.Target)
			}
		}
		if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
			t.Fatalf("%v: reports differ between identical runs:\n%s\n----\n%s", mode, out[0].String(), out[1].String())
		}
	}
}

// slowTarget simulates a fixed service time by advancing the worker's
// virtual clock. Only valid with Workers=1 (it holds that worker's
// clock).
type slowTarget struct {
	clk       *scriptClock
	serviceNs int64
}

func (s *slowTarget) Select(loadgen.Query) (string, bool, error) {
	s.clk.t += s.serviceNs
	return "binomial", true, nil
}
func (s *slowTarget) Name() string { return "slow" }

// TestOpenLoopCoordinatedOmission: a 2000ns-service target offered
// 1M qps (1000ns mean interarrival) is saturated. The closed-loop
// driver sees only the service time; the CO-corrected open-loop driver
// must charge the growing queue to the latency distribution, so its
// p99 is orders of magnitude above the service time.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	run := func(mode loadgen.Mode) *loadgen.Report {
		clk := &scriptClock{}
		cfg := loadgen.Config{
			Target:   &slowTarget{clk: clk, serviceNs: 2000},
			Mix:      testMix(),
			Mode:     mode,
			Workers:  1,
			Requests: 2000,
			RateQPS:  1e6,
			Seed:     7,
			Clock:    func(int) loadgen.Clock { return clk },
		}
		rep, err := loadgen.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	closed := run(loadgen.Closed)
	open := run(loadgen.Open)
	// 2000ns lands in a 32-wide bucket; the closed-loop p99 is the
	// bucket upper bound, comfortably under 2100.
	if closed.Latency.P99Ns > 2100 {
		t.Fatalf("closed p99 %.0f, want ~service time 2000", closed.Latency.P99Ns)
	}
	if open.Latency.P99Ns < 50*closed.Latency.P99Ns {
		t.Fatalf("open p99 %.0f vs closed %.0f: coordinated-omission correction missing",
			open.Latency.P99Ns, closed.Latency.P99Ns)
	}
	if open.ThroughputQPS >= open.OfferedQPS {
		t.Fatalf("achieved %.0f >= offered %.0f on a saturated target", open.ThroughputQPS, open.OfferedQPS)
	}
}

// TestHTTPTarget drives the same handler acclaim-serve -http mounts,
// over a real loopback connection.
func TestHTTPTarget(t *testing.T) {
	srv := fixtureServer(t)
	ts := httptest.NewServer(ruleserver.SelectHandler(srv))
	defer ts.Close()

	tgt := loadgen.HTTPTarget{URL: ts.URL, Client: ts.Client()}
	if alg, ok, err := tgt.Select(loadgen.Query{Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64}); err != nil || !ok || alg != "binomial" {
		t.Fatalf("Select = %q %v %v, want binomial true nil", alg, ok, err)
	}
	if _, ok, err := tgt.Select(loadgen.Query{Coll: coll.Scatter, Nodes: 4, PPN: 8, Msg: 64}); err != nil || ok {
		t.Fatalf("uncovered collective: ok=%v err=%v, want miss with no error", ok, err)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Target:   tgt,
		Mix:      testMix(),
		Workers:  2,
		Requests: 200,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 || rep.Errors != 0 {
		t.Fatalf("requests %d errors %d, want 200/0", rep.Requests, rep.Errors)
	}
	if rep.Misses == 0 || rep.ThroughputQPS <= 0 || rep.Latency.P50Ns <= 0 {
		t.Fatalf("implausible HTTP report: %+v", rep)
	}

	// Transport errors and non-200s count as errors, not latencies.
	bad := loadgen.HTTPTarget{URL: "http://127.0.0.1:1/nope"}
	if _, _, err := bad.Select(loadgen.Query{Coll: coll.Bcast, Nodes: 2, PPN: 1, Msg: 8}); err == nil {
		t.Fatal("want transport error from unreachable target")
	}
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer boom.Close()
	rep, err = loadgen.Run(loadgen.Config{
		Target:   loadgen.HTTPTarget{URL: boom.URL},
		Mix:      testMix(),
		Workers:  1,
		Requests: 10,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 10 || rep.ThroughputQPS != 0 || rep.Latency.P99Ns != 0 {
		t.Fatalf("all-error run: errors %d qps %.0f p99 %.0f, want 10/0/0", rep.Errors, rep.ThroughputQPS, rep.Latency.P99Ns)
	}
}

// TestSweep checks the saturation-curve plumbing: one point per rate,
// offered rates echoed, and deterministic bytes under scripted clocks.
func TestSweep(t *testing.T) {
	srv := fixtureServer(t)
	cfg := loadgen.Config{
		Target:   loadgen.ServerTarget{Server: srv},
		Mix:      testMix(),
		Workers:  2,
		Requests: 400,
		Seed:     42,
		Clock:    func(i int) loadgen.Clock { return &scriptClock{t: int64(i) * 100, step: 11} },
	}
	rates := []float64{100000, 200000, 400000}
	var out [2]bytes.Buffer
	for round := 0; round < 2; round++ {
		rep, err := loadgen.Sweep(cfg, rates)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Sweep) != len(rates) {
			t.Fatalf("sweep has %d points, want %d", len(rep.Sweep), len(rates))
		}
		for i, p := range rep.Sweep {
			if p.OfferedQPS != rates[i] {
				t.Fatalf("point %d offered %.0f, want %.0f", i, p.OfferedQPS, rates[i])
			}
			if p.AchievedQPS <= 0 || p.P99Ns <= 0 {
				t.Fatalf("point %d implausible: %+v", i, p)
			}
		}
		if rep.Mode != "open" || rep.OfferedQPS != rates[len(rates)-1] {
			t.Fatalf("last report mode %q offered %.0f", rep.Mode, rep.OfferedQPS)
		}
		if err := rep.WriteJSON(&out[round]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("sweep reports differ between identical runs")
	}
	if _, err := loadgen.Sweep(cfg, nil); err == nil {
		t.Fatal("want error for empty rate ladder")
	}
}

// TestRegistryMetrics checks the live loadgen.* wiring.
func TestRegistryMetrics(t *testing.T) {
	srv := fixtureServer(t)
	reg := obs.NewRegistry()
	rep, err := loadgen.Run(loadgen.Config{
		Target:   loadgen.ServerTarget{Server: srv},
		Mix:      testMix(),
		Workers:  2,
		Requests: 500,
		Seed:     3,
		Clock:    func(i int) loadgen.Clock { return &scriptClock{t: int64(i), step: 9} },
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("loadgen.requests_total").Load(); got != rep.Requests {
		t.Fatalf("loadgen.requests_total = %d, want %d", got, rep.Requests)
	}
	if got := reg.Counter("loadgen.misses_total").Load(); got != rep.Misses {
		t.Fatalf("loadgen.misses_total = %d, want %d", got, rep.Misses)
	}
	if got := reg.Counter("loadgen.errors_total").Load(); got != 0 {
		t.Fatalf("loadgen.errors_total = %d, want 0", got)
	}
	lat := reg.HDR("loadgen.latency_ns")
	if lat.Count() != rep.Requests-rep.Errors {
		t.Fatalf("latency HDR holds %d samples, want %d", lat.Count(), rep.Requests-rep.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	srv := fixtureServer(t)
	tgt := loadgen.ServerTarget{Server: srv}
	cases := []struct {
		name string
		cfg  loadgen.Config
	}{
		{"nil target", loadgen.Config{Mix: testMix(), Requests: 10}},
		{"no requests", loadgen.Config{Target: tgt, Mix: testMix()}},
		{"open without rate", loadgen.Config{Target: tgt, Mix: testMix(), Requests: 10, Mode: loadgen.Open}},
		{"empty mix", loadgen.Config{Target: tgt, Requests: 10}},
		{"bad collective", loadgen.Config{Target: tgt, Requests: 10, Mix: loadgen.Mix{
			Collectives: []coll.Collective{coll.Collective(99)}, Nodes: []int{2}, PPN: []int{1}, MsgExpMax: 4}}},
		{"msg exp out of range", loadgen.Config{Target: tgt, Requests: 10, Mix: loadgen.Mix{
			Collectives: []coll.Collective{coll.Bcast}, Nodes: []int{2}, PPN: []int{1}, MsgExpMax: 40}}},
	}
	for _, tc := range cases {
		if _, err := loadgen.Run(tc.cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]loadgen.Mode{"closed": loadgen.Closed, "open": loadgen.Open} {
		m, err := loadgen.ParseMode(s)
		if err != nil || m != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, m, err)
		}
		if m.String() != s {
			t.Fatalf("Mode.String() = %q, want %q", m.String(), s)
		}
	}
	if _, err := loadgen.ParseMode("burst"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestWriteBench(t *testing.T) {
	srv := fixtureServer(t)
	rep, err := loadgen.Run(loadgen.Config{
		Target:   loadgen.ServerTarget{Server: srv},
		Mix:      testMix(),
		Workers:  1,
		Requests: 100,
		Seed:     1,
		Clock:    func(int) loadgen.Clock { return &scriptClock{step: 10} },
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteBench(&buf, "LoadSmoke"); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	fields := strings.Fields(line)
	// benchguard's parser wants: name, iterations, then (value, unit)
	// pairs — exactly what `go test -bench` emits.
	if len(fields) != 8 || fields[0] != "BenchmarkLoadSmoke" || fields[1] != "1" ||
		fields[3] != "ns/op" || fields[5] != "throughput_qps" || fields[7] != "p99_ns" {
		t.Fatalf("bench line not benchguard-parseable: %q", line)
	}
}

// TestHTTPTargetTruncatedBody: a response whose body ends before its
// declared Content-Length is a transport error, not a parsed result.
func TestHTTPTargetTruncatedBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "100")
		w.Write([]byte(`{"alg`))
	}))
	defer ts.Close()
	tgt := loadgen.HTTPTarget{URL: ts.URL}
	if _, _, err := tgt.Select(loadgen.Query{Coll: coll.Bcast, Nodes: 2, PPN: 1, Msg: 8}); err == nil {
		t.Fatal("want error from truncated response body")
	}
}
