package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema identifies the load-report JSON layout; bump the suffix
// on breaking changes so downstream CI gates fail loudly instead of
// misreading fields.
const ReportSchema = "acclaim.load_report/v1"

// LatencySummary is the run-wide latency distribution, in nanoseconds,
// exact to within one HDR bucket (~3.1% relative). Open-loop runs
// measure from scheduled arrival, so queueing delay is included.
type LatencySummary struct {
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  float64 `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// CollReport is one collective's slice of the run (completed requests
// only; errors are not attributed to a collective).
type CollReport struct {
	Collective string  `json:"collective"`
	Requests   uint64  `json:"requests"`
	Misses     uint64  `json:"misses"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	P999Ns     float64 `json:"p999_ns"`
}

// SweepPoint is one offered-rate step of a saturation sweep.
type SweepPoint struct {
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	Errors      uint64  `json:"errors"`
}

// TenantReport is one tenant's slice of a multi-tenant run (completed
// requests only). Tenant is the mix's tenant index; targets map it to
// a registry shard.
type TenantReport struct {
	Tenant   int    `json:"tenant"`
	Requests uint64 `json:"requests"`
	Misses   uint64 `json:"misses"`
}

// Report is the acclaim.load_report/v1 document. The batch and tenant
// fields are omitted for unbatched single-tenant runs, so reports from
// pre-existing configurations stay byte-identical.
type Report struct {
	Schema        string         `json:"schema"`
	Mode          string         `json:"mode"`
	Target        string         `json:"target"`
	Seed          int64          `json:"seed"`
	Workers       int            `json:"workers"`
	Batch         int            `json:"batch,omitempty"`
	Tenants       int            `json:"tenants,omitempty"`
	TenantSkew    string         `json:"tenant_skew,omitempty"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	Misses        uint64         `json:"misses"`
	DurationNs    int64          `json:"duration_ns"`
	ThroughputQPS float64        `json:"throughput_qps"`
	OfferedQPS    float64        `json:"offered_qps,omitempty"`
	Latency       LatencySummary `json:"latency"`
	PerCollective []CollReport   `json:"per_collective"`
	PerTenant     []TenantReport `json:"per_tenant,omitempty"`
	Sweep         []SweepPoint   `json:"sweep,omitempty"`
}

// WriteJSON writes the report as indented JSON. encoding/json field
// order is declaration order, so identical runs produce identical
// bytes — the determinism tests compare these buffers directly.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBench renders the run as one Go-testing-style benchmark line,
//
//	Benchmark<name> 1 <duration> ns/op <qps> throughput_qps <p99> p99_ns
//
// which cmd/benchguard parses like any `go test -bench` output: the CI
// load-smoke job pipes this into benchguard with a throughput_qps
// floor and a p99_ns ceiling to gate serving-path SLOs.
func (r *Report) WriteBench(w io.Writer, name string) error {
	return r.WriteBenchPrefixed(w, name, "")
}

// WriteBenchPrefixed is WriteBench with the custom metric units
// prefixed (e.g. prefix "tcp_" emits tcp_throughput_qps and
// tcp_p99_ns), so one benchguard invocation can gate several transport
// runs with distinct -floor/-ceiling bounds.
func (r *Report) WriteBenchPrefixed(w io.Writer, name, prefix string) error {
	_, err := fmt.Fprintf(w, "Benchmark%s 1 %d ns/op %.2f %sthroughput_qps %.0f %sp99_ns\n",
		name, r.DurationNs, r.ThroughputQPS, prefix, r.Latency.P99Ns, prefix)
	return err
}
