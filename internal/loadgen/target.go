package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"acclaim/internal/coll"
	"acclaim/internal/ruleserver"
)

// Query is one algorithm-selection request fired at a target.
type Query struct {
	Coll  coll.Collective
	Nodes int
	PPN   int
	Msg   int
}

// Target is the system under load. Select resolves one query: ok
// reports whether a rule covered it (a miss is a valid answer, not an
// error); err reports transport or server failure, and err'd requests
// are excluded from the latency distribution.
type Target interface {
	Select(q Query) (alg string, ok bool, err error)
	// Name identifies the target in reports ("inproc", or the URL).
	Name() string
}

// ServerTarget drives an in-process rule server: the pure serving-path
// cost with no transport, the configuration the CI load-smoke gate
// measures.
type ServerTarget struct {
	Server *ruleserver.Server
}

func (t ServerTarget) Select(q Query) (string, bool, error) {
	alg, ok := t.Server.Lookup(q.Coll, q.Nodes, q.PPN, q.Msg)
	return alg, ok, nil
}

func (t ServerTarget) Name() string { return "inproc" }

// HTTPTarget drives an out-of-process server through the /v1/select
// JSON API that acclaim-serve -http exposes (ruleserver.SelectHandler).
type HTTPTarget struct {
	URL    string
	Client *http.Client // nil means http.DefaultClient
}

func (t HTTPTarget) Select(q Query) (string, bool, error) {
	body, err := json.Marshal(ruleserver.SelectRequest{
		Collective: q.Coll.String(), Nodes: q.Nodes, PPN: q.PPN, Msg: q.Msg,
	})
	if err != nil {
		return "", false, err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(t.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12)) //nolint:errcheck // drain for keep-alive
		return "", false, fmt.Errorf("loadgen: %s: http %d", t.URL, resp.StatusCode)
	}
	var sr ruleserver.SelectResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&sr); err != nil {
		return "", false, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return sr.Algorithm, sr.OK, nil
}

func (t HTTPTarget) Name() string { return t.URL }
