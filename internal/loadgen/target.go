package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/ruleserver"
)

// Query is one algorithm-selection request fired at a target. Tenant
// is an index into the target's tenant universe (0 for single-tenant
// targets, which ignore it).
type Query struct {
	Tenant int
	Coll   coll.Collective
	Nodes  int
	PPN    int
	Msg    int
}

// Result is one answered query: ok reports rule coverage (a miss is a
// valid answer, not an error).
type Result struct {
	Alg string
	OK  bool
}

// Target is the system under load. Select resolves one query: ok
// reports whether a rule covered it (a miss is a valid answer, not an
// error); err reports transport or server failure, and err'd requests
// are excluded from the latency distribution.
type Target interface {
	Select(q Query) (alg string, ok bool, err error)
	// Name identifies the target in reports ("inproc", or the URL).
	Name() string
}

// BatchTarget is a Target that can resolve N queries in one transport
// round trip. SelectBatch fills res[:len(qs)] in query order; an error
// fails the whole batch (all its queries count as errors).
type BatchTarget interface {
	Target
	SelectBatch(qs []Query, res []Result) error
}

// ServerTarget drives an in-process rule server: the pure serving-path
// cost with no transport, the configuration the CI load-smoke gate
// measures.
type ServerTarget struct {
	Server *ruleserver.Server
}

func (t ServerTarget) Select(q Query) (string, bool, error) {
	alg, ok := t.Server.Lookup(q.Coll, q.Nodes, q.PPN, q.Msg)
	return alg, ok, nil
}

func (t ServerTarget) Name() string { return "inproc" }

// RegistryTarget drives an in-process multi-tenant registry: each
// query's Tenant index resolves to one of the listed shards. The shard
// pointers are resolved once at construction (Registry shards are
// stable across rule swaps), so the per-query cost is one slice index
// over ServerTarget's.
type RegistryTarget struct {
	reg     *ruleserver.Registry
	tenants []ruleserver.TenantKey
	shards  []*ruleserver.Server
}

// NewRegistryTarget builds a registry target over the given tenants,
// creating any that do not exist yet (their lookups miss until the
// first Swap).
func NewRegistryTarget(reg *ruleserver.Registry, tenants []ruleserver.TenantKey) (*RegistryTarget, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: RegistryTarget needs at least one tenant")
	}
	t := &RegistryTarget{reg: reg, tenants: tenants, shards: make([]*ruleserver.Server, len(tenants))}
	for i, k := range tenants {
		t.shards[i] = reg.Ensure(k)
	}
	return t, nil
}

func (t *RegistryTarget) Select(q Query) (string, bool, error) {
	if q.Tenant < 0 || q.Tenant >= len(t.shards) {
		return "", false, fmt.Errorf("loadgen: tenant index %d out of range [0,%d)", q.Tenant, len(t.shards))
	}
	alg, ok := t.shards[q.Tenant].Lookup(q.Coll, q.Nodes, q.PPN, q.Msg)
	return alg, ok, nil
}

func (t *RegistryTarget) Name() string { return "inproc-registry" }

// sharedTransport is the keep-alive transport every HTTPTarget shares
// by default: per-host idle pool sized for the loadgen's worker counts
// so closed-loop runs reuse connections instead of paying a dial (and
// a TIME_WAIT socket) per request.
var sharedTransport = &http.Transport{
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 256,
	IdleConnTimeout:     90 * time.Second,
}

var sharedClient = &http.Client{Transport: sharedTransport}

// httpBuf is one worker's reusable request/response scratch: encode
// buffer, body read buffer, and the bytes.Reader handed to the request
// — recycled through httpBufPool so a steady-state Select allocates
// only what net/http itself insists on.
type httpBuf struct {
	req  []byte
	body []byte
	rd   bytes.Reader
}

var httpBufPool = sync.Pool{
	New: func() any { return &httpBuf{req: make([]byte, 0, 128), body: make([]byte, 0, 256)} },
}

// appendSelectRequest hand-encodes the fixed /v1/select request shape.
func appendSelectRequest(b []byte, q Query) []byte {
	b = append(b, `{"collective":`...)
	b = strconv.AppendQuote(b, q.Coll.String())
	b = append(b, `,"nodes":`...)
	b = strconv.AppendInt(b, int64(q.Nodes), 10)
	b = append(b, `,"ppn":`...)
	b = strconv.AppendInt(b, int64(q.PPN), 10)
	b = append(b, `,"msg":`...)
	b = strconv.AppendInt(b, int64(q.Msg), 10)
	return append(b, '}')
}

// readAllInto reads r to EOF into buf's capacity, growing as needed.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// HTTPTarget drives an out-of-process server through the /v1/select
// JSON API that acclaim-serve -http exposes (ruleserver.SelectHandler).
// Requests are hand-encoded into pooled buffers and ride a shared
// keep-alive transport, so the per-query garbage is the JSON response
// decode, not the transport plumbing.
type HTTPTarget struct {
	URL    string
	Client *http.Client // nil means the shared keep-alive client
}

func (t HTTPTarget) Select(q Query) (string, bool, error) {
	buf := httpBufPool.Get().(*httpBuf)
	defer httpBufPool.Put(buf)
	buf.req = appendSelectRequest(buf.req[:0], q)
	buf.rd.Reset(buf.req)

	client := t.Client
	if client == nil {
		client = sharedClient
	}
	hreq, err := http.NewRequest(http.MethodPost, t.URL, &buf.rd)
	if err != nil {
		return "", false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.ContentLength = int64(len(buf.req))
	resp, err := client.Do(hreq)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12)) //nolint:errcheck // drain for keep-alive
		return "", false, fmt.Errorf("loadgen: %s: http %d", t.URL, resp.StatusCode)
	}
	buf.body, err = readAllInto(buf.body[:0], io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return "", false, err
	}
	var sr ruleserver.SelectResponse
	if err := json.Unmarshal(buf.body, &sr); err != nil {
		return "", false, err
	}
	return sr.Algorithm, sr.OK, nil
}

func (t HTTPTarget) Name() string { return t.URL }
