package loadgen

import (
	"fmt"
	"net"

	"acclaim/internal/ruleserver"
)

// tcpConn bundles one wire client with its per-connection scratch
// slices, so batch encode/decode reuses memory across batches on the
// same connection.
type tcpConn struct {
	c  *ruleserver.WireClient
	qs []ruleserver.WireQuery
	rs []ruleserver.WireResult
}

// TCPTarget drives an out-of-process server over the compact binary
// protocol that acclaim-serve -tcp exposes. Connections are pooled in
// a lock-free channel free-list: each worker checks one out per call
// (dialing on a dry pool), uses it exclusively, and returns it — so a
// steady-state run holds one persistent connection per worker and a
// batch costs one Write plus one pipelined read. A transport error
// discards the connection instead of re-pooling it.
type TCPTarget struct {
	addr    string
	tenants []ruleserver.TenantKey
	pool    chan *tcpConn

	// dial is the connection factory; tests may substitute one that
	// returns an in-process pipe.
	dial func() (*ruleserver.WireClient, error)
}

// NewTCPTarget builds a pooled binary-protocol target. maxConns bounds
// the pool (<=0 means 64); tenants is the tenant universe Query.Tenant
// indexes into (at least one — use ruleserver.DefaultTenant against a
// single-tenant server).
func NewTCPTarget(addr string, tenants []ruleserver.TenantKey, maxConns int) (*TCPTarget, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: TCPTarget needs at least one tenant")
	}
	if maxConns <= 0 {
		maxConns = 64
	}
	t := &TCPTarget{
		addr:    addr,
		tenants: append([]ruleserver.TenantKey(nil), tenants...),
		pool:    make(chan *tcpConn, maxConns),
	}
	t.dial = func() (*ruleserver.WireClient, error) {
		return ruleserver.DialWire(addr, t.tenants)
	}
	return t, nil
}

// NewTCPTargetConn builds a target whose connections come from dialFn
// — how tests drive the protocol over net.Pipe without a listener.
func NewTCPTargetConn(name string, tenants []ruleserver.TenantKey, maxConns int, dialFn func() (net.Conn, error)) (*TCPTarget, error) {
	t, err := NewTCPTarget(name, tenants, maxConns)
	if err != nil {
		return nil, err
	}
	t.dial = func() (*ruleserver.WireClient, error) {
		nc, err := dialFn()
		if err != nil {
			return nil, err
		}
		c, err := ruleserver.NewWireClient(nc, t.tenants)
		if err != nil {
			nc.Close()
			return nil, err
		}
		return c, nil
	}
	return t, nil
}

// get checks a connection out of the pool, dialing if it is dry.
func (t *TCPTarget) get() (*tcpConn, error) {
	select {
	case c := <-t.pool:
		return c, nil
	default:
	}
	wc, err := t.dial()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: wc}, nil
}

// put returns a healthy connection to the pool, closing it if the
// pool is full.
func (t *TCPTarget) put(c *tcpConn) {
	select {
	case t.pool <- c:
	default:
		c.c.Close()
	}
}

// Select resolves one query (a batch of one round trip).
func (t *TCPTarget) Select(q Query) (string, bool, error) {
	c, err := t.get()
	if err != nil {
		return "", false, err
	}
	alg, ok, err := c.c.Lookup(ruleserver.WireQuery{
		Tenant: q.Tenant, Coll: q.Coll, Nodes: q.Nodes, PPN: q.PPN, Msg: q.Msg,
	})
	if err != nil {
		c.c.Close()
		return "", false, err
	}
	t.put(c)
	return alg, ok, nil
}

// SelectBatch resolves len(qs) queries in one request frame.
func (t *TCPTarget) SelectBatch(qs []Query, res []Result) error {
	if len(res) < len(qs) {
		return fmt.Errorf("loadgen: result slice shorter than query slice")
	}
	c, err := t.get()
	if err != nil {
		return err
	}
	if cap(c.qs) < len(qs) {
		c.qs = make([]ruleserver.WireQuery, len(qs))
		c.rs = make([]ruleserver.WireResult, len(qs))
	}
	c.qs, c.rs = c.qs[:len(qs)], c.rs[:len(qs)]
	for i, q := range qs {
		c.qs[i] = ruleserver.WireQuery{
			Tenant: q.Tenant, Coll: q.Coll, Nodes: q.Nodes, PPN: q.PPN, Msg: q.Msg,
		}
	}
	if err := c.c.LookupBatch(c.qs, c.rs); err != nil {
		c.c.Close()
		return err
	}
	for i := range c.rs {
		res[i] = Result{Alg: c.rs[i].Alg, OK: c.rs[i].OK}
	}
	t.put(c)
	return nil
}

// Close drains and closes every pooled connection.
func (t *TCPTarget) Close() {
	for {
		select {
		case c := <-t.pool:
			c.c.Close()
		default:
			return
		}
	}
}

func (t *TCPTarget) Name() string { return ruleserver.WireTargetName(t.addr) }
