package loadgen_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/loadgen"
	"acclaim/internal/ruleserver"
)

// wireTenants builds the t<i>/default/default convention keys.
func wireTenants(n int) []ruleserver.TenantKey {
	keys := make([]ruleserver.TenantKey, n)
	for i := range keys {
		keys[i] = ruleserver.TenantKey{Cluster: fmt.Sprintf("t%d", i), JobClass: "default", MPIVer: "default"}
	}
	return keys
}

// pipeTCPTarget builds a TCPTarget whose connections are net.Pipe ends
// served by an in-process wire server over reg.
func pipeTCPTarget(t *testing.T, reg *ruleserver.Registry, tenants []ruleserver.TenantKey) *loadgen.TCPTarget {
	t.Helper()
	ws := ruleserver.NewWireServer(reg)
	tgt, err := loadgen.NewTCPTargetConn("pipe", tenants, 8, func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		//acclaim:goroutine-owner test server conn; exits when the client end closes
		go ws.ServeConn(srvEnd)
		return cliEnd, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tgt.Close)
	return tgt
}

// multiTenantRegistry loads the loadgen fixture into n shards.
func multiTenantRegistry(t *testing.T, n int) (*ruleserver.Registry, []ruleserver.TenantKey) {
	t.Helper()
	reg := ruleserver.NewRegistry()
	keys := wireTenants(n)
	for _, k := range keys {
		if err := reg.Swap(k, loadgenFixtureFile()); err != nil {
			t.Fatal(err)
		}
	}
	return reg, keys
}

func TestTCPTargetSelectAndBatch(t *testing.T) {
	reg, keys := multiTenantRegistry(t, 2)
	tgt := pipeTCPTarget(t, reg, keys)

	alg, ok, err := tgt.Select(loadgen.Query{Tenant: 1, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64})
	if err != nil || !ok || alg != "binomial" {
		t.Fatalf("Select = (%q,%v,%v), want (binomial,true,nil)", alg, ok, err)
	}
	if _, ok, err := tgt.Select(loadgen.Query{Coll: coll.Scatter, Nodes: 4, PPN: 8, Msg: 64}); err != nil || ok {
		t.Fatalf("uncovered collective: ok=%v err=%v, want miss", ok, err)
	}

	qs := []loadgen.Query{
		{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64},
		{Tenant: 1, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 1 << 20},
		{Tenant: 0, Coll: coll.Gather, Nodes: 4, PPN: 8, Msg: 64},
		{Tenant: 1, Coll: coll.Allreduce, Nodes: 16, PPN: 8, Msg: 256},
	}
	res := make([]loadgen.Result, len(qs))
	if err := tgt.SelectBatch(qs, res); err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Result{
		{Alg: "binomial", OK: true},
		{Alg: "scatter_ring_allgather", OK: true},
		{},
		{Alg: "recursive_doubling", OK: true},
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("batch[%d] = %+v, want %+v", i, res[i], want[i])
		}
	}
	if err := tgt.SelectBatch(qs, res[:2]); err == nil {
		t.Fatal("short result slice accepted")
	}
	if tgt.Name() != "tcp://pipe" {
		t.Fatalf("Name = %q", tgt.Name())
	}
}

// TestTCPTargetMultiTenantRun drives the full harness — batched
// transport, zipf tenant skew, scripted clocks — and pins report
// plumbing plus byte-identical determinism.
func TestTCPTargetMultiTenantRun(t *testing.T) {
	reg, keys := multiTenantRegistry(t, 4)
	tgt := pipeTCPTarget(t, reg, keys)
	mix := testMix()
	mix.Tenants = 4
	mix.TenantSkew = loadgen.SkewZipf
	mix.ZipfS = 1.5
	cfg := loadgen.Config{
		Target:   tgt,
		Mix:      mix,
		Workers:  3,
		Requests: 2000,
		Batch:    16,
		Seed:     42,
		Clock:    func(i int) loadgen.Clock { return &scriptClock{t: int64(i) * 1000, step: 13} },
	}
	var out [2]bytes.Buffer
	for round := 0; round < 2; round++ {
		rep, err := loadgen.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&out[round]); err != nil {
			t.Fatal(err)
		}
		if rep.Requests != 2000 || rep.Errors != 0 {
			t.Fatalf("requests %d errors %d, want 2000/0", rep.Requests, rep.Errors)
		}
		if rep.Batch != 16 || rep.Tenants != 4 || rep.TenantSkew != "zipf" {
			t.Fatalf("report batch/tenant header = %d/%d/%q", rep.Batch, rep.Tenants, rep.TenantSkew)
		}
		if len(rep.PerTenant) != 4 {
			t.Fatalf("per_tenant has %d entries, want 4", len(rep.PerTenant))
		}
		var total uint64
		for i, tr := range rep.PerTenant {
			if tr.Tenant != i {
				t.Fatalf("per_tenant[%d].Tenant = %d", i, tr.Tenant)
			}
			total += tr.Requests
		}
		if total != rep.Requests-rep.Errors {
			t.Fatalf("per-tenant requests sum %d, want %d", total, rep.Requests)
		}
		// Zipf skew concentrates load on the low tenant indexes.
		if rep.PerTenant[0].Requests <= rep.PerTenant[3].Requests {
			t.Fatalf("zipf skew missing: tenant0 %d <= tenant3 %d",
				rep.PerTenant[0].Requests, rep.PerTenant[3].Requests)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("batched multi-tenant reports differ between identical runs:\n%s\n----\n%s",
			out[0].String(), out[1].String())
	}
}

// TestTCPTargetUniformTenants checks the uniform skew spreads load
// roughly evenly (and that per-tenant misses are tracked).
func TestTCPTargetUniformTenants(t *testing.T) {
	reg, keys := multiTenantRegistry(t, 3)
	tgt := pipeTCPTarget(t, reg, keys)
	mix := testMix()
	mix.Tenants = 3
	rep, err := loadgen.Run(loadgen.Config{
		Target:   tgt,
		Mix:      mix,
		Workers:  2,
		Requests: 1500,
		Batch:    8,
		Seed:     9,
		Clock:    func(i int) loadgen.Clock { return &scriptClock{t: int64(i), step: 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TenantSkew != "uniform" {
		t.Fatalf("TenantSkew = %q", rep.TenantSkew)
	}
	for _, tr := range rep.PerTenant {
		if tr.Requests < 300 {
			t.Fatalf("uniform skew: tenant %d got only %d of 1500", tr.Tenant, tr.Requests)
		}
		if tr.Misses == 0 {
			t.Fatalf("tenant %d: want gather misses", tr.Tenant)
		}
	}
}

func TestTCPTargetTransportFailure(t *testing.T) {
	// Dial failure: every query errors, none reach the distribution.
	bad, err := loadgen.NewTCPTargetConn("down", wireTenants(1), 2, func() (net.Conn, error) {
		return nil, errors.New("connection refused")
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(loadgen.Config{
		Target:   bad,
		Mix:      testMix(),
		Workers:  1,
		Requests: 10,
		Batch:    5,
		Seed:     1,
		Clock:    func(int) loadgen.Clock { return &scriptClock{step: 3} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 10 || rep.Latency.P99Ns != 0 {
		t.Fatalf("dial-failure run: errors %d p99 %.0f, want 10/0", rep.Errors, rep.Latency.P99Ns)
	}

	// A connection that dies mid-stream: the target discards it and
	// surfaces the error; a later call dials fresh and succeeds.
	reg, keys := multiTenantRegistry(t, 1)
	ws := ruleserver.NewWireServer(reg)
	fail := true
	tgt, err := loadgen.NewTCPTargetConn("flaky", keys, 2, func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		if fail {
			// Server closes right after the handshake.
			//acclaim:goroutine-owner test conn killer; exits after closing the handshaken conn
			go func() {
				c := &handshakeThenClose{Conn: srvEnd}
				ws.ServeConn(c)
			}()
		} else {
			//acclaim:goroutine-owner test server conn; exits when the client end closes
			go ws.ServeConn(srvEnd)
		}
		return cliEnd, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if _, _, err := tgt.Select(loadgen.Query{Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64}); err == nil {
		t.Fatal("want error from connection that died after handshake")
	}
	fail = false
	if alg, ok, err := tgt.Select(loadgen.Query{Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64}); err != nil || !ok || alg != "binomial" {
		t.Fatalf("recovery Select = (%q,%v,%v)", alg, ok, err)
	}
}

// handshakeThenClose lets the hello ack through, then closes before
// any batch response.
type handshakeThenClose struct {
	net.Conn
	writes int
}

func (c *handshakeThenClose) Write(p []byte) (int, error) {
	c.writes++
	if c.writes <= 2 { // ack header + payload
		return c.Conn.Write(p)
	}
	c.Conn.Close()
	return 0, errors.New("killed")
}

func TestBatchNeedsBatchTarget(t *testing.T) {
	srv := fixtureServer(t)
	_, err := loadgen.Run(loadgen.Config{
		Target:   loadgen.ServerTarget{Server: srv},
		Mix:      testMix(),
		Requests: 10,
		Batch:    4,
	})
	if err == nil {
		t.Fatal("Batch>1 with a non-batching target must error")
	}
}

func TestMixTenantValidation(t *testing.T) {
	srv := fixtureServer(t)
	mix := testMix()
	mix.Tenants = 4
	mix.TenantSkew = "pareto"
	if _, err := loadgen.Run(loadgen.Config{
		Target: loadgen.ServerTarget{Server: srv}, Mix: mix, Requests: 10,
	}); err == nil {
		t.Fatal("bad tenant skew accepted")
	}
}

func TestRegistryTarget(t *testing.T) {
	reg, keys := multiTenantRegistry(t, 2)
	tgt, err := loadgen.NewRegistryTarget(reg, keys)
	if err != nil {
		t.Fatal(err)
	}
	if alg, ok, err := tgt.Select(loadgen.Query{Tenant: 1, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64}); err != nil || !ok || alg != "binomial" {
		t.Fatalf("Select = (%q,%v,%v)", alg, ok, err)
	}
	if _, _, err := tgt.Select(loadgen.Query{Tenant: 7, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 64}); err == nil {
		t.Fatal("out-of-range tenant index must error")
	}
	if tgt.Name() != "inproc-registry" {
		t.Fatalf("Name = %q", tgt.Name())
	}
	if _, err := loadgen.NewRegistryTarget(reg, nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
}

func TestWriteBenchPrefixed(t *testing.T) {
	srv := fixtureServer(t)
	rep, err := loadgen.Run(loadgen.Config{
		Target:   loadgen.ServerTarget{Server: srv},
		Mix:      testMix(),
		Workers:  1,
		Requests: 100,
		Seed:     1,
		Clock:    func(int) loadgen.Clock { return &scriptClock{step: 10} },
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteBenchPrefixed(&buf, "TCPLoadSmoke", "tcp_"); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("tcp_throughput_qps")) ||
		!bytes.Contains(buf.Bytes(), []byte("tcp_p99_ns")) {
		t.Fatalf("prefixed bench line missing prefixed units: %q", line)
	}
}
