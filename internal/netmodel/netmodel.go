// Package netmodel is the network performance model underneath the
// simulated MPI runtime. It classifies point-to-point paths through the
// three Dragonfly layers of Figure 8 (intra-node shared memory,
// intra-rack, rack pair, global), assigns each class Hockney-style
// latency/bandwidth parameters, and layers per-job dynamic factors on
// top: the allocation-spread latency penalty and background congestion
// that the paper identifies as the reason autotuners must retrain every
// job (Section II-B3, ">2x difference in latency for the same collective
// algorithm on different jobs and allocations").
package netmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"acclaim/internal/cluster"
)

// PathClass categorises the route between two ranks by the highest
// network layer it must traverse.
type PathClass int

// Path classes, cheapest first.
const (
	IntraNode PathClass = iota // same node: shared memory
	IntraRack                  // layer 1: within a rack
	RackPair                   // layer 2: between paired racks
	Global                     // layer 3: between rack pairs
	numPathClasses
)

// String implements fmt.Stringer.
func (c PathClass) String() string {
	switch c {
	case IntraNode:
		return "intra-node"
	case IntraRack:
		return "intra-rack"
	case RackPair:
		return "rack-pair"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("PathClass(%d)", int(c))
	}
}

// Params holds the static cost parameters of the machine. Times are in
// microseconds, sizes in bytes, bandwidths in bytes per microsecond
// (1 B/us = 1 MB/s).
type Params struct {
	Latency      [numPathClasses]float64 // alpha: per-message startup cost
	Bandwidth    [numPathClasses]float64 // beta denominator: bytes per microsecond
	SendOverhead float64                 // CPU time charged to the sender per message
	ReduceRate   float64                 // bytes/us a rank can combine in a reduction op
	CopyRate     float64                 // bytes/us for local memory copies (pack/unpack)

	// NonP2Penalty (>= 1) divides the effective bandwidth of transfers,
	// reductions, and copies whose byte count is not a power of two.
	// It models the pipelining/double-buffering and alignment penalties
	// real MPI transports exhibit for segment sizes that do not tile
	// their internal power-of-two buffers. This is the mechanism that
	// gives non-P2 message sizes genuinely different performance trends
	// (Section III-B of the paper): a model trained only on P2 points
	// cannot interpolate it.
	NonP2Penalty float64

	// NonP2Alpha (>= 1) multiplies the per-message startup latency of
	// non-P2 network transfers: the remainder segment breaks the
	// transport's double-buffered pipeline and costs an extra
	// rendezvous. Because the hit is per message, algorithms built from
	// many small transfers (ring, scatter-based) suffer more than
	// few-large-message algorithms (binomial) — which is what shifts
	// the algorithm *ranking* at non-P2 sizes and makes them genuinely
	// unlearnable from P2-only training data.
	NonP2Alpha float64
}

// isP2 reports whether v is a positive power of two (local copy to keep
// the package dependency-free).
func isP2(v int) bool { return v > 0 && v&(v-1) == 0 }

// DefaultParams returns parameters loosely calibrated to a Xeon-class
// cluster with an Aries-like interconnect. Absolute values are not meant
// to match Theta; the structure (ordering and ratios across layers) is
// what the experiments depend on.
func DefaultParams() Params {
	var p Params
	p.Latency[IntraNode] = 0.3
	p.Latency[IntraRack] = 1.3
	p.Latency[RackPair] = 2.1
	p.Latency[Global] = 3.6
	p.Bandwidth[IntraNode] = 8000 // 8 GB/s
	p.Bandwidth[IntraRack] = 4800
	p.Bandwidth[RackPair] = 4000
	p.Bandwidth[Global] = 3200
	p.SendOverhead = 0.15
	p.ReduceRate = 4000
	p.CopyRate = 12000
	p.NonP2Penalty = 1.5
	p.NonP2Alpha = 5
	return p
}

// Validate checks the parameters for positivity.
func (p Params) Validate() error {
	for c := PathClass(0); c < numPathClasses; c++ {
		if p.Latency[c] < 0 {
			return fmt.Errorf("netmodel: negative latency for %v", c)
		}
		if p.Bandwidth[c] <= 0 {
			return fmt.Errorf("netmodel: non-positive bandwidth for %v", c)
		}
	}
	if p.SendOverhead < 0 || p.ReduceRate <= 0 || p.CopyRate <= 0 {
		return errors.New("netmodel: invalid overhead/rate parameters")
	}
	if p.NonP2Penalty < 1 {
		return errors.New("netmodel: NonP2Penalty must be >= 1")
	}
	if p.NonP2Alpha < 1 {
		return errors.New("netmodel: NonP2Alpha must be >= 1")
	}
	return nil
}

// Env captures the dynamic, per-job environment: the non-programmatic
// variables of Section II-B. A fresh Env is sampled for every job; two
// jobs with the same programmatic features can easily differ by >2x in
// effective latency, which is why models cannot be reused across jobs.
type Env struct {
	LatencyFactor   float64 // multiplies network (non-intra-node) latencies
	BandwidthFactor float64 // divides network bandwidths (congestion), >= 1
	NoiseSigma      float64 // relative sigma of multiplicative measurement noise

	// HeteroEvery/HeteroFactor model heterogeneous node speed (the
	// scenario matrix's slow-node variant): every HeteroEvery-th
	// allocated node — allocation order, so indices HeteroEvery-1,
	// 2*HeteroEvery-1, … — moves bytes HeteroFactor× slower on every
	// path touching it. HeteroEvery of zero (the zero value and the
	// default) disables the mechanism entirely.
	HeteroEvery  int     // every k-th allocated node is slow; 0 disables
	HeteroFactor float64 // slowdown multiplier for slow nodes, >= 1
}

// DefaultEnv is a calm, uncongested environment with mild noise.
func DefaultEnv() Env {
	return Env{LatencyFactor: 1, BandwidthFactor: 1, NoiseSigma: 0.02}
}

// SampleEnv draws a per-job environment. The latency factor combines a
// base congestion draw with the allocation's spread (a scattered
// allocation crosses more global links and suffers more interference),
// reproducing the paper's observation of >2x latency variation across
// jobs. The draw is deterministic for a given rng state.
func SampleEnv(rng *rand.Rand, alloc cluster.Allocation) Env {
	congestion := 1 + rng.Float64()*0.8              // background traffic: 1.0–1.8
	spread := 1 + 0.25*math.Max(alloc.Spread()-1, 0) // compact=1.0 … scattered=1.5
	return Env{
		LatencyFactor:   congestion * spread,
		BandwidthFactor: 1 + rng.Float64()*0.5,
		NoiseSigma:      0.02 + rng.Float64()*0.03,
	}
}

// Validate checks the environment for sanity.
func (e Env) Validate() error {
	if e.LatencyFactor < 1 || e.BandwidthFactor < 1 || e.NoiseSigma < 0 {
		return errors.New("netmodel: environment factors must be >= 1 (noise >= 0)")
	}
	if e.HeteroEvery < 0 {
		return errors.New("netmodel: HeteroEvery must be >= 0")
	}
	if e.HeteroEvery > 0 && e.HeteroFactor < 1 {
		return errors.New("netmodel: HeteroFactor must be >= 1 when HeteroEvery is set")
	}
	return nil
}

// Model binds the static parameters, a job's allocation and rank layout,
// and the job's dynamic environment into a point-to-point cost oracle.
// Model is immutable after construction and safe for concurrent use.
type Model struct {
	Params Params
	Env    Env
	Alloc  cluster.Allocation
	PPN    int

	topo   Topology
	nodeOf []int     // rank -> physical node, precomputed
	rackOf []int     // rank -> rack (Dragonfly fast path; nil otherwise)
	pairOf []int     // rank -> rack pair (Dragonfly fast path; nil otherwise)
	slowOf []float64 // rank -> hetero slowdown factor; nil when disabled
}

// New constructs a Model for a job with the given processes per node on
// the default Dragonfly topology of the allocation's machine. Every
// allocated node hosts exactly ppn ranks (block placement), so the job
// has Alloc.Size()*ppn ranks.
func New(params Params, env Env, alloc cluster.Allocation, ppn int) (*Model, error) {
	return NewWithTopology(params, env, alloc, ppn, nil)
}

// NewWithTopology is New with an explicit interconnect topology. A nil
// topology selects Dragonfly over the allocation's machine, which is
// byte-for-byte the historical behaviour of New.
func NewWithTopology(params Params, env Env, alloc cluster.Allocation, ppn int, topo Topology) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	if ppn <= 0 {
		return nil, errors.New("netmodel: non-positive ppn")
	}
	if ppn > alloc.Machine.CoresPerNode {
		return nil, fmt.Errorf("netmodel: ppn %d exceeds %d cores per node", ppn, alloc.Machine.CoresPerNode)
	}
	if topo == nil {
		topo = Dragonfly(alloc.Machine)
	}
	for _, node := range alloc.Nodes {
		if node >= topo.Nodes() {
			return nil, fmt.Errorf("netmodel: allocated node %d outside %s topology (%d nodes)",
				node, topo.Name(), topo.Nodes())
		}
	}
	n := alloc.Size() * ppn
	m := &Model{Params: params, Env: env, Alloc: alloc, PPN: ppn,
		topo: topo, nodeOf: make([]int, n)}
	_, isDragonfly := topo.(dragonfly)
	if isDragonfly {
		m.rackOf = make([]int, n)
		m.pairOf = make([]int, n)
	}
	for r := 0; r < n; r++ {
		node := alloc.Nodes[r/ppn]
		m.nodeOf[r] = node
		if isDragonfly {
			m.rackOf[r] = alloc.Machine.RackOf(node)
			m.pairOf[r] = alloc.Machine.PairOf(m.rackOf[r])
		}
	}
	if env.HeteroEvery > 0 {
		m.slowOf = make([]float64, n)
		for r := 0; r < n; r++ {
			if (r/ppn+1)%env.HeteroEvery == 0 {
				m.slowOf[r] = env.HeteroFactor
			} else {
				m.slowOf[r] = 1
			}
		}
	}
	return m, nil
}

// Topology returns the interconnect topology the model prices paths on.
func (m *Model) Topology() Topology { return m.topo }

// Ranks returns the total number of ranks in the job.
func (m *Model) Ranks() int { return len(m.nodeOf) }

// NodeOf returns the physical node hosting a rank.
func (m *Model) NodeOf(rank int) int { return m.nodeOf[rank] }

// Classify returns the path class between two ranks.
func (m *Model) Classify(a, b int) PathClass {
	if m.nodeOf[a] == m.nodeOf[b] {
		return IntraNode
	}
	if m.rackOf != nil { // Dragonfly fast path: precomputed per-rank groups
		switch {
		case m.rackOf[a] == m.rackOf[b]:
			return IntraRack
		case m.pairOf[a] == m.pairOf[b]:
			return RackPair
		default:
			return Global
		}
	}
	return m.topo.ClassBetween(m.nodeOf[a], m.nodeOf[b])
}

// Transfer returns the wire time in microseconds for a message of the
// given size between two ranks: alpha + bytes/beta, with the job's
// dynamic factors applied to network (non-intra-node) paths.
func (m *Model) Transfer(from, to int, bytes int) float64 {
	c := m.Classify(from, to)
	alpha := m.Params.Latency[c]
	bw := m.Params.Bandwidth[c]
	if c != IntraNode {
		alpha *= m.Env.LatencyFactor
		bw /= m.Env.BandwidthFactor
	}
	// Zero-byte messages are pure control traffic — no payload, no
	// pipeline to misalign — so they pay plain alpha.
	if bytes > 0 && !isP2(bytes) {
		bw /= m.Params.NonP2Penalty
		alpha *= m.Params.NonP2Alpha
	}
	t := alpha + float64(bytes)/bw
	// Heterogeneous node speed: any path touching a slow node (even
	// intra-node shared memory) drains at that node's pace. max keeps
	// Transfer symmetric in direction.
	if m.slowOf != nil {
		t *= math.Max(m.slowOf[from], m.slowOf[to])
	}
	return t
}

// SendOverhead returns the CPU time the sender spends injecting one
// message (independent of destination).
func (m *Model) SendOverhead() float64 { return m.Params.SendOverhead }

// ReduceCost returns the CPU time to combine bytes of reduction
// operands, including the non-P2 alignment penalty.
func (m *Model) ReduceCost(bytes int) float64 {
	rate := m.Params.ReduceRate
	if !isP2(bytes) {
		rate /= m.Params.NonP2Penalty
	}
	return float64(bytes) / rate
}

// CopyCost returns the CPU time to copy bytes locally, including the
// non-P2 alignment penalty.
func (m *Model) CopyCost(bytes int) float64 {
	rate := m.Params.CopyRate
	if !isP2(bytes) {
		rate /= m.Params.NonP2Penalty
	}
	return float64(bytes) / rate
}

// Noise draws one multiplicative noise factor (mean 1) for a measured
// time, using the job's noise sigma. Not safe for concurrent use of the
// same rng.
func (m *Model) Noise(rng *rand.Rand) float64 {
	f := 1 + rng.NormFloat64()*m.Env.NoiseSigma
	if f < 0.5 {
		f = 0.5
	}
	return f
}
