package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acclaim/internal/cluster"
)

func mustModel(t *testing.T, ppn int, alloc cluster.Allocation) *Model {
	t.Helper()
	m, err := New(DefaultParams(), DefaultEnv(), alloc, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamOrdering(t *testing.T) {
	p := DefaultParams()
	// Latency must increase and bandwidth decrease with layer distance.
	for c := IntraNode; c < Global; c++ {
		if p.Latency[c] >= p.Latency[c+1] {
			t.Errorf("latency not increasing at %v", c)
		}
		if p.Bandwidth[c] <= p.Bandwidth[c+1] {
			t.Errorf("bandwidth not decreasing at %v", c)
		}
	}
}

func TestClassify(t *testing.T) {
	// Machine with 4-node racks: nodes 0-3 rack 0, 4-7 rack 1 (pair 0),
	// 8-11 rack 2 (pair 1).
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, 2, alloc) // ranks 2i, 2i+1 on node i
	cases := []struct {
		a, b int
		want PathClass
	}{
		{0, 1, IntraNode}, // same node 0
		{0, 2, IntraRack}, // nodes 0,1: same rack
		{0, 8, RackPair},  // nodes 0,4: racks 0,1 -> same pair
		{0, 16, Global},   // nodes 0,8: racks 0,2 -> different pairs
		{17, 16, IntraNode},
	}
	for _, c := range cases {
		if got := m.Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTransferMonotoneInDistance(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 12)
	m := mustModel(t, 2, alloc)
	const bytes = 4096
	intra := m.Transfer(0, 1, bytes)
	rack := m.Transfer(0, 2, bytes)
	pair := m.Transfer(0, 8, bytes)
	global := m.Transfer(0, 16, bytes)
	if !(intra < rack && rack < pair && pair < global) {
		t.Errorf("transfer times not ordered: %v %v %v %v", intra, rack, pair, global)
	}
}

// Property: transfer time is symmetric in direction, positive, and
// strictly increasing in message size within a P2 class. Across the
// P2/non-P2 boundary monotonicity deliberately breaks: the model's
// alignment penalty means a 3072-byte message can cost more than a
// 4096-byte one (the cliff ACCLAiM's Section IV-B exists to learn), so
// the growth property only applies when both sizes share the penalty.
func TestTransferProperties(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 16)
	m := mustModel(t, 4, alloc)
	n := m.Ranks()
	f := func(ra, rb uint16, sz uint16) bool {
		a, b := int(ra)%n, int(rb)%n
		if a == b {
			return true
		}
		small := int(sz)
		t1 := m.Transfer(a, b, small)
		t2 := m.Transfer(a, b, small+1024)
		sym := m.Transfer(b, a, small)
		if t1 != sym || t1 <= 0 {
			return false
		}
		if small > 0 && isP2(small) != isP2(small+1024) {
			// Exemption: the two sizes sit on opposite sides of the
			// P2/non-P2 alignment cliff (NonP2Penalty/NonP2Alpha), where
			// the smaller-but-misaligned message can legitimately cost
			// more than the larger aligned one — that inversion is the
			// behaviour ACCLAiM's non-P2 training points exist to learn
			// (Section IV-B), not a model bug, so no ordering is asserted.
			return true
		}
		return t2 > t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTransferNonP2Cliff pins the cliff itself: a non-P2 message may
// cost more than the next P2 size up, and the penalty applies exactly
// when the size is not a power of two.
func TestTransferNonP2Cliff(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 16)
	m := mustModel(t, 4, alloc)
	if p2, nonP2 := m.Transfer(0, 2, 4096), m.Transfer(0, 2, 3072); nonP2 <= p2 {
		t.Errorf("non-P2 3072B transfer (%v) not above P2 4096B (%v)", nonP2, p2)
	}
}

func TestEnvScalesNetworkOnly(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 8)
	calm, _ := New(DefaultParams(), DefaultEnv(), alloc, 2)
	congested, _ := New(DefaultParams(), Env{LatencyFactor: 2.5, BandwidthFactor: 1.5, NoiseSigma: 0}, alloc, 2)
	// Intra-node transfers are unaffected by the environment.
	if a, b := calm.Transfer(0, 1, 1024), congested.Transfer(0, 1, 1024); a != b {
		t.Errorf("intra-node transfer affected by env: %v vs %v", a, b)
	}
	// Network transfers must get slower.
	if a, b := calm.Transfer(0, 2, 1024), congested.Transfer(0, 2, 1024); b <= a {
		t.Errorf("network transfer not slowed by env: %v vs %v", a, b)
	}
}

func TestSampleEnvSpreadAndVariation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	compact := cluster.TopologySingleRack()
	scattered := cluster.TopologyMaxParallel()
	// Averaged over draws, scattered allocations must have higher
	// latency factors than compact ones.
	var sumC, sumS float64
	const draws = 200
	for i := 0; i < draws; i++ {
		sumC += SampleEnv(rng, compact).LatencyFactor
		sumS += SampleEnv(rng, scattered).LatencyFactor
	}
	if sumS <= sumC {
		t.Errorf("scattered mean latency factor %v <= compact %v", sumS/draws, sumC/draws)
	}
	// The paper reports >2x variation across jobs; our sampler must be
	// able to produce a 2x range across allocations and draws.
	lo, hi := 99.0, 0.0
	for i := 0; i < draws; i++ {
		f := SampleEnv(rng, scattered).LatencyFactor
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	loC := 99.0
	for i := 0; i < draws; i++ {
		if f := SampleEnv(rng, compact).LatencyFactor; f < loC {
			loC = f
		}
	}
	if hi/loC < 2 {
		t.Errorf("latency factor range %v–%v (<2x): cannot reproduce paper's variation", loC, hi)
	}
}

func TestSampleEnvValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		e := SampleEnv(rng, cluster.TopologyRackPair())
		if err := e.Validate(); err != nil {
			t.Fatalf("sampled env invalid: %v", err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 0, 4)
	if _, err := New(DefaultParams(), DefaultEnv(), alloc, 0); err == nil {
		t.Error("ppn=0 should fail")
	}
	if _, err := New(DefaultParams(), DefaultEnv(), alloc, 1000); err == nil {
		t.Error("ppn > cores should fail")
	}
	if _, err := New(DefaultParams(), Env{LatencyFactor: 0.5, BandwidthFactor: 1}, alloc, 2); err == nil {
		t.Error("latency factor < 1 should fail")
	}
	if _, err := New(Params{}, DefaultEnv(), alloc, 2); err == nil {
		t.Error("zero params should fail")
	}
}

func TestRanksAndNodeOf(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 2, 4)
	m := mustModel(t, 3, alloc)
	if m.Ranks() != 12 {
		t.Errorf("Ranks = %d, want 12", m.Ranks())
	}
	if m.NodeOf(0) != 2 || m.NodeOf(3) != 3 || m.NodeOf(11) != 5 {
		t.Errorf("NodeOf mapping wrong: %d %d %d", m.NodeOf(0), m.NodeOf(3), m.NodeOf(11))
	}
}

func TestCostHelpers(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 0, 2)
	m := mustModel(t, 1, alloc)
	if m.ReduceCost(4000) <= 0 || m.CopyCost(12000) <= 0 {
		t.Error("cost helpers must be positive")
	}
	if m.ReduceCost(8000) != 2*m.ReduceCost(4000) {
		t.Error("ReduceCost must be linear")
	}
	if m.SendOverhead() <= 0 {
		t.Error("SendOverhead must be positive")
	}
}

func TestNoiseBounded(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 0, 2)
	m := mustModel(t, 1, alloc)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		f := m.Noise(rng)
		if f < 0.5 {
			t.Fatalf("noise factor %v below floor", f)
		}
	}
}

func TestNonP2Penalty(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 0, 2)
	m := mustModel(t, 1, alloc)
	// A non-P2 transfer must cost more per byte than the surrounding P2
	// sizes predict by interpolation.
	t16k := m.Transfer(0, 1, 16384)
	t32k := m.Transfer(0, 1, 32768)
	t24k := m.Transfer(0, 1, 24576) // halfway, non-P2
	interp := (t16k + t32k) / 2
	if t24k <= interp {
		t.Errorf("non-P2 transfer %v not above P2 interpolation %v", t24k, interp)
	}
	// Same for reduce and copy costs.
	if m.ReduceCost(24576) <= (m.ReduceCost(16384)+m.ReduceCost(32768))/2 {
		t.Error("non-P2 reduce cost not penalized")
	}
	if m.CopyCost(24576) <= (m.CopyCost(16384)+m.CopyCost(32768))/2 {
		t.Error("non-P2 copy cost not penalized")
	}
}

func TestNonP2PenaltyValidation(t *testing.T) {
	p := DefaultParams()
	p.NonP2Penalty = 0.5
	if err := p.Validate(); err == nil {
		t.Error("NonP2Penalty < 1 should fail validation")
	}
}
