// Topology abstraction: the paper's machine is an Aries Dragonfly
// (Figure 8), but the "scenario diversity" extension reproduces the
// same experiments on fat-tree and 3D-torus machines. A Topology maps a
// pair of physical nodes to the PathClass whose Hockney parameters
// price the transfer; everything above the Model (collectives, tuners,
// rule serving) is topology-blind.

package netmodel

import (
	"errors"
	"fmt"

	"acclaim/internal/cluster"
)

// Topology describes how an interconnect wires physical nodes together.
// ClassBetween must be symmetric and is only called with two distinct
// node IDs (same-node traffic is IntraNode by definition and handled by
// the Model before the topology is consulted).
type Topology interface {
	// Name identifies the topology for CLI flags and run reports.
	Name() string
	// Nodes returns how many physical nodes the topology wires up;
	// allocations must stay inside [0, Nodes).
	Nodes() int
	// ClassBetween classifies the path between two distinct nodes.
	ClassBetween(a, b int) PathClass
}

// dragonfly is the paper's simplified Aries machine: racks form layer 1,
// paired racks share a layer-2 link, and rack pairs meet on the global
// layer. It reproduces Model's historical classification exactly.
type dragonfly struct{ m cluster.Machine }

// Dragonfly wraps a cluster.Machine in the Figure 8 three-layer
// classification. It is the default topology of New.
func Dragonfly(m cluster.Machine) Topology { return dragonfly{m} }

func (d dragonfly) Name() string { return "dragonfly" }
func (d dragonfly) Nodes() int   { return d.m.Nodes }

func (d dragonfly) ClassBetween(a, b int) PathClass {
	ra, rb := d.m.RackOf(a), d.m.RackOf(b)
	switch {
	case ra == rb:
		return IntraRack
	case d.m.PairOf(ra) == d.m.PairOf(rb):
		return RackPair
	default:
		return Global
	}
}

// fatTree is a three-tier fat-tree: nodes hang off leaf switches, leaves
// group into pods behind aggregation switches, and pods meet at the
// core. Same leaf → IntraRack, same pod → RackPair, across pods →
// Global. With two leaves per pod it degenerates to the Dragonfly
// classification (leaf = rack, pod = rack pair), which the parity test
// pins.
type fatTree struct {
	nodes   int
	perLeaf int // nodes per leaf switch
	perPod  int // nodes per pod = perLeaf * leavesPerPod
}

// FatTree builds a fat-tree over the given node count with nodesPerLeaf
// nodes under each leaf switch and leavesPerPod leaves in each pod.
func FatTree(nodes, nodesPerLeaf, leavesPerPod int) (Topology, error) {
	if nodes <= 0 || nodesPerLeaf <= 0 || leavesPerPod <= 0 {
		return nil, errors.New("netmodel: fat-tree dimensions must be positive")
	}
	return fatTree{nodes: nodes, perLeaf: nodesPerLeaf, perPod: nodesPerLeaf * leavesPerPod}, nil
}

func (f fatTree) Name() string { return "fat-tree" }
func (f fatTree) Nodes() int   { return f.nodes }

func (f fatTree) ClassBetween(a, b int) PathClass {
	switch {
	case a/f.perLeaf == b/f.perLeaf:
		return IntraRack
	case a/f.perPod == b/f.perPod:
		return RackPair
	default:
		return Global
	}
}

// torus3D is a 3D torus (wrap-around mesh): node n sits at coordinates
// (n mod x, n/x mod y, n/(x*y)). Distance is the minimal hop count with
// wrap-around per dimension; direct neighbours (1 hop) are IntraRack,
// near nodes (≤3 hops) RackPair, and everything farther Global —
// distance buckets rather than membership groups, which is what makes
// the torus classification genuinely different from the switch
// hierarchies above.
type torus3D struct{ x, y, z int }

// Torus3D builds an x×y×z torus. All dimensions must be positive and
// the torus must have at least two nodes.
func Torus3D(x, y, z int) (Topology, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, errors.New("netmodel: torus dimensions must be positive")
	}
	if x*y*z < 2 {
		return nil, errors.New("netmodel: torus needs at least two nodes")
	}
	return torus3D{x: x, y: y, z: z}, nil
}

func (t torus3D) Name() string { return "torus" }
func (t torus3D) Nodes() int   { return t.x * t.y * t.z }

// wrapDist is the minimal ring distance between coordinates on a
// dimension of the given size.
func wrapDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := size - d; w < d {
		d = w
	}
	return d
}

// hops returns the minimal hop count between two nodes.
func (t torus3D) hops(a, b int) int {
	ax, ay, az := a%t.x, (a/t.x)%t.y, a/(t.x*t.y)
	bx, by, bz := b%t.x, (b/t.x)%t.y, b/(t.x*t.y)
	return wrapDist(ax, bx, t.x) + wrapDist(ay, by, t.y) + wrapDist(az, bz, t.z)
}

func (t torus3D) ClassBetween(a, b int) PathClass {
	switch h := t.hops(a, b); {
	case h <= 1:
		return IntraRack
	case h <= 3:
		return RackPair
	default:
		return Global
	}
}

// TopologyNames lists the names TopologyByName accepts, in stable order.
func TopologyNames() []string { return []string{"dragonfly", "fat-tree", "torus"} }

// TopologyByName resolves a CLI topology name against a machine. The
// fat-tree keeps the machine's rack size as its leaf size with four
// leaves per pod; the torus is the smallest cube covering the machine's
// node count. Unknown names return an error listing the valid ones.
func TopologyByName(name string, m cluster.Machine) (Topology, error) {
	switch name {
	case "dragonfly", "":
		return Dragonfly(m), nil
	case "fat-tree", "fattree":
		return FatTree(m.Nodes, m.NodesPerRack, 4)
	case "torus", "torus3d":
		side := 1
		for side*side*side < m.Nodes {
			side++
		}
		return Torus3D(side, side, side)
	default:
		return nil, fmt.Errorf("netmodel: unknown topology %q (valid: %v)", name, TopologyNames())
	}
}
