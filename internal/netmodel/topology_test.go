package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acclaim/internal/cluster"
)

func mustFatTree(t *testing.T, nodes, perLeaf, leavesPerPod int) Topology {
	t.Helper()
	topo, err := FatTree(nodes, perLeaf, leavesPerPod)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mustTorus(t *testing.T, x, y, z int) Topology {
	t.Helper()
	topo, err := Torus3D(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func modelOn(t *testing.T, topo Topology, nodes, ppn int) *Model {
	t.Helper()
	mach := cluster.Machine{Nodes: topo.Nodes(), NodesPerRack: 4, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithTopology(DefaultParams(), DefaultEnv(), alloc, ppn, topo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFatTreeClasses(t *testing.T) {
	// 4 nodes per leaf, 2 leaves per pod: nodes 0-3 leaf 0, 4-7 leaf 1
	// (pod 0), 8-11 leaf 2 (pod 1).
	ft := mustFatTree(t, 64, 4, 2)
	cases := []struct {
		a, b int
		want PathClass
	}{
		{0, 3, IntraRack}, // same leaf
		{0, 4, RackPair},  // same pod, different leaf
		{0, 8, Global},    // different pods
	}
	for _, c := range cases {
		if got := ft.ClassBetween(c.a, c.b); got != c.want {
			t.Errorf("fat-tree ClassBetween(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTorusClasses(t *testing.T) {
	// 4x4x4 torus: node n at (n%4, n/4%4, n/16).
	to := mustTorus(t, 4, 4, 4)
	cases := []struct {
		a, b int
		want PathClass
	}{
		{0, 1, IntraRack},  // 1 hop on x
		{0, 4, IntraRack},  // 1 hop on y
		{0, 16, IntraRack}, // 1 hop on z
		{0, 3, IntraRack},  // wrap-around: (0,0,0)-(3,0,0) is 1 hop
		{0, 5, RackPair},   // (0,0,0)-(1,1,0): 2 hops
		{0, 21, RackPair},  // (0,0,0)-(1,1,1): 3 hops
		{0, 42, Global},    // (0,0,0)-(2,2,2): 6 hops
	}
	for _, c := range cases {
		if got := to.ClassBetween(c.a, c.b); got != c.want {
			t.Errorf("torus ClassBetween(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestClassBetweenSymmetry: for every topology, path classification is
// symmetric in its endpoints — the bisection-pair property the transfer
// cost model relies on for symmetric times.
func TestClassBetweenSymmetry(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	topos := []Topology{
		Dragonfly(mach),
		mustFatTree(t, 64, 4, 4),
		mustTorus(t, 4, 4, 4),
	}
	for _, topo := range topos {
		n := topo.Nodes()
		f := func(ra, rb uint16) bool {
			a, b := int(ra)%n, int(rb)%n
			if a == b {
				return true
			}
			return topo.ClassBetween(a, b) == topo.ClassBetween(b, a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestFatTreeDragonflyParity: a fat-tree with two leaves per pod is the
// degenerate configuration where leaf = rack and pod = rack pair, so it
// must classify every node pair exactly like the Dragonfly model.
func TestFatTreeDragonflyParity(t *testing.T) {
	mach := cluster.Machine{Nodes: 48, NodesPerRack: 4, CoresPerNode: 64}
	df := Dragonfly(mach)
	ft := mustFatTree(t, mach.Nodes, mach.NodesPerRack, 2)
	for a := 0; a < mach.Nodes; a++ {
		for b := 0; b < mach.Nodes; b++ {
			if a == b {
				continue
			}
			if got, want := ft.ClassBetween(a, b), df.ClassBetween(a, b); got != want {
				t.Fatalf("degenerate fat-tree disagrees with dragonfly at (%d,%d): %v vs %v", a, b, got, want)
			}
		}
	}
}

// TestTopologyTransferMonotone: on every topology, transfer time is
// positive, symmetric, and strictly increasing in message size as long
// as both sizes share the same P2-alignment regime (the cliff exemption
// documented at TestTransferProperties).
func TestTopologyTransferMonotone(t *testing.T) {
	for _, topo := range []Topology{
		mustFatTree(t, 64, 4, 4),
		mustTorus(t, 4, 4, 4),
	} {
		m := modelOn(t, topo, 16, 2)
		n := m.Ranks()
		f := func(ra, rb uint16, sz uint16) bool {
			a, b := int(ra)%n, int(rb)%n
			if a == b {
				return true
			}
			small := int(sz)
			t1 := m.Transfer(a, b, small)
			if t1 <= 0 || t1 != m.Transfer(b, a, small) {
				return false
			}
			if small > 0 && isP2(small) != isP2(small+1024) {
				return true // P2 alignment cliff: no ordering guaranteed
			}
			return m.Transfer(a, b, small+1024) > t1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestTopologyClassOrderedCost: farther path classes cost more on every
// topology (the Params ordering surfaces through any classification).
func TestTopologyClassOrderedCost(t *testing.T) {
	for _, topo := range []Topology{
		mustFatTree(t, 64, 4, 4),
		mustTorus(t, 4, 4, 4),
	} {
		m := modelOn(t, topo, 32, 2)
		n := m.Ranks()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if a == b || a == c {
				continue
			}
			if m.Classify(a, b) < m.Classify(a, c) &&
				m.Transfer(a, b, 4096) >= m.Transfer(a, c, 4096) {
				t.Fatalf("%s: class %v not cheaper than %v", topo.Name(), m.Classify(a, b), m.Classify(a, c))
			}
		}
	}
}

func TestTopologyByName(t *testing.T) {
	mach := cluster.Machine{Nodes: 100, NodesPerRack: 8, CoresPerNode: 64}
	for _, name := range TopologyNames() {
		topo, err := TopologyByName(name, mach)
		if err != nil {
			t.Fatalf("TopologyByName(%q): %v", name, err)
		}
		if topo.Name() != name {
			t.Errorf("TopologyByName(%q).Name() = %q", name, topo.Name())
		}
		if topo.Nodes() < mach.Nodes {
			t.Errorf("%s covers %d nodes, machine has %d", name, topo.Nodes(), mach.Nodes)
		}
	}
	if _, err := TopologyByName("hypercube", mach); err == nil {
		t.Error("unknown topology name should fail")
	}
	// The empty name is the unset CLI flag: default Dragonfly.
	topo, err := TopologyByName("", mach)
	if err != nil || topo.Name() != "dragonfly" {
		t.Errorf("empty name: %v, %v", topo, err)
	}
}

func TestTopologyConstructorValidation(t *testing.T) {
	if _, err := FatTree(0, 4, 2); err == nil {
		t.Error("fat-tree with no nodes should fail")
	}
	if _, err := FatTree(16, -1, 2); err == nil {
		t.Error("negative leaf size should fail")
	}
	if _, err := Torus3D(0, 4, 4); err == nil {
		t.Error("zero torus dimension should fail")
	}
	if _, err := Torus3D(1, 1, 1); err == nil {
		t.Error("single-node torus should fail")
	}
}

func TestNewWithTopologyBounds(t *testing.T) {
	alloc, _ := cluster.Contiguous(cluster.Bebop(), 60, 4) // nodes 60-63
	small := mustTorus(t, 2, 2, 2)                         // only 8 nodes
	if _, err := NewWithTopology(DefaultParams(), DefaultEnv(), alloc, 2, small); err == nil {
		t.Error("allocation outside topology should fail")
	}
	big := mustTorus(t, 5, 5, 6)
	if _, err := NewWithTopology(DefaultParams(), DefaultEnv(), alloc, 2, big); err != nil {
		t.Errorf("allocation inside topology failed: %v", err)
	}
}

// TestDragonflyDefaultParity: New and NewWithTopology(nil) must classify
// and price identically — the topology seam cannot shift the paper's
// baseline results.
func TestDragonflyDefaultParity(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 12)
	a, err := New(DefaultParams(), DefaultEnv(), alloc, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithTopology(DefaultParams(), DefaultEnv(), alloc, 2, Dragonfly(mach))
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology().Name() != "dragonfly" {
		t.Errorf("default topology = %s", a.Topology().Name())
	}
	for x := 0; x < a.Ranks(); x++ {
		for y := 0; y < a.Ranks(); y++ {
			if x == y {
				continue
			}
			if a.Classify(x, y) != b.Classify(x, y) {
				t.Fatalf("Classify(%d,%d) differs between New and explicit Dragonfly", x, y)
			}
			if a.Transfer(x, y, 1024) != b.Transfer(x, y, 1024) {
				t.Fatalf("Transfer(%d,%d) differs between New and explicit Dragonfly", x, y)
			}
		}
	}
}

func TestHeteroNodeSpeed(t *testing.T) {
	mach := cluster.Machine{Nodes: 64, NodesPerRack: 4, CoresPerNode: 64}
	alloc, _ := cluster.Contiguous(mach, 0, 8)
	env := DefaultEnv()
	env.HeteroEvery = 4 // allocated nodes 3 and 7 are slow
	env.HeteroFactor = 3
	slow, err := New(DefaultParams(), env, alloc, 2)
	if err != nil {
		t.Fatal(err)
	}
	calm, _ := New(DefaultParams(), DefaultEnv(), alloc, 2)

	// Ranks 6,7 live on allocated node 3 (slow); ranks 0-5 on fast nodes.
	if got, want := slow.Transfer(0, 6, 1024), 3*calm.Transfer(0, 6, 1024); got != want {
		t.Errorf("slow-endpoint transfer = %v, want %v", got, want)
	}
	if got, want := slow.Transfer(0, 2, 1024), calm.Transfer(0, 2, 1024); got != want {
		t.Errorf("fast-pair transfer changed: %v vs %v", got, want)
	}
	// Symmetry survives heterogeneity.
	if slow.Transfer(6, 0, 1024) != slow.Transfer(0, 6, 1024) {
		t.Error("hetero transfer not symmetric")
	}
	// Intra-node traffic on a slow node is slow too.
	if got, want := slow.Transfer(6, 7, 1024), 3*calm.Transfer(6, 7, 1024); got != want {
		t.Errorf("slow intra-node transfer = %v, want %v", got, want)
	}
}

func TestHeteroEnvValidation(t *testing.T) {
	e := DefaultEnv()
	e.HeteroEvery = -1
	if err := e.Validate(); err == nil {
		t.Error("negative HeteroEvery should fail")
	}
	e = DefaultEnv()
	e.HeteroEvery = 4
	e.HeteroFactor = 0.5
	if err := e.Validate(); err == nil {
		t.Error("HeteroFactor < 1 should fail")
	}
	e.HeteroFactor = 2
	if err := e.Validate(); err != nil {
		t.Errorf("valid hetero env rejected: %v", err)
	}
}
