package obs

import "testing"

// These benchmarks feed the benchguard baseline; the allocs/op entries
// are pinned at exactly zero there, which benchguard treats as a hard
// gate — any allocation on these paths fails CI.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1.0)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefTimeBuckets...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100000))
	}
}

// BenchmarkNopRecorderRound is the span shape of one tuner round under
// the default recorder: the price instrumented control loops pay when
// nobody is tracing.
func BenchmarkNopRecorderRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		round := Nop.StartSpan("round", NoSpan)
		fit := Nop.StartSpan("fit", round)
		Nop.EndSpan(fit)
		Nop.SetAttr(round, "samples", float64(i))
		Nop.EndSpan(round)
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.StartSpan("round", NoSpan)
		tr.EndSpan(id)
	}
}
