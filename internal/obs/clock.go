package obs

import "time"

// clockEpoch anchors NowNs. A fixed process epoch keeps the values
// small and monotonic (time.Since uses the monotonic clock), which is
// all instrumentation needs: every consumer takes differences or feeds
// *_ns histograms.
var clockEpoch = time.Now()

// NowNs returns the host instrumentation clock: monotonic nanoseconds
// since process start. It is the single seam through which the
// deterministic tuning packages (core, forest, ...) may read host time —
// acclaim-lint's determinism analyzer forbids time.Now there, so that a
// wall-clock read feeding a tuning *decision* cannot land without
// tripping CI, while duration metrics keep flowing. Observations built
// from NowNs differences are host time and must land in metrics ending
// in _ns (the metricname analyzer enforces the suffix; the run-report
// golden normalises on it).
//
//acclaim:zeroalloc
func NowNs() int64 { return int64(time.Since(clockEpoch)) }
