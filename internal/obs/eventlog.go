package obs

import (
	"io"
	"strconv"
	"sync"
)

// EventLog is a bounded structured trace exporter: spans and events are
// written as one JSON object per line (JSONL) the moment they happen,
// so traces leave the process while it runs instead of living only in
// the -run-report snapshot. It implements Recorder, so it can replace —
// or, through Tee, ride alongside — the in-memory Trace.
//
// Three properties shape it:
//
//   - Byte-stable output. Lines are hand-encoded with a fixed field
//     order and strconv formatting (no map iteration, no
//     encoding/json), so a run under an injected deterministic clock
//     produces identical bytes every time — the golden-test contract
//     every exporter in this repository honours.
//   - Bounded. A size cap (maxBytes) stops the log growing without
//     limit on a long-lived server; once reached, further lines are
//     dropped and counted, never silently lost. A write error likewise
//     stops output and counts every subsequent line as dropped.
//   - Lock-cheap. One mutex guards a reused append buffer and the
//     writer; the critical section is encode-and-write of a single
//     short line. Span events come from control loops (tuning rounds,
//     load-generator phases), not per-call hot paths.
type EventLog struct {
	mu      sync.Mutex
	w       io.Writer    // guarded by mu
	now     func() int64 // guarded by mu (set once at construction, read under lock)
	buf     []byte       // guarded by mu (reused line buffer)
	written int64        // guarded by mu (bytes successfully written)
	err     error        // guarded by mu (first write error; output stops after it)
	nextID  SpanID       // guarded by mu
	max     int64

	events  Counter // lines written
	dropped Counter // lines dropped (size cap or write error)
}

// DefaultEventLogBytes is the size cap NewEventLog applies when the
// caller passes maxBytes <= 0: large enough for any tuning run, small
// enough that a forgotten event log cannot fill a disk.
const DefaultEventLogBytes = 64 << 20

// NewEventLog returns an event log writing to w, capped at maxBytes
// (DefaultEventLogBytes if <= 0), stamping lines with the host
// instrumentation clock.
func NewEventLog(w io.Writer, maxBytes int64) *EventLog {
	return NewEventLogWithClock(w, maxBytes, NowNs)
}

// NewEventLogWithClock is NewEventLog with a caller-supplied clock
// (nanoseconds since an arbitrary epoch) — tests inject a deterministic
// tick so the exported bytes are stable.
func NewEventLogWithClock(w io.Writer, maxBytes int64, now func() int64) *EventLog {
	if maxBytes <= 0 {
		maxBytes = DefaultEventLogBytes
	}
	return &EventLog{w: w, now: now, max: maxBytes}
}

// Attr is one key/value attribute on an event line.
type Attr struct {
	Key   string
	Value float64
}

// StartSpan implements Recorder: emits a span_start line and returns
// the span's id.
func (l *EventLog) StartSpan(name string, parent SpanID) SpanID {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	id := l.nextID
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"ev":"span_start","t_ns":`...)
	l.buf = strconv.AppendInt(l.buf, l.now(), 10)
	l.buf = append(l.buf, `,"id":`...)
	l.buf = strconv.AppendInt(l.buf, int64(id), 10)
	if parent != NoSpan {
		l.buf = append(l.buf, `,"parent":`...)
		l.buf = strconv.AppendInt(l.buf, int64(parent), 10)
	}
	l.buf = append(l.buf, `,"name":`...)
	l.buf = strconv.AppendQuote(l.buf, name)
	l.buf = append(l.buf, '}', '\n')
	l.flushLine()
	return id
}

// EndSpan implements Recorder: emits a span_end line. Ending NoSpan is
// a no-op.
func (l *EventLog) EndSpan(id SpanID) {
	if id == NoSpan {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"ev":"span_end","t_ns":`...)
	l.buf = strconv.AppendInt(l.buf, l.now(), 10)
	l.buf = append(l.buf, `,"id":`...)
	l.buf = strconv.AppendInt(l.buf, int64(id), 10)
	l.buf = append(l.buf, '}', '\n')
	l.flushLine()
}

// SetAttr implements Recorder: emits an attr line bound to the span.
func (l *EventLog) SetAttr(id SpanID, key string, value float64) {
	if id == NoSpan {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"ev":"attr","id":`...)
	l.buf = strconv.AppendInt(l.buf, int64(id), 10)
	l.buf = append(l.buf, `,"key":`...)
	l.buf = strconv.AppendQuote(l.buf, key)
	l.buf = append(l.buf, `,"value":`...)
	l.buf = appendJSONFloat(l.buf, value)
	l.buf = append(l.buf, '}', '\n')
	l.flushLine()
}

// Event emits an instantaneous event line with the given attributes,
// in argument order (caller-fixed order keeps the bytes stable).
func (l *EventLog) Event(name string, attrs ...Attr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"ev":"event","t_ns":`...)
	l.buf = strconv.AppendInt(l.buf, l.now(), 10)
	l.buf = append(l.buf, `,"name":`...)
	l.buf = strconv.AppendQuote(l.buf, name)
	for _, a := range attrs {
		l.buf = append(l.buf, ',')
		l.buf = strconv.AppendQuote(l.buf, a.Key)
		l.buf = append(l.buf, ':')
		l.buf = appendJSONFloat(l.buf, a.Value)
	}
	l.buf = append(l.buf, '}', '\n')
	l.flushLine()
}

// appendJSONFloat formats a float for a JSON value position: shortest
// round-trip form, with the integer-valued common case rendered without
// an exponent.
func appendJSONFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// flushLine writes l.buf if the log is healthy and under its cap;
// otherwise it counts the line as dropped. Called with l.mu held.
//
//acclaim:allow lockcheck internal helper, every caller holds l.mu around the encode-and-flush
func (l *EventLog) flushLine() {
	if l.err != nil || l.written+int64(len(l.buf)) > l.max {
		l.dropped.Inc()
		return
	}
	n, err := l.w.Write(l.buf)
	l.written += int64(n)
	if err != nil {
		l.err = err
		l.dropped.Inc()
		return
	}
	l.events.Inc()
}

// Events returns the number of lines successfully written.
func (l *EventLog) Events() uint64 { return l.events.Load() }

// Dropped returns the number of lines dropped by the size cap or a
// write error.
func (l *EventLog) Dropped() uint64 { return l.dropped.Load() }

// BytesWritten returns the number of bytes successfully written.
func (l *EventLog) BytesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Err returns the first write error, if any.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Register exposes the event log's health counters on a metrics
// registry.
func (l *EventLog) Register(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Func("eventlog.lines_total", func() float64 { return float64(l.Events()) })
	reg.Func("eventlog.dropped_total", func() float64 { return float64(l.Dropped()) })
	reg.Func("eventlog.bytes_total", func() float64 { return float64(l.BytesWritten()) })
}

// teeRecorder fans span calls out to two recorders. The primary's span
// ids are the ones callers hold; the secondary's ids are mapped
// internally.
type teeRecorder struct {
	a, b Recorder
	mu   sync.Mutex
	ids  map[SpanID]SpanID // guarded by mu: primary id -> secondary id
}

// Tee returns a Recorder that forwards every span operation to both a
// and b (a's span ids are the ones returned). It lets cmd/acclaim keep
// the in-memory Trace for the run report while an EventLog streams the
// same spans to disk.
func Tee(a, b Recorder) Recorder {
	return &teeRecorder{a: a, b: b, ids: make(map[SpanID]SpanID)}
}

func (t *teeRecorder) StartSpan(name string, parent SpanID) SpanID {
	//acclaim:allow metricname pass-through fan-out: the caller's span name was already checked at its own StartSpan site
	ida := t.a.StartSpan(name, parent)
	t.mu.Lock()
	pb := t.ids[parent]
	t.mu.Unlock()
	//acclaim:allow metricname pass-through fan-out: same caller-supplied name forwarded to the secondary recorder
	idb := t.b.StartSpan(name, pb)
	t.mu.Lock()
	t.ids[ida] = idb
	t.mu.Unlock()
	return ida
}

func (t *teeRecorder) EndSpan(id SpanID) {
	t.a.EndSpan(id)
	t.mu.Lock()
	idb, ok := t.ids[id]
	delete(t.ids, id) // ended spans take no more attrs; bound the map
	t.mu.Unlock()
	if ok {
		t.b.EndSpan(idb)
	}
}

func (t *teeRecorder) SetAttr(id SpanID, key string, value float64) {
	t.a.SetAttr(id, key, value)
	t.mu.Lock()
	idb, ok := t.ids[id]
	t.mu.Unlock()
	if ok {
		t.b.SetAttr(idb, key, value)
	}
}
