package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// tickClock is the deterministic test clock: every call advances by a
// fixed step.
func tickClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

// TestEventLogByteStable pins the exact bytes a span timeline and an
// event produce under the injected clock — the exporter's whole value
// is that these lines are diffable across runs.
func TestEventLogByteStable(t *testing.T) {
	run := func() string {
		var b strings.Builder
		l := NewEventLogWithClock(&b, 1<<20, tickClock(10))
		root := l.StartSpan("tune:bcast", NoSpan)
		child := l.StartSpan("fit", root)
		l.SetAttr(child, "trees", 60)
		l.EndSpan(child)
		l.SetAttr(root, "variance", 0.25)
		l.EndSpan(root)
		l.Event("swap", Attr{"version", 2}, Attr{"rules", 128})
		return b.String()
	}
	got := run()
	want := `{"ev":"span_start","t_ns":10,"id":1,"name":"tune:bcast"}
{"ev":"span_start","t_ns":20,"id":2,"parent":1,"name":"fit"}
{"ev":"attr","id":2,"key":"trees","value":60}
{"ev":"span_end","t_ns":30,"id":2}
{"ev":"attr","id":1,"key":"variance","value":0.25}
{"ev":"span_end","t_ns":40,"id":1}
{"ev":"event","t_ns":50,"name":"swap","version":2,"rules":128}
`
	if got != want {
		t.Errorf("event log bytes:\n%q\nwant:\n%q", got, want)
	}
	if second := run(); second != got {
		t.Error("two identical runs produced different bytes")
	}
}

// TestEventLogSizeCap pins the bounded-export contract: lines beyond
// the cap are dropped and counted, and the written prefix stays intact
// (whole lines only, never a truncated one).
func TestEventLogSizeCap(t *testing.T) {
	var b strings.Builder
	l := NewEventLogWithClock(&b, 120, tickClock(1))
	for i := 0; i < 10; i++ {
		l.Event("fill")
	}
	if l.Dropped() == 0 {
		t.Fatal("no lines dropped despite cap")
	}
	if l.Events()+l.Dropped() != 10 {
		t.Errorf("events %d + dropped %d != 10", l.Events(), l.Dropped())
	}
	if int64(b.Len()) != l.BytesWritten() || int64(b.Len()) > 120 {
		t.Errorf("wrote %d bytes (reported %d), cap 120", b.Len(), l.BytesWritten())
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"ev":`) || !strings.HasSuffix(line, "}") {
			t.Errorf("partial line written: %q", line)
		}
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestEventLogWriteError(t *testing.T) {
	l := NewEventLogWithClock(&failWriter{n: 2}, 1<<20, tickClock(1))
	for i := 0; i < 5; i++ {
		l.Event("e")
	}
	if l.Events() != 2 || l.Dropped() != 3 {
		t.Errorf("events %d / dropped %d, want 2 / 3", l.Events(), l.Dropped())
	}
	if l.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestEventLogRegister(t *testing.T) {
	var b strings.Builder
	l := NewEventLogWithClock(&b, 1<<20, tickClock(1))
	reg := NewRegistry()
	l.Register(reg)
	l.Event("e")
	snap := reg.Snapshot()
	if snap["eventlog.lines_total"] != 1.0 || snap["eventlog.dropped_total"] != 0.0 {
		t.Errorf("registry view = %#v", snap)
	}
	if snap["eventlog.bytes_total"].(float64) != float64(b.Len()) {
		t.Errorf("bytes_total = %v, want %d", snap["eventlog.bytes_total"], b.Len())
	}
	l.Register(nil) // nil registry no-ops
}

func TestEventLogConcurrent(t *testing.T) {
	var b strings.Builder
	l := NewEventLog(&syncWriter{w: &b}, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := l.StartSpan("s", NoSpan)
				l.SetAttr(id, "k", float64(i))
				l.EndSpan(id)
				l.Event("e", Attr{"i", float64(i)})
			}
		}()
	}
	wg.Wait()
	if got := l.Events(); got != 8*200*4 {
		t.Errorf("events = %d, want %d", got, 8*200*4)
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"ev":`) || !strings.HasSuffix(line, "}") {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

// syncWriter serialises writes; strings.Builder alone is not safe for
// concurrent use and the EventLog already holds its own lock, so this
// only matters for the test's read-back.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestTeeRecorder pins the fan-out contract: both recorders see the
// same span structure (parent links included) even though their span
// ids differ, and attrs after EndSpan reach neither.
func TestTeeRecorder(t *testing.T) {
	trace := NewTraceWithClock(tickClock(1))
	var b strings.Builder
	l := NewEventLogWithClock(&b, 1<<20, tickClock(10))
	rec := Tee(trace, l)

	root := rec.StartSpan("root", NoSpan)
	child := rec.StartSpan("child", root)
	rec.SetAttr(child, "k", 7)
	rec.EndSpan(child)
	rec.EndSpan(root)
	rec.SetAttr(root, "late", 1) // after end: must not resurrect

	spans := trace.Spans()
	if len(spans) != 2 || spans[1].Parent != spans[0].ID {
		t.Fatalf("trace spans = %+v", spans)
	}
	out := b.String()
	for _, want := range []string{
		`"name":"root"`,
		`"parent":1`,
		`"key":"k"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("event log missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "late") {
		t.Errorf("attr after EndSpan leaked to event log:\n%s", out)
	}
}
