package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// HDR histogram geometry: a log-linear bucket grid over non-negative
// int64 values (the serving path records nanoseconds). Values below
// 2^hdrSubBits land in unit-width linear buckets; every octave above is
// split into 2^hdrSubBits equal sub-buckets, so the relative bucket
// width — and therefore the worst-case quantile error — is bounded by
// 2^-hdrSubBits (~3.1%) everywhere. Values at or above 2^hdrMaxExp
// (~18 minutes in nanoseconds) collapse into one overflow bucket.
const (
	hdrSubBits  = 5
	hdrSubCount = 1 << hdrSubBits
	hdrMaxExp   = 40
	// Linear region (hdrSubCount buckets) + (hdrMaxExp-hdrSubBits)
	// octaves of hdrSubCount sub-buckets + one overflow bucket.
	hdrNumBuckets = (hdrMaxExp-hdrSubBits+1)*hdrSubCount + 1
)

// hdrIndex maps a non-negative value to its bucket.
//
//acclaim:zeroalloc
func hdrIndex(v int64) int {
	if v < hdrSubCount {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v))
	if e >= hdrMaxExp {
		return hdrNumBuckets - 1
	}
	sub := int((v >> uint(e-hdrSubBits)) & (hdrSubCount - 1))
	return (e-hdrSubBits)*hdrSubCount + hdrSubCount + sub
}

// hdrUpper returns the inclusive upper bound of bucket i — the value
// Quantile reports for ranks landing in it.
func hdrUpper(i int) int64 {
	if i < hdrSubCount {
		return int64(i)
	}
	if i >= hdrNumBuckets-1 {
		return math.MaxInt64
	}
	u := i - hdrSubCount
	e := hdrSubBits + u/hdrSubCount
	sub := u % hdrSubCount
	return 1<<uint(e) + int64(sub+1)<<uint(e-hdrSubBits) - 1
}

// hdrWidth returns the width of bucket i (the quantile error bound the
// differential test asserts).
func hdrWidth(i int) int64 {
	if i < hdrSubCount {
		return 1
	}
	if i >= hdrNumBuckets-1 {
		return math.MaxInt64
	}
	e := hdrSubBits + (i-hdrSubCount)/hdrSubCount
	return 1 << uint(e-hdrSubBits)
}

// hdrRep is the representative value Sum reconstruction assigns to
// bucket i: the exact value in the unit-width linear region, the
// bucket midpoint in the log region (error <= half a bucket width,
// ~1.6% relative), and the conservative lower bound for the overflow
// bucket.
func hdrRep(i int) float64 {
	if i < hdrSubCount {
		return float64(i)
	}
	if i >= hdrNumBuckets-1 {
		return float64(int64(1) << hdrMaxExp)
	}
	return float64(hdrUpper(i)) - float64(hdrWidth(i)-1)/2
}

// HDRHistogram is a high-dynamic-range log-linear histogram for
// non-negative values (latencies in nanoseconds on the serving path):
// zero-alloc lock-free Observe, exact counts per ~3%-wide bucket, and
// Quantile answers exact within one bucket width. NaN and negative
// observations are rejected and counted in Dropped instead of
// corrupting a bucket. The zero value is ready to use; all methods are
// safe for concurrent use and nil receivers no-op.
//
// The observe path is a single atomic increment on the value's bucket
// — no separate count or sum word, which matters when the serving
// path brackets every lookup: one uncontended atomic RMW is the whole
// recording cost. Count is reconstructed exactly from the buckets at
// read time; Sum is reconstructed at bucket resolution (exact in the
// linear region, midpoint in the log region, so <= ~1.6% relative
// error — the same order as the quantile contract).
//
//acclaim:frozen
type HDRHistogram struct {
	counts  [hdrNumBuckets]atomic.Uint64
	dropped atomic.Uint64
}

// NewHDRHistogram returns an empty histogram.
func NewHDRHistogram() *HDRHistogram { return &HDRHistogram{} }

// ObserveNs records one non-negative integer observation (nanoseconds
// on latency paths). Negative values are dropped and counted.
//
//acclaim:zeroalloc
func (h *HDRHistogram) ObserveNs(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		h.dropped.Add(1)
		return
	}
	h.counts[hdrIndex(v)].Add(1)
}

// Observe records one value, rounding to the integer grid. NaN and
// negative values are dropped and counted, never binned.
//
//acclaim:zeroalloc
func (h *HDRHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v != v || v < 0 {
		h.dropped.Add(1)
		return
	}
	if v >= math.MaxInt64 {
		h.ObserveNs(math.MaxInt64)
		return
	}
	h.ObserveNs(int64(v))
}

// Count returns the total number of accepted observations
// (reconstructed exactly from the buckets).
func (h *HDRHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all accepted observations, reconstructed
// from the buckets at bucket resolution (see hdrRep).
func (h *HDRHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			sum += float64(c) * hdrRep(i)
		}
	}
	return sum
}

// Dropped returns the number of rejected (NaN or negative)
// observations.
func (h *HDRHistogram) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *HDRHistogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile returns the value at quantile q (0 < q <= 1) by
// nearest-rank over the bucket grid: the reported value is the upper
// bound of the bucket holding rank ceil(q*n), so it is never below the
// true sample quantile and never above it by more than one bucket
// width (~3.1% relative). Returns 0 with no observations.
func (h *HDRHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	// One consistent pass: copy the buckets, then rank over the copy,
	// so concurrent writers cannot push the target rank past the
	// cumulative walk.
	var counts [hdrNumBuckets]uint64
	var n uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		n += counts[i]
	}
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return float64(hdrUpper(i))
		}
	}
	return float64(hdrUpper(hdrNumBuckets - 1))
}

// Max returns the upper bound of the highest occupied bucket (0 when
// empty) — an upper estimate of the true maximum within one bucket
// width, with no extra cost on the observe path.
func (h *HDRHistogram) Max() float64 {
	if h == nil {
		return 0
	}
	for i := hdrNumBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return float64(hdrUpper(i))
		}
	}
	return 0
}

// HDRBucket is one occupied bucket of an HDR snapshot: Le is the
// bucket's inclusive upper bound, Count its (non-cumulative)
// occupancy.
type HDRBucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HDRSnapshot is a point-in-time copy of an HDR histogram with
// precomputed quantiles, as embedded in registry snapshots and run
// reports. Buckets is sparse — occupied buckets only, ascending by Le —
// and two snapshots taken on the same grid merge exactly.
type HDRSnapshot struct {
	Count   uint64      `json:"count"`
	Sum     float64     `json:"sum"`
	Dropped uint64      `json:"dropped,omitempty"`
	P50     float64     `json:"p50"`
	P90     float64     `json:"p90"`
	P99     float64     `json:"p99"`
	P999    float64     `json:"p999"`
	Max     float64     `json:"max"`
	Buckets []HDRBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Like
// Histogram.Snapshot, concurrent writers make this a consistent-enough
// view, not an atomic cut.
func (h *HDRHistogram) Snapshot() HDRSnapshot {
	if h == nil {
		return HDRSnapshot{}
	}
	s := HDRSnapshot{Dropped: h.dropped.Load()}
	for i := 0; i < hdrNumBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HDRBucket{Le: float64(hdrUpper(i)), Count: c})
			s.Count += c
			s.Sum += float64(c) * hdrRep(i)
		}
	}
	s.fillQuantiles()
	return s
}

// fillQuantiles recomputes the P50..Max fields from Buckets.
func (s *HDRSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	s.Max = 0
	if n := len(s.Buckets); n > 0 {
		s.Max = s.Buckets[n-1].Le
	}
}

// Quantile answers from the snapshot's sparse buckets with the same
// nearest-rank semantics as HDRHistogram.Quantile.
func (s HDRSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Le
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].Le
	}
	return 0
}

// Merge returns the combination of two snapshots taken on the same
// bucket grid (per-shard snapshots, or the same recorder at two
// times), with quantiles recomputed over the merged counts.
func (s HDRSnapshot) Merge(o HDRSnapshot) HDRSnapshot {
	out := HDRSnapshot{
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
		Dropped: s.Dropped + o.Dropped,
		Buckets: make([]HDRBucket, 0, len(s.Buckets)+len(o.Buckets)),
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, HDRBucket{Le: s.Buckets[i].Le, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	out.fillQuantiles()
	return out
}

// HDRRecorder shards an HDR histogram so that unbounded concurrent
// writers (every rank's rule lookup, every load-generator worker)
// never contend on one cache line. Record spreads writers across
// shards by the low bits of the caller's start timestamp — calls that
// begin in the same nanosecond are the only ones that can collide, a
// good approximation of per-P striping without thread-local state.
// Reads merge all shards. The zero value is not usable; call
// NewHDRRecorder. Nil receivers no-op.
//
//acclaim:frozen
type HDRRecorder struct {
	shards []HDRHistogram
	mask   uint64
}

// NewHDRRecorder builds a recorder with the given shard count rounded
// up to a power of two; shards <= 0 picks one shard per GOMAXPROCS
// (capped at 64), the configuration the rule server uses.
func NewHDRRecorder(shards int) *HDRRecorder {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 64 {
			shards = 64
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &HDRRecorder{shards: make([]HDRHistogram, n), mask: uint64(n - 1)}
}

// Record stores one latency observation (nanoseconds), sharded by the
// observation's start timestamp. Negative latencies (clock retreat)
// are dropped and counted.
//
//acclaim:zeroalloc
func (r *HDRRecorder) Record(startNs, latencyNs int64) {
	if r == nil {
		return
	}
	// Hand-inlined ObserveNs: the shard count is a power of two, so
	// masking by len-1 lets the compiler drop the bounds check, and the
	// whole accepted path is one atomic RMW — the recording budget the
	// record_headroom benchmark gates.
	shards := r.shards
	h := &shards[uint64(startNs)&uint64(len(shards)-1)]
	if latencyNs < 0 {
		h.dropped.Add(1)
		return
	}
	h.counts[hdrIndex(latencyNs)].Add(1)
}

// RecordSince records NowNs()-startNs — the convenience bracket for
// callers timing with the obs clock.
//
//acclaim:zeroalloc
func (r *HDRRecorder) RecordSince(startNs int64) {
	if r == nil {
		return
	}
	r.Record(startNs, NowNs()-startNs)
}

// Count returns total accepted observations across shards.
func (r *HDRRecorder) Count() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.shards {
		n += r.shards[i].Count()
	}
	return n
}

// Dropped returns total rejected observations across shards.
func (r *HDRRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.shards {
		n += r.shards[i].Dropped()
	}
	return n
}

// Quantile merges the shards' bucket counts on the fly and answers
// with HDRHistogram.Quantile semantics.
func (r *HDRRecorder) Quantile(q float64) float64 {
	if r == nil {
		return 0
	}
	n := r.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := 0; i < hdrNumBuckets; i++ {
		for s := range r.shards {
			cum += r.shards[s].counts[i].Load()
		}
		if cum >= rank {
			return float64(hdrUpper(i))
		}
	}
	return float64(hdrUpper(hdrNumBuckets - 1))
}

// Mean returns the mean accepted observation across shards.
func (r *HDRRecorder) Mean() float64 {
	if r == nil {
		return 0
	}
	var sum float64
	var n uint64
	for i := range r.shards {
		sum += r.shards[i].Sum()
		n += r.shards[i].Count()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Snapshot merges every shard into one HDRSnapshot.
func (r *HDRRecorder) Snapshot() HDRSnapshot {
	if r == nil {
		return HDRSnapshot{}
	}
	out := r.shards[0].Snapshot()
	for i := 1; i < len(r.shards); i++ {
		out = out.Merge(r.shards[i].Snapshot())
	}
	return out
}
