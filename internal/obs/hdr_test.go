package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank sample quantile over sorted
// samples: the value at rank ceil(q*n), the definition
// HDRHistogram.Quantile approximates within one bucket width.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHDRQuantileDifferential pins the accuracy contract: across
// uniform, lognormal, and adversarial (bucket-edge-hugging)
// distributions, Quantile(q) is never below the exact sorted sample
// quantile and never above it by more than the width of the bucket it
// answers from.
func TestHDRQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func(n int) []int64{
		"uniform": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63n(5_000_000) // 0..5ms
			}
			return out
		},
		"lognormal": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				// median ~e^10 ns ≈ 22µs with a heavy tail.
				out[i] = int64(math.Exp(10 + 1.5*rng.NormFloat64()))
			}
			return out
		},
		"adversarial": func(n int) []int64 {
			// Values hugging bucket edges across the whole trackable
			// range: exact powers of two, one below, one above, plus
			// the linear region. (At or above 2^hdrMaxExp everything
			// collapses into the overflow bucket by design, so the
			// one-bucket-width contract is asserted below it.)
			out := make([]int64, 0, n)
			for len(out) < n {
				e := uint(rng.Intn(hdrMaxExp - 1))
				v := int64(1) << e
				out = append(out, v, v-1, v+1, int64(rng.Intn(hdrSubCount)))
			}
			return out[:n]
		},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999, 1.0}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			samples := gen(20000)
			h := NewHDRHistogram()
			for _, v := range samples {
				h.ObserveNs(v)
			}
			sorted := append([]int64(nil), samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := exactQuantile(sorted, q)
				if got < float64(want) {
					t.Errorf("q=%v: estimate %v below exact %d", q, got, want)
				}
				width := float64(hdrWidth(hdrIndex(int64(got))))
				if got-float64(want) > width {
					t.Errorf("q=%v: estimate %v exceeds exact %d by more than bucket width %v", q, got, want, width)
				}
			}
			// The recorder must answer identically when the same stream
			// is spread over shards.
			rec := NewHDRRecorder(8)
			for i, v := range samples {
				rec.Record(int64(i), v)
			}
			for _, q := range quantiles {
				if got, want := rec.Quantile(q), h.Quantile(q); got != want {
					t.Errorf("q=%v: sharded quantile %v != unsharded %v", q, got, want)
				}
			}
			if got, want := rec.Snapshot().Quantile(0.99), h.Quantile(0.99); got != want {
				t.Errorf("merged snapshot p99 %v != live %v", got, want)
			}
		})
	}
}

// TestHDRIndexRoundTrip checks every value lands in a bucket whose
// range contains it.
func TestHDRIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(v int64) {
		i := hdrIndex(v)
		up := hdrUpper(i)
		if v > up {
			t.Fatalf("value %d above bucket %d upper bound %d", v, i, up)
		}
		if up != math.MaxInt64 && v < up-hdrWidth(i)+1 {
			t.Fatalf("value %d below bucket %d lower bound %d", v, i, up-hdrWidth(i)+1)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
	if got := hdrIndex(math.MaxInt64); got != hdrNumBuckets-1 {
		t.Errorf("MaxInt64 index = %d, want overflow bucket %d", got, hdrNumBuckets-1)
	}
	// At and above the 2^hdrMaxExp boundary the accuracy contract ends:
	// everything lands in the overflow bucket, whose reported upper
	// bound is MaxInt64.
	h := NewHDRHistogram()
	h.ObserveNs(1 << hdrMaxExp)
	if got := h.Quantile(1); got != float64(math.MaxInt64) {
		t.Errorf("overflow quantile = %v, want MaxInt64", got)
	}
}

func TestHDRDropsBadInputs(t *testing.T) {
	h := NewHDRHistogram()
	h.Observe(math.NaN())
	h.Observe(-1)
	h.ObserveNs(-5)
	h.Observe(3)
	if got := h.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	if s := h.Snapshot(); s.Dropped != 3 || s.Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	// Infinity clamps into the overflow bucket rather than dropping:
	// it is a real (if absurd) magnitude, not a poisoned value.
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 2 {
		t.Errorf("count after +Inf = %d, want 2", got)
	}

	boundedPtr := NewHistogram(1, 2, 3)
	boundedPtr.Observe(math.NaN())
	boundedPtr.Observe(-0.5)
	boundedPtr.Observe(2)
	if got := boundedPtr.Dropped(); got != 2 {
		t.Errorf("bounded dropped = %d, want 2", got)
	}
	if got := boundedPtr.Count(); got != 1 {
		t.Errorf("bounded count = %d, want 1", got)
	}
	if s := boundedPtr.Snapshot(); s.Dropped != 2 {
		t.Errorf("bounded snapshot dropped = %d, want 2", s.Dropped)
	}
}

func TestHDRMerge(t *testing.T) {
	a, b := NewHDRHistogram(), NewHDRHistogram()
	whole := NewHDRHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		whole.ObserveNs(v)
		if i%2 == 0 {
			a.ObserveNs(v)
		} else {
			b.ObserveNs(v)
		}
	}
	b.Observe(-1) // dropped counts merge too
	m := a.Snapshot().Merge(b.Snapshot())
	w := whole.Snapshot()
	// Sums are reconstructed per bucket, so merging only reorders float
	// additions — equal up to rounding.
	if m.Count != w.Count || math.Abs(m.Sum-w.Sum) > 1e-6*w.Sum {
		t.Errorf("merged count/sum = %d/%v, want %d/%v", m.Count, m.Sum, w.Count, w.Sum)
	}
	if m.Dropped != 1 {
		t.Errorf("merged dropped = %d, want 1", m.Dropped)
	}
	if len(m.Buckets) != len(w.Buckets) {
		t.Fatalf("merged buckets = %d, want %d", len(m.Buckets), len(w.Buckets))
	}
	for i := range m.Buckets {
		if m.Buckets[i] != w.Buckets[i] {
			t.Errorf("bucket %d: merged %+v, whole %+v", i, m.Buckets[i], w.Buckets[i])
		}
	}
	if m.P99 != w.P99 || m.P999 != w.P999 || m.Max != w.Max {
		t.Errorf("merged quantiles %v/%v/%v, want %v/%v/%v", m.P50, m.P99, m.Max, w.P50, w.P99, w.Max)
	}
}

func TestHDRRecorderConcurrent(t *testing.T) {
	rec := NewHDRRecorder(4)
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec.Record(int64(g*perG+i), int64(i%1000))
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	s := rec.Snapshot()
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHDRNilSafety(t *testing.T) {
	var h *HDRHistogram
	var rec *HDRRecorder
	h.Observe(1)
	h.ObserveNs(1)
	rec.Record(0, 1)
	rec.RecordSince(0)
	if h.Count() != 0 || h.Sum() != 0 || h.Dropped() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil histogram must read as zero")
	}
	if rec.Count() != 0 || rec.Dropped() != 0 || rec.Quantile(0.5) != 0 || rec.Mean() != 0 {
		t.Error("nil recorder must read as zero")
	}
	if rec.Snapshot().Count != 0 || h.Snapshot().Count != 0 {
		t.Error("nil snapshots must be empty")
	}
	var r *Registry
	if r.HDR("x") != nil {
		t.Error("nil registry must hand out nil HDR handles")
	}
	r.HDRFunc("x", func() *HDRRecorder { return nil })
	r.Describe("x", "help")
}

func TestHDRZeroAlloc(t *testing.T) {
	h := NewHDRHistogram()
	rec := NewHDRRecorder(4)
	if n := testing.AllocsPerRun(1000, func() {
		h.ObserveNs(12345)
		h.Observe(98765.0)
		h.Observe(-1) // dropped path must be free too
	}); n != 0 {
		t.Errorf("HDRHistogram observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		rec.Record(42, 12345)
		rec.RecordSince(NowNs())
	}); n != 0 {
		t.Errorf("HDRRecorder record allocates %v/op", n)
	}
}

func TestHDRRegistryIntegration(t *testing.T) {
	r := NewRegistry()
	rec := r.HDR("load.lat_ns")
	if r.HDR("load.lat_ns") != rec {
		t.Error("second HDR() returned a different handle")
	}
	rec.Record(1, 150)
	rec.Record(2, 2500)
	r.HDRFunc("serve.lat_ns", func() *HDRRecorder { return rec })

	snap := r.Snapshot()
	hs, ok := snap["load.lat_ns"].(HDRSnapshot)
	if !ok || hs.Count != 2 {
		t.Fatalf("HDR snapshot = %#v", snap["load.lat_ns"])
	}
	if fs, ok := snap["serve.lat_ns"].(HDRSnapshot); !ok || fs.Count != 2 {
		t.Fatalf("hdrFunc snapshot = %#v", snap["serve.lat_ns"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE load_lat_ns histogram",
		`load_lat_ns_bucket{le="+Inf"} 2`,
		"load_lat_ns_count 2",
		"# TYPE load_lat_ns_p99 gauge",
		"# TYPE serve_lat_ns_p999 gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("kind collision did not panic")
		}
	}()
	r.Counter("load.lat_ns")
}
