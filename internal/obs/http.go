package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promName flattens a dotted metric name into the Prometheus
// identifier charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), in registration order. Counters become
// `counter`, gauges and func metrics `gauge`, histograms `histogram`
// with cumulative buckets and a `+Inf` catch-all. HDR recorders render
// as a histogram over their occupied buckets plus `_p50`/`_p90`/
// `_p99`/`_p999` quantile gauges. Metrics Describe'd with a non-empty
// help string get a `# HELP` line before their `# TYPE` line;
// undescribed metrics render byte-identically to earlier versions.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	by := make(map[string]any, len(r.by))
	for k, v := range r.by {
		by[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	for _, name := range names {
		pn := promName(name)
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, h); err != nil {
				return err
			}
		}
		var err error
		switch m := by[name].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Load())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", pn, pn, m.Load())
		case funcMetric:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", pn, pn, m())
		case *Histogram:
			err = writePromHist(w, pn, m.Snapshot())
		case histFunc:
			err = writePromHist(w, pn, m().Snapshot())
		case *HDRRecorder:
			err = writePromHDR(w, pn, m.Snapshot())
		case hdrFunc:
			err = writePromHDR(w, pn, m().Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, pn string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", pn, bound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", pn, s.Sum, pn, s.Count)
	return err
}

// writePromHDR renders an HDR snapshot: cumulative buckets over the
// occupied part of the log-linear grid (the sparse form keeps a
// ~1100-bucket grid scrape-friendly), `_sum`/`_count`/`_dropped`, and
// the tail quantiles as `_p50`/`_p90`/`_p99`/`_p999` gauges so
// dashboards get exact-within-resolution percentiles without
// histogram_quantile interpolation error.
func writePromHDR(w io.Writer, pn string, s HDRSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", pn, b.Le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", pn, s.Sum, pn, s.Count); err != nil {
		return err
	}
	if s.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s_dropped counter\n%s_dropped %d\n", pn, pn, s.Dropped); err != nil {
			return err
		}
	}
	for _, q := range []struct {
		suffix string
		v      float64
	}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}, {"p999", s.P999}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %v\n", pn, q.suffix, pn, q.suffix, q.v); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as one JSON object keyed by
// metric name — the expvar value shape, so /debug/vars consumers can
// parse it unchanged.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Publish exposes the registry as one expvar variable under name, so
// it appears on the standard /debug/vars page alongside cmdline and
// memstats. Publishing the same name twice panics (expvar semantics).
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ServeHTTP serves the registry over HTTP: Prometheus text by default,
// the expvar-style JSON object when the request asks for JSON (an
// `Accept: application/json` header or `?format=json`). Wire it at
// /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	wantJSON := req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
