package obs

// MetricLabel maps an arbitrary identifier (a tenant key, a file name)
// onto the registry's metric-name alphabet: lower-case letters, digits,
// and underscores, starting with a letter. Runs of invalid characters
// collapse to a single underscore, upper-case folds to lower, and an
// empty or digit-leading result gains a "t" prefix so the composed
// metric name still satisfies the metricname analyzer's
// ^[a-z][a-z0-9_.]*$ grammar when embedded as one dotted segment.
func MetricLabel(s string) string {
	out := make([]byte, 0, len(s)+1)
	pendingSep := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			if pendingSep && len(out) > 0 {
				out = append(out, '_')
			}
			pendingSep = false
			out = append(out, c)
		default:
			pendingSep = true
		}
	}
	if len(out) == 0 || out[0] >= '0' && out[0] <= '9' {
		out = append([]byte{'t'}, out...)
	}
	return string(out)
}
