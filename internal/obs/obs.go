// Package obs is the repository's observability layer: a
// dependency-free metrics registry (atomic counters, float gauges,
// bounded histograms, read-on-demand func metrics) plus lightweight
// span tracing (trace.go). Every stage of the ACCLAiM pipeline — tuner
// rounds, forest training, the wave scheduler, benchmark collection,
// and the rule server — reports into one Registry, which can be
// snapshotted into a run report, served as Prometheus text or
// expvar-style JSON (http.go), or read programmatically.
//
// Two properties shape the API:
//
//   - Handles, not name lookups, on hot paths. Callers resolve a
//     *Counter/*Gauge/*Histogram once at setup; the per-event operation
//     is a single atomic instruction (or a short atomic sequence for
//     histograms) with zero allocation, gated by testing.AllocsPerRun
//     and the benchguard zero-alloc baseline.
//   - Nil handles are no-ops. Every handle method is nil-receiver safe
//     and Registry methods on a nil *Registry return nil handles, so
//     instrumented packages carry optional metrics without sprinkling
//     conditionals over their hot paths.
//
// Metric naming scheme: `<package>.<metric>[_<unit>]`, lower_snake
// within segments, dots between segments (flattened to underscores for
// Prometheus). Counters of events end in `_total`; accumulated or
// sampled durations end in their unit (`_ns` for host nanoseconds,
// `_us` for simulated microseconds) — the run-report golden test
// normalises exactly the `_ns` suffix, which is why host-clock metrics
// must never hide behind any other name.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative event counter. The zero value is ready to
// use; all methods are safe for concurrent use and nil receivers
// no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d and returns the new value (0 on a
// nil receiver).
//
//acclaim:zeroalloc
func (c *Counter) Add(d uint64) uint64 {
	if c == nil {
		return 0
	}
	return c.v.Add(d)
}

// Inc increments the counter by one and returns the new value.
//
//acclaim:zeroalloc
func (c *Counter) Inc() uint64 { return c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 gauge (or float accumulator, via Add). The zero
// value is ready to use; all methods are safe for concurrent use and
// nil receivers no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//acclaim:zeroalloc
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d (a CAS loop; gauges used as float accumulators
// are expected to see modest contention).
//
//acclaim:zeroalloc
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefTimeBuckets are the default histogram bounds for host durations in
// nanoseconds: decades from 100 ns to 100 s. Observations above the
// last bound land in the overflow bucket.
var DefTimeBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}

// Histogram is a bounded histogram: fixed ascending upper bounds plus
// an overflow bucket, with an exact observation count and sum. All
// methods are safe for concurrent use, allocation-free, and nil
// receivers no-op. Construct with NewHistogram or Registry.Histogram.
//
//acclaim:frozen
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
	dropped atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper
// bounds (DefTimeBuckets if none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefTimeBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. NaN and negative observations are
// rejected and counted in Dropped: a NaN would fall through every
// bound comparison into the overflow bucket and poison the sum, and
// nothing this package measures (durations, sizes, counts) is
// legitimately negative.
//
//acclaim:zeroalloc
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v != v || v < 0 {
		h.dropped.Add(1)
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Dropped returns the number of rejected (NaN or negative)
// observations.
func (h *Histogram) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// HistSnapshot is a point-in-time copy of a histogram, as embedded in
// registry snapshots and run reports. Counts has one more entry than
// Bounds; the last is the overflow bucket.
type HistSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Dropped uint64    `json:"dropped,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Counts  []uint64  `json:"counts"`
}

// Snapshot copies the histogram's current state. The per-bucket counts
// are read without a global lock, so under concurrent writes the copy
// is a consistent-enough view, not an atomic cut.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Dropped: h.dropped.Load(),
		Bounds:  append([]float64(nil), h.bounds...),
		Counts:  make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// funcMetric reads a scalar on demand (gauge semantics); histFunc and
// hdrFunc read a whole histogram on demand. All three let external
// state — like the rule server's per-epoch snapshot counters — surface
// through the registry without being owned by it.
type funcMetric func() float64
type histFunc func() *Histogram
type hdrFunc func() *HDRRecorder

// Registry is a named collection of metrics. Handle getters are
// get-or-create and safe for concurrent use; a nil *Registry returns
// nil handles, which no-op. Output order is registration order.
type Registry struct {
	mu    sync.Mutex
	order []string          // guarded by mu
	by    map[string]any    // guarded by mu
	help  map[string]string // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]any), help: make(map[string]string)}
}

// Describe attaches a help string to a metric name, rendered as a
// `# HELP` line by WritePrometheus. Metrics never described (or
// described with "") render exactly as before — type line only — so
// existing golden outputs are unchanged until a caller opts in.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if help == "" {
		delete(r.help, name)
		return
	}
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

// lookup returns the metric under name, creating it with mk on first
// use. It panics if the name is already bound to a different kind —
// observability name collisions are programming errors worth failing
// loudly on.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.by[name]; ok {
		return m
	}
	m := mk()
	r.by[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: " + name + " is not a counter")
	}
	return c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: " + name + " is not a gauge")
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds (DefTimeBuckets if none) on first use. Bounds
// on later calls are ignored.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return NewHistogram(bounds...) })
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: " + name + " is not a histogram")
	}
	return h
}

// HDR returns the sharded high-dynamic-range latency recorder
// registered under name, creating it with the default shard count
// (one per GOMAXPROCS) on first use.
func (r *Registry) HDR(name string) *HDRRecorder {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return NewHDRRecorder(0) })
	h, ok := m.(*HDRRecorder)
	if !ok {
		panic("obs: " + name + " is not an HDR recorder")
	}
	return h
}

// HDRFunc registers an HDR recorder read on demand (the rule server's
// per-epoch latency recorder, which must follow the atomic snapshot
// pointer); fn may return nil, which renders as an empty histogram.
func (r *Registry) HDRFunc(name string, fn func() *HDRRecorder) {
	if r == nil {
		return
	}
	r.lookup(name, func() any { return hdrFunc(fn) })
}

// Func registers a scalar read on demand at snapshot/serve time —
// the bridge for state that lives outside the registry (for example
// the rule server's per-epoch snapshot counters, which must keep their
// reset-on-swap semantics). No-op on a nil registry.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, func() any { return funcMetric(fn) })
}

// HistogramFunc registers a histogram read on demand; fn may return
// nil, which renders as an empty histogram.
func (r *Registry) HistogramFunc(name string, fn func() *Histogram) {
	if r == nil {
		return
	}
	r.lookup(name, func() any { return histFunc(fn) })
}

// Snapshot renders every metric to a JSON-marshalable value: counters
// as uint64, gauges and func metrics as float64, histograms as
// HistSnapshot, HDR recorders as HDRSnapshot. The map is fresh on
// every call.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	by := make(map[string]any, len(r.by))
	for k, v := range r.by {
		by[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]any, len(names))
	for _, name := range names {
		switch m := by[name].(type) {
		case *Counter:
			out[name] = m.Load()
		case *Gauge:
			out[name] = m.Load()
		case funcMetric:
			out[name] = m()
		case *Histogram:
			out[name] = m.Snapshot()
		case histFunc:
			out[name] = m().Snapshot()
		case *HDRRecorder:
			out[name] = m.Snapshot()
		case hdrFunc:
			out[name] = m().Snapshot()
		}
	}
	return out
}
