package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race (the CI race job does) this doubles as the data-race
// proof for the handle types.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	const goroutines, perG = 8, 5000
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Load(), float64(goroutines*perG)*0.5; got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Errorf("gauge after Set = %v, want -3", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 5000
	h := NewHistogram(1, 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%4) * 40) // buckets: 0->le1, 40,80->le100, 120->overflow
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
	if s.Counts[0] != 2*perG { // g%4 == 0 observations land at 0 <= 1
		t.Errorf("first bucket = %d, want %d", s.Counts[0], 2*perG)
	}
	if s.Counts[len(s.Counts)-1] != 2*perG { // g%4 == 3 -> 120 overflows
		t.Errorf("overflow bucket = %d, want %d", s.Counts[len(s.Counts)-1], 2*perG)
	}
	if want := h.Sum(); math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("snapshot sum %v != live sum %v", s.Sum, want)
	}
	if got, want := h.Mean(), s.Sum/float64(s.Count); got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

// TestNilHandles pins the no-op contract: every method on nil handles
// and a nil registry is safe and returns zero values.
func TestNilHandles(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil handles must read as zero")
	}
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot must be empty")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must hand out nil handles")
	}
	r.Func("x", func() float64 { return 1 })
	r.HistogramFunc("x", func() *Histogram { return nil })
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.total")
	c1.Add(7)
	if c2 := r.Counter("a.total"); c2 != c1 {
		t.Error("second Counter() returned a different handle")
	}
	h1 := r.Histogram("a.lat_ns", 1, 2, 3)
	if h2 := r.Histogram("a.lat_ns"); h2 != h1 {
		t.Error("second Histogram() returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind collision did not panic")
		}
	}()
	r.Gauge("a.total") // registered as a counter above
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("shared.total").Inc()
				r.Histogram("shared.h").Observe(float64(i))
				r.Gauge("shared.g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.total").Load(); got != 8*2000 {
		t.Errorf("shared counter = %d, want %d", got, 8*2000)
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.total").Add(3)
	r.Gauge("g").Set(2.5)
	r.Histogram("h.ns", 10, 20).Observe(15)
	r.Func("f", func() float64 { return 42 })
	r.HistogramFunc("hf", func() *Histogram { return nil })

	s := r.Snapshot()
	if s["c.total"] != uint64(3) {
		t.Errorf("counter snapshot = %#v", s["c.total"])
	}
	if s["g"] != 2.5 || s["f"] != 42.0 {
		t.Errorf("gauge/func snapshot = %#v / %#v", s["g"], s["f"])
	}
	hs, ok := s["h.ns"].(HistSnapshot)
	if !ok || hs.Count != 1 || hs.Counts[1] != 1 {
		t.Errorf("histogram snapshot = %#v", s["h.ns"])
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("tuner.rounds_total").Add(12)
	r.Gauge("tuner.bcast.cum_variance").Set(0.25)
	r.Histogram("serve.lat_ns", 10, 100).Observe(5)
	r.Histogram("serve.lat_ns").Observe(5000)
	r.Func("ruleserver.hits", func() float64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tuner_rounds_total counter",
		"tuner_rounds_total 12",
		"# TYPE tuner_bcast_cum_variance gauge",
		"tuner_bcast_cum_variance 0.25",
		"# TYPE serve_lat_ns histogram",
		`serve_lat_ns_bucket{le="10"} 1`,
		`serve_lat_ns_bucket{le="+Inf"} 2`,
		"serve_lat_ns_count 2",
		"ruleserver_hits 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

// TestPrometheusEdgeCases covers the rendering paths the main output
// test does not: histFunc-backed histograms (the rule server's
// read-on-demand latency view), zero-count histograms (a registered
// metric that never saw traffic must still render a complete, parseable
// histogram), and metric names whose characters need promName
// flattening.
func TestPrometheusEdgeCases(t *testing.T) {
	r := NewRegistry()
	backing := NewHistogram(10, 100)
	backing.Observe(50)
	r.HistogramFunc("serve.lat.backed_ns", func() *Histogram { return backing })
	r.HistogramFunc("serve.lat.nil_ns", func() *Histogram { return nil })
	r.Histogram("serve.lat.empty_ns", 10, 100)
	r.Counter("9weird-name.total")
	r.Gauge("mixed:Case.metric")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		// histFunc-backed: buckets reflect the backing histogram's state.
		"# TYPE serve_lat_backed_ns histogram",
		`serve_lat_backed_ns_bucket{le="10"} 0`,
		`serve_lat_backed_ns_bucket{le="100"} 1`,
		`serve_lat_backed_ns_bucket{le="+Inf"} 1`,
		"serve_lat_backed_ns_sum 50",
		"serve_lat_backed_ns_count 1",
		// histFunc returning nil renders as empty, not a panic.
		`serve_lat_nil_ns_bucket{le="+Inf"} 0`,
		"serve_lat_nil_ns_count 0",
		// Zero-count histogram: every bucket present at 0.
		`serve_lat_empty_ns_bucket{le="10"} 0`,
		`serve_lat_empty_ns_bucket{le="100"} 0`,
		`serve_lat_empty_ns_bucket{le="+Inf"} 0`,
		"serve_lat_empty_ns_sum 0",
		"serve_lat_empty_ns_count 0",
		// promName flattening: leading digit and '-' become '_', ':' is
		// legal in the Prometheus charset and survives.
		"_weird_name_total 0",
		"mixed:Case_metric 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

// TestPrometheusHelp pins the Describe contract: described metrics get
// a # HELP line immediately before their # TYPE line, and undescribed
// (or cleared) metrics render byte-identically to a registry that never
// called Describe.
func TestPrometheusHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.lookups_total")
	r.Gauge("serve.depth")
	r.Describe("serve.lookups_total", "total rule lookups served")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(),
		"# HELP serve_lookups_total total rule lookups served\n# TYPE serve_lookups_total counter\n") {
		t.Errorf("HELP line missing or misplaced:\n%s", b.String())
	}

	// Clearing the help restores the exact undescribed byte output.
	r.Describe("serve.lookups_total", "")
	plain := NewRegistry()
	plain.Counter("serve.lookups_total")
	plain.Gauge("serve.depth")
	var cleared, never strings.Builder
	if err := r.WritePrometheus(&cleared); err != nil {
		t.Fatal(err)
	}
	if err := plain.WritePrometheus(&never); err != nil {
		t.Fatal(err)
	}
	if cleared.String() != never.String() {
		t.Errorf("cleared help output differs from never-described output:\n%q\nvs\n%q",
			cleared.String(), never.String())
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.total").Inc()

	rr := httptest.NewRecorder()
	r.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "c_total 1") {
		t.Errorf("prometheus body missing counter:\n%s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	r.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json content type = %q", ct)
	}
	var parsed map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &parsed); err != nil {
		t.Fatalf("json body does not parse: %v", err)
	}
	if parsed["c.total"] != float64(1) {
		t.Errorf("json body = %#v", parsed)
	}
}
