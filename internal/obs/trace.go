package obs

import (
	"sync"
	"time"
)

// SpanID identifies one span within a Trace. The zero value (NoSpan)
// means "no parent" / "dropped".
type SpanID int64

// NoSpan is the root parent and the id every Nop span gets.
const NoSpan SpanID = 0

// Recorder is the tracing seam instrumented code talks to. The
// pipeline's default is Nop, whose methods are free (no clock reads,
// no allocation — AllocsPerRun-gated), so instrumentation can stay in
// place on hot paths; cmd/acclaim installs a *Trace to capture the
// tuning-run timeline. Implementations must be safe for concurrent
// use.
type Recorder interface {
	// StartSpan opens a span under parent (NoSpan for a root) and
	// returns its id.
	StartSpan(name string, parent SpanID) SpanID
	// EndSpan closes the span. Ending NoSpan or an already-ended span
	// is a no-op.
	EndSpan(id SpanID)
	// SetAttr attaches a numeric attribute to an open span.
	SetAttr(id SpanID, key string, value float64)
}

// Nop is the default Recorder: every method does nothing and performs
// no allocation.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

//acclaim:zeroalloc
func (nopRecorder) StartSpan(string, SpanID) SpanID { return NoSpan }

//acclaim:zeroalloc
func (nopRecorder) EndSpan(SpanID) {}

//acclaim:zeroalloc
func (nopRecorder) SetAttr(SpanID, string, float64) {}

// Span is one recorded start/end event pair. Times are nanoseconds
// since the trace epoch (its creation, under the default clock).
type Span struct {
	ID      SpanID             `json:"id"`
	Parent  SpanID             `json:"parent,omitempty"`
	Name    string             `json:"name"`
	StartNs int64              `json:"start_ns"`
	EndNs   int64              `json:"end_ns"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
}

// Duration returns the span's recorded duration.
func (s Span) Duration() time.Duration { return time.Duration(s.EndNs - s.StartNs) }

// Trace is a Recorder that accumulates spans in memory for export as a
// JSON timeline (the -run-report payload). It is mutex-guarded: span
// events come from the tuning control loop, not from per-call hot
// paths, so a lock is the right simplicity/throughput trade.
type Trace struct {
	mu    sync.Mutex
	spans []Span       // guarded by mu
	now   func() int64 // guarded by mu (set once at construction, read under lock)
}

// NewTrace returns a trace whose clock is host nanoseconds since this
// call.
func NewTrace() *Trace {
	start := time.Now()
	return &Trace{now: func() int64 { return int64(time.Since(start)) }}
}

// NewTraceWithClock returns a trace on a caller-supplied clock
// (nanoseconds since an arbitrary epoch) — tests use a deterministic
// tick so the exported timeline is byte-stable. The clock is only
// called under the trace's lock.
func NewTraceWithClock(now func() int64) *Trace {
	return &Trace{now: now}
}

// StartSpan implements Recorder.
func (t *Trace) StartSpan(name string, parent SpanID) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, StartNs: t.now(), EndNs: -1})
	return id
}

// EndSpan implements Recorder.
func (t *Trace) EndSpan(id SpanID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i := int(id) - 1; i >= 0 && i < len(t.spans) && t.spans[i].EndNs < 0 {
		t.spans[i].EndNs = t.now()
	}
}

// SetAttr implements Recorder.
func (t *Trace) SetAttr(id SpanID, key string, value float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(id) - 1
	if i < 0 || i >= len(t.spans) {
		return
	}
	if t.spans[i].Attrs == nil {
		t.spans[i].Attrs = make(map[string]float64, 4)
	}
	t.spans[i].Attrs[key] = value
}

// Spans returns a deep copy of the timeline in start order. Spans still
// open have EndNs == -1.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i, s := range out {
		if s.Attrs != nil {
			a := make(map[string]float64, len(s.Attrs))
			for k, v := range s.Attrs {
				a[k] = v
			}
			out[i].Attrs = a
		}
	}
	return out
}
