package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// tick returns a deterministic clock: 10, 20, 30, ... nanoseconds.
func tick() func() int64 {
	var n int64
	return func() int64 { n += 10; return n }
}

func TestTraceLifecycle(t *testing.T) {
	tr := NewTraceWithClock(tick())
	root := tr.StartSpan("tune:bcast", NoSpan)
	fit := tr.StartSpan("fit", root)
	tr.SetAttr(fit, "trees", 60)
	tr.EndSpan(fit)
	tr.EndSpan(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "tune:bcast" || spans[0].Parent != NoSpan {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != "fit" || spans[1].Parent != root {
		t.Errorf("child span = %+v", spans[1])
	}
	// tick order: root start 10, fit start 20, fit end 30, root end 40.
	if spans[1].StartNs != 20 || spans[1].EndNs != 30 {
		t.Errorf("fit times = [%d,%d], want [20,30]", spans[1].StartNs, spans[1].EndNs)
	}
	if spans[1].Duration() != 10 {
		t.Errorf("fit duration = %v, want 10ns", spans[1].Duration())
	}
	if spans[0].EndNs != 40 {
		t.Errorf("root end = %d, want 40", spans[0].EndNs)
	}
	if spans[1].Attrs["trees"] != 60 {
		t.Errorf("attrs = %v", spans[1].Attrs)
	}
}

func TestTraceEdgeCases(t *testing.T) {
	tr := NewTraceWithClock(tick())
	id := tr.StartSpan("a", NoSpan)
	tr.EndSpan(id)
	end := tr.Spans()[0].EndNs
	tr.EndSpan(id) // double-end must not advance the clock into the span
	if got := tr.Spans()[0].EndNs; got != end {
		t.Errorf("double EndSpan moved end %d -> %d", end, got)
	}
	tr.EndSpan(NoSpan)      // no-op
	tr.EndSpan(SpanID(999)) // out of range
	tr.SetAttr(NoSpan, "x", 1)
	tr.SetAttr(SpanID(999), "x", 1)
	if len(tr.Spans()) != 1 {
		t.Errorf("edge-case calls created spans: %d", len(tr.Spans()))
	}

	open := tr.StartSpan("open", NoSpan)
	spans := tr.Spans()
	if spans[1].EndNs != -1 {
		t.Errorf("open span EndNs = %d, want -1", spans[1].EndNs)
	}
	_ = open
}

// TestTraceSpansIsCopy pins that mutating the returned slice (or its
// attr maps) cannot corrupt the trace.
func TestTraceSpansIsCopy(t *testing.T) {
	tr := NewTraceWithClock(tick())
	id := tr.StartSpan("a", NoSpan)
	tr.SetAttr(id, "k", 1)
	got := tr.Spans()
	got[0].Name = "mutated"
	got[0].Attrs["k"] = 99
	again := tr.Spans()
	if again[0].Name != "a" || again[0].Attrs["k"] != 1 {
		t.Errorf("Spans() aliases internal state: %+v", again[0])
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.StartSpan("work", NoSpan)
				tr.SetAttr(id, "i", float64(i))
				tr.EndSpan(id)
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 8*500 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*500)
	}
	for _, s := range spans {
		if s.EndNs < s.StartNs {
			t.Fatalf("span %d ends before it starts: %+v", s.ID, s)
		}
	}
}

func TestSpanJSONShape(t *testing.T) {
	tr := NewTraceWithClock(tick())
	root := tr.StartSpan("tune:bcast", NoSpan)
	tr.EndSpan(root)
	b, err := json.Marshal(tr.Spans()[0])
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":1,"name":"tune:bcast","start_ns":10,"end_ns":20}`
	if string(b) != want {
		t.Errorf("span JSON = %s, want %s", b, want)
	}
}

// TestNopRecorderZeroAlloc is the contract that lets instrumentation
// stay on hot paths unconditionally.
func TestNopRecorderZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		id := Nop.StartSpan("round", NoSpan)
		Nop.SetAttr(id, "samples", 42)
		Nop.EndSpan(id)
	}); n != 0 {
		t.Errorf("Nop recorder allocates %v per span, want 0", n)
	}
}

func TestHandleZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(1, 10, 100)
	var ns int64
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(2.5)
		g.Add(1.5)
		h.Observe(42)
		ns += NowNs()
	}); n != 0 {
		t.Errorf("metric handles allocate %v per event, want 0", n)
	}
	if ns <= 0 {
		t.Errorf("NowNs sum = %d, want > 0", ns)
	}
}
