package rules

import (
	"acclaim/internal/featspace"
)

// BuildTable constructs a complete, pruned rule table for one collective
// from a selection oracle, implementing the paper's Figure 9 rule
// creation logic. For every (nodes, ppn) cell of the P2 grid it walks
// message sizes in ascending order; whenever the selection changes
// between adjacent P2 sizes A and C, it re-queries the oracle at the
// non-P2 midpoint B and emits up to three rules (<=A uses ALG-A,
// (A, C) uses ALG-B, >=C uses ALG-C), merging immediately when ALG-B
// equals a neighbour. The final rule at every level is an Unbounded
// catch-all, so the table is complete by construction.
func BuildTable(collective string, space featspace.Space, sel func(featspace.Point) string) *Table {
	t := &Table{Collective: collective}
	for ni, nodes := range space.Nodes {
		nb := NodeBucket{MaxNodes: int64(nodes)}
		if ni == len(space.Nodes)-1 {
			nb.MaxNodes = Unbounded
		}
		for pi, ppn := range space.PPNs {
			pb := PPNBucket{MaxPPN: int64(ppn)}
			if pi == len(space.PPNs)-1 {
				pb.MaxPPN = Unbounded
			}
			pb.Rules = buildMsgRules(space.Msgs, func(msg int) string {
				return sel(featspace.Point{Nodes: nodes, PPN: ppn, MsgBytes: msg})
			})
			nb.PPNs = append(nb.PPNs, pb)
		}
		t.Buckets = append(t.Buckets, nb)
	}
	t.Prune()
	return t
}

// buildMsgRules performs the per-cell Figure 9 walk.
func buildMsgRules(msgs []int, sel func(int) string) []MsgRule {
	if len(msgs) == 0 {
		return []MsgRule{{MaxMsg: Unbounded, Alg: sel(1)}}
	}
	cur := sel(msgs[0])
	var rs []MsgRule
	for i := 0; i+1 < len(msgs); i++ {
		next := sel(msgs[i+1])
		if next == cur {
			continue
		}
		a, c := msgs[i], msgs[i+1]
		rs = append(rs, MsgRule{MaxMsg: int64(a), Alg: cur})
		if c-a >= 2 {
			b := sel((a + c) / 2) // the non-P2 midpoint query
			switch {
			case b == cur:
				// ALG-A == ALG-B: merge the first two rules.
				rs[len(rs)-1].MaxMsg = int64(c - 1)
			case b != next:
				// Distinct middle region.
				rs = append(rs, MsgRule{MaxMsg: int64(c - 1), Alg: b})
			}
			// b == next: ALG-B == ALG-C, the next region starts right
			// after A — nothing to emit.
		}
		cur = next
	}
	rs = append(rs, MsgRule{MaxMsg: Unbounded, Alg: cur})
	return pruneMsgRules(rs)
}
