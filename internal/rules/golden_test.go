package rules

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// update regenerates the golden files under testdata/rules from the
// fixture constructors below:
//
//	go test ./internal/rules/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden rule files")

// goldenDir is the shared rule-file corpus at the repository root
// (testdata/rules), used by these tests and as a ready-made input for
// cmd/acclaim-serve examples.
func goldenDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "testdata", "rules"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// goldenFixtures maps golden file names to constructors. The .json
// golden is the Write serialization of the constructed file; the
// .pruned.json golden is the serialization after Prune on every table.
var goldenFixtures = map[string]func() *File{
	"mpich_bcast":    mpichBcastFixture,
	"tuned_multi":    tunedMultiFixture,
	"tuned_scenario": tunedScenarioFixture,
}

// mpichBcastFixture mirrors the shape of an MPICH json selection file
// for a single collective: power-of-two crossovers, a redundant pair of
// consecutive rules (so pruning has work to do), and full catch-alls.
func mpichBcastFixture() *File {
	f := NewFile("mpich-ch4-ofi")
	f.Comment = "golden fixture: MPICH-style bcast selection"
	f.Tables["bcast"] = &Table{
		Collective: "bcast",
		Buckets: []NodeBucket{
			{MaxNodes: 16, PPNs: []PPNBucket{
				{MaxPPN: 8, Rules: []MsgRule{
					{MaxMsg: 2048, Alg: "binomial"},
					{MaxMsg: 65536, Alg: "binomial"}, // redundant: merges on Prune
					{MaxMsg: Unbounded, Alg: "scatter_ring_allgather"},
				}},
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 16384, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "scatter_recursive_doubling_allgather"},
				}},
			}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 512, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "scatter_ring_allgather"},
				}},
			}},
		},
	}
	return f
}

// tunedMultiFixture is a multi-collective file of the shape ACCLAiM
// emits after a tuning run, including adjacent ppn buckets with
// identical contents (so bucket-level pruning has work to do).
func tunedMultiFixture() *File {
	f := NewFile("cluster-a100")
	f.Comment = "golden fixture: multi-collective tuned output"
	same := []MsgRule{
		{MaxMsg: 1024, Alg: "recursive_doubling"},
		{MaxMsg: Unbounded, Alg: "ring"},
	}
	f.Tables["allreduce"] = &Table{
		Collective: "allreduce",
		Buckets: []NodeBucket{
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: 4, Rules: append([]MsgRule(nil), same...)},
				{MaxPPN: 16, Rules: append([]MsgRule(nil), same...)}, // merges on Prune
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 4096, Alg: "recursive_doubling"},
					{MaxMsg: Unbounded, Alg: "reduce_scatter_allgather"},
				}},
			}},
		},
	}
	f.Tables["reduce"] = &Table{
		Collective: "reduce",
		Buckets: []NodeBucket{
			{MaxNodes: 32, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 8192, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "reduce_scatter_gather"},
				}},
			}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: Unbounded, Alg: "binomial"},
				}},
			}},
		},
	}
	return f
}

// tunedScenarioFixture covers the scenario-diversity collectives
// (alltoall, reduce_scatter, gather, scatter) with their registered
// algorithm names, shaped like a tuned fat-tree run: small-message
// brucks/binomial regimes crossing over to pairwise/linear, with
// redundant rules and duplicate ppn buckets so pruning has work to do.
func tunedScenarioFixture() *File {
	f := NewFile("fattree-sim")
	f.Comment = "golden fixture: scenario-diversity collectives on fat-tree"
	f.Tables["alltoall"] = &Table{
		Collective: "alltoall",
		Buckets: []NodeBucket{
			{MaxNodes: 16, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 256, Alg: "brucks"},
					{MaxMsg: 32768, Alg: "scattered"},
					{MaxMsg: Unbounded, Alg: "pairwise"},
				}},
			}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 1024, Alg: "brucks"},
					{MaxMsg: 4096, Alg: "brucks"}, // redundant: merges on Prune
					{MaxMsg: Unbounded, Alg: "pairwise"},
				}},
			}},
		},
	}
	f.Tables["reduce_scatter"] = &Table{
		Collective: "reduce_scatter",
		Buckets: []NodeBucket{
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 524288, Alg: "recursive_halving"},
					{MaxMsg: Unbounded, Alg: "pairwise_exchange"},
				}},
			}},
		},
	}
	sameRooted := []MsgRule{
		{MaxMsg: 8192, Alg: "binomial"},
		{MaxMsg: Unbounded, Alg: "linear"},
	}
	f.Tables["gather"] = &Table{
		Collective: "gather",
		Buckets: []NodeBucket{
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: 8, Rules: append([]MsgRule(nil), sameRooted...)},
				{MaxPPN: Unbounded, Rules: append([]MsgRule(nil), sameRooted...)}, // merges on Prune
			}},
		},
	}
	f.Tables["scatter"] = &Table{
		Collective: "scatter",
		Buckets: []NodeBucket{
			{MaxNodes: 32, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 2048, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "linear"},
				}},
			}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: Unbounded, Alg: "binomial"},
				}},
			}},
		},
	}
	return f
}

func marshal(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			filepath.Base(path), got, want)
	}
}

// TestGoldenRoundTrip pins the on-disk JSON format: the serialization
// of each fixture must match its golden byte-for-byte, Read(Write(f))
// must reproduce the file deep-equal, and re-serializing the read-back
// copy must reproduce the golden again (so Read loses nothing Write
// needs).
func TestGoldenRoundTrip(t *testing.T) {
	dir := goldenDir(t)
	for name, mk := range goldenFixtures {
		t.Run(name, func(t *testing.T) {
			f := mk()
			raw := marshal(t, f)
			compareGolden(t, filepath.Join(dir, name+".json"), raw)

			back, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Read(Write(f)): %v", err)
			}
			if !reflect.DeepEqual(f, back) {
				t.Errorf("Read(Write(f)) != f\ngot:  %+v\nwant: %+v", back, f)
			}
			if again := marshal(t, back); !bytes.Equal(raw, again) {
				t.Errorf("Write(Read(Write(f))) not byte-stable")
			}
		})
	}
}

// TestGoldenPrune pins Prune's output format: pruning each fixture must
// produce exactly the .pruned.json golden, the pruned file must stay
// valid, and pruning must be idempotent.
func TestGoldenPrune(t *testing.T) {
	dir := goldenDir(t)
	for name, mk := range goldenFixtures {
		t.Run(name, func(t *testing.T) {
			f := mk()
			before := 0
			for _, tab := range f.Tables {
				before += tab.NumRules()
			}
			for _, tab := range f.Tables {
				tab.Prune()
			}
			after := 0
			for _, tab := range f.Tables {
				after += tab.NumRules()
			}
			if after >= before {
				t.Errorf("fixture has no redundancy for Prune to remove (%d -> %d rules)", before, after)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("pruned file invalid: %v", err)
			}
			compareGolden(t, filepath.Join(dir, name+".pruned.json"), marshal(t, f))

			for _, tab := range f.Tables {
				tab.Prune()
			}
			compareGolden(t, filepath.Join(dir, name+".pruned.json"), marshal(t, f))
		})
	}
}

// TestGoldenFilesReadable proves the checked-in goldens themselves pass
// Read's validation — they double as example inputs for
// cmd/acclaim-serve, so they must never rot.
func TestGoldenFilesReadable(t *testing.T) {
	dir := goldenDir(t)
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 4 {
		t.Fatalf("expected at least 4 golden files in %s, found %d", dir, len(matches))
	}
	for _, path := range matches {
		f, err := ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if len(f.Tables) == 0 {
			t.Errorf("%s: no tables", filepath.Base(path))
		}
	}
}

// FuzzReadRoundTrip feeds arbitrary bytes to Read; whenever they parse
// as a valid selection file, serializing and re-reading must be
// lossless and byte-stable. Seeded with the golden corpus.
func FuzzReadRoundTrip(f *testing.F) {
	dir, err := filepath.Abs(filepath.Join("..", "..", "testdata", "rules"))
	if err != nil {
		f.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"version":1,"tables":{}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		file, err := Read(bytes.NewReader(raw))
		if err != nil {
			return // invalid inputs just need to be rejected cleanly
		}
		var buf bytes.Buffer
		if err := file.Write(&buf); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Read(Write(f)) failed for accepted input: %v", err)
		}
		if !reflect.DeepEqual(file, back) {
			t.Fatalf("round trip not lossless\ngot:  %+v\nwant: %+v", back, file)
		}
		var again bytes.Buffer
		if err := back.Write(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("serialization not byte-stable")
		}
	})
}
