// Package rules represents MPICH-style collective algorithm selection
// files: the JSON artifact ACCLAiM generates after training (Section V,
// "Configuration File Generation"). A file holds one rule table per
// collective; a table is a complete decision list nested by communicator
// node count, processes per node, and message size. The package
// validates completeness (every possible input must resolve), prunes
// redundant rules to minimise selection delay, and answers selection
// queries the way the MPI library would at collective-call time.
package rules

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Unbounded marks a threshold that matches any value (the mandatory
// final catch-all at each nesting level).
const Unbounded = math.MaxInt64

// MsgRule selects Alg for message sizes <= MaxMsg (after earlier rules
// declined).
type MsgRule struct {
	MaxMsg int64  `json:"max_msg"`
	Alg    string `json:"algorithm"`
}

// PPNBucket holds the message-size rules for ppn <= MaxPPN.
type PPNBucket struct {
	MaxPPN int64     `json:"max_ppn"`
	Rules  []MsgRule `json:"rules"`
}

// NodeBucket holds the ppn buckets for node counts <= MaxNodes.
type NodeBucket struct {
	MaxNodes int64       `json:"max_nodes"`
	PPNs     []PPNBucket `json:"ppn_buckets"`
}

// Table is the complete decision list for one collective.
type Table struct {
	Collective string       `json:"collective"`
	Buckets    []NodeBucket `json:"node_buckets"`
}

// File is a full selection configuration, the unit MPICH is pointed at
// via an environment variable.
type File struct {
	Version int               `json:"version"`
	Machine string            `json:"machine,omitempty"`
	Comment string            `json:"comment,omitempty"`
	Tables  map[string]*Table `json:"tables"`
}

// NewFile returns an empty selection file.
func NewFile(machine string) *File {
	return &File{Version: 1, Machine: machine, Tables: make(map[string]*Table)}
}

// Select resolves a query against the table. It returns an error only if
// the table is incomplete for the query, which Validate prevents.
func (t *Table) Select(nodes, ppn, msg int) (string, error) {
	nb := searchNode(t.Buckets, int64(nodes))
	if nb == nil {
		return "", fmt.Errorf("rules: %s: no node bucket for %d nodes", t.Collective, nodes)
	}
	pb := searchPPN(nb.PPNs, int64(ppn))
	if pb == nil {
		return "", fmt.Errorf("rules: %s: no ppn bucket for ppn %d", t.Collective, ppn)
	}
	i := sort.Search(len(pb.Rules), func(i int) bool { return pb.Rules[i].MaxMsg >= int64(msg) })
	if i == len(pb.Rules) {
		return "", fmt.Errorf("rules: %s: no rule for message size %d", t.Collective, msg)
	}
	return pb.Rules[i].Alg, nil
}

func searchNode(bs []NodeBucket, v int64) *NodeBucket {
	i := sort.Search(len(bs), func(i int) bool { return bs[i].MaxNodes >= v })
	if i == len(bs) {
		return nil
	}
	return &bs[i]
}

func searchPPN(bs []PPNBucket, v int64) *PPNBucket {
	i := sort.Search(len(bs), func(i int) bool { return bs[i].MaxPPN >= v })
	if i == len(bs) {
		return nil
	}
	return &bs[i]
}

// Validate checks the paper's completeness requirement: thresholds
// strictly ascending at every level, a final Unbounded catch-all at
// every level, and non-empty rule lists with named algorithms.
func (t *Table) Validate() error {
	if t.Collective == "" {
		return fmt.Errorf("rules: table without collective name")
	}
	if len(t.Buckets) == 0 {
		return fmt.Errorf("rules: %s: no node buckets", t.Collective)
	}
	var prevN int64 = -1
	for _, nb := range t.Buckets {
		if nb.MaxNodes <= prevN {
			return fmt.Errorf("rules: %s: node thresholds not ascending at %d", t.Collective, nb.MaxNodes)
		}
		prevN = nb.MaxNodes
		if len(nb.PPNs) == 0 {
			return fmt.Errorf("rules: %s: node bucket %d has no ppn buckets", t.Collective, nb.MaxNodes)
		}
		var prevP int64 = -1
		for _, pb := range nb.PPNs {
			if pb.MaxPPN <= prevP {
				return fmt.Errorf("rules: %s: ppn thresholds not ascending at %d", t.Collective, pb.MaxPPN)
			}
			prevP = pb.MaxPPN
			if len(pb.Rules) == 0 {
				return fmt.Errorf("rules: %s: ppn bucket %d has no rules", t.Collective, pb.MaxPPN)
			}
			var prevM int64 = -1
			for _, r := range pb.Rules {
				if r.MaxMsg <= prevM {
					return fmt.Errorf("rules: %s: msg thresholds not ascending at %d", t.Collective, r.MaxMsg)
				}
				prevM = r.MaxMsg
				if r.Alg == "" {
					return fmt.Errorf("rules: %s: rule without algorithm", t.Collective)
				}
			}
			if pb.Rules[len(pb.Rules)-1].MaxMsg != Unbounded {
				return fmt.Errorf("rules: %s: msg rules not complete (missing catch-all)", t.Collective)
			}
		}
		if nb.PPNs[len(nb.PPNs)-1].MaxPPN != Unbounded {
			return fmt.Errorf("rules: %s: ppn buckets not complete", t.Collective)
		}
	}
	if t.Buckets[len(t.Buckets)-1].MaxNodes != Unbounded {
		return fmt.Errorf("rules: %s: node buckets not complete", t.Collective)
	}
	return nil
}

// Validate checks every table in the file.
func (f *File) Validate() error {
	if len(f.Tables) == 0 {
		return fmt.Errorf("rules: file has no tables")
	}
	for name, t := range f.Tables {
		if t == nil {
			return fmt.Errorf("rules: nil table %q", name)
		}
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Prune merges consecutive rules that resolve to the same algorithm —
// the paper's requirement that "no two consecutive rules resolve to the
// same prediction". It also merges adjacent ppn and node buckets whose
// contents become identical.
func (t *Table) Prune() {
	for bi := range t.Buckets {
		nb := &t.Buckets[bi]
		for pi := range nb.PPNs {
			nb.PPNs[pi].Rules = pruneMsgRules(nb.PPNs[pi].Rules)
		}
		nb.PPNs = prunePPNBuckets(nb.PPNs)
	}
	t.Buckets = pruneNodeBuckets(t.Buckets)
}

func pruneMsgRules(rs []MsgRule) []MsgRule {
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && out[n-1].Alg == r.Alg {
			out[n-1].MaxMsg = r.MaxMsg
			continue
		}
		out = append(out, r)
	}
	return out
}

func prunePPNBuckets(bs []PPNBucket) []PPNBucket {
	out := bs[:0]
	for _, b := range bs {
		if n := len(out); n > 0 && msgRulesEqual(out[n-1].Rules, b.Rules) {
			out[n-1].MaxPPN = b.MaxPPN
			continue
		}
		out = append(out, b)
	}
	return out
}

func pruneNodeBuckets(bs []NodeBucket) []NodeBucket {
	out := bs[:0]
	for _, b := range bs {
		if n := len(out); n > 0 && ppnBucketsEqual(out[n-1].PPNs, b.PPNs) {
			out[n-1].MaxNodes = b.MaxNodes
			continue
		}
		out = append(out, b)
	}
	return out
}

func msgRulesEqual(a, b []MsgRule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ppnBucketsEqual(a, b []PPNBucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].MaxPPN != b[i].MaxPPN || !msgRulesEqual(a[i].Rules, b[i].Rules) {
			return false
		}
	}
	return true
}

// NumRules counts the message-level rules in the table, the quantity
// pruning minimises.
func (t *Table) NumRules() int {
	n := 0
	for _, nb := range t.Buckets {
		for _, pb := range nb.PPNs {
			n += len(pb.Rules)
		}
	}
	return n
}

// Write encodes the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the JSON to a path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	return f.Write(out)
}

// Read decodes a selection file and validates it.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("rules: decode: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadFile reads and validates a selection file from a path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}
