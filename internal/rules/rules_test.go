package rules

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"acclaim/internal/featspace"
)

// completeTable builds a small valid table by hand.
func completeTable() *Table {
	return &Table{
		Collective: "bcast",
		Buckets: []NodeBucket{
			{MaxNodes: 8, PPNs: []PPNBucket{
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 1024, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "scatter_ring_allgather"},
				}},
			}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: 4, Rules: []MsgRule{{MaxMsg: Unbounded, Alg: "binomial"}}},
				{MaxPPN: Unbounded, Rules: []MsgRule{
					{MaxMsg: 64, Alg: "binomial"},
					{MaxMsg: Unbounded, Alg: "scatter_recursive_doubling_allgather"},
				}},
			}},
		},
	}
}

func TestSelect(t *testing.T) {
	tab := completeTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		nodes, ppn, msg int
		want            string
	}{
		{2, 1, 8, "binomial"},
		{8, 32, 1024, "binomial"},
		{8, 32, 1025, "scatter_ring_allgather"},
		{9, 2, 1 << 20, "binomial"}, // second node bucket, small ppn
		{64, 16, 65536, "scatter_recursive_doubling_allgather"},
		{64, 16, 64, "binomial"},
	}
	for _, c := range cases {
		got, err := tab.Select(c.nodes, c.ppn, c.msg)
		if err != nil {
			t.Fatalf("Select(%d,%d,%d): %v", c.nodes, c.ppn, c.msg, err)
		}
		if got != c.want {
			t.Errorf("Select(%d,%d,%d) = %s, want %s", c.nodes, c.ppn, c.msg, got, c.want)
		}
	}
}

func TestValidateRejectsIncomplete(t *testing.T) {
	tab := completeTable()
	tab.Buckets[1].MaxNodes = 100 // no longer a catch-all
	if err := tab.Validate(); err == nil {
		t.Error("missing node catch-all not rejected")
	}

	tab = completeTable()
	tab.Buckets[0].PPNs[0].Rules[1].MaxMsg = 2048
	if err := tab.Validate(); err == nil {
		t.Error("missing msg catch-all not rejected")
	}

	tab = completeTable()
	tab.Buckets[1].PPNs[1].MaxPPN = 2 // descending after MaxPPN 4
	if err := tab.Validate(); err == nil {
		t.Error("non-ascending ppn thresholds not rejected")
	}

	tab = completeTable()
	tab.Buckets[0].PPNs[0].Rules[0].Alg = ""
	if err := tab.Validate(); err == nil {
		t.Error("empty algorithm not rejected")
	}

	if err := (&Table{Collective: "x"}).Validate(); err == nil {
		t.Error("empty table not rejected")
	}
}

func TestPruneMergesMsgRules(t *testing.T) {
	tab := &Table{
		Collective: "reduce",
		Buckets: []NodeBucket{{MaxNodes: Unbounded, PPNs: []PPNBucket{
			{MaxPPN: Unbounded, Rules: []MsgRule{
				{MaxMsg: 8, Alg: "binomial"},
				{MaxMsg: 64, Alg: "binomial"},
				{MaxMsg: 1024, Alg: "scatter_gather"},
				{MaxMsg: Unbounded, Alg: "scatter_gather"},
			}},
		}}},
	}
	tab.Prune()
	rs := tab.Buckets[0].PPNs[0].Rules
	if len(rs) != 2 {
		t.Fatalf("pruned rules = %v", rs)
	}
	if rs[0].MaxMsg != 64 || rs[1].MaxMsg != Unbounded {
		t.Errorf("pruned thresholds wrong: %v", rs)
	}
	if tab.NumRules() != 2 {
		t.Errorf("NumRules = %d", tab.NumRules())
	}
}

func TestPruneMergesBuckets(t *testing.T) {
	same := []MsgRule{{MaxMsg: Unbounded, Alg: "binomial"}}
	tab := &Table{
		Collective: "bcast",
		Buckets: []NodeBucket{
			{MaxNodes: 4, PPNs: []PPNBucket{{MaxPPN: Unbounded, Rules: append([]MsgRule(nil), same...)}}},
			{MaxNodes: Unbounded, PPNs: []PPNBucket{
				{MaxPPN: 8, Rules: append([]MsgRule(nil), same...)},
				{MaxPPN: Unbounded, Rules: append([]MsgRule(nil), same...)},
			}},
		},
	}
	tab.Prune()
	if len(tab.Buckets) != 1 {
		t.Fatalf("node buckets after prune = %d, want 1", len(tab.Buckets))
	}
	if len(tab.Buckets[0].PPNs) != 1 {
		t.Fatalf("ppn buckets after prune = %d, want 1", len(tab.Buckets[0].PPNs))
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("pruned table invalid: %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := NewFile("theta-sim")
	f.Tables["bcast"] = completeTable()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != "theta-sim" || len(got.Tables) != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
	sel, err := got.Tables["bcast"].Select(8, 32, 1025)
	if err != nil || sel != "scatter_ring_allgather" {
		t.Errorf("Select after round trip = %s, %v", sel, err)
	}
}

func TestFileReadRejectsInvalid(t *testing.T) {
	bad := bytes.NewBufferString(`{"version":1,"tables":{"bcast":{"collective":"bcast","node_buckets":[]}}}`)
	if _, err := Read(bad); err == nil {
		t.Error("invalid file accepted")
	}
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := NewFile("m").Validate(); err == nil {
		t.Error("empty file accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	f := NewFile("sim")
	f.Tables["bcast"] = completeTable()
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Error("version lost")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildTableSimpleCutover(t *testing.T) {
	space := featspace.Space{Nodes: []int{2, 4}, PPNs: []int{1, 2}, Msgs: []int{8, 16, 32, 64}}
	// Oracle: binomial below 32 bytes, ring from 32 up, for all cells —
	// including midpoints.
	sel := func(p featspace.Point) string {
		if p.MsgBytes < 32 {
			return "binomial"
		}
		return "ring"
	}
	tab := BuildTable("bcast", space, sel)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pruning should collapse identical cells to one bucket each.
	if len(tab.Buckets) != 1 || len(tab.Buckets[0].PPNs) != 1 {
		t.Errorf("identical cells not merged: %d node buckets", len(tab.Buckets))
	}
	for _, tc := range []struct {
		msg  int
		want string
	}{{8, "binomial"}, {23, "binomial"}, {31, "binomial"}, {32, "ring"}, {1 << 20, "ring"}} {
		got, err := tab.Select(2, 1, tc.msg)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Select(msg=%d) = %s, want %s", tc.msg, got, tc.want)
		}
	}
}

func TestBuildTableMidpointRegion(t *testing.T) {
	// Oracle with a distinct algorithm in the (16, 32) midpoint region:
	// the Figure 9 three-rule case.
	space := featspace.Space{Nodes: []int{2}, PPNs: []int{1}, Msgs: []int{16, 32}}
	sel := func(p featspace.Point) string {
		switch {
		case p.MsgBytes <= 16:
			return "a"
		case p.MsgBytes < 32:
			return "b"
		default:
			return "c"
		}
	}
	tab := BuildTable("bcast", space, sel)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	rs := tab.Buckets[0].PPNs[0].Rules
	if len(rs) != 3 {
		t.Fatalf("rules = %+v, want 3 (A/B/C regions)", rs)
	}
	for _, tc := range []struct {
		msg  int
		want string
	}{{10, "a"}, {16, "a"}, {17, "b"}, {31, "b"}, {32, "c"}, {999, "c"}} {
		got, _ := tab.Select(2, 1, tc.msg)
		if got != tc.want {
			t.Errorf("Select(msg=%d) = %s, want %s", tc.msg, got, tc.want)
		}
	}
}

func TestBuildTableMidpointMergesLeft(t *testing.T) {
	// Midpoint agrees with ALG-A: the first rule must extend to C-1.
	space := featspace.Space{Nodes: []int{2}, PPNs: []int{1}, Msgs: []int{16, 32}}
	sel := func(p featspace.Point) string {
		if p.MsgBytes < 32 {
			return "a"
		}
		return "c"
	}
	tab := BuildTable("bcast", space, sel)
	rs := tab.Buckets[0].PPNs[0].Rules
	if len(rs) != 2 {
		t.Fatalf("rules = %+v, want 2", rs)
	}
	if got, _ := tab.Select(2, 1, 31); got != "a" {
		t.Errorf("Select(31) = %s, want a", got)
	}
	if got, _ := tab.Select(2, 1, 32); got != "c" {
		t.Errorf("Select(32) = %s, want c", got)
	}
}

// Property: BuildTable over random step oracles always validates and
// reproduces the oracle at every grid point.
func TestBuildTableProperty(t *testing.T) {
	algs := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := featspace.Space{
			Nodes: []int{2, 4, 8},
			PPNs:  []int{1, 2},
			Msgs:  []int{8, 16, 32, 64, 128},
		}
		// Random monotone-region oracle per cell: pick a cutover and two algs.
		type cell struct {
			cut    int
			lo, hi string
		}
		cells := make(map[[2]int]cell)
		for _, n := range space.Nodes {
			for _, p := range space.PPNs {
				cells[[2]int{n, p}] = cell{
					cut: space.Msgs[rng.Intn(len(space.Msgs))],
					lo:  algs[rng.Intn(len(algs))],
					hi:  algs[rng.Intn(len(algs))],
				}
			}
		}
		lookup := func(pt featspace.Point) cell {
			n, p := featspace.NextP2(pt.Nodes), featspace.NextP2(pt.PPN)
			if n < 2 {
				n = 2
			}
			if n > 8 {
				n = 8
			}
			if p > 2 {
				p = 2
			}
			return cells[[2]int{n, p}]
		}
		sel := func(pt featspace.Point) string {
			c := lookup(pt)
			if pt.MsgBytes < c.cut {
				return c.lo
			}
			return c.hi
		}
		tab := BuildTable("bcast", space, sel)
		if tab.Validate() != nil {
			return false
		}
		for _, pt := range space.Points() {
			got, err := tab.Select(pt.Nodes, pt.PPN, pt.MsgBytes)
			if err != nil || got != sel(pt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildTableEmptyMsgs(t *testing.T) {
	space := featspace.Space{Nodes: []int{2}, PPNs: []int{1}}
	tab := BuildTable("bcast", space, func(featspace.Point) string { return "binomial" })
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := tab.Select(2, 1, 12345); got != "binomial" {
		t.Errorf("Select = %s", got)
	}
}
