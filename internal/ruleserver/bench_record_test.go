package ruleserver

import (
	"math/rand"
	"testing"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
)

// recordBenchFile is a production-shaped single-collective rule file
// for the in-package recording benchmark (the cross-package harness in
// bench_test.go has its own).
func recordBenchFile() *rules.File {
	rng := rand.New(rand.NewSource(99))
	levels := func(n int, scale int64) []int64 {
		out := make([]int64, 0, n)
		v := scale
		for len(out) < n-1 {
			v *= 2
			out = append(out, v)
		}
		return append(out, rules.Unbounded)
	}
	t := &rules.Table{Collective: coll.Bcast.String()}
	for _, maxNodes := range levels(10, 1) {
		nb := rules.NodeBucket{MaxNodes: maxNodes}
		for _, maxPPN := range levels(8, 1) {
			pb := rules.PPNBucket{MaxPPN: maxPPN}
			for _, maxMsg := range levels(16, 8) {
				pb.Rules = append(pb.Rules, rules.MsgRule{
					MaxMsg: maxMsg,
					Alg:    []string{"binomial", "scatter_ring_allgather"}[rng.Intn(2)],
				})
			}
			nb.PPNs = append(nb.PPNs, pb)
		}
		t.Buckets = append(t.Buckets, nb)
	}
	f := rules.NewFile("record-bench")
	f.Tables[t.Collective] = t
	return f
}

// BenchmarkLookupRecordHeadroom gates the acceptance criterion for
// every-lookup latency recording: the HDR recorder itself must add
// less than 10% to the counted lookup path. Two servers run the same
// workload; the baseline's snapshot has its recorder stripped (Record
// on a nil *HDRRecorder is a no-op), so both sides pay the identical
// atomic counters AND the identical two-clock-read bracket — the only
// delta is the histogram write. The reported metric is
//
//	record_headroom = 1.1 x best(baseline) / best(recorded)
//
// so the benchguard floor of 1.0 holds exactly when the recorder's
// added cost is under 10%. Best-of over outer iterations strips
// scheduler and frequency noise from the interleaved A/B measurement;
// the fixed inner count keeps it stable even at -benchtime=1x.
//
// (The clock bracket is deliberately part of BOTH sides: on this class
// of hardware two monotonic clock reads cost ~3x the flattened lookup
// itself, so a gate against the old sampled path would measure the
// clock, not the recorder. DESIGN.md section 8 documents the trade.)
func BenchmarkLookupRecordHeadroom(b *testing.B) {
	f := recordBenchFile()
	recorded, err := NewFromFile(f)
	if err != nil {
		b.Fatal(err)
	}
	baseline, err := NewFromFile(f)
	if err != nil {
		b.Fatal(err)
	}
	baseline.cur.Load().lat = nil // no concurrent readers yet: safe to strip pre-measurement

	rng := rand.New(rand.NewSource(5678))
	logU := func(maxExp int) int {
		v := 1 << uint(rng.Intn(maxExp))
		return v + rng.Intn(v)
	}
	const nq = 1024
	nodes := make([]int, nq)
	ppn := make([]int, nq)
	msg := make([]int, nq)
	for i := 0; i < nq; i++ {
		nodes[i] = logU(10)
		ppn[i] = logU(7)
		msg[i] = logU(21)
	}

	const inner = 200_000
	bestBase := time.Duration(1<<63 - 1)
	bestRec := bestBase
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for j := 0; j < inner; j++ {
			q := j & (nq - 1)
			if _, ok := baseline.Lookup(coll.Bcast, nodes[q], ppn[q], msg[q]); !ok {
				b.Fatal("baseline lookup missed")
			}
		}
		if d := time.Since(t0); d < bestBase {
			bestBase = d
		}
		t0 = time.Now()
		for j := 0; j < inner; j++ {
			q := j & (nq - 1)
			if _, ok := recorded.Lookup(coll.Bcast, nodes[q], ppn[q], msg[q]); !ok {
				b.Fatal("recorded lookup missed")
			}
		}
		if d := time.Since(t0); d < bestRec {
			bestRec = d
		}
	}
	if recorded.Stats().P50 <= 0 {
		b.Fatal("recorded server reported no latency quantiles")
	}
	b.ReportMetric(1.1*float64(bestBase)/float64(bestRec), "record_headroom")
}
