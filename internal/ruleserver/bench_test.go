package ruleserver_test

import (
	"math/rand"
	"testing"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
)

// benchTable builds a production-shaped rule table: node, ppn, and
// message thresholds on (and around) the power-of-two crossovers a
// paper-scale ACCLAiM run emits, including the off-P2 midpoint
// thresholds the Figure 9 logic inserts.
func benchTable(rng *rand.Rand, collective string) *rules.Table {
	levels := func(n int, scale int64) []int64 {
		out := make([]int64, 0, n)
		v := scale
		for len(out) < n-1 {
			v *= 2
			if rng.Intn(3) == 0 {
				out = append(out, v+v/2) // off-P2 midpoint threshold
			} else {
				out = append(out, v)
			}
		}
		return append(out, rules.Unbounded)
	}
	t := &rules.Table{Collective: collective}
	for _, maxNodes := range levels(10, 1) {
		nb := rules.NodeBucket{MaxNodes: maxNodes}
		for _, maxPPN := range levels(8, 1) {
			pb := rules.PPNBucket{MaxPPN: maxPPN}
			for _, maxMsg := range levels(16, 8) {
				pb.Rules = append(pb.Rules, rules.MsgRule{
					MaxMsg: maxMsg,
					Alg:    genAlgs[rng.Intn(len(genAlgs))],
				})
			}
			nb.PPNs = append(nb.PPNs, pb)
		}
		t.Buckets = append(t.Buckets, nb)
	}
	return t
}

// benchFile is a four-collective rule file at that scale.
func benchFile() *rules.File {
	rng := rand.New(rand.NewSource(1234))
	f := rules.NewFile("bench")
	for _, c := range coll.Collectives() {
		f.Tables[c.String()] = benchTable(rng, c.String())
	}
	return f
}

// benchQueries is a fixed query workload with log-uniform coordinates
// (collective-call traffic is log-distributed in message size and job
// shape), mixing P2 and non-P2 values. Parallel arrays keep the
// harness's own per-query load cost minimal and identical for both
// sides of the comparison.
type queryWorkload struct {
	nodes, ppn, msg []int
}

func benchQueries(n int) queryWorkload {
	rng := rand.New(rand.NewSource(5678))
	logU := func(maxExp int) int {
		v := 1 << uint(rng.Intn(maxExp))
		return v + rng.Intn(v) // [2^e, 2^(e+1))
	}
	w := queryWorkload{
		nodes: make([]int, n),
		ppn:   make([]int, n),
		msg:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		w.nodes[i] = logU(10)
		w.ppn[i] = logU(7)
		w.msg[i] = logU(21)
	}
	return w
}

// BenchmarkRuleServerSelect measures the flattened index on the serving
// hot path, with the snapshot pinned once via Server.Index — the
// pattern bulk consumers (trace replay, a rank's inner loop between
// reload checks) use. Gated at 0 allocs/op by benchguard and by
// TestLookupZeroAlloc; the acceptance criterion compares it against
// BenchmarkTableSelectNested (>= 5x).
func BenchmarkRuleServerSelect(b *testing.B) {
	srv, err := ruleserver.NewFromFile(benchFile())
	if err != nil {
		b.Fatal(err)
	}
	ix := srv.Index()
	qs := benchQueries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 1023
		if _, ok := ix.Lookup(coll.Bcast, qs.nodes[q], qs.ppn[q], qs.msg[q]); !ok {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkRuleServerLookupCounted measures the fully counted per-call
// path (atomic snapshot load + hit/miss accounting + sampled latency):
// what coll.ExecSelected pays per collective call.
func BenchmarkRuleServerLookupCounted(b *testing.B) {
	srv, err := ruleserver.NewFromFile(benchFile())
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 1023
		if _, ok := srv.Lookup(coll.Bcast, qs.nodes[q], qs.ppn[q], qs.msg[q]); !ok {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkTableSelectNested is the status-quo serving path this
// package replaces, exactly as cmd/acclaim's replay loop did it before:
// stringify the collective, resolve its table out of the rule file's
// map, then run the nested decision-list walk of rules.Table.Select.
// Same file, same workload as BenchmarkRuleServerSelect.
func BenchmarkTableSelectNested(b *testing.B) {
	f := benchFile()
	qs := benchQueries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 1023
		tab, ok := f.Tables[coll.Bcast.String()]
		if !ok {
			b.Fatal("no table")
		}
		if _, err := tab.Select(qs.nodes[q], qs.ppn[q], qs.msg[q]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleServerSpeedup reports the flattened-index speedup over
// the nested walk as a custom metric, so the benchguard artifact
// records the ratio the acceptance criterion gates (>= 5x). Each side
// runs the same fixed-size inner loop and the ratio is taken over each
// side's best time across outer iterations — best-of is the standard
// way to strip scheduler and frequency noise from an interleaved A/B
// measurement; a fixed inner count keeps it stable even at
// -benchtime=1x.
func BenchmarkRuleServerSpeedup(b *testing.B) {
	f := benchFile()
	srv, err := ruleserver.NewFromFile(f)
	if err != nil {
		b.Fatal(err)
	}
	ix := srv.Index()
	qs := benchQueries(1024)
	const inner = 500_000
	bestNested := time.Duration(1<<63 - 1)
	bestFlat := bestNested
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for j := 0; j < inner; j++ {
			q := j & 1023
			tab := f.Tables[coll.Bcast.String()]
			if _, err := tab.Select(qs.nodes[q], qs.ppn[q], qs.msg[q]); err != nil {
				b.Fatal(err)
			}
		}
		if nested := time.Since(t0); nested < bestNested {
			bestNested = nested
		}
		t0 = time.Now()
		for j := 0; j < inner; j++ {
			q := j & 1023
			if _, ok := ix.Lookup(coll.Bcast, qs.nodes[q], qs.ppn[q], qs.msg[q]); !ok {
				b.Fatal("lookup missed")
			}
		}
		if flat := time.Since(t0); flat < bestFlat {
			bestFlat = flat
		}
	}
	b.ReportMetric(float64(bestNested)/float64(bestFlat), "speedup")
}
