package ruleserver

import (
	"testing"

	"acclaim/internal/coll"
)

// BenchmarkWireRecordCodec measures one request-record encode+decode
// plus one response-record encode+decode — the fixed-layout per-query
// cost both ends of the wire protocol pay. The baseline entry omits
// allocs/op and B/op, so benchguard hard-gates the codecs at zero
// allocations (the runtime half of their //acclaim:zeroalloc
// annotations).
func BenchmarkWireRecordCodec(b *testing.B) {
	buf := make([]byte, reqRecordBytes+respRecordBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := putReqRecord(buf, 0, 1, uint32(coll.Bcast), 64, 8, uint32(i))
		tenant, cid, nodes, ppn, msg := getReqRecord(buf, 0)
		_ = tenant + cid + nodes + ppn + msg
		off = putRespRecord(buf, off, uint32(i&7))
		if getRespRecord(buf, off-respRecordBytes) != uint32(i&7) {
			b.Fatal("resp record corrupted")
		}
	}
}

// BenchmarkWireBatchServe measures the full warm server-side batch
// path — frame decode, per-query shard lookup, dictionary check,
// response assembly — for a 64-query batch, reported per batch. Like
// the record codec, its baseline omits allocs/op: once the algorithm
// dictionary and reused buffers are warm, serving a batch must not
// allocate.
func BenchmarkWireBatchServe(b *testing.B) {
	reg := NewRegistry()
	key := TenantKey{Cluster: "bench", JobClass: "default", MPIVer: "default"}
	if err := reg.Swap(key, wireTestFile()); err != nil {
		b.Fatal(err)
	}
	srv, _ := reg.Tenant(key)
	sc := &serverConn{algID: map[string]uint32{}, shards: []*Server{srv}, found: []bool{true}}

	const batch = 64
	buf := make([]byte, 5+batch*reqRecordBytes)
	buf[0] = frameBatchReq
	buf[1] = batch
	off := 5
	for i := 0; i < batch; i++ {
		off = putReqRecord(buf, off, 0, uint32(coll.Bcast), 4, 8, uint32(1<<uint(i%20)))
	}
	if _, err := sc.handleBatch(buf); err != nil { // warm dict + buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.handleBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}
