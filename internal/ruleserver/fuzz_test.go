package ruleserver_test

import (
	"math/rand"
	"testing"

	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
)

// FuzzSelectDifferential proves the flattened index is observationally
// identical to the nested rules.Table.Select walk: for an arbitrary
// generated rule table (derived deterministically from seed) and an
// arbitrary (nodes, ppn, msg) query — including negative, zero, and
// near-Unbounded values — both paths must return byte-identical
// algorithms, and must agree on misses. The fuzzer owns the query
// coordinates directly so it can drive them to the boundary values a
// hand-written generator would undersample; threshold-neighbour probes
// are swept on top for every table it invents.
//
// Seeded corpus: testdata/fuzz/FuzzSelectDifferential. CI runs this
// target for 30s per push (the fuzz-smoke job).
func FuzzSelectDifferential(f *testing.F) {
	f.Add(int64(1), 4, 2, 4096)
	f.Add(int64(42), 64, 32, 1<<20)
	f.Add(int64(-9), 0, -1, -100)
	f.Add(int64(7), 1<<30, 1<<20, int(rules.Unbounded))
	f.Fuzz(func(t *testing.T, seed int64, nodes, ppn, msg int) {
		rng := rand.New(rand.NewSource(seed))
		file := genFile(rng, "bcast")
		tab := file.Tables["bcast"]
		ix, err := ruleserver.Compile(file)
		if err != nil {
			t.Fatalf("generator produced an invalid table: %v", err)
		}

		// The fuzzed query itself.
		diffTable(t, ix, tab, nodes, ppn, msg)

		// Every threshold neighbourhood at the fuzzed coordinates, and
		// the fuzzed coordinate at every threshold neighbourhood.
		nodesP, ppnP, msgP := thresholdProbes(tab)
		for _, n := range nodesP {
			diffTable(t, ix, tab, int(n), ppn, msg)
		}
		for _, p := range ppnP {
			diffTable(t, ix, tab, nodes, int(p), msg)
		}
		for _, m := range msgP {
			diffTable(t, ix, tab, nodes, ppn, int(m))
		}
	})
}
