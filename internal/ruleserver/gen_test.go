package ruleserver_test

import (
	"math/rand"

	"acclaim/internal/rules"
)

// genAlgs is the name pool for generated tables; real MPICH algorithm
// names plus short ones so interning sees both.
var genAlgs = []string{
	"binomial", "ring", "brucks", "recursive_doubling",
	"scatter_ring_allgather", "reduce_scatter_allgather", "a", "b",
}

// ascending returns n strictly ascending positive thresholds with a
// final Unbounded catch-all, drawn on a rough power-of-two scale so
// generated tables look like real rule files.
func ascending(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	v := int64(0)
	for i := 0; i < n-1; i++ {
		v += 1 + rng.Int63n(1<<uint(2+rng.Intn(12)))
		out[i] = v
	}
	out[n-1] = rules.Unbounded
	return out
}

// genTable builds a random valid (complete, ascending) rule table: the
// differential-fuzz input domain. Validity is by construction, matching
// what rules.Validate enforces.
func genTable(rng *rand.Rand, collective string) *rules.Table {
	t := &rules.Table{Collective: collective}
	for _, maxNodes := range ascending(rng, 1+rng.Intn(5)) {
		nb := rules.NodeBucket{MaxNodes: maxNodes}
		for _, maxPPN := range ascending(rng, 1+rng.Intn(4)) {
			pb := rules.PPNBucket{MaxPPN: maxPPN}
			for _, maxMsg := range ascending(rng, 1+rng.Intn(8)) {
				pb.Rules = append(pb.Rules, rules.MsgRule{
					MaxMsg: maxMsg,
					Alg:    genAlgs[rng.Intn(len(genAlgs))],
				})
			}
			nb.PPNs = append(nb.PPNs, pb)
		}
		t.Buckets = append(t.Buckets, nb)
	}
	return t
}

// genFile wraps generated tables for the given collective names.
func genFile(rng *rand.Rand, collectives ...string) *rules.File {
	f := rules.NewFile("gen")
	for _, c := range collectives {
		f.Tables[c] = genTable(rng, c)
	}
	return f
}

// thresholdProbes returns every threshold in the table along with its
// neighbours — the values where the flattened index and the nested walk
// are most likely to disagree off-by-one.
func thresholdProbes(t *rules.Table) (nodes, ppns, msgs []int64) {
	add := func(dst *[]int64, v int64) {
		*dst = append(*dst, v-1, v, v+1)
	}
	for _, nb := range t.Buckets {
		add(&nodes, nb.MaxNodes)
		for _, pb := range nb.PPNs {
			add(&ppns, pb.MaxPPN)
			for _, r := range pb.Rules {
				add(&msgs, r.MaxMsg)
			}
		}
	}
	return
}
