package ruleserver

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"acclaim/internal/coll"
)

// SelectRequest is the /v1/select input, as query parameters (GET) or
// a JSON body (POST).
type SelectRequest struct {
	Collective string `json:"collective"`
	Nodes      int    `json:"nodes"`
	PPN        int    `json:"ppn"`
	Msg        int    `json:"msg"`
}

// SelectResponse is the /v1/select output. A miss keeps OK=false with
// no algorithm — a deployment-visible condition, not an HTTP error.
type SelectResponse struct {
	Algorithm string `json:"algorithm,omitempty"`
	OK        bool   `json:"ok"`
}

// SelectHandler serves the minimal selection API acclaim-serve mounts
// at /v1/select and cmd/acclaim-loadgen drives in its out-of-process
// mode: one lock-free lookup per request, JSON in and out. Malformed
// input is a 400; a miss is a 200 with ok=false.
func SelectHandler(srv *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req SelectRequest
		switch r.Method {
		case http.MethodGet:
			q := r.URL.Query()
			req.Collective = q.Get("collective")
			var err error
			if req.Nodes, err = strconv.Atoi(q.Get("nodes")); err != nil {
				http.Error(w, "bad nodes", http.StatusBadRequest)
				return
			}
			if req.PPN, err = strconv.Atoi(q.Get("ppn")); err != nil {
				http.Error(w, "bad ppn", http.StatusBadRequest)
				return
			}
			if req.Msg, err = strconv.Atoi(q.Get("msg")); err != nil {
				http.Error(w, "bad msg", http.StatusBadRequest)
				return
			}
		case http.MethodPost:
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
				http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
				return
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		c, err := coll.ParseCollective(req.Collective)
		if err != nil || req.Nodes <= 0 || req.PPN <= 0 || req.Msg < 0 {
			http.Error(w, "bad request: want collective, nodes>0, ppn>0, msg>=0", http.StatusBadRequest)
			return
		}
		alg, ok := srv.Lookup(c, req.Nodes, req.PPN, req.Msg)
		if !ok {
			alg = ""
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(SelectResponse{Algorithm: alg, OK: ok}); err != nil {
			return
		}
	}
}
