package ruleserver

import (
	"encoding/json"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"

	"acclaim/internal/coll"
)

// SelectRequest is the /v1/select input, as query parameters (GET) or
// a JSON body (POST).
type SelectRequest struct {
	Collective string `json:"collective"`
	Nodes      int    `json:"nodes"`
	PPN        int    `json:"ppn"`
	Msg        int    `json:"msg"`
}

// SelectResponse is the /v1/select output. A miss keeps OK=false with
// no algorithm — a deployment-visible condition, not an HTTP error.
type SelectResponse struct {
	Algorithm string `json:"algorithm,omitempty"`
	OK        bool   `json:"ok"`
}

// respBufPool recycles response encode buffers across requests. The
// two response shapes are fixed, so they are hand-encoded into a
// pooled buffer (the obs.EventLog line idiom) instead of paying
// json.NewEncoder's per-request encoder and reflection walk. The
// encoding stays byte-identical to encoding/json's, trailing newline
// included, so existing clients and golden tests see no change.
var respBufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 128) },
}

// appendSelectResponse hand-encodes resp exactly as
// json.NewEncoder(w).Encode(resp) would.
func appendSelectResponse(b []byte, resp SelectResponse) []byte {
	if resp.OK {
		b = append(b, `{"algorithm":`...)
		b = strconv.AppendQuote(b, resp.Algorithm)
		b = append(b, `,"ok":true}`...)
	} else if resp.Algorithm != "" {
		b = append(b, `{"algorithm":`...)
		b = strconv.AppendQuote(b, resp.Algorithm)
		b = append(b, `,"ok":false}`...)
	} else {
		b = append(b, `{"ok":false}`...)
	}
	return append(b, '\n')
}

// writeSelectResponse writes resp through a pooled buffer.
func writeSelectResponse(w http.ResponseWriter, resp SelectResponse) {
	buf := respBufPool.Get().([]byte)
	buf = appendSelectResponse(buf[:0], resp)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
	respBufPool.Put(buf[:0]) //nolint:staticcheck // slice header round-trips through the pool by design
}

// postIsJSON reports whether a POST's declared Content-Type is JSON.
// An absent Content-Type is accepted for curl-friendliness; a present
// one must parse to application/json.
func postIsJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// SelectHandler serves the minimal selection API acclaim-serve mounts
// at /v1/select and cmd/acclaim-loadgen drives in its out-of-process
// mode: one lock-free lookup per request, JSON in and out. Malformed
// input is a 400, a mislabeled POST body a 415; a miss is a 200 with
// ok=false.
func SelectHandler(srv *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req SelectRequest
		switch r.Method {
		case http.MethodGet:
			q := r.URL.Query()
			req.Collective = q.Get("collective")
			var err error
			if req.Nodes, err = strconv.Atoi(q.Get("nodes")); err != nil {
				http.Error(w, "bad nodes", http.StatusBadRequest)
				return
			}
			if req.PPN, err = strconv.Atoi(q.Get("ppn")); err != nil {
				http.Error(w, "bad ppn", http.StatusBadRequest)
				return
			}
			if req.Msg, err = strconv.Atoi(q.Get("msg")); err != nil {
				http.Error(w, "bad msg", http.StatusBadRequest)
				return
			}
		case http.MethodPost:
			if !postIsJSON(r) {
				http.Error(w, "unsupported Content-Type: want application/json", http.StatusUnsupportedMediaType)
				return
			}
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
				http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
				return
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		c, err := coll.ParseCollective(req.Collective)
		if err != nil || req.Nodes <= 0 || req.PPN <= 0 || req.Msg < 0 {
			http.Error(w, "bad request: want collective, nodes>0, ppn>0, msg>=0", http.StatusBadRequest)
			return
		}
		alg, ok := srv.Lookup(c, req.Nodes, req.PPN, req.Msg)
		if !ok {
			alg = ""
		}
		writeSelectResponse(w, SelectResponse{Algorithm: alg, OK: ok})
	}
}
