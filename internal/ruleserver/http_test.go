package ruleserver_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"acclaim/internal/ruleserver"
)

func selectServer(t *testing.T) http.HandlerFunc {
	t.Helper()
	srv, err := ruleserver.NewFromFile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	return ruleserver.SelectHandler(srv)
}

func TestSelectHandlerTable(t *testing.T) {
	h := selectServer(t)
	cases := []struct {
		name     string
		method   string
		url      string
		body     string
		ctype    string
		wantCode int
		wantBody string // exact for 200s, substring for errors
	}{
		{
			name: "GET hit", method: http.MethodGet,
			url:      "/v1/select?collective=bcast&nodes=4&ppn=8&msg=512",
			wantCode: http.StatusOK, wantBody: `{"algorithm":"binomial","ok":true}` + "\n",
		},
		{
			name: "GET miss uncovered collective", method: http.MethodGet,
			url:      "/v1/select?collective=gather&nodes=4&ppn=8&msg=512",
			wantCode: http.StatusOK, wantBody: `{"ok":false}` + "\n",
		},
		{
			name: "POST hit", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"bcast","nodes":16,"ppn":8,"msg":32}`, ctype: "application/json",
			wantCode: http.StatusOK, wantBody: `{"algorithm":"binomial","ok":true}` + "\n",
		},
		{
			name: "POST with charset param", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"bcast","nodes":16,"ppn":8,"msg":32}`, ctype: "application/json; charset=utf-8",
			wantCode: http.StatusOK, wantBody: `{"algorithm":"binomial","ok":true}` + "\n",
		},
		{
			name: "405 method not allowed", method: http.MethodDelete, url: "/v1/select",
			wantCode: http.StatusMethodNotAllowed, wantBody: "method not allowed",
		},
		{
			name: "415 wrong content type", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"bcast","nodes":16,"ppn":8,"msg":32}`, ctype: "text/plain",
			wantCode: http.StatusUnsupportedMediaType, wantBody: "want application/json",
		},
		{
			name: "400 bad JSON", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":`, ctype: "application/json",
			wantCode: http.StatusBadRequest, wantBody: "bad JSON body",
		},
		{
			name: "400 unknown collective", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"sendrecv","nodes":4,"ppn":8,"msg":512}`, ctype: "application/json",
			wantCode: http.StatusBadRequest, wantBody: "bad request",
		},
		{
			name: "400 negative msg", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"bcast","nodes":4,"ppn":8,"msg":-1}`, ctype: "application/json",
			wantCode: http.StatusBadRequest, wantBody: "bad request",
		},
		{
			name: "400 zero nodes", method: http.MethodPost, url: "/v1/select",
			body: `{"collective":"bcast","nodes":0,"ppn":8,"msg":512}`, ctype: "application/json",
			wantCode: http.StatusBadRequest, wantBody: "bad request",
		},
		{
			name: "400 non-numeric GET nodes", method: http.MethodGet,
			url:      "/v1/select?collective=bcast&nodes=abc&ppn=8&msg=512",
			wantCode: http.StatusBadRequest, wantBody: "bad nodes",
		},
		{
			name: "400 missing GET ppn", method: http.MethodGet,
			url:      "/v1/select?collective=bcast&nodes=4&msg=512",
			wantCode: http.StatusBadRequest, wantBody: "bad ppn",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.url, body)
			if tc.ctype != "" {
				req.Header.Set("Content-Type", tc.ctype)
			}
			rec := httptest.NewRecorder()
			h(rec, req)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %q)", rec.Code, tc.wantCode, rec.Body.String())
			}
			got := rec.Body.String()
			if tc.wantCode == http.StatusOK {
				if got != tc.wantBody {
					t.Fatalf("body = %q, want %q", got, tc.wantBody)
				}
				if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
					t.Fatalf("Content-Type = %q", ct)
				}
			} else if !strings.Contains(got, tc.wantBody) {
				t.Fatalf("body = %q, want containing %q", got, tc.wantBody)
			}
		})
	}
}

// TestSelectResponseEncodingMatchesJSON pins the hand-encoded pooled
// response bytes to exactly what json.NewEncoder produced before the
// rewrite, so wire-format consumers (and the loadgen HTTP client) see
// no change.
func TestSelectResponseEncodingMatchesJSON(t *testing.T) {
	h := selectServer(t)
	for _, q := range []string{
		"/v1/select?collective=bcast&nodes=4&ppn=8&msg=512",     // hit
		"/v1/select?collective=gather&nodes=4&ppn=8&msg=512",    // miss
		"/v1/select?collective=reduce&nodes=64&ppn=32&msg=4096", // hit, other table
	} {
		req := httptest.NewRequest(http.MethodGet, q, nil)
		rec := httptest.NewRecorder()
		h(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", q, rec.Code)
		}
		var sr ruleserver.SelectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := json.Marshal(sr)
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.Body.String(); got != string(want)+"\n" {
			t.Fatalf("%s: hand-encoded %q, encoding/json %q", q, got, string(want)+"\n")
		}
	}
}
