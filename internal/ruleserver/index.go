// Package ruleserver is the collective-call hot path: a concurrent
// serving engine for MPICH-style selection-rule files (the artifact
// ACCLAiM emits after training, Section V of the paper).
//
// The nested rules.Table decision list is the right shape for humans
// and for the JSON wire format, but the wrong shape for a lookup that
// runs on every collective call of every rank. Compile flattens a
// validated rules.File into an immutable Index: per collective, the
// node/ppn/message thresholds become three contiguous int64 arrays
// resolved by inlined binary search, and algorithm names are interned
// into a shared string table so a lookup touches a handful of cache
// lines and allocates nothing.
//
// Server wraps an Index in an atomic.Pointer snapshot so unbounded
// concurrent readers never take a lock, and a retuning round can
// hot-swap a freshly emitted rule file while in-flight lookups finish
// on the old snapshot. See DESIGN.md, "Serving layer".
package ruleserver

import (
	"fmt"
	"math/bits"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
)

// numExp is the number of power-of-two exponent cells a query value can
// land in: cell 0 holds v <= 0, cell 1 holds {1}, cell 2 holds {2}, and
// cell e >= 3 holds (2^(e-2), 2^(e-1)]. The top cell absorbs everything
// above 2^61 (queries that large scan a step or two more; nothing real
// lives up there). A power-of-two cell count keeps the per-bucket start
// table stride a shift, not a multiply.
const numExp = 64

// expShift is log2(numExp), for composing 2-D cell indices.
const expShift = 6

// maxNodeResolve and maxPPNResolve bound the exact-resolve tables (see
// tableIndex.nodeResolve): tables whose last finite node threshold or
// node-buckets x ppn-limit product exceed these fall back to the
// exponent-cell walk. Real rule files sit far below both.
const (
	maxNodeResolve = 1 << 12
	maxPPNResolve  = 1 << 15
)

// tableIndex is one collective's flattened decision list.
//
// The three bucket levels of the nested table are laid out as parallel
// arrays with CSR-style offsets: node bucket i owns the ppn thresholds
// ppnMax[ppnOff[i]:ppnOff[i+1]], and ppn bucket j owns the message
// thresholds msgMax[ruleOff[j]:ruleOff[j+1]]. Each msg slot carries the
// index of its algorithm in the interned string table. Thresholds are
// inclusive upper bounds, ascending, ending in rules.Unbounded, exactly
// as rules.Validate guarantees.
//
// On top of the flat arrays sits an exponent accelerator: for every
// power-of-two cell of the query value, the compiled start tables hold
// the first bucket a value in that cell can resolve to. A lookup is
// then bits.Len plus a scan over only the thresholds that fall inside
// the query's own power-of-two cell — almost always zero or one step,
// since real rule files put at most a threshold or two between
// consecutive powers of two. No binary search, no per-call allocation.
//
//acclaim:frozen
type tableIndex struct {
	nodeMax []int64
	ppnOff  []int32
	ppnMax  []int64
	ruleOff []int32
	msgMax  []int64
	algID   []int32
	algs    []string
	algAt   []string // algAt[k] == algs[algID[k]]: one load on the hot path

	// Exponent start tables. nodeStart[e] is the first node bucket a
	// value in exponent cell e can select; ppnStart[i*numExp+e] and
	// msgStart[j*numExp+e] are the per-parent-bucket equivalents
	// (global indices into ppnMax / msgMax). nodeStart is a fixed-size
	// array pointer so masked indexing needs no bounds check.
	nodeStart *[numExp]int32
	ppnStart  []int32
	msgStart  []int32

	// Exact-resolve tables for the two small dimensions. Node counts
	// and ppn are small integers, so the bucket for every value up to
	// the last finite threshold is precomputed outright:
	// nodeResolve[clamp(nodes)] is the exact node bucket and
	// ppnResolve[i*ppnLimit+clamp(ppn)] the exact global ppn bucket —
	// one load each, no search, no scan, no branch to mispredict.
	// Values past the end of a table clamp onto the catch-all entry,
	// which is exactly where the nested walk sends them too. Both are
	// nil (and the lookup takes the walk) for tables with finite
	// thresholds too large to enumerate; real rule files never are.
	nodeResolve []int32
	ppnResolve  []int32
	ppnLimit    int
}

// expOf maps a query value to its exponent cell. Cells are aligned to
// power-of-two *upper* bounds (cell e >= 3 covers (2^(e-2), 2^(e-1)]),
// so a rule bucket whose threshold is an exact power of two (the
// overwhelmingly common case in generated rule files) covers whole
// cells and the in-cell scan terminates on its first probe.
func expOf(v int) int {
	if v < 1 {
		return 0
	}
	return min(1+bits.Len64(uint64(v-1)), numExp-1)
}

// expLo returns the smallest value in exponent cell e (0 for cell 0,
// standing in for "any non-positive value").
func expLo(e int) int64 {
	switch {
	case e <= 0:
		return 0
	case e == 1:
		return 1
	default:
		return int64(1)<<uint(e-2) + 1
	}
}

// expHi returns the largest value in exponent cell e (the top cell is
// unbounded above because expOf clamps).
func expHi(e int) int64 {
	switch {
	case e <= 0:
		return 0
	case e >= numExp-1:
		return rules.Unbounded
	default:
		return int64(1) << uint(e-1)
	}
}

// startTable computes, for one ascending threshold span, the first
// index a value in each exponent cell can resolve to: the position of
// the first threshold >= the cell's smallest value. When the whole cell
// resolves to a single index — every threshold is either below the cell
// or at/above its top, which power-of-two thresholds guarantee — the
// entry stores that index bit-inverted (^idx, always negative): the
// lookup recognises the sign and skips the threshold scan for that
// level entirely, shaving a dependent load off the critical path.
func startTable(dst []int32, span []int64, base int32) []int32 {
	for e := 0; e < numExp; e++ {
		lo := base + int32(searchGE(span, expLo(e)))
		if hi := base + int32(searchGE(span, expHi(e))); hi == lo {
			dst = append(dst, ^lo)
			continue
		}
		dst = append(dst, lo)
	}
	return dst
}

// Index is an immutable compiled rule file. It is safe for unbounded
// concurrent readers; all mutation happens by compiling a replacement.
//
//acclaim:frozen
type Index struct {
	byColl [coll.NumCollectives]*tableIndex // fast path: known collectives
	byName map[string]*tableIndex           // generic path: any table name
	rules  int                              // total message-level rules
}

// Compile validates the file and flattens every table. The input file
// is not retained: the index copies what it needs, so callers may keep
// mutating the File afterwards.
func Compile(f *rules.File) (*Index, error) {
	if f == nil {
		return nil, fmt.Errorf("ruleserver: nil rule file")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("ruleserver: %w", err)
	}
	ix := &Index{byName: make(map[string]*tableIndex, len(f.Tables))}
	for name, t := range f.Tables {
		ti := flatten(t)
		ix.byName[name] = ti
		ix.rules += len(ti.msgMax)
		if c, err := coll.ParseCollective(name); err == nil {
			ix.byColl[int(c)] = ti
		}
	}
	return ix, nil
}

// flatten lowers one validated table.
func flatten(t *rules.Table) *tableIndex {
	ti := &tableIndex{}
	intern := map[string]int32{}
	for _, nb := range t.Buckets {
		ti.nodeMax = append(ti.nodeMax, nb.MaxNodes)
		ti.ppnOff = append(ti.ppnOff, int32(len(ti.ppnMax)))
		for _, pb := range nb.PPNs {
			ti.ppnMax = append(ti.ppnMax, pb.MaxPPN)
			ti.ruleOff = append(ti.ruleOff, int32(len(ti.msgMax)))
			for _, r := range pb.Rules {
				id, ok := intern[r.Alg]
				if !ok {
					id = int32(len(ti.algs))
					ti.algs = append(ti.algs, r.Alg)
					intern[r.Alg] = id
				}
				ti.msgMax = append(ti.msgMax, r.MaxMsg)
				ti.algID = append(ti.algID, id)
				ti.algAt = append(ti.algAt, ti.algs[id])
			}
		}
	}
	// Closing offsets so level i's span is always off[i]:off[i+1].
	ti.ppnOff = append(ti.ppnOff, int32(len(ti.ppnMax)))
	ti.ruleOff = append(ti.ruleOff, int32(len(ti.msgMax)))

	// Exponent accelerator: per-cell start positions for every level.
	ti.nodeStart = (*[numExp]int32)(startTable(nil, ti.nodeMax, 0))
	for i := 0; i+1 < len(ti.ppnOff); i++ {
		lo, hi := ti.ppnOff[i], ti.ppnOff[i+1]
		ti.ppnStart = startTable(ti.ppnStart, ti.ppnMax[lo:hi], lo)
	}
	for j := 0; j+1 < len(ti.ruleOff); j++ {
		lo, hi := ti.ruleOff[j], ti.ruleOff[j+1]
		ti.msgStart = startTable(ti.msgStart, ti.msgMax[lo:hi], lo)
	}
	// Exact-resolve tables for the node and ppn dimensions. lastFinite
	// is the largest non-Unbounded threshold of a span (0 when the span
	// is a lone catch-all); one entry past it clamps every larger value
	// onto the catch-all bucket.
	lastFinite := func(span []int64) int64 {
		if n := len(span); n >= 2 {
			return span[n-2]
		}
		return 0
	}
	nLimit := lastFinite(ti.nodeMax) + 2
	pLimit := int64(0)
	for i := 0; i+1 < len(ti.ppnOff); i++ {
		span := ti.ppnMax[ti.ppnOff[i]:ti.ppnOff[i+1]]
		if lf := lastFinite(span) + 2; lf > pLimit {
			pLimit = lf
		}
	}
	if nLimit <= maxNodeResolve && int64(len(ti.nodeMax))*pLimit <= maxPPNResolve {
		ti.nodeResolve = make([]int32, nLimit)
		for v := range ti.nodeResolve {
			ti.nodeResolve[v] = int32(searchGE(ti.nodeMax, int64(v)))
		}
		ti.ppnLimit = int(pLimit)
		ti.ppnResolve = make([]int32, len(ti.nodeMax)*ti.ppnLimit)
		for i := 0; i+1 < len(ti.ppnOff); i++ {
			base := ti.ppnOff[i]
			span := ti.ppnMax[base:ti.ppnOff[i+1]]
			for v := 0; v < ti.ppnLimit; v++ {
				ti.ppnResolve[i*ti.ppnLimit+v] = base + int32(searchGE(span, int64(v)))
			}
		}
	}
	return ti
}

// searchGE returns the index of the first element >= v, len(a) if none.
// It is the manual form of sort.Search's loop: no closure, no function
// pointer, so it inlines into the lookup and stays allocation-free.
func searchGE(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lookup resolves one query against the flattened table: exact-resolve
// loads for the node and ppn dimensions, exponent cell plus in-cell
// scan for the message dimension, falling back to the general walk for
// the rare table too large to enumerate. Misses are impossible for
// tables compiled from a validated file, so the result bool only
// exists for symmetry with Index.Lookup.
//
//acclaim:zeroalloc
func (ti *tableIndex) lookup(nodes, ppn, msg int) (string, bool) {
	if ti.ppnResolve == nil {
		return ti.walk(nodes, ppn, msg)
	}
	nv := nodes
	if nv < 0 {
		nv = 0
	}
	if nv > len(ti.nodeResolve)-1 {
		nv = len(ti.nodeResolve) - 1
	}
	i := int(ti.nodeResolve[nv])
	pv := ppn
	if pv < 0 {
		pv = 0
	}
	if pv > ti.ppnLimit-1 {
		pv = ti.ppnLimit - 1
	}
	j := int(ti.ppnResolve[i*ti.ppnLimit+pv])
	k := int(ti.msgStart[j<<expShift|(expOf(msg)&(numExp-1))])
	if k < 0 {
		k = ^k
	} else {
		for m := int64(msg); ti.msgMax[k] < m; {
			k++
		}
	}
	return ti.algAt[k], true
}

// walk is the general three-level resolution. Each level jumps to its
// exponent cell's start position and scans only the thresholds inside
// the query's own power-of-two cell — a step or two at most in real
// rule files, so even this path is effectively constant time.
//
// The scans carry no explicit upper bound: Compile only builds indexes
// from validated tables, and validation guarantees every level ends in
// an Unbounded catch-all, which no query value can exceed (Unbounded is
// MaxInt64). The implicit slice bounds checks remain as the memory-
// safety backstop.
//
//acclaim:zeroalloc
func (ti *tableIndex) walk(nodes, ppn, msg int) (string, bool) {
	i := int(ti.nodeStart[expOf(nodes)&(numExp-1)])
	if i < 0 {
		i = ^i // cell resolved at compile time, no scan
	} else {
		for n := int64(nodes); ti.nodeMax[i] < n; {
			i++
		}
	}
	j := int(ti.ppnStart[i*numExp+expOf(ppn)])
	if j < 0 {
		j = ^j
	} else {
		for p := int64(ppn); ti.ppnMax[j] < p; {
			j++
		}
	}
	k := int(ti.msgStart[j*numExp+expOf(msg)])
	if k < 0 {
		k = ^k
	} else {
		for m := int64(msg); ti.msgMax[k] < m; {
			k++
		}
	}
	return ti.algAt[k], true
}

// Lookup resolves a collective call on the fast path (array-indexed by
// the collective enum). It returns false only when the index has no
// table for the collective; for a table compiled by Compile the walk
// itself cannot miss (validation guarantees Unbounded catch-alls at
// every level).
//
// The per-table walk is manually inlined here (rather than calling
// tableIndex.lookup) to keep the hot path a single non-inlined call
// deep; at single-digit nanoseconds per lookup a second call frame is
// measurable.
//
//acclaim:zeroalloc
func (ix *Index) Lookup(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	if uint(c) >= uint(len(ix.byColl)) {
		return "", false
	}
	ti := ix.byColl[int(c)]
	if ti == nil {
		return "", false
	}
	if ti.ppnResolve == nil {
		return ti.walk(nodes, ppn, msg)
	}
	nv := nodes
	if nv < 0 {
		nv = 0
	}
	if nv > len(ti.nodeResolve)-1 {
		nv = len(ti.nodeResolve) - 1
	}
	i := int(ti.nodeResolve[nv])
	pv := ppn
	if pv < 0 {
		pv = 0
	}
	if pv > ti.ppnLimit-1 {
		pv = ti.ppnLimit - 1
	}
	j := int(ti.ppnResolve[i*ti.ppnLimit+pv])
	k := int(ti.msgStart[j<<expShift|(expOf(msg)&(numExp-1))])
	if k < 0 {
		k = ^k
	} else {
		for m := int64(msg); ti.msgMax[k] < m; {
			k++
		}
	}
	return ti.algAt[k], true
}

// LookupName resolves a query by table name, for tables whose names are
// not known collectives (or callers holding only strings).
//
//acclaim:zeroalloc
func (ix *Index) LookupName(collective string, nodes, ppn, msg int) (string, bool) {
	ti := ix.byName[collective]
	if ti == nil {
		return "", false
	}
	return ti.lookup(nodes, ppn, msg)
}

// Tables returns the table names in the index (unordered).
func (ix *Index) Tables() []string {
	out := make([]string, 0, len(ix.byName))
	for name := range ix.byName {
		out = append(out, name)
	}
	return out
}

// NumRules returns the total number of message-level rules compiled in.
func (ix *Index) NumRules() int { return ix.rules }
