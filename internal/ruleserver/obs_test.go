package ruleserver_test

import (
	"strings"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/ruleserver"
)

// TestRegisterMatchesStats pins the migration contract: the registry
// view and the legacy Stats() view read the same per-epoch counters, so
// they must always agree — including after a hot swap resets the epoch.
func TestRegisterMatchesStats(t *testing.T) {
	srv, err := ruleserver.NewFromFile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.Register(reg)

	check := func(when string) {
		t.Helper()
		st := srv.Stats()
		snap := reg.Snapshot()
		want := map[string]float64{
			"ruleserver.lookups":          float64(st.Hits + st.Misses),
			"ruleserver.hits":             float64(st.Hits),
			"ruleserver.misses":           float64(st.Misses),
			"ruleserver.snapshot_version": float64(st.Version),
			"ruleserver.tables":           float64(st.Tables),
			"ruleserver.rules":            float64(st.Rules),
			"ruleserver.swaps_total":      float64(st.Swaps),
		}
		for name, w := range want {
			if got := snap[name]; got != w {
				t.Errorf("%s: %s = %v, want %v (stats %+v)", when, name, got, w, st)
			}
		}
		lat, ok := snap["ruleserver.lookup_latency_ns"].(obs.HDRSnapshot)
		if !ok {
			t.Fatalf("%s: lookup_latency_ns is %T", when, snap["ruleserver.lookup_latency_ns"])
		}
		// Every lookup is recorded: the histogram population equals the
		// lookup counters exactly.
		if lat.Count != uint64(st.Hits+st.Misses) {
			t.Errorf("%s: latency samples %d != lookups %d", when, lat.Count, st.Hits+st.Misses)
		}
		// Per-collective counters roll up to the totals.
		var perLookups, perMisses float64
		for name, v := range snap {
			if !strings.HasPrefix(name, "ruleserver.") {
				continue
			}
			if strings.HasSuffix(name, ".lookups") && strings.Count(name, ".") == 2 {
				perLookups += v.(float64)
			}
			if strings.HasSuffix(name, ".misses") && strings.Count(name, ".") == 2 {
				perMisses += v.(float64)
			}
		}
		if perLookups != float64(st.Hits+st.Misses) || perMisses != float64(st.Misses) {
			t.Errorf("%s: per-collective rollup %v/%v != totals %d/%d",
				when, perLookups, perMisses, st.Hits+st.Misses, st.Misses)
		}
	}

	check("fresh")
	for i := 0; i < 500; i++ {
		srv.Lookup(coll.Bcast, 4, 2, 256)     // hit
		srv.Lookup(coll.Allreduce, 4, 2, 256) // miss: not in fixture
	}
	if st := srv.Stats(); st.Hits != 500 || st.Misses != 500 {
		t.Fatalf("stats = %+v, want 500 hits / 500 misses", st)
	}
	check("after traffic")

	// Swap starts a new epoch: both views must read zero lookup counters
	// and the bumped version, with no re-Register needed.
	if err := srv.Swap(fixtureFile()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Version != 2 {
		t.Fatalf("post-swap stats = %+v", st)
	}
	check("after swap")

	srv.Lookup(coll.Bcast, 4, 2, 256)
	check("new epoch traffic")
}

// TestRegisterPrometheus smoke-checks that the migrated counters render
// on the /metrics endpoint acclaim-serve exposes.
func TestRegisterPrometheus(t *testing.T) {
	srv, err := ruleserver.NewFromFile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.Register(reg)
	srv.Lookup(coll.Bcast, 4, 2, 256)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ruleserver_lookups 1",
		"ruleserver_hits 1",
		"ruleserver_misses 0",
		"ruleserver_snapshot_version 1",
		"# TYPE ruleserver_lookup_latency_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

// TestRegisterNilRegistry pins that Register on a nil registry is a
// no-op rather than a panic.
func TestRegisterNilRegistry(t *testing.T) {
	srv, err := ruleserver.NewFromFile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(nil)
}
