package ruleserver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
)

// TenantKey identifies one rule-serving tenant: a (cluster, job class,
// MPI version) triple. Every distinct deployment surface a tuning
// fleet serves — a machine, a queue partition, an MPI build — gets its
// own independently swappable rule table, which is how one registry
// process serves many jobs without their retuning cycles interfering.
type TenantKey struct {
	Cluster  string
	JobClass string
	MPIVer   string
}

// DefaultTenant is the key single-tenant deployments implicitly use
// (acclaim-serve -rules with no -tenant flags).
var DefaultTenant = TenantKey{Cluster: "default", JobClass: "default", MPIVer: "default"}

// String renders the key as "cluster/jobclass/mpiver", the wire and
// CLI spelling ParseTenantKey accepts.
func (k TenantKey) String() string {
	return k.Cluster + "/" + k.JobClass + "/" + k.MPIVer
}

// ParseTenantKey parses "cluster/jobclass/mpiver". All three segments
// must be non-empty and contain no further slashes.
func ParseTenantKey(s string) (TenantKey, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return TenantKey{}, fmt.Errorf("ruleserver: bad tenant key %q (want cluster/jobclass/mpiver)", s)
	}
	return TenantKey{Cluster: parts[0], JobClass: parts[1], MPIVer: parts[2]}, nil
}

// shardTable is one published generation of the tenant-to-shard map.
// It is immutable after construction: adding a tenant builds a new
// table and publishes it atomically, so Tenant never takes a lock. The
// *Server shard pointers themselves are stable for the life of the
// registry — a rule swap on one tenant goes through its shard's own
// atomic snapshot and never touches this table, which is what makes
// shard hot-reloads independent per tenant.
//
//acclaim:frozen
type shardTable struct {
	keys   []TenantKey // sorted by String(), for deterministic iteration
	shards map[TenantKey]*Server
}

// newShardTable builds the successor table: old's entries plus (key,
// srv).
func newShardTable(old *shardTable, key TenantKey, srv *Server) *shardTable {
	t := &shardTable{shards: make(map[TenantKey]*Server, len(old.shards)+1)}
	for k, s := range old.shards {
		t.shards[k] = s
	}
	t.shards[key] = srv
	t.keys = make([]TenantKey, 0, len(t.shards))
	for k := range t.shards {
		t.keys = append(t.keys, k)
	}
	sort.Slice(t.keys, func(i, j int) bool { return t.keys[i].String() < t.keys[j].String() })
	return t
}

// Registry is a sharded multi-tenant rule store: one Server shard per
// (cluster, job class, MPI version), each behind its own atomic
// snapshot with its own per-epoch counters. Lookups resolve the shard
// through an atomically published table copy — no lock anywhere on the
// read path — and shard hot-reloads are fully independent: swapping
// one tenant's rules never perturbs another tenant's served epoch,
// counters, or latency ledger.
type Registry struct {
	tab atomic.Pointer[shardTable]

	// addMu serialises tenant additions only; reads never touch it.
	addMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.tab.Store(&shardTable{shards: map[TenantKey]*Server{}})
	return r
}

// Tenant returns the shard serving key, or (nil, false) if the tenant
// has not been created. Lock-free: one atomic load plus a map read on
// the immutable table.
func (r *Registry) Tenant(key TenantKey) (*Server, bool) {
	srv, ok := r.tab.Load().shards[key]
	return srv, ok
}

// Ensure returns key's shard, creating an empty one (every lookup
// misses until the first Swap) if the tenant is new. The returned
// *Server is stable: callers may cache it across rule swaps.
func (r *Registry) Ensure(key TenantKey) *Server {
	if srv, ok := r.Tenant(key); ok {
		return srv
	}
	r.addMu.Lock()
	defer r.addMu.Unlock()
	old := r.tab.Load()
	if srv, ok := old.shards[key]; ok {
		return srv
	}
	srv := New()
	r.tab.Store(newShardTable(old, key, srv))
	return srv
}

// Swap compiles and installs a rule file on key's shard, creating the
// tenant if needed. Only that shard's snapshot changes.
func (r *Registry) Swap(key TenantKey, f *rules.File) error {
	return r.Ensure(key).Swap(f)
}

// Load reads, validates, compiles, and installs a rule file from disk
// on key's shard. On any error the shard's current snapshot keeps
// serving.
func (r *Registry) Load(key TenantKey, path string) error {
	return r.Ensure(key).Load(path)
}

// Lookup resolves one query against key's shard. An unknown tenant is
// a miss, not an error — the same deployment-visible condition as an
// uncovered collective.
func (r *Registry) Lookup(key TenantKey, c coll.Collective, nodes, ppn, msg int) (string, bool) {
	srv, ok := r.Tenant(key)
	if !ok {
		return "", false
	}
	return srv.Lookup(c, nodes, ppn, msg)
}

// Tenants returns the current tenant keys in sorted order (a copy; the
// registry's own table stays immutable).
func (r *Registry) Tenants() []TenantKey {
	keys := r.tab.Load().keys
	out := make([]TenantKey, len(keys))
	copy(out, keys)
	return out
}

// Len returns the number of tenants.
func (r *Registry) Len() int { return len(r.tab.Load().keys) }

// TenantStats is one tenant's slice of a RegistryStats view.
type TenantStats struct {
	Key   TenantKey
	Stats Stats
}

// RegistryStats is a point-in-time combined view across every shard:
// per-tenant epoch stats plus fleet totals.
type RegistryStats struct {
	Tenants []TenantStats // sorted by tenant key
	Lookups uint64        // total lookups across shards (hits + misses)
	Hits    uint64
	Misses  uint64
	Swaps   uint64 // total successful swaps across shards
}

// Stats reads every shard's current-epoch counters into one combined
// view. Each shard is read through its own snapshot pointer, so the
// view is per-shard consistent (a concurrent swap on one tenant only
// affects that tenant's row).
func (r *Registry) Stats() RegistryStats {
	tab := r.tab.Load()
	var out RegistryStats
	for _, k := range tab.keys {
		st := tab.shards[k].Stats()
		out.Tenants = append(out.Tenants, TenantStats{Key: k, Stats: st})
		out.Lookups += st.Hits + st.Misses
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Swaps += st.Swaps
	}
	return out
}

// Register exposes fleet-wide aggregates plus per-tenant labeled
// counters on a metrics registry. Aggregates follow the live shard
// table, so tenants added later are included; the per-tenant series
// are registered for the tenants present at call time (labels are
// sanitized through obs.MetricLabel). Per-tenant reads follow each
// shard's atomic snapshot pointer, adding nothing to the lookup path.
func (r *Registry) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("ruleserver.registry.tenants", func() float64 { return float64(r.Len()) })
	reg.Func("ruleserver.registry.lookups", func() float64 { return float64(r.Stats().Lookups) })
	reg.Func("ruleserver.registry.misses", func() float64 { return float64(r.Stats().Misses) })
	reg.Func("ruleserver.registry.swaps_total", func() float64 { return float64(r.Stats().Swaps) })
	for _, k := range r.Tenants() {
		srv, _ := r.Tenant(k)
		label := obs.MetricLabel(k.String())
		//acclaim:allow metricname per-tenant counter ruleserver.tenant.<label>.lookups; label is the sanitized tenant key, fixed at registration
		reg.Func("ruleserver.tenant."+label+".lookups", func() float64 {
			st := srv.Stats()
			return float64(st.Hits + st.Misses)
		})
		//acclaim:allow metricname per-tenant counter ruleserver.tenant.<label>.misses; label is the sanitized tenant key, fixed at registration
		reg.Func("ruleserver.tenant."+label+".misses", func() float64 {
			return float64(srv.Stats().Misses)
		})
		//acclaim:allow metricname per-tenant gauge ruleserver.tenant.<label>.snapshot_version; label is the sanitized tenant key, fixed at registration
		reg.Func("ruleserver.tenant."+label+".snapshot_version", func() float64 {
			return float64(srv.Stats().Version)
		})
	}
}
