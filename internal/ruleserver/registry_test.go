package ruleserver_test

import (
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/ruleserver"
)

func TestParseTenantKey(t *testing.T) {
	k, err := ruleserver.ParseTenantKey("frontier/batch/mpich-4.2")
	if err != nil {
		t.Fatal(err)
	}
	want := ruleserver.TenantKey{Cluster: "frontier", JobClass: "batch", MPIVer: "mpich-4.2"}
	if k != want {
		t.Fatalf("ParseTenantKey = %+v, want %+v", k, want)
	}
	if k.String() != "frontier/batch/mpich-4.2" {
		t.Fatalf("String() = %q", k.String())
	}
	for _, bad := range []string{"", "a/b", "a/b/c/d", "/b/c", "a//c", "a/b/"} {
		if _, err := ruleserver.ParseTenantKey(bad); err == nil {
			t.Errorf("ParseTenantKey(%q): want error", bad)
		}
	}
}

func TestRegistryTenantsAndLookup(t *testing.T) {
	reg := ruleserver.NewRegistry()
	if reg.Len() != 0 {
		t.Fatalf("empty registry Len = %d", reg.Len())
	}
	if _, ok := reg.Tenant(ruleserver.DefaultTenant); ok {
		t.Fatal("Tenant on empty registry reported a shard")
	}
	// Unknown tenant is a miss, not an error.
	if _, ok := reg.Lookup(ruleserver.DefaultTenant, coll.Bcast, 4, 8, 512); ok {
		t.Fatal("Lookup on unknown tenant hit")
	}

	a := ruleserver.TenantKey{Cluster: "b-cluster", JobClass: "x", MPIVer: "1"}
	b := ruleserver.TenantKey{Cluster: "a-cluster", JobClass: "x", MPIVer: "1"}
	if err := reg.Swap(a, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	// An Ensure'd tenant with no rules misses everything.
	reg.Ensure(b)
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	keys := reg.Tenants()
	if len(keys) != 2 || keys[0] != b || keys[1] != a {
		t.Fatalf("Tenants() = %v, want sorted [%v %v]", keys, b, a)
	}

	alg, ok := reg.Lookup(a, coll.Bcast, 4, 8, 512)
	if !ok || alg != "binomial" {
		t.Fatalf("tenant a bcast = %q,%v, want binomial,true", alg, ok)
	}
	if _, ok := reg.Lookup(b, coll.Bcast, 4, 8, 512); ok {
		t.Fatal("tenant b (no rules) hit")
	}

	// Shard pointers are stable across swaps.
	srvA, _ := reg.Tenant(a)
	if err := reg.Swap(a, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	srvA2, _ := reg.Tenant(a)
	if srvA != srvA2 {
		t.Fatal("Swap replaced the shard pointer")
	}
	if v := srvA.Stats().Version; v != 2 {
		t.Fatalf("shard version after two swaps = %d, want 2", v)
	}
}

func TestRegistryStatsCombined(t *testing.T) {
	reg := ruleserver.NewRegistry()
	a := ruleserver.TenantKey{Cluster: "a", JobClass: "j", MPIVer: "1"}
	b := ruleserver.TenantKey{Cluster: "b", JobClass: "j", MPIVer: "1"}
	if err := reg.Swap(a, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap(b, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	reg.Lookup(a, coll.Bcast, 4, 8, 512)  // hit
	reg.Lookup(a, coll.Gather, 4, 8, 512) // miss (fixture lacks gather)
	reg.Lookup(b, coll.Bcast, 4, 8, 512)  // hit

	st := reg.Stats()
	if len(st.Tenants) != 2 {
		t.Fatalf("Stats tenants = %d", len(st.Tenants))
	}
	if st.Tenants[0].Key != a || st.Tenants[1].Key != b {
		t.Fatalf("Stats tenant order = %v, %v", st.Tenants[0].Key, st.Tenants[1].Key)
	}
	if st.Lookups != 3 || st.Hits != 2 || st.Misses != 1 || st.Swaps != 2 {
		t.Fatalf("combined stats = %+v", st)
	}
	if st.Tenants[0].Stats.Misses != 1 || st.Tenants[1].Stats.Misses != 0 {
		t.Fatalf("per-tenant misses = %d, %d", st.Tenants[0].Stats.Misses, st.Tenants[1].Stats.Misses)
	}
}

// TestRegistryShardIndependence is the acceptance gate for independent
// hot reloads: under -race, a tight Swap loop on one tenant must never
// perturb another tenant's served snapshot version, counters, or
// answers.
func TestRegistryShardIndependence(t *testing.T) {
	reg := ruleserver.NewRegistry()
	hot := ruleserver.TenantKey{Cluster: "hot", JobClass: "j", MPIVer: "1"}
	cold := ruleserver.TenantKey{Cluster: "cold", JobClass: "j", MPIVer: "1"}
	rng := rand.New(rand.NewSource(7))
	if err := reg.Swap(hot, genFile(rng, "bcast", "allreduce")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap(cold, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	coldSrv, _ := reg.Tenant(cold)
	baseVer := coldSrv.Stats().Version

	const swaps = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if err := reg.Swap(hot, genFile(rng, "bcast", "allreduce")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var coldLookups uint64
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			alg, ok := reg.Lookup(cold, coll.Bcast, 4, 8, 512)
			if !ok || alg != "binomial" {
				t.Errorf("cold lookup perturbed: %q, %v", alg, ok)
				return
			}
			coldLookups++
		}
	}()
	wg.Wait()

	st := coldSrv.Stats()
	if st.Version != baseVer {
		t.Fatalf("cold tenant version moved: %d -> %d", baseVer, st.Version)
	}
	if st.Hits != coldLookups || st.Misses != 0 {
		t.Fatalf("cold tenant counters perturbed: hits=%d (want %d) misses=%d", st.Hits, coldLookups, st.Misses)
	}
	hotSrv, _ := reg.Tenant(hot)
	if v := hotSrv.Stats().Version; v != uint64(swaps)+1 {
		t.Fatalf("hot tenant version = %d, want %d", v, swaps+1)
	}
}

func TestRegistryRegisterMetrics(t *testing.T) {
	reg := ruleserver.NewRegistry()
	key := ruleserver.TenantKey{Cluster: "Frontier", JobClass: "batch", MPIVer: "mpich-4.2"}
	if err := reg.Swap(key, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	reg.Lookup(key, coll.Bcast, 4, 8, 512)
	reg.Lookup(key, coll.Gather, 4, 8, 512)

	mreg := obs.NewRegistry()
	reg.Register(mreg)
	var sb strings.Builder
	if err := mreg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ruleserver_registry_tenants 1",
		"ruleserver_registry_lookups 2",
		"ruleserver_registry_misses 1",
		"ruleserver_tenant_frontier_batch_mpich_4_2_lookups 2",
		"ruleserver_tenant_frontier_batch_mpich_4_2_misses 1",
		"ruleserver_tenant_frontier_batch_mpich_4_2_snapshot_version 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// Nil registry is a no-op, matching the obs handle convention.
	reg.Register(nil)
}

func TestRegistryLoadFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := fixtureFile().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reg := ruleserver.NewRegistry()
	key := ruleserver.TenantKey{Cluster: "frontier", JobClass: "batch", MPIVer: "mpich-4.2"}
	if err := reg.Load(key, path); err != nil {
		t.Fatal(err)
	}
	if alg, ok := reg.Lookup(key, coll.Bcast, 4, 8, 512); !ok || alg != "binomial" {
		t.Fatalf("Lookup after Load = %q, %v", alg, ok)
	}
	if err := reg.Load(key, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file must error")
	}
	// A failed reload keeps serving the old snapshot.
	if alg, ok := reg.Lookup(key, coll.Bcast, 4, 8, 512); !ok || alg != "binomial" {
		t.Fatalf("Lookup after failed reload = %q, %v", alg, ok)
	}
}
