package ruleserver_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
	"acclaim/internal/ruleserver"
)

// fixtureFile is a small hand-written file covering two collectives.
func fixtureFile() *rules.File {
	f := rules.NewFile("fixture")
	f.Tables["bcast"] = &rules.Table{
		Collective: "bcast",
		Buckets: []rules.NodeBucket{
			{MaxNodes: 8, PPNs: []rules.PPNBucket{
				{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
					{MaxMsg: 1024, Alg: "binomial"},
					{MaxMsg: rules.Unbounded, Alg: "scatter_ring_allgather"},
				}},
			}},
			{MaxNodes: rules.Unbounded, PPNs: []rules.PPNBucket{
				{MaxPPN: 4, Rules: []rules.MsgRule{{MaxMsg: rules.Unbounded, Alg: "binomial"}}},
				{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
					{MaxMsg: 64, Alg: "binomial"},
					{MaxMsg: rules.Unbounded, Alg: "scatter_recursive_doubling_allgather"},
				}},
			}},
		},
	}
	f.Tables["reduce"] = &rules.Table{
		Collective: "reduce",
		Buckets: []rules.NodeBucket{
			{MaxNodes: rules.Unbounded, PPNs: []rules.PPNBucket{
				{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
					{MaxMsg: 2048, Alg: "binomial"},
					{MaxMsg: rules.Unbounded, Alg: "scatter_gather"},
				}},
			}},
		},
	}
	return f
}

// diffTable asserts the index answers byte-identically to the nested
// table walk for the given query, including agreeing on misses.
func diffTable(t *testing.T, ix *ruleserver.Index, tab *rules.Table, nodes, ppn, msg int) {
	t.Helper()
	want, wantErr := tab.Select(nodes, ppn, msg)
	got, ok := ix.LookupName(tab.Collective, nodes, ppn, msg)
	if wantErr != nil {
		if ok {
			t.Fatalf("(%d,%d,%d): index hit %q where table errors: %v", nodes, ppn, msg, got, wantErr)
		}
		return
	}
	if !ok {
		t.Fatalf("(%d,%d,%d): index missed where table selects %q", nodes, ppn, msg, want)
	}
	if got != want {
		t.Fatalf("(%d,%d,%d): index = %q, table = %q", nodes, ppn, msg, got, want)
	}
}

func TestIndexMatchesFixture(t *testing.T) {
	f := fixtureFile()
	ix, err := ruleserver.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range f.Tables {
		for _, nodes := range []int{1, 2, 7, 8, 9, 100} {
			for _, ppn := range []int{1, 3, 4, 5, 64} {
				for _, msg := range []int{1, 63, 64, 65, 1024, 1025, 2048, 2049, 1 << 30} {
					diffTable(t, ix, tab, nodes, ppn, msg)
				}
			}
		}
	}
	if n := ix.NumRules(); n != 7 {
		t.Errorf("NumRules = %d, want 7", n)
	}
	if got := len(ix.Tables()); got != 2 {
		t.Errorf("Tables = %d, want 2", got)
	}
}

func TestIndexEnumAndNameAgree(t *testing.T) {
	ix, err := ruleserver.Compile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	byEnum, ok1 := ix.Lookup(coll.Bcast, 16, 8, 100)
	byName, ok2 := ix.LookupName("bcast", 16, 8, 100)
	if !ok1 || !ok2 || byEnum != byName {
		t.Fatalf("enum path (%q,%v) != name path (%q,%v)", byEnum, ok1, byName, ok2)
	}
	if _, ok := ix.Lookup(coll.Allgather, 2, 1, 8); ok {
		t.Error("hit for a collective with no table")
	}
	if _, ok := ix.Lookup(coll.Collective(-1), 2, 1, 8); ok {
		t.Error("hit for out-of-range collective")
	}
	if _, ok := ix.LookupName("alltoall", 2, 1, 8); ok {
		t.Error("hit for unknown table name")
	}
}

// TestDifferentialGenerated is the in-tree (non-fuzz) form of the
// differential property over many generated tables.
func TestDifferentialGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		f := genFile(rng, "bcast")
		tab := f.Tables["bcast"]
		ix, err := ruleserver.Compile(f)
		if err != nil {
			t.Fatalf("generated table invalid: %v", err)
		}
		nodesP, ppnP, msgP := thresholdProbes(tab)
		for i := 0; i < 50; i++ {
			diffTable(t, ix, tab,
				int(nodesP[rng.Intn(len(nodesP))]),
				int(ppnP[rng.Intn(len(ppnP))]),
				int(msgP[rng.Intn(len(msgP))]))
		}
		for i := 0; i < 50; i++ {
			diffTable(t, ix, tab, rng.Intn(1<<12), rng.Intn(1<<8), rng.Intn(1<<24))
		}
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := ruleserver.Compile(nil); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := ruleserver.Compile(rules.NewFile("empty")); err == nil {
		t.Error("empty file accepted")
	}
	f := fixtureFile()
	f.Tables["bcast"].Buckets[1].MaxNodes = 100 // drop the catch-all
	if _, err := ruleserver.Compile(f); err == nil {
		t.Error("incomplete table accepted")
	}
}

func TestServerSwapAndStats(t *testing.T) {
	srv := ruleserver.New()
	if _, ok := srv.Lookup(coll.Bcast, 4, 2, 64); ok {
		t.Fatal("empty server answered a lookup")
	}
	if err := srv.Swap(fixtureFile()); err != nil {
		t.Fatal(err)
	}
	// 512 lookups: every one is counted and latency-recorded.
	for i := 0; i < 512; i++ {
		if _, ok := srv.Lookup(coll.Bcast, 4, 2, 64); !ok {
			t.Fatal("lookup missed after swap")
		}
	}
	if _, ok := srv.Lookup(coll.Allgather, 4, 2, 64); ok {
		t.Fatal("hit for untuned collective")
	}
	st := srv.Stats()
	if st.Version != 1 || st.Swaps != 1 {
		t.Errorf("version/swaps = %d/%d, want 1/1", st.Version, st.Swaps)
	}
	if st.Hits != 512 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 512/1", st.Hits, st.Misses)
	}
	if st.Tables != 2 || st.Rules != 7 {
		t.Errorf("tables/rules = %d/%d, want 2/7", st.Tables, st.Rules)
	}
	if st.P50 <= 0 || st.P99 < st.P50 || st.P999 < st.P99 {
		t.Errorf("latency quantiles not positive/monotone: p50=%v p99=%v p999=%v", st.P50, st.P99, st.P999)
	}
	wantPer := []ruleserver.CollStats{
		{Collective: "allgather", Lookups: 1, Misses: 1},
		{Collective: "bcast", Lookups: 512, Misses: 0},
	}
	if len(st.PerCollective) != len(wantPer) {
		t.Fatalf("PerCollective = %+v, want %+v", st.PerCollective, wantPer)
	}
	for i, want := range wantPer {
		if st.PerCollective[i] != want {
			t.Errorf("PerCollective[%d] = %+v, want %+v", i, st.PerCollective[i], want)
		}
	}

	// A failed swap must leave the old snapshot (and its counters) serving.
	if err := srv.Swap(rules.NewFile("bad")); err == nil {
		t.Fatal("invalid swap accepted")
	}
	if got := srv.Stats(); got.Version != 1 || got.Hits != st.Hits {
		t.Errorf("failed swap disturbed the serving snapshot: %+v", got)
	}

	// A successful swap starts a fresh per-snapshot ledger.
	if err := srv.Swap(fixtureFile()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats(); got.Version != 2 || got.Swaps != 2 || got.Hits != 0 {
		t.Errorf("swap did not publish a fresh snapshot: %+v", got)
	}
}

func TestServerLoadFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := fixtureFile().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	srv := ruleserver.New()
	if err := srv.Load(path); err != nil {
		t.Fatal(err)
	}
	if alg, ok := srv.Lookup(coll.Reduce, 32, 16, 1<<20); !ok || alg != "scatter_gather" {
		t.Fatalf("Lookup after Load = %q, %v", alg, ok)
	}
	if err := srv.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLookupZeroAlloc pins the hot path at zero allocations per call —
// the property the flattened index exists to provide. AllocsPerRun is
// deterministic, so this is a hard tier-1 gate, stronger than the
// benchguard baseline.
func TestLookupZeroAlloc(t *testing.T) {
	srv, err := ruleserver.NewFromFile(fixtureFile())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := srv.Lookup(coll.Bcast, 16, 8, 4096); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup allocates %.1f objects per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if _, ok := srv.LookupName("reduce", 16, 8, 4096); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("LookupName allocates %.1f objects per call, want 0", allocs)
	}
}

// TestConcurrentSwap hammers lock-free readers while a writer hot-swaps
// snapshots in a loop. Run under -race (the CI race job does) this is
// the proof that readers never observe a torn snapshot: every lookup
// must land in one generation's algorithm set, and hits never fail.
func TestConcurrentSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := make([]string, 0, coll.NumCollectives)
	for _, c := range coll.Collectives() {
		names = append(names, c.String())
	}
	fileA := genFile(rng, names...)
	fileB := genFile(rng, names...)

	valid := map[string]bool{}
	for _, f := range []*rules.File{fileA, fileB} {
		for _, tab := range f.Tables {
			for _, nb := range tab.Buckets {
				for _, pb := range nb.PPNs {
					for _, r := range pb.Rules {
						valid[r.Alg] = true
					}
				}
			}
		}
	}

	srv, err := ruleserver.NewFromFile(fileA)
	if err != nil {
		t.Fatal(err)
	}

	swaps := 400
	readers := 8
	if testing.Short() {
		swaps = 100
		readers = 4
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			colls := coll.Collectives()
			for {
				select {
				case <-done:
					return
				default:
				}
				c := colls[rng.Intn(len(colls))]
				alg, ok := srv.Lookup(c, 1+rng.Intn(256), 1+rng.Intn(64), 1+rng.Intn(1<<22))
				if !ok {
					errc <- errOf("lookup missed during swap for %v", c)
					return
				}
				if !valid[alg] {
					errc <- errOf("lookup returned %q, not in either snapshot", alg)
					return
				}
				// Stats must always be readable mid-swap.
				if st := srv.Stats(); st.Tables != coll.NumCollectives {
					errc <- errOf("stats saw %d tables", st.Tables)
					return
				}
			}
		}(int64(g) + 100)
	}

	for i := 0; i < swaps; i++ {
		f := fileA
		if i%2 == 0 {
			f = fileB
		}
		if err := srv.Swap(f); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st := srv.Stats(); st.Swaps != uint64(swaps)+1 {
		t.Errorf("swaps = %d, want %d", st.Swaps, swaps+1)
	}
}

func errOf(format string, args ...any) error { return fmt.Errorf(format, args...) }
