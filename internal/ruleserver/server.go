package ruleserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
)

// collCounters is one collective's hit/miss ledger, padded out to its
// own cache line so ranks hammering different collectives never
// false-share a counter word.
type collCounters struct {
	lookups obs.Counter // lookups routed to this collective
	misses  obs.Counter // of those, lookups with no matching table/rule
	_       [48]byte    // pad to 64 bytes
}

// nameSlot is the perColl index that aggregates LookupName traffic
// (string-keyed callers) and out-of-range enum values.
const nameSlot = coll.NumCollectives

// snapshot is one published generation of the index plus its
// observability counters — obs primitives since the registry
// migration, but still owned by the snapshot, not the server (and not
// the registry): a hot-swap starts a fresh ledger, and the stats of
// the generation that served a query are the stats that count it. The
// registry sees them through Register's read-on-demand func metrics,
// which follow the atomic snapshot pointer, so registry reads always
// reflect the current epoch without adding anything to the lock-free
// lookup path.
//
// Every lookup is latency-bracketed into the sharded HDR recorder —
// there is no sampling mask anymore. The clock bracket costs more than
// the flattened lookup itself (~2x on the dev host), but in absolute
// terms the counted path stays under ~100ns/call; the benchguard
// record_headroom metric pins the recorder's own contribution at
// <10% over a clock-only baseline.
//
//acclaim:frozen
type snapshot struct {
	idx      *Index
	version  uint64
	loadedAt time.Time

	// perColl[c] counts traffic per Collective enum value; the final
	// nameSlot aggregates LookupName traffic.
	perColl [coll.NumCollectives + 1]collCounters
	lat     *obs.HDRRecorder // every lookup's latency (ns), sharded to spread write contention
}

func newSnapshot(idx *Index, version uint64) *snapshot {
	return &snapshot{idx: idx, version: version, loadedAt: time.Now(), lat: obs.NewHDRRecorder(0)}
}

// slot maps a Collective to its perColl index, folding out-of-range
// values into nameSlot.
func slot(c coll.Collective) int {
	if c < 0 || int(c) >= coll.NumCollectives {
		return nameSlot
	}
	return int(c)
}

// totals sums the per-collective ledgers into snapshot-wide lookup and
// miss counts.
func (sn *snapshot) totals() (lookups, misses uint64) {
	for i := range sn.perColl {
		lookups += sn.perColl[i].lookups.Load()
		misses += sn.perColl[i].misses.Load()
	}
	return lookups, misses
}

// Server serves algorithm selections for collective calls. Readers are
// lock-free: a lookup is one atomic pointer load, one atomic counter
// add, and binary searches over the immutable snapshot, so any number
// of ranks can query concurrently while a writer installs a retuned
// rule file. The zero value is not usable; call New or NewFromFile.
type Server struct {
	cur atomic.Pointer[snapshot]

	// swapMu serialises writers only. Readers never touch it.
	swapMu  sync.Mutex
	nextVer uint64
	swaps   atomic.Uint64
}

// New returns a server with no rules loaded; every lookup misses until
// the first Swap.
func New() *Server {
	s := &Server{}
	s.cur.Store(newSnapshot(&Index{}, 0))
	return s
}

// NewFromFile compiles and installs a rule file.
func NewFromFile(f *rules.File) (*Server, error) {
	s := New()
	if err := s.Swap(f); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads, validates, compiles, and installs a rule file from disk —
// the reload entry point after an ACCLAiM retuning round rewrites the
// file. On any error the currently installed snapshot keeps serving.
func (s *Server) Load(path string) error {
	f, err := rules.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ruleserver: %w", err)
	}
	return s.Swap(f)
}

// Swap compiles the file and atomically publishes it. In-flight lookups
// finish on the snapshot they loaded; new lookups see the new one. The
// swap fails — leaving the old snapshot serving — if the file does not
// validate.
func (s *Server) Swap(f *rules.File) error {
	idx, err := Compile(f)
	if err != nil {
		return err
	}
	s.swapMu.Lock()
	s.nextVer++
	s.cur.Store(newSnapshot(idx, s.nextVer))
	s.swapMu.Unlock()
	s.swaps.Add(1)
	return nil
}

// Lookup implements coll.AlgSource: the collective-call hot path.
// It performs no allocation and takes no lock — TestLookupZeroAlloc
// pins the property at runtime, acclaim-lint's zeroalloc analyzer at
// review time. Every call is latency-bracketed into the snapshot's HDR
// recorder, so the quantiles Stats reports are exact over the full
// population, not a sample.
//
//acclaim:zeroalloc
func (s *Server) Lookup(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	pc := &sn.perColl[slot(c)]
	pc.lookups.Add(1)
	t0 := obs.NowNs()
	alg, ok := sn.idx.Lookup(c, nodes, ppn, msg)
	sn.lat.Record(t0, obs.NowNs()-t0)
	if !ok {
		pc.misses.Add(1)
	}
	return alg, ok
}

// LookupName resolves by table name (for rule tables that are not named
// after a known collective, or callers holding only strings). Traffic
// lands in the aggregate nameSlot ledger; latency is recorded exactly
// like Lookup.
//
//acclaim:zeroalloc
func (s *Server) LookupName(collective string, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	pc := &sn.perColl[nameSlot]
	pc.lookups.Add(1)
	t0 := obs.NowNs()
	alg, ok := sn.idx.LookupName(collective, nodes, ppn, msg)
	sn.lat.Record(t0, obs.NowNs()-t0)
	if !ok {
		pc.misses.Add(1)
	}
	return alg, ok
}

// Index returns the currently published index (for bulk operations that
// want to pin one generation across many lookups).
func (s *Server) Index() *Index { return s.cur.Load().idx }

// CollStats is one collective's share of the serving snapshot's
// traffic.
type CollStats struct {
	Collective string // collective name, or "by_name" for LookupName traffic
	Lookups    uint64 // lookups routed to this collective
	Misses     uint64 // of those, lookups with no matching rule
}

// Stats is a point-in-time view of the serving snapshot.
type Stats struct {
	Version  uint64    // snapshot generation (1 = first Swap)
	LoadedAt time.Time // when this generation was published
	Tables   int       // rule tables in the snapshot
	Rules    int       // total message-level rules
	Hits     uint64    // lookups answered by a rule
	Misses   uint64    // lookups with no matching table/rule
	Swaps    uint64    // total successful swaps on the server

	// Lookup-latency quantiles over every lookup this snapshot served
	// (not a sample), exact to within the HDR bucket resolution
	// (~3%). Zero until the first lookup.
	P50, P99, P999 time.Duration

	// PerCollective lists the collectives that saw traffic, in enum
	// order, with LookupName traffic aggregated last under "by_name".
	PerCollective []CollStats
}

// Stats reads the current snapshot's counters. Since the obs
// migration this is a thin view over the same obs state Register
// exposes to a metrics registry.
func (s *Server) Stats() Stats {
	sn := s.cur.Load()
	st := Stats{
		Version:  sn.version,
		LoadedAt: sn.loadedAt,
		Tables:   len(sn.idx.byName),
		Rules:    sn.idx.rules,
		Swaps:    s.swaps.Load(),
		P50:      time.Duration(sn.lat.Quantile(0.50)),
		P99:      time.Duration(sn.lat.Quantile(0.99)),
		P999:     time.Duration(sn.lat.Quantile(0.999)),
	}
	for i := range sn.perColl {
		lookups := sn.perColl[i].lookups.Load()
		misses := sn.perColl[i].misses.Load()
		if lookups == 0 && misses == 0 {
			continue
		}
		name := "by_name"
		if i < coll.NumCollectives {
			name = coll.Collective(i).String()
		}
		st.PerCollective = append(st.PerCollective, CollStats{Collective: name, Lookups: lookups, Misses: misses})
		st.Hits += lookups - misses
		st.Misses += misses
	}
	return st
}

// Register exposes the server's counters on a metrics registry as
// read-on-demand metrics. Every read follows the atomic snapshot
// pointer, so the values always describe the currently serving epoch
// (they reset on Swap, exactly like Stats) and nothing is added to the
// lock-free lookup path. The server-lifetime swap counter is the one
// cumulative metric.
func (s *Server) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("ruleserver.lookups", func() float64 {
		lookups, _ := s.cur.Load().totals()
		return float64(lookups)
	})
	reg.Func("ruleserver.hits", func() float64 {
		lookups, misses := s.cur.Load().totals()
		return float64(lookups - misses)
	})
	reg.Func("ruleserver.misses", func() float64 {
		_, misses := s.cur.Load().totals()
		return float64(misses)
	})
	reg.Func("ruleserver.snapshot_version", func() float64 { return float64(s.cur.Load().version) })
	reg.Func("ruleserver.tables", func() float64 { return float64(len(s.cur.Load().idx.byName)) })
	reg.Func("ruleserver.rules", func() float64 { return float64(s.cur.Load().idx.rules) })
	reg.Func("ruleserver.swaps_total", func() float64 { return float64(s.swaps.Load()) })
	reg.Describe("ruleserver.lookup_latency_ns", "per-lookup latency over every lookup the serving snapshot answered")
	reg.HDRFunc("ruleserver.lookup_latency_ns", func() *obs.HDRRecorder { return s.cur.Load().lat })
	for i := 0; i <= coll.NumCollectives; i++ {
		slot := i
		name := "by_name"
		if i < coll.NumCollectives {
			name = coll.Collective(i).String()
		}
		//acclaim:allow metricname per-collective counter ruleserver.<collective>.lookups; segments are fixed lower-case enum names (or by_name)
		reg.Func("ruleserver."+name+".lookups", func() float64 {
			return float64(s.cur.Load().perColl[slot].lookups.Load())
		})
		//acclaim:allow metricname per-collective counter ruleserver.<collective>.misses; segments are fixed lower-case enum names (or by_name)
		reg.Func("ruleserver."+name+".misses", func() float64 {
			return float64(s.cur.Load().perColl[slot].misses.Load())
		})
	}
}
