package ruleserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
)

// latencySampleMask samples one lookup latency per 256 lookups: dense
// enough to track the hot path, sparse enough that time.Now never shows
// up in a profile.
const latencySampleMask = 255

// snapshot is one published generation of the index plus its
// observability counters. Counters live on the snapshot, not the
// server, so a hot-swap starts a fresh ledger and the stats of the
// generation that served a query are the stats that count it.
type snapshot struct {
	idx      *Index
	version  uint64
	loadedAt time.Time

	lookups    atomic.Uint64 // total lookups served by this snapshot
	misses     atomic.Uint64 // lookups with no matching table/rule
	latNanos   atomic.Uint64 // summed sampled lookup latency
	latSamples atomic.Uint64
}

// Server serves algorithm selections for collective calls. Readers are
// lock-free: a lookup is one atomic pointer load, one atomic counter
// add, and binary searches over the immutable snapshot, so any number
// of ranks can query concurrently while a writer installs a retuned
// rule file. The zero value is not usable; call New or NewFromFile.
type Server struct {
	cur atomic.Pointer[snapshot]

	// swapMu serialises writers only. Readers never touch it.
	swapMu  sync.Mutex
	nextVer uint64
	swaps   atomic.Uint64
}

// New returns a server with no rules loaded; every lookup misses until
// the first Swap.
func New() *Server {
	s := &Server{}
	s.cur.Store(&snapshot{idx: &Index{}, loadedAt: time.Now()})
	return s
}

// NewFromFile compiles and installs a rule file.
func NewFromFile(f *rules.File) (*Server, error) {
	s := New()
	if err := s.Swap(f); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads, validates, compiles, and installs a rule file from disk —
// the reload entry point after an ACCLAiM retuning round rewrites the
// file. On any error the currently installed snapshot keeps serving.
func (s *Server) Load(path string) error {
	f, err := rules.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ruleserver: %w", err)
	}
	return s.Swap(f)
}

// Swap compiles the file and atomically publishes it. In-flight lookups
// finish on the snapshot they loaded; new lookups see the new one. The
// swap fails — leaving the old snapshot serving — if the file does not
// validate.
func (s *Server) Swap(f *rules.File) error {
	idx, err := Compile(f)
	if err != nil {
		return err
	}
	s.swapMu.Lock()
	s.nextVer++
	sn := &snapshot{idx: idx, version: s.nextVer, loadedAt: time.Now()}
	s.cur.Store(sn)
	s.swapMu.Unlock()
	s.swaps.Add(1)
	return nil
}

// Lookup implements coll.AlgSource: the collective-call hot path.
// It performs no allocation and takes no lock.
func (s *Server) Lookup(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	if sn.lookups.Add(1)&latencySampleMask == 0 {
		return sn.lookupTimed(c, nodes, ppn, msg)
	}
	alg, ok := sn.idx.Lookup(c, nodes, ppn, msg)
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// LookupName resolves by table name (for rule tables that are not named
// after a known collective, or callers holding only strings).
func (s *Server) LookupName(collective string, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	sn.lookups.Add(1)
	alg, ok := sn.idx.LookupName(collective, nodes, ppn, msg)
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// lookupTimed is the sampled slow path: same lookup, bracketed by
// monotonic clock reads.
func (sn *snapshot) lookupTimed(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	t0 := time.Now()
	alg, ok := sn.idx.Lookup(c, nodes, ppn, msg)
	sn.latNanos.Add(uint64(time.Since(t0)))
	sn.latSamples.Add(1)
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// Index returns the currently published index (for bulk operations that
// want to pin one generation across many lookups).
func (s *Server) Index() *Index { return s.cur.Load().idx }

// Stats is a point-in-time view of the serving snapshot.
type Stats struct {
	Version    uint64        // snapshot generation (1 = first Swap)
	LoadedAt   time.Time     // when this generation was published
	Tables     int           // rule tables in the snapshot
	Rules      int           // total message-level rules
	Hits       uint64        // lookups answered by a rule
	Misses     uint64        // lookups with no matching table/rule
	Swaps      uint64        // total successful swaps on the server
	AvgLatency time.Duration // mean sampled lookup latency (0 if unsampled)
}

// Stats reads the current snapshot's counters.
func (s *Server) Stats() Stats {
	sn := s.cur.Load()
	lookups := sn.lookups.Load()
	misses := sn.misses.Load()
	st := Stats{
		Version:  sn.version,
		LoadedAt: sn.loadedAt,
		Tables:   len(sn.idx.byName),
		Rules:    sn.idx.rules,
		Hits:     lookups - misses,
		Misses:   misses,
		Swaps:    s.swaps.Load(),
	}
	if n := sn.latSamples.Load(); n > 0 {
		st.AvgLatency = time.Duration(sn.latNanos.Load() / n)
	}
	return st
}
