package ruleserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/rules"
)

// latencySampleMask samples one lookup latency per 256 lookups: dense
// enough to track the hot path, sparse enough that time.Now never shows
// up in a profile.
const latencySampleMask = 255

// latencyBounds buckets the sampled lookup latency (nanoseconds): the
// flattened index answers in single-digit to low-hundreds of ns, with
// the tail capturing scheduling hiccups.
var latencyBounds = []float64{16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// snapshot is one published generation of the index plus its
// observability counters — obs primitives since the registry
// migration, but still owned by the snapshot, not the server (and not
// the registry): a hot-swap starts a fresh ledger, and the stats of
// the generation that served a query are the stats that count it. The
// registry sees them through Register's read-on-demand func metrics,
// which follow the atomic snapshot pointer, so registry reads always
// reflect the current epoch without adding anything to the lock-free
// lookup path.
type snapshot struct {
	idx      *Index
	version  uint64
	loadedAt time.Time

	lookups obs.Counter    // total lookups served by this snapshot
	misses  obs.Counter    // lookups with no matching table/rule
	lat     *obs.Histogram // sampled lookup latency (ns)
}

func newSnapshot(idx *Index, version uint64) *snapshot {
	return &snapshot{idx: idx, version: version, loadedAt: time.Now(), lat: obs.NewHistogram(latencyBounds...)}
}

// Server serves algorithm selections for collective calls. Readers are
// lock-free: a lookup is one atomic pointer load, one atomic counter
// add, and binary searches over the immutable snapshot, so any number
// of ranks can query concurrently while a writer installs a retuned
// rule file. The zero value is not usable; call New or NewFromFile.
type Server struct {
	cur atomic.Pointer[snapshot]

	// swapMu serialises writers only. Readers never touch it.
	swapMu  sync.Mutex
	nextVer uint64
	swaps   atomic.Uint64
}

// New returns a server with no rules loaded; every lookup misses until
// the first Swap.
func New() *Server {
	s := &Server{}
	s.cur.Store(newSnapshot(&Index{}, 0))
	return s
}

// NewFromFile compiles and installs a rule file.
func NewFromFile(f *rules.File) (*Server, error) {
	s := New()
	if err := s.Swap(f); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads, validates, compiles, and installs a rule file from disk —
// the reload entry point after an ACCLAiM retuning round rewrites the
// file. On any error the currently installed snapshot keeps serving.
func (s *Server) Load(path string) error {
	f, err := rules.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ruleserver: %w", err)
	}
	return s.Swap(f)
}

// Swap compiles the file and atomically publishes it. In-flight lookups
// finish on the snapshot they loaded; new lookups see the new one. The
// swap fails — leaving the old snapshot serving — if the file does not
// validate.
func (s *Server) Swap(f *rules.File) error {
	idx, err := Compile(f)
	if err != nil {
		return err
	}
	s.swapMu.Lock()
	s.nextVer++
	s.cur.Store(newSnapshot(idx, s.nextVer))
	s.swapMu.Unlock()
	s.swaps.Add(1)
	return nil
}

// Lookup implements coll.AlgSource: the collective-call hot path.
// It performs no allocation and takes no lock — TestLookupZeroAlloc
// pins the property at runtime, acclaim-lint's zeroalloc analyzer at
// review time.
//
//acclaim:zeroalloc
func (s *Server) Lookup(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	if sn.lookups.Add(1)&latencySampleMask == 0 {
		return sn.lookupTimed(c, nodes, ppn, msg)
	}
	alg, ok := sn.idx.Lookup(c, nodes, ppn, msg)
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// LookupName resolves by table name (for rule tables that are not named
// after a known collective, or callers holding only strings).
//
//acclaim:zeroalloc
func (s *Server) LookupName(collective string, nodes, ppn, msg int) (string, bool) {
	sn := s.cur.Load()
	sn.lookups.Add(1)
	alg, ok := sn.idx.LookupName(collective, nodes, ppn, msg)
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// lookupTimed is the sampled slow path: same lookup, bracketed by
// monotonic clock reads feeding the latency histogram.
//
//acclaim:zeroalloc
func (sn *snapshot) lookupTimed(c coll.Collective, nodes, ppn, msg int) (string, bool) {
	t0 := time.Now()
	alg, ok := sn.idx.Lookup(c, nodes, ppn, msg)
	sn.lat.Observe(float64(time.Since(t0)))
	if !ok {
		sn.misses.Add(1)
	}
	return alg, ok
}

// Index returns the currently published index (for bulk operations that
// want to pin one generation across many lookups).
func (s *Server) Index() *Index { return s.cur.Load().idx }

// Stats is a point-in-time view of the serving snapshot.
type Stats struct {
	Version    uint64        // snapshot generation (1 = first Swap)
	LoadedAt   time.Time     // when this generation was published
	Tables     int           // rule tables in the snapshot
	Rules      int           // total message-level rules
	Hits       uint64        // lookups answered by a rule
	Misses     uint64        // lookups with no matching table/rule
	Swaps      uint64        // total successful swaps on the server
	AvgLatency time.Duration // mean sampled lookup latency (0 if unsampled)
}

// Stats reads the current snapshot's counters. Since the obs
// migration this is a thin view over the same obs.Counter/obs.Histogram
// state Register exposes to a metrics registry.
func (s *Server) Stats() Stats {
	sn := s.cur.Load()
	lookups := sn.lookups.Load()
	misses := sn.misses.Load()
	st := Stats{
		Version:  sn.version,
		LoadedAt: sn.loadedAt,
		Tables:   len(sn.idx.byName),
		Rules:    sn.idx.rules,
		Hits:     lookups - misses,
		Misses:   misses,
		Swaps:    s.swaps.Load(),
	}
	if n := sn.lat.Count(); n > 0 {
		st.AvgLatency = time.Duration(sn.lat.Sum() / float64(n))
	}
	return st
}

// Register exposes the server's counters on a metrics registry as
// read-on-demand metrics. Every read follows the atomic snapshot
// pointer, so the values always describe the currently serving epoch
// (they reset on Swap, exactly like Stats) and nothing is added to the
// lock-free lookup path. The server-lifetime swap counter is the one
// cumulative metric.
func (s *Server) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("ruleserver.lookups", func() float64 { return float64(s.cur.Load().lookups.Load()) })
	reg.Func("ruleserver.hits", func() float64 {
		sn := s.cur.Load()
		return float64(sn.lookups.Load() - sn.misses.Load())
	})
	reg.Func("ruleserver.misses", func() float64 { return float64(s.cur.Load().misses.Load()) })
	reg.Func("ruleserver.snapshot_version", func() float64 { return float64(s.cur.Load().version) })
	reg.Func("ruleserver.tables", func() float64 { return float64(len(s.cur.Load().idx.byName)) })
	reg.Func("ruleserver.rules", func() float64 { return float64(s.cur.Load().idx.rules) })
	reg.Func("ruleserver.swaps_total", func() float64 { return float64(s.swaps.Load()) })
	reg.HistogramFunc("ruleserver.lookup_latency_ns", func() *obs.Histogram { return s.cur.Load().lat })
}
