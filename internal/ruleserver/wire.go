// Binary wire protocol for out-of-process rule serving.
//
// The /v1/select HTTP API pays JSON encode/decode and per-request
// allocations on every lookup — across a fleet, the transport costs
// more than the ~10ns index it fronts. This protocol removes that
// overhead with three ideas:
//
//   - Interned ids, negotiated once. A connection opens with a hello
//     frame naming the client's tenants; the ack assigns dense
//     connection-local tenant ids and enumerates the server's
//     collective names in id order. After the handshake every query is
//     five fixed u32 fields — no strings on the hot path. Algorithm
//     names flow back the same way: the first response carrying a new
//     algorithm includes a dictionary entry (id, name); every later
//     hit is a single u32.
//   - Fixed-layout frames. Every frame is a u32 length prefix plus a
//     typed payload; batch records are fixed-width (20-byte requests,
//     4-byte responses), varint-free, so encode and decode are
//     bounds-checked pointer arithmetic with zero allocations — the
//     //acclaim:zeroalloc record codecs below, pinned by AllocsPerRun
//     gates and fuzzed by FuzzWireRoundTrip.
//   - Batched, pipelined lookups. A request frame carries N queries
//     and the response N answers in order, so a loadgen worker or an
//     MPI job's rank-0 proxy pays one syscall per batch instead of one
//     HTTP round trip per query.
package ruleserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
)

// WireVersion is the protocol revision negotiated in the hello frame.
const WireVersion = 1

// wireMagic opens every hello frame: "ACLM" little-endian.
const wireMagic uint32 = 'A' | 'C'<<8 | 'L'<<16 | 'M'<<24

// Frame types (payload byte 0).
const (
	frameHello     = 0x01 // client -> server: magic, version, tenant keys
	frameHelloAck  = 0x02 // server -> client: version, collective names, tenant found flags
	frameBatchReq  = 0x03 // client -> server: N fixed-width query records
	frameBatchResp = 0x04 // server -> client: dictionary delta + N alg-id records
	frameError     = 0x05 // server -> client: fatal protocol error; connection closes
)

// MaxWireFrameBytes bounds any single frame payload; a length prefix
// above it is a protocol error, so a garbage or hostile peer cannot
// make either side allocate unbounded memory.
const MaxWireFrameBytes = 1 << 22

// MaxWireBatch bounds the query count in one batch frame.
const MaxWireBatch = 1 << 16

// Fixed record layouts. Request: tenant, collective, nodes, ppn, msg —
// five u32 fields. Response: one u32 algorithm id, 0 meaning miss.
const (
	reqRecordBytes  = 20
	respRecordBytes = 4
)

var errFrameTooLarge = errors.New("ruleserver: wire frame exceeds size limit")

// putReqRecord encodes one query record at b[off:] and returns the
// next offset. Fixed-width little-endian u32 fields only — the per-
// query encode cost the AllocsPerRun gate pins at zero.
//
//acclaim:zeroalloc
func putReqRecord(b []byte, off int, tenant, cid, nodes, ppn, msg uint32) int {
	binary.LittleEndian.PutUint32(b[off:], tenant)
	binary.LittleEndian.PutUint32(b[off+4:], cid)
	binary.LittleEndian.PutUint32(b[off+8:], nodes)
	binary.LittleEndian.PutUint32(b[off+12:], ppn)
	binary.LittleEndian.PutUint32(b[off+16:], msg)
	return off + reqRecordBytes
}

// getReqRecord decodes one query record at b[off:].
//
//acclaim:zeroalloc
func getReqRecord(b []byte, off int) (tenant, cid, nodes, ppn, msg uint32) {
	tenant = binary.LittleEndian.Uint32(b[off:])
	cid = binary.LittleEndian.Uint32(b[off+4:])
	nodes = binary.LittleEndian.Uint32(b[off+8:])
	ppn = binary.LittleEndian.Uint32(b[off+12:])
	msg = binary.LittleEndian.Uint32(b[off+16:])
	return
}

// putRespRecord encodes one response record (algorithm id; 0 = miss)
// at b[off:] and returns the next offset.
//
//acclaim:zeroalloc
func putRespRecord(b []byte, off int, algID uint32) int {
	binary.LittleEndian.PutUint32(b[off:], algID)
	return off + respRecordBytes
}

// getRespRecord decodes one response record at b[off:].
//
//acclaim:zeroalloc
func getRespRecord(b []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(b[off:])
}

// growBuf returns b resized to n bytes, reallocating only when the
// capacity is short — the reuse pattern that keeps steady-state frame
// encode/decode allocation-free.
func growBuf(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]byte, n)
	return nb
}

// readFrame reads one length-prefixed frame payload into *buf
// (reusing its capacity) and returns the payload slice. A short read
// surfaces as io.ErrUnexpectedEOF; an oversized or empty length prefix
// as a protocol error.
func readFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxWireFrameBytes {
		return nil, errFrameTooLarge
	}
	*buf = growBuf(*buf, int(n))
	if _, err := io.ReadFull(r, *buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return *buf, nil
}

// appendString appends a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// getString reads a u16-length-prefixed string at b[off:].
func getString(b []byte, off int) (string, int, error) {
	if off+2 > len(b) {
		return "", 0, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+n > len(b) {
		return "", 0, io.ErrUnexpectedEOF
	}
	return string(b[off : off+n]), off + n, nil
}

// writeFrame writes one length-prefixed frame built from payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeErrorFrame sends a fatal error frame; the connection closes
// after it.
func writeErrorFrame(w io.Writer, msg string) {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	payload := make([]byte, 0, 3+len(msg))
	payload = append(payload, frameError)
	payload = appendString(payload, msg)
	_ = writeFrame(w, payload) //nolint:errcheck // best-effort; the connection is closing either way
}

// WireServer serves the binary protocol over raw TCP (or any
// net.Listener) against a multi-tenant Registry. One goroutine per
// connection; each connection's state (interned algorithm dictionary,
// reused frame buffers, resolved tenant shards) is private to that
// goroutine, so the only cross-connection sharing is the lock-free
// registry lookup itself.
type WireServer struct {
	reg *Registry

	conns      obs.Counter // connections accepted
	batches    obs.Counter // batch frames served
	queries    obs.Counter // individual queries answered
	protoErrs  obs.Counter // connections dropped on protocol errors
	activeConn obs.Gauge   // currently open connections
}

// NewWireServer returns a wire server over reg.
func NewWireServer(reg *Registry) *WireServer {
	return &WireServer{reg: reg}
}

// Register exposes the wire server's transport counters on a metrics
// registry.
func (s *WireServer) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("wire.connections_total", func() float64 { return float64(s.conns.Load()) })
	reg.Func("wire.batches_total", func() float64 { return float64(s.batches.Load()) })
	reg.Func("wire.queries_total", func() float64 { return float64(s.queries.Load()) })
	reg.Func("wire.proto_errors_total", func() float64 { return float64(s.protoErrs.Load()) })
	reg.Func("wire.active_connections", func() float64 { return s.activeConn.Load() })
}

// Serve accepts connections until the listener is closed, answering
// each on its own goroutine. It returns the first Accept error (for a
// closed listener, the usual net.ErrClosed).
func (s *WireServer) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		s.conns.Inc()
		//acclaim:goroutine-owner WireServer.Serve connection handler; exits when the peer closes or a protocol error drops the connection
		go s.ServeConn(c)
	}
}

// ServeConn answers one connection synchronously and closes it on
// return: hello handshake first, then batch frames until EOF or a
// protocol error. Exported so tests (and in-process pipes) can drive
// the protocol without a listener.
func (s *WireServer) ServeConn(nc net.Conn) {
	defer nc.Close()
	s.activeConn.Add(1)
	defer s.activeConn.Add(-1)
	c := &serverConn{algID: make(map[string]uint32, 64)}
	br := newWireReader(nc)

	payload, err := readFrame(br, &c.in)
	if err != nil {
		return
	}
	if err := c.handleHello(s.reg, payload); err != nil {
		s.protoErrs.Inc()
		writeErrorFrame(nc, err.Error())
		return
	}
	if err := writeFrame(nc, c.helloAck()); err != nil {
		return
	}

	for {
		payload, err := readFrame(br, &c.in)
		if err != nil {
			return
		}
		out, err := c.handleBatch(payload)
		if err != nil {
			s.protoErrs.Inc()
			writeErrorFrame(nc, err.Error())
			return
		}
		s.batches.Inc()
		s.queries.Add(uint64(c.lastCount))
		if _, err := nc.Write(out); err != nil {
			return
		}
	}
}

// newWireReader sizes the per-connection read buffer for whole batch
// frames.
func newWireReader(r io.Reader) io.Reader {
	return &bufferedReader{r: r, buf: make([]byte, 0, 64<<10)}
}

// bufferedReader is a minimal refilling reader: like bufio.Reader but
// without the interface indirection bufio adds per byte, it serves
// ReadFull calls from an internal chunk so a small frame header does
// not cost its own syscall.
type bufferedReader struct {
	r   io.Reader
	buf []byte
	off int
}

func (b *bufferedReader) Read(p []byte) (int, error) {
	if b.off == len(b.buf) {
		if len(p) >= cap(b.buf) {
			// Large reads bypass the buffer entirely.
			return b.r.Read(p)
		}
		n, err := b.r.Read(b.buf[:cap(b.buf)])
		if n == 0 {
			return 0, err
		}
		b.buf = b.buf[:n]
		b.off = 0
	}
	n := copy(p, b.buf[b.off:])
	b.off += n
	return n, nil
}

// serverConn is one connection's private protocol state.
type serverConn struct {
	shards []*Server // conn-local tenant id -> shard (nil: unknown tenant, always a miss)
	found  []bool    // per tenant: did the registry know it at hello time

	algID   map[string]uint32 // interned algorithm name -> conn-local wire id (ids start at 1)
	nextAlg uint32

	lastCount int // queries in the batch just handled

	in, dict, rec, out []byte // reused frame buffers
}

// handleHello validates the hello frame and resolves each tenant key
// against the registry. Unknown tenants are not an error: their
// lookups simply miss, so a fleet can point jobs at a registry before
// their first tuning round publishes rules.
func (c *serverConn) handleHello(reg *Registry, payload []byte) error {
	if payload[0] != frameHello {
		return fmt.Errorf("ruleserver: wire: first frame type 0x%02x, want hello", payload[0])
	}
	if len(payload) < 8 {
		return errors.New("ruleserver: wire: short hello frame")
	}
	if magic := binary.LittleEndian.Uint32(payload[1:]); magic != wireMagic {
		return fmt.Errorf("ruleserver: wire: bad magic 0x%08x", magic)
	}
	if v := payload[5]; v != WireVersion {
		return fmt.Errorf("ruleserver: wire: protocol version %d, want %d", v, WireVersion)
	}
	nTenants := int(binary.LittleEndian.Uint16(payload[6:]))
	if nTenants == 0 || nTenants > 1<<12 {
		return fmt.Errorf("ruleserver: wire: tenant count %d out of range", nTenants)
	}
	off := 8
	c.shards = make([]*Server, nTenants)
	c.found = make([]bool, nTenants)
	for i := 0; i < nTenants; i++ {
		var key TenantKey
		var err error
		if key.Cluster, off, err = getString(payload, off); err != nil {
			return fmt.Errorf("ruleserver: wire: truncated hello tenant %d: %w", i, err)
		}
		if key.JobClass, off, err = getString(payload, off); err != nil {
			return fmt.Errorf("ruleserver: wire: truncated hello tenant %d: %w", i, err)
		}
		if key.MPIVer, off, err = getString(payload, off); err != nil {
			return fmt.Errorf("ruleserver: wire: truncated hello tenant %d: %w", i, err)
		}
		if srv, ok := reg.Tenant(key); ok {
			c.shards[i], c.found[i] = srv, true
		}
	}
	if off != len(payload) {
		return errors.New("ruleserver: wire: trailing bytes after hello tenants")
	}
	return nil
}

// helloAck builds the handshake response payload: protocol version,
// the server's collective names in wire-id order, and per-tenant found
// flags in hello order.
func (c *serverConn) helloAck() []byte {
	b := c.out[:0]
	b = append(b, frameHelloAck, WireVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(coll.NumCollectives))
	for i := 0; i < coll.NumCollectives; i++ {
		b = appendString(b, coll.Collective(i).String())
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.found)))
	for _, f := range c.found {
		if f {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	c.out = b
	return b
}

// handleBatch decodes one batch request, answers every query against
// its tenant's shard, and assembles the response frame (dictionary
// delta for never-before-sent algorithm names, then one fixed-width
// record per query) into a reused buffer — one Write syscall per
// batch, zero allocations once the dictionary is warm.
func (c *serverConn) handleBatch(payload []byte) ([]byte, error) {
	if payload[0] != frameBatchReq {
		return nil, fmt.Errorf("ruleserver: wire: frame type 0x%02x, want batch request", payload[0])
	}
	if len(payload) < 5 {
		return nil, errors.New("ruleserver: wire: short batch frame")
	}
	count := int(binary.LittleEndian.Uint32(payload[1:]))
	if count == 0 || count > MaxWireBatch {
		return nil, fmt.Errorf("ruleserver: wire: batch count %d out of range", count)
	}
	if len(payload) != 5+count*reqRecordBytes {
		return nil, fmt.Errorf("ruleserver: wire: batch payload %dB, want %dB for %d records",
			len(payload), 5+count*reqRecordBytes, count)
	}
	c.lastCount = count
	c.dict = c.dict[:0]
	nDelta := 0
	c.rec = growBuf(c.rec, count*respRecordBytes)
	recOff := 0
	off := 5
	for i := 0; i < count; i++ {
		tenant, cid, nodes, ppn, msg := getReqRecord(payload, off)
		off += reqRecordBytes
		if int(tenant) >= len(c.shards) {
			return nil, fmt.Errorf("ruleserver: wire: tenant id %d out of range (hello negotiated %d)", tenant, len(c.shards))
		}
		if int(cid) >= coll.NumCollectives {
			return nil, fmt.Errorf("ruleserver: wire: collective id %d out of range", cid)
		}
		var id uint32
		if shard := c.shards[tenant]; shard != nil {
			if alg, ok := shard.Lookup(coll.Collective(cid), int(nodes), int(ppn), int(msg)); ok {
				var seen bool
				if id, seen = c.algID[alg]; !seen {
					c.nextAlg++
					id = c.nextAlg
					c.algID[alg] = id
					c.dict = binary.LittleEndian.AppendUint32(c.dict, id)
					c.dict = appendString(c.dict, alg)
					nDelta++
				}
			}
		}
		recOff = putRespRecord(c.rec, recOff, id)
	}

	// Assemble: len | type | count | dictDeltaCount | dict | records.
	payloadLen := 1 + 4 + 4 + len(c.dict) + recOff
	c.out = growBuf(c.out, 4+payloadLen)
	binary.LittleEndian.PutUint32(c.out, uint32(payloadLen))
	c.out[4] = frameBatchResp
	binary.LittleEndian.PutUint32(c.out[5:], uint32(count))
	binary.LittleEndian.PutUint32(c.out[9:], uint32(nDelta))
	copy(c.out[13:], c.dict)
	copy(c.out[13+len(c.dict):], c.rec[:recOff])
	return c.out, nil
}

// WireQuery is one client-side lookup: the tenant is an index into the
// key list negotiated at dial time.
type WireQuery struct {
	Tenant int
	Coll   coll.Collective
	Nodes  int
	PPN    int
	Msg    int
}

// WireResult is one answer. A miss has OK false and an empty Alg — the
// same deployment-visible condition the HTTP API reports as ok=false.
type WireResult struct {
	Alg string
	OK  bool
}

// WireClient speaks the binary protocol over one connection. It is NOT
// safe for concurrent use: callers own one client per worker (the
// loadgen TCPTarget pools them). Batch encode/decode reuses the
// client's buffers, so the steady-state per-query cost is the fixed-
// width record codec plus a dictionary table index.
type WireClient struct {
	conn net.Conn
	br   io.Reader

	tenants []TenantKey
	found   []bool
	collID  [coll.NumCollectives]int32 // local enum -> wire id; -1 if the server lacks it

	algs []string // wire alg id -> name; index 0 = miss sentinel

	in, out []byte
}

// DialWire connects to a wire server and performs the hello handshake
// for the given tenants (at least one; use DefaultTenant against a
// single-tenant server).
func DialWire(addr string, tenants []TenantKey) (*WireClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewWireClient(conn, tenants)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewWireClient performs the hello handshake over an existing
// connection (tests drive it over net.Pipe).
func NewWireClient(conn net.Conn, tenants []TenantKey) (*WireClient, error) {
	if len(tenants) == 0 {
		return nil, errors.New("ruleserver: wire client needs at least one tenant")
	}
	if len(tenants) > 1<<12 {
		return nil, fmt.Errorf("ruleserver: wire client tenant count %d out of range", len(tenants))
	}
	c := &WireClient{
		conn:    conn,
		br:      newWireReader(conn),
		tenants: append([]TenantKey(nil), tenants...),
		algs:    make([]string, 1, 64),
	}
	hello := make([]byte, 0, 64)
	hello = append(hello, frameHello)
	hello = binary.LittleEndian.AppendUint32(hello, wireMagic)
	hello = append(hello, WireVersion)
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(tenants)))
	for _, k := range tenants {
		hello = appendString(hello, k.Cluster)
		hello = appendString(hello, k.JobClass)
		hello = appendString(hello, k.MPIVer)
	}
	if err := writeFrame(conn, hello); err != nil {
		return nil, err
	}
	ack, err := readFrame(c.br, &c.in)
	if err != nil {
		return nil, err
	}
	if err := c.parseHelloAck(ack); err != nil {
		return nil, err
	}
	return c, nil
}

// parseHelloAck consumes the handshake response: collective id table
// and per-tenant found flags.
func (c *WireClient) parseHelloAck(ack []byte) error {
	if ack[0] == frameError {
		msg, _, err := getString(ack, 1)
		if err != nil {
			return fmt.Errorf("ruleserver: wire: truncated error frame: %w", err)
		}
		return fmt.Errorf("ruleserver: wire: server rejected hello: %s", msg)
	}
	if ack[0] != frameHelloAck {
		return fmt.Errorf("ruleserver: wire: handshake frame type 0x%02x, want hello ack", ack[0])
	}
	if len(ack) < 4 {
		return errors.New("ruleserver: wire: short hello ack")
	}
	if v := ack[1]; v != WireVersion {
		return fmt.Errorf("ruleserver: wire: server protocol version %d, want %d", v, WireVersion)
	}
	for i := range c.collID {
		c.collID[i] = -1
	}
	nColl := int(binary.LittleEndian.Uint16(ack[2:]))
	off := 4
	for i := 0; i < nColl; i++ {
		name, next, err := getString(ack, off)
		if err != nil {
			return fmt.Errorf("ruleserver: wire: truncated hello ack collective %d: %w", i, err)
		}
		off = next
		if lc, err := coll.ParseCollective(name); err == nil {
			c.collID[lc] = int32(i)
		}
	}
	if off+2 > len(ack) {
		return errors.New("ruleserver: wire: truncated hello ack tenant flags")
	}
	nTenants := int(binary.LittleEndian.Uint16(ack[off:]))
	off += 2
	if nTenants != len(c.tenants) || off+nTenants != len(ack) {
		return errors.New("ruleserver: wire: hello ack tenant count mismatch")
	}
	c.found = make([]bool, nTenants)
	for i := 0; i < nTenants; i++ {
		c.found[i] = ack[off+i] == 1
	}
	return nil
}

// TenantFound reports whether the registry knew tenant i at handshake
// time.
func (c *WireClient) TenantFound(i int) bool {
	return i >= 0 && i < len(c.found) && c.found[i]
}

// LookupBatch resolves len(qs) queries in one request frame — one
// Write, one pipelined response read — filling res in query order.
// res must be at least as long as qs. Any returned error is fatal to
// the connection (the server closes after an error frame); the caller
// should discard the client.
func (c *WireClient) LookupBatch(qs []WireQuery, res []WireResult) error {
	if len(qs) == 0 {
		return nil
	}
	if len(qs) > MaxWireBatch {
		return fmt.Errorf("ruleserver: wire: batch of %d exceeds max %d", len(qs), MaxWireBatch)
	}
	if len(res) < len(qs) {
		return errors.New("ruleserver: wire: result slice shorter than query slice")
	}
	payloadLen := 5 + len(qs)*reqRecordBytes
	c.out = growBuf(c.out, 4+payloadLen)
	binary.LittleEndian.PutUint32(c.out, uint32(payloadLen))
	c.out[4] = frameBatchReq
	binary.LittleEndian.PutUint32(c.out[5:], uint32(len(qs)))
	if err := c.encodeQueries(qs); err != nil {
		return err
	}
	if _, err := c.conn.Write(c.out); err != nil {
		return err
	}
	resp, err := readFrame(c.br, &c.in)
	if err != nil {
		return err
	}
	return c.decodeBatchResponse(resp, res)
}

// encodeQueries validates and encodes qs into the prepared request
// buffer. Validation failures are client bugs (unknown collective,
// negative or over-u32 coordinates) and poison nothing: the frame is
// simply not sent.
func (c *WireClient) encodeQueries(qs []WireQuery) error {
	off := 9
	for i := range qs {
		q := &qs[i]
		if q.Tenant < 0 || q.Tenant >= len(c.tenants) {
			return fmt.Errorf("ruleserver: wire: query tenant %d out of range [0,%d)", q.Tenant, len(c.tenants))
		}
		if q.Coll < 0 || int(q.Coll) >= coll.NumCollectives || c.collID[q.Coll] < 0 {
			return fmt.Errorf("ruleserver: wire: collective %v not served by peer", q.Coll)
		}
		if q.Nodes < 0 || q.PPN < 0 || q.Msg < 0 ||
			q.Nodes > 1<<31 || q.PPN > 1<<31 || q.Msg > 1<<31 {
			return fmt.Errorf("ruleserver: wire: query coordinates out of u32 range: %+v", *q)
		}
		off = putReqRecord(c.out, off, uint32(q.Tenant), uint32(c.collID[q.Coll]),
			uint32(q.Nodes), uint32(q.PPN), uint32(q.Msg))
	}
	return nil
}

// decodeBatchResponse applies the dictionary delta and fills res from
// the fixed-width records.
func (c *WireClient) decodeBatchResponse(resp []byte, res []WireResult) error {
	if resp[0] == frameError {
		msg, _, err := getString(resp, 1)
		if err != nil {
			return fmt.Errorf("ruleserver: wire: truncated error frame: %w", err)
		}
		return fmt.Errorf("ruleserver: wire: server error: %s", msg)
	}
	if resp[0] != frameBatchResp {
		return fmt.Errorf("ruleserver: wire: frame type 0x%02x, want batch response", resp[0])
	}
	if len(resp) < 9 {
		return errors.New("ruleserver: wire: short batch response")
	}
	count := int(binary.LittleEndian.Uint32(resp[1:]))
	nDict := int(binary.LittleEndian.Uint32(resp[5:]))
	off := 9
	for i := 0; i < nDict; i++ {
		if off+4 > len(resp) {
			return io.ErrUnexpectedEOF
		}
		id := binary.LittleEndian.Uint32(resp[off:])
		off += 4
		name, next, err := getString(resp, off)
		if err != nil {
			return fmt.Errorf("ruleserver: wire: truncated dictionary entry: %w", err)
		}
		off = next
		if int(id) != len(c.algs) {
			return fmt.Errorf("ruleserver: wire: dictionary id %d, want next dense id %d", id, len(c.algs))
		}
		c.algs = append(c.algs, name)
	}
	if count > len(res) || len(resp) != off+count*respRecordBytes {
		return fmt.Errorf("ruleserver: wire: batch response count %d does not match frame length", count)
	}
	for i := 0; i < count; i++ {
		id := getRespRecord(resp, off)
		off += respRecordBytes
		if int(id) >= len(c.algs) {
			return fmt.Errorf("ruleserver: wire: response algorithm id %d beyond dictionary (%d entries)", id, len(c.algs)-1)
		}
		if id == 0 {
			res[i] = WireResult{}
		} else {
			res[i] = WireResult{Alg: c.algs[id], OK: true}
		}
	}
	return nil
}

// Lookup resolves one query (a batch of one).
func (c *WireClient) Lookup(q WireQuery) (string, bool, error) {
	var one [1]WireQuery
	var res [1]WireResult
	one[0] = q
	if err := c.LookupBatch(one[:], res[:]); err != nil {
		return "", false, err
	}
	return res[0].Alg, res[0].OK, nil
}

// Close closes the underlying connection.
func (c *WireClient) Close() error { return c.conn.Close() }

// wireAddrName renders a dial address for report labels.
func wireAddrName(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "tcp://" + addr
}

// WireTargetName is the loadgen report label for a wire target at
// addr.
func WireTargetName(addr string) string { return wireAddrName(addr) }
