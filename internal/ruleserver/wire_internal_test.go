package ruleserver

import (
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/rules"
)

// wireTestFile is a minimal two-band bcast file for the internal wire
// tests (the richer generators live in the external test package).
func wireTestFile() *rules.File {
	f := rules.NewFile("wire-internal")
	f.Tables["bcast"] = &rules.Table{
		Collective: "bcast",
		Buckets: []rules.NodeBucket{
			{MaxNodes: rules.Unbounded, PPNs: []rules.PPNBucket{
				{MaxPPN: rules.Unbounded, Rules: []rules.MsgRule{
					{MaxMsg: 1024, Alg: "binomial"},
					{MaxMsg: rules.Unbounded, Alg: "scatter_ring_allgather"},
				}},
			}},
		},
	}
	return f
}

// TestWireRecordCodecZeroAlloc is the runtime half of the
// //acclaim:zeroalloc contract on the fixed-layout record codecs: the
// static analyzer proves the source contains no allocating constructs,
// and this gate proves the compiled code allocates nothing per record.
func TestWireRecordCodecZeroAlloc(t *testing.T) {
	buf := make([]byte, 64*reqRecordBytes)
	if n := testing.AllocsPerRun(200, func() {
		off := 0
		for i := 0; i < 3; i++ {
			off = putReqRecord(buf, off, 1, 2, 16, 8, 1<<uint(i))
		}
		off = 0
		for i := 0; i < 3; i++ {
			_, _, _, _, _ = getReqRecord(buf, off)
			off += reqRecordBytes
		}
		off = 0
		for i := 0; i < 3; i++ {
			off = putRespRecord(buf, off, uint32(i))
		}
		off = 0
		for i := 0; i < 3; i++ {
			_ = getRespRecord(buf, off)
			off += respRecordBytes
		}
	}); n != 0 {
		t.Fatalf("record codecs allocate %.1f/op, want 0", n)
	}
}

// TestWireRecordRoundTrip pins the exact fixed layout: encode, decode,
// compare, and check the offsets advance by the documented record
// sizes.
func TestWireRecordRoundTrip(t *testing.T) {
	buf := make([]byte, 2*reqRecordBytes)
	end := putReqRecord(buf, 0, 7, 3, 1024, 64, 1<<20)
	if end != reqRecordBytes {
		t.Fatalf("putReqRecord advanced to %d, want %d", end, reqRecordBytes)
	}
	tenant, cid, nodes, ppn, msg := getReqRecord(buf, 0)
	if tenant != 7 || cid != 3 || nodes != 1024 || ppn != 64 || msg != 1<<20 {
		t.Fatalf("round trip = (%d,%d,%d,%d,%d)", tenant, cid, nodes, ppn, msg)
	}
	if end := putRespRecord(buf, 0, 42); end != respRecordBytes {
		t.Fatalf("putRespRecord advanced to %d, want %d", end, respRecordBytes)
	}
	if got := getRespRecord(buf, 0); got != 42 {
		t.Fatalf("resp round trip = %d", got)
	}
}

// FuzzWireRoundTrip drives the three frame decoders — server hello,
// server batch, client hello-ack and batch-response — with arbitrary
// payload bytes. Every input must either decode or return an error;
// a panic (out-of-bounds slice walk, unchecked length field) is the
// failure the fuzzer hunts. Seeded with valid frames so mutation
// explores near-valid layouts, not just noise.
//
// Seeded corpus: testdata/fuzz/FuzzWireRoundTrip. CI runs this target
// for 30s per push (the fuzz-smoke job).
func FuzzWireRoundTrip(f *testing.F) {
	// A valid hello for one tenant (a/b/c), captured structurally.
	hello := []byte{frameHello, 'A', 'C', 'L', 'M', WireVersion, 1, 0,
		1, 0, 'a', 1, 0, 'b', 1, 0, 'c'}
	f.Add(hello)
	// A valid one-query batch request for tenant 0, collective 0.
	batch := []byte{frameBatchReq, 1, 0, 0, 0}
	batch = append(batch, make([]byte, reqRecordBytes)...)
	f.Add(batch)
	// A batch response with one dictionary entry and one record.
	resp := []byte{frameBatchResp, 1, 0, 0, 0, 1, 0, 0, 0,
		1, 0, 0, 0, 3, 0, 'a', 'l', 'g', 1, 0, 0, 0}
	f.Add(resp)
	// A hello ack naming one collective and one found tenant.
	ack := []byte{frameHelloAck, WireVersion, 1, 0, 5, 0, 'b', 'c', 'a', 's', 't', 1, 0, 1}
	f.Add(ack)

	reg := NewRegistry()
	srv := reg.Ensure(TenantKey{Cluster: "a", JobClass: "b", MPIVer: "c"})
	_ = srv
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Server side: a fresh conn state per input, hello then batch
		// (handleBatch is also probed directly so inputs that fail the
		// hello still exercise it).
		sc := &serverConn{algID: map[string]uint32{}}
		if err := sc.handleHello(reg, data); err == nil {
			_ = sc.helloAck()
		}
		sc2 := &serverConn{
			algID:  map[string]uint32{},
			shards: []*Server{srv, nil},
			found:  []bool{true, false},
		}
		if out, err := sc2.handleBatch(data); err == nil && len(out) == 0 {
			t.Fatal("handleBatch returned empty frame without error")
		}

		// Client side: hello-ack and batch-response decoders.
		cl := &WireClient{tenants: []TenantKey{{Cluster: "a", JobClass: "b", MPIVer: "c"}}, algs: make([]string, 1)}
		_ = cl.parseHelloAck(data)
		cl2 := &WireClient{tenants: []TenantKey{{Cluster: "a", JobClass: "b", MPIVer: "c"}}, algs: make([]string, 1)}
		for i := range cl2.collID {
			cl2.collID[i] = int32(i)
		}
		res := make([]WireResult, MaxWireBatch)
		_ = cl2.decodeBatchResponse(data, res)
	})
}

// TestWireBatchEncodeSteadyStateAllocs pins the whole server batch
// path — decode, lookup, dictionary check, response assembly — at zero
// allocations once buffers and the algorithm dictionary are warm.
func TestWireBatchEncodeSteadyStateAllocs(t *testing.T) {
	reg := NewRegistry()
	key := TenantKey{Cluster: "a", JobClass: "b", MPIVer: "c"}
	if err := reg.Swap(key, wireTestFile()); err != nil {
		t.Fatal(err)
	}
	srv, _ := reg.Tenant(key)
	sc := &serverConn{algID: map[string]uint32{}, shards: []*Server{srv}, found: []bool{true}}

	const batch = 16
	payload := make([]byte, 5, 5+batch*reqRecordBytes)
	payload[0] = frameBatchReq
	payload[1] = batch
	buf := payload[:cap(payload)]
	off := 5
	for i := 0; i < batch; i++ {
		off = putReqRecord(buf, off, 0, uint32(coll.Bcast), 4, 8, uint32(1<<uint(i%16)))
	}
	buf = buf[:off]

	// Warm the dictionary and the reused buffers.
	if _, err := sc.handleBatch(buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := sc.handleBatch(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm handleBatch allocates %.1f/op, want 0", n)
	}
}
